package revnf

import (
	"io"
	"math/rand"

	"revnf/internal/qos"
	"revnf/internal/simulate"
	"revnf/internal/topology"
)

// Network QoS and time-dynamic failure analysis.
type (
	// Topology is the MEC access network graph.
	Topology = topology.Graph
	// QoSReport scores placements' recovery latency and sync traffic.
	QoSReport = qos.Report
	// TimelineConfig parameterizes the Markov failure timeline (MTTRs).
	TimelineConfig = simulate.TimelineConfig
	// TimelineReport is a time-dynamic failure simulation's outcome.
	TimelineReport = simulate.TimelineReport
)

// LoadTopology loads an embedded access-network topology by name; see
// TopologyNames for the inventory.
func LoadTopology(name string) (*Topology, error) {
	return topology.Load(name)
}

// TopologyNames lists the embedded topologies.
func TopologyNames() []string {
	return topology.Names()
}

// LoadTopologyJSON reads a custom topology from the JSON format written by
// Topology.Save — the path for modelling your own access network.
func LoadTopologyJSON(r io.Reader) (*Topology, error) {
	return topology.LoadJSON(r)
}

// AssessQoS scores every placement's off-site recovery latency and
// state-synchronization traffic on the topology (zero for on-site
// placements). Cloudlets must be bound to topology nodes.
func AssessQoS(n *Network, g *Topology, trace []Request, placements []Placement) (*QoSReport, error) {
	return qos.Assess(n, g, trace, placements)
}

// SimulateTimeline plays the horizon forward with Markov up/down cloudlet
// and instance states (bursty outages parameterized by MTTR) and measures
// each admitted request's delivered uptime.
func SimulateTimeline(n *Network, horizon int, trace []Request, placements []Placement, cfg TimelineConfig, rng *rand.Rand) (*TimelineReport, error) {
	return simulate.SimulateTimeline(n, horizon, trace, placements, cfg, rng)
}
