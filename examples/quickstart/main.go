// Quickstart: build a small MEC network by hand, stream a handful of
// requests through both of the paper's online algorithms, and print each
// admission decision.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"revnf"
)

func main() {
	// A three-cloudlet edge: the catalog is the paper's 10 VNF types.
	network := &revnf.Network{
		Catalog: revnf.DefaultCatalog(),
		Cloudlets: []revnf.Cloudlet{
			{ID: 0, Node: 0, Capacity: 12, Reliability: 0.999},
			{ID: 1, Node: 3, Capacity: 10, Reliability: 0.98},
			{ID: 2, Node: 7, Capacity: 8, Reliability: 0.96},
		},
	}
	const horizon = 12

	// Six user requests: (VNF type, reliability requirement, arrival slot,
	// duration, payment). They arrive one at a time — the schedulers never
	// see the future.
	trace := []revnf.Request{
		{ID: 0, VNF: 0, Reliability: 0.95, Arrival: 1, Duration: 4, Payment: 12},
		{ID: 1, VNF: 3, Reliability: 0.90, Arrival: 1, Duration: 6, Payment: 30},
		{ID: 2, VNF: 5, Reliability: 0.93, Arrival: 2, Duration: 3, Payment: 9},
		{ID: 3, VNF: 8, Reliability: 0.95, Arrival: 3, Duration: 5, Payment: 40},
		{ID: 4, VNF: 1, Reliability: 0.90, Arrival: 3, Duration: 2, Payment: 3},
		{ID: 5, VNF: 9, Reliability: 0.95, Arrival: 4, Duration: 6, Payment: 22},
	}
	inst := &revnf.Instance{Network: network, Horizon: horizon, Trace: trace}

	for _, build := range []func() (revnf.Scheduler, error){
		func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(network, revnf.OnSite, revnf.WithHorizon(horizon))
		},
		func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(network, revnf.OffSite, revnf.WithHorizon(horizon))
		},
	} {
		sched, err := build()
		if err != nil {
			log.Fatalf("build scheduler: %v", err)
		}
		res, err := revnf.Run(inst, sched)
		if err != nil {
			log.Fatalf("run %s: %v", sched.Name(), err)
		}
		fmt.Printf("== %s (%s scheme) ==\n", res.Algorithm, res.Scheme)
		for _, d := range res.Decisions {
			req := trace[d.Request]
			if !d.Admitted {
				fmt.Printf("  request %d (%s, R=%.2f, pay=%.0f): rejected\n",
					req.ID, network.Catalog[req.VNF].Name, req.Reliability, req.Payment)
				continue
			}
			fmt.Printf("  request %d (%s, R=%.2f, pay=%.0f): admitted →",
				req.ID, network.Catalog[req.VNF].Name, req.Reliability, req.Payment)
			for _, a := range d.Placement.Assignments {
				fmt.Printf(" cloudlet %d ×%d", a.Cloudlet, a.Instances)
			}
			fmt.Printf(" (availability %.4f)\n", d.Placement.Availability(network, req))
		}
		fmt.Printf("  revenue %.0f, admission rate %.0f%%, mean utilization %.1f%%\n\n",
			res.Revenue, 100*res.AdmissionRate(), 100*res.Utilization)
	}
}
