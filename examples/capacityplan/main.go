// Capacity planning: how much cloudlet capacity does a target workload
// need before admission stops being the bottleneck?
//
// The example fixes a 400-request day and sweeps the per-cloudlet capacity
// range, reporting revenue and admission rate for Algorithm 1. The "knee"
// of the curve — where extra capacity stops buying revenue — is the
// right-sizing point.
//
// Run with:
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"revnf"
)

func main() {
	fmt.Println("capacity sweep: 8 cloudlets, 400 requests, Algorithm 1 (on-site)")
	fmt.Printf("%-12s %10s %10s %12s\n", "capacity", "revenue", "admitted", "utilization")

	prevRevenue := 0.0
	knee := -1
	for _, capUnits := range []int{4, 6, 8, 12, 16, 24, 32, 48} {
		cfg := revnf.DefaultInstanceConfig(400)
		cfg.Cloudlets.MinCapacity = capUnits
		cfg.Cloudlets.MaxCapacity = capUnits
		inst, err := revnf.NewInstance(cfg, 5)
		if err != nil {
			log.Fatalf("build instance: %v", err)
		}
		sched, err := revnf.NewScheduler(inst.Network, revnf.OnSite, revnf.WithHorizon(inst.Horizon))
		if err != nil {
			log.Fatalf("scheduler: %v", err)
		}
		res, err := revnf.Run(inst, sched)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		fmt.Printf("%-12d %10.1f %9.1f%% %11.1f%%\n",
			capUnits, res.Revenue, 100*res.AdmissionRate(), 100*res.Utilization)
		// The knee: first capacity whose marginal revenue gain drops
		// below 3%.
		if knee < 0 && prevRevenue > 0 && res.Revenue < prevRevenue*1.03 {
			knee = capUnits
		}
		prevRevenue = res.Revenue
	}
	if knee > 0 {
		fmt.Printf("\nright-sizing point: ~%d units per cloudlet (marginal gain < 3%%)\n", knee)
	} else {
		fmt.Println("\nno knee found in the swept range: the workload is capacity-hungry throughout")
	}
}
