// Service function chains: the library's extension of the paper's model
// to multi-VNF chains (firewall → DPI → transcoder), where the WHOLE
// chain must be available with probability R and the backup budget is
// split across stages by the greedy redundancy-allocation rule.
//
// The example streams 200 chain requests through the chain variants of
// the primal-dual and greedy schedulers under both schemes, then shows
// how allocation splits backups for one concrete chain.
//
// Run with:
//
//	go run ./examples/sfchain
package main

import (
	"fmt"
	"log"
	"math/rand"

	"revnf"
)

func main() {
	network := &revnf.Network{
		Catalog:   revnf.DefaultCatalog(),
		Cloudlets: nil,
	}
	// Six cloudlets with mixed reliabilities.
	for j, rc := range []float64{0.999, 0.995, 0.99, 0.985, 0.98, 0.97} {
		network.Cloudlets = append(network.Cloudlets, revnf.Cloudlet{
			ID: j, Node: j, Capacity: 8, Reliability: rc,
		})
	}
	const horizon = 40

	cfg := revnf.ChainTraceConfig{
		Requests:       400,
		Horizon:        horizon,
		MinLength:      2,
		MaxLength:      4,
		MinDuration:    1,
		MaxDuration:    10,
		MinRequirement: 0.85,
		MaxRequirement: 0.93,
		MaxPaymentRate: 10,
		H:              8,
	}
	trace, err := revnf.GenerateChainTrace(cfg, network.Catalog, rand.New(rand.NewSource(42)))
	if err != nil {
		log.Fatalf("generate chains: %v", err)
	}
	inst := &revnf.ChainInstance{Network: network, Horizon: horizon, Trace: trace}

	fmt.Printf("%d chain requests (2-4 stages) on %d cloudlets over %d slots\n\n",
		len(trace), len(network.Cloudlets), horizon)
	for _, build := range []func() (revnf.ChainScheduler, error){
		func() (revnf.ChainScheduler, error) { return revnf.NewChainOnsiteScheduler(network, horizon) },
		func() (revnf.ChainScheduler, error) { return revnf.NewChainOffsiteScheduler(network, horizon) },
		func() (revnf.ChainScheduler, error) { return revnf.NewGreedyChainOnsite(network, horizon) },
		func() (revnf.ChainScheduler, error) { return revnf.NewGreedyChainOffsite(network, horizon) },
	} {
		sched, err := build()
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		res, err := revnf.RunChains(inst, sched)
		if err != nil {
			log.Fatalf("run %s: %v", sched.Name(), err)
		}
		fmt.Printf("%-22s revenue %8.1f  admitted %3d/%d  utilization %4.1f%%\n",
			res.Algorithm, res.Revenue, res.Admitted, len(trace), 100*res.Utilization)
	}

	// Peek inside the redundancy allocation for one chain: how many
	// backups does each stage get in a 0.999-reliable cloudlet when the
	// whole chain must hit 0.95?
	vnfs := []int{0, 3, 8} // firewall (r=0.90), ids (r=0.97), transcoder (r=0.9995)
	alloc, err := revnf.ChainOnsiteAllocation(network.Catalog, vnfs, 0.999, 0.95)
	if err != nil {
		log.Fatalf("allocation: %v", err)
	}
	fmt.Println("\nredundancy split for firewall→ids→transcoder at R=0.95 in a rc=0.999 cloudlet:")
	for k, f := range vnfs {
		v := network.Catalog[f]
		fmt.Printf("  %-12s r=%.4f demand=%d → %d instance(s)\n", v.Name, v.Reliability, v.Demand, alloc[k])
	}
}
