// IoT video analytics: the workload the paper's introduction motivates.
// A city deploys camera fleets whose streams traverse a service chain of
// VNFs (firewall → DPI → transcoder) hosted on cloudlets of a metro access
// network (GÉANT-sized). Camera operators demand availability SLOs; the
// operator maximizes subscription revenue.
//
// The example compares the paper's two schemes and the greedy baseline on
// the same request stream, then verifies the winning schedule's SLOs with
// Monte-Carlo failure injection.
//
// Run with:
//
//	go run ./examples/iotvideo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"revnf"
)

func main() {
	// Video-analytics service tiers. Demands are per instance in
	// computing units; reliabilities are single-instance availabilities.
	catalog := []revnf.VNF{
		{ID: 0, Name: "edge-firewall", Demand: 1, Reliability: 0.97},
		{ID: 1, Name: "stream-dpi", Demand: 2, Reliability: 0.95},
		{ID: 2, Name: "sd-transcoder", Demand: 2, Reliability: 0.93},
		{ID: 3, Name: "hd-transcoder", Demand: 3, Reliability: 0.92},
		{ID: 4, Name: "object-detector", Demand: 3, Reliability: 0.90},
	}

	cfg := revnf.InstanceConfig{
		TopologyName: "geant",
		Cloudlets: revnf.CloudletConfig{
			Count:          8,
			MinCapacity:    5,
			MaxCapacity:    12,
			MaxReliability: 0.999,
			K:              1.06,
		},
		Catalog: catalog,
		Trace: revnf.TraceConfig{
			Requests:       250,
			Horizon:        96, // a day of 15-minute slots
			MinDuration:    2,  // shortest patrol session: 30 minutes
			MaxDuration:    16, // longest: 4 hours
			MinRequirement: 0.90,
			MaxRequirement: 0.94,
			MaxPaymentRate: 8,
			H:              8, // premium feeds pay up to 8x the base rate
		},
	}
	inst, err := revnf.NewInstance(cfg, 2026)
	if err != nil {
		log.Fatalf("build instance: %v", err)
	}
	fmt.Printf("metro network: %d cloudlets on %s, %d camera sessions over %d slots\n\n",
		len(inst.Network.Cloudlets), cfg.TopologyName, len(inst.Trace), inst.Horizon)

	type contender struct {
		label string
		build func() (revnf.Scheduler, error)
	}
	contenders := []contender{
		{"Algorithm 1 (on-site primal-dual)", func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(inst.Network, revnf.OnSite, revnf.WithHorizon(inst.Horizon))
		}},
		{"Algorithm 2 (off-site primal-dual)", func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(inst.Network, revnf.OffSite, revnf.WithHorizon(inst.Horizon))
		}},
		{"greedy on-site baseline", func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(inst.Network, revnf.OnSite, revnf.WithAlgorithm(revnf.Greedy))
		}},
		{"greedy off-site baseline", func() (revnf.Scheduler, error) {
			return revnf.NewScheduler(inst.Network, revnf.OffSite, revnf.WithAlgorithm(revnf.Greedy))
		}},
	}

	var best *revnf.SimResult
	for _, c := range contenders {
		sched, err := c.build()
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		res, err := revnf.Run(inst, sched)
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		fmt.Printf("%-36s revenue %8.1f  admitted %3d/%d  utilization %4.1f%%\n",
			c.label, res.Revenue, res.Admitted, len(inst.Trace), 100*res.Utilization)
		if best == nil || res.Revenue > best.Revenue {
			best = res
		}
	}

	// How much revenue is left on the table? The LP relaxation bounds any
	// offline schedule from above.
	bound, err := revnf.OfflineLPBound(inst, revnf.OnSite)
	if err != nil {
		log.Fatalf("offline bound: %v", err)
	}
	fmt.Printf("\noffline LP upper bound (on-site): %.1f → best online gets ≥ %.0f%% of it\n",
		bound, 100*best.Revenue/bound)

	// Verify the winner's SLOs empirically: sample cloudlet and instance
	// failures and count how often each admitted session stays up.
	report, err := revnf.EstimateAvailability(
		inst.Network, inst.Trace, best.AdmittedPlacements(), 20000,
		rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatalf("failure injection: %v", err)
	}
	fmt.Printf("failure injection (%d trials/session): %.1f%% of admitted sessions met their SLO\n",
		report.Trials, 100*report.MetFraction)
}
