// Failover: why off-site redundancy survives cloudlet outages that kill
// on-site placements.
//
// The example admits the same workload under both schemes, then runs two
// failure-injection studies:
//
//  1. the standard Monte-Carlo check that every admitted request's
//     availability meets its requirement, and
//  2. a targeted outage: the busiest cloudlet is forced down and the
//     surviving fraction of each scheme's placements is measured — the
//     on-site scheme loses every request pinned to that cloudlet, while
//     the off-site scheme usually keeps a replica elsewhere.
//
// Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"math/rand"

	"revnf"
)

func main() {
	cfg := revnf.DefaultInstanceConfig(250)
	inst, err := revnf.NewInstance(cfg, 99)
	if err != nil {
		log.Fatalf("build instance: %v", err)
	}

	onsiteSched, err := revnf.NewScheduler(inst.Network, revnf.OnSite, revnf.WithHorizon(inst.Horizon))
	if err != nil {
		log.Fatalf("on-site scheduler: %v", err)
	}
	onsiteRes, err := revnf.Run(inst, onsiteSched)
	if err != nil {
		log.Fatalf("on-site run: %v", err)
	}
	offsiteSched, err := revnf.NewScheduler(inst.Network, revnf.OffSite, revnf.WithHorizon(inst.Horizon))
	if err != nil {
		log.Fatalf("off-site scheduler: %v", err)
	}
	offsiteRes, err := revnf.Run(inst, offsiteSched)
	if err != nil {
		log.Fatalf("off-site run: %v", err)
	}

	fmt.Printf("admitted: on-site %d, off-site %d (of %d)\n\n",
		onsiteRes.Admitted, offsiteRes.Admitted, len(inst.Trace))

	schemes := []struct {
		label string
		res   *revnf.SimResult
	}{
		{"on-site ", onsiteRes},
		{"off-site", offsiteRes},
	}

	// Study 1: unconditional availability check.
	for _, sc := range schemes {
		label, res := sc.label, sc.res
		report, err := revnf.EstimateAvailability(
			inst.Network, inst.Trace, res.AdmittedPlacements(), 10000,
			rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatalf("failure injection: %v", err)
		}
		fmt.Printf("%s: %.1f%% of placements met their requirement over %d random-failure trials\n",
			label, 100*report.MetFraction, report.Trials)
	}

	// Study 2: force the busiest cloudlet down and count survivors.
	busiest := busiestCloudlet(onsiteRes)
	fmt.Printf("\ntargeted outage: cloudlet %d (busiest under on-site) is DOWN\n", busiest)
	for _, sc := range schemes {
		label, res := sc.label, sc.res
		survived, total := survivalUnderOutage(inst, res, busiest, rand.New(rand.NewSource(11)))
		fmt.Printf("%s: %d/%d admitted requests still available (%.0f%%)\n",
			label, survived, total, 100*float64(survived)/float64(total))
	}

	// Study 3: bursty outages. The static probability model cannot tell
	// the schemes apart beyond their availability numbers; playing the
	// horizon forward with Markov up/down cloudlets (same stationary
	// reliability, longer repair times) shows delivered uptime under
	// realistic correlated failures.
	fmt.Println("\nbursty outages (Markov timeline, same stationary reliability):")
	for _, mttr := range []float64{1, 4, 12} {
		fmt.Printf("  cloudlet MTTR %2.0f slots:", mttr)
		for _, sc := range schemes {
			cfg := revnf.TimelineConfig{CloudletMTTR: mttr, InstanceMTTR: 1}
			rep, err := revnf.SimulateTimeline(
				inst.Network, inst.Horizon, inst.Trace, sc.res.AdmittedPlacements(), cfg,
				rand.New(rand.NewSource(int64(100*mttr))))
			if err != nil {
				log.Fatalf("timeline: %v", err)
			}
			fmt.Printf("  %s delivered %.4f (zero-downtime %.0f%%)",
				sc.label, rep.MeanDelivered, 100*rep.FullServiceFraction)
		}
		fmt.Println()
	}
}

// busiestCloudlet returns the cloudlet holding the most instances.
func busiestCloudlet(res *revnf.SimResult) int {
	counts := map[int]int{}
	for _, p := range res.AdmittedPlacements() {
		for _, a := range p.Assignments {
			counts[a.Cloudlet] += a.Instances
		}
	}
	best, bestCount := 0, -1
	for c, n := range counts {
		if n > bestCount || (n == bestCount && c < best) {
			best, bestCount = c, n
		}
	}
	return best
}

// survivalUnderOutage samples instance failures with the given cloudlet
// forced down (other cloudlets stay up) and counts requests with at least
// one live instance in most trials.
func survivalUnderOutage(inst *revnf.Instance, res *revnf.SimResult, down int, rng *rand.Rand) (survived, total int) {
	const trials = 2000
	for _, p := range res.AdmittedPlacements() {
		total++
		req := inst.Trace[p.Request]
		rf := inst.Network.Catalog[req.VNF].Reliability
		alive := 0
		for trial := 0; trial < trials; trial++ {
			if oneInstanceUp(p, rf, down, rng) {
				alive++
			}
		}
		// Survives the outage if it still meets its requirement given the
		// cloudlet is down.
		if float64(alive)/trials >= req.Reliability {
			survived++
		}
	}
	return survived, total
}

func oneInstanceUp(p revnf.Placement, rf float64, down int, rng *rand.Rand) bool {
	for _, a := range p.Assignments {
		if a.Cloudlet == down {
			continue
		}
		for k := 0; k < a.Instances; k++ {
			if rng.Float64() < rf {
				return true
			}
		}
	}
	return false
}
