// Trace replay: bring your own workload. The canonical CSV format
// (arrival,duration,vnf,reliability,payment) is the bridge from real
// cluster traces — the paper randomizes its workload from the Google
// cluster dataset; with this path you replay the real thing.
//
// The example writes a small CSV to a temp file (standing in for your
// exported trace), imports it, and replays it through every scheduler,
// printing a revenue leaderboard.
//
// Run with:
//
//	go run ./examples/tracereplay
//	go run ./examples/tracereplay -trace mytrace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"revnf"
)

func main() {
	tracePath := flag.String("trace", "", "trace CSV to replay (default: a bundled demo trace)")
	flag.Parse()

	network := &revnf.Network{Catalog: revnf.DefaultCatalog()}
	for j, rc := range []float64{0.999, 0.995, 0.99, 0.98, 0.975, 0.97} {
		network.Cloudlets = append(network.Cloudlets, revnf.Cloudlet{
			ID: j, Node: j, Capacity: 9, Reliability: rc,
		})
	}
	const horizon = 48

	path := *tracePath
	if path == "" {
		demo, err := writeDemoTrace()
		if err != nil {
			log.Fatalf("write demo trace: %v", err)
		}
		path = demo
		fmt.Printf("no -trace given; replaying bundled demo %s\n\n", filepath.Base(path))
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open trace: %v", err)
	}
	trace, err := revnf.ImportTraceCSV(f, network.Catalog, horizon)
	if cerr := f.Close(); cerr != nil {
		log.Printf("close trace: %v", cerr)
	}
	if err != nil {
		log.Fatalf("import trace: %v", err)
	}
	inst := &revnf.Instance{Network: network, Horizon: horizon, Trace: trace}
	if err := inst.Validate(); err != nil {
		log.Fatalf("trace invalid for this network: %v", err)
	}
	fmt.Printf("replaying %d requests over %d slots on %d cloudlets\n\n",
		len(trace), horizon, len(network.Cloudlets))

	type entry struct {
		name     string
		revenue  float64
		admitted int
	}
	var board []entry
	run := func(build func() (revnf.Scheduler, error)) {
		sched, err := build()
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		res, err := revnf.Run(inst, sched)
		if err != nil {
			log.Fatalf("run %s: %v", sched.Name(), err)
		}
		board = append(board, entry{name: res.Algorithm, revenue: res.Revenue, admitted: res.Admitted})
	}
	run(func() (revnf.Scheduler, error) {
		return revnf.NewScheduler(network, revnf.OnSite, revnf.WithHorizon(horizon))
	})
	run(func() (revnf.Scheduler, error) {
		return revnf.NewScheduler(network, revnf.OffSite, revnf.WithHorizon(horizon))
	})
	run(func() (revnf.Scheduler, error) {
		return revnf.NewScheduler(network, revnf.OnSite, revnf.WithAlgorithm(revnf.Greedy))
	})
	run(func() (revnf.Scheduler, error) {
		return revnf.NewScheduler(network, revnf.OffSite, revnf.WithAlgorithm(revnf.Greedy))
	})

	sort.Slice(board, func(a, b int) bool { return board[a].revenue > board[b].revenue })
	fmt.Printf("%-16s %10s %10s\n", "algorithm", "revenue", "admitted")
	for _, e := range board {
		fmt.Printf("%-16s %10.1f %7d/%d\n", e.name, e.revenue, e.admitted, len(trace))
	}
}

// writeDemoTrace generates a reproducible trace and exports it as the CSV
// a user would bring.
func writeDemoTrace() (string, error) {
	cfg := revnf.DefaultInstanceConfig(300)
	cfg.Trace.Horizon = 48
	cfg.Trace.MaxDuration = 8
	inst, err := revnf.NewInstance(cfg, 2026)
	if err != nil {
		return "", err
	}
	path := filepath.Join(os.TempDir(), "revnf-demo-trace.csv")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := revnf.ExportTraceCSV(f, inst.Network.Catalog, inst.Trace); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}
