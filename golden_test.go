package revnf_test

import (
	"math/rand"
	"testing"

	"revnf"
	"revnf/internal/baseline"
	"revnf/internal/core"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

// goldenEntry pins one scheduler's full decision trace on the golden
// instance: the admit/reject bit per request, the exact revenue, and a
// checksum over every placement's (cloudlet, instances) pairs.
type goldenEntry struct {
	name     string
	allow    bool // run with AllowViolations (raw Algorithm 1)
	make     func(*workload.Instance) (core.Scheduler, error)
	admitted int
	revenue  float64
	// placementSum is Σ over admitted requests i of
	// (i+1)·(cloudlet + 3·instances) across the placement's assignments —
	// position-sensitive, so any reordering or re-placement changes it.
	placementSum int
	// decisions is the '1'/'0' admit bitstring in arrival order.
	decisions string
}

// TestGoldenTraces locks the schedulers to the decision traces captured
// before the two-phase propose/commit refactor (500 requests,
// DefaultInstanceConfig, seed 42; RNG seed 7 for the random baseline).
// The refactor — cached reliability tables, Propose/Commit splitting, the
// two-phase simulate path — is required to be bit-identical under serial
// driving: every admit bit, the exact revenue float, and every placement
// must match. A diff here means the refactor changed decisions, not just
// structure.
func TestGoldenTraces(t *testing.T) {
	entries := []goldenEntry{
		{
			name: "pd-onsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return onsite.NewScheduler(i.Network, i.Horizon, onsite.WithCapacityEnforcement())
			},
			admitted:     226,
			revenue:      15978.012463118082,
			placementSum: 365550,
			decisions:    "11111111111111111111110011000011010000000001100001110100000000111000111111011011010100100111101000000110010111000010110010000001111110011000110101110100001110010000110000101010100110010101111001011101100011010001010111111010110010000100010011111000000111011000100100001010111001100000001000010000001000111101111000010001000101100001111011000110110000001000101000010111000000111011000111100001011011011100011111000110010111000110110110010100100100100000001001011110000000010101000000001001100011000100",
		},
		{
			name:  "pd-onsite-raw",
			allow: true,
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return onsite.NewScheduler(i.Network, i.Horizon)
			},
			admitted:     215,
			revenue:      17203.315896301254,
			placementSum: 320944,
			decisions:    "11111111111111111111110011000011110000000001110001110111000000111001111111011011011100100111101000000000011110000010110010000001110110010000110001110100001110010000110000111010000110010101111001011111101011010000000011110000110010100000000011111000000111010001100100001000110101100010001010010010001000001111001000000011000100100001111001000110100000000101011000010011000000111010010011000000001011111100011111000111010111000110100110010100101100101000101001000011100100000101010000001000000000010000",
		},
		{
			name: "pd-offsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return offsite.NewScheduler(i.Network, i.Horizon)
			},
			admitted:     244,
			revenue:      16112.53050347029,
			placementSum: 470463,
			decisions:    "11111111111111111111110011000111010100100001110001110011000000111000111111011011011100100110101000100110011111000010010001000001110110011001100111110100001100000000100000101110000110010111111001011111100111010100010011111010000010000101010011111100000001011000100101011011011011100010001000011100001010001101101000000011001101100001101011000110101000001001111011010001000000111010000111000000111011111110011111110110110111100110100110010000000011100000001000010110100000010101110011001101110101010101",
		},
		{
			name: "greedy-onsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return baseline.NewGreedyOnsite(i.Network)
			},
			admitted:     324,
			revenue:      14897.792167456262,
			placementSum: 547225,
			decisions:    "11111111111111111111111111111111111001110010010001111110010000111110111111111111111111110000111100010111100111011011011001000001111110101111100111111110000101001111010010101111111111011111111100011111000011111111110111111111000111000111111000111101000001111110111101111000011011100110110001100100111111100001111100010011111000000001111111100111111000000010110000011101100011111111101101110000111111111110101111111011111111111101000111100000000100100100000000011111110000010111111100001111111001011111",
		},
		{
			name: "greedy-offsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return baseline.NewGreedyOffsite(i.Network)
			},
			admitted:     310,
			revenue:      15053.457004176456,
			placementSum: 625694,
			decisions:    "11111111111111111111111111111011111101110010001000111110010000111110111101111111111111111001111100000111111110000001011000000001111110111111100100111111000100001110100000001111111111011111111101011110100111111101000111111101100110001111010000111111000001110010111111111000010011100110111001101000111110100001111100000011001101000001111111100111101000000010111010011101110001111111100001100000111111111111111111111100111111111111010010100000000110000100000000011110100010010111111010011111111101001111",
		},
		{
			name: "firstfit-onsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return baseline.NewFirstFitOnsite(i.Network)
			},
			admitted:     313,
			revenue:      15121.921907230704,
			placementSum: 509425,
			decisions:    "11111111111111111111111111111111110010011000010001111110010000111111111111111111111111100000111100010111110111001011011000000001111110101111100100111110000101001111010010101111111111111111111000011111000011111100010111111111110110001111100000111111010001110010111111111000011111100110111000000000101110110001111100100011001000000001111111010111101100000010111000010000000011111111111101110000111011111111101111111011111111100111011110000000000110100110000000011110110000010111110111011111111001101111",
		},
		{
			name: "random-onsite",
			make: func(i *workload.Instance) (core.Scheduler, error) {
				return baseline.NewRandomOnsite(i.Network, rand.New(rand.NewSource(7)))
			},
			admitted:     312,
			revenue:      14946.712494340214,
			placementSum: 531122,
			decisions:    "11111111111111111111111111111111110000100010010001111110010000111110111111111111111111100000111101000111110111010001011000000001111110111111110111111110000101001111010000001111111111011111111100011111100111111111100111111101000110001111110000111111000001110010111101111100010011101110010001110000111110100101111100011011001100000001111111000111101100000010101000011111000011111111101001100000011011111111111111101011111111100110000111100010000110100110000000011111100000000111110010011111101111101111",
		},
	}

	inst, err := revnf.NewInstance(revnf.DefaultInstanceConfig(500), 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Run(e.name, func(t *testing.T) {
			sched, err := e.make(inst)
			if err != nil {
				t.Fatal(err)
			}
			var res *simulate.Result
			if e.allow {
				res, err = simulate.Run(inst, sched, simulate.AllowViolations())
			} else {
				res, err = simulate.Run(inst, sched)
			}
			if err != nil {
				t.Fatal(err)
			}
			if res.Admitted != e.admitted {
				t.Errorf("admitted: got %d, golden %d", res.Admitted, e.admitted)
			}
			if res.Revenue != e.revenue {
				t.Errorf("revenue: got %v, golden %v (must be bit-identical)", res.Revenue, e.revenue)
			}
			bits := make([]byte, len(res.Decisions))
			sum := 0
			for i, d := range res.Decisions {
				if d.Admitted {
					bits[i] = '1'
					for _, a := range d.Placement.Assignments {
						sum += (i + 1) * (a.Cloudlet + 3*a.Instances)
					}
				} else {
					bits[i] = '0'
				}
			}
			if sum != e.placementSum {
				t.Errorf("placement checksum: got %d, golden %d", sum, e.placementSum)
			}
			if got := string(bits); got != e.decisions {
				for i := range got {
					if got[i] != e.decisions[i] {
						t.Errorf("decision trace diverges at request %d: got %c, golden %c", i, got[i], e.decisions[i])
						break
					}
				}
			}
		})
	}
}

// TestGoldenSerialAdapter drives the two-phase schedulers through
// core.SerialAdapter and requires the identical golden trace: the adapter
// packages the Decide ≡ Propose;Commit equivalence the scheduler contract
// promises.
func TestGoldenSerialAdapter(t *testing.T) {
	inst, err := revnf.NewInstance(revnf.DefaultInstanceConfig(500), 42)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	want, err := simulate.Run(inst, direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := simulate.Run(inst, core.NewSerialAdapter(adapted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Admitted != want.Admitted || got.Revenue != want.Revenue {
		t.Fatalf("SerialAdapter diverged: got (%d, %v), want (%d, %v)",
			got.Admitted, got.Revenue, want.Admitted, want.Revenue)
	}
	for i := range want.Decisions {
		if got.Decisions[i].Admitted != want.Decisions[i].Admitted {
			t.Fatalf("SerialAdapter decision %d diverged", i)
		}
	}
}
