// Command vnfsim runs one online simulation and prints the audited
// result: revenue, admission rate, utilization, capacity violations, and
// (optionally) a Monte-Carlo availability check of every admitted
// placement.
//
// Usage:
//
//	vnfsim -algorithm pd -scheme onsite -requests 300 -seed 1
//	vnfsim -algorithm greedy -scheme offsite -topology geant -cloudlets 10
//	vnfsim -algorithm raw -scheme onsite -requests 500     # theory-faithful Algorithm 1
//	vnfsim -instance trace.json -algorithm pd -scheme onsite
//	vnfsim -algorithm pd -scheme onsite -failure-trials 10000
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"revnf"
	"revnf/internal/core"
	"revnf/internal/experiments"
	"revnf/internal/onsite"
	"revnf/internal/pool"
	"revnf/internal/qos"
	"revnf/internal/simulate"
	"revnf/internal/topology"
	"revnf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vnfsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vnfsim", flag.ContinueOnError)
	var (
		algorithm = fs.String("algorithm", "pd", "scheduler: pd|raw|greedy|firstfit|random")
		scheme    = fs.String("scheme", "onsite", "redundancy scheme: onsite|offsite|shared")
		poolSize  = fs.Int("pool-size", 0, "shared scheme: requests per pooled backup instance (0 = default)")
		topo      = fs.String("topology", "", "embedded topology name")
		cloudlets = fs.Int("cloudlets", 0, "cloudlet count")
		requests  = fs.Int("requests", 300, "request count")
		horizon   = fs.Int("horizon", 0, "time horizon T")
		seed      = fs.Int64("seed", 1, "workload seed")
		instance  = fs.String("instance", "", "load instance JSON instead of generating")
		trials    = fs.Int("failure-trials", 0, "Monte-Carlo availability trials (0 = skip)")
		mttr      = fs.Float64("timeline-mttr", 0, "cloudlet MTTR in slots for a failure-timeline run (0 = skip)")
		showQoS   = fs.Bool("qos", false, "report recovery latency and sync traffic on the topology")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sch, err := core.ParseScheme(*scheme)
	if err != nil {
		return fmt.Errorf("-scheme: %w", err)
	}

	inst, err := loadOrGenerate(*instance, *topo, *cloudlets, *requests, *horizon, *seed)
	if err != nil {
		return err
	}

	if *algorithm == "pooled" {
		if sch != core.OnSite {
			return fmt.Errorf("pooled admission is an on-site mechanism")
		}
		res, err := pool.Run(inst)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "algorithm:        pooled-greedy (on-site, shared backups)\n")
		fmt.Fprintf(out, "requests:         %d\n", len(inst.Trace))
		fmt.Fprintf(out, "admitted:         %d (%.1f%%)\n", res.Admitted, 100*res.AdmissionRate())
		fmt.Fprintf(out, "revenue:          %.2f\n", res.Revenue)
		fmt.Fprintf(out, "mean utilization: %.1f%%\n", 100*res.Utilization)
		fmt.Fprintf(out, "backup units:     %d pooled vs %d dedicated (saved %d)\n",
			res.BackupUnits, res.DedicatedBackupUnits, res.DedicatedBackupUnits-res.BackupUnits)
		return nil
	}

	sched, allowViolations, err := buildScheduler(*algorithm, sch, *poolSize, inst, *seed)
	if err != nil {
		return err
	}

	var res *simulate.Result
	if allowViolations {
		res, err = simulate.Run(inst, sched, simulate.AllowViolations())
	} else {
		res, err = simulate.Run(inst, sched)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "algorithm:        %s (%s)\n", res.Algorithm, res.Scheme)
	fmt.Fprintf(out, "requests:         %d\n", len(inst.Trace))
	fmt.Fprintf(out, "admitted:         %d (%.1f%%)\n", res.Admitted, 100*res.AdmissionRate())
	fmt.Fprintf(out, "revenue:          %.2f\n", res.Revenue)
	fmt.Fprintf(out, "mean utilization: %.1f%%\n", 100*res.Utilization)
	fmt.Fprintf(out, "violated cells:   %d (max ratio %.2f)\n", len(res.Violations), res.MaxViolationRatio)

	if sch == core.OnSite {
		if analysis, err := onsite.Analyze(inst.Network, inst.Trace); err == nil {
			fmt.Fprintf(out, "competitive ratio (Theorem 1): %.1f\n", analysis.CompetitiveRatio)
			fmt.Fprintf(out, "violation bound ξ (Lemma 8):   %.1f units (%.2fx cap_min)\n",
				analysis.ViolationBound, analysis.ViolationRatio)
		}
	}

	if *trials > 0 {
		report, err := simulate.EstimateAvailability(
			inst.Network, inst.Trace, res.AdmittedPlacements(), *trials,
			rand.New(rand.NewSource(*seed+1)))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "failure injection: %d trials/request, %.1f%% of placements met their requirement\n",
			report.Trials, 100*report.MetFraction)
	}

	if *showQoS {
		name := *topo
		if name == "" {
			name = experiments.DefaultSetup().Topology
		}
		g, err := topology.Load(name)
		if err != nil {
			return err
		}
		rep, err := qos.Assess(inst.Network, g, inst.Trace, res.AdmittedPlacements())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "qos on %s: mean recovery latency %.2f, max %.2f, total sync traffic %.1f\n",
			name, rep.MeanRecoveryLatency, rep.MaxRecoveryLatency, rep.TotalSyncTraffic)
	}

	if *mttr > 0 {
		cfg := simulate.TimelineConfig{CloudletMTTR: *mttr, InstanceMTTR: 1}
		rep, err := simulate.SimulateTimeline(
			inst.Network, inst.Horizon, inst.Trace, res.AdmittedPlacements(), cfg,
			rand.New(rand.NewSource(*seed+2)))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "failure timeline (cloudlet MTTR %.0f slots): mean delivered uptime %.3f, %.1f%% of requests with zero downtime\n",
			*mttr, rep.MeanDelivered, 100*rep.FullServiceFraction)
	}
	return nil
}

func loadOrGenerate(path, topo string, cloudlets, requests, horizon int, seed int64) (*workload.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open instance: %w", err)
		}
		defer func() {
			_ = f.Close() // read-only descriptor; nothing to report
		}()
		return workload.LoadInstance(f)
	}
	setup := experiments.DefaultSetup()
	if topo != "" {
		setup.Topology = topo
	}
	if cloudlets > 0 {
		setup.Cloudlets = cloudlets
	}
	if horizon > 0 {
		setup.Horizon = horizon
	}
	return setup.Instance(requests, setup.H, setup.K, seed)
}

// buildScheduler maps the flags onto the public functional-options
// constructor; the scheme arrives already parsed by core.ParseScheme.
func buildScheduler(algorithm string, scheme core.Scheme, poolSize int, inst *workload.Instance, seed int64) (core.Scheduler, bool, error) {
	alg := revnf.Algorithm(algorithm)
	if !alg.Valid() {
		return nil, false, fmt.Errorf("unknown -algorithm %q (want pd|raw|greedy|firstfit|random)", algorithm)
	}
	opts := []revnf.SchedulerOption{
		revnf.WithAlgorithm(alg),
		revnf.WithHorizon(inst.Horizon),
		revnf.WithRNG(rand.New(rand.NewSource(seed))),
	}
	if poolSize > 0 {
		opts = append(opts, revnf.WithSharedPoolSize(poolSize))
	}
	s, err := revnf.NewScheduler(inst.Network, scheme, opts...)
	if err != nil {
		return nil, false, err
	}
	return s, alg.AllowsViolations(), nil
}
