package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPDOnsite(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-algorithm", "pd", "-scheme", "onsite", "-requests", "50", "-seed", "1"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"pd-onsite", "revenue:", "competitive ratio", "violation bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	cases := []struct{ algorithm, scheme string }{
		{"pd", "onsite"}, {"raw", "onsite"}, {"greedy", "onsite"},
		{"firstfit", "onsite"}, {"random", "onsite"},
		{"pd", "offsite"}, {"greedy", "offsite"},
	}
	for _, tc := range cases {
		t.Run(tc.algorithm+"-"+tc.scheme, func(t *testing.T) {
			var sb strings.Builder
			err := run([]string{
				"-algorithm", tc.algorithm, "-scheme", tc.scheme,
				"-requests", "40", "-seed", "2",
			}, &sb)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(sb.String(), "revenue:") {
				t.Errorf("output missing revenue:\n%s", sb.String())
			}
		})
	}
}

func TestRunWithFailureInjection(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-requests", "30", "-failure-trials", "500"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "failure injection") {
		t.Errorf("output missing failure injection:\n%s", sb.String())
	}
}

func TestRunFromInstanceFile(t *testing.T) {
	// Generate an instance with workloadgen-equivalent code paths: write
	// via the simulator flags instead by generating through run of
	// vnfsim? Simplest: produce the file with the workload generator in
	// this process.
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := writeTestInstance(t, path); err != nil {
		t.Fatalf("writeTestInstance: %v", err)
	}
	var sb strings.Builder
	if err := run([]string{"-instance", path, "-algorithm", "greedy", "-scheme", "onsite"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "greedy-onsite") {
		t.Errorf("output missing algorithm name:\n%s", sb.String())
	}
}

func writeTestInstance(t *testing.T, path string) error {
	t.Helper()
	inst, err := loadOrGenerate("", "", 3, 20, 15, 9)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		_ = f.Close()
	}()
	return inst.Save(f)
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scheme", "nope"}, &sb); err == nil {
		t.Error("bad scheme did not error")
	}
	if err := run([]string{"-algorithm", "nope"}, &sb); err == nil {
		t.Error("bad algorithm did not error")
	}
	if err := run([]string{"-algorithm", "raw", "-scheme", "offsite"}, &sb); err == nil {
		t.Error("raw off-site did not error")
	}
	if err := run([]string{"-instance", "/does/not/exist.json"}, &sb); err == nil {
		t.Error("missing instance file did not error")
	}
}

func TestRunPooled(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-algorithm", "pooled", "-requests", "40", "-seed", "3"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"pooled-greedy", "backup units", "saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-algorithm", "pooled", "-scheme", "offsite"}, &sb); err == nil {
		t.Error("pooled off-site did not error")
	}
}

func TestRunTimeline(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "30", "-timeline-mttr", "3"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "failure timeline") {
		t.Errorf("output missing timeline:\n%s", sb.String())
	}
}

func TestRunQoS(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "30", "-scheme", "offsite", "-qos"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "qos on") {
		t.Errorf("output missing qos line:\n%s", sb.String())
	}
	if err := run([]string{"-requests", "10", "-qos", "-topology", "nope"}, &sb); err == nil {
		t.Error("unknown topology with -qos did not error")
	}
}
