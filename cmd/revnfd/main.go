// Command revnfd serves online admission decisions over HTTP. It wraps
// one paper scheduler (Algorithm 1, Algorithm 2, or a baseline) behind
// the concurrent admission engine in internal/serve: a bounded ingest
// queue, a real-time slot clock that expires placements and returns
// their capacity, and a Prometheus /metrics endpoint.
//
// Usage:
//
//	revnfd -addr :8080 -algorithm pd -scheme onsite -slot 1s
//	revnfd -addr :8080 -algorithm pd -scheme offsite -topology geant -cloudlets 10
//	revnfd -instance trace.json -algorithm greedy -scheme onsite
//	revnfd -trace 1024 -trace-sample 1 -pprof   # decision traces + profiling
//	revnfd -chaos -chaos-seed 7 -slot 500ms     # failure injection + SLO-tracked repair
//	revnfd -horizon-mode rolling -horizon 64    # continuous operation: a 64-slot rolling window
//	revnfd -stream-listen :8081                 # streaming ingest (NDJSON or binary frames)
//
// The network is drawn from the same generator as the simulators, so a
// load generator started with the same -topology/-cloudlets/-seed flags
// replays requests against the network the daemon is serving. SIGINT or
// SIGTERM begins a graceful shutdown that drains queued admissions
// before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"revnf"
	"revnf/internal/chaos"
	"revnf/internal/core"
	"revnf/internal/experiments"
	"revnf/internal/serve"
	"revnf/internal/trace"
	"revnf/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "revnfd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("revnfd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		streamAddr  = fs.String("stream-listen", "", "streaming ingest listen address (NDJSON or binary frames on a persistent connection); empty disables")
		algorithm   = fs.String("algorithm", "pd", "scheduler: pd|raw|greedy|firstfit|random")
		scheme      = fs.String("scheme", "onsite", "redundancy scheme: onsite|offsite|shared")
		poolSize    = fs.Int("pool-size", 0, "shared scheme: requests per pooled backup instance (0 = default)")
		topo        = fs.String("topology", "", "embedded topology name")
		cloudlets   = fs.Int("cloudlets", 0, "cloudlet count")
		horizon     = fs.Int("horizon", 0, "time horizon T in slots (rolling mode: the window width W)")
		horizonMode = fs.String("horizon-mode", "fixed", "horizon mode: fixed (serve [1,T] and stop admitting) or rolling (a W-slot window follows the clock; admit forever)")
		slot        = fs.Duration("slot", time.Second, "wall-clock duration of one slot (0 = frozen clock)")
		queue       = fs.Int("queue", serve.DefaultQueueSize, "bounded ingest queue size")
		workers     = fs.Int("workers", 1, "decision concurrency: 1 = serial, >1 = sharded propose/commit workers")
		seed        = fs.Int64("seed", 1, "network generation seed")
		instance    = fs.String("instance", "", "load instance JSON providing the network instead of generating")
		drain       = fs.Duration("drain", 10*time.Second, "graceful shutdown budget")
		traceCap    = fs.Int("trace", 0, "decision-trace ring capacity; 0 disables tracing")
		traceSample = fs.Int("trace-sample", 1, "trace one in N requests (1 = every request)")
		pprofOn     = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		chaosOn     = fs.Bool("chaos", false, "enable the failure runtime: seeded chaos injection, repair, SLO accounting")
		chaosSeed   = fs.Int64("chaos-seed", 0, "chaos injection seed (0 = derive from -seed)")
		chaosCMTTR  = fs.Float64("chaos-cloudlet-mttr", 4, "mean slots a failed cloudlet stays down")
		chaosIMTTR  = fs.Float64("chaos-instance-mttr", 2, "mean slots a failed instance stays down")
		repairTries = fs.Int("repair-attempts", 3, "repair attempts per failure episode before a placement degrades")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var rolling bool
	switch *horizonMode {
	case "fixed":
	case "rolling":
		rolling = true
	default:
		return fmt.Errorf("unknown -horizon-mode %q (want fixed|rolling)", *horizonMode)
	}

	inst, err := loadNetwork(*instance, *topo, *cloudlets, *horizon, *seed)
	if err != nil {
		return err
	}
	var store *trace.Store
	var rec trace.Recorder
	if *traceCap > 0 {
		store = trace.NewStore(*traceCap)
		rec = trace.NewSampling(store, *traceSample)
	}
	sched, allowViolations, err := buildScheduler(*algorithm, *scheme, *poolSize, inst, *seed, rec)
	if err != nil {
		return err
	}
	var inj *chaos.Injector
	if *chaosOn {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = *seed
		}
		// The injector's true rates default to the catalog, so the fleet
		// fails at exactly the reliability the scheduler prices against.
		inj, err = chaos.New(chaos.Config{
			Network:      inst.Network,
			CloudletMTTR: *chaosCMTTR,
			InstanceMTTR: *chaosIMTTR,
			Seed:         cseed,
		})
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
	}
	engine, err := serve.New(serve.Config{
		Network:         inst.Network,
		Scheduler:       sched,
		Horizon:         inst.Horizon,
		Rolling:         rolling,
		QueueSize:       *queue,
		Workers:         *workers,
		SlotDuration:    *slot,
		AllowViolations: allowViolations,
		Traces:          store,
		Recorder:        rec,
		Chaos:           inj,
		RepairAttempts:  *repairTries,
	})
	if err != nil {
		return err
	}
	if *workers > 1 && engine.Workers() == 1 {
		fmt.Fprintf(out, "revnfd: scheduler %s does not support concurrent proposals; running serial\n", sched.Name())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	handler := serve.NewHandler(engine)
	if *pprofOn {
		handler = withPprof(handler)
	}
	srv := &http.Server{Handler: handler}
	mode := ""
	if inj != nil {
		mode = ", chaos on"
	}
	fmt.Fprintf(out, "revnfd: %s/%s over %d cloudlets, horizon %d (%s), slot %s, workers %d%s, listening on http://%s\n",
		sched.Name(), sched.Scheme(), len(inst.Network.Cloudlets), inst.Horizon, *horizonMode, *slot, engine.Workers(), mode, ln.Addr())

	errc := make(chan error, 2)
	go func() { errc <- srv.Serve(ln) }()

	var stream *serve.StreamServer
	if *streamAddr != "" {
		sln, err := net.Listen("tcp", *streamAddr)
		if err != nil {
			return fmt.Errorf("stream listen: %w", err)
		}
		stream = serve.NewStreamServer(engine)
		fmt.Fprintf(out, "revnfd: streaming ingest (ndjson, frame) listening on %s\n", sln.Addr())
		go func() {
			if err := stream.Serve(sln); err != nil {
				errc <- fmt.Errorf("stream serve: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "revnfd: shutting down (draining for up to %s)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections and wait for in-flight handlers, then
	// drain the engine's queued admissions.
	serr := srv.Shutdown(sctx)
	if stream != nil {
		if err := stream.Close(); err != nil {
			return fmt.Errorf("close stream listener: %w", err)
		}
	}
	if err := engine.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain engine: %w", err)
	}
	if serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	s := engine.Stats()
	fmt.Fprintf(out, "revnfd: served %d admissions, %d rejections, revenue %.2f\n",
		s.Admitted, s.RejectedTotal(), s.Revenue)
	return nil
}

// loadNetwork builds the served network: either the one stored in an
// instance file or a freshly generated one. Generation draws cloudlets
// before any trace, so the same -topology/-cloudlets/-seed flags yield
// the same network in revnfd and revnfload regardless of request count.
func loadNetwork(path, topo string, cloudlets, horizon int, seed int64) (*workload.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open instance: %w", err)
		}
		defer func() {
			_ = f.Close() // read-only descriptor; nothing to report
		}()
		return workload.LoadInstance(f)
	}
	setup := experiments.DefaultSetup()
	if topo != "" {
		setup.Topology = topo
	}
	if cloudlets > 0 {
		setup.Cloudlets = cloudlets
	}
	if horizon > 0 {
		setup.Horizon = horizon
	}
	// The generator requires at least one request; the daemon only uses
	// the network and horizon, and the cloudlet draw precedes the trace
	// draw, so the request count does not perturb the network.
	return setup.Instance(1, setup.H, setup.K, seed)
}

// buildScheduler maps the -algorithm/-scheme flags onto the public
// functional-options constructor. The scheme spelling is whatever
// core.ParseScheme accepts (one parser for flags, JSON, and wire bytes);
// the algorithm values are the revnf.Algorithm constants verbatim.
func buildScheduler(algorithm, scheme string, poolSize int, inst *workload.Instance, seed int64, rec trace.Recorder) (core.Scheduler, bool, error) {
	sch, err := core.ParseScheme(scheme)
	if err != nil {
		return nil, false, fmt.Errorf("-scheme: %w", err)
	}
	alg := revnf.Algorithm(algorithm)
	if !alg.Valid() {
		return nil, false, fmt.Errorf("unknown -algorithm %q (want pd|raw|greedy|firstfit|random)", algorithm)
	}
	opts := []revnf.SchedulerOption{
		revnf.WithAlgorithm(alg),
		revnf.WithHorizon(inst.Horizon),
		revnf.WithRecorder(rec),
		revnf.WithRNG(rand.New(rand.NewSource(seed))),
	}
	if poolSize > 0 {
		opts = append(opts, revnf.WithSharedPoolSize(poolSize))
	}
	s, err := revnf.NewScheduler(inst.Network, sch, opts...)
	if err != nil {
		return nil, false, err
	}
	return s, alg.AllowsViolations(), nil
}

// withPprof mounts the net/http/pprof handlers beside the API mux. Opt-in
// via -pprof: profiling endpoints expose heap contents and timing oracles,
// so they stay off by default.
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", api)
	return mux
}
