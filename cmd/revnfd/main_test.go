package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read daemon output while run is writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (http://[^\s]+)`)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a stop function that triggers graceful shutdown and waits.
func startDaemon(t *testing.T, extra ...string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-slot", "0", "-drain", "5s"}, extra...)
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, args, out) }()

	deadline := time.Now().Add(5 * time.Second)
	var url string
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
			break
		}
		select {
		case err := <-errc:
			t.Fatalf("daemon exited early: %v (output %q)", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if url == "" {
		cancel()
		t.Fatalf("daemon never reported its address: %q", out.String())
	}
	stopped := false
	stop := func() error {
		if stopped {
			return nil
		}
		stopped = true
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			return fmt.Errorf("daemon did not stop")
		}
	}
	t.Cleanup(func() { _ = stop() })
	return url, out, stop
}

func TestDaemonServesAndShutsDown(t *testing.T) {
	url, out, stop := startDaemon(t)

	resp, err := http.Post(url+"/v1/requests", "application/json",
		strings.NewReader(`{"vnf":0,"reliability":0.9,"duration":2,"payment":50}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var dec struct {
		Admitted bool   `json:"admitted"`
		Reason   string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("request not admitted: %+v", dec)
	}

	hr, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", hr.StatusCode)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	final := out.String()
	if !strings.Contains(final, "served 1 admissions") {
		t.Errorf("shutdown summary missing admission count: %q", final)
	}
}

func TestDaemonFlagValidation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, args := range [][]string{
		{"-scheme", "bogus"},
		{"-algorithm", "bogus"},
		{"-algorithm", "raw", "-scheme", "offsite"},
		{"-instance", "/nonexistent/trace.json"},
		{"-chaos", "-chaos-cloudlet-mttr", "0"},
		{"-horizon-mode", "bogus"},
	} {
		if err := run(ctx, args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestDaemonOffsiteScheme(t *testing.T) {
	url, _, _ := startDaemon(t, "-algorithm", "pd", "-scheme", "offsite")
	resp, err := http.Get(url + "/v1/cloudlets")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cloudlets status = %d", resp.StatusCode)
	}
	var body struct {
		Horizon   int               `json:"horizon"`
		Cloudlets []json.RawMessage `json:"cloudlets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Horizon < 1 || len(body.Cloudlets) == 0 {
		t.Errorf("cloudlets payload = %+v", body)
	}
}

// TestDaemonRollingSmoke starts the daemon in rolling-horizon mode and
// checks the mode is visible end to end: the startup banner, the
// /v1/cloudlets window fields, an admission, and the window gauges on
// /metrics.
func TestDaemonRollingSmoke(t *testing.T) {
	url, out, _ := startDaemon(t, "-horizon-mode", "rolling", "-horizon", "16")
	if !strings.Contains(out.String(), "(rolling)") {
		t.Errorf("banner does not mention rolling mode: %q", out.String())
	}

	resp, err := http.Get(url + "/v1/cloudlets")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Horizon     int    `json:"horizon"`
		HorizonMode string `json:"horizon_mode"`
		WindowBase  int    `json:"window_base"`
		WindowSize  int    `json:"window_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if body.HorizonMode != "rolling" || body.WindowBase != 1 || body.WindowSize != 16 || body.Horizon != 16 {
		t.Fatalf("cloudlets window fields = %+v, want rolling base 1 size 16", body)
	}

	req := strings.NewReader(`{"vnf": 0, "reliability": 0.9, "duration": 4, "payment": 50}`)
	resp, err = http.Post(url+"/v1/requests", "application/json", req)
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		Admitted bool `json:"admitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !dec.Admitted {
		t.Fatal("rolling daemon rejected a trivially satisfiable request")
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{"revnfd_window_base 1", "revnfd_window_size 16"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDaemonTraceSmoke starts the daemon with tracing and pprof enabled,
// admits one request, and walks the new observability surface end to end:
// the decision trace endpoint, the error envelope for an untraced ID, the
// trace counters and λ gauges on /metrics, and the pprof index.
func TestDaemonTraceSmoke(t *testing.T) {
	url, _, _ := startDaemon(t, "-trace", "64", "-trace-sample", "1", "-pprof")

	resp, err := http.Post(url+"/v1/requests", "application/json",
		strings.NewReader(`{"vnf":0,"reliability":0.9,"duration":2,"payment":50}`))
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		ID       int  `json:"id"`
		Admitted bool `json:"admitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !dec.Admitted {
		t.Fatalf("request not admitted: %+v", dec)
	}

	tr, err := http.Get(fmt.Sprintf("%s/v1/decisions/%d/trace", url, dec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tr.Body.Close() }()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", tr.StatusCode)
	}
	var dt struct {
		Request  int    `json:"request"`
		Admitted bool   `json:"admitted"`
		Outcome  string `json:"outcome"`
		Attempts []struct {
			BestCloudlet int     `json:"best_cloudlet"`
			BestCost     float64 `json:"best_cost"`
			Payment      float64 `json:"payment"`
			Admit        bool    `json:"admit"`
		} `json:"attempts"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&dt); err != nil {
		t.Fatal(err)
	}
	if dt.Request != dec.ID || !dt.Admitted || dt.Outcome != "admitted" {
		t.Errorf("trace = %+v, want admitted outcome", dt)
	}
	if len(dt.Attempts) == 0 || !dt.Attempts[0].Admit ||
		dt.Attempts[0].BestCloudlet < 0 || dt.Attempts[0].Payment <= dt.Attempts[0].BestCost {
		t.Errorf("trace attempts = %+v, want a winning payment test", dt.Attempts)
	}

	// Untraced ID: the structured error envelope.
	er, err := http.Get(url + "/v1/decisions/424242/trace")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Code   int    `json:"code"`
		Reason string `json:"reason"`
		Detail string `json:"detail"`
	}
	if err := json.NewDecoder(er.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	_ = er.Body.Close()
	if er.StatusCode != http.StatusNotFound || env.Code != 404 || env.Reason != "not-found" || env.Detail == "" {
		t.Errorf("envelope = %d %+v, want 404/not-found with detail", er.StatusCode, env)
	}

	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := &bytes.Buffer{}
	_, _ = mb.ReadFrom(mr.Body)
	_ = mr.Body.Close()
	for _, want := range []string{
		"revnfd_trace_recorded_total",
		"revnfd_trace_store_capacity 64",
		`revnfd_dual_price{cloudlet="0",window="current"}`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	pr, err := http.Get(url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d, want 200", pr.StatusCode)
	}
}

// TestDaemonChaosSmoke starts the daemon with the failure runtime enabled,
// admits one request, and checks the per-placement health surface plus the
// chaos metric families appear.
func TestDaemonChaosSmoke(t *testing.T) {
	url, _, _ := startDaemon(t, "-chaos", "-chaos-seed", "42")

	resp, err := http.Post(url+"/v1/requests", "application/json",
		strings.NewReader(`{"vnf":0,"reliability":0.9,"duration":3,"payment":50}`))
	if err != nil {
		t.Fatal(err)
	}
	var dec struct {
		ID       int  `json:"id"`
		Admitted bool `json:"admitted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if !dec.Admitted {
		t.Fatalf("request not admitted: %+v", dec)
	}

	hr, err := http.Get(fmt.Sprintf("%s/v1/placements/%d/health", url, dec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hr.Body.Close() }()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d, want 200", hr.StatusCode)
	}
	var health struct {
		ID          int     `json:"id"`
		State       string  `json:"state"`
		Required    float64 `json:"required"`
		Provisioned float64 `json:"provisioned"`
		SLOMet      bool    `json:"slo_met"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.ID != dec.ID || health.State != "active" || health.Required != 0.9 {
		t.Errorf("health = %+v, want active placement requiring 0.9", health)
	}
	if health.Provisioned < health.Required {
		t.Errorf("provisioned %v below requirement %v", health.Provisioned, health.Required)
	}
	if !health.SLOMet {
		t.Errorf("fresh placement reports SLO missed: %+v", health)
	}

	mr, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := &bytes.Buffer{}
	_, _ = mb.ReadFrom(mr.Body)
	_ = mr.Body.Close()
	for _, want := range []string{
		"revnfd_chaos_slots_total",
		"revnfd_repairs_total",
		`revnfd_estimated_reliability{cloudlet="0"}`,
	} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDaemonHealthWithoutChaos keeps the health endpoint an explicit 404
// when the failure runtime is disabled, steering operators to -chaos.
func TestDaemonHealthWithoutChaos(t *testing.T) {
	url, _, _ := startDaemon(t)
	hr, err := http.Get(url + "/v1/placements/1/health")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Detail string `json:"detail"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	_ = hr.Body.Close()
	if hr.StatusCode != http.StatusNotFound || !strings.Contains(env.Detail, "-chaos") {
		t.Errorf("health without chaos = %d %+v, want 404 pointing at -chaos", hr.StatusCode, env)
	}
}

// TestDaemonPprofOffByDefault keeps the profiling surface opt-in.
func TestDaemonPprofOffByDefault(t *testing.T) {
	url, _, _ := startDaemon(t)
	pr, err := http.Get(url + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	_ = pr.Body.Close()
	if pr.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}
