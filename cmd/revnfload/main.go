// Command revnfload replays a workload trace against a running revnfd
// and reports achieved throughput, admission counts, and decision
// latency tails. It speaks all three ingress protocols: one HTTP POST
// per request (-proto json), and the persistent streaming protocols
// (-proto ndjson|frame) against revnfd's -stream-listen port.
//
// Usage:
//
//	revnfload -target http://127.0.0.1:8080 -requests 2000 -concurrency 16
//	revnfload -target http://127.0.0.1:8080 -rate 500 -requests 1000
//	revnfload -proto frame -stream-target 127.0.0.1:8081 -conns 4 -streams 256
//	revnfload -proto ndjson -requests 100000 -json   # machine-readable summary
//
// The trace is drawn from the same generator as revnfd, so matching
// -topology/-cloudlets/-horizon/-seed flags replay requests sized for
// the network the daemon is serving. By default requests keep their
// generated arrival slots (the daemon schedules future windows); -now
// rebases every request onto the daemon's current slot instead.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"revnf/internal/experiments"
	"revnf/internal/wire"
	"revnf/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "revnfload:", err)
		os.Exit(1)
	}
}

type wireRequest struct {
	VNF         int     `json:"vnf"`
	Reliability float64 `json:"reliability"`
	Arrival     int     `json:"arrival,omitempty"`
	Duration    int     `json:"duration"`
	Payment     float64 `json:"payment"`
}

type wireDecision struct {
	Admitted bool   `json:"admitted"`
	Reason   string `json:"reason"`
}

// result is one request's outcome as observed by the client.
type result struct {
	status  int
	decided wireDecision
	latency time.Duration
	err     error
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("revnfload", flag.ContinueOnError)
	var (
		target       = fs.String("target", "http://127.0.0.1:8080", "revnfd base URL (HTTP API; also used by -wait)")
		streamTarget = fs.String("stream-target", "127.0.0.1:8081", "revnfd -stream-listen address for -proto ndjson|frame")
		proto        = fs.String("proto", "json", "ingress protocol: json (one POST per request), ndjson, or frame (persistent streams)")
		requests     = fs.Int("requests", 1000, "request count when generating a trace")
		rate         = fs.Float64("rate", 0, "offered load in requests/second (0 = unthrottled)")
		concurrency  = fs.Int("concurrency", 8, "concurrent in-flight requests (-proto json)")
		conns        = fs.Int("conns", 1, "stream connections (-proto ndjson|frame)")
		streams      = fs.Int("streams", 256, "pipelined in-flight requests per stream connection (-proto ndjson|frame)")
		topo         = fs.String("topology", "", "embedded topology name")
		cloudlets    = fs.Int("cloudlets", 0, "cloudlet count")
		horizon      = fs.Int("horizon", 0, "time horizon T in slots")
		seed         = fs.Int64("seed", 1, "trace generation seed")
		instance     = fs.String("instance", "", "load instance JSON instead of generating")
		now          = fs.Bool("now", false, "drop generated arrivals so every request targets the current slot")
		jsonOut      = fs.Bool("json", false, "emit the summary as one JSON object instead of text")
		wait         = fs.Duration("wait", 0, "poll <target>/healthz for up to this long before replaying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("concurrency must be at least 1")
	}
	if *conns < 1 || *streams < 1 {
		return fmt.Errorf("conns and streams must be at least 1")
	}
	switch *proto {
	case "json", "ndjson", "frame":
	default:
		return fmt.Errorf("unknown -proto %q (want json|ndjson|frame)", *proto)
	}

	inst, err := loadTrace(*instance, *topo, *cloudlets, *requests, *horizon, *seed)
	if err != nil {
		return err
	}
	reqs := make([]wireRequest, len(inst.Trace))
	for i, r := range inst.Trace {
		reqs[i] = wireRequest{VNF: r.VNF, Reliability: r.Reliability,
			Arrival: r.Arrival, Duration: r.Duration, Payment: r.Payment}
		if *now {
			reqs[i].Arrival = 0
		}
	}

	if *wait > 0 {
		if err := waitReady(ctx, *target, *wait); err != nil {
			return err
		}
	}

	var results []result
	var elapsed time.Duration
	if *proto == "json" {
		results, elapsed, err = replay(ctx, *target, reqs, *rate, *concurrency)
	} else {
		results, elapsed, err = replayStream(ctx, *streamTarget, *proto, reqs, *rate, *conns, *streams)
	}
	if err != nil {
		return err
	}
	s, reasons := summarize(*proto, *conns, results, elapsed)
	if *jsonOut {
		enc := json.NewEncoder(out)
		return enc.Encode(s)
	}
	report(out, s, reasons)
	return nil
}

// waitReady polls GET <target>/healthz until it answers 200, the budget
// expires, or the context is canceled.
func waitReady(ctx context.Context, target string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	client := &http.Client{Timeout: time.Second}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target %s not ready after %s", target, budget)
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// feed paces the request trace onto jobs at rate requests/second
// (unthrottled when rate <= 0), then closes the channel.
func feed(ctx context.Context, jobs chan<- wireRequest, reqs []wireRequest, rate float64, start time.Time) {
	defer close(jobs)
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := start
	for _, req := range reqs {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return
				}
			}
			next = next.Add(interval)
		}
		select {
		case jobs <- req:
		case <-ctx.Done():
			return
		}
	}
}

// replay streams the wire requests through a worker pool of HTTP
// posters, pacing the feed at rate requests/second when rate > 0.
func replay(ctx context.Context, target string, reqs []wireRequest, rate float64, concurrency int) ([]result, time.Duration, error) {
	// The default transport caps idle connections per host at 2, which
	// would churn a fresh TCP connection per request at higher
	// concurrency and dominate the measurement.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	defer client.CloseIdleConnections()
	jobs := make(chan wireRequest)
	results := make([]result, 0, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				r := post(ctx, client, target, req)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	feed(ctx, jobs, reqs, rate, start)
	wg.Wait()
	return results, time.Since(start), ctx.Err()
}

// replayStream drives the persistent streaming protocols: conns
// connections each pipeline up to window requests, writing from a shared
// paced feed and reading decisions in order off the same connection.
func replayStream(ctx context.Context, target, proto string, reqs []wireRequest, rate float64, conns, window int) ([]result, time.Duration, error) {
	jobs := make(chan wireRequest)
	results := make([]result, 0, len(reqs))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := streamConn(ctx, target, proto, jobs, window)
			mu.Lock()
			results = append(results, rs...)
			mu.Unlock()
		}()
	}
	feed(ctx, jobs, reqs, rate, start)
	wg.Wait()
	return results, time.Since(start), ctx.Err()
}

// streamConn runs one persistent connection: a writer goroutine encodes
// requests from jobs (flushing whenever the feed goes momentarily idle,
// mirroring the server's adaptive batcher) while the calling goroutine
// reads decisions in request order. The window semaphore bounds
// pipelined in-flight requests; sendTimes carries each request's send
// timestamp to the reader in FIFO order.
func streamConn(ctx context.Context, target, proto string, jobs <-chan wireRequest, window int) []result {
	conn, err := net.Dial("tcp", target)
	if err != nil {
		return []result{{err: err}}
	}
	defer conn.Close()

	frame := proto == "frame"
	sem := make(chan struct{}, window)
	sendTimes := make(chan time.Time, window)
	writeErr := make(chan error, 1)

	go func() {
		defer close(sendTimes)
		bw := bufio.NewWriterSize(conn, 64<<10)
		if frame {
			if _, err := bw.Write(wire.AppendPreamble(nil)); err != nil {
				writeErr <- err
				return
			}
		}
		var scratch []byte
		for {
			var req wireRequest
			var ok bool
			select {
			case req, ok = <-jobs:
			case <-ctx.Done():
				ok = false
			default:
				// Feed momentarily idle: flush what we have, then block.
				if err := bw.Flush(); err != nil {
					writeErr <- err
					return
				}
				select {
				case req, ok = <-jobs:
				case <-ctx.Done():
					ok = false
				}
			}
			if !ok {
				break
			}
			select {
			case sem <- struct{}{}: // pipelining window
			case <-ctx.Done():
				return
			}
			wr := wire.Request{VNF: req.VNF, Arrival: req.Arrival, Duration: req.Duration,
				Reliability: req.Reliability, Payment: req.Payment}
			if frame {
				var encErr error
				scratch, encErr = wire.AppendRequestFrame(scratch[:0], &wr)
				if encErr != nil {
					writeErr <- encErr
					return
				}
			} else {
				scratch = wire.AppendNDJSONRequest(scratch[:0], &wr)
			}
			sendTimes <- time.Now()
			if _, err := bw.Write(scratch); err != nil {
				writeErr <- err
				return
			}
		}
		if err := bw.Flush(); err != nil {
			writeErr <- err
			return
		}
		// Half-close tells the server the request stream is complete; the
		// decision stream keeps flowing the other way.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	var results []result
	br := bufio.NewReaderSize(conn, 64<<10)
	var fr *wire.FrameReader
	if frame {
		fr = wire.NewFrameReader(br)
	}
	for t0 := range sendTimes {
		r := result{status: http.StatusOK, latency: 0}
		var d wire.Decision
		var derr error
		if frame {
			d, derr = readFrameDecision(fr)
		} else {
			d, derr = readNDJSONDecision(br)
		}
		r.latency = time.Since(t0)
		if derr != nil {
			r.status = 0
			r.err = derr
		} else {
			r.decided = wireDecision{Admitted: d.Admitted, Reason: d.Reason.Reason()}
		}
		<-sem
		results = append(results, r)
		if derr != nil {
			// The stream is broken or terminally errored; everything still
			// in flight is lost.
			for range sendTimes {
				results = append(results, result{err: derr})
				<-sem
			}
			break
		}
	}
	select {
	case err := <-writeErr:
		results = append(results, result{err: err})
	default:
	}
	return results
}

func readFrameDecision(fr *wire.FrameReader) (wire.Decision, error) {
	var d wire.Decision
	typ, payload, err := fr.Next()
	if err != nil {
		return d, err
	}
	switch typ {
	case wire.FrameDecision:
		err = wire.DecodeDecision(payload, &d)
		return d, err
	case wire.FrameError:
		code, reason, detail, derr := wire.DecodeError(payload)
		if derr != nil {
			return d, derr
		}
		return d, fmt.Errorf("server error %d/%s: %s", code, reason.Reason(), detail)
	default:
		return d, fmt.Errorf("unexpected frame type %#x", typ)
	}
}

func readNDJSONDecision(br *bufio.Reader) (wire.Decision, error) {
	var d wire.Decision
	line, err := br.ReadBytes('\n')
	if err != nil && (err != io.EOF || len(bytes.TrimSpace(line)) == 0) {
		return d, err
	}
	if derr := wire.DecodeNDJSONDecision(line, &d); derr != nil {
		// Not a decision: maybe a terminal error record.
		var env struct {
			Error struct {
				Code   int    `json:"code"`
				Reason string `json:"reason"`
				Detail string `json:"detail"`
			} `json:"error"`
		}
		if jerr := json.Unmarshal(line, &env); jerr == nil && env.Error.Code != 0 {
			return d, fmt.Errorf("server error %d/%s: %s", env.Error.Code, env.Error.Reason, env.Error.Detail)
		}
		return d, derr
	}
	return d, nil
}

func post(ctx context.Context, client *http.Client, target string, req wireRequest) result {
	body, err := json.Marshal(req)
	if err != nil {
		return result{err: err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/requests", bytes.NewReader(body))
	if err != nil {
		return result{err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(hreq)
	lat := time.Since(t0)
	if err != nil {
		return result{err: err, latency: lat}
	}
	defer func() {
		_ = resp.Body.Close() // body already consumed below
	}()
	r := result{status: resp.StatusCode, latency: lat}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&r.decided); err != nil {
			r.err = err
		}
	}
	// Drain to EOF so the connection goes back to the keep-alive pool.
	_, _ = io.Copy(io.Discard, resp.Body)
	return r
}

// summary is the replay outcome; with -json it is emitted verbatim as
// one JSON object (the shape scripts/bench.sh records in BENCH_wire.json).
type summary struct {
	Proto           string  `json:"proto"`
	Conns           int     `json:"conns"`
	Requests        int     `json:"requests"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	Decided         int     `json:"decided"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	Admitted        int     `json:"admitted"`
	Rejected        int     `json:"rejected"`
	Throttled       int     `json:"throttled"`
	Failed          int     `json:"failed"`
	P50Ms           float64 `json:"p50_ms"`
	P95Ms           float64 `json:"p95_ms"`
	P99Ms           float64 `json:"p99_ms"`
	MaxMs           float64 `json:"max_ms"`
}

func summarize(proto string, conns int, results []result, elapsed time.Duration) (summary, map[string]int) {
	var admitted, rejected, backpressured, failed int
	reasons := map[string]int{}
	latencies := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch {
		case r.err != nil:
			failed++
			continue
		case r.status == http.StatusServiceUnavailable,
			r.status == http.StatusOK && r.decided.Reason == "queue-full":
			// HTTP surfaces backpressure as 503; streams as a queue-full
			// decision record. Same account either way.
			backpressured++
		case r.status == http.StatusOK && r.decided.Admitted:
			admitted++
		case r.status == http.StatusOK:
			rejected++
			reasons[r.decided.Reason]++
		default:
			failed++
		}
		latencies = append(latencies, r.latency)
	}
	decided := admitted + rejected
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	s := summary{
		Proto:      proto,
		Conns:      conns,
		Requests:   len(results),
		ElapsedSec: elapsed.Seconds(),
		Decided:    decided,
		Admitted:   admitted,
		Rejected:   rejected,
		Throttled:  backpressured,
		Failed:     failed,
		P50Ms:      ms(quantile(latencies, 0.50)),
		P95Ms:      ms(quantile(latencies, 0.95)),
		P99Ms:      ms(quantile(latencies, 0.99)),
	}
	if proto == "json" {
		s.Conns = 0 // connection pooling is the transport's business
	}
	if len(latencies) > 0 {
		s.MaxMs = ms(latencies[len(latencies)-1])
	}
	if elapsed > 0 {
		s.DecisionsPerSec = float64(decided) / elapsed.Seconds()
	}
	return s, reasons
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func report(out io.Writer, s summary, reasons map[string]int) {
	fmt.Fprintf(out, "requests:    %d in %s (proto %s)\n", s.Requests,
		time.Duration(s.ElapsedSec*float64(time.Second)).Round(time.Millisecond), s.Proto)
	if s.ElapsedSec > 0 {
		fmt.Fprintf(out, "throughput:  %.0f decisions/sec (%d decided, p99 %.3fms)\n",
			s.DecisionsPerSec, s.Decided, s.P99Ms)
	}
	fmt.Fprintf(out, "admitted:    %d\n", s.Admitted)
	fmt.Fprintf(out, "rejected:    %d %v\n", s.Rejected, reasonList(reasons))
	fmt.Fprintf(out, "throttled:   %d (backpressure)\n", s.Throttled)
	if s.Failed > 0 {
		fmt.Fprintf(out, "failed:      %d (transport or decode errors)\n", s.Failed)
	}
	fmt.Fprintf(out, "latency:     p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		s.P50Ms, s.P95Ms, s.P99Ms, s.MaxMs)
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func reasonList(reasons map[string]int) string {
	if len(reasons) == 0 {
		return ""
	}
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("(")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", k, reasons[k])
	}
	b.WriteString(")")
	return b.String()
}

func loadTrace(path, topo string, cloudlets, requests, horizon int, seed int64) (*workload.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open instance: %w", err)
		}
		defer func() {
			_ = f.Close() // read-only descriptor; nothing to report
		}()
		return workload.LoadInstance(f)
	}
	setup := experiments.DefaultSetup()
	if topo != "" {
		setup.Topology = topo
	}
	if cloudlets > 0 {
		setup.Cloudlets = cloudlets
	}
	if horizon > 0 {
		setup.Horizon = horizon
	}
	return setup.Instance(requests, setup.H, setup.K, seed)
}
