// Command revnfload replays a workload trace against a running revnfd
// over HTTP and reports achieved throughput, admission counts, and
// decision latency tails.
//
// Usage:
//
//	revnfload -target http://127.0.0.1:8080 -requests 2000 -concurrency 16
//	revnfload -target http://127.0.0.1:8080 -rate 500 -requests 1000
//	revnfload -target http://127.0.0.1:8080 -instance trace.json
//
// The trace is drawn from the same generator as revnfd, so matching
// -topology/-cloudlets/-horizon/-seed flags replay requests sized for
// the network the daemon is serving. By default requests keep their
// generated arrival slots (the daemon schedules future windows); -now
// rebases every request onto the daemon's current slot instead.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"revnf/internal/experiments"
	"revnf/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "revnfload:", err)
		os.Exit(1)
	}
}

type wireRequest struct {
	VNF         int     `json:"vnf"`
	Reliability float64 `json:"reliability"`
	Arrival     int     `json:"arrival,omitempty"`
	Duration    int     `json:"duration"`
	Payment     float64 `json:"payment"`
}

type wireDecision struct {
	Admitted bool   `json:"admitted"`
	Reason   string `json:"reason"`
}

// result is one request's outcome as observed by the client.
type result struct {
	status  int
	decided wireDecision
	latency time.Duration
	err     error
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("revnfload", flag.ContinueOnError)
	var (
		target      = fs.String("target", "http://127.0.0.1:8080", "revnfd base URL")
		requests    = fs.Int("requests", 1000, "request count when generating a trace")
		rate        = fs.Float64("rate", 0, "offered load in requests/second (0 = unthrottled)")
		concurrency = fs.Int("concurrency", 8, "concurrent in-flight requests")
		topo        = fs.String("topology", "", "embedded topology name")
		cloudlets   = fs.Int("cloudlets", 0, "cloudlet count")
		horizon     = fs.Int("horizon", 0, "time horizon T in slots")
		seed        = fs.Int64("seed", 1, "trace generation seed")
		instance    = fs.String("instance", "", "load instance JSON instead of generating")
		now         = fs.Bool("now", false, "drop generated arrivals so every request targets the current slot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency < 1 {
		return fmt.Errorf("concurrency must be at least 1")
	}

	inst, err := loadTrace(*instance, *topo, *cloudlets, *requests, *horizon, *seed)
	if err != nil {
		return err
	}
	wire := make([]wireRequest, len(inst.Trace))
	for i, r := range inst.Trace {
		wire[i] = wireRequest{VNF: r.VNF, Reliability: r.Reliability,
			Arrival: r.Arrival, Duration: r.Duration, Payment: r.Payment}
		if *now {
			wire[i].Arrival = 0
		}
	}

	results, elapsed, err := replay(ctx, *target, wire, *rate, *concurrency)
	if err != nil {
		return err
	}
	report(out, results, elapsed)
	return nil
}

// replay streams the wire requests through a worker pool, pacing the
// feed at rate requests/second when rate > 0.
func replay(ctx context.Context, target string, wire []wireRequest, rate float64, concurrency int) ([]result, time.Duration, error) {
	// The default transport caps idle connections per host at 2, which
	// would churn a fresh TCP connection per request at higher
	// concurrency and dominate the measurement.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency,
			MaxIdleConnsPerHost: concurrency,
		},
	}
	defer client.CloseIdleConnections()
	jobs := make(chan wireRequest)
	results := make([]result, 0, len(wire))
	var mu sync.Mutex
	var wg sync.WaitGroup

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range jobs {
				r := post(ctx, client, target, req)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}

	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := start
feed:
	for _, req := range wire {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break feed
				}
			}
			next = next.Add(interval)
		}
		select {
		case jobs <- req:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return results, time.Since(start), ctx.Err()
}

func post(ctx context.Context, client *http.Client, target string, req wireRequest) result {
	body, err := json.Marshal(req)
	if err != nil {
		return result{err: err}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/requests", bytes.NewReader(body))
	if err != nil {
		return result{err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := client.Do(hreq)
	lat := time.Since(t0)
	if err != nil {
		return result{err: err, latency: lat}
	}
	defer func() {
		_ = resp.Body.Close() // body already consumed below
	}()
	r := result{status: resp.StatusCode, latency: lat}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&r.decided); err != nil {
			r.err = err
		}
	}
	// Drain to EOF so the connection goes back to the keep-alive pool.
	_, _ = io.Copy(io.Discard, resp.Body)
	return r
}

func report(out io.Writer, results []result, elapsed time.Duration) {
	var admitted, rejected, backpressured, failed int
	reasons := map[string]int{}
	latencies := make([]time.Duration, 0, len(results))
	for _, r := range results {
		switch {
		case r.err != nil:
			failed++
			continue
		case r.status == http.StatusServiceUnavailable:
			backpressured++
		case r.status == http.StatusOK && r.decided.Admitted:
			admitted++
		case r.status == http.StatusOK:
			rejected++
			reasons[r.decided.Reason]++
		default:
			failed++
		}
		latencies = append(latencies, r.latency)
	}
	decided := admitted + rejected
	// Sort once up front: the throughput line quotes the p99 tail so a
	// rate number is never read without its latency cost.
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Fprintf(out, "requests:    %d in %s\n", len(results), elapsed.Round(time.Millisecond))
	if elapsed > 0 {
		fmt.Fprintf(out, "throughput:  %.0f decisions/sec (%d decided, p99 %s)\n",
			float64(decided)/elapsed.Seconds(), decided, quantile(latencies, 0.99))
	}
	fmt.Fprintf(out, "admitted:    %d\n", admitted)
	fmt.Fprintf(out, "rejected:    %d %v\n", rejected, reasonList(reasons))
	fmt.Fprintf(out, "throttled:   %d (503 backpressure)\n", backpressured)
	if failed > 0 {
		fmt.Fprintf(out, "failed:      %d (transport or decode errors)\n", failed)
	}
	if len(latencies) > 0 {
		fmt.Fprintf(out, "latency:     p50 %s  p95 %s  p99 %s  max %s\n",
			quantile(latencies, 0.50), quantile(latencies, 0.95),
			quantile(latencies, 0.99), latencies[len(latencies)-1])
	}
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func reasonList(reasons map[string]int) string {
	if len(reasons) == 0 {
		return ""
	}
	keys := make([]string, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	b.WriteString("(")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", k, reasons[k])
	}
	b.WriteString(")")
	return b.String()
}

func loadTrace(path, topo string, cloudlets, requests, horizon int, seed int64) (*workload.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("open instance: %w", err)
		}
		defer func() {
			_ = f.Close() // read-only descriptor; nothing to report
		}()
		return workload.LoadInstance(f)
	}
	setup := experiments.DefaultSetup()
	if topo != "" {
		setup.Topology = topo
	}
	if cloudlets > 0 {
		setup.Cloudlets = cloudlets
	}
	if horizon > 0 {
		setup.Horizon = horizon
	}
	return setup.Instance(requests, setup.H, setup.K, seed)
}
