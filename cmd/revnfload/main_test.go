package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"revnf/internal/experiments"
	"revnf/internal/onsite"
	"revnf/internal/serve"
)

// startBackend serves a real admission engine over httptest so the load
// generator exercises its full HTTP path in-process.
func startBackend(t *testing.T, queueSize int) *httptest.Server {
	t.Helper()
	setup := experiments.DefaultSetup()
	inst, err := setup.Instance(1, setup.H, setup.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(serve.Config{
		Network:   inst.Network,
		Scheduler: sched,
		Horizon:   inst.Horizon,
		QueueSize: queueSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	srv := httptest.NewServer(serve.NewHandler(e))
	t.Cleanup(srv.Close)
	return srv
}

func TestLoadGeneratorReplay(t *testing.T) {
	srv := startBackend(t, serve.DefaultQueueSize)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-target", srv.URL, "-requests", "200", "-concurrency", "4", "-seed", "1",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v (output %q)", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "requests:    200") {
		t.Errorf("report missing request count: %q", text)
	}
	m := regexp.MustCompile(`admitted:    (\d+)`).FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		t.Errorf("no admissions reported: %q", text)
	}
	if strings.Contains(text, "failed:") {
		t.Errorf("transport failures against in-process backend: %q", text)
	}
	if !strings.Contains(text, "latency:     p50") {
		t.Errorf("report missing latency line: %q", text)
	}
	// The throughput line quotes the p99 tail beside the rate.
	if !regexp.MustCompile(`throughput:  \d+ decisions/sec \(\d+ decided, p99 \S+\)`).MatchString(text) {
		t.Errorf("report missing p99 on throughput line: %q", text)
	}
}

func TestLoadGeneratorThrottled(t *testing.T) {
	srv := startBackend(t, serve.DefaultQueueSize)
	var out bytes.Buffer
	start := time.Now()
	// 40 requests at 200/s must take at least ~150ms of pacing.
	err := run(context.Background(), []string{
		"-target", srv.URL, "-requests", "40", "-rate", "200", "-concurrency", "2", "-now",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("rate limit ignored: finished in %s", elapsed)
	}
}

func TestLoadGeneratorBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-concurrency", "0"},
		{"-instance", "/nonexistent/trace.json"},
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestLoadGeneratorContextCancel(t *testing.T) {
	srv := startBackend(t, serve.DefaultQueueSize)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-target", srv.URL, "-requests", "50", "-rate", "10"}, &bytes.Buffer{})
	if err == nil {
		t.Error("cancelled run returned nil error")
	}
}
