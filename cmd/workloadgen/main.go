// Command workloadgen generates reproducible problem instances as JSON,
// the interchange format consumed by vnfsim -instance.
//
// Usage:
//
//	workloadgen -requests 300 -seed 7 > trace.json
//	workloadgen -topology geant -cloudlets 10 -horizon 100 -H 5 -K 1.08 -o trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"revnf/internal/experiments"
	"revnf/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("workloadgen", flag.ContinueOnError)
	var (
		topo      = fs.String("topology", "", "embedded topology name")
		cloudlets = fs.Int("cloudlets", 0, "cloudlet count")
		requests  = fs.Int("requests", 300, "request count")
		horizon   = fs.Int("horizon", 0, "time horizon T")
		h         = fs.Float64("H", 0, "payment-rate variation pr_max/pr_min")
		k         = fs.Float64("K", 0, "cloudlet reliability variation rc_max/rc_min")
		seed      = fs.Int64("seed", 1, "generator seed")
		output    = fs.String("o", "", "output file (default stdout)")
		format    = fs.String("format", "json", "output format: json (full instance) or csv (trace only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	setup := experiments.DefaultSetup()
	if *topo != "" {
		setup.Topology = *topo
	}
	if *cloudlets > 0 {
		setup.Cloudlets = *cloudlets
	}
	if *horizon > 0 {
		setup.Horizon = *horizon
	}
	hv, kv := setup.H, setup.K
	if *h > 0 {
		hv = *h
	}
	if *k > 0 {
		kv = *k
	}

	inst, err := setup.Instance(*requests, hv, kv, *seed)
	if err != nil {
		return err
	}

	w := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return fmt.Errorf("create output: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				fmt.Fprintln(os.Stderr, "workloadgen: close:", cerr)
			}
		}()
		w = f
	}
	switch *format {
	case "json":
		return inst.Save(w)
	case "csv":
		return workload.ExportCSV(w, inst.Network.Catalog, inst.Trace)
	default:
		return fmt.Errorf("unknown -format %q (want json|csv)", *format)
	}
}
