package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"revnf/internal/workload"
)

func TestRunToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "25", "-seed", "4", "-cloudlets", "3", "-horizon", "15"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	inst, err := workload.LoadInstance(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("generated JSON does not round-trip: %v", err)
	}
	if len(inst.Trace) != 25 || len(inst.Network.Cloudlets) != 3 || inst.Horizon != 15 {
		t.Errorf("instance shape = %d requests, %d cloudlets, horizon %d",
			len(inst.Trace), len(inst.Network.Cloudlets), inst.Horizon)
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var sb strings.Builder
	if err := run([]string{"-requests", "10", "-o", path}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open output: %v", err)
	}
	defer func() {
		_ = f.Close()
	}()
	inst, err := workload.LoadInstance(f)
	if err != nil {
		t.Fatalf("file does not round-trip: %v", err)
	}
	if len(inst.Trace) != 10 {
		t.Errorf("trace length = %d, want 10", len(inst.Trace))
	}
}

func TestRunOverrides(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "10", "-topology", "geant", "-H", "2", "-K", "1.01", "-seed", "6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := workload.LoadInstance(strings.NewReader(sb.String())); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "0"}, &sb); err == nil {
		t.Error("zero requests did not error")
	}
	if err := run([]string{"-topology", "nope"}, &sb); err == nil {
		t.Error("unknown topology did not error")
	}
	if err := run([]string{"-o", "/no/such/dir/file.json"}, &sb); err == nil {
		t.Error("bad output path did not error")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-requests", "15", "-format", "csv", "-horizon", "20"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "arrival,duration,vnf,reliability,payment") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	trace, err := workload.ImportCSV(strings.NewReader(out), workload.DefaultCatalog(), 20)
	if err != nil {
		t.Fatalf("CSV does not round-trip: %v", err)
	}
	if len(trace) != 15 {
		t.Errorf("trace length = %d, want 15", len(trace))
	}
}

func TestRunBadFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-format", "nope"}, &sb); err == nil {
		t.Error("unknown format did not error")
	}
}
