package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"atomicword", "floateq", "guardedby", "ledgerapi", "lockorder", "norand", "purepropose", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestCleanPackages runs the full suite over real repository packages; the
// tree is kept clean, so the driver must exit 0 with no findings.
func TestCleanPackages(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"revnf/internal/analysis/...", "revnf/internal/core", "revnf/internal/timeslot"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}

func TestRunSubset(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "floateq,walltime", "revnf/internal/core"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-run floateq,walltime) = %d, stderr: %s", code, errOut.String())
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nosuchpass", "revnf/internal/core"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-run nosuchpass) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", errOut.String())
	}
}

// TestJSONCleanTree pins the machine-readable form: a clean run emits a
// valid, empty JSON array (not empty output) and still exits 0.
func TestJSONCleanTree(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "revnf/internal/core"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run(-json) = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	var rows []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &rows); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(rows) != 0 {
		t.Errorf("unexpected findings in JSON report: %+v", rows)
	}
}

func TestBadPattern(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./no/such/dir/..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
}
