// Command revnfvet is the multichecker for the repository's invariant
// suite (internal/analysis): it loads the packages matched by its
// arguments, runs every registered analyzer, and prints one line per
// finding. A non-empty finding set exits 1, so scripts/check.sh and CI can
// gate on it.
//
// Usage:
//
//	go run ./cmd/revnfvet ./...          # whole tree (what check.sh runs)
//	go run ./cmd/revnfvet -list          # show registered analyzers
//	go run ./cmd/revnfvet -run floateq,walltime ./internal/...
//	go run ./cmd/revnfvet -json ./...    # findings as a JSON array
//
// -json prints the findings as one JSON array of
// {file, line, column, analyzer, message} objects (empty array for a
// clean tree) instead of the line-per-finding text form; the exit code
// contract is unchanged, so CI can both gate on the exit status and
// archive the machine-readable report.
//
// Test files are never loaded: the invariants govern library code, and
// tests (golden traces pinning exact floats, deadline loops on time.Now)
// are exempt by design. Individual non-test lines opt out with a
// "//lint:allow <analyzer>" comment on, or directly above, the flagged
// line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"revnf/internal/analysis"
	"revnf/internal/analysis/framework"
	"revnf/internal/analysis/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("revnfvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	asJSON := fs.Bool("json", false, "print findings as a JSON array instead of text lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}
	analyzers := analysis.All()
	if *only != "" {
		analyzers = analysis.ByName(strings.Split(*only, ",")...)
		if analyzers == nil {
			fmt.Fprintf(stderr, "revnfvet: unknown analyzer in -run=%s\n", *only)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "revnfvet: %v\n", err)
		return 2
	}
	units := make([]*framework.Unit, 0, len(pkgs))
	for _, p := range pkgs {
		units = append(units, &framework.Unit{Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info})
	}
	findings, err := framework.Run(units, analyzers)
	if *asJSON {
		if jerr := writeJSON(stdout, findings); jerr != nil {
			fmt.Fprintf(stderr, "revnfvet: %v\n", jerr)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "revnfvet: %v\n", err)
		return 2
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "revnfvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable report row.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the findings as one indented JSON array; a clean tree
// prints "[]" so consumers never have to special-case absence.
func writeJSON(w io.Writer, findings []framework.Finding) error {
	rows := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		rows = append(rows, jsonFinding{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
