package main

import (
	"strings"
	"testing"
)

// fastArgs shrink every sweep so the suite stays quick.
func fastArgs(extra ...string) []string {
	base := []string{
		"-cloudlets", "4",
		"-requests", "20,40",
		"-load", "40",
		"-horizon", "20",
		"-seeds", "1",
		"-hs", "1,5",
		"-ks", "1.0,1.1",
		"-optimal", "none",
	}
	return append(base, extra...)
}

func TestRunFig1a(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "1a"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1a", "pd-onsite", "greedy-onsite"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFig1bCSV(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "1b", "-csv"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "requests,pd-offsite,greedy-offsite") {
		t.Errorf("CSV header missing:\n%s", out)
	}
}

func TestRunFig2aWithLPBound(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "2a", "-optimal", "lp"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "optimal(lp-bound)") {
		t.Errorf("LP bound column missing:\n%s", sb.String())
	}
}

func TestRunFig2b(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "2b"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "Figure 2b") {
		t.Errorf("figure title missing:\n%s", sb.String())
	}
}

func TestRunAblations(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "ablations"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"demand scaling", "pd-onsite-additive", "pd-offsite-relsort", "node budget"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAll(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "all"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1a", "Figure 1b", "Figure 2a", "Figure 2b", "Ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunBBOptimal(t *testing.T) {
	var sb strings.Builder
	args := []string{
		"-fig", "1a", "-cloudlets", "3", "-requests", "10",
		"-horizon", "10", "-seeds", "1", "-optimal", "bb", "-optnodes", "50",
	}
	if err := run(args, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "optimal(bb)") {
		t.Errorf("B&B column missing:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "nope"}, &sb); err == nil {
		t.Error("unknown figure did not error")
	}
	if err := run([]string{"-optimal", "nope"}, &sb); err == nil {
		t.Error("unknown optimal mode did not error")
	}
	if err := run([]string{"-requests", "abc"}, &sb); err == nil {
		t.Error("bad request list did not error")
	}
	if err := run([]string{"-hs", "x"}, &sb); err == nil {
		t.Error("bad hs list did not error")
	}
	if err := run([]string{"-ks", ""}, &sb); err == nil {
		t.Error("empty ks list did not error")
	}
}

func TestRunChains(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "chains"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "pd-chain-onsite") {
		t.Errorf("chain table missing:\n%s", sb.String())
	}
}

func TestRunTheory(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "theory"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Lemma 8") || !strings.Contains(out, "decisions per second") {
		t.Errorf("theory tables missing:\n%s", out)
	}
}

func TestRunSeedList(t *testing.T) {
	var sb strings.Builder
	if err := run(fastArgs("-fig", "1a", "-seedlist", "5,9"), &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "seeds=2") {
		t.Errorf("seed list not applied:\n%s", sb.String())
	}
	if err := run(fastArgs("-fig", "1a", "-seedlist", "x"), &sb); err == nil {
		t.Error("bad seed list did not error")
	}
}
