// Command experiments regenerates the paper's evaluation figures and the
// ablation studies.
//
// Usage:
//
//	experiments -fig 1a                 # Figure 1(a): on-site revenue vs requests
//	experiments -fig 1b                 # Figure 1(b): off-site revenue vs requests
//	experiments -fig 2a                 # Figure 2(a): impact of H
//	experiments -fig 2b                 # Figure 2(b): impact of K
//	experiments -fig ablations          # all ablation sweeps
//	experiments -fig shared             # scheme comparison: shared-backup uplift vs onsite/offsite
//	experiments -fig all                # everything
//	experiments -fig 1a -csv            # CSV instead of an aligned table
//	experiments -fig 1a -requests 100,200,400 -seeds 5 -optimal bb
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"revnf/internal/experiments"
	"revnf/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "all", "figure to regenerate: 1a|1b|2a|2b|ablations|chains|theory|shared|all")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		jsonOut   = fs.Bool("json", false, "shared figure only: emit one JSON row per scheme instead of a table (for scripts/bench.sh)")
		poolSize  = fs.Int("poolsize", 0, "shared figure: requests per pooled backup instance (0 = default)")
		topo      = fs.String("topology", "", "embedded topology name (default from setup)")
		cloudlets = fs.Int("cloudlets", 0, "cloudlet count (default from setup)")
		requests  = fs.String("requests", "50,100,150,200,250,300", "request counts for figures 1a/1b")
		load      = fs.Int("load", 0, "fixed request count for figures 2a/2b (default from setup)")
		hs        = fs.String("hs", "1,2,3,5,8,10", "H values for figure 2a")
		ks        = fs.String("ks", "1.00,1.02,1.04,1.06,1.08,1.10", "K values for figure 2b")
		seeds     = fs.Int("seeds", 3, "replications per point (seeds 1..N)")
		seedList  = fs.String("seedlist", "", "explicit comma-separated seeds (overrides -seeds)")
		horizon   = fs.Int("horizon", 0, "time horizon T (default from setup)")
		optimal   = fs.String("optimal", "lp", "offline comparator: none|lp|bb")
		optNodes  = fs.Int("optnodes", 200, "branch-and-bound node budget for -optimal bb")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	setup := experiments.DefaultSetup()
	if *topo != "" {
		setup.Topology = *topo
	}
	if *cloudlets > 0 {
		setup.Cloudlets = *cloudlets
	}
	if *load > 0 {
		setup.Requests = *load
	}
	if *horizon > 0 {
		setup.Horizon = *horizon
	}
	if *seeds > 0 {
		setup.Seeds = make([]int64, *seeds)
		for i := range setup.Seeds {
			setup.Seeds[i] = int64(i + 1)
		}
	}
	if *seedList != "" {
		explicit, err := parseInts(*seedList)
		if err != nil {
			return fmt.Errorf("-seedlist: %w", err)
		}
		setup.Seeds = make([]int64, len(explicit))
		for i, sd := range explicit {
			setup.Seeds[i] = int64(sd)
		}
	}
	switch *optimal {
	case "none":
		setup.Optimal = experiments.OptimalNone
	case "lp":
		setup.Optimal = experiments.OptimalLPBound
	case "bb":
		setup.Optimal = experiments.OptimalBB
	default:
		return fmt.Errorf("unknown -optimal %q", *optimal)
	}
	setup.OptNodes = *optNodes

	counts, err := parseInts(*requests)
	if err != nil {
		return fmt.Errorf("-requests: %w", err)
	}
	hVals, err := parseFloats(*hs)
	if err != nil {
		return fmt.Errorf("-hs: %w", err)
	}
	kVals, err := parseFloats(*ks)
	if err != nil {
		return fmt.Errorf("-ks: %w", err)
	}

	render := func(t *metrics.Table) error {
		if *csv {
			return t.RenderCSV(out)
		}
		if err := t.Render(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}

	jobs := map[string]func() error{
		"1a": func() error {
			f, err := setup.Fig1a(counts)
			if err != nil {
				return err
			}
			return render(f.Table)
		},
		"1b": func() error {
			f, err := setup.Fig1b(counts)
			if err != nil {
				return err
			}
			return render(f.Table)
		},
		"2a": func() error {
			f, err := setup.Fig2a(hVals)
			if err != nil {
				return err
			}
			return render(f.Table)
		},
		"2b": func() error {
			f, err := setup.Fig2b(kVals)
			if err != nil {
				return err
			}
			return render(f.Table)
		},
		"ablations": func() error {
			scaleTable, err := setup.AblationScale([]float64{1, 1.5, 2, 3, 4})
			if err != nil {
				return err
			}
			if err := render(scaleTable); err != nil {
				return err
			}
			dual, err := setup.AblationDualUpdate(counts)
			if err != nil {
				return err
			}
			if err := render(dual.Table); err != nil {
				return err
			}
			sortFig, err := setup.AblationSortKey(counts)
			if err != nil {
				return err
			}
			if err := render(sortFig.Table); err != nil {
				return err
			}
			budget, err := setup.AblationOptBudget([]int{1, 10, 100, 1000})
			if err != nil {
				return err
			}
			if err := render(budget); err != nil {
				return err
			}
			latency, err := setup.AblationLatencyPenalty([]float64{0, 0.5, 2, 10, 50})
			if err != nil {
				return err
			}
			if err := render(latency); err != nil {
				return err
			}
			pooling, err := setup.AblationPooling(counts)
			if err != nil {
				return err
			}
			return render(pooling)
		},
		"chains": func() error {
			tbl, err := setup.ChainComparison(counts)
			if err != nil {
				return err
			}
			return render(tbl)
		},
		"shared": func() error {
			// The shared scheme is evaluated on the high-requirement regime
			// where pooling pays off; user overrides for topology, scale and
			// seeds carry over, the reliability band does not.
			us := experiments.SharedUpliftSetup()
			us.Topology = setup.Topology
			us.Cloudlets = setup.Cloudlets
			us.Horizon = setup.Horizon
			us.Seeds = setup.Seeds
			table, rows, err := us.SchemeComparison(setup.Requests, *poolSize)
			if err != nil {
				return err
			}
			if *jsonOut {
				for _, r := range rows {
					line, err := json.Marshal(struct {
						Name            string  `json:"name"`
						Scheme          string  `json:"scheme"`
						Requests        int     `json:"requests"`
						PoolSize        int     `json:"pool_size,omitempty"`
						AdmittedMean    float64 `json:"admitted_mean"`
						RevenueMean     float64 `json:"revenue_mean"`
						UpliftVsOffsite float64 `json:"uplift_vs_offsite"`
					}{
						Name:            "SchemeRevenue/scheme=" + r.Scheme,
						Scheme:          r.Scheme,
						Requests:        r.Requests,
						PoolSize:        r.PoolSize,
						AdmittedMean:    r.Admitted.Mean,
						RevenueMean:     r.Revenue.Mean,
						UpliftVsOffsite: r.UpliftVsOffsite,
					})
					if err != nil {
						return err
					}
					if _, err := fmt.Fprintln(out, string(line)); err != nil {
						return err
					}
				}
				return nil
			}
			return render(table)
		},
		"theory": func() error {
			violations, err := setup.ViolationStudy(counts)
			if err != nil {
				return err
			}
			if err := render(violations); err != nil {
				return err
			}
			throughput, err := setup.ThroughputTable(counts)
			if err != nil {
				return err
			}
			return render(throughput)
		},
	}

	switch *fig {
	case "all":
		for _, id := range []string{"1a", "1b", "2a", "2b", "ablations", "chains", "theory", "shared"} {
			if err := jobs[id](); err != nil {
				return fmt.Errorf("figure %s: %w", id, err)
			}
		}
		return nil
	default:
		job, ok := jobs[*fig]
		if !ok {
			return fmt.Errorf("unknown -fig %q (want 1a|1b|2a|2b|ablations|chains|theory|shared|all)", *fig)
		}
		if err := job(); err != nil {
			return fmt.Errorf("figure %s: %w", *fig, err)
		}
		return nil
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
