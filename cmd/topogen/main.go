// Command topogen inspects the embedded MEC access-network topologies and
// generates random ones.
//
// Usage:
//
//	topogen -list                         # embedded topology inventory
//	topogen -name nsfnet                  # stats for one topology
//	topogen -random ba -nodes 40 -m 2     # Barabási–Albert graph stats
//	topogen -random er -nodes 30 -p 0.1
//	topogen -random waxman -nodes 30 -alpha 0.8 -beta 0.5
//	topogen -name geant -sites 6          # degree-ranked cloudlet sites
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"revnf/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list embedded topologies")
		name     = fs.String("name", "", "embedded topology to inspect")
		random   = fs.String("random", "", "generate: er|ba|waxman")
		nodes    = fs.Int("nodes", 30, "node count for generators")
		m        = fs.Int("m", 2, "attachments per node (ba)")
		p        = fs.Float64("p", 0.1, "edge probability (er)")
		alpha    = fs.Float64("alpha", 0.8, "waxman alpha")
		beta     = fs.Float64("beta", 0.5, "waxman beta")
		seed     = fs.Int64("seed", 1, "generator seed")
		sites    = fs.Int("sites", 0, "print k degree-ranked cloudlet sites")
		export   = fs.String("export", "", "write the selected graph as JSON to this file")
		imported = fs.String("import", "", "load a custom topology JSON instead of -name/-random")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintf(out, "%-10s %6s %6s\n", "name", "nodes", "edges")
		for _, n := range topology.Names() {
			g, err := topology.Load(n)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "%-10s %6d %6d\n", n, g.Nodes(), g.EdgeCount())
		}
		return nil
	}

	var g *topology.Graph
	var err error
	switch {
	case *imported != "":
		f, err := os.Open(*imported)
		if err != nil {
			return fmt.Errorf("open topology: %w", err)
		}
		g, err = topology.LoadJSON(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	case *random != "":
		rng := rand.New(rand.NewSource(*seed))
		switch *random {
		case "er":
			g, err = topology.ErdosRenyi(*nodes, *p, rng)
		case "ba":
			g, err = topology.BarabasiAlbert(*nodes, *m, rng)
		case "waxman":
			g, err = topology.Waxman(*nodes, *alpha, *beta, rng)
		default:
			return fmt.Errorf("unknown -random %q (want er|ba|waxman)", *random)
		}
	case *name != "":
		g, err = topology.Load(*name)
	default:
		return fmt.Errorf("nothing to do: pass -list, -name, or -random")
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "name:      %s\n", g.Name())
	fmt.Fprintf(out, "nodes:     %d\n", g.Nodes())
	fmt.Fprintf(out, "edges:     %d\n", g.EdgeCount())
	fmt.Fprintf(out, "connected: %v\n", g.Connected())
	if d, err := g.Diameter(); err == nil {
		fmt.Fprintf(out, "diameter:  %.1f ms\n", d)
	}
	if *sites > 0 {
		ids, err := topology.PlaceCloudletsByDegree(g, *sites)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "cloudlet sites (degree-ranked): %v\n", ids)
	}
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return fmt.Errorf("create export: %w", err)
		}
		err = g.Save(f)
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "exported to %s\n", *export)
	}
	return nil
}
