package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"abilene", "nsfnet", "geant", "aarnet", "att-na"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunNamed(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-name", "nsfnet", "-sites", "4"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"nodes:     14", "edges:     21", "connected: true", "cloudlet sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunGenerators(t *testing.T) {
	for _, kind := range []string{"er", "ba", "waxman"} {
		t.Run(kind, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-random", kind, "-nodes", "20", "-seed", "3"}, &sb); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !strings.Contains(sb.String(), "nodes:     20") {
				t.Errorf("output missing node count:\n%s", sb.String())
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("no action did not error")
	}
	if err := run([]string{"-name", "nope"}, &sb); err == nil {
		t.Error("unknown topology did not error")
	}
	if err := run([]string{"-random", "nope"}, &sb); err == nil {
		t.Error("unknown generator did not error")
	}
	if err := run([]string{"-name", "nsfnet", "-sites", "99"}, &sb); err == nil {
		t.Error("too many sites did not error")
	}
}

func TestRunExportImport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	var sb strings.Builder
	if err := run([]string{"-name", "abilene", "-export", path}, &sb); err != nil {
		t.Fatalf("export: %v", err)
	}
	if !strings.Contains(sb.String(), "exported to") {
		t.Errorf("missing export confirmation:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"-import", path, "-sites", "3"}, &sb); err != nil {
		t.Fatalf("import: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "nodes:     11") || !strings.Contains(out, "edges:     14") {
		t.Errorf("imported stats wrong:\n%s", out)
	}
	if err := run([]string{"-import", "/does/not/exist.json"}, &sb); err == nil {
		t.Error("missing import file did not error")
	}
	if err := run([]string{"-name", "abilene", "-export", "/no/such/dir/x.json"}, &sb); err == nil {
		t.Error("bad export path did not error")
	}
}
