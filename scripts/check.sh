#!/usr/bin/env sh
# Repository health check: formatting, vet, build, and the full test
# suite under the race detector. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> revnfvet ./... (invariant suite)"
go run ./cmd/revnfvet ./...

echo "==> go test -race ./..."
go test -race ./...

# Short coverage-guided fuzz of the wire decoders: the streaming ingest
# path feeds them raw network bytes, so they must only ever return the
# package's typed errors, never panic. SHORT=1 trims the budget.
fuzztime=5s
if [ "${SHORT:-0}" = "1" ]; then
    fuzztime=1s
fi
echo "==> wire decode fuzz smoke ($fuzztime per target)"
go test ./internal/wire -run '^$' -fuzz 'FuzzDecodeFrame' -fuzztime "$fuzztime"
go test ./internal/wire -run '^$' -fuzz 'FuzzDecodeNDJSON' -fuzztime "$fuzztime"

echo "==> daemon smoke test (tracing + pprof enabled)"
go test ./cmd/revnfd -run 'TestDaemonTraceSmoke|TestDaemonPprofOffByDefault' -count=1

# The soak already ran inside 'go test -race ./...' above; this explicit
# step re-runs it verbosely so a failure names the failure-runtime
# acceptance criteria (SLO delivery, ledger balance, estimator
# convergence) rather than disappearing into the package list.
echo "==> failure-runtime soak (chaos + repair + SLO, race detector)"
go test ./internal/serve -run 'TestSoakFailureRuntime' -race -count=1 -v

# Long-window rolling soak: more than five window lengths of continuous
# operation with chaos on, proving slot recycling, λ aging, expiry, and
# repair keep working past the old horizon. The soaks honor -short, so
# SHORT=1 runs this step as a skip marker instead of dropping it.
echo "==> rolling-horizon soak (window recycling + dual-price aging, race detector)"
if [ "${SHORT:-0}" = "1" ]; then
    go test ./internal/serve -run 'TestSoakRollingHorizon' -race -count=1 -v -short
else
    go test ./internal/serve -run 'TestSoakRollingHorizon' -race -count=1 -v
fi

echo "OK"
