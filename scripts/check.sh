#!/usr/bin/env sh
# Repository health check: formatting, vet, build, and the full test
# suite under the race detector. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> revnfvet ./... (invariant suite)"
go run ./cmd/revnfvet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> daemon smoke test (tracing + pprof enabled)"
go test ./cmd/revnfd -run 'TestDaemonTraceSmoke|TestDaemonPprofOffByDefault' -count=1

echo "OK"
