#!/usr/bin/env sh
# Admission-throughput benchmark harness. Three sections:
#
#  1. BenchmarkParallelAdmission (serial vs sharded engine at 1, 2 and 4
#     workers, fixed vs rolling horizon) -> BENCH_admission.json.
#     BENCHTIME overrides the per-benchmark budget.
#  2. Scheme revenue: cmd/experiments -fig shared compares the on-site,
#     off-site and shared-backup schedulers on the high-requirement
#     instances; one row per scheme is appended to BENCH_admission.json.
#     SCHEME_SEEDS overrides the seed list.
#  3. Wire throughput: a real revnfd is started with -stream-listen and
#     driven by revnfload over every ingress protocol (json, ndjson,
#     frame) -> BENCH_wire.json. WIRE_REQUESTS sets the request count
#     per protocol; WIRE_SMOKE=1 shrinks it for CI smoke runs.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_admission.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench BenchmarkParallelAdmission"
go test -run '^$' -bench 'BenchmarkParallelAdmission' -benchtime "${BENCHTIME:-1s}" . | tee "$tmp"

awk '
BEGIN { printf "[\n" }
/^BenchmarkParallelAdmission\// {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix when present
    workers = name
    sub(/^.*workers=/, "", workers)
    mode = name
    sub(/^BenchmarkParallelAdmission\//, "", mode)
    sub(/\/workers=.*$/, "", mode)
    ns = ""; dps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "decisions/sec") dps = $i
    }
    if (ns == "" || dps == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"mode\": \"%s\", \"workers\": %s, \"ns_per_op\": %s, \"decisions_per_sec\": %s}", name, mode, workers, ns, dps
}
END { printf "\n]\n" }
' "$tmp" > "$out"

# ---- Scheme revenue: onsite vs offsite vs shared on equal capacity ----

echo "==> cmd/experiments -fig shared (scheme revenue rows)"
go run ./cmd/experiments -fig shared -json -seedlist "${SCHEME_SEEDS:-1,2,3}" > "$tmp"

# Splice the scheme rows into the benchmark array: drop the closing
# bracket, append one row per line, close again.
sed '$d' "$out" > "$out.tmp"
while IFS= read -r line; do
    printf ',\n  %s' "$line" >> "$out.tmp"
done < "$tmp"
printf '\n]\n' >> "$out.tmp"
mv "$out.tmp" "$out"

echo "==> wrote $out"
cat "$out"

# ---- Wire throughput: revnfd + revnfload over every ingress protocol ----

wire_out=BENCH_wire.json
bindir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$bindir" "$tmp"
}
trap cleanup EXIT

wire_requests=${WIRE_REQUESTS:-100000}
if [ "${WIRE_SMOKE:-0}" = "1" ]; then
    wire_requests=5000
fi

http_addr=127.0.0.1:18080
stream_addr=127.0.0.1:18081

echo "==> go build revnfd + revnfload"
go build -o "$bindir/revnfd" ./cmd/revnfd
go build -o "$bindir/revnfload" ./cmd/revnfload

echo "==> revnfd on $http_addr (stream $stream_addr), $wire_requests requests per protocol"
"$bindir/revnfd" -addr "$http_addr" -stream-listen "$stream_addr" \
    -workers 4 -slot 0 -queue 4096 >"$bindir/revnfd.log" 2>&1 &
daemon_pid=$!

{
    printf '[\n'
    first=1
    for proto in json ndjson frame; do
        case "$proto" in
        json) extra="-concurrency 16" ;;
        *) extra="-conns 4 -streams 256" ;;
        esac
        # shellcheck disable=SC2086
        line=$("$bindir/revnfload" -target "http://$http_addr" -stream-target "$stream_addr" \
            -wait 10s -proto "$proto" -requests "$wire_requests" -now -json $extra)
        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '  %s' "$line"
    done
    printf '\n]\n'
} > "$wire_out"

kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "==> wrote $wire_out"
cat "$wire_out"
