#!/usr/bin/env sh
# Admission-throughput benchmark harness: runs BenchmarkParallelAdmission
# (serial vs sharded engine at 1, 2 and 4 workers, fixed vs rolling
# horizon) and records the series in BENCH_admission.json. BENCHTIME
# overrides the per-benchmark budget.
set -eu

cd "$(dirname "$0")/.."

out=BENCH_admission.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench BenchmarkParallelAdmission"
go test -run '^$' -bench 'BenchmarkParallelAdmission' -benchtime "${BENCHTIME:-1s}" . | tee "$tmp"

awk '
BEGIN { printf "[\n" }
/^BenchmarkParallelAdmission\// {
    name = $1
    sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix when present
    workers = name
    sub(/^.*workers=/, "", workers)
    mode = name
    sub(/^BenchmarkParallelAdmission\//, "", mode)
    sub(/\/workers=.*$/, "", mode)
    ns = ""; dps = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "decisions/sec") dps = $i
    }
    if (ns == "" || dps == "") next
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"mode\": \"%s\", \"workers\": %s, \"ns_per_op\": %s, \"decisions_per_sec\": %s}", name, mode, workers, ns, dps
}
END { printf "\n]\n" }
' "$tmp" > "$out"

echo "==> wrote $out"
cat "$out"
