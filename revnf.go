// Package revnf is the public API of a reproduction of "Providing
// Reliability-Aware Virtualized Network Function Services for Mobile Edge
// Computing" (Li, Liang, Huang, Jia — IEEE ICDCS 2019).
//
// The library models a mobile-edge network of cloudlets serving online VNF
// requests with per-request reliability requirements, and provides:
//
//   - the paper's online primal-dual admission algorithms under the
//     on-site scheme (Algorithm 1, (1+a_max)-competitive with bounded
//     capacity violation) and off-site scheme (Algorithm 2);
//   - the greedy, first-fit, and random baselines of the evaluation;
//   - an offline comparator (ILP via from-scratch simplex plus branch and
//     bound, substituting for the paper's CPLEX runs);
//   - a simulation engine with capacity auditing and Monte-Carlo failure
//     injection;
//   - workload and topology generators mirroring the paper's environment;
//   - drivers that regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	inst, err := revnf.NewInstance(revnf.DefaultInstanceConfig(200), 1)
//	sched, err := revnf.NewScheduler(inst.Network, revnf.OnSite,
//		revnf.WithHorizon(inst.Horizon))
//	res, err := revnf.Run(inst, sched)
//	fmt.Println(res.Revenue, res.AdmissionRate())
//
// Decision tracing (why was a request admitted or priced out?):
//
//	store := revnf.NewTraceStore(1024)
//	sched, err := revnf.NewScheduler(inst.Network, revnf.OnSite,
//		revnf.WithHorizon(inst.Horizon), revnf.WithRecorder(store))
//	... run ...
//	dt, ok := store.Get(requestID) // candidates, dual costs, reason code
package revnf

import (
	"math/rand"

	"revnf/internal/core"
	"revnf/internal/experiments"
	"revnf/internal/mip"
	"revnf/internal/offline"
	"revnf/internal/onsite"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

// Core model types.
type (
	// VNF is one virtualized network function type.
	VNF = core.VNF
	// Cloudlet is one edge server cluster.
	Cloudlet = core.Cloudlet
	// Request is one user request ρ = (f, R, a, d, pay).
	Request = core.Request
	// Network bundles the VNF catalog and the cloudlet fleet.
	Network = core.Network
	// Placement is an admitted request's resource footprint.
	Placement = core.Placement
	// Assignment places instances of one request in one cloudlet.
	Assignment = core.Assignment
	// SharedBackup records a shared-scheme placement's membership in a
	// pooled backup group.
	SharedBackup = core.SharedBackup
	// Scheme selects on-site, off-site, or shared-backup redundancy.
	Scheme = core.Scheme
	// Scheduler is an online admission algorithm.
	Scheduler = core.Scheduler
	// CapacityView exposes residual capacity to schedulers.
	CapacityView = core.CapacityView
)

// Redundancy schemes. ParseScheme, Scheme.String, Scheme.Flag and
// AllSchemes round-trip these through their canonical spellings.
const (
	// OnSite places all instances of a request in one cloudlet.
	OnSite = core.OnSite
	// OffSite spreads instances across cloudlets, one per cloudlet.
	OffSite = core.OffSite
	// Shared places one primary instance and joins a pooled backup
	// instance shared by up to k requests, with correlated-failure
	// accounting; see WithSharedPoolSize.
	Shared = core.Shared
)

// ParseScheme resolves a scheme name in either its display ("on-site") or
// flag ("onsite") spelling. It is the one scheme-string parser in the
// tree: the revnfd -scheme flag, HTTP payloads and the wire protocol all
// route through it.
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// AllSchemes lists the registered schemes in declaration order.
func AllSchemes() []Scheme { return core.AllSchemes() }

// Workload types.
type (
	// Instance is a complete simulation input: network, horizon, trace.
	Instance = workload.Instance
	// InstanceConfig assembles an instance from topology, cloudlet,
	// catalog and trace settings.
	InstanceConfig = workload.InstanceConfig
	// CloudletConfig configures random cloudlet fleets (K knob).
	CloudletConfig = workload.CloudletConfig
	// TraceConfig configures random request traces (H knob).
	TraceConfig = workload.TraceConfig
	// CatalogConfig configures random VNF catalogs.
	CatalogConfig = workload.CatalogConfig
)

// Simulation types.
type (
	// SimResult is an audited simulation outcome.
	SimResult = simulate.Result
	// Decision is one per-request admission record.
	Decision = simulate.Decision
	// AvailabilityReport is a Monte-Carlo failure-injection summary.
	AvailabilityReport = simulate.AvailabilityReport
	// OfflineSolution is the offline comparator's schedule and bounds.
	OfflineSolution = offline.Solution
	// MIPConfig tunes the offline branch-and-bound search.
	MIPConfig = mip.Config
	// ExperimentSetup parameterizes the paper-figure drivers.
	ExperimentSetup = experiments.Setup
	// FigureResult is a regenerated evaluation figure.
	FigureResult = experiments.FigureResult
	// OnsiteAnalysis reports Theorem 1 / Lemma 8 quantities.
	OnsiteAnalysis = onsite.Analysis
)

// DefaultCatalog returns the paper's 10-type VNF catalog (reliability
// 0.9–0.9999, demand 1–3 computing units).
func DefaultCatalog() []VNF { return workload.DefaultCatalog() }

// DefaultInstanceConfig returns a ready-to-use configuration mirroring the
// paper's environment with the given request count.
func DefaultInstanceConfig(requests int) InstanceConfig {
	s := experiments.DefaultSetup()
	return InstanceConfig{
		TopologyName: s.Topology,
		Cloudlets: CloudletConfig{
			Count:          s.Cloudlets,
			MinCapacity:    s.CapMin,
			MaxCapacity:    s.CapMax,
			MaxReliability: s.RCMax,
			K:              s.K,
		},
		Trace: TraceConfig{
			Requests:       requests,
			Horizon:        s.Horizon,
			MinDuration:    s.MinDur,
			MaxDuration:    s.MaxDur,
			MinRequirement: s.ReqMin,
			MaxRequirement: s.ReqMax,
			MaxPaymentRate: s.PRMax,
			H:              s.H,
		},
	}
}

// NewInstance builds a reproducible instance from the configuration and
// seed.
func NewInstance(cfg InstanceConfig, seed int64) (*Instance, error) {
	return workload.NewInstance(cfg, seed)
}

// Run simulates the scheduler over the instance's trace with full
// capacity and reliability auditing.
func Run(inst *Instance, sched Scheduler) (*SimResult, error) {
	return simulate.Run(inst, sched)
}

// RunAllowingViolations simulates a scheduler that is licensed to
// overcommit capacity (the raw Algorithm 1); overcommitment is recorded in
// the result.
func RunAllowingViolations(inst *Instance, sched Scheduler) (*SimResult, error) {
	return simulate.Run(inst, sched, simulate.AllowViolations())
}

// SolveOffline computes the offline comparator schedule for the scheme.
// Under Shared, backup columns are amortized over the default pool size.
func SolveOffline(inst *Instance, scheme Scheme, cfg MIPConfig) (*OfflineSolution, error) {
	switch scheme {
	case OnSite:
		return offline.SolveOnsite(inst, cfg)
	case Shared:
		return offline.SolveShared(inst, core.DefaultSharedPoolSize, cfg)
	default:
		return offline.SolveOffsite(inst, cfg)
	}
}

// OfflineLPBound returns the LP-relaxation upper bound on offline revenue
// for the scheme.
func OfflineLPBound(inst *Instance, scheme Scheme) (float64, error) {
	switch scheme {
	case OnSite:
		return offline.LPBoundOnsite(inst)
	case Shared:
		return offline.LPBoundShared(inst, core.DefaultSharedPoolSize)
	default:
		return offline.LPBoundOffsite(inst)
	}
}

// EstimateAvailability Monte-Carlo-samples cloudlet and instance failures
// to verify that placements deliver their promised availability.
func EstimateAvailability(n *Network, trace []Request, placements []Placement, trials int, rng *rand.Rand) (*AvailabilityReport, error) {
	return simulate.EstimateAvailability(n, trace, placements, trials, rng)
}

// AnalyzeOnsite computes the competitive ratio (Theorem 1) and the
// violation bound ξ (Lemma 8) for a concrete instance.
func AnalyzeOnsite(n *Network, trace []Request) (*OnsiteAnalysis, error) {
	return onsite.Analyze(n, trace)
}

// DefaultExperimentSetup returns the laptop-scale mirror of the paper's
// evaluation environment used by the figure drivers.
func DefaultExperimentSetup() ExperimentSetup {
	return experiments.DefaultSetup()
}
