module revnf

go 1.22
