package revnf

import (
	"io"

	"revnf/internal/workload"
)

// LoadInstance reads a JSON instance previously written by Instance.Save.
func LoadInstance(r io.Reader) (*Instance, error) {
	return workload.LoadInstance(r)
}

// ImportTraceCSV reads a request trace from CSV with header
// "arrival,duration,vnf,reliability,payment" — the bridge for real traces
// (the paper randomizes its workload from the Google cluster dataset).
// The vnf column accepts a catalog index or name.
func ImportTraceCSV(r io.Reader, catalog []VNF, horizon int) ([]Request, error) {
	return workload.ImportCSV(r, catalog, horizon)
}

// ExportTraceCSV writes a trace in the canonical CSV format.
func ExportTraceCSV(w io.Writer, catalog []VNF, trace []Request) error {
	return workload.ExportCSV(w, catalog, trace)
}
