package revnf_test

import (
	"testing"

	"revnf"
	"revnf/internal/core"
	"revnf/internal/simulate"
	"revnf/internal/trace"
)

// TestGoldenDecisionTraces drives both primal-dual schedulers over the
// golden instance (500 requests, DefaultInstanceConfig, seed 42) with a
// full-capture trace store and pins the observability layer to the same
// regime as TestGoldenTraces:
//
//   - tracing must not perturb decisions (admitted counts stay golden);
//   - every request gets exactly one traced Propose attempt whose verdict
//     matches the simulation decision, and every rejection carries a
//     non-empty reason code;
//   - the traced dual-price quantities reproduce the admission test
//     exactly: recomputing the on-site payment test
//     (BestCloudlet ≥ 0 && pay − BestCost > 0) and the off-site weight
//     test (WeightsSatisfy(TotalWeight, NeedWeight)) from the trace alone
//     yields the recorded verdict for all 500 requests;
//   - the reason-code distribution and a sample of argmin cloudlets are
//     pinned, so a change in tie-breaking or pricing shows up even if the
//     aggregate counts happen to survive.
func TestGoldenDecisionTraces(t *testing.T) {
	inst, err := revnf.NewInstance(revnf.DefaultInstanceConfig(500), 42)
	if err != nil {
		t.Fatal(err)
	}

	type argminPin struct {
		id    int
		admit bool
		best  int
	}
	cases := []struct {
		name     string
		scheme   revnf.Scheme
		admitted int
		reasons  map[trace.Reason]int
		argmins  []argminPin
	}{
		{
			name:     "pd-onsite",
			scheme:   revnf.OnSite,
			admitted: 226,
			reasons: map[trace.Reason]int{
				trace.ReasonAdmitted:           226,
				trace.ReasonPricedOut:          248,
				trace.ReasonNoFeasibleCloudlet: 26,
			},
			argmins: []argminPin{
				{0, true, 0}, {1, true, 1}, {2, true, 2}, {50, true, 2},
				{100, false, 2}, {150, false, 0}, {200, true, 4},
				{250, false, 6}, {300, false, 6}, {350, false, 7},
				{400, true, 2}, {450, false, 6}, {499, false, 5},
			},
		},
		{
			name:     "pd-offsite",
			scheme:   revnf.OffSite,
			admitted: 244,
			reasons: map[trace.Reason]int{
				trace.ReasonAdmitted:           244,
				trace.ReasonPricedOut:          144,
				trace.ReasonNoFeasibleCloudlet: 88,
				trace.ReasonInsufficientWeight: 24,
			},
			argmins: []argminPin{
				{0, true, 0}, {1, true, 1}, {2, true, 2}, {50, true, 3},
				{100, false, -1}, {150, false, -1}, {200, true, 4},
				{250, false, -1}, {300, true, 3}, {350, false, -1},
				{400, true, 7}, {450, false, -1}, {499, true, 3},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := revnf.NewTraceStore(len(inst.Trace))
			sched, err := revnf.NewScheduler(inst.Network, tc.scheme,
				revnf.WithHorizon(inst.Horizon), revnf.WithRecorder(store))
			if err != nil {
				t.Fatal(err)
			}
			res, err := simulate.Run(inst, sched)
			if err != nil {
				t.Fatal(err)
			}
			if res.Admitted != tc.admitted {
				t.Fatalf("tracing perturbed decisions: admitted %d, golden %d",
					res.Admitted, tc.admitted)
			}
			if store.Len() != len(inst.Trace) {
				t.Fatalf("store holds %d traces, want %d", store.Len(), len(inst.Trace))
			}

			reasons := make(map[trace.Reason]int)
			for id := range inst.Trace {
				dt, ok := store.Get(id)
				if !ok {
					t.Fatalf("request %d: no trace recorded", id)
				}
				if len(dt.Attempts) != 1 {
					t.Fatalf("request %d: %d attempts, want 1 (serial batch)", id, len(dt.Attempts))
				}
				a := dt.Attempts[0]
				decided := res.Decisions[id].Admitted
				if a.Admit != decided {
					t.Fatalf("request %d: trace verdict %v, simulation decided %v", id, a.Admit, decided)
				}
				reason := dt.FinalReason()
				reasons[reason]++
				if decided {
					if reason != trace.ReasonAdmitted {
						t.Fatalf("request %d admitted but FinalReason %q", id, reason)
					}
					if len(dt.Assignments) == 0 {
						t.Fatalf("request %d admitted with no traced assignments", id)
					}
				} else if reason == "" {
					t.Fatalf("request %d rejected with empty reason code", id)
				}

				// The trace must carry enough to replay the admission test.
				var replayed bool
				switch tc.scheme {
				case revnf.OnSite:
					replayed = a.BestCloudlet >= 0 && a.Payment-a.BestCost > 0
				case revnf.OffSite:
					replayed = core.WeightsSatisfy(a.TotalWeight, a.NeedWeight)
				}
				if replayed != a.Admit {
					t.Fatalf("request %d: replaying the admission test from the trace gives %v, recorded verdict %v (best=%d cost=%v pay=%v need=%v total=%v)",
						id, replayed, a.Admit, a.BestCloudlet, a.BestCost, a.Payment, a.NeedWeight, a.TotalWeight)
				}
				if a.Admit {
					var chosen int
					for _, c := range a.Candidates {
						if c.Chosen {
							chosen++
						}
					}
					if chosen == 0 {
						t.Fatalf("request %d admitted but no candidate marked chosen", id)
					}
				}
			}

			if len(reasons) != len(tc.reasons) {
				t.Fatalf("reason distribution %v, golden %v", reasons, tc.reasons)
			}
			for r, n := range tc.reasons {
				if reasons[r] != n {
					t.Errorf("reason %q: %d requests, golden %d", r, reasons[r], n)
				}
			}
			for _, pin := range tc.argmins {
				dt, _ := store.Get(pin.id)
				a := dt.Attempts[0]
				if a.Admit != pin.admit || a.BestCloudlet != pin.best {
					t.Errorf("request %d: (admit, argmin) = (%v, %d), golden (%v, %d)",
						pin.id, a.Admit, a.BestCloudlet, pin.admit, pin.best)
				}
			}
		})
	}
}
