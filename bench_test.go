package revnf

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"revnf/internal/experiments"
	"revnf/internal/lp"
	"revnf/internal/mip"
	"revnf/internal/serve"
	"revnf/internal/simulate"
	"revnf/internal/timeslot"
	"revnf/internal/topology"
)

// The Benchmark* functions below regenerate each figure of the paper's
// evaluation at a bench-friendly scale (one seed, short sweeps). Run the
// full-scale reproduction with cmd/experiments; the recorded outputs live
// in EXPERIMENTS.md.

// benchSetup mirrors experiments.DefaultSetup at a reduced scale so a
// single bench iteration stays in the tens-of-milliseconds range.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Topology = topology.Abilene
	s.Cloudlets = 5
	s.Horizon = 30
	s.Requests = 100
	s.MaxDur = 6
	s.Seeds = []int64{1}
	s.Optimal = experiments.OptimalNone
	return s
}

// BenchmarkFig1aOnsite regenerates Figure 1(a): on-site revenue vs request
// count (Algorithm 1 vs greedy).
func BenchmarkFig1aOnsite(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1a([]int{50, 100, 150}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1aOnsiteWithOptimal includes the offline LP-bound column,
// measuring the full comparator pipeline.
func BenchmarkFig1aOnsiteWithOptimal(b *testing.B) {
	s := benchSetup()
	s.Optimal = experiments.OptimalLPBound
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1a([]int{50, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1bOffsite regenerates Figure 1(b): off-site revenue vs
// request count (Algorithm 2 vs greedy).
func BenchmarkFig1bOffsite(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1b([]int{50, 100, 150}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2aPaymentVariation regenerates Figure 2(a): revenue vs the
// payment-rate variation H.
func BenchmarkFig2aPaymentVariation(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2a([]float64{1, 5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2bReliabilityVariation regenerates Figure 2(b): revenue vs
// the cloudlet-reliability variation K.
func BenchmarkFig2bReliabilityVariation(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2b([]float64{1.0, 1.05, 1.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScale sweeps Algorithm 1's demand-scaling knob.
func BenchmarkAblationScale(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationScale([]float64{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDualUpdate compares multiplicative vs additive dual
// updates.
func BenchmarkAblationDualUpdate(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationDualUpdate([]int{100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSortKey compares Algorithm 2's candidate orderings.
func BenchmarkAblationSortKey(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSortKey([]int{100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptBudget sweeps the offline B&B node budget.
func BenchmarkAblationOptBudget(b *testing.B) {
	s := benchSetup()
	s.Requests = 20
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationOptBudget([]int{1, 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths behind the figures. ---

func benchInstance(b *testing.B, requests int) *Instance {
	b.Helper()
	s := benchSetup()
	inst, err := s.Instance(requests, s.H, s.K, 1)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkAlgorithm1 measures one full online pass of the on-site
// primal-dual scheduler over a 200-request trace.
func BenchmarkAlgorithm1(b *testing.B) {
	inst := benchInstance(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm2 measures one full online pass of the off-site
// primal-dual scheduler over a 200-request trace.
func BenchmarkAlgorithm2(b *testing.B) {
	inst := benchInstance(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := NewScheduler(inst.Network, OffSite, WithHorizon(inst.Horizon))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyOnsite measures the baseline for comparison with
// Algorithm 1.
func BenchmarkGreedyOnsite(b *testing.B) {
	inst := benchInstance(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := NewScheduler(inst.Network, OnSite, WithAlgorithm(Greedy))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineLPBound measures the simplex comparator on a
// 100-request on-site relaxation.
func BenchmarkOfflineLPBound(b *testing.B) {
	inst := benchInstance(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OfflineLPBound(inst, OnSite); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineBranchBound measures the exact offline solver on a
// small instance.
func BenchmarkOfflineBranchBound(b *testing.B) {
	inst := benchInstance(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveOffline(inst, OnSite, MIPConfig{MaxNodes: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFailureInjection measures Monte-Carlo availability estimation
// (1000 trials per admitted request).
func BenchmarkFailureInjection(b *testing.B) {
	inst := benchInstance(b, 100)
	sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(inst, sched)
	if err != nil {
		b.Fatal(err)
	}
	placements := res.AdmittedPlacements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := EstimateAvailability(inst.Network, inst.Trace, placements, 1000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexDense measures the raw LP solver on a synthetic dense
// program (30 variables, 60 constraints).
func BenchmarkSimplexDense(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const nvars, ncons = 30, 60
	build := func() *lp.Problem {
		p, err := lp.NewProblem(lp.Maximize, nvars)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < nvars; i++ {
			if err := p.SetObjectiveCoeff(i, rng.Float64()*10); err != nil {
				b.Fatal(err)
			}
		}
		for k := 0; k < ncons; k++ {
			row := make(map[int]float64, nvars)
			for i := 0; i < nvars; i++ {
				row[i] = rng.Float64()
			}
			if _, err := p.AddConstraint(row, lp.LE, 10+rng.Float64()*30); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	prob := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := prob.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkBranchBoundKnapsack measures the MIP solver on a 16-item
// knapsack.
func BenchmarkBranchBoundKnapsack(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 16
	p, err := lp.NewProblem(lp.Maximize, n)
	if err != nil {
		b.Fatal(err)
	}
	weights := make(map[int]float64, n)
	binaries := make([]int, n)
	for i := 0; i < n; i++ {
		if err := p.SetObjectiveCoeff(i, 1+rng.Float64()*20); err != nil {
			b.Fatal(err)
		}
		if _, err := p.AddConstraint(map[int]float64{i: 1}, lp.LE, 1); err != nil {
			b.Fatal(err)
		}
		weights[i] = 1 + rng.Float64()*10
		binaries[i] = i
	}
	if _, err := p.AddConstraint(weights, lp.LE, 30); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mip.Solve(p, binaries, mip.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures instance materialization (the
// per-seed setup cost inside every figure point).
func BenchmarkWorkloadGeneration(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := s.Instance(200, s.H, s.K, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyLoad measures embedded topology construction plus the
// degree-ranked cloudlet placement used by the generators.
func BenchmarkTopologyLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := topology.Load(topology.GEANT)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := topology.PlaceCloudletsByDegree(g, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationEngine isolates the engine overhead by running the
// trivial reject-all scheduler.
func BenchmarkSimulationEngine(b *testing.B) {
	inst := benchInstance(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simulate.Run(inst, rejectAll{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Admitted != 0 {
			b.Fatal("reject-all admitted something")
		}
	}
}

type rejectAll struct{}

func (rejectAll) Name() string   { return "reject-all" }
func (rejectAll) Scheme() Scheme { return OnSite }
func (rejectAll) Decide(Request, CapacityView) (Placement, bool) {
	return Placement{}, false
}

// BenchmarkChainScheduling measures a full online pass of the chain
// primal-dual schedulers over a 150-chain trace (the SFC extension).
func BenchmarkChainScheduling(b *testing.B) {
	network := &Network{Catalog: DefaultCatalog()}
	for j := 0; j < 6; j++ {
		network.Cloudlets = append(network.Cloudlets, Cloudlet{
			ID: j, Node: j, Capacity: 10, Reliability: 0.97 + 0.005*float64(j),
		})
	}
	cfg := ChainTraceConfig{
		Requests: 150, Horizon: 30, MinLength: 2, MaxLength: 4,
		MinDuration: 1, MaxDuration: 6,
		MinRequirement: 0.85, MaxRequirement: 0.93,
		MaxPaymentRate: 10, H: 8,
	}
	trace, err := GenerateChainTrace(cfg, network.Catalog, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	inst := &ChainInstance{Network: network, Horizon: 30, Trace: trace}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched, err := NewChainOnsiteScheduler(network, 30)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunChains(inst, sched); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledAdmission measures greedy pooled admission (shared
// backups) over a 200-request trace.
func BenchmarkPooledAdmission(b *testing.B) {
	inst := benchInstance(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPooled(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQoSAssess measures topology QoS scoring of admitted off-site
// placements.
func BenchmarkQoSAssess(b *testing.B) {
	inst := benchInstance(b, 150) // benchSetup binds cloudlets to Abilene nodes
	g, err := LoadTopology(topology.Abilene)
	if err != nil {
		b.Fatal(err)
	}
	sched, err := NewScheduler(inst.Network, OffSite, WithHorizon(inst.Horizon))
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(inst, sched)
	if err != nil {
		b.Fatal(err)
	}
	placements := res.AdmittedPlacements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssessQoS(inst.Network, g, inst.Trace, placements); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonAdmission measures per-request admission decision cost
// through the concurrent serve engine (bounded queue, worker goroutine,
// ledger accounting, latency histogram) against calling the raw scheduler
// directly, quantifying the daemon's concurrency-shell overhead.
func BenchmarkDaemonAdmission(b *testing.B) {
	inst := benchInstance(b, 500)
	reqs := make([]serve.AdmissionRequest, len(inst.Trace))
	for i, r := range inst.Trace {
		reqs[i] = serve.AdmissionRequest{VNF: r.VNF, Reliability: r.Reliability,
			Arrival: r.Arrival, Duration: r.Duration, Payment: r.Payment}
	}

	b.Run("engine", func(b *testing.B) {
		sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
		if err != nil {
			b.Fatal(err)
		}
		e, err := serve.New(serve.Config{
			Network: inst.Network, Scheduler: sched, Horizon: inst.Horizon,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = e.Shutdown(ctx)
		}()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Submit(ctx, reqs[i%len(reqs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("direct", func(b *testing.B) {
		sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
		if err != nil {
			b.Fatal(err)
		}
		view, err := timeslot.New(capacities(inst.Network), inst.Horizon)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := inst.Trace[i%len(inst.Trace)]
			if p, ok := sched.Decide(req, view); ok {
				for _, a := range p.Assignments {
					_ = view.Reserve(a.Cloudlet, req.Arrival, req.Duration, a.Instances)
				}
			}
		}
	})
}

// BenchmarkParallelAdmission measures admission throughput through the
// serve engine at increasing worker counts with many concurrent
// submitters. Serial mode (workers=1) pays a goroutine handoff through
// the bounded queue for every decision; sharded mode (workers>1) executes
// decisions inline on the submitting goroutines — Propose concurrently,
// capacity arbitrated by the concurrent ledger — which removes the
// handoff entirely and lets decisions overlap. The decisions/sec metric
// is the one scripts/bench.sh records.
func BenchmarkParallelAdmission(b *testing.B) {
	inst := benchInstance(b, 500)
	reqs := make([]serve.AdmissionRequest, len(inst.Trace))
	for i, r := range inst.Trace {
		reqs[i] = serve.AdmissionRequest{VNF: r.VNF, Reliability: r.Reliability,
			Arrival: r.Arrival, Duration: r.Duration, Payment: r.Payment}
	}
	modes := []struct {
		name    string
		rolling bool
	}{{"fixed", false}, {"rolling", true}}
	for _, mode := range modes {
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, workers), func(b *testing.B) {
				sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
				if err != nil {
					b.Fatal(err)
				}
				e, err := serve.New(serve.Config{
					Network: inst.Network, Scheduler: sched, Horizon: inst.Horizon,
					Rolling: mode.rolling, Workers: workers, QueueSize: 4096,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					_ = e.Shutdown(ctx)
				}()
				var next atomic.Int64
				// Four concurrent submitters for every engine mode: enough to
				// keep the serial queue saturated and to hand every sharded
				// worker token a client, without drowning the single-CPU
				// scheduler in idle goroutines.
				b.SetParallelism(4)
				b.ResetTimer()
				start := time.Now()
				b.RunParallel(func(pb *testing.PB) {
					ctx := context.Background()
					for pb.Next() {
						i := int(next.Add(1)) - 1
						if _, err := e.Submit(ctx, reqs[i%len(reqs)]); err != nil {
							b.Error(err)
							return
						}
					}
				})
				b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "decisions/sec")
			})
		}
	}
}

func capacities(n *Network) []int {
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	return caps
}

// BenchmarkTimelineSimulation measures the Markov failure-timeline
// simulator over admitted on-site placements.
func BenchmarkTimelineSimulation(b *testing.B) {
	inst := benchInstance(b, 150)
	sched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(inst, sched)
	if err != nil {
		b.Fatal(err)
	}
	cfg := TimelineConfig{CloudletMTTR: 3, InstanceMTTR: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, res.AdmittedPlacements(), cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}
