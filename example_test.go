package revnf_test

import (
	"fmt"
	"log"

	"revnf"
)

// Example shows the minimal end-to-end flow: build a network, stream two
// requests through Algorithm 1, and inspect the decisions.
func Example() {
	network := &revnf.Network{
		Catalog: []revnf.VNF{
			{ID: 0, Name: "firewall", Demand: 1, Reliability: 0.95},
		},
		Cloudlets: []revnf.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.999},
		},
	}
	const horizon = 10
	sched, err := revnf.NewScheduler(network, revnf.OnSite, revnf.WithHorizon(horizon))
	if err != nil {
		log.Fatal(err)
	}
	inst := &revnf.Instance{
		Network: network,
		Horizon: horizon,
		Trace: []revnf.Request{
			{ID: 0, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 3, Payment: 10},
			{ID: 1, VNF: 0, Reliability: 0.90, Arrival: 2, Duration: 2, Payment: 4},
		},
	}
	res, err := revnf.Run(inst, sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %d of %d, revenue %.0f\n", res.Admitted, len(inst.Trace), res.Revenue)
	for _, d := range res.Decisions {
		if d.Admitted {
			a := d.Placement.Assignments[0]
			fmt.Printf("request %d: cloudlet %d with %d instance(s)\n", d.Request, a.Cloudlet, a.Instances)
		}
	}
	// Output:
	// admitted 2 of 2, revenue 14
	// request 0: cloudlet 0 with 2 instance(s)
	// request 1: cloudlet 0 with 1 instance(s)
}

// ExampleOnsiteInstancesMath shows the closed-form backup sizing of Eq. (3):
// how many instances a request needs at a given cloudlet.
func Example_backupSizing() {
	// A 0.9-reliable VNF must reach availability 0.99 inside a
	// 0.999-reliable cloudlet.
	network := &revnf.Network{
		Catalog:   []revnf.VNF{{ID: 0, Name: "ids", Demand: 2, Reliability: 0.9}},
		Cloudlets: []revnf.Cloudlet{{ID: 0, Node: 0, Capacity: 20, Reliability: 0.999}},
	}
	sched, err := revnf.NewScheduler(network, revnf.OnSite, revnf.WithHorizon(5))
	if err != nil {
		log.Fatal(err)
	}
	inst := &revnf.Instance{
		Network: network,
		Horizon: 5,
		Trace: []revnf.Request{
			{ID: 0, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 1, Payment: 1},
		},
	}
	res, err := revnf.Run(inst, sched)
	if err != nil {
		log.Fatal(err)
	}
	p := res.Decisions[0].Placement
	fmt.Printf("%d instances, availability %.4f\n",
		p.TotalInstances(), p.Availability(network, inst.Trace[0]))
	// Output:
	// 3 instances, availability 0.9980
}

// Example_offsite shows off-site placement: reliability accumulates across
// cloudlets, one instance per cloudlet.
func Example_offsite() {
	network := &revnf.Network{
		Catalog: []revnf.VNF{{ID: 0, Name: "lb", Demand: 1, Reliability: 0.9}},
		Cloudlets: []revnf.Cloudlet{
			{ID: 0, Node: 0, Capacity: 5, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 5, Reliability: 0.98},
			{ID: 2, Node: 2, Capacity: 5, Reliability: 0.97},
		},
	}
	sched, err := revnf.NewScheduler(network, revnf.OffSite, revnf.WithHorizon(5))
	if err != nil {
		log.Fatal(err)
	}
	inst := &revnf.Instance{
		Network: network,
		Horizon: 5,
		Trace: []revnf.Request{
			{ID: 0, VNF: 0, Reliability: 0.985, Arrival: 1, Duration: 2, Payment: 6},
		},
	}
	res, err := revnf.Run(inst, sched)
	if err != nil {
		log.Fatal(err)
	}
	p := res.Decisions[0].Placement
	fmt.Printf("spread over %d cloudlets, availability %.4f\n",
		len(p.Assignments), p.Availability(network, inst.Trace[0]))
	// Output:
	// spread over 2 cloudlets, availability 0.9871
}
