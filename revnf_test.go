package revnf

import (
	"math/rand"
	"testing"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: generate an instance, run both schemes plus baselines, compare
// against the offline bound, verify availability empirically, and read the
// theoretical guarantees.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := DefaultInstanceConfig(80)
	cfg.Cloudlets.Count = 5
	cfg.Trace.Horizon = 30
	cfg.Trace.MaxDuration = 6
	inst, err := NewInstance(cfg, 7)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}

	onsiteSched, err := NewScheduler(inst.Network, OnSite, WithHorizon(inst.Horizon))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	onsiteRes, err := Run(inst, onsiteSched)
	if err != nil {
		t.Fatalf("Run on-site: %v", err)
	}
	if onsiteRes.Revenue <= 0 || onsiteRes.Admitted == 0 {
		t.Fatalf("on-site result: revenue %v admitted %d", onsiteRes.Revenue, onsiteRes.Admitted)
	}
	if len(onsiteRes.Violations) != 0 {
		t.Errorf("enforced on-site produced violations")
	}

	offsiteSched, err := NewScheduler(inst.Network, OffSite, WithHorizon(inst.Horizon))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	offsiteRes, err := Run(inst, offsiteSched)
	if err != nil {
		t.Fatalf("Run off-site: %v", err)
	}
	if offsiteRes.Revenue <= 0 {
		t.Fatalf("off-site revenue %v", offsiteRes.Revenue)
	}

	greedyOn, err := NewScheduler(inst.Network, OnSite, WithAlgorithm(Greedy))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if _, err := Run(inst, greedyOn); err != nil {
		t.Fatalf("Run greedy on-site: %v", err)
	}
	greedyOff, err := NewScheduler(inst.Network, OffSite, WithAlgorithm(Greedy))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if _, err := Run(inst, greedyOff); err != nil {
		t.Fatalf("Run greedy off-site: %v", err)
	}

	// Offline LP bound dominates every online revenue.
	for _, scheme := range []Scheme{OnSite, OffSite} {
		bound, err := OfflineLPBound(inst, scheme)
		if err != nil {
			t.Fatalf("OfflineLPBound(%v): %v", scheme, err)
		}
		online := onsiteRes.Revenue
		if scheme == OffSite {
			online = offsiteRes.Revenue
		}
		if bound+1e-6 < online {
			t.Errorf("%v LP bound %v below online revenue %v", scheme, bound, online)
		}
	}

	// Raw Algorithm 1 with the violation licence: revenue must be within
	// the competitive ratio of the offline bound.
	raw, err := NewScheduler(inst.Network, OnSite, WithAlgorithm(RawPrimalDual), WithHorizon(inst.Horizon))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	rawRes, err := RunAllowingViolations(inst, raw)
	if err != nil {
		t.Fatalf("RunAllowingViolations: %v", err)
	}
	analysis, err := AnalyzeOnsite(inst.Network, inst.Trace)
	if err != nil {
		t.Fatalf("AnalyzeOnsite: %v", err)
	}
	bound, err := OfflineLPBound(inst, OnSite)
	if err != nil {
		t.Fatalf("OfflineLPBound: %v", err)
	}
	if rawRes.Revenue*analysis.CompetitiveRatio+1e-6 < bound {
		t.Errorf("competitive ratio violated: raw %v × (1+a_max)=%v < offline bound %v",
			rawRes.Revenue, analysis.CompetitiveRatio, bound)
	}
	// Lemma 8: the worst overcommitment stays within ξ.
	if analysis.ViolationRatio > 0 && rawRes.MaxViolationRatio > 1+analysis.ViolationRatio {
		t.Errorf("violation ratio %v exceeds 1+ξ/cap_min = %v",
			rawRes.MaxViolationRatio, 1+analysis.ViolationRatio)
	}

	// Failure injection confirms the promised availability.
	report, err := EstimateAvailability(inst.Network, inst.Trace, onsiteRes.AdmittedPlacements(), 5000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("EstimateAvailability: %v", err)
	}
	if report.MetFraction < 0.99 {
		t.Errorf("only %.2f of placements met their requirement empirically", report.MetFraction)
	}
}

func TestSolveOfflineFacade(t *testing.T) {
	cfg := DefaultInstanceConfig(12)
	cfg.Cloudlets.Count = 3
	cfg.Trace.Horizon = 10
	cfg.Trace.MaxDuration = 3
	inst, err := NewInstance(cfg, 3)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	for _, scheme := range []Scheme{OnSite, OffSite} {
		sol, err := SolveOffline(inst, scheme, MIPConfig{MaxNodes: 200})
		if err != nil {
			t.Fatalf("SolveOffline(%v): %v", scheme, err)
		}
		if sol.Revenue < 0 || sol.UpperBound+1e-6 < sol.Revenue {
			t.Errorf("%v: revenue %v bound %v inconsistent", scheme, sol.Revenue, sol.UpperBound)
		}
	}
}

func TestDefaultCatalogFacade(t *testing.T) {
	if got := len(DefaultCatalog()); got != 10 {
		t.Fatalf("DefaultCatalog size = %d, want 10", got)
	}
	setup := DefaultExperimentSetup()
	if err := setup.Validate(); err != nil {
		t.Fatalf("DefaultExperimentSetup invalid: %v", err)
	}
}
