package revnf

import (
	"revnf/internal/pool"
)

// Shared backup pooling: the on-site resource-saving mechanism of the
// paper's reference [12], where same-type requests in a cloudlet share a
// pool of backup instances instead of each holding dedicated ones.
type (
	// PoolResult is a pooled-greedy simulation outcome with its
	// dedicated-backup comparison metrics.
	PoolResult = pool.Result
)

// PoolSurvival returns the probability that a member of an n-request pool
// with B shared backups and per-instance reliability r has a live
// instance (excluding the cloudlet factor).
func PoolSurvival(n, backups int, r float64) (float64, error) {
	return pool.Survival(n, backups, r)
}

// PoolMinBackups returns the smallest shared pool size that lets every
// member of an n-request pool meet requirement req in a cloudlet of
// reliability rc.
func PoolMinBackups(n int, r, rc, req float64) (int, error) {
	return pool.MinBackups(n, r, rc, req)
}

// RunPooled simulates greedy pooled admission over the instance and
// reports the backup units saved versus dedicated backups.
func RunPooled(inst *Instance) (*PoolResult, error) {
	return pool.Run(inst)
}
