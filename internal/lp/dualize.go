package lp

import "fmt"

// Dualize constructs the LP dual of the problem. For a maximization
//
//	max c·x  s.t.  a_i·x ≤ b_i (y_i ≥ 0),  a_i·x ≥ b_i (y_i ≤ 0),
//	               a_i·x = b_i (y_i free),  x ≥ 0,
//
// the dual is min b·y s.t. Aᵀy ≥ c with the sign conditions above;
// minimization problems dualize symmetrically. Because this package's
// variables are non-negative, sign-constrained duals map directly and
// free duals (from equality rows) are split into positive and negative
// parts.
//
// The practical use alongside Solve: any FEASIBLE point of the dual
// bounds the primal optimum (weak duality), so solving the dual with a
// budget yields an anytime-valid bound, whereas stopping the primal
// simplex early yields nothing.
//
// The returned problem has one variable per primal constraint (plus one
// extra variable per equality row, appended after the constraint-indexed
// block: the dual of equality row i is x_i − x_{extra(i)}).
func (p *Problem) Dualize() (*Problem, error) {
	m := len(p.cons)
	if m == 0 {
		return nil, fmt.Errorf("%w: dual of an unconstrained problem", ErrBadProblem)
	}
	// Count equality rows: each contributes an extra split variable.
	extras := 0
	for _, c := range p.cons {
		if c.Rel == EQ {
			extras++
		}
	}
	dualSense := Minimize
	if p.sense == Minimize {
		dualSense = Maximize
	}
	dual, err := NewProblem(dualSense, m+extras)
	if err != nil {
		return nil, err
	}
	// Orient every row so its dual variable is non-negative:
	// maximization wants ≤ rows, minimization wants ≥ rows; rows of the
	// opposite relation contribute with flipped sign.
	rowSign := make([]float64, m)
	extraOf := make([]int, m) // split-variable index for EQ rows, else -1
	nextExtra := m
	for i, c := range p.cons {
		extraOf[i] = -1
		switch {
		case c.Rel == EQ:
			rowSign[i] = 1
			extraOf[i] = nextExtra
			nextExtra++
		case p.sense == Maximize && c.Rel == GE, p.sense == Minimize && c.Rel == LE:
			rowSign[i] = -1
		default:
			rowSign[i] = 1
		}
	}
	// Dual objective: Σ sign_i·b_i·y_i (minus the split part for EQ).
	for i, c := range p.cons {
		if err := dual.SetObjectiveCoeff(i, rowSign[i]*c.RHS); err != nil {
			return nil, err
		}
		if extraOf[i] >= 0 {
			if err := dual.SetObjectiveCoeff(extraOf[i], -c.RHS); err != nil {
				return nil, err
			}
		}
	}
	// Dual constraints: one per primal variable j: Σ_i sign_i·a_ij·y_i ≥ c_j
	// for a primal maximization (≤ c_j for a primal minimization).
	rel := GE
	if p.sense == Minimize {
		rel = LE
	}
	rows := make([]map[int]float64, p.nvars)
	for j := range rows {
		rows[j] = map[int]float64{}
	}
	for i, c := range p.cons {
		for j, v := range c.Coeffs {
			rows[j][i] += rowSign[i] * v
			if extraOf[i] >= 0 {
				rows[j][extraOf[i]] -= v
			}
		}
	}
	for j := 0; j < p.nvars; j++ {
		if _, err := dual.AddConstraint(rows[j], rel, p.obj[j]); err != nil {
			return nil, err
		}
	}
	return dual, nil
}
