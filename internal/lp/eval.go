package lp

import "fmt"

// Sense returns the problem's optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// Clone returns an independent deep copy of the problem. Branch-and-bound
// uses clones to add bound constraints per node without disturbing the
// base relaxation.
func (p *Problem) Clone() *Problem {
	obj := make([]float64, len(p.obj))
	copy(obj, p.obj)
	cons := make([]Constraint, len(p.cons))
	for i, c := range p.cons {
		coeffs := make(map[int]float64, len(c.Coeffs))
		for k, v := range c.Coeffs {
			coeffs[k] = v
		}
		cons[i] = Constraint{Coeffs: coeffs, Rel: c.Rel, RHS: c.RHS}
	}
	return &Problem{sense: p.sense, nvars: p.nvars, obj: obj, cons: cons}
}

// Objective evaluates c·x for a candidate point.
func (p *Problem) Objective(x []float64) (float64, error) {
	if len(x) != p.nvars {
		return 0, fmt.Errorf("%w: point has %d entries, want %d", ErrBadProblem, len(x), p.nvars)
	}
	total := 0.0
	for i, c := range p.obj {
		total += c * x[i]
	}
	return total, nil
}

// Feasible reports whether x satisfies every constraint and the
// non-negativity bounds within tolerance tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != p.nvars {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for _, c := range p.cons {
		dot := 0.0
		for i, v := range c.Coeffs {
			dot += v * x[i]
		}
		switch c.Rel {
		case LE:
			if dot > c.RHS+tol {
				return false
			}
		case GE:
			if dot < c.RHS-tol {
				return false
			}
		case EQ:
			if dot < c.RHS-tol || dot > c.RHS+tol {
				return false
			}
		}
	}
	return true
}
