package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestDualizeClassicMax(t *testing.T) {
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 3)
	_ = p.SetObjectiveCoeff(1, 5)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 4)
	mustConstraint(t, p, map[int]float64{1: 2}, LE, 12)
	mustConstraint(t, p, map[int]float64{0: 3, 1: 2}, LE, 18)
	dual, err := p.Dualize()
	if err != nil {
		t.Fatalf("Dualize: %v", err)
	}
	if dual.Sense() != Minimize || dual.NumVars() != 3 || dual.NumConstraints() != 2 {
		t.Fatalf("dual shape: sense %v, %d vars, %d cons", dual.Sense(), dual.NumVars(), dual.NumConstraints())
	}
	primalSol := solveOptimal(t, p)
	dualSol := solveOptimal(t, dual)
	if math.Abs(primalSol.Objective-dualSol.Objective) > 1e-6 {
		t.Errorf("strong duality violated: primal %v, dual %v", primalSol.Objective, dualSol.Objective)
	}
}

func TestDualizeWithGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 4, x = 1, y ≤ 10.
	p := mustProblem(t, Minimize, 2)
	_ = p.SetObjectiveCoeff(0, 2)
	_ = p.SetObjectiveCoeff(1, 3)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, GE, 4)
	mustConstraint(t, p, map[int]float64{0: 1}, EQ, 1)
	mustConstraint(t, p, map[int]float64{1: 1}, LE, 10)
	dual, err := p.Dualize()
	if err != nil {
		t.Fatalf("Dualize: %v", err)
	}
	primalSol := solveOptimal(t, p) // x=1, y=3 → 11
	if math.Abs(primalSol.Objective-11) > 1e-6 {
		t.Fatalf("primal objective %v, want 11", primalSol.Objective)
	}
	dualSol := solveOptimal(t, dual)
	if math.Abs(dualSol.Objective-primalSol.Objective) > 1e-6 {
		t.Errorf("strong duality violated: primal %v, dual %v", primalSol.Objective, dualSol.Objective)
	}
}

func TestDualizeUnconstrained(t *testing.T) {
	p := mustProblem(t, Maximize, 1)
	if _, err := p.Dualize(); !errors.Is(err, ErrBadProblem) {
		t.Errorf("Dualize of unconstrained err = %v", err)
	}
}

// Property: strong duality holds between random primals and their
// Dualize output across senses and relation mixes.
func TestDualizeStrongDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(4)
		sense := Maximize
		if rng.Intn(2) == 0 {
			sense = Minimize
		}
		p := mustProblem(t, sense, n)
		for i := 0; i < n; i++ {
			_ = p.SetObjectiveCoeff(i, 1+rng.Float64()*9)
		}
		// Boxes keep both senses bounded and feasible.
		for i := 0; i < n; i++ {
			mustConstraint(t, p, map[int]float64{i: 1}, LE, 1+rng.Float64()*9)
		}
		// A few random extra rows.
		for k := rng.Intn(3); k > 0; k-- {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.7 {
					coeffs[i] = rng.Float64() * 2
				}
			}
			if len(coeffs) == 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				mustConstraint(t, p, coeffs, LE, 5+rng.Float64()*10)
			} else {
				// A GE row that the origin satisfies keeps feasibility.
				mustConstraint(t, p, coeffs, GE, 0)
			}
		}
		primal, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d primal: %v", trial, err)
		}
		if primal.Status != Optimal {
			continue // skip unbounded/infeasible corners
		}
		dual, err := p.Dualize()
		if err != nil {
			t.Fatalf("trial %d dualize: %v", trial, err)
		}
		dualSol, err := dual.Solve()
		if err != nil {
			t.Fatalf("trial %d dual: %v", trial, err)
		}
		if dualSol.Status != Optimal {
			t.Fatalf("trial %d: dual status %v for optimal primal", trial, dualSol.Status)
		}
		tol := 1e-5 * (1 + math.Abs(primal.Objective))
		if math.Abs(primal.Objective-dualSol.Objective) > tol {
			t.Fatalf("trial %d: primal %v != dual %v", trial, primal.Objective, dualSol.Objective)
		}
	}
}
