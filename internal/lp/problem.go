// Package lp implements a dense two-phase primal simplex solver for linear
// programs. It is the foundation of the offline comparator: the paper
// obtains offline optima with CPLEX; this package plus internal/mip is the
// from-scratch substitution. Problems are stated in natural form (min or
// max, ≤ / ≥ / = constraints, non-negative variables) and converted to
// standard form internally.
package lp

import (
	"errors"
	"fmt"
)

// Errors returned by problem construction and solving.
var (
	ErrBadProblem     = errors.New("lp: malformed problem")
	ErrIterationLimit = errors.New("lp: simplex iteration limit reached")
)

// Sense is the optimization direction.
type Sense int

// Optimization senses.
const (
	Minimize Sense = iota + 1
	Maximize
)

// Relation is a constraint comparison operator.
type Relation int

// Constraint relations.
const (
	LE Relation = iota + 1 // ≤
	GE                     // ≥
	EQ                     // =
)

// String returns the operator symbol.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Constraint is one linear constraint sum(coeffs·x) REL rhs. Coefficients
// are sparse: absent variables have coefficient zero.
type Constraint struct {
	// Coeffs maps variable index to coefficient.
	Coeffs map[int]float64
	// Rel is the comparison operator.
	Rel Relation
	// RHS is the right-hand side.
	RHS float64
}

// Problem is a linear program over non-negative variables. Build with
// NewProblem, SetObjective/SetObjectiveCoeff and AddConstraint, then call
// Solve.
type Problem struct {
	sense Sense
	nvars int
	obj   []float64
	cons  []Constraint
}

// NewProblem creates a problem with nvars non-negative variables.
func NewProblem(sense Sense, nvars int) (*Problem, error) {
	if sense != Minimize && sense != Maximize {
		return nil, fmt.Errorf("%w: sense %d", ErrBadProblem, int(sense))
	}
	if nvars < 1 {
		return nil, fmt.Errorf("%w: %d variables", ErrBadProblem, nvars)
	}
	return &Problem{sense: sense, nvars: nvars, obj: make([]float64, nvars)}, nil
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// SetObjectiveCoeff sets the objective coefficient of variable i.
func (p *Problem) SetObjectiveCoeff(i int, v float64) error {
	if i < 0 || i >= p.nvars {
		return fmt.Errorf("%w: variable %d of %d", ErrBadProblem, i, p.nvars)
	}
	p.obj[i] = v
	return nil
}

// AddConstraint appends a constraint and returns its index.
func (p *Problem) AddConstraint(coeffs map[int]float64, rel Relation, rhs float64) (int, error) {
	if rel != LE && rel != GE && rel != EQ {
		return 0, fmt.Errorf("%w: relation %d", ErrBadProblem, int(rel))
	}
	clean := make(map[int]float64, len(coeffs))
	for i, v := range coeffs {
		if i < 0 || i >= p.nvars {
			return 0, fmt.Errorf("%w: constraint references variable %d of %d", ErrBadProblem, i, p.nvars)
		}
		if v != 0 {
			clean[i] = v
		}
	}
	p.cons = append(p.cons, Constraint{Coeffs: clean, Rel: rel, RHS: rhs})
	return len(p.cons) - 1, nil
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota + 1
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective can improve without limit.
	Unbounded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	// Status classifies the outcome; X and Objective are meaningful only
	// when it is Optimal.
	Status Status
	// Objective is the optimal objective value in the problem's sense.
	Objective float64
	// X holds the optimal values of the structural variables.
	X []float64
	// Duals holds one dual price per constraint, in the problem's sense:
	// the marginal objective change per unit of RHS. For a maximization
	// problem a binding ≤ capacity row gets a non-negative price — the
	// offline counterpart of the online λ_{tj} the paper's algorithms
	// maintain. By strong duality Σ_i Duals[i]·RHS[i] equals Objective.
	Duals []float64
}
