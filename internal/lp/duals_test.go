package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestDualsClassicMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → optimum 36.
	// Known duals: y1 = 0, y2 = 3/2, y3 = 1.
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 3)
	_ = p.SetObjectiveCoeff(1, 5)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 4)
	mustConstraint(t, p, map[int]float64{1: 2}, LE, 12)
	mustConstraint(t, p, map[int]float64{0: 3, 1: 2}, LE, 18)
	sol := solveOptimal(t, p)
	want := []float64{0, 1.5, 1}
	for i, w := range want {
		if math.Abs(sol.Duals[i]-w) > 1e-6 {
			t.Errorf("Duals[%d] = %v, want %v", i, sol.Duals[i], w)
		}
	}
	// Strong duality: y·b = objective.
	yb := sol.Duals[0]*4 + sol.Duals[1]*12 + sol.Duals[2]*18
	if math.Abs(yb-sol.Objective) > 1e-6 {
		t.Errorf("y·b = %v, objective %v", yb, sol.Objective)
	}
}

func TestDualsSignsByRelation(t *testing.T) {
	// min x s.t. x ≥ 2 (GE binding): dual of a ≥ row in a minimization is
	// non-negative and y·b = 2.
	p := mustProblem(t, Minimize, 1)
	_ = p.SetObjectiveCoeff(0, 1)
	mustConstraint(t, p, map[int]float64{0: 1}, GE, 2)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Duals[0]-1) > 1e-6 {
		t.Errorf("GE dual = %v, want 1", sol.Duals[0])
	}
	// Equality row: max x + y s.t. x + y = 5, x ≤ 3 → dual of EQ row 1.
	q := mustProblem(t, Maximize, 2)
	_ = q.SetObjectiveCoeff(0, 1)
	_ = q.SetObjectiveCoeff(1, 1)
	mustConstraint(t, q, map[int]float64{0: 1, 1: 1}, EQ, 5)
	mustConstraint(t, q, map[int]float64{0: 1}, LE, 3)
	qs := solveOptimal(t, q)
	yb := qs.Duals[0]*5 + qs.Duals[1]*3
	if math.Abs(yb-qs.Objective) > 1e-6 {
		t.Errorf("EQ strong duality: y·b = %v, objective %v", yb, qs.Objective)
	}
}

// Property: strong duality and complementary slackness hold on random
// bounded maximization LPs.
func TestDualsStrongDualityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := mustProblem(t, Maximize, n)
		for i := 0; i < n; i++ {
			_ = p.SetObjectiveCoeff(i, rng.Float64()*10)
		}
		type row struct {
			coeffs map[int]float64
			rhs    float64
		}
		rows := make([]row, 0, m+n)
		add := func(coeffs map[int]float64, rhs float64) {
			rows = append(rows, row{coeffs, rhs})
			mustConstraint(t, p, coeffs, LE, rhs)
		}
		// Random non-negative LE rows keep the problem bounded along with
		// per-variable boxes.
		for k := 0; k < m; k++ {
			coeffs := map[int]float64{}
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.7 {
					coeffs[i] = rng.Float64() * 3
				}
			}
			add(coeffs, 1+rng.Float64()*10)
		}
		for i := 0; i < n; i++ {
			add(map[int]float64{i: 1}, 1+rng.Float64()*5)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		// Strong duality.
		yb := 0.0
		for i, r := range rows {
			if sol.Duals[i] < -1e-7 {
				t.Fatalf("trial %d: negative dual %v on ≤ row in maximization", trial, sol.Duals[i])
			}
			yb += sol.Duals[i] * r.rhs
		}
		if math.Abs(yb-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: y·b = %v, objective %v", trial, yb, sol.Objective)
		}
		// Complementary slackness: positive dual ⇒ binding row.
		for i, r := range rows {
			if sol.Duals[i] < 1e-6 {
				continue
			}
			lhs := 0.0
			for v, c := range r.coeffs {
				lhs += c * sol.X[v]
			}
			if math.Abs(lhs-r.rhs) > 1e-5*(1+math.Abs(r.rhs)) {
				t.Fatalf("trial %d: dual %v on slack row (%v < %v)", trial, sol.Duals[i], lhs, r.rhs)
			}
		}
	}
}
