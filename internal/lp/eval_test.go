package lp

import (
	"errors"
	"math"
	"testing"
)

func TestSenseAndCounts(t *testing.T) {
	p := mustProblem(t, Maximize, 3)
	if p.Sense() != Maximize {
		t.Errorf("Sense = %v", p.Sense())
	}
	if p.NumVars() != 3 {
		t.Errorf("NumVars = %d", p.NumVars())
	}
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 1)
	mustConstraint(t, p, map[int]float64{1: 1}, LE, 2)
	if p.NumConstraints() != 2 {
		t.Errorf("NumConstraints = %d", p.NumConstraints())
	}
}

func TestClone(t *testing.T) {
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 3)
	_ = p.SetObjectiveCoeff(1, 5)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 4)
	mustConstraint(t, p, map[int]float64{1: 2}, LE, 12)
	mustConstraint(t, p, map[int]float64{0: 3, 1: 2}, LE, 18)
	c := p.Clone()
	// Adding a constraint to the clone must not affect the original.
	mustConstraint(t, c, map[int]float64{0: 1}, LE, 0)
	origSol := solveOptimal(t, p)
	if math.Abs(origSol.Objective-36) > 1e-6 {
		t.Errorf("original objective = %v, want 36", origSol.Objective)
	}
	cloneSol := solveOptimal(t, c)
	if math.Abs(cloneSol.Objective-30) > 1e-6 { // x=0, y=6
		t.Errorf("clone objective = %v, want 30", cloneSol.Objective)
	}
	if p.NumConstraints() != 3 || c.NumConstraints() != 4 {
		t.Errorf("constraint counts %d/%d", p.NumConstraints(), c.NumConstraints())
	}
}

func TestObjectiveEval(t *testing.T) {
	p := mustProblem(t, Minimize, 2)
	_ = p.SetObjectiveCoeff(0, 2)
	_ = p.SetObjectiveCoeff(1, -1)
	got, err := p.Objective([]float64{3, 4})
	if err != nil {
		t.Fatalf("Objective: %v", err)
	}
	if got != 2 {
		t.Errorf("Objective = %v, want 2", got)
	}
	if _, err := p.Objective([]float64{1}); !errors.Is(err, ErrBadProblem) {
		t.Errorf("short point err = %v", err)
	}
}

func TestFeasible(t *testing.T) {
	p := mustProblem(t, Maximize, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, LE, 5)
	mustConstraint(t, p, map[int]float64{0: 1}, GE, 1)
	mustConstraint(t, p, map[int]float64{1: 1}, EQ, 2)
	tests := []struct {
		name string
		x    []float64
		want bool
	}{
		{"feasible", []float64{2, 2}, true},
		{"violates LE", []float64{4, 2}, false},
		{"violates GE", []float64{0, 2}, false},
		{"violates EQ high", []float64{1, 3}, false},
		{"violates EQ low", []float64{1, 1}, false},
		{"negative variable", []float64{-1, 2}, false},
		{"wrong length", []float64{1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.Feasible(tt.x, 1e-9); got != tt.want {
				t.Errorf("Feasible(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

// A problem that needs several GE rows exercises phase 1's drive-out when
// an artificial stays basic on a redundant row.
func TestSolveRedundantGERows(t *testing.T) {
	p := mustProblem(t, Minimize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 1)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, GE, 2)
	mustConstraint(t, p, map[int]float64{0: 2, 1: 2}, GE, 4) // redundant duplicate
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("Objective = %v, want 2", sol.Objective)
	}
}

// Equality-only systems drive every artificial through phase 1.
func TestSolveEqualityOnlySystem(t *testing.T) {
	p := mustProblem(t, Maximize, 3)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 2)
	_ = p.SetObjectiveCoeff(2, 3)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1, 2: 1}, EQ, 6)
	mustConstraint(t, p, map[int]float64{0: 1, 1: -1}, EQ, 0)
	sol := solveOptimal(t, p)
	// Max 3z + 2y + x with x=y, x+y+z=6 → put all in z: x=y=0, z=6 → 18.
	if math.Abs(sol.Objective-18) > 1e-6 {
		t.Errorf("Objective = %v, want 18", sol.Objective)
	}
}
