package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func mustProblem(t *testing.T, sense Sense, nvars int) *Problem {
	t.Helper()
	p, err := NewProblem(sense, nvars)
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func mustConstraint(t *testing.T, p *Problem, coeffs map[int]float64, rel Relation, rhs float64) {
	t.Helper()
	if _, err := p.AddConstraint(coeffs, rel, rhs); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}

func solveOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("Status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestProblemConstructionErrors(t *testing.T) {
	if _, err := NewProblem(Sense(0), 2); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad sense err = %v", err)
	}
	if _, err := NewProblem(Minimize, 0); !errors.Is(err, ErrBadProblem) {
		t.Errorf("zero vars err = %v", err)
	}
	p := mustProblem(t, Minimize, 2)
	if err := p.SetObjectiveCoeff(5, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad objective index err = %v", err)
	}
	if _, err := p.AddConstraint(map[int]float64{7: 1}, LE, 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad constraint index err = %v", err)
	}
	if _, err := p.AddConstraint(map[int]float64{0: 1}, Relation(9), 1); !errors.Is(err, ErrBadProblem) {
		t.Errorf("bad relation err = %v", err)
	}
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" || Relation(9).String() == "" {
		t.Error("Relation.String wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() == "" {
		t.Error("Status.String wrong")
	}
}

// Classic production LP: max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18.
// Optimum (2, 6) with objective 36.
func TestSolveClassicMax(t *testing.T) {
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 3)
	_ = p.SetObjectiveCoeff(1, 5)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 4)
	mustConstraint(t, p, map[int]float64{1: 2}, LE, 12)
	mustConstraint(t, p, map[int]float64{0: 3, 1: 2}, LE, 18)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-36) > 1e-6 {
		t.Errorf("Objective = %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Errorf("X = %v, want [2 6]", sol.X)
	}
}

// Diet-style minimization with GE constraints:
// min 0.6x + y s.t. 10x + 2y ≥ 20, 5x + 5y ≥ 30, 2x + 6y ≥ 12.
func TestSolveMinWithGE(t *testing.T) {
	p := mustProblem(t, Minimize, 2)
	_ = p.SetObjectiveCoeff(0, 0.6)
	_ = p.SetObjectiveCoeff(1, 1)
	mustConstraint(t, p, map[int]float64{0: 10, 1: 2}, GE, 20)
	mustConstraint(t, p, map[int]float64{0: 5, 1: 5}, GE, 30)
	mustConstraint(t, p, map[int]float64{0: 2, 1: 6}, GE, 12)
	sol := solveOptimal(t, p)
	// Feasibility of the returned point.
	x, y := sol.X[0], sol.X[1]
	if 10*x+2*y < 20-1e-6 || 5*x+5*y < 30-1e-6 || 2*x+6*y < 12-1e-6 {
		t.Errorf("solution %v violates constraints", sol.X)
	}
	// Optimum is x=6, y=0 (all three constraints tight or slack): 3.6.
	if math.Abs(sol.Objective-3.6) > 1e-6 {
		t.Errorf("Objective = %v, want 3.6", sol.Objective)
	}
}

func TestSolveEquality(t *testing.T) {
	// max x + 2y s.t. x + y = 10, x ≤ 6 → x=0? No: y unbounded? y ≤ 10 via
	// equality; optimum x=0, y=10 → 20.
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, EQ, 10)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 6)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-20) > 1e-6 {
		t.Errorf("Objective = %v, want 20", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-10) > 1e-6 {
		t.Errorf("equality violated: %v", sol.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := mustProblem(t, Maximize, 1)
	_ = p.SetObjectiveCoeff(0, 1)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 1)
	mustConstraint(t, p, map[int]float64{0: 1}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Errorf("Status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	mustConstraint(t, p, map[int]float64{1: 1}, LE, 5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Unbounded {
		t.Errorf("Status = %v, want unbounded", sol.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x ≥ 2 written as -x ≤ -2; min x → 2.
	p := mustProblem(t, Minimize, 1)
	_ = p.SetObjectiveCoeff(0, 1)
	mustConstraint(t, p, map[int]float64{0: -1}, LE, -2)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("Objective = %v, want 2", sol.Objective)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: multiple constraints active at origin-adjacent
	// point. max x+y s.t. x ≤ 2, y ≤ 2, x+y ≤ 2, x-y ≤ 0 → optimum 2.
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 1)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 2)
	mustConstraint(t, p, map[int]float64{1: 1}, LE, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, LE, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 1: -1}, LE, 0)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("Objective = %v, want 2", sol.Objective)
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Duplicate equality rows force a redundant artificial row in phase 1.
	p := mustProblem(t, Maximize, 2)
	_ = p.SetObjectiveCoeff(0, 1)
	_ = p.SetObjectiveCoeff(1, 1)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, EQ, 4)
	mustConstraint(t, p, map[int]float64{0: 2, 1: 2}, EQ, 8)
	mustConstraint(t, p, map[int]float64{0: 1}, LE, 3)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Errorf("Objective = %v, want 4", sol.Objective)
	}
}

func TestSolveZeroObjective(t *testing.T) {
	p := mustProblem(t, Minimize, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1}, GE, 1)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective) > 1e-9 {
		t.Errorf("Objective = %v, want 0", sol.Objective)
	}
}

// Property: for randomly generated LPs that are feasible by construction
// (b = A·x0 + margin), the solver returns Optimal, the solution satisfies
// every constraint, and the objective is at least as good as x0's.
func TestSolveRandomFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := mustProblem(t, Minimize, n)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 10 // non-negative costs keep min bounded
			_ = p.SetObjectiveCoeff(i, c[i])
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
		}
		type row struct {
			coeffs map[int]float64
			rel    Relation
			rhs    float64
		}
		rows := make([]row, 0, m)
		for k := 0; k < m; k++ {
			coeffs := map[int]float64{}
			dot := 0.0
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.7 {
					v := rng.NormFloat64() * 3
					coeffs[i] = v
					dot += v * x0[i]
				}
			}
			var rel Relation
			var rhs float64
			switch rng.Intn(3) {
			case 0:
				rel, rhs = LE, dot+rng.Float64()*2
			case 1:
				rel, rhs = GE, dot-rng.Float64()*2
			default:
				rel, rhs = EQ, dot
			}
			rows = append(rows, row{coeffs, rel, rhs})
			mustConstraint(t, p, coeffs, rel, rhs)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible-by-construction LP", trial, sol.Status)
		}
		// Check feasibility.
		for k, r := range rows {
			dot := 0.0
			for i, v := range r.coeffs {
				dot += v * sol.X[i]
			}
			switch r.rel {
			case LE:
				if dot > r.rhs+1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, k, dot, r.rhs)
				}
			case GE:
				if dot < r.rhs-1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %v < %v", trial, k, dot, r.rhs)
				}
			case EQ:
				if math.Abs(dot-r.rhs) > 1e-6 {
					t.Fatalf("trial %d: constraint %d violated: %v != %v", trial, k, dot, r.rhs)
				}
			}
		}
		for i, v := range sol.X {
			if v < -1e-9 {
				t.Fatalf("trial %d: negative variable %d = %v", trial, i, v)
			}
		}
		// Objective no worse than the witness point.
		witness := 0.0
		for i := range c {
			witness += c[i] * x0[i]
		}
		if sol.Objective > witness+1e-6 {
			t.Fatalf("trial %d: objective %v worse than witness %v", trial, sol.Objective, witness)
		}
		// Objective value must equal c·x of the returned point.
		recomputed := 0.0
		for i := range c {
			recomputed += c[i] * sol.X[i]
		}
		if math.Abs(recomputed-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective %v != c·x %v", trial, sol.Objective, recomputed)
		}
	}
}

// Property: maximizing c·x equals -1 times minimizing (-c)·x on the same
// feasible region.
func TestSolveMaxMinDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		maxP := mustProblem(t, Maximize, n)
		minP := mustProblem(t, Minimize, n)
		for i := 0; i < n; i++ {
			c := rng.NormFloat64() * 5
			_ = maxP.SetObjectiveCoeff(i, c)
			_ = minP.SetObjectiveCoeff(i, -c)
		}
		// Box constraints keep everything bounded and feasible.
		for i := 0; i < n; i++ {
			ub := 1 + rng.Float64()*9
			mustConstraint(t, maxP, map[int]float64{i: 1}, LE, ub)
			mustConstraint(t, minP, map[int]float64{i: 1}, LE, ub)
		}
		a, err := maxP.Solve()
		if err != nil {
			t.Fatalf("trial %d max: %v", trial, err)
		}
		b, err := minP.Solve()
		if err != nil {
			t.Fatalf("trial %d min: %v", trial, err)
		}
		if a.Status != Optimal || b.Status != Optimal {
			t.Fatalf("trial %d: statuses %v/%v", trial, a.Status, b.Status)
		}
		if math.Abs(a.Objective+b.Objective) > 1e-6 {
			t.Fatalf("trial %d: max %v != -min %v", trial, a.Objective, -b.Objective)
		}
	}
}

// Regression: a bounded LP with a zero-objective feasible ray (b and c
// cancel along db=dc=1) must not be misreported as unbounded. An earlier
// objective-perturbation experiment broke exactly this case.
func TestSolveZeroObjectiveRay(t *testing.T) {
	p := mustProblem(t, Maximize, 4)
	_ = p.SetObjectiveCoeff(0, 4)
	_ = p.SetObjectiveCoeff(1, 1)
	_ = p.SetObjectiveCoeff(2, -1)
	_ = p.SetObjectiveCoeff(3, -10)
	mustConstraint(t, p, map[int]float64{0: 1, 1: 1, 2: -1}, LE, 2)
	mustConstraint(t, p, map[int]float64{0: 1, 3: -1}, LE, 3)
	sol := solveOptimal(t, p)
	if math.Abs(sol.Objective-11) > 1e-6 {
		t.Errorf("Objective = %v, want 11", sol.Objective)
	}
}
