package lp

import (
	"fmt"
	"math"
	"os"
)

// Numerical tolerances for the dense simplex.
const (
	// eps is the general zero tolerance for reduced costs and pivots.
	eps = 1e-9
	// feasEps is the tolerance on phase-1 objective used to declare
	// feasibility.
	feasEps = 1e-7
	// pertEps scales the anti-degeneracy perturbation applied to
	// inequality right-hand sides. Capacity-style LPs have thousands of
	// ties at every vertex; breaking them with row-indexed perturbations
	// this small cuts stalled pivots by orders of magnitude while moving
	// the optimum by less than the 1e-6 tolerances used downstream.
	pertEps = 1e-9
	// pivTol is the preferred minimum pivot magnitude. Pivoting on
	// elements near eps amplifies floating-point error by their inverse;
	// the Harris-style ratio test only falls below pivTol when no larger
	// pivot exists.
	pivTol = 1e-7
	// refreshEvery bounds floating-point drift: the incrementally updated
	// reduced-cost row is recomputed from the tableau at this pivot
	// cadence.
	refreshEvery = 128
)

// Solve runs two-phase primal simplex and returns the solution. The
// returned error is non-nil only for malformed problems or when the
// iteration safety limit is exceeded (ErrIterationLimit); Infeasible and
// Unbounded are reported through Solution.Status, not as errors.
func (p *Problem) Solve() (*Solution, error) {
	t, nStruct, nReal, err := p.buildTableau()
	if err != nil {
		return nil, err
	}
	// Phase 1: minimize the sum of artificial variables.
	if t.nArtificial > 0 {
		phase1 := make([]float64, t.ncols)
		for j := nReal; j < t.ncols; j++ {
			phase1[j] = 1
		}
		status, z, err := t.run(phase1, t.ncols)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here
			// means a numerical breakdown.
			return nil, fmt.Errorf("%w: phase 1 unbounded", ErrBadProblem)
		}
		if z > feasEps {
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials(nReal)
	}
	// Phase 2: original objective (converted to minimization) over real
	// columns only. The objective is NOT perturbed: cost perturbation
	// would turn zero-cost feasible rays (common in duals and symmetric
	// instances) into strictly improving rays and misreport bounded
	// problems as unbounded.
	cost := make([]float64, t.ncols)
	sign := 1.0
	if p.sense == Maximize {
		sign = -1
	}
	for j := 0; j < nStruct; j++ {
		cost[j] = sign * p.obj[j]
	}
	status, z, err := t.run(cost, nReal)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := make([]float64, nStruct)
	for r, b := range t.basis {
		if b < nStruct {
			x[b] = t.rhs(r)
		}
	}
	obj := z
	if p.sense == Maximize {
		obj = -z
	}
	return &Solution{Status: Optimal, Objective: obj, X: x, Duals: t.duals(cost, p.sense)}, nil
}

// duals recovers the constraint prices from the optimal basis: with
// y = c_B·B⁻¹, the reduced cost of each row's slack/surplus/artificial
// column encodes ∓y_r, and the row's normalization sign maps it back to
// the original orientation. Maximization flips the sense of the internal
// minimization duals.
func (t *tableau) duals(cost []float64, sense Sense) []float64 {
	red := make([]float64, t.ncols+1)
	copy(red, cost)
	for r, b := range t.basis {
		if cb := cost[b]; cb != 0 {
			addScaled(red, t.a[r], -cb)
		}
	}
	out := make([]float64, t.nrows)
	for r, info := range t.rows {
		var y float64
		switch info.rel {
		case LE, EQ:
			y = -red[info.column]
		case GE:
			y = red[info.column]
		}
		if sense == Maximize {
			y = -y
		}
		out[r] = info.sign * y
	}
	return out
}

// tableau is the dense standard-form representation: rows are constraints
// (Ax = b with b ≥ 0), columns are structural variables, then slack/surplus
// variables, then artificial variables, with the RHS stored per row.
type tableau struct {
	nrows, ncols int
	nArtificial  int
	a            [][]float64 // nrows x (ncols+1); last entry of each row is RHS
	basis        []int       // basic variable of each row
	rows         []rowInfo   // per-row dual bookkeeping
}

// rowInfo remembers how each original constraint was normalized so that
// dual prices can be mapped back: the logical column whose reduced cost
// carries the row's dual (slack, surplus or artificial), the normalized
// relation, and the sign applied to the original row.
type rowInfo struct {
	column int
	rel    Relation
	sign   float64
}

func (t *tableau) rhs(r int) float64 { return t.a[r][t.ncols] }

// buildTableau converts the problem to standard form. It returns the
// tableau, the structural variable count, and the count of real (structural
// + slack/surplus) columns.
func (p *Problem) buildTableau() (*tableau, int, int, error) {
	m := len(p.cons)
	// Count slack/surplus columns.
	nSlack := 0
	for _, c := range p.cons {
		if c.Rel != EQ {
			nSlack++
		}
	}
	// Artificial columns: one per row whose canonical form lacks a ready
	// basic column (GE and EQ rows, and LE rows with negative RHS). A GE
	// row with zero RHS is negated into a LE row instead — its slack can
	// start basic at zero, which removes the row from phase 1 entirely
	// (the off-site reliability rows Σw·Y − W·X ≥ 0 are all of this
	// shape, so this frequently eliminates phase 1 altogether).
	nArt := 0
	for _, c := range p.cons {
		rhs, rel := c.RHS, c.Rel
		if rhs < 0 {
			rel = flip(rel)
		}
		if rel == GE && rhs == 0 {
			rel = LE
		}
		if rel != LE {
			nArt++
		}
	}
	nReal := p.nvars + nSlack
	ncols := nReal + nArt
	t := &tableau{
		nrows:       m,
		ncols:       ncols,
		nArtificial: nArt,
		a:           make([][]float64, m),
		basis:       make([]int, m),
		rows:        make([]rowInfo, m),
	}
	slackCol := p.nvars
	artCol := nReal
	for r, c := range p.cons {
		row := make([]float64, ncols+1)
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		if rel == GE && sign*c.RHS == 0 {
			sign, rel = -sign, LE
		}
		for i, v := range c.Coeffs {
			row[i] = sign * v
		}
		row[ncols] = sign * c.RHS
		// Anti-degeneracy: relax inequality rows outward by a tiny
		// row-indexed amount so ratio-test ties become rare. Enlarging
		// the feasible region keeps every original point feasible, so
		// objectives move by at most O(pertEps) in the relaxing
		// direction. Equality rows stay exact: perturbing them could make
		// redundant equality systems inconsistent.
		pert := pertEps * float64(r+1) / float64(m) * math.Max(1, math.Abs(row[ncols]))
		switch rel {
		case LE:
			row[slackCol] = 1
			t.basis[r] = slackCol
			t.rows[r] = rowInfo{column: slackCol, rel: LE, sign: sign}
			slackCol++
			row[ncols] += pert
		case GE:
			row[slackCol] = -1
			t.rows[r] = rowInfo{column: slackCol, rel: GE, sign: sign}
			slackCol++
			row[artCol] = 1
			t.basis[r] = artCol
			artCol++
			row[ncols] -= pert
			if row[ncols] < 0 {
				row[ncols] = 0
			}
		case EQ:
			row[artCol] = 1
			t.basis[r] = artCol
			t.rows[r] = rowInfo{column: artCol, rel: EQ, sign: sign}
			artCol++
		}
		t.a[r] = row
	}
	return t, p.nvars, nReal, nil
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// run prices the current basis against cost, then iterates primal simplex
// allowing entering columns below colLimit. It returns the final status and
// objective value (in the cost vector's sense).
func (t *tableau) run(cost []float64, colLimit int) (Status, float64, error) {
	// Reduced-cost row: red[j] = c_j - c_B·B⁻¹A_j; red[ncols] = -z.
	red := make([]float64, t.ncols+1)
	copy(red, cost)
	for r, b := range t.basis {
		if cb := cost[b]; cb != 0 {
			addScaled(red, t.a[r], -cb)
		}
	}
	// refresh recomputes the reduced-cost row from the tableau, clearing
	// the drift the incremental updates accumulate.
	refresh := func() {
		copy(red, cost)
		red[t.ncols] = 0
		for r, b := range t.basis {
			if cb := cost[b]; cb != 0 {
				addScaled(red, t.a[r], -cb)
			}
		}
	}
	// Devex reference weights: weights[j] approximates ||B⁻¹A_j||²
	// relative to the current reference framework. They are reset to 1
	// whenever the framework is re-anchored (at each refresh).
	weights := make([]float64, colLimit)
	resetWeights := func() {
		for j := range weights {
			weights[j] = 1
		}
	}
	resetWeights()
	maxIter := 200*(t.nrows+t.ncols) + 5000
	// Devex pricing first; switch to Bland's rule near the limit to break
	// any cycling.
	blandAfter := maxIter * 3 / 4
	debug := os.Getenv("LPDEBUG") != ""
	for iter := 0; iter < maxIter; iter++ {
		if debug && iter%500 == 0 {
			fmt.Printf("lp: rows=%d cols=%d iter=%d obj=%.6f\n", t.nrows, t.ncols, iter, -red[t.ncols])
		}
		if iter > 0 && iter%refreshEvery == 0 {
			refresh()
			resetWeights()
		}
		bland := iter >= blandAfter
		enter := t.chooseEntering(red, weights, colLimit, bland)
		if enter < 0 {
			// Re-verify optimality against a freshly priced row before
			// declaring victory: the incremental row may have drifted.
			refresh()
			enter = t.chooseEntering(red, weights, colLimit, bland)
			if enter < 0 {
				return Optimal, -red[t.ncols], nil
			}
		}
		leave := t.ratioTest(enter, bland)
		if leave < 0 {
			return Unbounded, 0, nil
		}
		t.updateDevex(weights, leave, enter, colLimit)
		t.pivot(leave, enter)
		// Update reduced costs with the (normalized) pivot row.
		if f := red[enter]; f != 0 {
			addScaled(red, t.a[leave], -f)
			red[enter] = 0 // clear residual rounding noise
		}
	}
	return Optimal, 0, fmt.Errorf("%w: after %d pivots", ErrIterationLimit, maxIter)
}

// chooseEntering picks the entering column by Devex pricing: maximize
// red_j²/weights[j], where the weights approximate steepest-edge column
// norms ||B⁻¹A_j||². Dantzig's most-negative rule zig-zags badly on the
// heavily degenerate capacity LPs this package exists for; Devex gets
// near-steepest-edge iteration counts at O(n) update cost per pivot.
// Under Bland's rule (anti-cycling fallback) the smallest eligible index
// wins.
func (t *tableau) chooseEntering(red, weights []float64, colLimit int, bland bool) int {
	if bland {
		for j := 0; j < colLimit; j++ {
			if red[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, bestScore := -1, 0.0
	for j := 0; j < colLimit; j++ {
		if red[j] >= -eps {
			continue
		}
		score := red[j] * red[j] / weights[j]
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// updateDevex applies the Devex weight update for a pivot on (leave,
// enter), using the pre-pivot transformed row (Forrest–Goldfarb):
//
//	w_j ← max(w_j, (α_rj/α_rq)²·w_q)  for j ≠ q
//	w_q ← max(w_q/α_rq², 1)
func (t *tableau) updateDevex(weights []float64, leave, enter, colLimit int) {
	row := t.a[leave]
	piv := row[enter]
	if piv == 0 {
		return
	}
	wq := weights[enter]
	invPiv2 := 1 / (piv * piv)
	for j := 0; j < colLimit; j++ {
		if j == enter || row[j] == 0 {
			continue
		}
		if cand := row[j] * row[j] * invPiv2 * wq; cand > weights[j] {
			weights[j] = cand
		}
	}
	weights[enter] = math.Max(wq*invPiv2, 1)
}

// ratioTest returns the leaving row for the entering column, or -1 when
// the column is unbounded. It is a Harris-style two-pass test: the first
// pass finds the minimum ratio, the second picks — among rows whose ratio
// is within a small tolerance of the minimum — the one with the largest
// pivot element, strongly preferring pivots above pivTol (tiny pivots
// amplify floating-point error by their inverse and were the source of
// objective blow-ups on large degenerate instances). Under Bland's rule
// the smallest basic-variable index wins instead, preserving the
// anti-cycling guarantee.
func (t *tableau) ratioTest(enter int, bland bool) int {
	minRatio := math.Inf(1)
	any := false
	for r := 0; r < t.nrows; r++ {
		coef := t.a[r][enter]
		if coef <= eps {
			continue
		}
		any = true
		if ratio := t.rhs(r) / coef; ratio < minRatio {
			minRatio = ratio
		}
	}
	if !any {
		return -1
	}
	slack := eps + 1e-7*math.Abs(minRatio)
	leave := -1
	var leaveCoef float64
	leaveBig := false
	for r := 0; r < t.nrows; r++ {
		coef := t.a[r][enter]
		if coef <= eps {
			continue
		}
		if t.rhs(r)/coef > minRatio+slack {
			continue
		}
		if bland {
			if leave < 0 || t.basis[r] < t.basis[leave] {
				leave, leaveCoef = r, coef
			}
			continue
		}
		big := coef >= pivTol
		switch {
		case leave < 0:
			leave, leaveCoef, leaveBig = r, coef, big
		case big && !leaveBig:
			leave, leaveCoef, leaveBig = r, coef, big
		case big == leaveBig && coef > leaveCoef:
			leave, leaveCoef, leaveBig = r, coef, big
		}
	}
	return leave
}

func (t *tableau) pivot(r, c int) {
	row := t.a[r]
	inv := 1 / row[c]
	for j := range row {
		row[j] *= inv
	}
	row[c] = 1
	for i := 0; i < t.nrows; i++ {
		if i == r {
			continue
		}
		if f := t.a[i][c]; f != 0 {
			addScaled(t.a[i], row, -f)
			t.a[i][c] = 0
		}
	}
	t.basis[r] = c
}

// driveOutArtificials pivots any artificial variable still basic (at zero
// level) onto a real column, or zeroes its row when the row is redundant.
func (t *tableau) driveOutArtificials(nReal int) {
	for r := 0; r < t.nrows; r++ {
		if t.basis[r] < nReal {
			continue
		}
		pivoted := false
		for j := 0; j < nReal; j++ {
			if math.Abs(t.a[r][j]) > eps {
				t.pivot(r, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: zero it so it can never constrain again.
			for j := range t.a[r] {
				t.a[r][j] = 0
			}
			// Keep the artificial nominally basic at level 0; with an
			// all-zero row it never participates in a ratio test.
		}
	}
}

// addScaled sets dst += scale·src element-wise; slices must share length.
// The loop is branch-free so the compiler can keep it in straight-line
// vectorizable form — on the mostly-dense rows a filled tableau produces,
// that beats skipping zeros.
func addScaled(dst, src []float64, scale float64) {
	_ = dst[len(src)-1] // hoist the bounds check out of the loop
	for j, v := range src {
		dst[j] += scale * v
	}
}
