package core

import (
	"fmt"
	"math"
)

// maxThresholds bounds the precomputed availability ladder per
// (VNF, cloudlet) pair. For the paper's catalog (r(f) ≥ 0.9) the on-site
// instance count never approaches this; pathological inputs fall back to
// the exact closed form.
const maxThresholds = 64

// ReliabilityTable caches the reliability math on the admission hot path.
// Schedulers recompute ceil(log(1-R/rc)/log(1-rf)) and -log(1-rf·rc) for
// every cloudlet on every Decide; this table precomputes, per (VNF,
// cloudlet) pair,
//
//   - the availability ladder rc·(1-(1-rf)^n) for n = 1, 2, ..., so the
//     minimum on-site instance count of Eqs. (2)-(3) becomes a ladder scan
//     with no transcendental calls, and
//   - the off-site log-domain weight -ln(1 - rf·rc) of Section V,
//
// plus log(1-rf) per VNF for the closed-form fallback. Every lookup
// returns bit-identical results to the package-level OnsiteInstances and
// OffsiteWeight functions (the cached values are produced by the same
// expressions), so cached and uncached schedulers make identical
// decisions.
//
// The table is immutable after construction and safe for concurrent use.
// It snapshots the network's catalog and cloudlet reliabilities: if the
// network changes (cloudlets added, reliabilities re-estimated), build a
// new table — there is no other invalidation path.
type ReliabilityTable struct {
	// lnFail[f] is log(1 - rf), the denominator of the closed form.
	lnFail []float64
	// rfs[f] and rcs[j] snapshot the reliabilities for the fallback path.
	rfs []float64
	rcs []float64
	// ladder[f][j] holds rc·(1-(1-rf)^n) for n = 1.. (index n-1),
	// truncated at maxThresholds entries.
	ladder [][][]float64
	// weight[f][j] is -ln(1 - rf·rc), the off-site weight.
	weight [][]float64
	// sharedQ[f][j] is q = rf·rc_j, the active-path availability of a
	// shared-scheme member whose primary runs on cloudlet j.
	sharedQ [][]float64
	// sharedFloor[f] is the contention floor rf·min_j(rc_j): the assumed
	// active-path reliability of every pool peer, which keeps the
	// occupancy bound sound for pools mixing members from any primary
	// cloudlet (SharedContentionFloor).
	sharedFloor []float64
	// sharedFree[f][k-1] is Free(k) at the contention floor,
	// k = 1..maxSharedLadder: the occupancy factor of the shared-backup
	// availability. One ladder per VNF type — membership is open to every
	// primary cloudlet, and both cloudlets of a pair enter the
	// availability outside the occupancy factor.
	sharedFree [][]float64
}

// NewReliabilityTable precomputes the reliability tables for the network.
// The network must be valid (Validate); the table does not track later
// mutations of the network.
func NewReliabilityTable(n *Network) (*ReliabilityTable, error) {
	if n == nil {
		return nil, fmt.Errorf("%w: nil network", ErrNoCloudlets)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	t := &ReliabilityTable{
		lnFail:      make([]float64, len(n.Catalog)),
		rfs:         make([]float64, len(n.Catalog)),
		rcs:         make([]float64, len(n.Cloudlets)),
		ladder:      make([][][]float64, len(n.Catalog)),
		weight:      make([][]float64, len(n.Catalog)),
		sharedQ:     make([][]float64, len(n.Catalog)),
		sharedFloor: make([]float64, len(n.Catalog)),
		sharedFree:  make([][]float64, len(n.Catalog)),
	}
	for j, c := range n.Cloudlets {
		t.rcs[j] = c.Reliability
	}
	for f, v := range n.Catalog {
		rf := v.Reliability
		t.rfs[f] = rf
		t.lnFail[f] = math.Log(1 - rf)
		t.ladder[f] = make([][]float64, len(n.Cloudlets))
		t.weight[f] = make([]float64, len(n.Cloudlets))
		t.sharedQ[f] = make([]float64, len(n.Cloudlets))
		floor := SharedContentionFloor(rf, n.Cloudlets)
		t.sharedFloor[f] = floor
		free := make([]float64, maxSharedLadder)
		for k := 1; k <= maxSharedLadder; k++ {
			free[k-1] = sharedFree(floor, k)
		}
		t.sharedFree[f] = free
		for j, c := range n.Cloudlets {
			rc := c.Reliability
			t.weight[f][j] = OffsiteWeight(rf, rc)
			t.sharedQ[f][j] = rf * rc
			ladder := make([]float64, 0, 8)
			for k := 1; k <= maxThresholds; k++ {
				v := OnsiteReliability(rf, rc, k)
				ladder = append(ladder, v)
				// Once two consecutive rungs coincide the ladder has
				// stopped resolving; rarer growth beyond this point is
				// handled by the exact fallback.
				if len(ladder) > 1 && v == ladder[len(ladder)-2] {
					break
				}
			}
			t.ladder[f][j] = ladder
		}
	}
	return t, nil
}

// OnsiteInstances returns N, the minimum instance count so that
// rc·(1-(1-rf)^N) ≥ req for the pair (vnf, cloudlet), exactly as the
// package-level OnsiteInstances does for the pair's reliabilities. Indices
// must be valid for the table's network.
func (t *ReliabilityTable) OnsiteInstances(vnf, cloudlet int, req float64) (int, error) {
	rf, rc := t.rfs[vnf], t.rcs[cloudlet]
	if !validProbability(req) {
		return 0, fmt.Errorf("%w: rf=%v rc=%v req=%v", ErrBadReliability, rf, rc, req)
	}
	if rc <= req {
		return 0, fmt.Errorf("%w: cloudlet reliability %v ≤ requirement %v", ErrInfeasible, rc, req)
	}
	if n, ok := t.onsiteFromLadder(vnf, cloudlet, req); ok {
		return n, nil
	}
	// The ladder was truncated before reaching req (possible only for
	// extreme inputs): defer to the exact closed form.
	return OnsiteInstances(rf, rc, req)
}

// OnsiteInstancesOK is the allocation-free variant schedulers use on the
// hot path: it returns (N, true) exactly when OnsiteInstances would return
// (N, nil), and (0, false) for infeasible or out-of-range requirements —
// the "skip this cloudlet" signal — without constructing an error.
func (t *ReliabilityTable) OnsiteInstancesOK(vnf, cloudlet int, req float64) (int, bool) {
	if !validProbability(req) || t.rcs[cloudlet] <= req {
		return 0, false
	}
	if n, ok := t.onsiteFromLadder(vnf, cloudlet, req); ok {
		return n, true
	}
	n, err := OnsiteInstances(t.rfs[vnf], t.rcs[cloudlet], req)
	return n, err == nil
}

// onsiteFromLadder runs the closed form with the cached log, then the same
// verify-and-bump walk as the uncached path against the precomputed
// ladder. The second return is false when the ladder was truncated before
// reaching req and the caller must fall back to the exact path.
func (t *ReliabilityTable) onsiteFromLadder(vnf, cloudlet int, req float64) (int, bool) {
	target := 1 - req/t.rcs[cloudlet]
	n := int(math.Ceil(math.Log(target) / t.lnFail[vnf]))
	if n < 1 {
		n = 1
	}
	ladder := t.ladder[vnf][cloudlet]
	for n <= len(ladder) {
		if ladder[n-1]+relEpsilon >= req {
			return n, true
		}
		n++
	}
	return 0, false
}

// OnsiteFeasible reports whether the pair can serve a requirement at all
// (rc > req), without allocating an error.
func (t *ReliabilityTable) OnsiteFeasible(cloudlet int, req float64) bool {
	return t.rcs[cloudlet] > req
}

// OffsiteWeight returns the cached -ln(1 - rf·rc) for the pair.
func (t *ReliabilityTable) OffsiteWeight(vnf, cloudlet int) float64 {
	return t.weight[vnf][cloudlet]
}

// SharedAvailability returns the availability of a shared-scheme member
// with its primary on cloudlet a and its pooled backup (capacity k) on
// cloudlet b, with peers contending at the network-wide floor —
// bit-identical to SharedReliabilityK(rf, rcA, rcB, floor, k): the cached
// q and Free(k) are produced by the same expressions and combined in the
// same order. Pool sizes beyond the cached ladder fall back to the closed
// form.
func (t *ReliabilityTable) SharedAvailability(vnf, a, b, k int) float64 {
	if k < 1 {
		return 0
	}
	if k > maxSharedLadder {
		return SharedReliabilityK(t.rfs[vnf], t.rcs[a], t.rcs[b], t.sharedFloor[vnf], k)
	}
	q := t.sharedQ[vnf][a]
	return q + (1-q)*(t.rfs[vnf]*t.rcs[b])*t.sharedFree[vnf][k-1]
}

// SharedFeasible reports whether the (primary a, backup b) pair can serve
// requirement req at full pool capacity k, without allocating: the shared
// candidate filter of the scheduler's ladder scan. Co-located pairs are
// never feasible — the backup must survive the primary's cloudlet.
func (t *ReliabilityTable) SharedFeasible(vnf, a, b, k int, req float64) bool {
	if a == b || !validProbability(req) {
		return false
	}
	return t.SharedAvailability(vnf, a, b, k)+relEpsilon >= req
}
