package core

import (
	"errors"
	"math"
	"testing"
)

func TestAssignmentUnits(t *testing.T) {
	a := Assignment{Cloudlet: 0, Instances: 3}
	if got := a.Units(2); got != 6 {
		t.Fatalf("Units(2) = %d, want 6", got)
	}
}

func TestPlacementTotalInstances(t *testing.T) {
	p := Placement{Assignments: []Assignment{{0, 2}, {1, 1}, {2, 3}}}
	if got := p.TotalInstances(); got != 6 {
		t.Fatalf("TotalInstances() = %d, want 6", got)
	}
}

func TestPlacementValidateOnsite(t *testing.T) {
	n := testNetwork()
	// VNF 0 (rf=0.95) in cloudlet 2 (rc=0.999): two instances give
	// 0.999*(1-0.05^2) = 0.9965; requirement 0.99 is met.
	req := Request{ID: 4, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 2, Payment: 1}
	p := Placement{Request: 4, Scheme: OnSite, Assignments: []Assignment{{Cloudlet: 2, Instances: 2}}}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	if got, want := p.Availability(n, req), 0.999*(1-0.05*0.05); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Availability() = %v, want %v", got, want)
	}
}

func TestPlacementValidateOffsite(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 7, VNF: 1, Reliability: 0.999, Arrival: 1, Duration: 1, Payment: 1}
	p := Placement{Request: 7, Scheme: OffSite, Assignments: []Assignment{
		{Cloudlet: 0, Instances: 1},
		{Cloudlet: 2, Instances: 1},
	}}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	rf := n.Catalog[1].Reliability
	want := 1 - (1-rf*0.99)*(1-rf*0.999)
	if got := p.Availability(n, req); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Availability() = %v, want %v", got, want)
	}
}

func TestPlacementValidateErrors(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 1, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 1, Payment: 1}
	good := func() Placement {
		return Placement{Request: 1, Scheme: OnSite, Assignments: []Assignment{{Cloudlet: 2, Instances: 2}}}
	}
	tests := []struct {
		name    string
		mutate  func(*Placement)
		wantErr error
	}{
		{"wrong request", func(p *Placement) { p.Request = 9 }, ErrBadPlacement},
		{"invalid scheme", func(p *Placement) { p.Scheme = 0 }, ErrBadPlacement},
		{"no assignments", func(p *Placement) { p.Assignments = nil }, ErrBadPlacement},
		{"unknown cloudlet", func(p *Placement) { p.Assignments[0].Cloudlet = 99 }, ErrBadPlacement},
		{"zero instances", func(p *Placement) { p.Assignments[0].Instances = 0 }, ErrBadPlacement},
		{
			"on-site spanning two cloudlets",
			func(p *Placement) {
				p.Assignments = append(p.Assignments, Assignment{Cloudlet: 0, Instances: 1})
			},
			ErrBadPlacement,
		},
		{
			"duplicate cloudlet",
			func(p *Placement) {
				p.Scheme = OffSite
				p.Assignments = []Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 0, Instances: 1}}
			},
			ErrBadPlacement,
		},
		{
			"below requirement",
			func(p *Placement) { p.Assignments[0].Instances = 1 }, // 0.999*0.95 = 0.949 < 0.99
			ErrBelowRequirement,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good()
			tt.mutate(&p)
			if err := p.Validate(n, req); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestPlacementValidateOffsiteMultiInstance(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 2, VNF: 0, Reliability: 0.5, Arrival: 1, Duration: 1, Payment: 1}
	p := Placement{Request: 2, Scheme: OffSite, Assignments: []Assignment{{Cloudlet: 0, Instances: 2}}}
	if err := p.Validate(n, req); !errors.Is(err, ErrBadPlacement) {
		t.Fatalf("off-site with 2 instances in one cloudlet: err = %v, want ErrBadPlacement", err)
	}
}

func TestPlacementAvailabilityDegenerate(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 0, VNF: 0, Reliability: 0.5, Arrival: 1, Duration: 1}
	bad := Placement{Request: 0, Scheme: Scheme(9)}
	if got := bad.Availability(n, req); got != 0 {
		t.Errorf("unknown scheme availability = %v, want 0", got)
	}
	multi := Placement{Request: 0, Scheme: OnSite, Assignments: []Assignment{{0, 1}, {1, 1}}}
	if got := multi.Availability(n, req); got != 0 {
		t.Errorf("malformed on-site availability = %v, want 0", got)
	}
}

func TestPlacementValidateShared(t *testing.T) {
	n := testNetwork()
	// VNF 0 (rf=0.95), primary in cloudlet 2 (rc=0.999), pooled backup in
	// cloudlet 0 (rc=0.99) at k=2 with peers at the network floor
	// 0.95·0.95: availability ≈ 0.9946 clears a 0.99 requirement.
	req := Request{ID: 9, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 2, Payment: 1}
	p := Placement{Request: 9, Scheme: Shared,
		Assignments: []Assignment{{Cloudlet: 2, Instances: 1}},
		Backup:      &SharedBackup{Group: 1, Cloudlet: 0, PoolSize: 2}}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	rf := n.Catalog[0].Reliability
	want := SharedReliabilityK(rf, 0.999, 0.99, SharedContentionFloor(rf, n.Cloudlets), 2)
	if got := p.Availability(n, req); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Availability() = %v, want %v", got, want)
	}
}

func TestPlacementValidateSharedErrors(t *testing.T) {
	n := testNetwork()
	req := Request{ID: 9, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 2, Payment: 1}
	good := func() Placement {
		return Placement{Request: 9, Scheme: Shared,
			Assignments: []Assignment{{Cloudlet: 2, Instances: 1}},
			Backup:      &SharedBackup{Group: 1, Cloudlet: 0, PoolSize: 2}}
	}
	tests := []struct {
		name   string
		mutate func(*Placement)
		want   error
	}{
		{"missing backup", func(p *Placement) { p.Backup = nil }, ErrBadPlacement},
		{"co-located backup", func(p *Placement) { p.Backup.Cloudlet = 2 }, ErrBadPlacement},
		{"unknown backup cloudlet", func(p *Placement) { p.Backup.Cloudlet = 9 }, ErrBadPlacement},
		{"bad group", func(p *Placement) { p.Backup.Group = 0 }, ErrBadPlacement},
		{"bad pool size", func(p *Placement) { p.Backup.PoolSize = 0 }, ErrBadPlacement},
		{"multi-instance primary", func(p *Placement) { p.Assignments[0].Instances = 2 }, ErrBadPlacement},
		{"two primaries", func(p *Placement) {
			p.Assignments = append(p.Assignments, Assignment{Cloudlet: 1, Instances: 1})
		}, ErrBadPlacement},
		{"backup on dedicated scheme", func(p *Placement) { p.Scheme = OnSite; p.Assignments[0].Instances = 2 }, ErrBadPlacement},
		{"below requirement", func(p *Placement) { p.Backup.PoolSize = 16 }, ErrBelowRequirement},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := good()
			tc.mutate(&p)
			if err := p.Validate(n, req); !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}
