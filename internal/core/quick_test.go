package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property (testing/quick): on-site availability is monotone in every
// input — more reliable VNFs, more reliable cloudlets, and more instances
// never hurt.
func TestOnsiteReliabilityMonotoneQuick(t *testing.T) {
	clamp := func(x float64) float64 {
		frac := math.Mod(math.Abs(x), 1)
		if !(frac >= 0 && frac <= 1) { // NaN or ±Inf inputs
			frac = 0.5
		}
		return 0.05 + 0.9*frac
	}
	f := func(rfSeed, rcSeed float64, nSeed uint8) bool {
		rf, rc := clamp(rfSeed), clamp(rcSeed)
		n := 1 + int(nSeed)%10
		base := OnsiteReliability(rf, rc, n)
		if OnsiteReliability(rf, rc, n+1) < base {
			return false
		}
		rf2 := rf + (1-rf)/2
		if OnsiteReliability(rf2, rc, n) < base-1e-12 {
			return false
		}
		rc2 := rc + (1-rc)/2
		return OnsiteReliability(rf, rc2, n) >= base-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): off-site availability is monotone in the
// cloudlet set — adding a cloudlet never lowers availability — and is
// bounded by 1.
func TestOffsiteReliabilityMonotoneQuick(t *testing.T) {
	clamp := func(x float64) float64 {
		frac := math.Mod(math.Abs(x), 1)
		if !(frac >= 0 && frac <= 1) { // NaN or ±Inf inputs
			frac = 0.5
		}
		return 0.05 + 0.9*frac
	}
	f := func(rfSeed float64, rcSeeds []float64, extraSeed float64) bool {
		rf := clamp(rfSeed)
		rcs := make([]float64, 0, len(rcSeeds))
		for _, s := range rcSeeds {
			rcs = append(rcs, clamp(s))
			if len(rcs) == 8 {
				break
			}
		}
		base := OffsiteReliability(rf, rcs)
		if base < 0 || base > 1 {
			return false
		}
		grown := OffsiteReliability(rf, append(rcs, clamp(extraSeed)))
		return grown >= base-1e-12 && grown <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Request.Covers agrees with the slot list.
func TestRequestCoversQuick(t *testing.T) {
	f := func(arrSeed, durSeed, probeSeed uint8) bool {
		r := Request{Arrival: 1 + int(arrSeed)%50, Duration: 1 + int(durSeed)%20}
		slots := r.Slots()
		if len(slots) != r.Duration {
			return false
		}
		inList := make(map[int]bool, len(slots))
		for _, s := range slots {
			inList[s] = true
		}
		probe := 1 + int(probeSeed)%80
		return r.Covers(probe) == inList[probe]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
