package core

import (
	"errors"
	"math/rand"
	"testing"
)

func tableNetwork(t testing.TB, vnfs, cloudlets int, rng *rand.Rand) *Network {
	t.Helper()
	n := &Network{}
	for f := 0; f < vnfs; f++ {
		n.Catalog = append(n.Catalog, VNF{
			ID: f, Name: "f", Demand: 1 + rng.Intn(3),
			Reliability: 0.5 + 0.4999*rng.Float64(),
		})
	}
	for j := 0; j < cloudlets; j++ {
		n.Cloudlets = append(n.Cloudlets, Cloudlet{
			ID: j, Node: -1, Capacity: 10,
			Reliability: 0.5 + 0.4999*rng.Float64(),
		})
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestReliabilityTableMatchesClosedForm fuzzes the cached lookups against
// the uncached functions: the table must be bit-identical in both the
// instance counts and the off-site weights, including the error cases.
func TestReliabilityTableMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := tableNetwork(t, 8, 12, rng)
	table, err := NewReliabilityTable(n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5000; trial++ {
		f := rng.Intn(len(n.Catalog))
		j := rng.Intn(len(n.Cloudlets))
		req := 0.01 + 0.989*rng.Float64()
		rf := n.Catalog[f].Reliability
		rc := n.Cloudlets[j].Reliability

		want, wantErr := OnsiteInstances(rf, rc, req)
		got, gotErr := table.OnsiteInstances(f, j, req)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("trial %d: error mismatch: table %v, closed form %v", trial, gotErr, wantErr)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrInfeasible) && !errors.Is(gotErr, ErrBadReliability) {
				t.Fatalf("trial %d: unexpected error class %v", trial, gotErr)
			}
			if table.OnsiteFeasible(j, req) && errors.Is(gotErr, ErrInfeasible) {
				t.Fatalf("trial %d: OnsiteFeasible disagrees with ErrInfeasible", trial)
			}
			continue
		}
		if got != want {
			t.Fatalf("trial %d: OnsiteInstances(rf=%v, rc=%v, req=%v): table %d, closed form %d",
				trial, rf, rc, req, got, want)
		}
		if n, ok := table.OnsiteInstancesOK(f, j, req); !ok || n != want {
			t.Fatalf("trial %d: OnsiteInstancesOK = (%d, %v), want (%d, true)", trial, n, ok, want)
		}
		if w, cw := table.OffsiteWeight(f, j), OffsiteWeight(rf, rc); w != cw {
			t.Fatalf("trial %d: OffsiteWeight: table %v, closed form %v", trial, w, cw)
		}
	}
}

// TestReliabilityTableHighReliability exercises the near-saturation regime
// where the ladder truncates and the exact fallback takes over.
func TestReliabilityTableHighReliability(t *testing.T) {
	n := &Network{
		Catalog:   []VNF{{ID: 0, Name: "f", Demand: 1, Reliability: 0.01}},
		Cloudlets: []Cloudlet{{ID: 0, Node: -1, Capacity: 10, Reliability: 0.999999}},
	}
	table, err := NewReliabilityTable(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []float64{0.3, 0.9, 0.99, 0.9999, 0.999998} {
		want, wantErr := OnsiteInstances(0.01, 0.999999, req)
		got, gotErr := table.OnsiteInstances(0, 0, req)
		if (wantErr == nil) != (gotErr == nil) || got != want {
			t.Fatalf("req %v: table (%d, %v), closed form (%d, %v)", req, got, gotErr, want, wantErr)
		}
	}
}

// benchReliabilityNetwork mirrors the paper's regime: highly reliable
// cloudlets (0.9+) serving requirements below them, so the feasible branch
// — the admission hot path — dominates.
func benchReliabilityNetwork(b *testing.B) (*Network, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	n := &Network{}
	for f := 0; f < 4; f++ {
		n.Catalog = append(n.Catalog, VNF{ID: f, Name: "f", Demand: 1, Reliability: 0.9 + 0.0999*rng.Float64()})
	}
	for j := 0; j < 8; j++ {
		n.Cloudlets = append(n.Cloudlets, Cloudlet{ID: j, Node: -1, Capacity: 10, Reliability: 0.9 + 0.0999*rng.Float64()})
	}
	reqs := make([]float64, 256)
	for i := range reqs {
		reqs[i] = 0.6 + 0.3*rng.Float64()
	}
	return n, reqs
}

// BenchmarkOnsiteInstancesClosedForm is the uncached hot-path cost: two
// logarithm calls plus a verification pow per admission candidate, and an
// error allocation for every infeasible pair.
func BenchmarkOnsiteInstancesClosedForm(b *testing.B) {
	n, reqs := benchReliabilityNetwork(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := i % len(n.Catalog)
		j := i % len(n.Cloudlets)
		_, _ = OnsiteInstances(n.Catalog[f].Reliability, n.Cloudlets[j].Reliability, reqs[i%len(reqs)])
	}
}

// BenchmarkOnsiteInstancesTable is the cached equivalent; the win is the
// point of the per-(VNF, cloudlet) precomputation.
func BenchmarkOnsiteInstancesTable(b *testing.B) {
	n, reqs := benchReliabilityNetwork(b)
	table, err := NewReliabilityTable(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = table.OnsiteInstancesOK(i%len(n.Catalog), i%len(n.Cloudlets), reqs[i%len(reqs)])
	}
}
