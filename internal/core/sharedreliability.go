package core

import (
	"fmt"
	"math"
)

// DefaultSharedPoolSize is the pool capacity k the shared scheme uses when
// no explicit size is configured: up to k admitted requests share one
// backup instance. Four keeps the occupancy penalty small enough that the
// paper's requirement range (0.90–0.95) stays reachable from typical
// cloudlet pairs while quartering the backup footprint.
const DefaultSharedPoolSize = 4

// SharedReliabilityK returns the availability of one member of a shared
// backup group under the binomial occupancy model: the member's primary
// instance (VNF reliability rf) runs in a cloudlet with reliability rcA,
// and a single pooled backup instance in a cloudlet with reliability rcB
// is shared by up to k members. Each contending peer's active path is
// assumed up with probability peerRel — pass rf·rcA for a homogeneous
// group, or a conservative floor (the lowest rf·rc over primaries the
// pool admits, see ReliabilityTable) for heterogeneous membership: the
// occupancy factor is decreasing in peer failure probability, so
// under-promising peerRel never overstates any member's availability.
//
// The member is served when its active path is up (probability
// q = rf·rcA), or, failing that, when the backup path is up (rf·rcB) AND
// the member wins the pooled instance against the other contenders. With
// X ~ Binomial(k−1, 1−peerRel) concurrent contenders and a uniform
// random grant among the 1+X claimants, the win probability is
//
//	Free(k) = E[1/(1+X)] = (1 − peerRel^k) / (k·(1−peerRel))
//
// (the classic occupancy identity; Free(1) = 1, and Free is strictly
// decreasing in k). The availability is
//
//	A = q + (1−q) · (rf·rcB) · Free(k).
//
// At k = 1 the contenders vanish and this reduces exactly to the
// dedicated off-site pair 1 − (1−rf·rcA)(1−rf·rcB) for any peerRel, so a
// singleton group prices and validates identically to a two-cloudlet
// off-site placement. Admission always validates at full pool capacity k,
// so a member admitted into a half-empty group can never be invalidated
// by later joiners.
func SharedReliabilityK(rf, rcA, rcB, peerRel float64, k int) float64 {
	if k < 1 {
		return 0
	}
	q := rf * rcA
	return q + (1-q)*(rf*rcB)*sharedFree(peerRel, k)
}

// sharedFree returns Free(k) = (1 − q^k)/(k·(1−q)): the probability that
// a contender wins the pooled backup in a full k-group whose peers'
// active paths are each up with probability q. It is the single source of
// the occupancy factor so the cached ladder in ReliabilityTable is
// bit-identical to the closed form.
func sharedFree(q float64, k int) float64 {
	pf := 1 - q
	if pf <= 0 {
		return 1
	}
	return (1 - math.Pow(1-pf, float64(k))) / (float64(k) * pf)
}

// maxSharedLadder bounds the precomputed Free(k) ladder per VNF type and
// the pool sizes MaxSharedPoolSize scans; larger pools fall back to the
// closed form.
const maxSharedLadder = 16

// SharedReliability is the exact heterogeneous form of SharedReliabilityK:
// peerFail lists each other member's active-path failure probability
// (1 − rf_i·rc_i for peer i). The number of contenders X is then
// Poisson-binomial; E[1/(1+X)] is computed by an O(len(peerFail)²) dynamic
// program over the contender-count distribution. With all peerFail equal
// to 1 − peerRel and len(peerFail) = k−1 it agrees with SharedReliabilityK
// up to floating-point association.
func SharedReliability(rf, rcA, rcB float64, peerFail []float64) float64 {
	q := rf * rcA
	// pmf[x] = P(X = x contenders) over the peers, built incrementally.
	pmf := make([]float64, 1, len(peerFail)+1)
	pmf[0] = 1
	for _, pf := range peerFail {
		pmf = append(pmf, 0)
		for x := len(pmf) - 1; x >= 1; x-- {
			pmf[x] = pmf[x]*(1-pf) + pmf[x-1]*pf
		}
		pmf[0] *= 1 - pf
	}
	free := 0.0
	for x, p := range pmf {
		free += p / float64(x+1)
	}
	return q + (1-q)*(rf*rcB)*free
}

// MaxSharedPoolSize returns the largest pool capacity k such that a member
// of a full k-group on the cloudlet pair (rcA primary, rcB backup), with
// peers contending at peerRel, still meets requirement req:
// SharedReliabilityK is strictly decreasing in k, so the result is found
// by scanning up from 1. It returns ErrInfeasible when even a dedicated
// backup (k = 1) falls short, and caps the scan at maxSharedLadder since
// larger pools are never priced by the schedulers.
func MaxSharedPoolSize(rf, rcA, rcB, peerRel, req float64) (int, error) {
	if !validProbability(rf) || !validProbability(rcA) || !validProbability(rcB) ||
		!validProbability(peerRel) || !validProbability(req) {
		return 0, fmt.Errorf("%w: rf=%v rcA=%v rcB=%v peerRel=%v req=%v", ErrBadReliability, rf, rcA, rcB, peerRel, req)
	}
	if SharedReliabilityK(rf, rcA, rcB, peerRel, 1)+relEpsilon < req {
		return 0, fmt.Errorf("%w: shared requirement %v unreachable even dedicated", ErrInfeasible, req)
	}
	k := 1
	for k < maxSharedLadder && SharedReliabilityK(rf, rcA, rcB, peerRel, k+1)+relEpsilon >= req {
		k++
	}
	return k, nil
}

// SharedContentionFloor returns the conservative peer reliability the
// shared scheme's pools assume: the VNF running in the network's least
// reliable cloudlet. Validating and pricing every pool member against
// this floor keeps the binomial occupancy bound sound for arbitrary
// (heterogeneous-primary) membership — an actual peer is always at least
// this likely to stay off the backup.
func SharedContentionFloor(rf float64, cloudlets []Cloudlet) float64 {
	if len(cloudlets) == 0 {
		return 0
	}
	rcMin := cloudlets[0].Reliability
	for _, cl := range cloudlets[1:] {
		if cl.Reliability < rcMin {
			rcMin = cl.Reliability
		}
	}
	return rf * rcMin
}
