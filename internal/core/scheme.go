package core

import (
	"errors"
	"fmt"
)

// ErrUnknownScheme is returned by ParseScheme and UnmarshalText for a
// string that names no registered scheme.
var ErrUnknownScheme = errors.New("core: unknown scheme")

// schemeNames is the scheme registry: display name (logs, experiment
// tables, JSON payloads) and flag name (CLI flags, URLs) per scheme.
// Adding a scheme is one entry here plus its constant in model.go; String,
// Flag, Valid, ParseScheme, AllSchemes, and the text marshalers are all
// derived from this table, so there is exactly one scheme-string parser in
// the tree.
var schemeNames = map[Scheme]struct{ display, flag string }{
	OnSite:  {"on-site", "onsite"},
	OffSite: {"off-site", "offsite"},
	Shared:  {"shared", "shared"},
}

// String returns the scheme's display name ("on-site", "off-site",
// "shared") used in logs, experiment tables, and JSON payloads.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n.display
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Flag returns the scheme's flag spelling ("onsite", "offsite", "shared")
// used by CLI flags and machine-oriented identifiers.
func (s Scheme) Flag() string {
	if n, ok := schemeNames[s]; ok {
		return n.flag
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Valid reports whether s is one of the registered schemes.
func (s Scheme) Valid() bool {
	_, ok := schemeNames[s]
	return ok
}

// AllSchemes returns the registered schemes in ascending order of their
// constant values. The slice is freshly allocated; callers may modify it.
func AllSchemes() []Scheme {
	all := make([]Scheme, 0, len(schemeNames))
	for s := OnSite; len(all) < len(schemeNames); s++ {
		if s.Valid() {
			all = append(all, s)
		}
	}
	return all
}

// ParseScheme resolves a scheme from either its display name ("on-site")
// or its flag spelling ("onsite"). It is the single scheme-string parser:
// CLI flags, HTTP payloads, and the wire protocol all resolve through it.
func ParseScheme(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if name == n.display || name == n.flag {
			return s, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownScheme, name)
}

// MarshalText implements encoding.TextMarshaler using the display name,
// so JSON-encoded schemes read as "on-site"/"off-site"/"shared". An
// unregistered scheme fails rather than emitting an unparseable string.
func (s Scheme) MarshalText() ([]byte, error) {
	n, ok := schemeNames[s]
	if !ok {
		return nil, fmt.Errorf("%w: Scheme(%d)", ErrUnknownScheme, int(s))
	}
	return []byte(n.display), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseScheme, so
// both spellings decode.
func (s *Scheme) UnmarshalText(text []byte) error {
	parsed, err := ParseScheme(string(text))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}
