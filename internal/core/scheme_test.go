package core

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestSchemeRegistryRoundTrip pins the registry: every scheme round-trips
// through both its display and flag spellings, and through the text
// marshalers (the JSON path).
func TestSchemeRegistryRoundTrip(t *testing.T) {
	all := AllSchemes()
	if len(all) != 3 {
		t.Fatalf("AllSchemes() = %v, want 3 schemes", all)
	}
	want := []Scheme{OnSite, OffSite, Shared}
	for i, s := range all {
		if s != want[i] {
			t.Fatalf("AllSchemes() = %v, want %v", all, want)
		}
	}
	for _, s := range all {
		for _, spelling := range []string{s.String(), s.Flag()} {
			got, err := ParseScheme(spelling)
			if err != nil {
				t.Errorf("ParseScheme(%q): %v", spelling, err)
			}
			if got != s {
				t.Errorf("ParseScheme(%q) = %v, want %v", spelling, got, s)
			}
		}
		text, err := s.MarshalText()
		if err != nil {
			t.Fatalf("%v.MarshalText: %v", s, err)
		}
		var back Scheme
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != s {
			t.Errorf("text round trip: %v -> %q -> %v", s, text, back)
		}
	}
}

// TestSchemeJSON checks schemes encode as their display names inside JSON
// documents and decode from either spelling.
func TestSchemeJSON(t *testing.T) {
	b, err := json.Marshal(Shared)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"shared"` {
		t.Fatalf("json.Marshal(Shared) = %s, want %q", b, `"shared"`)
	}
	var s Scheme
	if err := json.Unmarshal([]byte(`"off-site"`), &s); err != nil || s != OffSite {
		t.Fatalf("unmarshal display spelling: %v, %v", s, err)
	}
	if err := json.Unmarshal([]byte(`"offsite"`), &s); err != nil || s != OffSite {
		t.Fatalf("unmarshal flag spelling: %v, %v", s, err)
	}
}

// TestSchemeParseErrors pins unknown spellings to ErrUnknownScheme across
// every entry point.
func TestSchemeParseErrors(t *testing.T) {
	for _, bad := range []string{"", "ON-SITE", "pooled", "Scheme(1)"} {
		if _, err := ParseScheme(bad); !errors.Is(err, ErrUnknownScheme) {
			t.Errorf("ParseScheme(%q) err = %v, want ErrUnknownScheme", bad, err)
		}
		var s Scheme
		if err := s.UnmarshalText([]byte(bad)); !errors.Is(err, ErrUnknownScheme) {
			t.Errorf("UnmarshalText(%q) err = %v, want ErrUnknownScheme", bad, err)
		}
	}
	if _, err := Scheme(0).MarshalText(); !errors.Is(err, ErrUnknownScheme) {
		t.Errorf("Scheme(0).MarshalText err = %v, want ErrUnknownScheme", err)
	}
	if got := Scheme(9).Flag(); got != "Scheme(9)" {
		t.Errorf("Scheme(9).Flag() = %q", got)
	}
}
