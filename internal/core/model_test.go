package core

import (
	"errors"
	"testing"
)

func testNetwork() *Network {
	return &Network{
		Catalog: []VNF{
			{ID: 0, Name: "firewall", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.99},
			{ID: 2, Name: "lb", Demand: 3, Reliability: 0.9},
		},
		Cloudlets: []Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: 3, Capacity: 20, Reliability: 0.95},
			{ID: 2, Node: 5, Capacity: 15, Reliability: 0.999},
		},
	}
}

func TestSchemeString(t *testing.T) {
	tests := []struct {
		scheme Scheme
		want   string
	}{
		{OnSite, "on-site"},
		{OffSite, "off-site"},
		{Scheme(0), "Scheme(0)"},
		{Scheme(7), "Scheme(7)"},
	}
	for _, tt := range tests {
		if got := tt.scheme.String(); got != tt.want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(tt.scheme), got, tt.want)
		}
	}
}

func TestSchemeValid(t *testing.T) {
	if !OnSite.Valid() || !OffSite.Valid() || !Shared.Valid() {
		t.Error("defined schemes must be valid")
	}
	if Scheme(0).Valid() || Scheme(4).Valid() {
		t.Error("undefined schemes must be invalid")
	}
}

func TestRequestWindow(t *testing.T) {
	r := Request{ID: 0, Arrival: 3, Duration: 4}
	if got := r.End(); got != 6 {
		t.Fatalf("End() = %d, want 6", got)
	}
	wantSlots := []int{3, 4, 5, 6}
	slots := r.Slots()
	if len(slots) != len(wantSlots) {
		t.Fatalf("Slots() = %v, want %v", slots, wantSlots)
	}
	for i, s := range wantSlots {
		if slots[i] != s {
			t.Fatalf("Slots() = %v, want %v", slots, wantSlots)
		}
	}
	for t0 := 1; t0 <= 8; t0++ {
		want := t0 >= 3 && t0 <= 6
		if got := r.Covers(t0); got != want {
			t.Errorf("Covers(%d) = %v, want %v", t0, got, want)
		}
	}
}

func TestNetworkValidateOK(t *testing.T) {
	n := testNetwork()
	if err := n.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestNetworkValidateErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Network)
		wantErr error
	}{
		{"empty catalog", func(n *Network) { n.Catalog = nil }, ErrEmptyCatalog},
		{"no cloudlets", func(n *Network) { n.Cloudlets = nil }, ErrNoCloudlets},
		{"vnf id mismatch", func(n *Network) { n.Catalog[1].ID = 5 }, ErrBadID},
		{"vnf zero demand", func(n *Network) { n.Catalog[0].Demand = 0 }, ErrBadDemand},
		{"vnf reliability 0", func(n *Network) { n.Catalog[0].Reliability = 0 }, ErrBadReliability},
		{"vnf reliability 1", func(n *Network) { n.Catalog[0].Reliability = 1 }, ErrBadReliability},
		{"cloudlet id mismatch", func(n *Network) { n.Cloudlets[2].ID = 0 }, ErrBadID},
		{"cloudlet zero capacity", func(n *Network) { n.Cloudlets[1].Capacity = 0 }, ErrBadCapacity},
		{"cloudlet reliability > 1", func(n *Network) { n.Cloudlets[1].Reliability = 1.5 }, ErrBadReliability},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := testNetwork()
			tt.mutate(n)
			if err := n.Validate(); !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateRequest(t *testing.T) {
	n := testNetwork()
	const horizon = 10
	valid := Request{ID: 0, VNF: 1, Reliability: 0.9, Arrival: 2, Duration: 3, Payment: 5}
	if err := n.ValidateRequest(valid, horizon); err != nil {
		t.Fatalf("ValidateRequest(valid) = %v", err)
	}
	tests := []struct {
		name    string
		mutate  func(*Request)
		wantErr error
	}{
		{"unknown vnf", func(r *Request) { r.VNF = 3 }, ErrUnknownVNF},
		{"negative vnf", func(r *Request) { r.VNF = -1 }, ErrUnknownVNF},
		{"requirement 0", func(r *Request) { r.Reliability = 0 }, ErrBadReliability},
		{"requirement 1", func(r *Request) { r.Reliability = 1 }, ErrBadReliability},
		{"arrival 0", func(r *Request) { r.Arrival = 0 }, ErrBadWindow},
		{"zero duration", func(r *Request) { r.Duration = 0 }, ErrBadWindow},
		{"past horizon", func(r *Request) { r.Duration = 10 }, ErrBadWindow},
		{"negative payment", func(r *Request) { r.Payment = -1 }, ErrBadPayment},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := valid
			tt.mutate(&r)
			if err := n.ValidateRequest(r, horizon); !errors.Is(err, tt.wantErr) {
				t.Errorf("ValidateRequest() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateTrace(t *testing.T) {
	n := testNetwork()
	trace := []Request{
		{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 1},
		{ID: 1, VNF: 1, Reliability: 0.9, Arrival: 2, Duration: 2, Payment: 1},
	}
	if err := n.ValidateTrace(trace, 5); err != nil {
		t.Fatalf("ValidateTrace(valid) = %v", err)
	}
	trace[1].ID = 7
	if err := n.ValidateTrace(trace, 5); !errors.Is(err, ErrBadID) {
		t.Fatalf("ValidateTrace(bad ID) = %v, want ErrBadID", err)
	}
	trace[1].ID = 1
	trace[0].Duration = 99
	if err := n.ValidateTrace(trace, 5); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("ValidateTrace(bad window) = %v, want ErrBadWindow", err)
	}
}

func TestTotalCapacity(t *testing.T) {
	n := testNetwork()
	if got := n.TotalCapacity(); got != 45 {
		t.Fatalf("TotalCapacity() = %d, want 45", got)
	}
}

func TestMaxCloudletReliability(t *testing.T) {
	n := testNetwork()
	if got := n.MaxCloudletReliability(); got != 0.999 {
		t.Fatalf("MaxCloudletReliability() = %v, want 0.999", got)
	}
	empty := &Network{}
	if got := empty.MaxCloudletReliability(); got != 0 {
		t.Fatalf("MaxCloudletReliability(empty) = %v, want 0", got)
	}
}
