package core

import (
	"errors"
	"math/rand"
	"testing"
)

// TestSharedReliabilitySingleton pins the k = 1 anchor: a singleton group
// is exactly a dedicated two-cloudlet off-site placement.
func TestSharedReliabilitySingleton(t *testing.T) {
	rf, rcA, rcB := 0.95, 0.98, 0.97
	got := SharedReliabilityK(rf, rcA, rcB, 0.5, 1)
	want := OffsiteReliability(rf, []float64{rcA, rcB})
	if !FloatEq(got, want) {
		t.Fatalf("SharedReliabilityK(k=1) = %v, want off-site pair %v", got, want)
	}
	// The heterogeneous form with no peers agrees too.
	if got2 := SharedReliability(rf, rcA, rcB, nil); !FloatEq(got2, want) {
		t.Fatalf("SharedReliability(no peers) = %v, want %v", got2, want)
	}
}

// TestSharedReliabilityHomogeneousAgreement cross-checks the closed form
// against the exact Poisson-binomial DP with identical peers.
func TestSharedReliabilityHomogeneousAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rf := 0.85 + 0.14*rng.Float64()
		rcA := 0.90 + 0.09*rng.Float64()
		rcB := 0.90 + 0.09*rng.Float64()
		k := 1 + rng.Intn(8)
		peers := make([]float64, k-1)
		for i := range peers {
			peers[i] = 1 - rf*rcA
		}
		closed := SharedReliabilityK(rf, rcA, rcB, rf*rcA, k)
		exact := SharedReliability(rf, rcA, rcB, peers)
		if !FloatEqTol(closed, exact, 1e-9) {
			t.Fatalf("k=%d rf=%v rcA=%v rcB=%v: closed %v vs exact %v", k, rf, rcA, rcB, closed, exact)
		}
	}
}

// TestSharedReliabilityMonotoneInK checks the quickcheck property the
// admission logic leans on: more pool members never raises a member's
// effective reliability (Free(k) strictly decreases), so validating at
// full pool capacity is conservative for every intermediate occupancy.
func TestSharedReliabilityMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		rf := 0.5 + 0.49*rng.Float64()
		rcA := 0.5 + 0.49*rng.Float64()
		rcB := 0.5 + 0.49*rng.Float64()
		peer := 0.5 + 0.49*rng.Float64()
		prev := SharedReliabilityK(rf, rcA, rcB, peer, 1)
		for k := 2; k <= 12; k++ {
			cur := SharedReliabilityK(rf, rcA, rcB, peer, k)
			if cur > prev+relEpsilon {
				t.Fatalf("availability rose with pool size: rf=%v rcA=%v rcB=%v k=%d: %v > %v",
					rf, rcA, rcB, k, cur, prev)
			}
			prev = cur
		}
	}
	// The heterogeneous form is monotone in peers too: appending a peer
	// can only add contention.
	for trial := 0; trial < 200; trial++ {
		rf := 0.8 + 0.19*rng.Float64()
		rcA := 0.8 + 0.19*rng.Float64()
		rcB := 0.8 + 0.19*rng.Float64()
		peers := []float64{}
		prev := SharedReliability(rf, rcA, rcB, peers)
		for i := 0; i < 6; i++ {
			peers = append(peers, rng.Float64())
			cur := SharedReliability(rf, rcA, rcB, peers)
			if cur > prev+relEpsilon {
				t.Fatalf("availability rose with an extra peer: %v > %v", cur, prev)
			}
			prev = cur
		}
	}
}

// TestSharedReliabilityBounds sanity-checks the availability stays a
// probability and above the bare primary path (the backup can only help).
func TestSharedReliabilityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		rf := 0.5 + 0.49*rng.Float64()
		rcA := 0.5 + 0.49*rng.Float64()
		rcB := 0.5 + 0.49*rng.Float64()
		k := 1 + rng.Intn(10)
		a := SharedReliabilityK(rf, rcA, rcB, rf*rcA, k)
		if a <= 0 || a >= 1 {
			t.Fatalf("availability %v out of (0,1)", a)
		}
		if q := rf * rcA; a+relEpsilon < q {
			t.Fatalf("availability %v below bare active path %v", a, q)
		}
	}
}

// TestMaxSharedPoolSize pins the feasibility oracle: the returned k meets
// the requirement, k+1 does not (or the ladder cap was hit), and an
// unreachable requirement reports ErrInfeasible.
func TestMaxSharedPoolSize(t *testing.T) {
	rf, rcA, rcB := 0.9, 0.95, 0.95
	k, err := MaxSharedPoolSize(rf, rcA, rcB, rf*rcA, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if SharedReliabilityK(rf, rcA, rcB, rf*rcA, k)+relEpsilon < 0.95 {
		t.Fatalf("k=%d does not meet requirement", k)
	}
	if k < maxSharedLadder && SharedReliabilityK(rf, rcA, rcB, rf*rcA, k+1)+relEpsilon >= 0.95 {
		t.Fatalf("k=%d is not maximal", k)
	}
	if _, err := MaxSharedPoolSize(0.9, 0.91, 0.91, 0.9*0.91, 0.999); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := MaxSharedPoolSize(1.5, 0.9, 0.9, 0.9, 0.9); !errors.Is(err, ErrBadReliability) {
		t.Fatalf("err = %v, want ErrBadReliability", err)
	}
}

// TestSharedTableBitIdentity checks the ReliabilityTable's cached shared
// surface returns bit-identical values to the package-level closed form,
// including the fallback beyond the cached ladder.
func TestSharedTableBitIdentity(t *testing.T) {
	n := testNetwork()
	tab, err := NewReliabilityTable(n)
	if err != nil {
		t.Fatal(err)
	}
	for f := range n.Catalog {
		rf := n.Catalog[f].Reliability
		floor := SharedContentionFloor(rf, n.Cloudlets)
		for a := range n.Cloudlets {
			for b := range n.Cloudlets {
				for _, k := range []int{1, 2, 4, maxSharedLadder, maxSharedLadder + 3} {
					want := SharedReliabilityK(rf, n.Cloudlets[a].Reliability, n.Cloudlets[b].Reliability, floor, k)
					got := tab.SharedAvailability(f, a, b, k)
					if got != want {
						t.Fatalf("SharedAvailability(%d,%d,%d,%d) = %v, want %v (bit-identical)",
							f, a, b, k, got, want)
					}
				}
				feasible := tab.SharedFeasible(f, a, b, 4, 0.95)
				direct := a != b && SharedReliabilityK(rf, n.Cloudlets[a].Reliability, n.Cloudlets[b].Reliability, floor, 4)+relEpsilon >= 0.95
				if feasible != direct {
					t.Fatalf("SharedFeasible(%d,%d,%d) = %v, want %v", f, a, b, feasible, direct)
				}
			}
		}
	}
}
