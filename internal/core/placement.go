package core

import "fmt"

// Assignment places a number of instances of one request's VNF in one
// cloudlet.
type Assignment struct {
	// Cloudlet is the target cloudlet ID.
	Cloudlet int `json:"cloudlet"`
	// Instances is the number of primary plus backup instances placed
	// there. Under the off-site scheme this is always 1.
	Instances int `json:"instances"`
}

// Units returns the computing units the assignment consumes per slot for a
// VNF with per-instance demand.
func (a Assignment) Units(demand int) int {
	return a.Instances * demand
}

// SharedBackup references the pooled backup serving a shared-scheme
// placement: one backup instance on Cloudlet, reserved once and shared by
// up to PoolSize members of group Group. The group's ledger footprint is
// reference-counted (timeslot.Pool): the backup row is reserved when the
// first member joins and released when the last member expires.
type SharedBackup struct {
	// Group identifies the backup group (positive, unique per scheduler).
	Group int `json:"group"`
	// Cloudlet hosts the pooled backup instance; it must differ from the
	// placement's primary cloudlet.
	Cloudlet int `json:"cloudlet"`
	// PoolSize is the capacity k the group was priced and validated at:
	// availability is computed for a full pool, so later joiners never
	// invalidate earlier members.
	PoolSize int `json:"pool_size"`
}

// Placement is an admission decision's resource footprint: where each
// instance of a request goes. A placement is valid for exactly one scheme.
type Placement struct {
	// Request is the ID of the placed request.
	Request int
	// Scheme records which redundancy scheme produced the placement.
	Scheme Scheme
	// Assignments lists the per-cloudlet instance counts. On-site
	// placements have exactly one assignment; off-site placements have one
	// assignment per chosen cloudlet, each with a single instance; shared
	// placements have exactly one single-instance assignment (the primary)
	// with the pooled backup recorded in Backup.
	Assignments []Assignment
	// Backup is the pooled backup reference for shared placements and nil
	// for every other scheme.
	Backup *SharedBackup
}

// TotalInstances returns the number of instances across all assignments.
func (p Placement) TotalInstances() int {
	total := 0
	for _, a := range p.Assignments {
		total += a.Instances
	}
	return total
}

// Validate checks the placement's structure and that its availability meets
// the request's reliability requirement under the recorded scheme.
func (p Placement) Validate(n *Network, r Request) error {
	if p.Request != r.ID {
		return fmt.Errorf("%w: placement for request %d checked against %d", ErrBadPlacement, p.Request, r.ID)
	}
	if !p.Scheme.Valid() {
		return fmt.Errorf("%w: invalid scheme %d", ErrBadPlacement, int(p.Scheme))
	}
	if len(p.Assignments) == 0 {
		return fmt.Errorf("%w: no assignments", ErrBadPlacement)
	}
	seen := make(map[int]bool, len(p.Assignments))
	for _, a := range p.Assignments {
		if a.Cloudlet < 0 || a.Cloudlet >= len(n.Cloudlets) {
			return fmt.Errorf("%w: unknown cloudlet %d", ErrBadPlacement, a.Cloudlet)
		}
		if a.Instances < 1 {
			return fmt.Errorf("%w: %d instances in cloudlet %d", ErrBadPlacement, a.Instances, a.Cloudlet)
		}
		if seen[a.Cloudlet] {
			return fmt.Errorf("%w: cloudlet %d assigned twice", ErrBadPlacement, a.Cloudlet)
		}
		seen[a.Cloudlet] = true
	}
	rf := n.Catalog[r.VNF].Reliability
	if p.Scheme != Shared && p.Backup != nil {
		return fmt.Errorf("%w: %v placement carries a shared backup", ErrBadPlacement, p.Scheme)
	}
	switch p.Scheme {
	case OnSite:
		if len(p.Assignments) != 1 {
			return fmt.Errorf("%w: on-site placement spans %d cloudlets", ErrBadPlacement, len(p.Assignments))
		}
		a := p.Assignments[0]
		got := OnsiteReliability(rf, n.Cloudlets[a.Cloudlet].Reliability, a.Instances)
		if got+relEpsilon < r.Reliability {
			return fmt.Errorf("%w: on-site availability %v < %v", ErrBelowRequirement, got, r.Reliability)
		}
	case Shared:
		if len(p.Assignments) != 1 {
			return fmt.Errorf("%w: shared placement has %d primary assignments", ErrBadPlacement, len(p.Assignments))
		}
		a := p.Assignments[0]
		if a.Instances != 1 {
			return fmt.Errorf("%w: shared primary with %d instances in cloudlet %d", ErrBadPlacement, a.Instances, a.Cloudlet)
		}
		b := p.Backup
		if b == nil {
			return fmt.Errorf("%w: shared placement without backup group", ErrBadPlacement)
		}
		if b.Cloudlet < 0 || b.Cloudlet >= len(n.Cloudlets) {
			return fmt.Errorf("%w: unknown backup cloudlet %d", ErrBadPlacement, b.Cloudlet)
		}
		if b.Cloudlet == a.Cloudlet {
			return fmt.Errorf("%w: shared backup co-located with primary in cloudlet %d", ErrBadPlacement, b.Cloudlet)
		}
		if b.Group < 1 {
			return fmt.Errorf("%w: shared backup group %d", ErrBadPlacement, b.Group)
		}
		if b.PoolSize < 1 {
			return fmt.Errorf("%w: shared pool size %d", ErrBadPlacement, b.PoolSize)
		}
		// Peers contend at the network-wide floor so membership stays
		// sound regardless of which primary cloudlets the group mixes.
		floor := SharedContentionFloor(rf, n.Cloudlets)
		got := SharedReliabilityK(rf, n.Cloudlets[a.Cloudlet].Reliability, n.Cloudlets[b.Cloudlet].Reliability, floor, b.PoolSize)
		if got+relEpsilon < r.Reliability {
			return fmt.Errorf("%w: shared availability %v < %v", ErrBelowRequirement, got, r.Reliability)
		}
	case OffSite:
		rcs := make([]float64, 0, len(p.Assignments))
		for _, a := range p.Assignments {
			if a.Instances != 1 {
				return fmt.Errorf("%w: off-site assignment with %d instances in cloudlet %d", ErrBadPlacement, a.Instances, a.Cloudlet)
			}
			rcs = append(rcs, n.Cloudlets[a.Cloudlet].Reliability)
		}
		got := OffsiteReliability(rf, rcs)
		if got+relEpsilon < r.Reliability {
			return fmt.Errorf("%w: off-site availability %v < %v", ErrBelowRequirement, got, r.Reliability)
		}
	}
	return nil
}

// Availability returns the probability that at least one instance of the
// placement is operational, given the network's reliabilities.
func (p Placement) Availability(n *Network, r Request) float64 {
	rf := n.Catalog[r.VNF].Reliability
	switch p.Scheme {
	case OnSite:
		if len(p.Assignments) != 1 {
			return 0
		}
		a := p.Assignments[0]
		return OnsiteReliability(rf, n.Cloudlets[a.Cloudlet].Reliability, a.Instances)
	case Shared:
		if len(p.Assignments) != 1 || p.Backup == nil {
			return 0
		}
		a := p.Assignments[0]
		return SharedReliabilityK(rf, n.Cloudlets[a.Cloudlet].Reliability,
			n.Cloudlets[p.Backup.Cloudlet].Reliability,
			SharedContentionFloor(rf, n.Cloudlets), p.Backup.PoolSize)
	case OffSite:
		rcs := make([]float64, 0, len(p.Assignments))
		for _, a := range p.Assignments {
			rcs = append(rcs, n.Cloudlets[a.Cloudlet].Reliability)
		}
		return OffsiteReliability(rf, rcs)
	default:
		return 0
	}
}
