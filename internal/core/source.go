package core

// ReliabilitySource supplies the per-cloudlet availability r(c_j) that
// the reliability math runs on. The paper treats r(c_j) as a static
// catalog value; this seam lets consumers swap in learned rates — the
// slo package's Beta-posterior estimator implements it from observed
// slot failures — so the repair controller's health checks and rebuilt
// schedulers can price against observed failure behavior instead of
// trusting the catalog.
//
// Implementations must be safe for concurrent reads and must return a
// value in the open interval (0,1) for known cloudlets and 0 for
// out-of-range indices.
type ReliabilitySource interface {
	// CloudletReliability returns r(c_j) for cloudlet j.
	CloudletReliability(cloudlet int) float64
}

// CatalogReliability is the default source: the static r(c_j) values of
// the network catalog, exactly what every scheduler consumes today.
type CatalogReliability struct {
	Network *Network
}

// CloudletReliability implements ReliabilitySource.
func (s CatalogReliability) CloudletReliability(cloudlet int) float64 {
	if s.Network == nil || cloudlet < 0 || cloudlet >= len(s.Network.Cloudlets) {
		return 0
	}
	return s.Network.Cloudlets[cloudlet].Reliability
}

// WithReliabilities returns a copy of the network whose cloudlet
// reliabilities come from src; catalog values are kept wherever src
// returns a value outside the open interval (0,1). Rebuilding a
// scheduler from the copy makes it consume the source's rates in place
// of catalog values — the seam's path into the admission math, which
// keys every instance ladder and dual price off Network.Cloudlets.
func (n *Network) WithReliabilities(src ReliabilitySource) *Network {
	clone := &Network{
		Catalog:   append([]VNF(nil), n.Catalog...),
		Cloudlets: append([]Cloudlet(nil), n.Cloudlets...),
	}
	if src == nil {
		return clone
	}
	for j := range clone.Cloudlets {
		if r := src.CloudletReliability(j); r > 0 && r < 1 {
			clone.Cloudlets[j].Reliability = r
		}
	}
	return clone
}
