package core

import (
	"sync"
	"testing"
)

// SerialAdapter must itself satisfy the two-phase contract it adapts.
var _ TwoPhaseScheduler = (*SerialAdapter)(nil)

// countingTwoPhase is a fake scheduler recording the calls it receives.
// admitEvery controls Propose's verdict: request IDs divisible by it are
// admitted, the rest rejected.
type countingTwoPhase struct {
	mu                        sync.Mutex
	proposes, commits, aborts int
	admitEvery                int
	state                     int // mutated only by Commit/Abort, like real duals
}

func (c *countingTwoPhase) Name() string   { return "counting" }
func (c *countingTwoPhase) Scheme() Scheme { return OnSite }

func (c *countingTwoPhase) Decide(req Request, view CapacityView) (Placement, bool) {
	p, ok := c.Propose(req, view)
	if !ok {
		return Placement{}, false
	}
	c.Commit(req, p)
	return p, true
}

func (c *countingTwoPhase) Propose(req Request, _ CapacityView) (Placement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.proposes++
	if c.admitEvery == 0 || req.ID%c.admitEvery != 0 {
		return Placement{}, false
	}
	return Placement{Request: req.ID, Scheme: OnSite,
		Assignments: []Assignment{{Cloudlet: 0, Instances: 1}}}, true
}

func (c *countingTwoPhase) Commit(Request, Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commits++
	c.state++
}

func (c *countingTwoPhase) Abort(Request, Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.aborts++
}

func (c *countingTwoPhase) ConcurrentPropose() bool { return true }

func (c *countingTwoPhase) snapshot() (proposes, commits, aborts, state int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proposes, c.commits, c.aborts, c.state
}

func TestSerialAdapterDecidePairsProposeCommit(t *testing.T) {
	fake := &countingTwoPhase{admitEvery: 2}
	a := NewSerialAdapter(fake)
	if a.Name() != "counting" || a.Scheme() != OnSite {
		t.Fatalf("identity not forwarded: %q %v", a.Name(), a.Scheme())
	}
	if a.ConcurrentPropose() {
		t.Fatal("SerialAdapter.ConcurrentPropose() = true, want false: the adapter serializes")
	}
	if _, ok := a.Decide(Request{ID: 2}, nil); !ok {
		t.Fatal("Decide(ID=2) rejected, fake admits even IDs")
	}
	if _, ok := a.Decide(Request{ID: 3}, nil); ok {
		t.Fatal("Decide(ID=3) admitted, fake rejects odd IDs")
	}
	proposes, commits, aborts, state := fake.snapshot()
	if proposes != 2 || commits != 1 || aborts != 0 {
		t.Errorf("after Decide×2: proposes=%d commits=%d aborts=%d, want 2/1/0",
			proposes, commits, aborts)
	}
	if state != 1 {
		t.Errorf("state = %d, want 1 (exactly the admitted decision moved state)", state)
	}
}

// TestSerialAdapterAbortPath drives the adapter through the explicit
// two-phase protocol, the way an engine that lost a ledger reservation
// would: Propose then Abort must forward both calls and leave the wrapped
// scheduler's state untouched.
func TestSerialAdapterAbortPath(t *testing.T) {
	fake := &countingTwoPhase{admitEvery: 1}
	a := NewSerialAdapter(fake)
	p, ok := a.Propose(Request{ID: 1}, nil)
	if !ok {
		t.Fatal("Propose rejected, fake admits everything")
	}
	a.Abort(Request{ID: 1}, p)
	proposes, commits, aborts, state := fake.snapshot()
	if proposes != 1 || commits != 0 || aborts != 1 {
		t.Errorf("after Propose+Abort: proposes=%d commits=%d aborts=%d, want 1/0/1",
			proposes, commits, aborts)
	}
	if state != 0 {
		t.Errorf("state = %d after abort, want 0 (as if the Propose never happened)", state)
	}
	// A committed proposal, by contrast, moves state exactly once.
	p, ok = a.Propose(Request{ID: 2}, nil)
	if !ok {
		t.Fatal("Propose rejected")
	}
	a.Commit(Request{ID: 2}, p)
	if _, commits, _, state = fake.snapshot(); commits != 1 || state != 1 {
		t.Errorf("after Commit: commits=%d state=%d, want 1/1", commits, state)
	}
}

func TestNewSerialAdapterNil(t *testing.T) {
	if a := NewSerialAdapter(nil); a != nil {
		t.Fatalf("NewSerialAdapter(nil) = %v, want nil", a)
	}
}
