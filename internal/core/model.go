// Package core defines the problem model for reliability-aware VNF service
// provisioning in mobile edge computing (MEC) networks, following Li, Liang,
// Huang and Jia, "Providing Reliability-Aware Virtualized Network Function
// Services for Mobile Edge Computing", IEEE ICDCS 2019.
//
// The model consists of a catalog of VNF types, a set of cloudlets with
// per-slot computing capacity, and a stream of user requests, each asking for
// one VNF type over a window of time slots with an end-to-end reliability
// requirement. Primary and backup VNF instances are placed under one of two
// redundancy schemes: on-site (all instances in a single cloudlet) or
// off-site (at most one instance per cloudlet, spread across several).
package core

import (
	"errors"
	"fmt"
)

// Scheme selects the redundancy scheme used to satisfy a request's
// reliability requirement. Schemes are self-describing: String/Flag name
// them, ParseScheme resolves either spelling, AllSchemes enumerates the
// registry, and MarshalText/UnmarshalText round-trip them through JSON
// and flag values (see scheme.go).
type Scheme int

// Redundancy schemes: the paper's two (Section III) plus the shared-backup
// extension.
const (
	// OnSite places all primary and backup instances of a request in a
	// single cloudlet (Section III-C1).
	OnSite Scheme = iota + 1
	// OffSite places at most one instance per cloudlet across a set of
	// cloudlets (Section III-C2).
	OffSite
	// Shared places one primary instance in a cloudlet and enrolls the
	// request in a backup group: a single pooled backup instance on a
	// second cloudlet shared by up to PoolSize admitted requests, with
	// correlated-failure (occupancy) accounting — see SharedReliability.
	Shared
)

// VNF describes one virtualized network function type f in the catalog F.
type VNF struct {
	// ID is the index of the type within the catalog.
	ID int
	// Name is a human-readable label (e.g. "firewall").
	Name string
	// Demand is the computing-unit cost c(f) of one instance.
	Demand int
	// Reliability is r(f), the probability that a single instance is
	// operational, in the open interval (0, 1).
	Reliability float64
}

// Cloudlet describes one edge server cluster co-located with an access
// point.
type Cloudlet struct {
	// ID is the index of the cloudlet within the network.
	ID int
	// Node is the access-point node in the MEC topology hosting this
	// cloudlet, or -1 when the cloudlet is not bound to a topology.
	Node int
	// Capacity is cap_j, the computing units available in every time slot.
	Capacity int
	// Reliability is r(c), the probability that the cloudlet is
	// operational, in the open interval (0, 1).
	Reliability float64
}

// Request is one user request ρ = (f, R, a, d, pay).
type Request struct {
	// ID identifies the request within a trace.
	ID int
	// VNF is the ID of the requested VNF type in the catalog.
	VNF int
	// Reliability is the requirement R in the open interval (0, 1): the
	// probability that at least one instance is available must be ≥ R.
	Reliability float64
	// Arrival is the arrival slot a (1-based).
	Arrival int
	// Duration is the number of slots d the service must run for.
	Duration int
	// Payment is the revenue collected if the request is admitted.
	Payment float64
}

// End returns the last slot covered by the request, a+d-1.
func (r Request) End() int {
	return r.Arrival + r.Duration - 1
}

// Covers reports whether the request's execution window includes slot t.
// It corresponds to the indicator V_i[t] of the paper.
func (r Request) Covers(t int) bool {
	return t >= r.Arrival && t <= r.End()
}

// Slots returns the request's execution slots in increasing order.
func (r Request) Slots() []int {
	slots := make([]int, 0, r.Duration)
	for t := r.Arrival; t <= r.End(); t++ {
		slots = append(slots, t)
	}
	return slots
}

// Network bundles the static side of a problem instance: the VNF catalog and
// the cloudlets. The time horizon and the request trace are supplied
// separately so the same network can serve many workloads.
type Network struct {
	// Catalog is the set F of VNF types, indexed by VNF.ID.
	Catalog []VNF
	// Cloudlets is the set C, indexed by Cloudlet.ID.
	Cloudlets []Cloudlet
}

// Validation errors returned by Network.Validate and Request checks.
var (
	ErrEmptyCatalog     = errors.New("core: empty VNF catalog")
	ErrNoCloudlets      = errors.New("core: no cloudlets")
	ErrBadReliability   = errors.New("core: reliability out of (0,1)")
	ErrBadDemand        = errors.New("core: non-positive demand")
	ErrBadCapacity      = errors.New("core: non-positive capacity")
	ErrBadID            = errors.New("core: ID does not match index")
	ErrUnknownVNF       = errors.New("core: request references unknown VNF")
	ErrBadWindow        = errors.New("core: request window invalid")
	ErrBadPayment       = errors.New("core: negative payment")
	ErrInfeasible       = errors.New("core: reliability requirement unattainable")
	ErrSchemeMismatch   = errors.New("core: placement scheme mismatch")
	ErrBadPlacement     = errors.New("core: malformed placement")
	ErrBelowRequirement = errors.New("core: placement reliability below requirement")
)

// Validate checks the structural invariants of the network: non-empty
// catalog and cloudlet set, IDs equal to slice positions, reliabilities in
// (0,1), positive demands and capacities.
func (n *Network) Validate() error {
	if len(n.Catalog) == 0 {
		return ErrEmptyCatalog
	}
	if len(n.Cloudlets) == 0 {
		return ErrNoCloudlets
	}
	for i, f := range n.Catalog {
		if f.ID != i {
			return fmt.Errorf("%w: VNF %q at index %d has ID %d", ErrBadID, f.Name, i, f.ID)
		}
		if f.Demand <= 0 {
			return fmt.Errorf("%w: VNF %q demand %d", ErrBadDemand, f.Name, f.Demand)
		}
		if !validProbability(f.Reliability) {
			return fmt.Errorf("%w: VNF %q reliability %v", ErrBadReliability, f.Name, f.Reliability)
		}
	}
	for j, c := range n.Cloudlets {
		if c.ID != j {
			return fmt.Errorf("%w: cloudlet at index %d has ID %d", ErrBadID, j, c.ID)
		}
		if c.Capacity <= 0 {
			return fmt.Errorf("%w: cloudlet %d capacity %d", ErrBadCapacity, j, c.Capacity)
		}
		if !validProbability(c.Reliability) {
			return fmt.Errorf("%w: cloudlet %d reliability %v", ErrBadReliability, j, c.Reliability)
		}
	}
	return nil
}

// ValidateRequest checks one request against the network and horizon T.
func (n *Network) ValidateRequest(r Request, horizon int) error {
	if r.VNF < 0 || r.VNF >= len(n.Catalog) {
		return fmt.Errorf("%w: request %d wants VNF %d of %d", ErrUnknownVNF, r.ID, r.VNF, len(n.Catalog))
	}
	if !validProbability(r.Reliability) {
		return fmt.Errorf("%w: request %d requirement %v", ErrBadReliability, r.ID, r.Reliability)
	}
	if r.Arrival < 1 || r.Duration < 1 || r.End() > horizon {
		return fmt.Errorf("%w: request %d window [%d,%d] horizon %d", ErrBadWindow, r.ID, r.Arrival, r.End(), horizon)
	}
	if r.Payment < 0 {
		return fmt.Errorf("%w: request %d payment %v", ErrBadPayment, r.ID, r.Payment)
	}
	return nil
}

// ValidateTrace checks every request in the trace and that IDs match their
// positions.
func (n *Network) ValidateTrace(trace []Request, horizon int) error {
	for i, r := range trace {
		if r.ID != i {
			return fmt.Errorf("%w: request at index %d has ID %d", ErrBadID, i, r.ID)
		}
		if err := n.ValidateRequest(r, horizon); err != nil {
			return err
		}
	}
	return nil
}

// TotalCapacity returns the sum of cloudlet capacities (one slot).
func (n *Network) TotalCapacity() int {
	total := 0
	for _, c := range n.Cloudlets {
		total += c.Capacity
	}
	return total
}

// MaxCloudletReliability returns the largest cloudlet reliability, or 0 when
// there are no cloudlets.
func (n *Network) MaxCloudletReliability() float64 {
	best := 0.0
	for _, c := range n.Cloudlets {
		if c.Reliability > best {
			best = c.Reliability
		}
	}
	return best
}

func validProbability(p float64) bool {
	return p > 0 && p < 1
}
