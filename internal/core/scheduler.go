package core

// CapacityView exposes the authoritative resource state to online
// schedulers. The simulation engine owns the underlying ledger; schedulers
// query residual capacity through this interface and return placements, and
// the engine performs the actual reservation. Raw Algorithm 1 ignores the
// view (its capacity violations are part of the analysis); every other
// scheduler uses it to stay feasible.
type CapacityView interface {
	// Capacity returns cap_j for cloudlet j.
	Capacity(cloudlet int) int
	// Residual returns the free computing units of cloudlet j at slot t.
	Residual(cloudlet, slot int) int
	// ResidualWindow returns the minimum residual capacity of cloudlet j
	// over slots [start, start+duration-1].
	ResidualWindow(cloudlet, start, duration int) int
}

// Scheduler is an online admission algorithm. Decide is called once per
// request, in arrival order, and must not assume knowledge of future
// requests. It returns the placement and true to admit, or a zero placement
// and false to reject.
//
// Concurrency contract: implementations keep their own dual or heuristic
// state between calls and are NOT safe for concurrent use. Callers must
// guarantee that Decide calls are serialized — at most one in flight at a
// time, each starting after the previous one returned (a single goroutine,
// or external mutual exclusion with happens-before edges between calls).
// The batch simulator (internal/simulate) satisfies this by construction;
// the admission daemon (internal/serve) funnels all decisions through one
// worker goroutine. Name and Scheme must be safe to call concurrently with
// Decide; they are expected to return constants.
type Scheduler interface {
	// Name identifies the algorithm in metrics and experiment tables.
	Name() string
	// Scheme returns the redundancy scheme the scheduler operates under.
	Scheme() Scheme
	// Decide makes the online admission decision for one request.
	Decide(req Request, view CapacityView) (Placement, bool)
}
