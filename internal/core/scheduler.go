package core

import "sync"

// CapacityView exposes the authoritative resource state to online
// schedulers. The engine (batch simulator or admission daemon) owns the
// underlying ledger; schedulers query residual capacity through this
// interface and return placements, and the engine performs the actual
// reservation. Raw Algorithm 1 ignores the view (its capacity violations
// are part of the analysis); every other scheduler uses it to stay
// feasible. Implementations must be safe for concurrent reads (the
// timeslot.Ledger is); under concurrency a read is a hint that the
// arbitrating reservation re-checks atomically.
type CapacityView interface {
	// Capacity returns cap_j for cloudlet j.
	Capacity(cloudlet int) int
	// Residual returns the free computing units of cloudlet j at slot t.
	Residual(cloudlet, slot int) int
	// ResidualWindow returns the minimum residual capacity of cloudlet j
	// over slots [start, start+duration-1].
	ResidualWindow(cloudlet, start, duration int) int
}

// Scheduler is an online admission algorithm. Decide is called once per
// request, in arrival order, and must not assume knowledge of future
// requests. It returns the placement and true to admit, or a zero placement
// and false to reject.
//
// Concurrency contract: Decide couples the placement choice and the
// scheduler's internal state update in one call and is therefore NOT safe
// for concurrent use. Callers must serialize Decide calls — at most one in
// flight at a time, each starting after the previous one returned (a
// single goroutine, or external mutual exclusion with happens-before edges
// between calls). The batch simulator (internal/simulate) satisfies this
// by construction; the admission daemon (internal/serve) either funnels
// Decide through one worker or, when the scheduler also implements
// TwoPhaseScheduler, switches to the propose/commit protocol below and
// runs proposals concurrently. Name and Scheme must be safe to call
// concurrently with Decide; they are expected to return constants.
type Scheduler interface {
	// Name identifies the algorithm in metrics and experiment tables.
	Name() string
	// Scheme returns the redundancy scheme the scheduler operates under.
	Scheme() Scheme
	// Decide makes the online admission decision for one request.
	Decide(req Request, view CapacityView) (Placement, bool)
}

// TwoPhaseScheduler splits the admission decision into a side-effect-free
// Propose and a state-mutating Commit/Abort, so that capacity arbitration
// can live in the ledger instead of in the scheduler:
//
//	p, ok := s.Propose(req, view)   // pure: reads prices, reads view
//	... engine reserves p's footprint atomically in the ledger ...
//	s.Commit(req, p)                // applies dual/heuristic state updates
//
// Every scheduler in this repository implements Decide as Propose followed
// immediately by Commit, so the two interfaces agree decision-for-decision
// when driven serially (SerialAdapter packages that equivalence).
//
// Concurrency rule: Propose must not mutate scheduler state observable by
// other calls; when ConcurrentPropose reports true, any number of Propose
// calls may run concurrently with each other and with at most one
// Commit/Abort sequence consumer. Commit calls are serialized by the
// scheduler itself (internally locked); the sequence of Commit calls is
// the scheduler's state history. For the primal-dual algorithms this keeps
// the λ updates of Eqs. (34)/(67) sequentially consistent in Commit order
// — exactly the per-request update order the competitive analysis assumes
// — while Propose reads a recent price snapshot under a read lock.
//
// Which schedulers support concurrent Propose:
//
//   - greedy, first-fit, reject-all: trivially — Propose is a pure
//     function of (req, view) and Commit is a no-op;
//   - random: yes — its only mutable state is the RNG, which Propose
//     guards with a dedicated mutex (draw order, and hence the chosen
//     cloudlet, depends on interleaving; serial driving stays
//     deterministic);
//   - on-site and off-site primal-dual (and their chain variants): yes —
//     λ is guarded by a reader/writer lock; Propose takes the read side,
//     Commit the write side.
//
// Abort releases nothing by default (no scheduler here acquires state in
// Propose) but is part of the contract so engines can pair every Propose
// with exactly one Commit or Abort.
//
// Observability carve-out: emitting a decision trace from Propose into an
// injected trace.Recorder is NOT state mutation under this contract.
// Traces never feed back into any admission decision, so recording keeps
// Propose semantically pure; the purepropose analyzer encodes the same
// allowance. Recorder implementations must be safe for concurrent use so
// concurrent proposals may emit without coordination.
type TwoPhaseScheduler interface {
	Scheduler
	// Propose computes the placement the scheduler would admit for req
	// given the capacity view, without mutating scheduler state. It
	// returns false to reject (priced out or infeasible).
	Propose(req Request, view CapacityView) (Placement, bool)
	// Commit applies the scheduler's internal state update for a proposal
	// the engine decided to admit. It must be called at most once per
	// Propose, after the engine has secured the placement's capacity.
	Commit(req Request, p Placement)
	// Abort discards a proposal the engine could not admit (for example
	// when the ledger refused the reservation after a concurrent commit
	// consumed the capacity). It must leave scheduler state exactly as if
	// the Propose had never happened.
	Abort(req Request, p Placement)
	// ConcurrentPropose reports whether Propose may be invoked
	// concurrently. Engines must treat false as "serialize everything",
	// falling back to the Decide contract.
	ConcurrentPropose() bool
}

// LambdaReader is implemented by the primal-dual schedulers (Algorithm 1
// on-site, Algorithm 2 off-site, and their variants), exposing the
// current dual price λ_{tj} for observability: the serve layer exports
// λ summary gauges, and the experiment harness plots dual trajectories.
// Lambda must be safe to call concurrently with Decide/Propose/Commit and
// must return 0 for out-of-range indices.
type LambdaReader interface {
	// Lambda returns the dual price λ_{tj} for (slot t, cloudlet j).
	Lambda(cloudlet, slot int) float64
}

// WindowAdvancer is implemented by schedulers whose per-slot state (the
// dual prices λ_{tj}) can follow a rolling ledger window. AdvanceWindow
// moves the scheduler's live window so it starts at base: state for
// retired slots (slots below base) is re-initialized — the slot entering
// at the far edge of the window starts at the same initial price a fresh
// horizon would give it, rather than inheriting the retired slot's
// accumulated value — and state for slots still inside the window is left
// untouched. Calls with base at or behind the current window start are
// no-ops, so the engine may call it unconditionally each tick.
//
// AdvanceWindow must be safe to call concurrently with Propose/Commit
// (the primal-dual schedulers take the λ write lock). Engines advance the
// scheduler only after the ledger's own Advance succeeded, so the two
// window positions never disagree by more than the in-flight tick.
type WindowAdvancer interface {
	// AdvanceWindow moves the live window so it starts at base.
	AdvanceWindow(base int)
}

// SerialAdapter drives a TwoPhaseScheduler through the serialized Decide
// contract: every Decide is Propose immediately followed by Commit under
// one adapter-owned mutex. The adapter reproduces the scheduler's own
// Decide behavior decision-for-decision (same admit/reject sequence, same
// revenue) and additionally makes the pair safe to call from multiple
// goroutines, at the cost of full serialization.
type SerialAdapter struct {
	mu sync.Mutex
	s  TwoPhaseScheduler
}

// NewSerialAdapter wraps a two-phase scheduler in the serialized Decide
// contract. It returns nil for a nil scheduler.
func NewSerialAdapter(s TwoPhaseScheduler) *SerialAdapter {
	if s == nil {
		return nil
	}
	return &SerialAdapter{s: s}
}

// Name implements Scheduler.
func (a *SerialAdapter) Name() string { return a.s.Name() }

// Scheme implements Scheduler.
func (a *SerialAdapter) Scheme() Scheme { return a.s.Scheme() }

// Decide implements Scheduler: Propose then Commit atomically.
func (a *SerialAdapter) Decide(req Request, view CapacityView) (Placement, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.s.Propose(req, view)
	if !ok {
		return Placement{}, false
	}
	a.s.Commit(req, p)
	return p, true
}

// Propose implements TwoPhaseScheduler by forwarding under the adapter's
// mutex. The adapter therefore satisfies TwoPhaseScheduler itself, so an
// engine that insists on the propose/commit protocol (for its explicit
// abort path) can still drive a scheduler through full serialization:
// ConcurrentPropose reports false, which such engines must honor by
// keeping at most one Propose→Commit/Abort sequence in flight.
func (a *SerialAdapter) Propose(req Request, view CapacityView) (Placement, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.s.Propose(req, view)
}

// Commit implements TwoPhaseScheduler, forwarding under the mutex.
func (a *SerialAdapter) Commit(req Request, p Placement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.s.Commit(req, p)
}

// Abort implements TwoPhaseScheduler, forwarding under the mutex. It must
// leave the wrapped scheduler exactly as if the Propose had never
// happened, which holds because the wrapped Abort promises the same.
func (a *SerialAdapter) Abort(req Request, p Placement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.s.Abort(req, p)
}

// ConcurrentPropose implements TwoPhaseScheduler: always false — the
// adapter's entire purpose is serialization.
func (a *SerialAdapter) ConcurrentPropose() bool { return false }

// AdvanceWindow forwards to the wrapped scheduler when it implements
// WindowAdvancer (under the adapter's mutex, like every other call) and is
// a no-op otherwise, so engines can advance through the adapter without
// re-discovering the wrapped type.
func (a *SerialAdapter) AdvanceWindow(base int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if wa, ok := a.s.(WindowAdvancer); ok {
		wa.AdvanceWindow(base)
	}
}

// Unwrap returns the adapted two-phase scheduler.
func (a *SerialAdapter) Unwrap() TwoPhaseScheduler { return a.s }
