package core

import (
	"fmt"
	"math"
	"sort"
)

// relEpsilon absorbs floating-point noise when comparing reliabilities: a
// placement whose computed availability falls short of the requirement by
// less than relEpsilon is still accepted. The instance-count formulas below
// round conservatively, so the tolerance is only ever consumed by the final
// comparison, never by sizing decisions.
const relEpsilon = 1e-12

// OnsiteInstances returns N, the minimum number of primary plus backup
// instances of a VNF with reliability rf that must be placed in a cloudlet
// with reliability rc so that rc·(1-(1-rf)^N) ≥ req (Eq. (2)-(3) of the
// paper). It returns ErrInfeasible when rc ≤ req, in which case no number of
// instances suffices because every instance dies with the cloudlet.
func OnsiteInstances(rf, rc, req float64) (int, error) {
	if !validProbability(rf) || !validProbability(rc) || !validProbability(req) {
		return 0, fmt.Errorf("%w: rf=%v rc=%v req=%v", ErrBadReliability, rf, rc, req)
	}
	if rc <= req {
		return 0, fmt.Errorf("%w: cloudlet reliability %v ≤ requirement %v", ErrInfeasible, rc, req)
	}
	// N = ceil( ln(1 - req/rc) / ln(1 - rf) ). Both logs are negative.
	target := 1 - req/rc
	n := int(math.Ceil(math.Log(target) / math.Log(1-rf)))
	if n < 1 {
		n = 1
	}
	// Guard against floating-point underestimation: bump until the closed
	// form verifies. In practice this loop runs zero iterations.
	for OnsiteReliability(rf, rc, n)+relEpsilon < req {
		n++
	}
	return n, nil
}

// OnsiteReliability returns rc·(1-(1-rf)^n), the availability of a request
// served by n instances of a VNF with reliability rf inside one cloudlet
// with reliability rc.
func OnsiteReliability(rf, rc float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return rc * (1 - math.Pow(1-rf, float64(n)))
}

// OffsiteReliability returns 1 - Π(1 - rf·rc_j) over the supplied cloudlet
// reliabilities: the availability of a request with one instance of a VNF
// with reliability rf in each of the cloudlets (Eq. (10)).
func OffsiteReliability(rf float64, rcs []float64) float64 {
	fail := 1.0
	for _, rc := range rcs {
		fail *= 1 - rf*rc
	}
	return 1 - fail
}

// OffsiteWeight returns w = -ln(1 - rf·rc), the log-domain reliability
// contribution of placing one instance in a cloudlet with reliability rc
// (Section V). Weights are additive: a cloudlet set meets requirement req
// iff the sum of its weights is at least RequirementWeight(req).
func OffsiteWeight(rf, rc float64) float64 {
	return -math.Log(1 - rf*rc)
}

// RequirementWeight returns W = -ln(1 - req), the log-domain threshold that
// the summed OffsiteWeights of the chosen cloudlets must reach.
func RequirementWeight(req float64) float64 {
	return -math.Log(1 - req)
}

// WeightsSatisfy reports whether a total log-domain weight meets the
// requirement weight, with floating-point tolerance.
func WeightsSatisfy(totalWeight, requirementWeight float64) bool {
	return totalWeight+relEpsilon >= requirementWeight
}

// MinOffsiteCloudlets returns the smallest k such that placing one instance
// in each of the k most reliable cloudlets meets req, or an error when even
// using every cloudlet falls short. It is a feasibility oracle used by
// workload generators and tests.
func MinOffsiteCloudlets(rf, req float64, cloudlets []Cloudlet) (int, error) {
	if !validProbability(rf) || !validProbability(req) {
		return 0, fmt.Errorf("%w: rf=%v req=%v", ErrBadReliability, rf, req)
	}
	rcs := make([]float64, len(cloudlets))
	for i, c := range cloudlets {
		rcs[i] = c.Reliability
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(rcs)))
	need := RequirementWeight(req)
	total := 0.0
	for k, rc := range rcs {
		total += OffsiteWeight(rf, rc)
		if WeightsSatisfy(total, need) {
			return k + 1, nil
		}
	}
	return 0, fmt.Errorf("%w: requirement %v unreachable with %d cloudlets", ErrInfeasible, req, len(cloudlets))
}
