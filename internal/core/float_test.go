package core

import (
	"math"
	"testing"
)

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"zero zero", 0, 0, true},
		{"within tolerance small", 1, 1 + 1e-12, true},
		{"within tolerance scaled", 1e6, 1e6 + 1e-4, true},
		{"outside tolerance", 1, 1 + 1e-6, false},
		{"outside tolerance scaled", 1e6, 1e6 + 1, false},
		{"sign difference", 1e-12, -1e-12, true},
		{"clear difference", 2, 3, false},
		{"nan left", math.NaN(), 1, false},
		{"nan both", math.NaN(), math.NaN(), false},
		{"inf equal", math.Inf(1), math.Inf(1), true},
		{"inf opposite", math.Inf(1), math.Inf(-1), false},
		{"inf vs finite", math.Inf(1), 1e300, false},
	}
	for _, c := range cases {
		if got := FloatEq(c.a, c.b); got != c.want {
			t.Errorf("%s: FloatEq(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		if got := FloatEq(c.b, c.a); got != c.want {
			t.Errorf("%s: FloatEq(%v, %v) = %v, want %v (symmetry)", c.name, c.b, c.a, got, c.want)
		}
	}
}

func TestFloatEqTol(t *testing.T) {
	if !FloatEqTol(1.0, 1.0+5e-13, 1e-12) {
		t.Error("FloatEqTol(1, 1+5e-13, 1e-12) = false, want true")
	}
	if FloatEqTol(1.0, 1.0+2e-12, 1e-12) {
		t.Error("FloatEqTol(1, 1+2e-12, 1e-12) = true, want false")
	}
	if !FloatEqTol(math.Inf(1), math.Inf(1), 0) {
		t.Error("equal infinities must compare equal at any tolerance")
	}
	if FloatEqTol(math.NaN(), math.NaN(), 1) {
		t.Error("NaN equals nothing")
	}
}

func TestFloatEqScaledRelative(t *testing.T) {
	// At magnitude 1e9, a 1e-1 absolute difference is within a 1e-9
	// relative tolerance; at magnitude 1 it is far outside.
	if !FloatEqScaled(1e9, 1e9+0.1, 1e-9) {
		t.Error("FloatEqScaled(1e9, 1e9+0.1, 1e-9) = false, want true (relative)")
	}
	if FloatEqScaled(1, 1.1, 1e-9) {
		t.Error("FloatEqScaled(1, 1.1, 1e-9) = true, want false")
	}
}
