package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnsiteInstancesKnownValues(t *testing.T) {
	tests := []struct {
		name        string
		rf, rc, req float64
		want        int
	}{
		// Single 0.9-reliable instance in a 0.99 cloudlet already gives
		// 0.99*0.9 = 0.891 ≥ 0.85.
		{"single instance suffices", 0.9, 0.99, 0.85, 1},
		// 0.99*(1-0.1^1)=0.891 < 0.9, 0.99*(1-0.1^2)=0.9801 ≥ 0.9.
		{"two instances", 0.9, 0.99, 0.9, 2},
		// Demanding requirement close to cloudlet reliability.
		{"tight requirement", 0.9, 0.99, 0.9899, 4},
		{"high vnf reliability", 0.9999, 0.999, 0.99, 1},
		{"low vnf reliability", 0.5, 0.999, 0.99, 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := OnsiteInstances(tt.rf, tt.rc, tt.req)
			if err != nil {
				t.Fatalf("OnsiteInstances(%v,%v,%v) error: %v", tt.rf, tt.rc, tt.req, err)
			}
			if got != tt.want {
				t.Errorf("OnsiteInstances(%v,%v,%v) = %d, want %d", tt.rf, tt.rc, tt.req, got, tt.want)
			}
		})
	}
}

func TestOnsiteInstancesInfeasible(t *testing.T) {
	if _, err := OnsiteInstances(0.9, 0.95, 0.95); !errors.Is(err, ErrInfeasible) {
		t.Errorf("rc == req: err = %v, want ErrInfeasible", err)
	}
	if _, err := OnsiteInstances(0.9, 0.9, 0.99); !errors.Is(err, ErrInfeasible) {
		t.Errorf("rc < req: err = %v, want ErrInfeasible", err)
	}
}

func TestOnsiteInstancesBadInputs(t *testing.T) {
	bad := [][3]float64{
		{0, 0.9, 0.5}, {1, 0.9, 0.5}, {0.9, 0, 0.5}, {0.9, 1.2, 0.5}, {0.9, 0.99, 0}, {0.9, 0.99, 1},
	}
	for _, b := range bad {
		if _, err := OnsiteInstances(b[0], b[1], b[2]); !errors.Is(err, ErrBadReliability) {
			t.Errorf("OnsiteInstances(%v) err = %v, want ErrBadReliability", b, err)
		}
	}
}

// Property: the returned N both satisfies the requirement and is minimal
// (N-1 instances fall short).
func TestOnsiteInstancesMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		rf := 0.3 + 0.699*rng.Float64()
		rc := 0.9 + 0.0999*rng.Float64()
		req := rc * (0.5 + 0.49*rng.Float64()) // strictly below rc
		n, err := OnsiteInstances(rf, rc, req)
		if err != nil {
			return false
		}
		meets := OnsiteReliability(rf, rc, n)+relEpsilon >= req
		minimal := n == 1 || OnsiteReliability(rf, rc, n-1) < req
		return meets && minimal
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOnsiteReliabilityEdges(t *testing.T) {
	if got := OnsiteReliability(0.9, 0.99, 0); got != 0 {
		t.Errorf("zero instances availability = %v, want 0", got)
	}
	if got := OnsiteReliability(0.9, 0.99, -3); got != 0 {
		t.Errorf("negative instances availability = %v, want 0", got)
	}
	// Monotone and bounded by cloudlet reliability.
	prev := 0.0
	for n := 1; n <= 20; n++ {
		got := OnsiteReliability(0.6, 0.95, n)
		if got <= prev {
			t.Fatalf("availability not strictly increasing at n=%d: %v <= %v", n, got, prev)
		}
		if got > 0.95 {
			t.Fatalf("availability %v exceeds cloudlet reliability", got)
		}
		prev = got
	}
}

func TestOffsiteReliability(t *testing.T) {
	if got := OffsiteReliability(0.9, nil); got != 0 {
		t.Errorf("no cloudlets availability = %v, want 0", got)
	}
	got := OffsiteReliability(0.9, []float64{0.99})
	want := 0.9 * 0.99
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("one cloudlet = %v, want %v", got, want)
	}
	got = OffsiteReliability(0.9, []float64{0.99, 0.95})
	want = 1 - (1-0.9*0.99)*(1-0.9*0.95)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("two cloudlets = %v, want %v", got, want)
	}
}

// Property: the log-domain weight test agrees with the direct product form.
func TestWeightEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		rf := 0.5 + 0.4999*rng.Float64()
		k := 1 + rng.Intn(6)
		rcs := make([]float64, k)
		total := 0.0
		for i := range rcs {
			rcs[i] = 0.8 + 0.1999*rng.Float64()
			total += OffsiteWeight(rf, rcs[i])
		}
		req := 0.5 + 0.4999*rng.Float64()
		direct := OffsiteReliability(rf, rcs)+relEpsilon >= req
		logdom := WeightsSatisfy(total, RequirementWeight(req))
		// The two tests may disagree only within floating-point noise of
		// the boundary.
		if direct != logdom {
			return math.Abs(OffsiteReliability(rf, rcs)-req) < 1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMinOffsiteCloudlets(t *testing.T) {
	cloudlets := []Cloudlet{
		{ID: 0, Capacity: 1, Reliability: 0.95},
		{ID: 1, Capacity: 1, Reliability: 0.99},
		{ID: 2, Capacity: 1, Reliability: 0.90},
	}
	// rf=0.9: best single product = 0.9*0.99 = 0.891 ≥ 0.85 → 1 cloudlet.
	k, err := MinOffsiteCloudlets(0.9, 0.85, cloudlets)
	if err != nil || k != 1 {
		t.Errorf("MinOffsiteCloudlets(0.85) = %d, %v; want 1, nil", k, err)
	}
	// Requirement above best single product but below two.
	k, err = MinOffsiteCloudlets(0.9, 0.95, cloudlets)
	if err != nil || k != 2 {
		t.Errorf("MinOffsiteCloudlets(0.95) = %d, %v; want 2, nil", k, err)
	}
	// Unreachable: even all three cloudlets cap out below 0.9999.
	all := OffsiteReliability(0.9, []float64{0.95, 0.99, 0.90})
	if all >= 0.9999 {
		t.Fatalf("test setup: expected unreachable requirement, got %v", all)
	}
	if _, err = MinOffsiteCloudlets(0.9, 0.9999, cloudlets); !errors.Is(err, ErrInfeasible) {
		t.Errorf("unreachable requirement err = %v, want ErrInfeasible", err)
	}
	if _, err = MinOffsiteCloudlets(0, 0.9, cloudlets); !errors.Is(err, ErrBadReliability) {
		t.Errorf("bad rf err = %v, want ErrBadReliability", err)
	}
}

// Property: MinOffsiteCloudlets returns the minimum k: the top-(k-1) set
// never satisfies the requirement.
func TestMinOffsiteCloudletsMinimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		m := 2 + rng.Intn(8)
		cloudlets := make([]Cloudlet, m)
		rcs := make([]float64, m)
		for i := range cloudlets {
			rcs[i] = 0.85 + 0.14*rng.Float64()
			cloudlets[i] = Cloudlet{ID: i, Capacity: 1, Reliability: rcs[i]}
		}
		rf := 0.6 + 0.39*rng.Float64()
		req := 0.8 + 0.19*rng.Float64()
		k, err := MinOffsiteCloudlets(rf, req, cloudlets)
		if err != nil {
			continue // genuinely unreachable; nothing to check
		}
		// Top-k by reliability must satisfy; top-(k-1) must not.
		sorted := append([]float64(nil), rcs...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		if got := OffsiteReliability(rf, sorted[:k]); got+1e-9 < req {
			t.Fatalf("trial %d: top-%d availability %v < req %v", trial, k, got, req)
		}
		if k > 1 {
			if got := OffsiteReliability(rf, sorted[:k-1]); got >= req+1e-9 {
				t.Fatalf("trial %d: top-%d already satisfies (%v ≥ %v), k=%d not minimal", trial, k-1, got, req, k)
			}
		}
	}
}
