package core

import "testing"

func sourceTestNetwork() *Network {
	return &Network{
		Catalog: []VNF{{ID: 0, Name: "fw", Demand: 1, Reliability: 0.9}},
		Cloudlets: []Cloudlet{
			{ID: 0, Node: -1, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: -1, Capacity: 10, Reliability: 0.95},
		},
	}
}

func TestCatalogReliability(t *testing.T) {
	n := sourceTestNetwork()
	src := CatalogReliability{Network: n}
	if got := src.CloudletReliability(0); got != 0.99 {
		t.Errorf("CloudletReliability(0) = %v, want 0.99", got)
	}
	if got := src.CloudletReliability(1); got != 0.95 {
		t.Errorf("CloudletReliability(1) = %v, want 0.95", got)
	}
	for _, j := range []int{-1, 2} {
		if got := src.CloudletReliability(j); got != 0 {
			t.Errorf("CloudletReliability(%d) = %v, want 0 for out of range", j, got)
		}
	}
	if got := (CatalogReliability{}).CloudletReliability(0); got != 0 {
		t.Errorf("nil-network source returned %v, want 0", got)
	}
}

type fixedSource map[int]float64

func (s fixedSource) CloudletReliability(j int) float64 { return s[j] }

func TestWithReliabilities(t *testing.T) {
	n := sourceTestNetwork()
	clone := n.WithReliabilities(fixedSource{0: 0.7, 1: 1.5})
	if clone.Cloudlets[0].Reliability != 0.7 {
		t.Errorf("cloudlet 0 = %v, want learned 0.7", clone.Cloudlets[0].Reliability)
	}
	// Out-of-(0,1) source values keep the catalog rate.
	if clone.Cloudlets[1].Reliability != 0.95 {
		t.Errorf("cloudlet 1 = %v, want catalog 0.95", clone.Cloudlets[1].Reliability)
	}
	// The original is untouched; the copy is deep over both slices.
	if n.Cloudlets[0].Reliability != 0.99 {
		t.Errorf("original mutated: %v", n.Cloudlets[0].Reliability)
	}
	clone.Catalog[0].Reliability = 0.1
	if n.Catalog[0].Reliability != 0.9 {
		t.Error("catalog slice shared between original and clone")
	}
	// The clone remains a valid network a scheduler can be rebuilt from.
	if err := clone.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	// A nil source is the identity.
	same := n.WithReliabilities(nil)
	if same.Cloudlets[0].Reliability != 0.99 || same.Cloudlets[1].Reliability != 0.95 {
		t.Errorf("nil source changed rates: %+v", same.Cloudlets)
	}
}
