package core

import "math"

// FloatEqTolerance is the default tolerance of FloatEq: two values within
// 1e-9, scaled by their magnitude above 1, are considered equal. Revenue
// sums and reliability products accumulate rounding error on the order of
// a few ulps per operation; 1e-9 absorbs any realistic accumulation over
// the admission pipeline (millions of additions of O(1) payments) while
// staying far below the smallest meaningful payment or probability
// difference in the paper's workloads. The floateq analyzer (revnfvet)
// steers every ==/!= on such values here.
const FloatEqTolerance = 1e-9

// FloatEq reports whether a and b are equal within FloatEqTolerance,
// relative to their magnitude: |a-b| ≤ tol·max(1, |a|, |b|). NaN equals
// nothing; infinities are equal only to themselves.
func FloatEq(a, b float64) bool {
	return FloatEqScaled(a, b, FloatEqTolerance)
}

// FloatEqTol reports whether |a-b| ≤ tol — a plain absolute tolerance for
// call sites that know their error scale (for example dual-price checks
// at 1e-12). NaN equals nothing; equal infinities compare equal.
func FloatEqTol(a, b, tol float64) bool {
	if a == b { // fast path; also handles equal infinities
		return true
	}
	return math.Abs(a-b) <= tol
}

// FloatEqScaled is FloatEq with an explicit relative tolerance.
func FloatEqScaled(a, b, tol float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// An infinite scale would make Inf ≤ tol·Inf hold against any
		// finite value; unequal infinities equal nothing.
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
