package offsite

import (
	"fmt"
	"math"

	"revnf/internal/topology"
)

// WithLatencyPenalty makes the scheduler latency-aware: after the cheapest
// feasible cloudlet is chosen as the primary site, subsequent backup
// candidates are re-ranked by dual price plus weight·(latency from the
// primary, normalized by the topology diameter). The paper notes off-site
// redundancy pays recovery latency and inter-cloudlet traffic (Section I)
// without modelling it; this option trades a little dual-price optimality
// for placements whose backups sit near their primary. Every cloudlet must
// be bound to a node of g.
func WithLatencyPenalty(g *topology.Graph, weight float64) Option {
	return func(s *Scheduler) {
		s.latencyGraph = g
		s.latencyWeight = weight
		s.name = s.name + "-latency"
	}
}

// initLatency resolves the cloudlet-to-cloudlet latency matrix once at
// construction.
func (s *Scheduler) initLatency() error {
	g := s.latencyGraph
	if g == nil {
		return nil
	}
	if s.latencyWeight < 0 {
		return fmt.Errorf("%w: negative latency weight %v", ErrBadNetwork, s.latencyWeight)
	}
	diameter, err := g.Diameter()
	if err != nil {
		return fmt.Errorf("%w: latency topology: %v", ErrBadNetwork, err)
	}
	if diameter <= 0 {
		diameter = 1
	}
	m := len(s.network.Cloudlets)
	s.latency = make([][]float64, m)
	for a := 0; a < m; a++ {
		node := s.network.Cloudlets[a].Node
		if node < 0 || node >= g.Nodes() {
			return fmt.Errorf("%w: cloudlet %d not bound to a node of %q", ErrBadNetwork, a, g.Name())
		}
		dist, err := g.ShortestLatencies(node)
		if err != nil {
			return fmt.Errorf("%w: latency topology: %v", ErrBadNetwork, err)
		}
		s.latency[a] = make([]float64, m)
		for b := 0; b < m; b++ {
			target := s.network.Cloudlets[b].Node
			if target < 0 || target >= g.Nodes() {
				return fmt.Errorf("%w: cloudlet %d not bound to a node of %q", ErrBadNetwork, b, g.Name())
			}
			l := dist[target]
			if math.IsInf(l, 1) {
				return fmt.Errorf("%w: cloudlets %d and %d disconnected in %q", ErrBadNetwork, a, b, g.Name())
			}
			s.latency[a][b] = l / diameter
		}
	}
	return nil
}

// penalizedOrder re-ranks the price-sorted candidates for latency-aware
// accumulation: the head (primary) keeps its position; the tail is sorted
// by price + weight·normalizedLatency(primary, candidate).
func (s *Scheduler) penalizedOrder(candidates []candidate) []candidate {
	if s.latency == nil || len(candidates) < 2 {
		return candidates
	}
	primary := candidates[0].cloudlet
	out := append([]candidate(nil), candidates...)
	tail := out[1:]
	key := func(c candidate) float64 {
		return c.price + s.latencyWeight*s.latency[primary][c.cloudlet]
	}
	// Insertion sort: candidate lists are small (≤ cloudlet count).
	for i := 1; i < len(tail); i++ {
		for j := i; j > 0 && (key(tail[j]) < key(tail[j-1]) ||
			(key(tail[j]) == key(tail[j-1]) && tail[j].cloudlet < tail[j-1].cloudlet)); j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	return out
}
