package offsite

import (
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

var _ core.WindowAdvancer = (*Scheduler)(nil)

// newRollingLedger builds a rolling ledger advanced to base.
func newRollingLedger(t *testing.T, n *core.Network, window, base int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.NewRolling(caps, window)
	if err != nil {
		t.Fatalf("timeslot.NewRolling: %v", err)
	}
	if err := l.Advance(base); err != nil {
		t.Fatalf("Advance(%d): %v", base, err)
	}
	return l
}

func offsiteAgingRequest(id, arrival, duration int) core.Request {
	return core.Request{
		ID: id, VNF: 0, Reliability: 0.98, Payment: 60,
		Arrival: arrival, Duration: duration,
	}
}

// TestAdvanceWindowAgesLambda mirrors the onsite λ-aging test for the
// Algorithm 2 duals: retired slots re-initialize, in-window prices are
// bit-identical across the advance, entering slots start fresh.
func TestAdvanceWindowAgesLambda(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 6)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newRollingLedger(t, n, 6, 1)
	p, ok := s.Decide(offsiteAgingRequest(1, 1, 4), view)
	if !ok {
		t.Fatal("request rejected")
	}
	j := p.Assignments[0].Cloudlet
	if s.Lambda(j, 1) <= 0 || s.Lambda(j, 4) <= 0 {
		t.Fatalf("λ not raised over admitted window: λ1=%v λ4=%v", s.Lambda(j, 1), s.Lambda(j, 4))
	}
	l3, l4 := s.Lambda(j, 3), s.Lambda(j, 4)

	s.AdvanceWindow(3)
	if err := view.Advance(3); err != nil {
		t.Fatalf("view.Advance: %v", err)
	}
	if s.WindowBase() != 3 {
		t.Fatalf("WindowBase = %d, want 3", s.WindowBase())
	}
	if s.Lambda(j, 1) != 0 || s.Lambda(j, 2) != 0 {
		t.Fatalf("retired λ = %v,%v, want 0,0", s.Lambda(j, 1), s.Lambda(j, 2))
	}
	if s.Lambda(j, 3) != l3 || s.Lambda(j, 4) != l4 {
		t.Fatalf("in-window λ changed across advance: %v,%v vs %v,%v",
			s.Lambda(j, 3), s.Lambda(j, 4), l3, l4)
	}
	if s.Lambda(j, 7) != 0 || s.Lambda(j, 8) != 0 {
		t.Fatalf("entering λ = %v,%v, want fresh 0,0", s.Lambda(j, 7), s.Lambda(j, 8))
	}
	if _, ok := s.Propose(offsiteAgingRequest(2, 2, 2), view); ok {
		t.Fatal("request behind window base admitted")
	}
	if _, ok := s.Propose(offsiteAgingRequest(3, 7, 2), view); !ok {
		t.Fatal("request in advanced window rejected")
	}
}

// TestRollingFixedDecisionEquivalence: the shifted stream through an
// advanced off-site scheduler must reproduce the fixed-horizon decisions
// and dual prices bit-for-bit.
func TestRollingFixedDecisionEquivalence(t *testing.T) {
	const T = 8
	const shift = 11
	n := testNetwork()
	fixed, err := NewScheduler(n, T)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	rolling, err := NewScheduler(n, T)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	rolling.AdvanceWindow(1 + shift)
	fixedView := newLedger(t, n, T)
	rollingView := newRollingLedger(t, n, T, 1+shift)

	reqs := []core.Request{
		offsiteAgingRequest(1, 1, 3), offsiteAgingRequest(2, 2, 4),
		offsiteAgingRequest(3, 1, 8), offsiteAgingRequest(4, 4, 2),
		offsiteAgingRequest(5, 6, 3), offsiteAgingRequest(6, 3, 5),
	}
	for _, r := range reqs {
		pF, okF := fixed.Decide(r, fixedView)
		rs := r
		rs.Arrival += shift
		pR, okR := rolling.Decide(rs, rollingView)
		if okF != okR {
			t.Fatalf("req %d: fixed admit %v, rolling admit %v", r.ID, okF, okR)
		}
		if !okF {
			continue
		}
		if len(pF.Assignments) != len(pR.Assignments) {
			t.Fatalf("req %d: assignment counts diverged %d vs %d",
				r.ID, len(pF.Assignments), len(pR.Assignments))
		}
		for i := range pF.Assignments {
			if pF.Assignments[i] != pR.Assignments[i] {
				t.Fatalf("req %d: assignment %d diverged %+v vs %+v",
					r.ID, i, pF.Assignments[i], pR.Assignments[i])
			}
			units := pF.Assignments[i].Instances * n.Catalog[r.VNF].Demand
			if err := fixedView.Reserve(pF.Assignments[i].Cloudlet, r.Arrival, r.Duration, units); err != nil {
				t.Fatalf("fixed reserve: %v", err)
			}
			if err := rollingView.Reserve(pR.Assignments[i].Cloudlet, rs.Arrival, rs.Duration, units); err != nil {
				t.Fatalf("rolling reserve: %v", err)
			}
		}
	}
	for j := range n.Cloudlets {
		for slot := 1; slot <= T; slot++ {
			if lf, lr := fixed.Lambda(j, slot), rolling.Lambda(j, slot+shift); lf != lr {
				t.Fatalf("λ(%d,%d) fixed %v, rolling shifted %v — not bit-identical", j, slot, lf, lr)
			}
		}
	}
}
