// Package offsite implements Algorithm 2 of the paper: the online
// primal-dual heuristic for the VNF service reliability problem under the
// off-site scheme, in which at most one instance of a request is placed in
// each cloudlet and reliability accumulates across the chosen set.
//
// The scheme's nonlinear reliability constraint
// 1 - Π(1 - r(f)·r(c_j)) ≥ R is linearized in the log domain (Section V):
// each cloudlet contributes weight w_j = -ln(1 - r(f)·r(c_j)) and the
// request needs total weight W = -ln(1 - R). The scheduler keeps dual
// prices λ_{tj}, computes each cloudlet's normalized price
// Σ_t V_i[t]·λ_{tj} / w_j, discards cloudlets that fail the payment test
// of line 5, and greedily accumulates the cheapest capacity-feasible
// cloudlets until the weight target is met. Admission updates the touched
// prices per Eq. (67). Unlike raw Algorithm 1, Algorithm 2 never violates
// cloudlet capacities (Theorem 2).
package offsite

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"revnf/internal/core"
	"revnf/internal/topology"
	"revnf/internal/trace"
)

// Errors returned by the constructor.
var (
	ErrBadNetwork = errors.New("offsite: invalid network")
	ErrBadHorizon = errors.New("offsite: invalid horizon")
)

// Scheduler is the Algorithm 2 implementation. It implements both the
// serialized Decide contract and core.TwoPhaseScheduler: Propose reads the
// dual prices under the read side of a reader/writer lock and may run
// concurrently; Commit applies the Eq. (67) updates under the write side,
// keeping the λ trajectory sequentially consistent in Commit order.
type Scheduler struct {
	network *core.Network
	horizon int
	// rel caches the per-(VNF, cloudlet) off-site weights.
	rel *core.ReliabilityTable
	// mu guards lambda, base, and lstart: Propose reads, Commit and
	// AdvanceWindow write.
	mu sync.RWMutex
	// lambda[j] is a ring of dual prices: λ_{tj} lives at ring index
	// lstart + (t - base) mod horizon. With base pinned at 1 (every fixed
	// -horizon caller) the index is exactly t-1, the historical layout.
	lambda [][]float64 // guarded by mu
	// base is the first slot of the live window; lstart its ring index.
	// AdvanceWindow moves them forward, re-initializing retired prices.
	base    int // guarded by mu
	lstart  int // guarded by mu
	sortKey SortKey
	name    string
	// Latency awareness (WithLatencyPenalty): normalized cloudlet-pair
	// latencies and the penalty weight.
	latencyGraph  *topology.Graph
	latencyWeight float64
	latency       [][]float64
	// rec receives decision traces from Propose; trace.Nop by default.
	rec trace.Recorder
}

// SortKey selects how Algorithm 2 orders candidate cloudlets before the
// greedy accumulation. The paper's rule is SortByPrice; the others are
// ablation knobs isolating the value of dual-price ordering.
type SortKey int

// Candidate orderings.
const (
	// SortByPrice orders by ascending normalized dual price (line 9 of
	// Algorithm 2; the paper's rule).
	SortByPrice SortKey = iota + 1
	// SortByReliability orders by descending cloudlet reliability,
	// mimicking the greedy baseline's preference inside the primal-dual
	// admission test.
	SortByReliability
	// SortByResidual orders by descending residual capacity over the
	// request's window, a load-balancing heuristic.
	SortByResidual
)

// Option configures the scheduler.
type Option func(*Scheduler)

// WithName overrides the reported algorithm name.
func WithName(name string) Option {
	return func(s *Scheduler) { s.name = name }
}

// WithRecorder injects the decision-trace sink Propose emits into. A nil
// recorder keeps the no-op default. Tracing never changes decisions.
func WithRecorder(r trace.Recorder) Option {
	return func(s *Scheduler) {
		if r != nil {
			s.rec = r
		}
	}
}

// WithSortKey overrides the candidate ordering (default SortByPrice).
func WithSortKey(key SortKey) Option {
	return func(s *Scheduler) {
		s.sortKey = key
		switch key {
		case SortByReliability:
			s.name = s.name + "-relsort"
		case SortByResidual:
			s.name = s.name + "-residualsort"
		}
	}
}

// NewScheduler creates an Algorithm 2 scheduler.
func NewScheduler(network *core.Network, horizon int, opts ...Option) (*Scheduler, error) {
	if network == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadNetwork)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	rel, err := core.NewReliabilityTable(network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	s := &Scheduler{
		network: network,
		horizon: horizon,
		rel:     rel,
		lambda:  make([][]float64, len(network.Cloudlets)),
		sortKey: SortByPrice,
		name:    "pd-offsite",
		rec:     trace.Nop,
		base:    1,
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.initLatency(); err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// Scheme implements core.Scheduler.
func (s *Scheduler) Scheme() core.Scheme { return core.OffSite }

// Lambda returns the current dual price λ_{tj}, or 0 for a slot outside
// the live window [base, base+horizon-1]; exported for tests and
// diagnostics.
func (s *Scheduler) Lambda(cloudlet, slot int) float64 {
	if cloudlet < 0 || cloudlet >= len(s.lambda) {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot < s.base || slot > s.base+s.horizon-1 {
		return 0
	}
	return s.lambda[cloudlet][s.lidx(slot)]
}

// WindowBase returns the first slot of the live dual-price window (always
// 1 until AdvanceWindow is called).
func (s *Scheduler) WindowBase() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// lidx maps an in-window absolute slot onto its λ ring index. Caller holds
// mu (either side) and has range-checked slot.
func (s *Scheduler) lidx(slot int) int {
	i := s.lstart + (slot - s.base)
	if i >= s.horizon {
		i -= s.horizon
	}
	return i
}

// AdvanceWindow implements core.WindowAdvancer: it moves the dual-price
// window forward so it starts at base, re-initializing λ for each retired
// slot to zero so the slot entering at the far edge starts at a fresh
// initial price instead of inheriting the retired slot's accumulated one.
// In-window prices are untouched (the bit-identity argument of DESIGN.md
// §10). Moving backward or not at all is a no-op.
func (s *Scheduler) AdvanceWindow(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base <= s.base {
		return
	}
	retire := base - s.base
	n := retire
	if n > s.horizon {
		n = s.horizon
	}
	for j := range s.lambda {
		i := s.lstart
		for k := 0; k < n; k++ {
			s.lambda[j][i] = 0
			if i++; i == s.horizon {
				i = 0
			}
		}
	}
	s.lstart = (s.lstart + retire%s.horizon) % s.horizon
	s.base = base
}

// candidate is one cloudlet surviving the payment filter.
type candidate struct {
	cloudlet int
	weight   float64 // w_j = -ln(1 - r(f)·r(c_j))
	price    float64 // Σ_t λ_{tj} / w_j
}

// Decide implements core.Scheduler: Propose immediately followed by
// Commit, the serialized form of lines 3–23 of Algorithm 2.
func (s *Scheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	p, ok := s.Propose(req, view)
	if !ok {
		return core.Placement{}, false
	}
	s.Commit(req, p)
	return p, true
}

// Propose implements core.TwoPhaseScheduler: the payment filter, candidate
// ordering, and greedy weight accumulation of Algorithm 2, reading the
// dual prices under the read lock and leaving scheduler state untouched.
func (s *Scheduler) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := s.rec.Sample(req.ID)
	vnf := s.network.Catalog[req.VNF]
	needWeight := core.RequirementWeight(req.Reliability)
	demand := float64(vnf.Demand)
	candidates := make([]candidate, 0, len(s.network.Cloudlets))
	// cands[j] is cloudlet j's trace entry (indexed by cloudlet, so the
	// accumulation loop can mark skips/chosen after sorting reorders the
	// working set).
	var cands []trace.Candidate
	if tracing {
		cands = make([]trace.Candidate, len(s.network.Cloudlets))
	}
	s.mu.RLock()
	// The window check lives inside the same read-side critical section as
	// the candidate scan so one proposal sees one consistent base even
	// while AdvanceWindow races it. With base pinned at 1 (fixed horizon)
	// this is the historical [1, horizon] check.
	if req.Arrival < s.base || req.End() > s.base+s.horizon-1 {
		s.mu.RUnlock()
		if tracing {
			s.recordHorizon(req)
		}
		return core.Placement{}, false
	}
	for j := range s.network.Cloudlets {
		w := s.rel.OffsiteWeight(req.VNF, j)
		sumLambda := 0.0
		i := s.lidx(req.Arrival)
		for t := req.Arrival; t <= req.End(); t++ {
			sumLambda += s.lambda[j][i]
			if i++; i == s.horizon {
				i = 0
			}
		}
		price := sumLambda / w
		if tracing {
			cands[j] = trace.Candidate{Cloudlet: j, Weight: w, DualCost: price}
		}
		// Payment filter (line 5): place no instance at cloudlets whose
		// dual cost already exceeds the request's value:
		// pay + ln(1-R)·c(f)·price ≤ 0  ⇔  pay ≤ W·c(f)·price.
		if req.Payment-needWeight*demand*price <= 0 {
			if tracing {
				cands[j].Skip = trace.SkipPricedOut
			}
			continue
		}
		candidates = append(candidates, candidate{cloudlet: j, weight: w, price: price})
	}
	s.mu.RUnlock()
	// Sort candidates (line 9). The paper's rule is ascending normalized
	// price; the alternatives are ablation orderings. Ties break by
	// cloudlet ID for determinism.
	switch s.sortKey {
	case SortByReliability:
		sort.Slice(candidates, func(a, b int) bool {
			ra := s.network.Cloudlets[candidates[a].cloudlet].Reliability
			rb := s.network.Cloudlets[candidates[b].cloudlet].Reliability
			if ra != rb {
				return ra > rb
			}
			return candidates[a].cloudlet < candidates[b].cloudlet
		})
	case SortByResidual:
		sort.Slice(candidates, func(a, b int) bool {
			fa := view.ResidualWindow(candidates[a].cloudlet, req.Arrival, req.Duration)
			fb := view.ResidualWindow(candidates[b].cloudlet, req.Arrival, req.Duration)
			if fa != fb {
				return fa > fb
			}
			return candidates[a].cloudlet < candidates[b].cloudlet
		})
	default:
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].price != candidates[b].price {
				return candidates[a].price < candidates[b].price
			}
			return candidates[a].cloudlet < candidates[b].cloudlet
		})
	}
	if s.latency != nil {
		// Latency-aware variant: anchor the penalty on the first
		// capacity-feasible candidate (the primary site).
		primary := -1
		for i, c := range candidates {
			if view.ResidualWindow(c.cloudlet, req.Arrival, req.Duration) >= vnf.Demand {
				primary = i
				break
			}
		}
		if primary >= 0 {
			candidates[0], candidates[primary] = candidates[primary], candidates[0]
			candidates = s.penalizedOrder(candidates)
		}
	}
	// Accumulate capacity-feasible cloudlets until the reliability weight
	// target is reached (lines 10–17).
	var chosen []candidate
	totalWeight := 0.0
	for _, c := range candidates {
		resid := view.ResidualWindow(c.cloudlet, req.Arrival, req.Duration)
		if tracing {
			cands[c.cloudlet].Residual = resid
		}
		if resid < vnf.Demand {
			if tracing {
				cands[c.cloudlet].Skip = trace.SkipCapacity
			}
			continue
		}
		chosen = append(chosen, c)
		totalWeight += c.weight
		if tracing {
			cands[c.cloudlet].Instances = 1
			cands[c.cloudlet].Chosen = true
		}
		if core.WeightsSatisfy(totalWeight, needWeight) {
			break
		}
	}
	admit := core.WeightsSatisfy(totalWeight, needWeight)
	if tracing {
		s.recordPropose(req, cands, chosen, needWeight, totalWeight, admit)
	}
	if !admit {
		return core.Placement{}, false
	}
	assignments := make([]core.Assignment, len(chosen))
	for i, c := range chosen {
		assignments[i] = core.Assignment{Cloudlet: c.cloudlet, Instances: 1}
	}
	return core.Placement{Request: req.ID, Scheme: core.OffSite, Assignments: assignments}, true
}

// recordHorizon emits the trace for a request rejected before the
// candidate scan: its window does not fit the scheduler's horizon.
func (s *Scheduler) recordHorizon(req core.Request) {
	dt := trace.NewDecision(req, s.name, core.OffSite.String())
	dt.Attempts = []trace.ProposeTrace{{
		Scheduler: s.name, Scheme: core.OffSite.String(),
		BestCloudlet: -1, Payment: req.Payment, Reason: trace.ReasonHorizon,
	}}
	s.rec.Record(dt)
}

// recordPropose emits the trace for one completed Algorithm 2 evaluation.
// The off-site admission test is weight accumulation, not a single argmin:
// BestCloudlet is the first cloudlet of the greedy set (-1 when empty) and
// BestCost its normalized price; Admit ⇔ TotalWeight ≥ NeedWeight.
func (s *Scheduler) recordPropose(req core.Request, cands []trace.Candidate,
	chosen []candidate, needWeight, totalWeight float64, admit bool) {
	pt := trace.ProposeTrace{
		Scheduler:    s.name,
		Scheme:       core.OffSite.String(),
		Candidates:   cands,
		BestCloudlet: -1,
		NeedWeight:   needWeight,
		TotalWeight:  totalWeight,
		Payment:      req.Payment,
		Admit:        admit,
	}
	if len(chosen) > 0 {
		pt.BestCloudlet = chosen[0].cloudlet
		pt.BestCost = chosen[0].price
	}
	if !admit {
		switch {
		case len(cands) > 0 && !anySurvived(cands):
			// Every cloudlet fell to the line-5 payment filter.
			pt.Reason = trace.ReasonPricedOut
		case len(chosen) == 0:
			pt.Reason = trace.ReasonNoFeasibleCloudlet
		default:
			pt.Reason = trace.ReasonInsufficientWeight
		}
	}
	dt := trace.NewDecision(req, s.name, core.OffSite.String())
	dt.Attempts = []trace.ProposeTrace{pt}
	if admit {
		dt.Assignments = make([]core.Assignment, len(chosen))
		for i, c := range chosen {
			dt.Assignments[i] = core.Assignment{Cloudlet: c.cloudlet, Instances: 1}
		}
	}
	s.rec.Record(dt)
}

// anySurvived reports whether any candidate passed the payment filter.
func anySurvived(cands []trace.Candidate) bool {
	for i := range cands {
		if cands[i].Skip != trace.SkipPricedOut {
			return true
		}
	}
	return false
}

// Commit implements core.TwoPhaseScheduler: it applies the Eq. (67) dual
// updates for every cloudlet in the admitted proposal under the write
// lock. The per-cloudlet weights are recomputed from the reliability
// table, so Commit needs only the placement, not Propose's scratch state.
func (s *Scheduler) Commit(req core.Request, p core.Placement) {
	if len(p.Assignments) == 0 {
		return
	}
	vnf := s.network.Catalog[req.VNF]
	chosen := make([]candidate, len(p.Assignments))
	for i, a := range p.Assignments {
		chosen[i] = candidate{cloudlet: a.Cloudlet, weight: s.rel.OffsiteWeight(req.VNF, a.Cloudlet)}
	}
	s.updateDuals(req, vnf, chosen)
}

// Abort implements core.TwoPhaseScheduler. Propose acquires nothing, so
// aborting a proposal is a no-op.
func (s *Scheduler) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler: proposals only read
// λ under the read lock and may run concurrently.
func (s *Scheduler) ConcurrentPropose() bool { return true }

// updateDuals applies Eq. (67) to every selected cloudlet's slots. With
// W = -ln(1-R) and w_j = -ln(1 - r(f)·r(c_j)) the update is
// λ := λ·(1 + W·c(f)/(w_j·cap_j)) + W·c(f)·pay/(w_j·d·cap_j).
func (s *Scheduler) updateDuals(req core.Request, vnf core.VNF, chosen []candidate) {
	needWeight := core.RequirementWeight(req.Reliability)
	demand := float64(vnf.Demand)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Clamp to the live window: in fixed mode the proposal already proved
	// [Arrival, End] ⊆ [1, horizon] so the clamp never bites; in rolling
	// mode it guards a commit racing an AdvanceWindow past its arrival.
	lo, hi := req.Arrival, req.End()
	if lo < s.base {
		lo = s.base
	}
	if max := s.base + s.horizon - 1; hi > max {
		hi = max
	}
	if lo > hi {
		return
	}
	for _, c := range chosen {
		capj := float64(s.network.Cloudlets[c.cloudlet].Capacity)
		ratio := needWeight * demand / (c.weight * capj)
		growth := 1 + ratio
		additive := ratio * req.Payment / float64(req.Duration)
		i := s.lidx(lo)
		for t := lo; t <= hi; t++ {
			s.lambda[c.cloudlet][i] = s.lambda[c.cloudlet][i]*growth + additive
			if i++; i == s.horizon {
				i = 0
			}
		}
	}
}
