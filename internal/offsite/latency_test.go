package offsite

import (
	"errors"
	"testing"

	"revnf/internal/core"
	"revnf/internal/topology"
)

// latencyNetwork binds the three test cloudlets to a 4-node path topology:
// cloudlets at nodes 0, 1 and 3, so cloudlet pair (0,1) is near and (0,2)
// is far.
func latencyNetwork(t *testing.T) (*core.Network, *topology.Graph) {
	t.Helper()
	g, err := topology.NewGraph("line", 4)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, i+1, 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	n := testNetwork()
	n.Cloudlets[0].Node = 0
	n.Cloudlets[1].Node = 1
	n.Cloudlets[2].Node = 3
	return n, g
}

func TestWithLatencyPenaltyPrefersNearBackups(t *testing.T) {
	n, g := latencyNetwork(t)
	// Make the far cloudlet (2) the most reliable so the plain scheduler
	// would otherwise happily use it.
	n.Cloudlets[0].Reliability = 0.99
	n.Cloudlets[1].Reliability = 0.97
	n.Cloudlets[2].Reliability = 0.98
	s, err := NewScheduler(n, 5, WithLatencyPenalty(g, 1000))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if s.Name() != "pd-offsite-latency" {
		t.Errorf("Name = %q", s.Name())
	}
	view := newLedger(t, n, 5)
	// Require two cloudlets (single best gives 0.95·0.99 ≈ 0.94).
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.985, Arrival: 1, Duration: 2, Payment: 50}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	// With a huge penalty the backup must be the near cloudlet 1, not the
	// more reliable far cloudlet 2 (as long as reliability still works).
	if len(p.Assignments) < 2 {
		t.Fatalf("assignments = %v", p.Assignments)
	}
	if p.Assignments[0].Cloudlet != 0 {
		t.Errorf("primary = %d, want 0 (all prices zero, lowest ID)", p.Assignments[0].Cloudlet)
	}
	if p.Assignments[1].Cloudlet != 1 {
		t.Errorf("backup = %d, want near cloudlet 1", p.Assignments[1].Cloudlet)
	}
}

func TestWithLatencyPenaltyZeroWeightKeepsPriceOrder(t *testing.T) {
	n, g := latencyNetwork(t)
	s, err := NewScheduler(n, 5, WithLatencyPenalty(g, 0))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	plain, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	viewA := newLedger(t, n, 5)
	viewB := newLedger(t, n, 5)
	for i := 0; i < 50; i++ {
		req := core.Request{ID: i, VNF: 0, Reliability: 0.97, Arrival: 1, Duration: 3, Payment: 20}
		pa, oka := s.Decide(req, viewA)
		pb, okb := plain.Decide(req, viewB)
		if oka != okb {
			t.Fatalf("request %d: decisions diverge with zero weight", i)
		}
		if !oka {
			continue
		}
		if len(pa.Assignments) != len(pb.Assignments) {
			t.Fatalf("request %d: assignment counts diverge", i)
		}
		for k := range pa.Assignments {
			if pa.Assignments[k] != pb.Assignments[k] {
				t.Fatalf("request %d: assignment %d diverges", i, k)
			}
		}
		demand := n.Catalog[req.VNF].Demand
		for _, a := range pa.Assignments {
			if err := viewA.Reserve(a.Cloudlet, req.Arrival, req.Duration, demand); err != nil {
				t.Fatalf("reserve A: %v", err)
			}
			if err := viewB.Reserve(a.Cloudlet, req.Arrival, req.Duration, demand); err != nil {
				t.Fatalf("reserve B: %v", err)
			}
		}
	}
}

func TestWithLatencyPenaltyErrors(t *testing.T) {
	n, g := latencyNetwork(t)
	if _, err := NewScheduler(n, 5, WithLatencyPenalty(g, -1)); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("negative weight err = %v", err)
	}
	unbound := testNetwork() // Node fields not on g's node range? testNetwork nodes 0..2 valid on 4-node graph
	unbound.Cloudlets[2].Node = 99
	if _, err := NewScheduler(unbound, 5, WithLatencyPenalty(g, 1)); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("unbound cloudlet err = %v", err)
	}
	disconnected, err := topology.NewGraph("disc", 4)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	_ = disconnected.AddEdge(0, 1, 1)
	if _, err := NewScheduler(n, 5, WithLatencyPenalty(disconnected, 1)); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("disconnected topology err = %v", err)
	}
}
