package offsite

import (
	"errors"
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

func testNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 10, Reliability: 0.97},
			{ID: 2, Node: 2, Capacity: 10, Reliability: 0.95},
		},
	}
}

func newLedger(t *testing.T, n *core.Network, horizon int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.New(caps, horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	return l
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler(nil, 5); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("nil network err = %v", err)
	}
	bad := testNetwork()
	bad.Cloudlets[0].Reliability = 2
	if _, err := NewScheduler(bad, 5); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("invalid network err = %v", err)
	}
	if _, err := NewScheduler(testNetwork(), 0); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("bad horizon err = %v", err)
	}
}

func TestSchedulerIdentity(t *testing.T) {
	s, err := NewScheduler(testNetwork(), 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if s.Name() != "pd-offsite" || s.Scheme() != core.OffSite {
		t.Errorf("identity = %q/%v", s.Name(), s.Scheme())
	}
	named, err := NewScheduler(testNetwork(), 5, WithName("x"))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if named.Name() != "x" {
		t.Errorf("custom name = %q", named.Name())
	}
}

func TestDecideAdmitsAndMeetsReliability(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 10)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 10)
	// rf=0.95; single best cloudlet gives 0.95*0.99=0.9405; require more
	// so at least two cloudlets are needed.
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 4, Payment: 8}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("request rejected despite zero duals")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	if len(p.Assignments) < 2 {
		t.Errorf("placement uses %d cloudlets, want ≥ 2 for R=0.99", len(p.Assignments))
	}
	for _, a := range p.Assignments {
		if a.Instances != 1 {
			t.Errorf("off-site assignment has %d instances", a.Instances)
		}
	}
	// Duals must rise on every selected cloudlet's window.
	for _, a := range p.Assignments {
		for slot := 1; slot <= 4; slot++ {
			if s.Lambda(a.Cloudlet, slot) <= 0 {
				t.Errorf("Lambda(%d,%d) not increased", a.Cloudlet, slot)
			}
		}
		if s.Lambda(a.Cloudlet, 5) != 0 {
			t.Errorf("Lambda(%d,5) touched outside window", a.Cloudlet)
		}
	}
}

func TestDecideMinimalPrefix(t *testing.T) {
	// With zero duals all prices tie at 0; the scheduler takes cloudlets
	// in ID order and must stop as soon as the weight target is met.
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	// Low requirement: one cloudlet suffices (0.95·0.99 = 0.9405 ≥ 0.9).
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if len(p.Assignments) != 1 {
		t.Errorf("assignments = %d, want 1", len(p.Assignments))
	}
	if p.Assignments[0].Cloudlet != 0 {
		t.Errorf("chose cloudlet %d, want 0 (ID tie-break)", p.Assignments[0].Cloudlet)
	}
}

func TestDecideDualUpdateFormula(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 3)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 3)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 4}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	j := p.Assignments[0].Cloudlet
	w := core.OffsiteWeight(n.Catalog[0].Reliability, n.Cloudlets[j].Reliability)
	needW := core.RequirementWeight(req.Reliability)
	ratio := needW * float64(n.Catalog[0].Demand) / (w * float64(n.Cloudlets[j].Capacity))
	want := ratio * req.Payment / 2 // λ was zero → additive term only
	for slot := 1; slot <= 2; slot++ {
		if got := s.Lambda(j, slot); !core.FloatEqTol(got, want, 1e-12) {
			t.Errorf("Lambda(%d,%d) = %v, want %v", j, slot, got, want)
		}
	}
}

func TestDecidePaymentFilterRejects(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	admitted := 0
	for i := 0; i < 300; i++ {
		req := core.Request{ID: i, VNF: 0, Reliability: 0.95, Arrival: 1, Duration: 5, Payment: 10}
		if _, ok := s.Decide(req, view); ok {
			admitted++
		}
	}
	if admitted == 0 || admitted == 300 {
		t.Fatalf("admitted = %d; duals never priced anything out", admitted)
	}
	req := core.Request{ID: 999, VNF: 0, Reliability: 0.95, Arrival: 1, Duration: 5, Payment: 1e-6}
	if _, ok := s.Decide(req, view); ok {
		t.Error("cheap request admitted despite saturated duals")
	}
}

func TestDecideUnattainableRequirement(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	// Even all three cloudlets: 1-(1-.95*.99)(1-.95*.97)(1-.95*.95) ≈ 0.9997.
	all := core.OffsiteReliability(0.95, []float64{0.99, 0.97, 0.95})
	req := core.Request{ID: 0, VNF: 0, Reliability: all + (1-all)/2, Arrival: 1, Duration: 1, Payment: 100}
	if _, ok := s.Decide(req, view); ok {
		t.Error("unattainable requirement admitted")
	}
}

func TestDecideSkipsFullCloudlets(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 2)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 2)
	// Fill cloudlet 0 entirely; the scheduler must work around it.
	if err := view.Reserve(0, 1, 2, 10); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("rejected despite free cloudlets")
	}
	for _, a := range p.Assignments {
		if a.Cloudlet == 0 {
			t.Error("placed instance in a full cloudlet")
		}
	}
}

func TestDecideRejectsWhenAllFull(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 2)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 2)
	for j := 0; j < 3; j++ {
		if err := view.Reserve(j, 1, 2, 10); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	if _, ok := s.Decide(req, view); ok {
		t.Error("admitted into a full network")
	}
}

func TestDecideOutOfHorizon(t *testing.T) {
	s, err := NewScheduler(testNetwork(), 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, testNetwork(), 5)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 5, Duration: 2, Payment: 5}
	if _, ok := s.Decide(req, view); ok {
		t.Error("request past horizon admitted")
	}
}

func TestLambdaAccessorBounds(t *testing.T) {
	s, err := NewScheduler(testNetwork(), 3)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if s.Lambda(-1, 1) != 0 || s.Lambda(0, 0) != 0 || s.Lambda(0, 9) != 0 || s.Lambda(5, 1) != 0 {
		t.Error("out-of-range Lambda not zero")
	}
}

func TestWithSortKeyNames(t *testing.T) {
	rel, err := NewScheduler(testNetwork(), 5, WithSortKey(SortByReliability))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if rel.Name() != "pd-offsite-relsort" {
		t.Errorf("Name = %q", rel.Name())
	}
	res, err := NewScheduler(testNetwork(), 5, WithSortKey(SortByResidual))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if res.Name() != "pd-offsite-residualsort" {
		t.Errorf("Name = %q", res.Name())
	}
	price, err := NewScheduler(testNetwork(), 5, WithSortKey(SortByPrice))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if price.Name() != "pd-offsite" {
		t.Errorf("Name = %q", price.Name())
	}
}

func TestDecideSortKeyBehaviors(t *testing.T) {
	n := testNetwork()
	view := newLedger(t, n, 5)
	// Reliability-first ordering must start from the most reliable
	// cloudlet (0 at 0.99) when duals are zero.
	rel, err := NewScheduler(n, 5, WithSortKey(SortByReliability))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	p, ok := rel.Decide(req, view)
	if !ok || p.Assignments[0].Cloudlet != 0 {
		t.Errorf("relsort first choice = %+v, want cloudlet 0", p.Assignments)
	}
	// Residual-first ordering must start from the cloudlet with the most
	// free capacity (fill cloudlet 0 to tilt it).
	if err := view.Reserve(0, 1, 5, 8); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	res, err := NewScheduler(n, 5, WithSortKey(SortByResidual))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	req2 := core.Request{ID: 1, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	p2, ok := res.Decide(req2, view)
	if !ok {
		t.Fatal("residualsort rejected")
	}
	if got := p2.Assignments[0].Cloudlet; got == 0 {
		t.Errorf("residualsort chose the fullest cloudlet %d", got)
	}
}
