package simulate

import (
	"fmt"
	"math/rand"

	"revnf/internal/core"
)

// TimelineConfig parameterizes the time-dynamic failure model. Components
// alternate between up and down states in a two-state Markov chain whose
// stationary up-probability equals the component's reliability and whose
// mean repair time is the configured MTTR (in slots):
//
//	P(down→up) = 1/MTTR,  P(up→down) = (1-r)/(r·MTTR).
//
// MTTR = 1 recovers (nearly) independent per-slot failures; larger MTTRs
// produce the bursty, correlated outages real cloudlets exhibit, which the
// static probability model of the paper cannot distinguish between
// schemes.
type TimelineConfig struct {
	// CloudletMTTR is the mean cloudlet repair time in slots (≥ 1).
	CloudletMTTR float64
	// InstanceMTTR is the mean VNF instance repair time in slots (≥ 1).
	InstanceMTTR float64
}

// Validate checks the configuration.
func (c TimelineConfig) Validate() error {
	if c.CloudletMTTR < 1 || c.InstanceMTTR < 1 {
		return fmt.Errorf("%w: MTTRs %v/%v below 1 slot", ErrBadInstance, c.CloudletMTTR, c.InstanceMTTR)
	}
	return nil
}

// RequestUptime is one admitted request's delivered service over its
// execution window.
type RequestUptime struct {
	// Request is the request ID.
	Request int
	// Slots is the execution window length; UpSlots how many of them had
	// at least one live instance.
	Slots, UpSlots int
	// Delivered is UpSlots/Slots.
	Delivered float64
	// Required is the request's reliability requirement.
	Required float64
}

// TimelineReport aggregates a time-dynamic failure simulation.
type TimelineReport struct {
	// PerRequest holds one entry per admitted placement.
	PerRequest []RequestUptime
	// MeanDelivered is the average Delivered across requests.
	MeanDelivered float64
	// FullServiceFraction is the fraction of requests with zero downtime
	// over their window.
	FullServiceFraction float64
	// CloudletDownSlots counts how many of the horizon's slots each
	// cloudlet spent down.
	CloudletDownSlots []int
}

// SimulateTimeline plays the horizon forward slot by slot: cloudlets and
// instances flip between up and down per the Markov model, and every
// admitted placement's delivered uptime is measured over its window. It
// is the dynamic companion to EstimateAvailability — the static check
// validates the probability math, this one shows how outage burstiness
// (MTTR) affects the schemes' delivered service.
func SimulateTimeline(network *core.Network, horizon int, trace []core.Request, placements []core.Placement, cfg TimelineConfig, rng *rand.Rand) (*TimelineReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil RNG", ErrBadInstance)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadInstance, horizon)
	}
	// Cloudlet up/down timelines.
	cloudletUp := make([][]bool, len(network.Cloudlets))
	downSlots := make([]int, len(network.Cloudlets))
	for j, cl := range network.Cloudlets {
		cloudletUp[j] = markovTimeline(horizon, cl.Reliability, cfg.CloudletMTTR, rng)
		for _, up := range cloudletUp[j] {
			if !up {
				downSlots[j]++
			}
		}
	}
	report := &TimelineReport{
		PerRequest:        make([]RequestUptime, 0, len(placements)),
		CloudletDownSlots: downSlots,
	}
	fullService := 0
	totalDelivered := 0.0
	for _, p := range placements {
		req, err := RequestFor(trace, p)
		if err != nil {
			return nil, err
		}
		rf := network.Catalog[req.VNF].Reliability
		// Per-instance software timelines over the request's window.
		type instTimeline struct {
			cloudlet int
			up       []bool
		}
		var instances []instTimeline
		for _, a := range p.Assignments {
			for k := 0; k < a.Instances; k++ {
				instances = append(instances, instTimeline{
					cloudlet: a.Cloudlet,
					up:       markovTimeline(req.Duration, rf, cfg.InstanceMTTR, rng),
				})
			}
		}
		upSlots := 0
		for t := req.Arrival; t <= req.End(); t++ {
			alive := false
			for _, inst := range instances {
				if cloudletUp[inst.cloudlet][t-1] && inst.up[t-req.Arrival] {
					alive = true
					break
				}
			}
			if alive {
				upSlots++
			}
		}
		delivered := float64(upSlots) / float64(req.Duration)
		report.PerRequest = append(report.PerRequest, RequestUptime{
			Request:   p.Request,
			Slots:     req.Duration,
			UpSlots:   upSlots,
			Delivered: delivered,
			Required:  req.Reliability,
		})
		totalDelivered += delivered
		if upSlots == req.Duration {
			fullService++
		}
	}
	if n := len(report.PerRequest); n > 0 {
		report.MeanDelivered = totalDelivered / float64(n)
		report.FullServiceFraction = float64(fullService) / float64(n)
	}
	return report, nil
}

// markovTimeline samples a two-state availability chain of the given
// length whose stationary up-probability is r and mean down-spell is mttr
// slots. The initial state is drawn from the stationary distribution.
// When r < 1/(1+mttr) the failure rate saturates and the realized
// stationary availability rises to 1/(mttr+1); see Markov for the
// derivation. Draw order (one initial draw, one transition draw per
// slot) is pinned by the seeded tests.
func markovTimeline(length int, r, mttr float64, rng *rand.Rand) []bool {
	m := NewMarkov(r, mttr, rng)
	out := make([]bool, length)
	for t := range out {
		out[t] = m.Step()
	}
	return out
}
