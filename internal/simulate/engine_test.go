package simulate

import (
	"errors"
	"testing"

	"revnf/internal/baseline"
	"revnf/internal/core"
	"revnf/internal/onsite"
	"revnf/internal/workload"
)

func testInstance(t *testing.T, requests int) *workload.Instance {
	t.Helper()
	network := &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 8, Reliability: 0.999},
		},
	}
	trace := make([]core.Request, requests)
	for i := range trace {
		trace[i] = core.Request{
			ID:          i,
			VNF:         i % 2,
			Reliability: 0.9,
			Arrival:     1 + i%5,
			Duration:    1 + i%3,
			Payment:     float64(1 + i%7),
		}
	}
	inst := &workload.Instance{Network: network, Horizon: 10, Trace: trace}
	if err := inst.Validate(); err != nil {
		t.Fatalf("test instance invalid: %v", err)
	}
	return inst
}

func TestRunGreedy(t *testing.T) {
	inst := testInstance(t, 20)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Algorithm != "greedy-onsite" || res.Scheme != core.OnSite {
		t.Errorf("identity = %q/%v", res.Algorithm, res.Scheme)
	}
	if res.Admitted+res.Rejected != 20 {
		t.Errorf("decisions = %d+%d, want 20", res.Admitted, res.Rejected)
	}
	if len(res.Decisions) != 20 {
		t.Errorf("audit trail has %d entries", len(res.Decisions))
	}
	// Revenue equals the sum of admitted payments.
	want := 0.0
	for _, d := range res.Decisions {
		if d.Admitted {
			want += inst.Trace[d.Request].Payment
		}
	}
	if !core.FloatEq(res.Revenue, want) {
		t.Errorf("Revenue = %v, want %v", res.Revenue, want)
	}
	if res.Admitted > 0 && res.Utilization <= 0 {
		t.Errorf("Utilization = %v with %d admissions", res.Utilization, res.Admitted)
	}
	if len(res.Violations) != 0 {
		t.Errorf("greedy produced violations: %v", res.Violations)
	}
	if got := len(res.AdmittedPlacements()); got != res.Admitted {
		t.Errorf("AdmittedPlacements = %d, want %d", got, res.Admitted)
	}
	rate := res.AdmissionRate()
	if rate < 0 || rate > 1 {
		t.Errorf("AdmissionRate = %v", rate)
	}
}

func TestRunRawOnsiteAllowsViolations(t *testing.T) {
	inst := testInstance(t, 200)
	s, err := onsite.NewScheduler(inst.Network, inst.Horizon)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	res, err := Run(inst, s, AllowViolations())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Admitted == 0 {
		t.Fatal("raw scheduler admitted nothing")
	}
	// With 200 requests on tiny cloudlets, violations are expected; the
	// engine must record rather than reject them.
	if res.MaxViolationRatio > 1 && len(res.Violations) == 0 {
		t.Error("violation ratio above 1 but no cells recorded")
	}
}

func TestRunRejectsOverbookingScheduler(t *testing.T) {
	inst := testInstance(t, 200)
	s, err := onsite.NewScheduler(inst.Network, inst.Horizon)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	// Raw scheduler without the violation licence must trip the engine's
	// overbooking guard once capacity runs out (if it ever violates).
	_, err = Run(inst, s)
	if err != nil && !errors.Is(err, ErrSchedulerOverbooked) {
		t.Fatalf("Run err = %v, want ErrSchedulerOverbooked or nil", err)
	}
	if err == nil {
		t.Skip("raw scheduler happened to stay within capacity on this trace")
	}
}

func TestRunValidatesPlacements(t *testing.T) {
	inst := testInstance(t, 5)
	bad := &badScheduler{}
	if _, err := Run(inst, bad); !errors.Is(err, core.ErrBelowRequirement) {
		t.Fatalf("Run err = %v, want ErrBelowRequirement", err)
	}
}

// badScheduler claims placements that do not meet the reliability
// requirement.
type badScheduler struct{}

func (b *badScheduler) Name() string        { return "bad" }
func (b *badScheduler) Scheme() core.Scheme { return core.OnSite }
func (b *badScheduler) Decide(req core.Request, _ core.CapacityView) (core.Placement, bool) {
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}},
	}, true
}

func TestRunInputErrors(t *testing.T) {
	inst := testInstance(t, 3)
	if _, err := Run(inst, nil); !errors.Is(err, ErrBadScheduler) {
		t.Errorf("nil scheduler err = %v", err)
	}
	g, _ := baseline.NewGreedyOnsite(inst.Network)
	if _, err := Run(nil, g); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil instance err = %v", err)
	}
	broken := testInstance(t, 3)
	broken.Horizon = 0
	if _, err := Run(broken, g); !errors.Is(err, ErrBadInstance) {
		t.Errorf("invalid instance err = %v", err)
	}
}

func TestAdmissionRateEmpty(t *testing.T) {
	r := &Result{}
	if r.AdmissionRate() != 0 {
		t.Errorf("empty AdmissionRate = %v, want 0", r.AdmissionRate())
	}
}
