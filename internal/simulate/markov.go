package simulate

import "math/rand"

// Markov is one component's two-state (up/down) availability chain,
// stepped one slot at a time. It is the incremental form of the timeline
// model used by SimulateTimeline, exported so the chaos injector can
// drive a live engine with exactly the same failure dynamics the batch
// simulator replays.
//
// The transition probabilities are chosen so the chain's stationary
// up-probability is r and its mean down spell is mttr slots:
//
//	repair = P(down→up) = 1/MTTR
//	fail   = P(up→down) = repair·(1-r)/r
//
// Stationary availability is repair/(fail+repair), which equals r when
// fail is within [0,1]. Saturation: fail exceeds 1 exactly when
// r < 1/(1+MTTR) — a component that unreliable with a repair that fast
// cannot hold the stationary target, because even failing on every up
// slot it spends 1/(1+MTTR) > r of its time up. The chain then clamps
// fail to 1 and its stationary availability becomes
//
//	repair/(1+repair) = 1/(MTTR+1) > r
//
// erring on the safe (more available) side. StationaryRate reports the
// rate actually realized, clamped or not.
type Markov struct {
	fail, repair float64
	up           bool
	rng          *rand.Rand
}

// NewMarkov builds a chain with stationary up-probability r (in (0,1))
// and mean repair time mttr slots (≥ 1), drawing the initial state from
// the stationary distribution. The chain consumes one rng draw here and
// one per Step, so a seeded rng makes the whole timeline deterministic.
func NewMarkov(r, mttr float64, rng *rand.Rand) *Markov {
	m := newMarkovParams(r, mttr, rng)
	m.up = rng.Float64() < r
	return m
}

// NewMarkovIn builds the same chain but pins the initial state instead
// of drawing it — a freshly (re)placed instance starts up, whatever the
// stationary distribution says. No rng draw is consumed here.
func NewMarkovIn(r, mttr float64, up bool, rng *rand.Rand) *Markov {
	m := newMarkovParams(r, mttr, rng)
	m.up = up
	return m
}

func newMarkovParams(r, mttr float64, rng *rand.Rand) *Markov {
	repair := 1 / mttr
	fail := repair * (1 - r) / r
	if fail > 1 {
		// Saturation branch: r < 1/(1+MTTR), see the type comment for the
		// formula. The realized stationary availability rises to
		// 1/(MTTR+1), above the requested r.
		fail = 1
	}
	return &Markov{fail: fail, repair: repair, rng: rng}
}

// Up reports the chain's current state without advancing it.
func (m *Markov) Up() bool { return m.up }

// Step returns the state for the current slot, then draws the transition
// into the next slot (one rng draw per call).
func (m *Markov) Step() bool {
	cur := m.up
	if m.up {
		if m.rng.Float64() < m.fail {
			m.up = false
		}
	} else {
		if m.rng.Float64() < m.repair {
			m.up = true
		}
	}
	return cur
}

// StationaryRate returns the chain's long-run up fraction: r when the
// failure rate is unsaturated, 1/(MTTR+1) when clamped.
func (m *Markov) StationaryRate() float64 {
	return m.repair / (m.fail + m.repair)
}
