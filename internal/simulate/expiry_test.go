package simulate

import (
	"errors"
	"testing"

	"revnf/internal/core"
)

func TestRequestFor(t *testing.T) {
	trace := []core.Request{{ID: 0, Arrival: 1, Duration: 2}, {ID: 1, Arrival: 3, Duration: 1}}
	req, err := RequestFor(trace, core.Placement{Request: 1})
	if err != nil || req.ID != 1 {
		t.Fatalf("RequestFor = %+v, %v", req, err)
	}
	for _, bad := range []int{-1, 2} {
		if _, err := RequestFor(trace, core.Placement{Request: bad}); !errors.Is(err, ErrBadInstance) {
			t.Errorf("RequestFor(%d): err = %v, want ErrBadInstance", bad, err)
		}
	}
}

func TestWindowIndexExpireBefore(t *testing.T) {
	x := NewWindowIndex()
	// Three windows: [1,2], [1,4], [3,4]. End slots 2, 4, 4.
	x.Add(10, 1, 2)
	x.Add(11, 1, 4)
	x.Add(12, 3, 4)
	if x.Len() != 3 {
		t.Fatalf("Len = %d, want 3", x.Len())
	}
	if got := x.ExpireBefore(2); len(got) != 0 {
		t.Errorf("ExpireBefore(2) = %v, want none (window [1,2] still covers slot 2)", got)
	}
	// A window ending at slot 2 expires exactly at slot 3 = a+d.
	got := x.ExpireBefore(3)
	if len(got) != 1 || got[0] != 10 {
		t.Errorf("ExpireBefore(3) = %v, want [10]", got)
	}
	got = x.ExpireBefore(5)
	if len(got) != 2 || got[0] != 11 || got[1] != 12 {
		t.Errorf("ExpireBefore(5) = %v, want [11 12]", got)
	}
	if x.Len() != 0 {
		t.Errorf("Len after draining = %d, want 0", x.Len())
	}
	if got := x.ExpireBefore(100); len(got) != 0 {
		t.Errorf("ExpireBefore on empty index = %v, want none", got)
	}
}

func TestWindowIndexRemoveAndReAdd(t *testing.T) {
	x := NewWindowIndex()
	x.Add(1, 1, 5)
	x.Add(2, 2, 5)
	x.Remove(1)
	x.Remove(99) // unknown: ignored
	if x.Len() != 1 {
		t.Fatalf("Len = %d, want 1", x.Len())
	}
	if got := x.ExpireBefore(6); len(got) != 1 || got[0] != 2 {
		t.Errorf("ExpireBefore(6) = %v, want [2]", got)
	}
	// Re-adding a live id moves its window instead of duplicating it.
	x.Add(3, 2, 4)
	x.Add(3, 6, 7)
	if end, ok := x.End(3); !ok || end != 7 {
		t.Errorf("End(3) = %d, %v, want 7, true", end, ok)
	}
	if got := x.ExpireBefore(5); len(got) != 0 {
		t.Errorf("stale window survived re-add: %v", got)
	}
	if got := x.ExpireBefore(8); len(got) != 1 || got[0] != 3 {
		t.Errorf("ExpireBefore(8) = %v, want [3]", got)
	}
}

func TestWindowIndexOldestStart(t *testing.T) {
	x := NewWindowIndex()
	if _, ok := x.OldestStart(); ok {
		t.Fatal("OldestStart on empty index reported a value")
	}
	x.Add(1, 4, 9)
	x.Add(2, 2, 6)
	x.Add(3, 7, 8)
	if s, ok := x.OldestStart(); !ok || s != 2 {
		t.Fatalf("OldestStart = %d, %v, want 2, true", s, ok)
	}
	if s, ok := x.Start(1); !ok || s != 4 {
		t.Fatalf("Start(1) = %d, %v, want 4, true", s, ok)
	}
	// Draining the oldest window moves the pin forward.
	if got := x.ExpireBefore(7); len(got) != 1 || got[0] != 2 {
		t.Fatalf("ExpireBefore(7) = %v, want [2]", got)
	}
	if s, ok := x.OldestStart(); !ok || s != 4 {
		t.Fatalf("OldestStart after drain = %d, %v, want 4, true", s, ok)
	}
	// A repair re-basing a live id (re-Add) updates its pin.
	x.Add(1, 6, 9)
	if s, ok := x.OldestStart(); !ok || s != 6 {
		t.Fatalf("OldestStart after re-add = %d, %v, want 6, true", s, ok)
	}
	x.Remove(1)
	x.Remove(3)
	if _, ok := x.OldestStart(); ok {
		t.Fatal("OldestStart after removing all reported a value")
	}
}
