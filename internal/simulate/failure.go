package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"revnf/internal/core"
)

// RequestAvailability is the Monte-Carlo availability estimate for one
// admitted request.
type RequestAvailability struct {
	// Request is the request ID.
	Request int
	// Required is the reliability requirement R.
	Required float64
	// Analytical is the closed-form availability of the placement.
	Analytical float64
	// Empirical is the fraction of failure-injection trials in which at
	// least one instance survived.
	Empirical float64
	// Met reports whether the empirical estimate is consistent with the
	// requirement, allowing three standard errors of sampling slack.
	Met bool
}

// AvailabilityReport aggregates failure-injection results over all
// admitted requests.
type AvailabilityReport struct {
	// Trials is the number of Monte-Carlo samples per request.
	Trials int
	// PerRequest holds one entry per admitted placement.
	PerRequest []RequestAvailability
	// MetFraction is the fraction of placements whose empirical
	// availability met the requirement.
	MetFraction float64
}

// EstimateAvailability injects random failures: in each trial every
// cloudlet is up with probability r(c) and every VNF instance independently
// up with probability r(f); a request survives the trial when at least one
// of its instances sits in an up cloudlet and is itself up. This is the
// empirical check that the paper's reliability constraints (2) and (10)
// actually deliver the promised availability.
func EstimateAvailability(network *core.Network, trace []core.Request, placements []core.Placement, trials int, rng *rand.Rand) (*AvailabilityReport, error) {
	if trials < 1 {
		return nil, fmt.Errorf("%w: %d trials", ErrBadInstance, trials)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil RNG", ErrBadInstance)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	report := &AvailabilityReport{
		Trials:     trials,
		PerRequest: make([]RequestAvailability, 0, len(placements)),
	}
	met := 0
	for _, p := range placements {
		req, err := RequestFor(trace, p)
		if err != nil {
			return nil, err
		}
		if err := p.Validate(network, req); err != nil {
			return nil, fmt.Errorf("simulate: placement for request %d: %w", p.Request, err)
		}
		rf := network.Catalog[req.VNF].Reliability
		survived := 0
		for trial := 0; trial < trials; trial++ {
			if sampleSurvival(network, p, rf, rng) {
				survived++
			}
		}
		empirical := float64(survived) / float64(trials)
		// Three standard errors of slack on the binomial estimate.
		slack := 3 * math.Sqrt(req.Reliability*(1-req.Reliability)/float64(trials))
		ra := RequestAvailability{
			Request:    p.Request,
			Required:   req.Reliability,
			Analytical: p.Availability(network, req),
			Empirical:  empirical,
			Met:        empirical+slack >= req.Reliability,
		}
		if ra.Met {
			met++
		}
		report.PerRequest = append(report.PerRequest, ra)
	}
	if len(report.PerRequest) > 0 {
		report.MetFraction = float64(met) / float64(len(report.PerRequest))
	}
	return report, nil
}

// sampleSurvival samples one failure trial for one placement.
func sampleSurvival(network *core.Network, p core.Placement, rf float64, rng *rand.Rand) bool {
	for _, a := range p.Assignments {
		if rng.Float64() >= network.Cloudlets[a.Cloudlet].Reliability {
			continue // cloudlet down: all its instances are lost
		}
		for k := 0; k < a.Instances; k++ {
			if rng.Float64() < rf {
				return true
			}
		}
	}
	return false
}
