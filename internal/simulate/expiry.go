package simulate

import (
	"fmt"
	"sort"

	"revnf/internal/core"
)

// RequestFor resolves a placement's request in the trace, checking the ID
// is known. It is the shared lookup used by the failure injector, the
// timeline simulator and the serving layer's expiry bookkeeping.
func RequestFor(trace []core.Request, p core.Placement) (core.Request, error) {
	if p.Request < 0 || p.Request >= len(trace) {
		return core.Request{}, fmt.Errorf("%w: placement for unknown request %d", ErrBadInstance, p.Request)
	}
	return trace[p.Request], nil
}

// WindowIndex tracks execution windows by their last covered slot so that
// expirations can be drained as a slot clock advances: a placement for
// request ρ = (f, R, a, d, pay) covers slots [a, a+d-1] and expires the
// moment the clock reaches slot a+d. The timeline simulator uses the same
// end-of-window convention when it scores delivered uptime; the serving
// engine (internal/serve) uses this index to release ledger capacity on
// every tick. The zero value is not usable; construct with
// NewWindowIndex. Not safe for concurrent use.
type WindowIndex struct {
	byEnd  map[int][]int
	ends   map[int]int
	starts map[int]int
}

// NewWindowIndex returns an empty index.
func NewWindowIndex() *WindowIndex {
	return &WindowIndex{
		byEnd:  make(map[int][]int),
		ends:   make(map[int]int),
		starts: make(map[int]int),
	}
}

// Add registers id holding resources over [start, end] (both covered
// slots). The end drives expiry draining; the start is what a rolling
// ledger's window base must not pass while the window is live (see
// OldestStart). Re-adding a live id — a repair that re-based the footprint
// — first removes the stale entry. Add panics on an inverted window, which
// can only be a caller bug.
func (x *WindowIndex) Add(id, start, end int) {
	if start > end {
		panic(fmt.Sprintf("simulate: WindowIndex.Add id %d inverted window [%d,%d]", id, start, end))
	}
	if _, ok := x.ends[id]; ok {
		x.Remove(id)
	}
	x.ends[id] = end
	x.starts[id] = start
	x.byEnd[end] = append(x.byEnd[end], id)
}

// Remove unregisters id; unknown ids are ignored.
func (x *WindowIndex) Remove(id int) {
	end, ok := x.ends[id]
	if !ok {
		return
	}
	delete(x.ends, id)
	delete(x.starts, id)
	ids := x.byEnd[end]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(x.byEnd, end)
	} else {
		x.byEnd[end] = ids
	}
}

// Len returns the number of live windows.
func (x *WindowIndex) Len() int { return len(x.ends) }

// End returns the registered last covered slot of id and whether it is
// live.
func (x *WindowIndex) End(id int) (int, bool) {
	end, ok := x.ends[id]
	return end, ok
}

// Start returns the registered first covered slot of id and whether it is
// live.
func (x *WindowIndex) Start(id int) (int, bool) {
	start, ok := x.starts[id]
	return start, ok
}

// OldestStart returns the smallest first-covered slot across all live
// windows, and false when the index is empty. A rolling engine advances
// its ledger base to min(clock, OldestStart): live reservations pin the
// window open so their eventual release still addresses live slots.
func (x *WindowIndex) OldestStart() (int, bool) {
	if len(x.starts) == 0 {
		return 0, false
	}
	first := true
	oldest := 0
	for _, s := range x.starts {
		if first || s < oldest {
			oldest, first = s, false
		}
	}
	return oldest, true
}

// ExpireBefore removes and returns, in ascending id order, every id whose
// window ended before slot now — that is, every window with end < now. A
// window ending at slot e therefore expires exactly when the clock
// advances to slot e+1 (= arrival + duration).
func (x *WindowIndex) ExpireBefore(now int) []int {
	var out []int
	for end, ids := range x.byEnd {
		if end < now {
			out = append(out, ids...)
			for _, id := range ids {
				delete(x.ends, id)
				delete(x.starts, id)
			}
			delete(x.byEnd, end)
		}
	}
	sort.Ints(out)
	return out
}
