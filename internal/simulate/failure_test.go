package simulate

import (
	"math"
	"math/rand"
	"testing"

	"revnf/internal/baseline"
	"revnf/internal/core"
)

func TestEstimateAvailabilityMatchesAnalytical(t *testing.T) {
	inst := testInstance(t, 1)
	inst.Trace[0] = core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 1}
	p := core.Placement{
		Request:     0,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: 0, Instances: 2}},
	}
	rng := rand.New(rand.NewSource(42))
	rep, err := EstimateAvailability(inst.Network, inst.Trace, []core.Placement{p}, 200000, rng)
	if err != nil {
		t.Fatalf("EstimateAvailability: %v", err)
	}
	if len(rep.PerRequest) != 1 {
		t.Fatalf("PerRequest entries = %d", len(rep.PerRequest))
	}
	ra := rep.PerRequest[0]
	want := core.OnsiteReliability(0.95, 0.99, 2)
	if !core.FloatEqTol(ra.Analytical, want, 1e-12) {
		t.Errorf("Analytical = %v, want %v", ra.Analytical, want)
	}
	// 200k trials → standard error ~0.0006; allow 5σ.
	if math.Abs(ra.Empirical-want) > 0.004 {
		t.Errorf("Empirical = %v too far from analytical %v", ra.Empirical, want)
	}
	if !ra.Met {
		t.Error("valid placement not marked Met")
	}
	if rep.MetFraction != 1 {
		t.Errorf("MetFraction = %v, want 1", rep.MetFraction)
	}
}

func TestEstimateAvailabilityOffsite(t *testing.T) {
	inst := testInstance(t, 1)
	inst.Trace[0] = core.Request{ID: 0, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 1, Payment: 1}
	p := core.Placement{
		Request: 0,
		Scheme:  core.OffSite,
		Assignments: []core.Assignment{
			{Cloudlet: 0, Instances: 1},
			{Cloudlet: 1, Instances: 1},
		},
	}
	rng := rand.New(rand.NewSource(7))
	rep, err := EstimateAvailability(inst.Network, inst.Trace, []core.Placement{p}, 100000, rng)
	if err != nil {
		t.Fatalf("EstimateAvailability: %v", err)
	}
	ra := rep.PerRequest[0]
	want := core.OffsiteReliability(0.95, []float64{0.99, 0.999})
	if math.Abs(ra.Empirical-want) > 0.006 {
		t.Errorf("Empirical = %v too far from analytical %v", ra.Empirical, want)
	}
}

func TestEstimateAvailabilityEndToEnd(t *testing.T) {
	inst := testInstance(t, 30)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rep, err := EstimateAvailability(inst.Network, inst.Trace, res.AdmittedPlacements(), 20000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("EstimateAvailability: %v", err)
	}
	if len(rep.PerRequest) != res.Admitted {
		t.Fatalf("report entries = %d, want %d", len(rep.PerRequest), res.Admitted)
	}
	// Every placement passed core validation, so every empirical estimate
	// must be consistent with the requirement.
	if rep.MetFraction < 1 {
		for _, ra := range rep.PerRequest {
			if !ra.Met {
				t.Errorf("request %d: empirical %v < required %v", ra.Request, ra.Empirical, ra.Required)
			}
		}
	}
}

func TestEstimateAvailabilityErrors(t *testing.T) {
	inst := testInstance(t, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := EstimateAvailability(inst.Network, inst.Trace, nil, 0, rng); err == nil {
		t.Error("zero trials did not error")
	}
	if _, err := EstimateAvailability(inst.Network, inst.Trace, nil, 10, nil); err == nil {
		t.Error("nil RNG did not error")
	}
	badPlacement := []core.Placement{{Request: 99, Scheme: core.OnSite, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}}}}
	if _, err := EstimateAvailability(inst.Network, inst.Trace, badPlacement, 10, rng); err == nil {
		t.Error("unknown request did not error")
	}
	weak := []core.Placement{{Request: 0, Scheme: core.OnSite, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}}}}
	inst.Trace[0].Reliability = 0.99 // one instance at 0.99·0.95 < 0.99
	if _, err := EstimateAvailability(inst.Network, inst.Trace, weak, 10, rng); err == nil {
		t.Error("below-requirement placement did not error")
	}
}

func TestEstimateAvailabilityEmptyPlacements(t *testing.T) {
	inst := testInstance(t, 1)
	rep, err := EstimateAvailability(inst.Network, inst.Trace, nil, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("EstimateAvailability: %v", err)
	}
	if rep.MetFraction != 0 || len(rep.PerRequest) != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}
