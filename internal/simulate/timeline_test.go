package simulate

import (
	"math"
	"math/rand"
	"testing"

	"revnf/internal/baseline"
	"revnf/internal/core"
)

func TestTimelineConfigValidate(t *testing.T) {
	if err := (TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (TimelineConfig{CloudletMTTR: 0.5, InstanceMTTR: 1}).Validate(); err == nil {
		t.Error("sub-slot cloudlet MTTR accepted")
	}
	if err := (TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 0}).Validate(); err == nil {
		t.Error("zero instance MTTR accepted")
	}
}

func TestMarkovTimelineStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ r, mttr float64 }{
		{0.95, 1}, {0.99, 5}, {0.9, 10},
	} {
		up := 0
		const length = 200000
		tl := markovTimeline(length, tc.r, tc.mttr, rng)
		for _, u := range tl {
			if u {
				up++
			}
		}
		got := float64(up) / length
		if math.Abs(got-tc.r) > 0.01 {
			t.Errorf("r=%v mttr=%v: stationary availability %v", tc.r, tc.mttr, got)
		}
	}
}

// TestMarkovTimelineSaturation pins the MTTR-saturation branch: when
// r < 1/(1+mttr) the per-slot failure probability (1-r)/(r·mttr) exceeds
// 1 and is clamped, so the realized stationary availability is
// 1/(mttr+1) — above the requested r, never below it.
func TestMarkovTimelineSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ r, mttr float64 }{
		{0.3, 1},  // fail = (0.7/0.3) ≈ 2.33 > 1 → stationary 1/2
		{0.1, 4},  // fail = (0.9/0.4) = 2.25 > 1 → stationary 1/5
		{0.05, 2}, // fail = (0.95/0.1) = 9.5 > 1 → stationary 1/3
	} {
		want := 1 / (tc.mttr + 1)
		m := NewMarkovIn(tc.r, tc.mttr, true, rng)
		if got := m.StationaryRate(); math.Abs(got-want) > 1e-12 {
			t.Errorf("r=%v mttr=%v: StationaryRate = %v, want %v", tc.r, tc.mttr, got, want)
		}
		up := 0
		const length = 200000
		for _, u := range markovTimeline(length, tc.r, tc.mttr, rng) {
			if u {
				up++
			}
		}
		got := float64(up) / length
		if math.Abs(got-want) > 0.01 {
			t.Errorf("r=%v mttr=%v: saturated availability %v, want ≈ %v", tc.r, tc.mttr, got, want)
		}
		if got < tc.r {
			t.Errorf("r=%v mttr=%v: saturation fell below the target (%v < %v)", tc.r, tc.mttr, got, tc.r)
		}
	}
}

// TestMarkovStepperMatchesTimeline pins that the exported incremental
// chain and the batch timeline consume draws identically, so the chaos
// injector and SimulateTimeline produce the same failure sequences from
// the same seed.
func TestMarkovStepperMatchesTimeline(t *testing.T) {
	const length = 5000
	batch := markovTimeline(length, 0.95, 4, rand.New(rand.NewSource(7)))
	m := NewMarkov(0.95, 4, rand.New(rand.NewSource(7)))
	for i := 0; i < length; i++ {
		if up := m.Up(); up != batch[i] {
			t.Fatalf("slot %d: stepper %v, timeline %v", i, up, batch[i])
		}
		if stepped := m.Step(); stepped != batch[i] {
			t.Fatalf("slot %d: Step returned %v, want the pre-step state %v", i, stepped, batch[i])
		}
	}
	// Unsaturated chains report the requested rate.
	if got := m.StationaryRate(); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("StationaryRate = %v, want 0.95", got)
	}
}

func TestMarkovTimelineBurstiness(t *testing.T) {
	// Larger MTTR must produce longer down spells at the same stationary
	// availability.
	meanSpell := func(mttr float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		tl := markovTimeline(100000, 0.95, mttr, rng)
		spells, length, current := 0, 0, 0
		for _, up := range tl {
			if up {
				if current > 0 {
					spells++
					length += current
					current = 0
				}
			} else {
				current++
			}
		}
		if spells == 0 {
			return 0
		}
		return float64(length) / float64(spells)
	}
	short := meanSpell(1, 2)
	long := meanSpell(8, 3)
	if long < 2*short {
		t.Errorf("mean down spell at MTTR=8 (%v) not clearly longer than MTTR=1 (%v)", long, short)
	}
}

func TestSimulateTimelineEndToEnd(t *testing.T) {
	inst := testInstance(t, 40)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := TimelineConfig{CloudletMTTR: 2, InstanceMTTR: 1}
	rep, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, res.AdmittedPlacements(), cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("SimulateTimeline: %v", err)
	}
	if len(rep.PerRequest) != res.Admitted {
		t.Fatalf("report entries %d, want %d", len(rep.PerRequest), res.Admitted)
	}
	if rep.MeanDelivered <= 0 || rep.MeanDelivered > 1 {
		t.Errorf("MeanDelivered = %v", rep.MeanDelivered)
	}
	if len(rep.CloudletDownSlots) != len(inst.Network.Cloudlets) {
		t.Errorf("CloudletDownSlots = %v", rep.CloudletDownSlots)
	}
	for _, ru := range rep.PerRequest {
		if ru.UpSlots > ru.Slots || ru.Delivered < 0 || ru.Delivered > 1 {
			t.Errorf("per-request uptime malformed: %+v", ru)
		}
	}
}

// Property: at MTTR=1 the mean delivered availability across many seeds
// approaches the placements' analytical availability.
func TestSimulateTimelineMatchesAnalytical(t *testing.T) {
	inst := testInstance(t, 10)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	placements := res.AdmittedPlacements()
	if len(placements) == 0 {
		t.Skip("no admissions")
	}
	// Analytical mean availability of the admitted placements.
	analytical := 0.0
	for _, p := range placements {
		analytical += p.Availability(inst.Network, inst.Trace[p.Request])
	}
	analytical /= float64(len(placements))
	cfg := TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}
	total, rounds := 0.0, 300
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < rounds; i++ {
		rep, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, placements, cfg, rng)
		if err != nil {
			t.Fatalf("SimulateTimeline: %v", err)
		}
		total += rep.MeanDelivered
	}
	got := total / float64(rounds)
	if math.Abs(got-analytical) > 0.02 {
		t.Errorf("timeline mean delivered %v vs analytical %v", got, analytical)
	}
}

func TestSimulateTimelineErrors(t *testing.T) {
	inst := testInstance(t, 5)
	cfg := TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, nil, TimelineConfig{}, rng); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, nil, cfg, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := SimulateTimeline(inst.Network, 0, inst.Trace, nil, cfg, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := []core.Placement{{Request: 99}}
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, bad, cfg, rng); err == nil {
		t.Error("unknown request accepted")
	}
}
