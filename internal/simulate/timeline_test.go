package simulate

import (
	"math"
	"math/rand"
	"testing"

	"revnf/internal/baseline"
	"revnf/internal/core"
)

func TestTimelineConfigValidate(t *testing.T) {
	if err := (TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (TimelineConfig{CloudletMTTR: 0.5, InstanceMTTR: 1}).Validate(); err == nil {
		t.Error("sub-slot cloudlet MTTR accepted")
	}
	if err := (TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 0}).Validate(); err == nil {
		t.Error("zero instance MTTR accepted")
	}
}

func TestMarkovTimelineStationary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ r, mttr float64 }{
		{0.95, 1}, {0.99, 5}, {0.9, 10},
	} {
		up := 0
		const length = 200000
		tl := markovTimeline(length, tc.r, tc.mttr, rng)
		for _, u := range tl {
			if u {
				up++
			}
		}
		got := float64(up) / length
		if math.Abs(got-tc.r) > 0.01 {
			t.Errorf("r=%v mttr=%v: stationary availability %v", tc.r, tc.mttr, got)
		}
	}
}

func TestMarkovTimelineBurstiness(t *testing.T) {
	// Larger MTTR must produce longer down spells at the same stationary
	// availability.
	meanSpell := func(mttr float64, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		tl := markovTimeline(100000, 0.95, mttr, rng)
		spells, length, current := 0, 0, 0
		for _, up := range tl {
			if up {
				if current > 0 {
					spells++
					length += current
					current = 0
				}
			} else {
				current++
			}
		}
		if spells == 0 {
			return 0
		}
		return float64(length) / float64(spells)
	}
	short := meanSpell(1, 2)
	long := meanSpell(8, 3)
	if long < 2*short {
		t.Errorf("mean down spell at MTTR=8 (%v) not clearly longer than MTTR=1 (%v)", long, short)
	}
}

func TestSimulateTimelineEndToEnd(t *testing.T) {
	inst := testInstance(t, 40)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg := TimelineConfig{CloudletMTTR: 2, InstanceMTTR: 1}
	rep, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, res.AdmittedPlacements(), cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("SimulateTimeline: %v", err)
	}
	if len(rep.PerRequest) != res.Admitted {
		t.Fatalf("report entries %d, want %d", len(rep.PerRequest), res.Admitted)
	}
	if rep.MeanDelivered <= 0 || rep.MeanDelivered > 1 {
		t.Errorf("MeanDelivered = %v", rep.MeanDelivered)
	}
	if len(rep.CloudletDownSlots) != len(inst.Network.Cloudlets) {
		t.Errorf("CloudletDownSlots = %v", rep.CloudletDownSlots)
	}
	for _, ru := range rep.PerRequest {
		if ru.UpSlots > ru.Slots || ru.Delivered < 0 || ru.Delivered > 1 {
			t.Errorf("per-request uptime malformed: %+v", ru)
		}
	}
}

// Property: at MTTR=1 the mean delivered availability across many seeds
// approaches the placements' analytical availability.
func TestSimulateTimelineMatchesAnalytical(t *testing.T) {
	inst := testInstance(t, 10)
	g, err := baseline.NewGreedyOnsite(inst.Network)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	res, err := Run(inst, g)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	placements := res.AdmittedPlacements()
	if len(placements) == 0 {
		t.Skip("no admissions")
	}
	// Analytical mean availability of the admitted placements.
	analytical := 0.0
	for _, p := range placements {
		analytical += p.Availability(inst.Network, inst.Trace[p.Request])
	}
	analytical /= float64(len(placements))
	cfg := TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}
	total, rounds := 0.0, 300
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < rounds; i++ {
		rep, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, placements, cfg, rng)
		if err != nil {
			t.Fatalf("SimulateTimeline: %v", err)
		}
		total += rep.MeanDelivered
	}
	got := total / float64(rounds)
	if math.Abs(got-analytical) > 0.02 {
		t.Errorf("timeline mean delivered %v vs analytical %v", got, analytical)
	}
}

func TestSimulateTimelineErrors(t *testing.T) {
	inst := testInstance(t, 5)
	cfg := TimelineConfig{CloudletMTTR: 1, InstanceMTTR: 1}
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, nil, TimelineConfig{}, rng); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, nil, cfg, nil); err == nil {
		t.Error("nil RNG accepted")
	}
	if _, err := SimulateTimeline(inst.Network, 0, inst.Trace, nil, cfg, rng); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := []core.Placement{{Request: 99}}
	if _, err := SimulateTimeline(inst.Network, inst.Horizon, inst.Trace, bad, cfg, rng); err == nil {
		t.Error("unknown request accepted")
	}
}
