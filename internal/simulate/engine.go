// Package simulate drives online schedulers over request traces and audits
// every decision: placements are validated against the reliability
// requirement, reservations recorded in the authoritative time-slot ledger,
// and revenue, utilization and capacity violations measured. It also
// provides a Monte-Carlo failure injector that empirically verifies the
// availability of admitted placements by sampling cloudlet and instance
// failures.
package simulate

import (
	"errors"
	"fmt"

	"revnf/internal/core"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// Errors returned by Run.
var (
	ErrBadInstance  = errors.New("simulate: invalid instance")
	ErrBadScheduler = errors.New("simulate: nil scheduler")
	// ErrSchedulerOverbooked reports a scheduler that claimed a placement
	// the ledger cannot hold while violations are disallowed.
	ErrSchedulerOverbooked = errors.New("simulate: scheduler exceeded capacity without violation licence")
)

// Decision records one online admission outcome.
type Decision struct {
	// Request is the request ID.
	Request int
	// Admitted reports the outcome.
	Admitted bool
	// Placement is the resource footprint when admitted.
	Placement core.Placement
}

// Result summarizes one simulation run.
type Result struct {
	// Algorithm and Scheme identify the scheduler.
	Algorithm string
	Scheme    core.Scheme
	// Revenue is the summed payment of admitted requests (objective (6)).
	Revenue float64
	// Admitted and Rejected count decisions.
	Admitted, Rejected int
	// Decisions is the per-request audit trail in arrival order.
	Decisions []Decision
	// Utilization is the mean used/capacity over all (cloudlet, slot)
	// cells at the end of the run.
	Utilization float64
	// Violations lists every overcommitted (cloudlet, slot) cell; empty
	// unless the run allowed violations.
	Violations []timeslot.Violation
	// MaxViolationRatio is the worst used/capacity cell ratio.
	MaxViolationRatio float64
}

// AdmissionRate returns admitted / total, or 0 for an empty trace.
func (r *Result) AdmissionRate() float64 {
	total := r.Admitted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(total)
}

// Option configures a run.
type Option func(*config)

type config struct {
	allowViolations bool
}

// AllowViolations lets the run force-reserve capacity the ledger does not
// have, recording the overcommitment instead of failing. Use it for the
// raw Algorithm 1 whose analysis bounds (but does not prevent) violations.
func AllowViolations() Option {
	return func(c *config) { c.allowViolations = true }
}

// Run feeds the instance's trace to the scheduler in arrival order and
// returns the audited result.
func Run(inst *workload.Instance, sched core.Scheduler, opts ...Option) (*Result, error) {
	if sched == nil {
		return nil, ErrBadScheduler
	}
	if inst == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadInstance)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	// Shared-scheme backup groups hold pooled, refcounted capacity: the
	// pool reserves a group's row once per slot regardless of membership.
	pool := timeslot.NewPool(ledger)
	result := &Result{
		Algorithm: sched.Name(),
		Scheme:    sched.Scheme(),
		Decisions: make([]Decision, 0, len(inst.Trace)),
	}
	demandOf := func(p core.Placement, a core.Assignment) int {
		req := inst.Trace[p.Request]
		return a.Units(inst.Network.Catalog[req.VNF].Demand)
	}
	// Two-phase schedulers are driven through Propose → validate → reserve
	// → Commit, so the dual update happens only after the ledger accepted
	// the footprint. Both orders are decision-identical for this serial
	// loop (every error path aborts the whole run), but the two-phase order
	// is the one the concurrent serve engine relies on, so the batch
	// simulator exercises the same protocol.
	twoPhase, _ := sched.(core.TwoPhaseScheduler)
	for _, req := range inst.Trace {
		var placement core.Placement
		var admitted bool
		if twoPhase != nil {
			placement, admitted = twoPhase.Propose(req, ledger)
		} else {
			placement, admitted = sched.Decide(req, ledger)
		}
		if !admitted {
			result.Rejected++
			result.Decisions = append(result.Decisions, Decision{Request: req.ID})
			continue
		}
		if err := placement.Validate(inst.Network, req); err != nil {
			return nil, fmt.Errorf("simulate: scheduler %q request %d: %w", sched.Name(), req.ID, err)
		}
		for _, a := range placement.Assignments {
			units := demandOf(placement, a)
			if cfg.allowViolations {
				err = ledger.ForceReserve(a.Cloudlet, req.Arrival, req.Duration, units)
			} else {
				err = ledger.Reserve(a.Cloudlet, req.Arrival, req.Duration, units)
				if errors.Is(err, timeslot.ErrOverCapacity) {
					return nil, fmt.Errorf("%w: %q request %d cloudlet %d: %v",
						ErrSchedulerOverbooked, sched.Name(), req.ID, a.Cloudlet, err)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("simulate: reserve for request %d: %w", req.ID, err)
			}
		}
		if b := placement.Backup; b != nil {
			units := inst.Network.Catalog[inst.Trace[placement.Request].VNF].Demand
			if err := pool.Acquire(b.Group, b.Cloudlet, req.Arrival, req.Duration, units); err != nil {
				if errors.Is(err, timeslot.ErrOverCapacity) && !cfg.allowViolations {
					return nil, fmt.Errorf("%w: %q request %d backup group %d on cloudlet %d: %v",
						ErrSchedulerOverbooked, sched.Name(), req.ID, b.Group, b.Cloudlet, err)
				}
				return nil, fmt.Errorf("simulate: pooled reserve for request %d: %w", req.ID, err)
			}
		}
		if twoPhase != nil {
			twoPhase.Commit(req, placement)
		}
		result.Admitted++
		result.Revenue += req.Payment
		result.Decisions = append(result.Decisions, Decision{Request: req.ID, Admitted: true, Placement: placement})
	}
	result.Utilization = ledger.Utilization()
	result.Violations = ledger.Violations()
	result.MaxViolationRatio = ledger.MaxViolationRatio()
	return result, nil
}

// AdmittedPlacements extracts the placements of admitted requests, in
// arrival order, for downstream analysis such as failure injection.
func (r *Result) AdmittedPlacements() []core.Placement {
	out := make([]core.Placement, 0, r.Admitted)
	for _, d := range r.Decisions {
		if d.Admitted {
			out = append(out, d.Placement)
		}
	}
	return out
}
