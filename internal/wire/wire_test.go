package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"revnf/internal/trace"
)

var testRequests = []Request{
	{VNF: 3, Arrival: 0, Duration: 5, Reliability: 0.95, Payment: 12.5},
	{VNF: 0, Arrival: 1, Duration: 1, Reliability: 0.999999, Payment: 0},
	{VNF: 41, Arrival: 1 << 20, Duration: 300, Reliability: 0.5, Payment: 1e9},
	{},
}

func TestFrameRequestRoundTrip(t *testing.T) {
	var buf []byte
	for _, want := range testRequests {
		var err error
		buf, err = AppendRequestFrame(buf[:0], &want)
		if err != nil {
			t.Fatalf("AppendRequestFrame(%+v): %v", want, err)
		}
		fr := NewFrameReader(bytes.NewReader(buf))
		typ, payload, err := fr.Next()
		if err != nil || typ != FrameRequest {
			t.Fatalf("Next() = (%#x, _, %v), want (FrameRequest, _, nil)", typ, err)
		}
		var got Request
		if err := DecodeRequest(payload, &got); err != nil {
			t.Fatalf("DecodeRequest: %v", err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
		if _, _, err := fr.Next(); err != io.EOF {
			t.Fatalf("trailing Next() err = %v, want io.EOF", err)
		}
	}
}

func TestFrameRequestRange(t *testing.T) {
	for _, bad := range []Request{
		{VNF: -1, Duration: 1},
		{Arrival: math.MaxUint32 + 1, Duration: 1},
		{Duration: -5},
	} {
		if _, err := AppendRequestFrame(nil, &bad); !errors.Is(err, ErrRange) {
			t.Fatalf("AppendRequestFrame(%+v) err = %v, want ErrRange", bad, err)
		}
	}
}

func TestFrameDecisionRoundTrip(t *testing.T) {
	cases := []Decision{
		{ID: 1, Slot: 1, Admitted: true, Reason: ReasonNone},
		{ID: 1 << 40, Slot: 9999, Admitted: false, Reason: ReasonDeclined},
		{ID: 0, Slot: 0, Admitted: false, Reason: ReasonQueueFull},
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendDecisionFrame(buf[:0], &want)
		fr := NewFrameReader(bytes.NewReader(buf))
		typ, payload, err := fr.Next()
		if err != nil || typ != FrameDecision {
			t.Fatalf("Next() = (%#x, _, %v)", typ, err)
		}
		var got Decision
		if err := DecodeDecision(payload, &got); err != nil {
			t.Fatalf("DecodeDecision: %v", err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestFrameErrorRoundTrip(t *testing.T) {
	buf := AppendErrorFrame(nil, 503, ReasonClosed, "engine has shut down")
	fr := NewFrameReader(bytes.NewReader(buf))
	typ, payload, err := fr.Next()
	if err != nil || typ != FrameError {
		t.Fatalf("Next() = (%#x, _, %v)", typ, err)
	}
	code, reason, detail, err := DecodeError(payload)
	if err != nil {
		t.Fatalf("DecodeError: %v", err)
	}
	if code != 503 || reason != ReasonClosed || string(detail) != "engine has shut down" {
		t.Fatalf("DecodeError = (%d, %v, %q)", code, reason, detail)
	}
}

func TestPreamble(t *testing.T) {
	if err := ReadPreamble(bytes.NewReader(AppendPreamble(nil))); err != nil {
		t.Fatalf("good preamble: %v", err)
	}
	if err := ReadPreamble(strings.NewReader("JUNK\x01")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v, want ErrBadMagic", err)
	}
	if err := ReadPreamble(strings.NewReader("RVNF\x07")); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version err = %v, want ErrBadVersion", err)
	}
	if err := ReadPreamble(strings.NewReader("RV")); err == nil {
		t.Fatal("short preamble accepted")
	}
}

func TestFrameReaderMalformed(t *testing.T) {
	// Length below the minimum.
	hdr := []byte{0, 0, 0, 0, FrameRequest}
	if _, _, err := NewFrameReader(bytes.NewReader(hdr)).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero length err = %v, want ErrBadFrame", err)
	}
	// Length above MaxFrameSize.
	hdr = []byte{0xff, 0xff, 0xff, 0xff, FrameRequest}
	if _, _, err := NewFrameReader(bytes.NewReader(hdr)).Next(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("huge length err = %v, want ErrBadFrame", err)
	}
	// Truncated payload.
	buf, _ := AppendRequestFrame(nil, &testRequests[0])
	if _, _, err := NewFrameReader(bytes.NewReader(buf[:len(buf)-3])).Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Wrong payload size for the type.
	var req Request
	if err := DecodeRequest(make([]byte, 5), &req); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short request payload err = %v, want ErrBadPayload", err)
	}
	var d Decision
	if err := DecodeDecision(make([]byte, 40), &d); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("long decision payload err = %v, want ErrBadPayload", err)
	}
	if _, _, _, err := DecodeError([]byte{1, 2}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("short error payload err = %v, want ErrBadPayload", err)
	}
}

func TestNDJSONRequestRoundTrip(t *testing.T) {
	var buf []byte
	for _, want := range testRequests {
		buf = AppendNDJSONRequest(buf[:0], &want)
		var got Request
		if err := DecodeNDJSONRequest(buf, &got); err != nil {
			t.Fatalf("DecodeNDJSONRequest(%q): %v", buf, err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

// TestNDJSONMatchesEncodingJSON pins the hand-rolled parser to the
// semantics of the HTTP handler's json.Decoder on the same bodies: both
// must produce identical field values, which is what makes streamed and
// POSTed decisions bit-identical.
func TestNDJSONMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		`{"vnf":3,"reliability":0.95,"arrival":0,"duration":5,"payment":12.5}`,
		`{"vnf":1,"duration":2,"payment":3}`,
		`{ "payment" : 7.25 , "vnf" : 2 , "duration" : 4 , "reliability" : 0.875 }`,
		`{"reliability":9.5e-1,"vnf":3,"duration":1,"payment":1e2}`,
		`{}`,
	}
	for _, line := range lines {
		var got Request
		if err := DecodeNDJSONRequest([]byte(line), &got); err != nil {
			t.Fatalf("DecodeNDJSONRequest(%q): %v", line, err)
		}
		var want Request
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		var dto struct {
			VNF         int     `json:"vnf"`
			Reliability float64 `json:"reliability"`
			Arrival     int     `json:"arrival"`
			Duration    int     `json:"duration"`
			Payment     float64 `json:"payment"`
		}
		if err := dec.Decode(&dto); err != nil {
			t.Fatalf("encoding/json(%q): %v", line, err)
		}
		want = Request{VNF: dto.VNF, Reliability: dto.Reliability,
			Arrival: dto.Arrival, Duration: dto.Duration, Payment: dto.Payment}
		if got != want {
			t.Fatalf("DecodeNDJSONRequest(%q) = %+v, encoding/json = %+v", line, got, want)
		}
	}
}

func TestNDJSONRequestMalformed(t *testing.T) {
	cases := []struct {
		line string
		want error
	}{
		{``, ErrBadJSON},
		{`[1,2]`, ErrBadJSON},
		{`{"vnf":3`, ErrBadJSON},
		{`{"vnf":}`, ErrBadJSON},
		{`{"vnf":3,}`, ErrBadJSON},
		{`{"vnf":"3"}`, ErrBadJSON},
		{`{"vnf":3}{"vnf":4}`, ErrBadJSON},
		{`{"vnf":-1}`, ErrBadJSON},
		{`{"vnf":99999999999999999999}`, ErrBadJSON},
		{`{"reliability":0..5}`, ErrBadJSON},
		{`{"bogus":1}`, ErrUnknownField},
		{`{"vnf\n":1}`, ErrBadJSON},
	}
	for _, tc := range cases {
		var req Request
		if err := DecodeNDJSONRequest([]byte(tc.line), &req); !errors.Is(err, tc.want) {
			t.Fatalf("DecodeNDJSONRequest(%q) err = %v, want %v", tc.line, err, tc.want)
		}
	}
}

func TestNDJSONDecisionRoundTrip(t *testing.T) {
	cases := []Decision{
		{ID: 1, Slot: 1, Admitted: true},
		{ID: 7, Slot: 3, Admitted: false, Reason: ReasonDeclined},
		{ID: 8, Slot: 12, Admitted: false, Reason: ReasonQueueFull},
	}
	var buf []byte
	for _, want := range cases {
		buf = AppendNDJSONDecision(buf[:0], &want)
		// The line must be valid JSON with the HTTP response's field names.
		var js map[string]any
		if err := json.Unmarshal(buf, &js); err != nil {
			t.Fatalf("decision line %q is not JSON: %v", buf, err)
		}
		var got Decision
		if err := DecodeNDJSONDecision(buf, &got); err != nil {
			t.Fatalf("DecodeNDJSONDecision(%q): %v", buf, err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}
}

func TestNDJSONErrorLine(t *testing.T) {
	buf := AppendNDJSONError(nil, 503, ReasonQueueFull, "admission queue full")
	var js struct {
		Error struct {
			Code   int    `json:"code"`
			Reason string `json:"reason"`
			Detail string `json:"detail"`
		} `json:"error"`
	}
	if err := json.Unmarshal(buf, &js); err != nil {
		t.Fatalf("error line %q is not JSON: %v", buf, err)
	}
	if js.Error.Code != 503 || js.Error.Reason != "queue-full" || js.Error.Detail != "admission queue full" {
		t.Fatalf("error line = %+v", js.Error)
	}
}

func TestReasonCodeTable(t *testing.T) {
	for _, r := range []trace.Reason{
		trace.ReasonInvalid, trace.ReasonStale, trace.ReasonHorizon,
		trace.ReasonDeclined, trace.ReasonOverbooked, trace.ReasonConflict,
		trace.ReasonQueueFull, trace.ReasonClosed, trace.ReasonCanceled,
		trace.ReasonNotFound, trace.ReasonInternal,
	} {
		c := CodeForReason(string(r))
		if c == ReasonNone || c == ReasonUnknown {
			t.Fatalf("CodeForReason(%q) = %v", r, c)
		}
		if back := c.Reason(); back != string(r) {
			t.Fatalf("Reason(%v) = %q, want %q", c, back, r)
		}
	}
	if CodeForReason("") != ReasonNone {
		t.Fatal("empty reason must map to ReasonNone")
	}
	if CodeForReason("martian") != ReasonUnknown {
		t.Fatal("unknown reason must map to ReasonUnknown")
	}
	if ReasonNone.Reason() != "" {
		t.Fatal("ReasonNone must map to empty string")
	}
	if ReasonCode(200).Reason() != "unknown" {
		t.Fatal("unmapped code must read as unknown")
	}
}

// TestDecodeAllocs is the allocation-regression gate for the ingest hot
// path: binary-frame request decode must not allocate at all, NDJSON
// decode at most twice per request.
func TestDecodeAllocs(t *testing.T) {
	framed, err := AppendRequestFrame(nil, &testRequests[0])
	if err != nil {
		t.Fatal(err)
	}
	payload := framed[headerSize:]
	var req Request
	if n := testing.AllocsPerRun(1000, func() {
		if err := DecodeRequest(payload, &req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeRequest allocates %.1f/op, want 0", n)
	}

	line := AppendNDJSONRequest(nil, &testRequests[0])
	if n := testing.AllocsPerRun(1000, func() {
		if err := DecodeNDJSONRequest(line, &req); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Fatalf("DecodeNDJSONRequest allocates %.1f/op, want ≤ 2", n)
	}

	// The encoders must not allocate once the buffer has grown.
	d := Decision{ID: 42, Slot: 7, Admitted: false, Reason: ReasonDeclined}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(1000, func() {
		buf = AppendDecisionFrame(buf[:0], &d)
		buf = AppendNDJSONDecision(buf[:0], &d)
	}); n != 0 {
		t.Fatalf("decision encoders allocate %.1f/op, want 0", n)
	}
}

// TestFrameReaderReusesBuffer pins the zero-copy contract: consecutive
// frames that fit the existing buffer must return the same backing array.
func TestFrameReaderReusesBuffer(t *testing.T) {
	var stream []byte
	var err error
	for i := range testRequests {
		stream, err = AppendRequestFrame(stream, &testRequests[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	var first []byte
	for i := range testRequests {
		_, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i == 0 {
			first = payload
		} else if &payload[0] != &first[0] {
			t.Fatal("payload buffer was reallocated between equal-size frames")
		}
	}
}

// TestFrameRequestSchemeRoundTrip pins the v2 frame layout: a trailing
// scheme byte carries the optional scheme pin, zero meaning none.
func TestFrameRequestSchemeRoundTrip(t *testing.T) {
	for _, pin := range []string{"", "onsite", "offsite", "shared"} {
		want := Request{VNF: 2, Arrival: 3, Duration: 4, Reliability: 0.9, Payment: 5, Scheme: pin}
		buf, err := AppendRequestFrame(nil, &want)
		if err != nil {
			t.Fatalf("AppendRequestFrame(scheme=%q): %v", pin, err)
		}
		if got := len(buf); got != headerSize+requestPayloadSize {
			t.Fatalf("scheme %q frame is %d bytes, want %d", pin, got, headerSize+requestPayloadSize)
		}
		typ, payload, err := NewFrameReader(bytes.NewReader(buf)).Next()
		if err != nil || typ != FrameRequest {
			t.Fatalf("Next() = (%#x, _, %v)", typ, err)
		}
		var got Request
		if err := DecodeRequest(payload, &got); err != nil {
			t.Fatalf("DecodeRequest(scheme=%q): %v", pin, err)
		}
		if got != want {
			t.Fatalf("round trip = %+v, want %+v", got, want)
		}
	}

	// A pin the registry does not know fails on encode, not on the peer.
	bad := Request{Duration: 1, Scheme: "raid1"}
	if _, err := AppendRequestFrame(nil, &bad); !errors.Is(err, ErrRange) {
		t.Fatalf("unknown scheme encode err = %v, want ErrRange", err)
	}
}

// TestFrameRequestV1Compat ensures a v1 peer's 28-byte request payload
// still decodes (empty scheme), and a corrupt scheme byte is rejected.
func TestFrameRequestV1Compat(t *testing.T) {
	full := Request{VNF: 1, Arrival: 2, Duration: 3, Reliability: 0.5, Payment: 6, Scheme: "shared"}
	buf, err := AppendRequestFrame(nil, &full)
	if err != nil {
		t.Fatal(err)
	}
	payload := buf[headerSize:]

	var got Request
	if err := DecodeRequest(payload[:requestPayloadSizeV1], &got); err != nil {
		t.Fatalf("v1 payload: %v", err)
	}
	want := full
	want.Scheme = ""
	if got != want {
		t.Fatalf("v1 decode = %+v, want %+v", got, want)
	}

	payload[28] = 99
	if err := DecodeRequest(payload, &got); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("corrupt scheme byte err = %v, want ErrBadPayload", err)
	}
}

func TestNDJSONRequestScheme(t *testing.T) {
	for _, pin := range []string{"", "onsite", "offsite", "shared"} {
		want := Request{VNF: 1, Duration: 2, Payment: 3, Scheme: pin}
		buf := AppendNDJSONRequest(nil, &want)
		if pin == "" && bytes.Contains(buf, []byte("scheme")) {
			t.Fatalf("empty pin must be omitted from %q", buf)
		}
		var got Request
		if err := DecodeNDJSONRequest(buf, &got); err != nil {
			t.Fatalf("DecodeNDJSONRequest(%q): %v", buf, err)
		}
		if got != want {
			t.Fatalf("round trip(%q) = %+v, want %+v", buf, got, want)
		}
	}
	var got Request
	err := DecodeNDJSONRequest([]byte(`{"duration":1,"scheme":"raid1"}`), &got)
	if !errors.Is(err, ErrBadJSON) {
		t.Fatalf("unknown scheme decode err = %v, want ErrBadJSON", err)
	}
}
