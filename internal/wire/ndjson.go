package wire

import (
	"errors"
	"fmt"
	"strconv"

	"revnf/internal/core"
)

// Newline-delimited JSON. One JSON object per line; the same field names
// as the HTTP API:
//
//	request:  {"vnf":3,"reliability":0.95,"arrival":0,"duration":5,"payment":12.5}
//	decision: {"id":1,"admitted":true,"slot":1}
//	          {"id":2,"admitted":false,"reason":"declined","slot":1}
//	error:    {"error":{"code":503,"reason":"closed","detail":"..."}}
//
// An error line is terminal: the server sends one and closes. The request
// decoder is a hand-rolled strict parser (unknown fields rejected, like
// the HTTP handler's DisallowUnknownFields) so the hot path stays within
// its allocation budget; it accepts exactly the flat number-valued object
// above — no nesting, no strings, no escapes.

// Typed NDJSON errors.
var (
	// ErrBadJSON reports a request line that is not a flat JSON object of
	// number fields.
	ErrBadJSON = errors.New("wire: malformed request line")
	// ErrUnknownField reports a request field outside the schema.
	ErrUnknownField = errors.New("wire: unknown request field")
)

// DecodeNDJSONRequest parses one request line (with or without trailing
// newline) into req. At most two heap allocations per call on the
// success path.
func DecodeNDJSONRequest(line []byte, req *Request) error {
	*req = Request{}
	p := skipWS(line, 0)
	if p >= len(line) || line[p] != '{' {
		return fmt.Errorf("%w: expected '{'", ErrBadJSON)
	}
	p++
	first := true
	for {
		p = skipWS(line, p)
		if p >= len(line) {
			return fmt.Errorf("%w: unterminated object", ErrBadJSON)
		}
		if line[p] == '}' {
			p++
			break
		}
		if !first {
			if line[p] != ',' {
				return fmt.Errorf("%w: expected ',' at offset %d", ErrBadJSON, p)
			}
			p = skipWS(line, p+1)
		}
		first = false
		key, next, err := scanKey(line, p)
		if err != nil {
			return err
		}
		p = skipWS(line, next)
		if p >= len(line) || line[p] != ':' {
			return fmt.Errorf("%w: expected ':' after key", ErrBadJSON)
		}
		p = skipWS(line, p+1)
		if string(key) == "scheme" {
			// The one string-valued field: a scheme name resolved by the
			// canonical parser (either spelling), stored as its flag form.
			val, next, err := scanKey(line, p) // a string value scans like a key
			if err != nil {
				return err
			}
			s, err := core.ParseScheme(string(val))
			if err != nil {
				return fmt.Errorf("%w: scheme %q", ErrBadJSON, val)
			}
			req.Scheme, p = s.Flag(), next
			continue
		}
		val, next, err := scanNumber(line, p)
		if err != nil {
			return err
		}
		p = next
		switch string(key) {
		case "vnf":
			req.VNF, err = parseWireInt(val)
		case "arrival":
			req.Arrival, err = parseWireInt(val)
		case "duration":
			req.Duration, err = parseWireInt(val)
		case "reliability":
			req.Reliability, err = parseWireFloat(val)
		case "payment":
			req.Payment, err = parseWireFloat(val)
		default:
			return fmt.Errorf("%w: %q", ErrUnknownField, key)
		}
		if err != nil {
			return err
		}
	}
	if p = skipWS(line, p); p != len(line) {
		return fmt.Errorf("%w: trailing bytes after object", ErrBadJSON)
	}
	return nil
}

func skipWS(b []byte, p int) int {
	for p < len(b) {
		switch b[p] {
		case ' ', '\t', '\r', '\n':
			p++
		default:
			return p
		}
	}
	return p
}

// scanKey scans a quoted key without escapes starting at b[p] == '"'.
func scanKey(b []byte, p int) (key []byte, next int, err error) {
	if p >= len(b) || b[p] != '"' {
		return nil, p, fmt.Errorf("%w: expected '\"' at offset %d", ErrBadJSON, p)
	}
	start := p + 1
	for q := start; q < len(b); q++ {
		switch b[q] {
		case '"':
			return b[start:q], q + 1, nil
		case '\\':
			return nil, p, fmt.Errorf("%w: escapes not allowed in keys", ErrBadJSON)
		}
	}
	return nil, p, fmt.Errorf("%w: unterminated key", ErrBadJSON)
}

// scanNumber scans one JSON number token starting at b[p].
func scanNumber(b []byte, p int) (val []byte, next int, err error) {
	start := p
	for p < len(b) {
		switch c := b[p]; {
		case c >= '0' && c <= '9', c == '-', c == '+', c == '.', c == 'e', c == 'E':
			p++
		default:
			if p == start {
				return nil, p, fmt.Errorf("%w: expected number at offset %d", ErrBadJSON, p)
			}
			return b[start:p], p, nil
		}
	}
	if p == start {
		return nil, p, fmt.Errorf("%w: expected number at end of line", ErrBadJSON)
	}
	return b[start:p], p, nil
}

// maxWireInt bounds parsed integer fields, far above any served horizon
// or catalog size but comfortably inside int range.
const maxWireInt = 1 << 31

func parseWireInt(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("%w: empty integer", ErrBadJSON)
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("%w: %q is not a non-negative integer", ErrBadJSON, b)
		}
		n = n*10 + int(c-'0')
		if n > maxWireInt {
			return 0, fmt.Errorf("%w: integer %q too large", ErrBadJSON, b)
		}
	}
	return n, nil
}

func parseWireFloat(b []byte) (float64, error) {
	// string(b) of a short slice passed to a non-retaining callee stays on
	// the stack, keeping the success path allocation-free.
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: %q is not a number", ErrBadJSON, b)
	}
	return f, nil
}

// DecodeNDJSONDecision parses one decision line into d. A terminal error
// line ({"error":{...}}) is reported as ErrUnknownField on "error": the
// caller falls back to its slow-path error handling.
func DecodeNDJSONDecision(line []byte, d *Decision) error {
	*d = Decision{}
	p := skipWS(line, 0)
	if p >= len(line) || line[p] != '{' {
		return fmt.Errorf("%w: expected '{'", ErrBadJSON)
	}
	p++
	first := true
	for {
		p = skipWS(line, p)
		if p >= len(line) {
			return fmt.Errorf("%w: unterminated object", ErrBadJSON)
		}
		if line[p] == '}' {
			p++
			break
		}
		if !first {
			if line[p] != ',' {
				return fmt.Errorf("%w: expected ',' at offset %d", ErrBadJSON, p)
			}
			p = skipWS(line, p+1)
		}
		first = false
		key, next, err := scanKey(line, p)
		if err != nil {
			return err
		}
		p = skipWS(line, next)
		if p >= len(line) || line[p] != ':' {
			return fmt.Errorf("%w: expected ':' after key", ErrBadJSON)
		}
		p = skipWS(line, p+1)
		switch string(key) {
		case "id":
			val, next, err := scanNumber(line, p)
			if err != nil {
				return err
			}
			n, err := parseWireInt(val)
			if err != nil {
				return err
			}
			d.ID, p = uint64(n), next
		case "slot":
			val, next, err := scanNumber(line, p)
			if err != nil {
				return err
			}
			n, err := parseWireInt(val)
			if err != nil {
				return err
			}
			d.Slot, p = n, next
		case "admitted":
			switch {
			case hasPrefixAt(line, p, "true"):
				d.Admitted, p = true, p+4
			case hasPrefixAt(line, p, "false"):
				d.Admitted, p = false, p+5
			default:
				return fmt.Errorf("%w: expected boolean for \"admitted\"", ErrBadJSON)
			}
		case "reason":
			val, next, err := scanKey(line, p) // a string value scans like a key
			if err != nil {
				return err
			}
			d.Reason, p = CodeForReason(string(val)), next
		default:
			return fmt.Errorf("%w: %q", ErrUnknownField, key)
		}
	}
	if p = skipWS(line, p); p != len(line) {
		return fmt.Errorf("%w: trailing bytes after object", ErrBadJSON)
	}
	return nil
}

func hasPrefixAt(b []byte, p int, s string) bool {
	return len(b)-p >= len(s) && string(b[p:p+len(s)]) == s
}

// AppendNDJSONRequest appends one request line, newline-terminated.
func AppendNDJSONRequest(buf []byte, req *Request) []byte {
	buf = append(buf, `{"vnf":`...)
	buf = strconv.AppendInt(buf, int64(req.VNF), 10)
	buf = append(buf, `,"reliability":`...)
	buf = strconv.AppendFloat(buf, req.Reliability, 'g', -1, 64)
	buf = append(buf, `,"arrival":`...)
	buf = strconv.AppendInt(buf, int64(req.Arrival), 10)
	buf = append(buf, `,"duration":`...)
	buf = strconv.AppendInt(buf, int64(req.Duration), 10)
	buf = append(buf, `,"payment":`...)
	buf = strconv.AppendFloat(buf, req.Payment, 'g', -1, 64)
	if req.Scheme != "" {
		buf = append(buf, `,"scheme":"`...)
		buf = append(buf, req.Scheme...)
		buf = append(buf, '"')
	}
	return append(buf, '}', '\n')
}

// AppendNDJSONDecision appends one decision line, newline-terminated.
// Rejections carry the reason string; admissions omit it, mirroring the
// HTTP response schema.
func AppendNDJSONDecision(buf []byte, d *Decision) []byte {
	buf = append(buf, `{"id":`...)
	buf = strconv.AppendUint(buf, d.ID, 10)
	if d.Admitted {
		buf = append(buf, `,"admitted":true`...)
	} else {
		buf = append(buf, `,"admitted":false,"reason":"`...)
		buf = append(buf, d.Reason.Reason()...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"slot":`...)
	buf = strconv.AppendInt(buf, int64(d.Slot), 10)
	return append(buf, '}', '\n')
}

// AppendNDJSONError appends one terminal error line, newline-terminated.
// The detail must not contain characters needing JSON escaping (the serve
// layer only passes its own fixed detail strings).
func AppendNDJSONError(buf []byte, code int, reason ReasonCode, detail string) []byte {
	buf = append(buf, `{"error":{"code":`...)
	buf = strconv.AppendInt(buf, int64(code), 10)
	buf = append(buf, `,"reason":"`...)
	buf = append(buf, reason.Reason()...)
	buf = append(buf, `","detail":"`...)
	buf = append(buf, detail...)
	return append(buf, '"', '}', '}', '\n')
}
