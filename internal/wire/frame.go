package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"revnf/internal/core"
)

// Binary framing. A connection opens with a 5-byte preamble — the ASCII
// magic "RVNF" plus a protocol version byte — then carries a sequence of
// frames:
//
//	[u32 little-endian length] [u8 type] [payload]
//
// where length counts the type byte plus the payload (so length ≥ 1), and
// is bounded by MaxFrameSize so a corrupt length prefix cannot make the
// reader buffer gigabytes. Payload integers are little-endian; floats are
// IEEE-754 bits.
//
// Frame types:
//
//	FrameRequest  (client→server): u32 vnf, u32 arrival, u32 duration,
//	                               f64 reliability, f64 payment,
//	                               u8 scheme (v2)     (28 or 29 bytes)
//	FrameDecision (server→client): u64 id, u32 slot, u8 flags (bit0 =
//	                               admitted), u8 reason code    (14 bytes)
//	FrameError    (server→client): u16 status code, u8 reason code,
//	                               u16 detail length, detail bytes
//
// Protocol v2 appended a trailing scheme byte to FrameRequest: the
// core.Scheme value the request pins, 0 for no preference. Decoders
// accept both payload sizes, so v1 senders keep working against v2
// servers (their requests simply carry no scheme pin).
//
// A FrameError is terminal: the server sends one and closes the
// connection.
const (
	// Magic opens every binary-framed connection.
	Magic = "RVNF"
	// Version is the current protocol version carried after the magic.
	// Version 1 preambles are still accepted: the only v2 change is the
	// optional request scheme byte, which the request decoder detects by
	// payload size.
	Version = 2

	// FrameRequest carries one admission request.
	FrameRequest = 0x01
	// FrameDecision carries one admission decision.
	FrameDecision = 0x02
	// FrameError carries a terminal error; the sender closes after it.
	FrameError = 0x03

	// MaxFrameSize bounds the length prefix (type byte + payload).
	MaxFrameSize = 1 << 16

	preambleSize         = 5
	headerSize           = 5 // u32 length + u8 type
	requestPayloadSizeV1 = 28
	requestPayloadSize   = 29 // v1 payload + u8 scheme
	decisionPayloadSize  = 14
	errorHeaderSize      = 5 // u16 code + u8 reason + u16 detail length

)

// maxFrameInt bounds the integer request fields a frame can carry.
const maxFrameInt int64 = math.MaxUint32

// Typed framing errors. Decoders return these (possibly wrapped with
// detail) for malformed input; they never panic.
var (
	// ErrBadMagic reports a connection preamble without the RVNF magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrBadVersion reports an unsupported protocol version.
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	// ErrBadFrame reports a frame header with an out-of-bounds length.
	ErrBadFrame = errors.New("wire: bad frame length")
	// ErrBadType reports an unknown frame type.
	ErrBadType = errors.New("wire: unknown frame type")
	// ErrBadPayload reports a payload whose size or contents do not match
	// its frame type.
	ErrBadPayload = errors.New("wire: bad frame payload")
	// ErrRange reports a request field outside the frame encoding's range.
	ErrRange = errors.New("wire: field out of range")
)

// AppendPreamble appends the connection preamble.
func AppendPreamble(buf []byte) []byte {
	return append(append(buf, Magic...), Version)
}

// ReadPreamble consumes and validates the 5-byte connection preamble.
func ReadPreamble(r io.Reader) error {
	var p [preambleSize]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return fmt.Errorf("wire: reading preamble: %w", err)
	}
	if string(p[:4]) != Magic {
		return ErrBadMagic
	}
	// v1 connections are accepted unchanged: every v1 frame is also a
	// valid v2 frame (the request scheme byte is optional).
	if p[4] != Version && p[4] != 1 {
		return fmt.Errorf("%w: %d", ErrBadVersion, p[4])
	}
	return nil
}

// FrameReader reads frames from a stream into a reusable payload buffer.
// Not safe for concurrent use.
type FrameReader struct {
	r   io.Reader
	hdr [headerSize]byte
	buf []byte
}

// NewFrameReader returns a FrameReader over r. Wrap r in a bufio.Reader
// for byte-at-a-time transports; the FrameReader itself does not buffer
// beyond one frame.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 512)}
}

// Next reads one frame and returns its type and payload. The payload
// slice aliases the reader's internal buffer and is valid only until the
// next call. io.EOF is returned clean at a frame boundary;
// io.ErrUnexpectedEOF mid-frame.
func (fr *FrameReader) Next() (frameType byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	length := binary.LittleEndian.Uint32(fr.hdr[:4])
	if length < 1 || length > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w: %d", ErrBadFrame, length)
	}
	frameType = fr.hdr[4]
	n := int(length) - 1
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	payload = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: reading frame payload: %w", io.ErrUnexpectedEOF)
	}
	return frameType, payload, nil
}

// DecodeRequest decodes a FrameRequest payload into req, accepting both
// the 28-byte v1 layout (no scheme pin) and the 29-byte v2 layout whose
// trailing byte is the pinned core.Scheme value (0 for none). Zero heap
// allocations.
func DecodeRequest(payload []byte, req *Request) error {
	if len(payload) != requestPayloadSizeV1 && len(payload) != requestPayloadSize {
		return fmt.Errorf("%w: request payload %d bytes, want %d or %d",
			ErrBadPayload, len(payload), requestPayloadSizeV1, requestPayloadSize)
	}
	req.VNF = int(binary.LittleEndian.Uint32(payload[0:4]))
	req.Arrival = int(binary.LittleEndian.Uint32(payload[4:8]))
	req.Duration = int(binary.LittleEndian.Uint32(payload[8:12]))
	req.Reliability = math.Float64frombits(binary.LittleEndian.Uint64(payload[12:20]))
	req.Payment = math.Float64frombits(binary.LittleEndian.Uint64(payload[20:28]))
	req.Scheme = ""
	if len(payload) == requestPayloadSize && payload[28] != 0 {
		s := core.Scheme(payload[28])
		if !s.Valid() {
			return fmt.Errorf("%w: scheme byte %d", ErrBadPayload, payload[28])
		}
		req.Scheme = s.Flag()
	}
	return nil
}

// DecodeDecision decodes a FrameDecision payload into d.
func DecodeDecision(payload []byte, d *Decision) error {
	if len(payload) != decisionPayloadSize {
		return fmt.Errorf("%w: decision payload %d bytes, want %d",
			ErrBadPayload, len(payload), decisionPayloadSize)
	}
	d.ID = binary.LittleEndian.Uint64(payload[0:8])
	d.Slot = int(binary.LittleEndian.Uint32(payload[8:12]))
	d.Admitted = payload[12]&1 != 0
	d.Reason = ReasonCode(payload[13])
	return nil
}

// DecodeError decodes a FrameError payload. The detail slice aliases the
// payload.
func DecodeError(payload []byte) (code int, reason ReasonCode, detail []byte, err error) {
	if len(payload) < errorHeaderSize {
		return 0, 0, nil, fmt.Errorf("%w: error payload %d bytes, want ≥ %d",
			ErrBadPayload, len(payload), errorHeaderSize)
	}
	code = int(binary.LittleEndian.Uint16(payload[0:2]))
	reason = ReasonCode(payload[2])
	n := int(binary.LittleEndian.Uint16(payload[3:5]))
	if len(payload) != errorHeaderSize+n {
		return 0, 0, nil, fmt.Errorf("%w: error detail %d bytes, header says %d",
			ErrBadPayload, len(payload)-errorHeaderSize, n)
	}
	return code, reason, payload[errorHeaderSize:], nil
}

// AppendRequestFrame appends a complete v2 FrameRequest (header +
// payload). Integer fields must fit uint32 and be non-negative, and a
// non-empty Scheme must parse (ErrRange otherwise).
func AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	if req.VNF < 0 || int64(req.VNF) > maxFrameInt ||
		req.Arrival < 0 || int64(req.Arrival) > maxFrameInt ||
		req.Duration < 0 || int64(req.Duration) > maxFrameInt {
		return buf, fmt.Errorf("%w: vnf %d arrival %d duration %d",
			ErrRange, req.VNF, req.Arrival, req.Duration)
	}
	var scheme byte
	if req.Scheme != "" {
		s, err := core.ParseScheme(req.Scheme)
		if err != nil {
			return buf, fmt.Errorf("%w: scheme %q", ErrRange, req.Scheme)
		}
		scheme = byte(s)
	}
	buf = appendHeader(buf, FrameRequest, requestPayloadSize)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.VNF))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Arrival))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(req.Duration))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(req.Reliability))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(req.Payment))
	return append(buf, scheme), nil
}

// AppendDecisionFrame appends a complete FrameDecision. Slots outside
// uint32 saturate (a decision slot beyond 2^32 cannot occur in practice).
func AppendDecisionFrame(buf []byte, d *Decision) []byte {
	buf = appendHeader(buf, FrameDecision, decisionPayloadSize)
	buf = binary.LittleEndian.AppendUint64(buf, d.ID)
	slot := int64(d.Slot)
	if slot < 0 {
		slot = 0
	} else if slot > maxFrameInt {
		slot = maxFrameInt
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(slot))
	var flags byte
	if d.Admitted {
		flags |= 1
	}
	return append(buf, flags, byte(d.Reason))
}

// AppendErrorFrame appends a complete FrameError. Over-long detail is
// truncated to fit the frame.
func AppendErrorFrame(buf []byte, code int, reason ReasonCode, detail string) []byte {
	const maxDetail = MaxFrameSize - 1 - errorHeaderSize
	if len(detail) > maxDetail {
		detail = detail[:maxDetail]
	}
	buf = appendHeader(buf, FrameError, errorHeaderSize+len(detail))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(code))
	buf = append(buf, byte(reason))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(detail)))
	return append(buf, detail...)
}

func appendHeader(buf []byte, frameType byte, payloadLen int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+payloadLen))
	return append(buf, frameType)
}
