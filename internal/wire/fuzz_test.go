package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame reader and the
// per-type payload decoders. The contract under fuzzing: typed errors or
// valid frames, never a panic, never an over-read past the input, and
// bounded buffering regardless of what the length prefix claims.
func FuzzDecodeFrame(f *testing.F) {
	seed, _ := AppendRequestFrame(nil, &Request{VNF: 3, Duration: 5, Reliability: 0.95, Payment: 12.5})
	f.Add(seed)
	f.Add(AppendDecisionFrame(nil, &Decision{ID: 9, Slot: 2, Admitted: true}))
	f.Add(AppendErrorFrame(nil, 503, ReasonClosed, "shutting down"))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{1, 0, 0, 0, FrameRequest})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: each frame consumes ≥ headerSize bytes
			typ, payload, err := fr.Next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
					errors.Is(err, ErrBadFrame) {
					return
				}
				t.Fatalf("Next: untyped error %v", err)
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("payload %d bytes exceeds MaxFrameSize", len(payload))
			}
			switch typ {
			case FrameRequest:
				var req Request
				if err := DecodeRequest(payload, &req); err != nil && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("DecodeRequest: untyped error %v", err)
				}
			case FrameDecision:
				var d Decision
				if err := DecodeDecision(payload, &d); err != nil && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("DecodeDecision: untyped error %v", err)
				}
			case FrameError:
				if _, _, _, err := DecodeError(payload); err != nil && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("DecodeError: untyped error %v", err)
				}
			}
		}
	})
}

// FuzzDecodeNDJSON fuzzes both NDJSON line parsers. Every outcome must be
// a clean decode or a typed error — no panics, and a successful request
// decode must survive a re-encode/re-decode round trip.
func FuzzDecodeNDJSON(f *testing.F) {
	f.Add([]byte(`{"vnf":3,"reliability":0.95,"arrival":0,"duration":5,"payment":12.5}`))
	f.Add([]byte(`{"id":1,"admitted":true,"slot":1}`))
	f.Add([]byte(`{"id":2,"admitted":false,"reason":"declined","slot":1}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"vnf":`))
	f.Add([]byte(`{"reliability":1e309}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		var req Request
		if err := DecodeNDJSONRequest(line, &req); err != nil {
			if !errors.Is(err, ErrBadJSON) && !errors.Is(err, ErrUnknownField) {
				t.Fatalf("DecodeNDJSONRequest: untyped error %v", err)
			}
		} else {
			var again Request
			if err := DecodeNDJSONRequest(AppendNDJSONRequest(nil, &req), &again); err != nil {
				t.Fatalf("re-decode of re-encoded %+v: %v", req, err)
			} else if again != req {
				t.Fatalf("round trip %+v != %+v", again, req)
			}
		}
		var d Decision
		if err := DecodeNDJSONDecision(line, &d); err != nil {
			if !errors.Is(err, ErrBadJSON) && !errors.Is(err, ErrUnknownField) {
				t.Fatalf("DecodeNDJSONDecision: untyped error %v", err)
			}
		}
	})
}
