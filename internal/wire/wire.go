// Package wire implements the streaming admission protocols the daemon
// serves on its persistent-connection listener: newline-delimited JSON
// (self-describing, debuggable with netcat) and a compact length-prefixed
// binary framing (the fast path). Both carry the same request/decision
// schema as the HTTP/JSON API, so a request stream produces bit-identical
// decisions regardless of ingress protocol — the serve layer's golden
// tests pin this.
//
// # Hot-path contract
//
// The decoders are built for the ingest hot path:
//
//   - DecodeRequest (binary frame) performs zero heap allocations per
//     request;
//   - DecodeNDJSONRequest performs at most two (both inside
//     strconv.ParseFloat's error-free path they are zero in practice);
//   - the Append* encoders write into caller-provided buffers and
//     allocate only to grow them.
//
// Allocation budgets are enforced by testing.AllocsPerRun regression
// tests, and both decoders are fuzzed: malformed input must yield a typed
// error (ErrBadFrame, ErrBadPayload, ErrBadJSON, ...), never a panic or
// an over-read.
//
// # Reason codes
//
// Decisions and errors carry a one-byte ReasonCode mirroring the
// trace.Reason vocabulary, so the binary protocol does not ship strings
// per decision. CodeForReason / ReasonCode.Reason convert at the edges.
package wire

import "revnf/internal/trace"

// Request is one admission request on the wire. It mirrors the serve
// layer's AdmissionRequest field-for-field (the serve layer converts with
// a struct copy), so streamed and HTTP-posted requests decode to the same
// values.
type Request struct {
	VNF         int
	Arrival     int
	Duration    int
	Reliability float64
	Payment     float64
	// Scheme optionally pins the redundancy scheme the request demands
	// (canonical flag spelling, e.g. "shared"); empty accepts whatever the
	// daemon runs. On the binary framing it travels as a one-byte
	// core.Scheme value (protocol v2); v1 frames leave it empty.
	Scheme string
}

// Decision is one admission decision on the wire.
type Decision struct {
	ID       uint64
	Slot     int
	Admitted bool
	Reason   ReasonCode
}

// ReasonCode is the one-byte wire encoding of an engine-level
// trace.Reason. Zero means "no reason" (an admitted decision).
type ReasonCode uint8

// Engine-level reason codes. The numbering is part of the wire protocol;
// append only.
const (
	ReasonNone       ReasonCode = 0
	ReasonInvalid    ReasonCode = 1
	ReasonStale      ReasonCode = 2
	ReasonHorizon    ReasonCode = 3
	ReasonDeclined   ReasonCode = 4
	ReasonOverbooked ReasonCode = 5
	ReasonConflict   ReasonCode = 6
	ReasonQueueFull  ReasonCode = 7
	ReasonClosed     ReasonCode = 8
	ReasonCanceled   ReasonCode = 9
	ReasonNotFound   ReasonCode = 10
	ReasonInternal   ReasonCode = 11
	// ReasonSchemeUnavailable marks requests pinning a scheme the daemon
	// does not run (protocol v2; v1 receivers see it as an unknown code).
	ReasonSchemeUnavailable ReasonCode = 12
	// ReasonUnknown transports a reason string minted after this protocol
	// revision; receivers should treat it as an unspecified rejection.
	ReasonUnknown ReasonCode = 255
)

var codeToReason = map[ReasonCode]trace.Reason{
	ReasonInvalid:    trace.ReasonInvalid,
	ReasonStale:      trace.ReasonStale,
	ReasonHorizon:    trace.ReasonHorizon,
	ReasonDeclined:   trace.ReasonDeclined,
	ReasonOverbooked: trace.ReasonOverbooked,
	ReasonConflict:   trace.ReasonConflict,
	ReasonQueueFull:  trace.ReasonQueueFull,
	ReasonClosed:     trace.ReasonClosed,
	ReasonCanceled:   trace.ReasonCanceled,
	ReasonNotFound:   trace.ReasonNotFound,
	ReasonInternal:   trace.ReasonInternal,

	ReasonSchemeUnavailable: trace.ReasonSchemeUnavailable,
}

var reasonToCode = func() map[trace.Reason]ReasonCode {
	m := make(map[trace.Reason]ReasonCode, len(codeToReason))
	for c, r := range codeToReason {
		m[r] = c
	}
	return m
}()

// CodeForReason maps a trace.Reason string to its wire code. An empty
// reason maps to ReasonNone; a string outside the engine vocabulary maps
// to ReasonUnknown.
func CodeForReason(reason string) ReasonCode {
	if reason == "" {
		return ReasonNone
	}
	if c, ok := reasonToCode[trace.Reason(reason)]; ok {
		return c
	}
	return ReasonUnknown
}

// Reason returns the canonical trace.Reason string for the code: "" for
// ReasonNone, "unknown" for codes outside the table.
func (c ReasonCode) Reason() string {
	if c == ReasonNone {
		return ""
	}
	if r, ok := codeToReason[c]; ok {
		return string(r)
	}
	return "unknown"
}
