// Package shared implements the shared-backup scheme: a primal-dual
// admission algorithm in which each admitted request places one primary
// instance in a cloudlet and joins a backup group — a single pooled backup
// instance on a second cloudlet shared by up to k concurrently active
// members.
//
// The scheme goes beyond the paper's two dedicated schemes (on-site and
// off-site) following the backup-sharing literature cited in PAPERS.md: a
// pooled backup is only as available as the probability it is free when
// *this* member's active path fails, which the occupancy model of
// core.SharedReliabilityK accounts for with a Binomial contender count.
// Admission always prices and validates at full pool capacity k, so a
// member admitted into a half-empty group can never be invalidated by
// later joiners, and a singleton group is exactly a dedicated
// two-cloudlet off-site placement.
//
// Pricing follows the primal-dual template of Algorithms 1–2: dual prices
// λ_{tj} per (slot, cloudlet), a candidate (primary a, backup b) pair
// costs the full primary demand on a plus the backup demand on b
// amortized by 1/k — the pool's marginal footprint per expected member —
// and the argmin pair is admitted when its cost is below the payment.
// Commit applies the Eq. (34)-style update with the same unit counts
// (full on the primary, 1/k on the backup), so a pooled backup inflates
// its cloudlet's prices k times slower than a dedicated instance would:
// the dual-price amortization argument of DESIGN.md §13.
package shared

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"revnf/internal/core"
	"revnf/internal/trace"
)

// Errors returned by the constructor.
var (
	ErrBadNetwork  = errors.New("shared: invalid network")
	ErrBadHorizon  = errors.New("shared: invalid horizon")
	ErrBadPoolSize = errors.New("shared: invalid pool size")
)

// groupKey identifies the pool a member may join: backup groups are
// homogeneous in (backup cloudlet, VNF type) — same pooled instance
// footprint and failure model — while members' primaries may sit on any
// cloudlet, because availability is validated with peers contending at
// the network-wide floor (core.SharedContentionFloor). Opening membership
// to every primary is what makes pools actually fill: keying on the
// primary too would fragment the m·|F| keys into m²·|F|.
type groupKey struct {
	backup, vnf int
}

// group tracks one backup group's membership for join decisions: the
// per-slot count of concurrently active members (a member counts toward
// every slot of its window) and the furthest slot any member covers.
type group struct {
	id  int
	key groupKey
	ref map[int]int // slot → concurrently active members; protected by Scheduler.mu
	end int         // max covered slot; stale groups (end < arrival) are retired
}

// Scheduler is the shared-scheme primal-dual scheduler. It implements
// core.TwoPhaseScheduler: Propose reads dual prices and group state under
// the read lock without mutating anything; Commit applies the dual
// updates and the group join under the write lock. ConcurrentPropose
// reports false — a proposal carries a tentative group ID whose
// uniqueness needs the Propose→Commit pairs serialized — so engines drive
// it through their serial path.
type Scheduler struct {
	network  *core.Network
	horizon  int
	poolSize int
	rel      *core.ReliabilityTable
	// mu guards lambda, base, lstart, groups, open, and nextGroup:
	// Propose reads, Commit and AdvanceWindow write.
	mu sync.RWMutex
	// lambda[j] is a ring of dual prices: λ_{tj} lives at ring index
	// lstart + (t - base) mod horizon, exactly the off-site layout.
	lambda [][]float64 // guarded by mu
	base   int         // guarded by mu
	lstart int         // guarded by mu
	// groups holds the joinable backup groups; open indexes their IDs per
	// key in ascending order (the join scan is deterministic).
	groups    map[int]*group     // guarded by mu
	open      map[groupKey][]int // guarded by mu
	nextGroup int                // guarded by mu
	name      string
	rec       trace.Recorder
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithName overrides the reported algorithm name.
func WithName(name string) Option {
	return func(s *Scheduler) { s.name = name }
}

// WithRecorder injects the decision-trace sink Propose emits into. A nil
// recorder keeps the no-op default. Tracing never changes decisions.
func WithRecorder(r trace.Recorder) Option {
	return func(s *Scheduler) {
		if r != nil {
			s.rec = r
		}
	}
}

// WithPoolSize sets the pool capacity k (default
// core.DefaultSharedPoolSize): up to k members share one backup instance,
// and every admission is validated at full k.
func WithPoolSize(k int) Option {
	return func(s *Scheduler) { s.poolSize = k }
}

// NewScheduler creates a shared-scheme scheduler.
func NewScheduler(network *core.Network, horizon int, opts ...Option) (*Scheduler, error) {
	if network == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadNetwork)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	rel, err := core.NewReliabilityTable(network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	s := &Scheduler{
		network:   network,
		horizon:   horizon,
		poolSize:  core.DefaultSharedPoolSize,
		rel:       rel,
		lambda:    make([][]float64, len(network.Cloudlets)),
		groups:    make(map[int]*group),
		open:      make(map[groupKey][]int),
		nextGroup: 1,
		name:      "pd-shared",
		rec:       trace.Nop,
		base:      1,
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.poolSize < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadPoolSize, s.poolSize)
	}
	return s, nil
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// Scheme implements core.Scheduler.
func (s *Scheduler) Scheme() core.Scheme { return core.Shared }

// PoolSize returns the pool capacity k the scheduler admits against.
func (s *Scheduler) PoolSize() int { return s.poolSize }

// Lambda implements core.LambdaReader: the current dual price λ_{tj}, or
// 0 for a slot outside the live window.
func (s *Scheduler) Lambda(cloudlet, slot int) float64 {
	if cloudlet < 0 || cloudlet >= len(s.lambda) {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot < s.base || slot > s.base+s.horizon-1 {
		return 0
	}
	return s.lambda[cloudlet][s.lidx(slot)]
}

// lidx maps an in-window absolute slot onto its λ ring index. Caller
// holds mu (either side) and has range-checked slot.
func (s *Scheduler) lidx(slot int) int {
	i := s.lstart + (slot - s.base)
	if i >= s.horizon {
		i -= s.horizon
	}
	return i
}

// AdvanceWindow implements core.WindowAdvancer exactly as the off-site
// scheduler does for λ, and additionally retires backup groups whose
// coverage ended before the new base — they can never be joined by a
// request arriving inside the window, and dropping them keeps group state
// bounded in continuous operation.
func (s *Scheduler) AdvanceWindow(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base <= s.base {
		return
	}
	retire := base - s.base
	n := retire
	if n > s.horizon {
		n = s.horizon
	}
	for j := range s.lambda {
		i := s.lstart
		for k := 0; k < n; k++ {
			s.lambda[j][i] = 0
			if i++; i == s.horizon {
				i = 0
			}
		}
	}
	s.lstart = (s.lstart + retire%s.horizon) % s.horizon
	s.base = base
	s.retireLocked(base)
}

// retireLocked drops groups whose last covered slot is before limit from
// the join index. Caller holds the write lock.
func (s *Scheduler) retireLocked(limit int) {
	for id, g := range s.groups {
		if g.end >= limit {
			continue
		}
		delete(s.groups, id)
		ids := s.open[g.key]
		for i, oid := range ids {
			if oid == id {
				s.open[g.key] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(s.open[g.key]) == 0 {
			delete(s.open, g.key)
		}
	}
}

// joinInfo caches one backup cloudlet's join resolution within a single
// Propose scan.
type joinInfo struct {
	resolved  bool
	gid       int
	isNew     bool
	uncovered float64
	ok        bool
}

// pairCandidate is one (primary, backup) pair surviving the filters.
type pairCandidate struct {
	primary, backup int
	cost            float64
	groupID         int  // group to join, or the tentative new-group ID
	newGroup        bool // true when groupID would be freshly created
}

// better reports whether c should replace cur as the admitted pair:
// strictly cheaper wins; on a cost tie a join beats opening a new group
// (pooling is the scheme's whole capacity advantage, and the tie is the
// common λ = 0 early regime), then lowest (primary, backup) for
// determinism.
func (c pairCandidate) better(cur pairCandidate, found bool) bool {
	if !found || c.cost < cur.cost {
		return true
	}
	if c.cost > cur.cost {
		return false
	}
	if c.newGroup != cur.newGroup {
		return !c.newGroup
	}
	if c.primary != cur.primary {
		return c.primary < cur.primary
	}
	return c.backup < cur.backup
}

// Decide implements core.Scheduler: Propose immediately followed by
// Commit.
func (s *Scheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	p, ok := s.Propose(req, view)
	if !ok {
		return core.Placement{}, false
	}
	s.Commit(req, p)
	return p, true
}

// Propose implements core.TwoPhaseScheduler: it scans every (primary,
// backup) cloudlet pair that meets the requirement at full pool capacity,
// prices each at full primary demand plus the backup's MARGINAL footprint
// — dual prices only on the slots a joinable group does not already
// cover, amortized by 1/k — and admits the cheapest pair whose cost is
// under the payment. Marginal pricing is what makes the scheme pool in
// practice: a pair with an overlapping group is almost free on the backup
// side, so the argmin gravitates to existing groups instead of scattering
// over untouched cloudlet pairs. Scheduler state is read under the read
// lock and never mutated.
func (s *Scheduler) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := s.rec.Sample(req.ID)
	vnf := s.network.Catalog[req.VNF]
	demand := vnf.Demand
	k := s.poolSize
	var cands []trace.Candidate
	if tracing {
		cands = make([]trace.Candidate, len(s.network.Cloudlets))
		for j := range cands {
			cands[j] = trace.Candidate{Cloudlet: j, Skip: trace.SkipReliability}
		}
	}
	s.mu.RLock()
	if req.Arrival < s.base || req.End() > s.base+s.horizon-1 {
		s.mu.RUnlock()
		if tracing {
			s.recordHorizon(req)
		}
		return core.Placement{}, false
	}
	// Per-cloudlet dual-price sums over the window, computed once and
	// reused for every pair.
	sums := make([]float64, len(s.network.Cloudlets))
	for j := range s.network.Cloudlets {
		sum := 0.0
		i := s.lidx(req.Arrival)
		for t := req.Arrival; t <= req.End(); t++ {
			sum += s.lambda[j][i]
			if i++; i == s.horizon {
				i = 0
			}
		}
		sums[j] = sum
	}
	best := pairCandidate{primary: -1, backup: -1}
	found := false
	anyFeasible := false
	anyCapacity := false
	// Join info depends only on the backup cloudlet; resolve each lazily
	// and share it across every primary.
	joins := make([]joinInfo, len(s.network.Cloudlets))
	for a := range s.network.Cloudlets {
		primaryOK := view.ResidualWindow(a, req.Arrival, req.Duration) >= demand
		bestForA := -1.0
		for b := range s.network.Cloudlets {
			if !s.rel.SharedFeasible(req.VNF, a, b, k, req.Reliability) {
				continue
			}
			anyFeasible = true
			if tracing && cands[a].Skip == trace.SkipReliability {
				cands[a] = trace.Candidate{Cloudlet: a, Instances: 1}
			}
			if !primaryOK {
				continue
			}
			if !joins[b].resolved {
				joins[b].gid, joins[b].isNew, joins[b].uncovered, joins[b].ok =
					s.joinableLocked(groupKey{b, req.VNF}, req, view, demand)
				joins[b].resolved = true
			}
			gid, isNew, uncovered, ok := joins[b].gid, joins[b].isNew, joins[b].uncovered, joins[b].ok
			if !ok {
				continue
			}
			anyCapacity = true
			// Cost: full primary units on a, backup units only on the
			// slots the group does not already cover, amortized over the
			// pool capacity.
			cost := float64(demand)*sums[a] + float64(demand)*uncovered/float64(k)
			if tracing && (bestForA < 0 || cost < bestForA) {
				bestForA = cost
				cands[a].DualCost = cost
				cands[a].Skip = ""
				cands[a].Residual = view.ResidualWindow(a, req.Arrival, req.Duration)
			}
			cand := pairCandidate{primary: a, backup: b, cost: cost, groupID: gid, newGroup: isNew}
			if cand.better(best, found) {
				best = cand
				found = true
			}
		}
		if tracing && bestForA < 0 && cands[a].Skip == "" {
			cands[a].Skip = trace.SkipCapacity
		}
	}
	s.mu.RUnlock()
	admit := found && req.Payment-best.cost > 0
	if tracing {
		s.recordPropose(req, cands, best, found, anyFeasible, anyCapacity, admit)
	}
	if !admit {
		return core.Placement{}, false
	}
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.Shared,
		Assignments: []core.Assignment{{Cloudlet: best.primary, Instances: 1}},
		Backup: &core.SharedBackup{
			Group:    best.groupID,
			Cloudlet: best.backup,
			PoolSize: k,
		},
	}, true
}

// joinableLocked finds the group the request would join for the key, or
// proposes a fresh group ID. A group is joinable when every slot of the
// request's window has fewer than k concurrently active members and the
// slots the group does not already cover have marginal backup capacity.
// Opening a new group needs backup capacity over the whole window. The
// returned uncovered value is the backup cloudlet's dual-price sum over
// the slots the chosen group does not cover (the whole window for a new
// group) — the marginal footprint the pair is priced by. Among joinable
// groups the one with the cheapest marginal footprint wins. Caller holds
// mu (read side).
func (s *Scheduler) joinableLocked(key groupKey, req core.Request, view core.CapacityView, demand int) (id int, isNew bool, uncovered float64, ok bool) {
	bestGid, bestSum, foundJoin := 0, 0.0, false
	for _, gid := range s.open[key] {
		g := s.groups[gid]
		if g.end < req.Arrival {
			// Stale group: never joinable by an in-order arrival stream;
			// Commit retires these lazily.
			continue
		}
		fits := true
		sum := 0.0
		i := s.lidx(req.Arrival)
		for t := req.Arrival; t <= req.End() && fits; t++ {
			switch {
			case g.ref[t] >= s.poolSize:
				fits = false
			case g.ref[t] == 0:
				if view.Residual(key.backup, t) < demand {
					fits = false
				}
				sum += s.lambda[key.backup][i]
			}
			if i++; i == s.horizon {
				i = 0
			}
		}
		if fits && (!foundJoin || sum < bestSum) {
			bestGid, bestSum, foundJoin = gid, sum, true
		}
	}
	if foundJoin {
		return bestGid, false, bestSum, true
	}
	if view.ResidualWindow(key.backup, req.Arrival, req.Duration) < demand {
		return 0, false, 0, false
	}
	sum := 0.0
	i := s.lidx(req.Arrival)
	for t := req.Arrival; t <= req.End(); t++ {
		sum += s.lambda[key.backup][i]
		if i++; i == s.horizon {
			i = 0
		}
	}
	return s.nextGroup, true, sum, true
}

// recordHorizon emits the trace for a request rejected before the
// candidate scan.
func (s *Scheduler) recordHorizon(req core.Request) {
	dt := trace.NewDecision(req, s.name, core.Shared.String())
	dt.Attempts = []trace.ProposeTrace{{
		Scheduler: s.name, Scheme: core.Shared.String(),
		BestCloudlet: -1, Payment: req.Payment, Reason: trace.ReasonHorizon,
	}}
	s.rec.Record(dt)
}

// recordPropose emits the trace for one completed evaluation. Candidates
// are indexed by primary cloudlet; each carries the cheapest pair cost
// found for that primary.
func (s *Scheduler) recordPropose(req core.Request, cands []trace.Candidate,
	best pairCandidate, found, anyFeasible, anyCapacity, admit bool) {
	pt := trace.ProposeTrace{
		Scheduler:    s.name,
		Scheme:       core.Shared.String(),
		Candidates:   cands,
		BestCloudlet: -1,
		Payment:      req.Payment,
		Admit:        admit,
	}
	if found {
		pt.BestCloudlet = best.primary
		pt.BestCost = best.cost
	}
	if !admit {
		switch {
		case !anyFeasible, !anyCapacity:
			pt.Reason = trace.ReasonNoFeasibleCloudlet
		default:
			pt.Reason = trace.ReasonPricedOut
		}
	} else {
		cands[best.primary].Chosen = true
	}
	dt := trace.NewDecision(req, s.name, core.Shared.String())
	dt.Attempts = []trace.ProposeTrace{pt}
	if admit {
		dt.Assignments = []core.Assignment{{Cloudlet: best.primary, Instances: 1}}
	}
	s.rec.Record(dt)
}

// Commit implements core.TwoPhaseScheduler: it joins (or creates) the
// proposal's backup group and applies the amortized dual updates under
// the write lock. The update is the Eq. (34) form with units = c(f) on
// the primary over the whole window, and units = c(f)/k on the backup
// over only the slots this member newly covered — slots the group already
// held consumed no new capacity, so their prices must not move, or joins
// would be overpriced relative to the footprint they actually take:
//
//	λ := λ·(1 + units/cap) + units·pay/(d·cap)
func (s *Scheduler) Commit(req core.Request, p core.Placement) {
	if len(p.Assignments) != 1 || p.Backup == nil {
		return
	}
	primary := p.Assignments[0].Cloudlet
	backup := p.Backup.Cloudlet
	demand := float64(s.network.Catalog[req.VNF].Demand)
	s.mu.Lock()
	defer s.mu.Unlock()
	covered := s.joinGroupLocked(groupKey{backup, req.VNF}, p.Backup.Group, req)
	s.retireLocked(req.Arrival)
	lo, hi := req.Arrival, req.End()
	if lo < s.base {
		lo = s.base
	}
	if max := s.base + s.horizon - 1; hi > max {
		hi = max
	}
	if lo > hi {
		return
	}
	s.bumpLocked(primary, demand, req, lo, hi, nil)
	s.bumpLocked(backup, demand/float64(s.poolSize), req, lo, hi, covered)
}

// bumpLocked applies the dual update for units on one cloudlet's window.
// A non-nil slots set restricts the update to those slots within the
// clamped range. Caller holds the write lock and has clamped [lo, hi] to
// the live window.
func (s *Scheduler) bumpLocked(cloudlet int, units float64, req core.Request, lo, hi int, slots map[int]bool) {
	capj := float64(s.network.Cloudlets[cloudlet].Capacity)
	growth := 1 + units/capj
	additive := units * req.Payment / (float64(req.Duration) * capj)
	i := s.lidx(lo)
	for t := lo; t <= hi; t++ {
		if slots == nil || slots[t] {
			s.lambda[cloudlet][i] = s.lambda[cloudlet][i]*growth + additive
		}
		if i++; i == s.horizon {
			i = 0
		}
	}
}

// joinGroupLocked records the request's membership: joining increments
// the per-slot active counts of the existing group; a tentative new ID
// creates the group. It returns the set of slots this member newly
// covered (refcount 0 → 1) — the slots whose backup capacity the member
// actually consumed, which Commit restricts the backup dual update to. A
// tentative ID that no longer matches (a foreign group appeared under it,
// which serialized Propose→Commit pairs never produce) falls back to a
// fresh ID — the placement's recorded group then differs from scheduler
// bookkeeping, which only affects future join density, never
// availability. Caller holds the write lock.
func (s *Scheduler) joinGroupLocked(key groupKey, gid int, req core.Request) map[int]bool {
	g, ok := s.groups[gid]
	if ok && g.key != key {
		g, ok = nil, false
		gid = s.nextGroup
	}
	if !ok {
		g = &group{id: gid, key: key, ref: make(map[int]int)}
		s.groups[gid] = g
		ids := s.open[key]
		pos := sort.SearchInts(ids, gid)
		ids = append(ids, 0)
		copy(ids[pos+1:], ids[pos:])
		ids[pos] = gid
		s.open[key] = ids
		if gid >= s.nextGroup {
			s.nextGroup = gid + 1
		}
	}
	covered := make(map[int]bool, req.Duration)
	for t := req.Arrival; t <= req.End(); t++ {
		if g.ref[t] == 0 {
			covered[t] = true
		}
		g.ref[t]++
	}
	if req.End() > g.end {
		g.end = req.End()
	}
	return covered
}

// Abort implements core.TwoPhaseScheduler. Propose acquires nothing, so
// aborting a proposal is a no-op.
func (s *Scheduler) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler: false — proposals
// carry tentative group IDs whose uniqueness requires the Propose→Commit
// pairs to be serialized, so engines must drive this scheduler through
// their serial path.
func (s *Scheduler) ConcurrentPropose() bool { return false }
