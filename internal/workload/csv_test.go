package workload

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"revnf/internal/core"
)

func TestImportCSV(t *testing.T) {
	input := `arrival,duration,vnf,reliability,payment
3,2,firewall,0.92,10.5
1,4,2,0.9,7
2,1,CACHE,0.95,3.25
`
	catalog := DefaultCatalog()
	trace, err := ImportCSV(strings.NewReader(input), catalog, 10)
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if len(trace) != 3 {
		t.Fatalf("trace length = %d, want 3", len(trace))
	}
	// Sorted by arrival and renumbered.
	if trace[0].Arrival != 1 || trace[1].Arrival != 2 || trace[2].Arrival != 3 {
		t.Errorf("trace not sorted: %+v", trace)
	}
	for i, r := range trace {
		if r.ID != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
	}
	// VNF by index (2 = load-balancer) and by case-insensitive name.
	if catalog[trace[0].VNF].Name != "load-balancer" {
		t.Errorf("index VNF resolved to %q", catalog[trace[0].VNF].Name)
	}
	if catalog[trace[1].VNF].Name != "cache" {
		t.Errorf("name VNF resolved to %q", catalog[trace[1].VNF].Name)
	}
	if trace[2].Payment != 10.5 || trace[2].Reliability != 0.92 {
		t.Errorf("fields lost: %+v", trace[2])
	}
}

func TestImportCSVErrors(t *testing.T) {
	catalog := DefaultCatalog()
	cases := []struct {
		name, input string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e\n"},
		{"short header", "arrival,duration\n"},
		{"bad arrival", "arrival,duration,vnf,reliability,payment\nx,1,0,0.9,1\n"},
		{"bad duration", "arrival,duration,vnf,reliability,payment\n1,x,0,0.9,1\n"},
		{"unknown vnf name", "arrival,duration,vnf,reliability,payment\n1,1,nope,0.9,1\n"},
		{"vnf index out of range", "arrival,duration,vnf,reliability,payment\n1,1,99,0.9,1\n"},
		{"bad reliability", "arrival,duration,vnf,reliability,payment\n1,1,0,x,1\n"},
		{"bad payment", "arrival,duration,vnf,reliability,payment\n1,1,0,0.9,x\n"},
		{"reliability out of range", "arrival,duration,vnf,reliability,payment\n1,1,0,1.5,1\n"},
		{"window past horizon", "arrival,duration,vnf,reliability,payment\n9,5,0,0.9,1\n"},
		{"ragged row", "arrival,duration,vnf,reliability,payment\n1,1,0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ImportCSV(strings.NewReader(tc.input), catalog, 10); !errors.Is(err, ErrBadCSV) {
				t.Errorf("err = %v, want ErrBadCSV", err)
			}
		})
	}
	if _, err := ImportCSV(strings.NewReader("x"), nil, 10); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty catalog err = %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	catalog := DefaultCatalog()
	cfg := baseTraceConfig()
	trace, err := GenerateTrace(cfg, catalog, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, catalog, trace); err != nil {
		t.Fatalf("ExportCSV: %v", err)
	}
	got, err := ImportCSV(&buf, catalog, cfg.Horizon)
	if err != nil {
		t.Fatalf("ImportCSV: %v", err)
	}
	if len(got) != len(trace) {
		t.Fatalf("round trip length %d, want %d", len(got), len(trace))
	}
	for i := range trace {
		if got[i] != trace[i] {
			t.Fatalf("request %d differs after round trip:\n%+v\n%+v", i, got[i], trace[i])
		}
	}
}

func TestExportCSVErrors(t *testing.T) {
	catalog := DefaultCatalog()
	badTrace := []core.Request{
		{ID: 0, VNF: 99, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 1},
	}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, catalog, badTrace); !errors.Is(err, ErrBadCSV) {
		t.Errorf("bad VNF err = %v, want ErrBadCSV", err)
	}
}
