// Package workload generates problem instances: VNF catalogs, cloudlet
// fleets, and online request traces. It stands in for the paper's data
// sources — the VNF parameters of [15] (10 types, reliability 0.9–0.9999,
// demand 1–3 computing units) and the Google cluster trace [19] used to
// randomize request arrivals, durations and payments — with reproducible,
// seeded synthetic equivalents exposing the evaluation's H (payment-rate
// variation) and K (cloudlet-reliability variation) knobs directly.
package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"revnf/internal/core"
)

// Errors returned by generators.
var (
	ErrBadConfig = errors.New("workload: invalid configuration")
)

// DefaultCatalog returns the paper's evaluation catalog: 10 VNF types with
// reliabilities spread across [0.9, 0.9999] and demands of 1–3 computing
// units (Section VI-A, citing [15]).
func DefaultCatalog() []core.VNF {
	return []core.VNF{
		{ID: 0, Name: "firewall", Demand: 1, Reliability: 0.9000},
		{ID: 1, Name: "nat", Demand: 1, Reliability: 0.9300},
		{ID: 2, Name: "load-balancer", Demand: 2, Reliability: 0.9500},
		{ID: 3, Name: "ids", Demand: 3, Reliability: 0.9700},
		{ID: 4, Name: "proxy", Demand: 1, Reliability: 0.9800},
		{ID: 5, Name: "wan-optimizer", Demand: 2, Reliability: 0.9900},
		{ID: 6, Name: "dpi", Demand: 3, Reliability: 0.9950},
		{ID: 7, Name: "vpn-gateway", Demand: 2, Reliability: 0.9990},
		{ID: 8, Name: "transcoder", Demand: 3, Reliability: 0.9995},
		{ID: 9, Name: "cache", Demand: 1, Reliability: 0.9999},
	}
}

// CatalogConfig controls RandomCatalog.
type CatalogConfig struct {
	// Types is the number of VNF types to generate.
	Types int
	// MinDemand and MaxDemand bound the per-instance computing demand.
	MinDemand, MaxDemand int
	// MinReliability and MaxReliability bound r(f), each in (0,1).
	MinReliability, MaxReliability float64
}

// Validate checks the configuration ranges.
func (c CatalogConfig) Validate() error {
	if c.Types < 1 {
		return fmt.Errorf("%w: %d VNF types", ErrBadConfig, c.Types)
	}
	if c.MinDemand < 1 || c.MaxDemand < c.MinDemand {
		return fmt.Errorf("%w: demand range [%d,%d]", ErrBadConfig, c.MinDemand, c.MaxDemand)
	}
	if c.MinReliability <= 0 || c.MaxReliability >= 1 || c.MaxReliability < c.MinReliability {
		return fmt.Errorf("%w: reliability range [%v,%v]", ErrBadConfig, c.MinReliability, c.MaxReliability)
	}
	return nil
}

// RandomCatalog generates a catalog with uniformly distributed demands and
// reliabilities within the configured ranges.
func RandomCatalog(cfg CatalogConfig, rng *rand.Rand) ([]core.VNF, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]core.VNF, cfg.Types)
	for i := range out {
		out[i] = core.VNF{
			ID:          i,
			Name:        fmt.Sprintf("vnf-%02d", i),
			Demand:      cfg.MinDemand + rng.Intn(cfg.MaxDemand-cfg.MinDemand+1),
			Reliability: uniform(rng, cfg.MinReliability, cfg.MaxReliability),
		}
	}
	return out, nil
}

// CloudletConfig controls RandomCloudlets. The reliability spread is
// expressed through the paper's K knob: reliabilities are uniform over
// [MaxReliability/K, MaxReliability].
type CloudletConfig struct {
	// Count is the number of cloudlets.
	Count int
	// MinCapacity and MaxCapacity bound cap_j in computing units.
	MinCapacity, MaxCapacity int
	// MaxReliability is rc_max, in (0,1).
	MaxReliability float64
	// K is the reliability variation rc_max/rc_min, ≥ 1 (Section VI-C).
	K float64
	// Sites optionally binds cloudlets to topology nodes; when non-nil it
	// must have Count entries.
	Sites []int
}

// Validate checks the configuration ranges.
func (c CloudletConfig) Validate() error {
	if c.Count < 1 {
		return fmt.Errorf("%w: %d cloudlets", ErrBadConfig, c.Count)
	}
	if c.MinCapacity < 1 || c.MaxCapacity < c.MinCapacity {
		return fmt.Errorf("%w: capacity range [%d,%d]", ErrBadConfig, c.MinCapacity, c.MaxCapacity)
	}
	if c.MaxReliability <= 0 || c.MaxReliability >= 1 {
		return fmt.Errorf("%w: rc_max %v", ErrBadConfig, c.MaxReliability)
	}
	if c.K < 1 {
		return fmt.Errorf("%w: K=%v below 1", ErrBadConfig, c.K)
	}
	if c.MaxReliability/c.K <= 0 {
		return fmt.Errorf("%w: rc_min %v", ErrBadConfig, c.MaxReliability/c.K)
	}
	if c.Sites != nil && len(c.Sites) != c.Count {
		return fmt.Errorf("%w: %d sites for %d cloudlets", ErrBadConfig, len(c.Sites), c.Count)
	}
	return nil
}

// RandomCloudlets generates a cloudlet fleet with uniform capacities in
// [MinCapacity, MaxCapacity] and reliabilities uniform in
// [MaxReliability/K, MaxReliability].
func RandomCloudlets(cfg CloudletConfig, rng *rand.Rand) ([]core.Cloudlet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rcMin := cfg.MaxReliability / cfg.K
	out := make([]core.Cloudlet, cfg.Count)
	for j := range out {
		node := -1
		if cfg.Sites != nil {
			node = cfg.Sites[j]
		}
		out[j] = core.Cloudlet{
			ID:          j,
			Node:        node,
			Capacity:    cfg.MinCapacity + rng.Intn(cfg.MaxCapacity-cfg.MinCapacity+1),
			Reliability: uniform(rng, rcMin, cfg.MaxReliability),
		}
	}
	return out, nil
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + (hi-lo)*rng.Float64()
}
