package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"revnf/internal/core"
)

// ErrBadCSV reports malformed trace CSV input.
var ErrBadCSV = errors.New("workload: malformed trace CSV")

// csvHeader is the canonical column set for request traces. The format is
// the bridge for real traces (the paper randomizes its workload from the
// Google cluster dataset [19]): map each job's submission time to a slot,
// its duration to slots, pick the VNF type, and derive payment from the
// job's priority or billing class.
var csvHeader = []string{"arrival", "duration", "vnf", "reliability", "payment"}

// ImportCSV reads a request trace from CSV with header
// "arrival,duration,vnf,reliability,payment". The vnf column accepts a
// catalog index or a VNF name. Rows are validated against the catalog and
// horizon, sorted by arrival, and re-numbered.
func ImportCSV(r io.Reader, catalog []core.VNF, horizon int) ([]core.Request, error) {
	if len(catalog) == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrBadConfig)
	}
	byName := make(map[string]int, len(catalog))
	for _, f := range catalog {
		byName[strings.ToLower(f.Name)] = f.ID
	}
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	header, err := reader.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrBadCSV, err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("%w: header %v, want %v", ErrBadCSV, header, csvHeader)
	}
	for i, want := range csvHeader {
		if strings.TrimSpace(strings.ToLower(header[i])) != want {
			return nil, fmt.Errorf("%w: column %d is %q, want %q", ErrBadCSV, i, header[i], want)
		}
	}
	var trace []core.Request
	for line := 2; ; line++ {
		record, err := reader.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		arrival, err := strconv.Atoi(strings.TrimSpace(record[0]))
		if err != nil {
			return nil, fmt.Errorf("%w: line %d arrival %q", ErrBadCSV, line, record[0])
		}
		duration, err := strconv.Atoi(strings.TrimSpace(record[1]))
		if err != nil {
			return nil, fmt.Errorf("%w: line %d duration %q", ErrBadCSV, line, record[1])
		}
		vnf, err := resolveVNF(strings.TrimSpace(record[2]), catalog, byName)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadCSV, line, err)
		}
		reliability, err := strconv.ParseFloat(strings.TrimSpace(record[3]), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d reliability %q", ErrBadCSV, line, record[3])
		}
		payment, err := strconv.ParseFloat(strings.TrimSpace(record[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d payment %q", ErrBadCSV, line, record[4])
		}
		trace = append(trace, core.Request{
			VNF:         vnf,
			Reliability: reliability,
			Arrival:     arrival,
			Duration:    duration,
			Payment:     payment,
		})
	}
	sort.SliceStable(trace, func(a, b int) bool { return trace[a].Arrival < trace[b].Arrival })
	network := &core.Network{Catalog: catalog, Cloudlets: []core.Cloudlet{{ID: 0, Capacity: 1, Reliability: 0.5}}}
	for i := range trace {
		trace[i].ID = i
		if err := network.ValidateRequest(trace[i], horizon); err != nil {
			return nil, fmt.Errorf("%w: request %d: %v", ErrBadCSV, i, err)
		}
	}
	return trace, nil
}

func resolveVNF(field string, catalog []core.VNF, byName map[string]int) (int, error) {
	if id, err := strconv.Atoi(field); err == nil {
		if id < 0 || id >= len(catalog) {
			return 0, fmt.Errorf("VNF index %d of %d", id, len(catalog))
		}
		return id, nil
	}
	if id, ok := byName[strings.ToLower(field)]; ok {
		return id, nil
	}
	return 0, fmt.Errorf("unknown VNF %q", field)
}

// ExportCSV writes the trace in the canonical CSV format, with VNFs by
// name.
func ExportCSV(w io.Writer, catalog []core.VNF, trace []core.Request) error {
	writer := csv.NewWriter(w)
	if err := writer.Write(csvHeader); err != nil {
		return fmt.Errorf("workload: write CSV header: %w", err)
	}
	for _, r := range trace {
		if r.VNF < 0 || r.VNF >= len(catalog) {
			return fmt.Errorf("%w: request %d references VNF %d", ErrBadCSV, r.ID, r.VNF)
		}
		record := []string{
			strconv.Itoa(r.Arrival),
			strconv.Itoa(r.Duration),
			catalog[r.VNF].Name,
			strconv.FormatFloat(r.Reliability, 'g', -1, 64),
			strconv.FormatFloat(r.Payment, 'g', -1, 64),
		}
		if err := writer.Write(record); err != nil {
			return fmt.Errorf("workload: write CSV record: %w", err)
		}
	}
	writer.Flush()
	if err := writer.Error(); err != nil {
		return fmt.Errorf("workload: flush CSV: %w", err)
	}
	return nil
}
