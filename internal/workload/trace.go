package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"revnf/internal/core"
)

// ArrivalModel selects how request arrival slots are drawn.
type ArrivalModel int

// Arrival models.
const (
	// ArrivalUniform draws the arrival slot uniformly over the window in
	// which the request still finishes before the horizon.
	ArrivalUniform ArrivalModel = iota + 1
	// ArrivalPoisson spreads arrivals as a Poisson process with rate
	// chosen so the expected request count over the horizon matches; the
	// resulting burstiness mimics trace-driven arrivals.
	ArrivalPoisson
	// ArrivalDiurnal draws arrivals from a sinusoidal day/night intensity
	// profile (peak at mid-horizon, trough at the edges), the load shape
	// of human-driven IoT workloads.
	ArrivalDiurnal
)

// DurationModel selects the request duration distribution.
type DurationModel int

// Duration models.
const (
	// DurationUniform draws durations uniformly over [Min, Max].
	DurationUniform DurationModel = iota + 1
	// DurationPareto draws durations from a bounded Pareto distribution
	// (shape 1.5) over [Min, Max]: most requests are short with a heavy
	// tail of long ones, matching the Google cluster trace's job-length
	// shape [19].
	DurationPareto
)

// TraceConfig controls GenerateTrace.
type TraceConfig struct {
	// Requests is the number of requests in the trace.
	Requests int
	// Horizon is T, the number of slots; every request finishes by T.
	Horizon int
	// Arrivals selects the arrival process (default ArrivalUniform).
	Arrivals ArrivalModel
	// Durations selects the duration distribution (default
	// DurationUniform).
	Durations DurationModel
	// MinDuration and MaxDuration bound request durations in slots.
	MinDuration, MaxDuration int
	// MinRequirement and MaxRequirement bound the reliability requirement
	// R, each in (0,1). Keep MaxRequirement below the smallest cloudlet
	// reliability to preserve the paper's on-site feasibility assumption
	// r(c_j) > R_i.
	MinRequirement, MaxRequirement float64
	// MaxPaymentRate is pr_max. Payment rates are uniform over
	// [pr_max/H, pr_max] and pay = pr·d·c(f)·R (Section VI-A).
	MaxPaymentRate float64
	// H is the payment-rate variation pr_max/pr_min, ≥ 1.
	H float64
}

// Validate checks the configuration ranges.
func (c TraceConfig) Validate() error {
	if c.Requests < 1 {
		return fmt.Errorf("%w: %d requests", ErrBadConfig, c.Requests)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("%w: horizon %d", ErrBadConfig, c.Horizon)
	}
	if c.MinDuration < 1 || c.MaxDuration < c.MinDuration || c.MaxDuration > c.Horizon {
		return fmt.Errorf("%w: duration range [%d,%d] horizon %d", ErrBadConfig, c.MinDuration, c.MaxDuration, c.Horizon)
	}
	if c.MinRequirement <= 0 || c.MaxRequirement >= 1 || c.MaxRequirement < c.MinRequirement {
		return fmt.Errorf("%w: requirement range [%v,%v]", ErrBadConfig, c.MinRequirement, c.MaxRequirement)
	}
	if c.MaxPaymentRate <= 0 {
		return fmt.Errorf("%w: pr_max %v", ErrBadConfig, c.MaxPaymentRate)
	}
	if c.H < 1 {
		return fmt.Errorf("%w: H=%v below 1", ErrBadConfig, c.H)
	}
	switch c.Arrivals {
	case 0, ArrivalUniform, ArrivalPoisson, ArrivalDiurnal:
	default:
		return fmt.Errorf("%w: arrival model %d", ErrBadConfig, int(c.Arrivals))
	}
	switch c.Durations {
	case 0, DurationUniform, DurationPareto:
	default:
		return fmt.Errorf("%w: duration model %d", ErrBadConfig, int(c.Durations))
	}
	return nil
}

// GenerateTrace draws a request trace against the catalog. Requests are
// returned in arrival order with IDs equal to their positions, matching the
// online model: the scheduler sees them one at a time.
func GenerateTrace(cfg TraceConfig, catalog []core.VNF, rng *rand.Rand) ([]core.Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(catalog) == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrBadConfig)
	}
	arrivals := cfg.drawArrivals(rng)
	prMin := cfg.MaxPaymentRate / cfg.H
	out := make([]core.Request, cfg.Requests)
	for i := range out {
		f := catalog[rng.Intn(len(catalog))]
		dur := cfg.drawDuration(rng)
		arr := arrivals[i]
		// Clamp so the request finishes within the horizon (the paper
		// only considers requests with a+d-1 ≤ T).
		if arr+dur-1 > cfg.Horizon {
			arr = cfg.Horizon - dur + 1
			if arr < 1 {
				arr, dur = 1, cfg.Horizon
			}
		}
		req := uniform(rng, cfg.MinRequirement, cfg.MaxRequirement)
		rate := uniform(rng, prMin, cfg.MaxPaymentRate)
		out[i] = core.Request{
			ID:          i,
			VNF:         f.ID,
			Reliability: req,
			Arrival:     arr,
			Duration:    dur,
			Payment:     rate * float64(dur) * float64(f.Demand) * req,
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	for i := range out {
		out[i].ID = i
	}
	return out, nil
}

func (c TraceConfig) drawArrivals(rng *rand.Rand) []int {
	model := c.Arrivals
	if model == 0 {
		model = ArrivalUniform
	}
	arrivals := make([]int, c.Requests)
	switch model {
	case ArrivalDiurnal:
		// Rejection-sample against the sinusoidal intensity
		// 0.15 + 0.85·sin²(π·t/T): slots near mid-horizon are ~6x more
		// likely than the edges.
		for i := range arrivals {
			for {
				slot := 1 + rng.Intn(c.Horizon)
				phase := math.Pi * float64(slot) / float64(c.Horizon+1)
				intensity := 0.15 + 0.85*math.Pow(math.Sin(phase), 2)
				if rng.Float64() < intensity {
					arrivals[i] = slot
					break
				}
			}
		}
	case ArrivalPoisson:
		// Exponential inter-arrival gaps with mean horizon/requests,
		// wrapped at the horizon so all requests land inside T.
		rate := float64(c.Requests) / float64(c.Horizon)
		clock := 0.0
		for i := range arrivals {
			clock += rng.ExpFloat64() / rate
			slot := int(clock) + 1
			if slot > c.Horizon {
				slot = 1 + rng.Intn(c.Horizon)
			}
			arrivals[i] = slot
		}
	default:
		for i := range arrivals {
			arrivals[i] = 1 + rng.Intn(c.Horizon)
		}
	}
	return arrivals
}

func (c TraceConfig) drawDuration(rng *rand.Rand) int {
	model := c.Durations
	if model == 0 {
		model = DurationUniform
	}
	switch model {
	case DurationPareto:
		const shape = 1.5
		lo, hi := float64(c.MinDuration), float64(c.MaxDuration)+0.999
		// Inverse-CDF sampling of a Pareto truncated to [lo, hi].
		u := rng.Float64()
		x := lo / math.Pow(1-u*(1-math.Pow(lo/hi, shape)), 1/shape)
		d := int(x)
		if d < c.MinDuration {
			d = c.MinDuration
		}
		if d > c.MaxDuration {
			d = c.MaxDuration
		}
		return d
	default:
		return c.MinDuration + rng.Intn(c.MaxDuration-c.MinDuration+1)
	}
}
