package workload

import (
	"errors"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func TestDefaultCatalog(t *testing.T) {
	cat := DefaultCatalog()
	if len(cat) != 10 {
		t.Fatalf("DefaultCatalog size = %d, want 10", len(cat))
	}
	n := &core.Network{Catalog: cat, Cloudlets: []core.Cloudlet{{ID: 0, Capacity: 1, Reliability: 0.5}}}
	if err := n.Validate(); err != nil {
		t.Fatalf("DefaultCatalog fails validation: %v", err)
	}
	for _, f := range cat {
		if f.Reliability < 0.9 || f.Reliability > 0.9999 {
			t.Errorf("VNF %s reliability %v outside [0.9, 0.9999]", f.Name, f.Reliability)
		}
		if f.Demand < 1 || f.Demand > 3 {
			t.Errorf("VNF %s demand %d outside [1,3]", f.Name, f.Demand)
		}
	}
}

func TestRandomCatalog(t *testing.T) {
	cfg := CatalogConfig{Types: 20, MinDemand: 2, MaxDemand: 5, MinReliability: 0.8, MaxReliability: 0.99}
	cat, err := RandomCatalog(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("RandomCatalog: %v", err)
	}
	if len(cat) != 20 {
		t.Fatalf("size = %d, want 20", len(cat))
	}
	for i, f := range cat {
		if f.ID != i {
			t.Errorf("VNF %d has ID %d", i, f.ID)
		}
		if f.Demand < 2 || f.Demand > 5 {
			t.Errorf("demand %d out of range", f.Demand)
		}
		if f.Reliability < 0.8 || f.Reliability > 0.99 {
			t.Errorf("reliability %v out of range", f.Reliability)
		}
	}
}

func TestCatalogConfigValidate(t *testing.T) {
	good := CatalogConfig{Types: 5, MinDemand: 1, MaxDemand: 3, MinReliability: 0.9, MaxReliability: 0.99}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CatalogConfig)
	}{
		{"zero types", func(c *CatalogConfig) { c.Types = 0 }},
		{"zero min demand", func(c *CatalogConfig) { c.MinDemand = 0 }},
		{"inverted demand", func(c *CatalogConfig) { c.MaxDemand = 0 }},
		{"reliability 0", func(c *CatalogConfig) { c.MinReliability = 0 }},
		{"reliability 1", func(c *CatalogConfig) { c.MaxReliability = 1 }},
		{"inverted reliability", func(c *CatalogConfig) { c.MaxReliability = 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate() = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestRandomCloudlets(t *testing.T) {
	cfg := CloudletConfig{Count: 10, MinCapacity: 50, MaxCapacity: 100, MaxReliability: 0.999, K: 1.05}
	cls, err := RandomCloudlets(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("RandomCloudlets: %v", err)
	}
	rcMin := 0.999 / 1.05
	for j, c := range cls {
		if c.ID != j {
			t.Errorf("cloudlet %d has ID %d", j, c.ID)
		}
		if c.Node != -1 {
			t.Errorf("unbound cloudlet has node %d", c.Node)
		}
		if c.Capacity < 50 || c.Capacity > 100 {
			t.Errorf("capacity %d out of range", c.Capacity)
		}
		if c.Reliability < rcMin || c.Reliability > 0.999 {
			t.Errorf("reliability %v outside [%v, 0.999]", c.Reliability, rcMin)
		}
	}
}

func TestRandomCloudletsWithSites(t *testing.T) {
	cfg := CloudletConfig{
		Count: 3, MinCapacity: 10, MaxCapacity: 10,
		MaxReliability: 0.99, K: 1, Sites: []int{4, 7, 9},
	}
	cls, err := RandomCloudlets(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("RandomCloudlets: %v", err)
	}
	for j, want := range []int{4, 7, 9} {
		if cls[j].Node != want {
			t.Errorf("cloudlet %d node = %d, want %d", j, cls[j].Node, want)
		}
	}
	// K=1 forces identical reliabilities.
	for _, c := range cls {
		if c.Reliability != 0.99 {
			t.Errorf("K=1 reliability = %v, want 0.99", c.Reliability)
		}
	}
}

func TestCloudletConfigValidate(t *testing.T) {
	good := CloudletConfig{Count: 2, MinCapacity: 1, MaxCapacity: 2, MaxReliability: 0.99, K: 1.1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*CloudletConfig)
	}{
		{"zero count", func(c *CloudletConfig) { c.Count = 0 }},
		{"zero capacity", func(c *CloudletConfig) { c.MinCapacity = 0 }},
		{"inverted capacity", func(c *CloudletConfig) { c.MaxCapacity = 0 }},
		{"rc_max 1", func(c *CloudletConfig) { c.MaxReliability = 1 }},
		{"K below 1", func(c *CloudletConfig) { c.K = 0.5 }},
		{"wrong site count", func(c *CloudletConfig) { c.Sites = []int{1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate() = %v, want ErrBadConfig", err)
			}
		})
	}
}
