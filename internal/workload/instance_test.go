package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"revnf/internal/topology"
)

func baseInstanceConfig() InstanceConfig {
	return InstanceConfig{
		TopologyName: topology.NSFNET,
		Cloudlets: CloudletConfig{
			Count: 6, MinCapacity: 40, MaxCapacity: 80,
			MaxReliability: 0.999, K: 1.05,
		},
		Trace: baseTraceConfig(),
	}
}

func TestNewInstance(t *testing.T) {
	inst, err := NewInstance(baseInstanceConfig(), 1)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if got := len(inst.Network.Cloudlets); got != 6 {
		t.Errorf("cloudlets = %d, want 6", got)
	}
	if got := len(inst.Trace); got != 200 {
		t.Errorf("trace = %d, want 200", got)
	}
	// Cloudlets must be bound to distinct topology nodes.
	seen := map[int]bool{}
	for _, c := range inst.Network.Cloudlets {
		if c.Node < 0 || c.Node >= 14 {
			t.Errorf("cloudlet node %d outside NSFNET", c.Node)
		}
		if seen[c.Node] {
			t.Errorf("duplicate cloudlet node %d", c.Node)
		}
		seen[c.Node] = true
	}
}

func TestNewInstanceDefaultsTopologyAndCatalog(t *testing.T) {
	cfg := baseInstanceConfig()
	cfg.TopologyName = ""
	cfg.Catalog = nil
	inst, err := NewInstance(cfg, 2)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if len(inst.Network.Catalog) != 10 {
		t.Errorf("default catalog size = %d, want 10", len(inst.Network.Catalog))
	}
}

func TestNewInstanceDeterministic(t *testing.T) {
	a, err := NewInstance(baseInstanceConfig(), 7)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	b, err := NewInstance(baseInstanceConfig(), 7)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatal("trace lengths differ")
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
	for j := range a.Network.Cloudlets {
		if a.Network.Cloudlets[j] != b.Network.Cloudlets[j] {
			t.Fatalf("cloudlet %d differs across identical seeds", j)
		}
	}
}

func TestNewInstanceErrors(t *testing.T) {
	cfg := baseInstanceConfig()
	cfg.TopologyName = "nope"
	if _, err := NewInstance(cfg, 1); !errors.Is(err, topology.ErrUnknown) {
		t.Errorf("unknown topology err = %v, want topology.ErrUnknown", err)
	}
	cfg = baseInstanceConfig()
	cfg.Cloudlets.Count = 99
	if _, err := NewInstance(cfg, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many cloudlets err = %v, want ErrBadConfig", err)
	}
	cfg = baseInstanceConfig()
	cfg.Trace.Requests = 0
	if _, err := NewInstance(cfg, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad trace err = %v, want ErrBadConfig", err)
	}
}

func TestInstanceSaveLoadRoundTrip(t *testing.T) {
	inst, err := NewInstance(baseInstanceConfig(), 3)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	var buf bytes.Buffer
	if err := inst.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadInstance(&buf)
	if err != nil {
		t.Fatalf("LoadInstance: %v", err)
	}
	if got.Horizon != inst.Horizon {
		t.Errorf("horizon = %d, want %d", got.Horizon, inst.Horizon)
	}
	for i := range inst.Trace {
		if got.Trace[i] != inst.Trace[i] {
			t.Fatalf("request %d differs after round trip", i)
		}
	}
	for j := range inst.Network.Cloudlets {
		if got.Network.Cloudlets[j] != inst.Network.Cloudlets[j] {
			t.Fatalf("cloudlet %d differs after round trip", j)
		}
	}
	for i := range inst.Network.Catalog {
		if got.Network.Catalog[i] != inst.Network.Catalog[i] {
			t.Fatalf("VNF %d differs after round trip", i)
		}
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	if _, err := LoadInstance(strings.NewReader("{")); err == nil {
		t.Error("truncated JSON did not error")
	}
	// Structurally valid JSON but semantically invalid instance.
	bad := `{"horizon":0,"catalog":[],"cloudlets":[],"trace":[]}`
	if _, err := LoadInstance(strings.NewReader(bad)); err == nil {
		t.Error("invalid instance did not error")
	}
}
