package workload

import (
	"errors"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func baseTraceConfig() TraceConfig {
	return TraceConfig{
		Requests:       200,
		Horizon:        50,
		MinDuration:    1,
		MaxDuration:    10,
		MinRequirement: 0.9,
		MaxRequirement: 0.99,
		MaxPaymentRate: 10,
		H:              4,
	}
}

func TestGenerateTraceBasics(t *testing.T) {
	cfg := baseTraceConfig()
	cat := DefaultCatalog()
	trace, err := GenerateTrace(cfg, cat, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	if len(trace) != cfg.Requests {
		t.Fatalf("trace length = %d, want %d", len(trace), cfg.Requests)
	}
	prevArrival := 0
	for i, r := range trace {
		if r.ID != i {
			t.Errorf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < prevArrival {
			t.Errorf("trace not sorted by arrival at %d", i)
		}
		prevArrival = r.Arrival
		if r.Arrival < 1 || r.End() > cfg.Horizon {
			t.Errorf("request %d window [%d,%d] outside horizon", i, r.Arrival, r.End())
		}
		if r.Duration < cfg.MinDuration || r.Duration > cfg.MaxDuration {
			t.Errorf("request %d duration %d out of range", i, r.Duration)
		}
		if r.Reliability < cfg.MinRequirement || r.Reliability > cfg.MaxRequirement {
			t.Errorf("request %d requirement %v out of range", i, r.Reliability)
		}
		if r.VNF < 0 || r.VNF >= len(cat) {
			t.Errorf("request %d unknown VNF %d", i, r.VNF)
		}
		// Payment = rate·d·c(f)·R with rate ∈ [pr_max/H, pr_max].
		f := cat[r.VNF]
		rate := r.Payment / (float64(r.Duration) * float64(f.Demand) * r.Reliability)
		if rate < cfg.MaxPaymentRate/cfg.H-1e-9 || rate > cfg.MaxPaymentRate+1e-9 {
			t.Errorf("request %d payment rate %v outside [%v,%v]", i, rate, cfg.MaxPaymentRate/cfg.H, cfg.MaxPaymentRate)
		}
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	cfg := baseTraceConfig()
	cat := DefaultCatalog()
	a, err := GenerateTrace(cfg, cat, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	b, err := GenerateTrace(cfg, cat, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestGenerateTracePoissonArrivals(t *testing.T) {
	cfg := baseTraceConfig()
	cfg.Arrivals = ArrivalPoisson
	trace, err := GenerateTrace(cfg, DefaultCatalog(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	for _, r := range trace {
		if r.Arrival < 1 || r.End() > cfg.Horizon {
			t.Fatalf("request %d window [%d,%d] outside horizon", r.ID, r.Arrival, r.End())
		}
	}
}

func TestGenerateTraceParetoDurations(t *testing.T) {
	cfg := baseTraceConfig()
	cfg.Durations = DurationPareto
	cfg.Requests = 2000
	trace, err := GenerateTrace(cfg, DefaultCatalog(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	short, total := 0, 0
	for _, r := range trace {
		if r.Duration < cfg.MinDuration || r.Duration > cfg.MaxDuration {
			t.Fatalf("duration %d out of range", r.Duration)
		}
		if r.Duration <= 2 {
			short++
		}
		total++
	}
	// Heavy-tailed: well over half the requests should be short.
	if frac := float64(short) / float64(total); frac < 0.5 {
		t.Errorf("Pareto durations: only %.0f%% short requests, want ≥ 50%%", 100*frac)
	}
}

func TestGenerateTraceHEqualsOne(t *testing.T) {
	cfg := baseTraceConfig()
	cfg.H = 1
	cat := DefaultCatalog()
	trace, err := GenerateTrace(cfg, cat, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	for _, r := range trace {
		f := cat[r.VNF]
		rate := r.Payment / (float64(r.Duration) * float64(f.Demand) * r.Reliability)
		if !core.FloatEqTol(rate, cfg.MaxPaymentRate, 1e-9) {
			t.Fatalf("H=1 payment rate = %v, want %v", rate, cfg.MaxPaymentRate)
		}
	}
}

func TestTraceConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*TraceConfig)
	}{
		{"zero requests", func(c *TraceConfig) { c.Requests = 0 }},
		{"zero horizon", func(c *TraceConfig) { c.Horizon = 0 }},
		{"zero min duration", func(c *TraceConfig) { c.MinDuration = 0 }},
		{"duration beyond horizon", func(c *TraceConfig) { c.MaxDuration = 99 }},
		{"inverted duration", func(c *TraceConfig) { c.MaxDuration = 0 }},
		{"requirement 0", func(c *TraceConfig) { c.MinRequirement = 0 }},
		{"requirement 1", func(c *TraceConfig) { c.MaxRequirement = 1 }},
		{"zero payment rate", func(c *TraceConfig) { c.MaxPaymentRate = 0 }},
		{"H below 1", func(c *TraceConfig) { c.H = 0.9 }},
		{"bad arrival model", func(c *TraceConfig) { c.Arrivals = 99 }},
		{"bad duration model", func(c *TraceConfig) { c.Durations = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseTraceConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrBadConfig) {
				t.Errorf("Validate() = %v, want ErrBadConfig", err)
			}
			if _, err := GenerateTrace(cfg, DefaultCatalog(), rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadConfig) {
				t.Errorf("GenerateTrace() = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestGenerateTraceEmptyCatalog(t *testing.T) {
	if _, err := GenerateTrace(baseTraceConfig(), nil, rand.New(rand.NewSource(1))); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty catalog err = %v, want ErrBadConfig", err)
	}
}

func TestGenerateTraceDiurnalArrivals(t *testing.T) {
	cfg := baseTraceConfig()
	cfg.Arrivals = ArrivalDiurnal
	cfg.Requests = 4000
	cfg.MaxDuration = 1
	trace, err := GenerateTrace(cfg, DefaultCatalog(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	// Mid-horizon slots must see clearly more arrivals than the edges.
	mid, edge := 0, 0
	for _, r := range trace {
		frac := float64(r.Arrival) / float64(cfg.Horizon)
		switch {
		case frac > 0.35 && frac < 0.65:
			mid++
		case frac < 0.15 || frac > 0.85:
			edge++
		}
	}
	if mid < 2*edge {
		t.Errorf("diurnal profile too flat: mid %d vs edge %d", mid, edge)
	}
	for _, r := range trace {
		if r.Arrival < 1 || r.End() > cfg.Horizon {
			t.Fatalf("request window [%d,%d] outside horizon", r.Arrival, r.End())
		}
	}
}
