package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"revnf/internal/core"
	"revnf/internal/topology"
)

// Instance bundles everything one simulation run needs: the static network,
// the horizon, and the request trace.
type Instance struct {
	// Network holds the catalog and cloudlets.
	Network *core.Network
	// Horizon is T.
	Horizon int
	// Trace is the request stream in arrival order.
	Trace []core.Request
}

// Validate checks the network, horizon and every request.
func (in *Instance) Validate() error {
	if err := in.Network.Validate(); err != nil {
		return err
	}
	if in.Horizon < 1 {
		return fmt.Errorf("%w: horizon %d", ErrBadConfig, in.Horizon)
	}
	return in.Network.ValidateTrace(in.Trace, in.Horizon)
}

// InstanceConfig assembles a full instance from its parts, mirroring the
// paper's evaluation setup: a Topology Zoo network, cloudlets at the
// best-connected APs, the [15]-style catalog, and a randomized trace.
type InstanceConfig struct {
	// TopologyName is an embedded topology name (see package topology);
	// empty selects NSFNET.
	TopologyName string
	// Cloudlets configures the fleet; Sites is filled from the topology.
	Cloudlets CloudletConfig
	// Catalog is the VNF catalog; nil selects DefaultCatalog.
	Catalog []core.VNF
	// Trace configures the request stream.
	Trace TraceConfig
}

// NewInstance builds a reproducible instance from the configuration and
// seed.
func NewInstance(cfg InstanceConfig, seed int64) (*Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	name := cfg.TopologyName
	if name == "" {
		name = topology.NSFNET
	}
	g, err := topology.Load(name)
	if err != nil {
		return nil, err
	}
	if cfg.Cloudlets.Count > g.Nodes() {
		return nil, fmt.Errorf("%w: %d cloudlets on %d-node topology", ErrBadConfig, cfg.Cloudlets.Count, g.Nodes())
	}
	sites, err := topology.PlaceCloudletsByDegree(g, cfg.Cloudlets.Count)
	if err != nil {
		return nil, err
	}
	ccfg := cfg.Cloudlets
	ccfg.Sites = sites
	cloudlets, err := RandomCloudlets(ccfg, rng)
	if err != nil {
		return nil, err
	}
	catalog := cfg.Catalog
	if catalog == nil {
		catalog = DefaultCatalog()
	}
	trace, err := GenerateTrace(cfg.Trace, catalog, rng)
	if err != nil {
		return nil, err
	}
	inst := &Instance{
		Network: &core.Network{Catalog: catalog, Cloudlets: cloudlets},
		Horizon: cfg.Trace.Horizon,
		Trace:   trace,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated instance invalid: %w", err)
	}
	return inst, nil
}

// JSON data-transfer shapes, kept separate from the core model so wire
// field names stay stable independent of Go identifiers.

type instanceDTO struct {
	Horizon   int           `json:"horizon"`
	Catalog   []vnfDTO      `json:"catalog"`
	Cloudlets []cloudletDTO `json:"cloudlets"`
	Trace     []requestDTO  `json:"trace"`
}

type vnfDTO struct {
	ID          int     `json:"id"`
	Name        string  `json:"name"`
	Demand      int     `json:"demand"`
	Reliability float64 `json:"reliability"`
}

type cloudletDTO struct {
	ID          int     `json:"id"`
	Node        int     `json:"node"`
	Capacity    int     `json:"capacity"`
	Reliability float64 `json:"reliability"`
}

type requestDTO struct {
	ID          int     `json:"id"`
	VNF         int     `json:"vnf"`
	Reliability float64 `json:"reliability"`
	Arrival     int     `json:"arrival"`
	Duration    int     `json:"duration"`
	Payment     float64 `json:"payment"`
}

// Save writes the instance as indented JSON.
func (in *Instance) Save(w io.Writer) error {
	dto := instanceDTO{
		Horizon:   in.Horizon,
		Catalog:   make([]vnfDTO, len(in.Network.Catalog)),
		Cloudlets: make([]cloudletDTO, len(in.Network.Cloudlets)),
		Trace:     make([]requestDTO, len(in.Trace)),
	}
	for i, f := range in.Network.Catalog {
		dto.Catalog[i] = vnfDTO{ID: f.ID, Name: f.Name, Demand: f.Demand, Reliability: f.Reliability}
	}
	for j, c := range in.Network.Cloudlets {
		dto.Cloudlets[j] = cloudletDTO{ID: c.ID, Node: c.Node, Capacity: c.Capacity, Reliability: c.Reliability}
	}
	for i, r := range in.Trace {
		dto.Trace[i] = requestDTO{
			ID: r.ID, VNF: r.VNF, Reliability: r.Reliability,
			Arrival: r.Arrival, Duration: r.Duration, Payment: r.Payment,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("workload: encode instance: %w", err)
	}
	return nil
}

// LoadInstance reads an instance previously written by Save and validates
// it.
func LoadInstance(r io.Reader) (*Instance, error) {
	var dto instanceDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("workload: decode instance: %w", err)
	}
	in := &Instance{
		Network: &core.Network{
			Catalog:   make([]core.VNF, len(dto.Catalog)),
			Cloudlets: make([]core.Cloudlet, len(dto.Cloudlets)),
		},
		Horizon: dto.Horizon,
		Trace:   make([]core.Request, len(dto.Trace)),
	}
	for i, f := range dto.Catalog {
		in.Network.Catalog[i] = core.VNF{ID: f.ID, Name: f.Name, Demand: f.Demand, Reliability: f.Reliability}
	}
	for j, c := range dto.Cloudlets {
		in.Network.Cloudlets[j] = core.Cloudlet{ID: c.ID, Node: c.Node, Capacity: c.Capacity, Reliability: c.Reliability}
	}
	for i, q := range dto.Trace {
		in.Trace[i] = core.Request{
			ID: q.ID, VNF: q.VNF, Reliability: q.Reliability,
			Arrival: q.Arrival, Duration: q.Duration, Payment: q.Payment,
		}
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: loaded instance invalid: %w", err)
	}
	return in, nil
}
