package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzImportCSV checks the parser never panics and that every accepted
// trace is fully valid: sorted, renumbered, and within the horizon.
func FuzzImportCSV(f *testing.F) {
	f.Add("arrival,duration,vnf,reliability,payment\n1,2,firewall,0.9,5\n")
	f.Add("arrival,duration,vnf,reliability,payment\n3,1,0,0.95,2.5\n1,1,cache,0.92,1\n")
	f.Add("arrival,duration,vnf,reliability,payment\n")
	f.Add("arrival,duration,vnf,reliability,payment\n1,1,nope,0.9,1\n")
	f.Add("x\n")
	f.Add("arrival,duration,vnf,reliability,payment\n-1,1,0,0.9,1\n")
	f.Add("arrival,duration,vnf,reliability,payment\n1,1,0,0.9,\"quoted\"\n")
	catalog := DefaultCatalog()
	f.Fuzz(func(t *testing.T, input string) {
		const horizon = 50
		trace, err := ImportCSV(strings.NewReader(input), catalog, horizon)
		if err != nil {
			return // rejection is fine; panics are not
		}
		prev := 0
		for i, r := range trace {
			if r.ID != i {
				t.Fatalf("request %d has ID %d", i, r.ID)
			}
			if r.Arrival < prev {
				t.Fatal("accepted trace not sorted")
			}
			prev = r.Arrival
			if r.Arrival < 1 || r.End() > horizon {
				t.Fatalf("accepted request outside horizon: %+v", r)
			}
			if r.VNF < 0 || r.VNF >= len(catalog) {
				t.Fatalf("accepted unknown VNF: %+v", r)
			}
		}
		// Accepted traces must survive an export/import round trip.
		var buf bytes.Buffer
		if err := ExportCSV(&buf, catalog, trace); err != nil {
			t.Fatalf("export of accepted trace failed: %v", err)
		}
		again, err := ImportCSV(&buf, catalog, horizon)
		if err != nil {
			t.Fatalf("re-import of exported trace failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(trace))
		}
	})
}
