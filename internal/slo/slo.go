// Package slo accounts for per-request availability service levels under
// injected failures. Admission promises each request a provisioned
// availability (the reliability math's estimate for its placement); the
// failure runtime then observes the placement slot by slot, and this
// package keeps the ledger of promise vs delivery: observed availability,
// downtime slots, repairs and their latency, and whether the request's
// window ended within its SLO or explicitly degraded.
//
// It also hosts the online failure-rate estimator (RateEstimator), the
// learning half of the loop: the same slot observations that score SLOs
// update Beta posteriors over per-cloudlet availability.
package slo

import (
	"sync"

	"revnf/internal/metrics"
)

// Entry is one admitted request's SLO account.
type Entry struct {
	// ID is the request ID.
	ID int
	// Required is the request's reliability requirement R.
	Required float64
	// Provisioned is the availability the admitted placement promised
	// (core.Placement.Availability at admission time).
	Provisioned float64
	// WindowSlots is the request's execution window length.
	WindowSlots int
	// ObservedSlots counts slots the failure runtime scored; UpSlots and
	// DownSlots partition them by whether at least one instance was live
	// (a slot healed by a same-slot repair counts up).
	ObservedSlots, UpSlots, DownSlots int
	// Repairs counts successful re-placements; RepairLatencySlots sums
	// the slots their failure episodes stayed open.
	Repairs, RepairLatencySlots int
	// Degraded marks a placement whose repair budget was exhausted or
	// that ended its window below Required.
	Degraded bool
	// Finalized is set when the window expired and the account closed.
	Finalized bool
}

// Observed returns the delivered availability: UpSlots/ObservedSlots,
// or 1 when nothing was observed (an unobserved window had no detected
// downtime).
func (e Entry) Observed() float64 {
	if e.ObservedSlots == 0 {
		return 1
	}
	return float64(e.UpSlots) / float64(e.ObservedSlots)
}

// metTolerance absorbs float rounding in the availability ratio.
const metTolerance = 1e-12

// Met reports whether the delivered availability meets the requirement.
func (e Entry) Met() bool { return e.Observed()+metTolerance >= e.Required }

// Stats aggregates the tracker.
type Stats struct {
	// Tracked counts open accounts; Finalized closed ones.
	Tracked, Finalized int
	// Met and Missed partition finalized accounts by Entry.Met; Degraded
	// counts finalized accounts flagged degraded (a subset of Missed
	// unless the placement recovered after degrading).
	Met, Missed, Degraded int
	// DowntimeSlots sums DownSlots over all accounts; Repairs the
	// successful re-placements.
	DowntimeSlots, Repairs int
	// MeanProvisioned and MeanObserved average finalized accounts (0 when
	// none).
	MeanProvisioned, MeanObserved float64
}

// Tracker is the SLO ledger. It keeps its own mutex: the engine writes
// under its lock, the metrics and HTTP paths read concurrently.
type Tracker struct {
	mu        sync.Mutex
	open      map[int]*Entry     // guarded by mu
	finalized map[int]*Entry     // guarded by mu
	latency   *metrics.Histogram // guarded by mu

	// stats aggregates finalized outcomes; guarded by mu.
	stats struct {
		met, missed, degraded int
		downtime, repairs     int
		sumProvisioned        float64
		sumObserved           float64
	}
}

// latencyBounds buckets repair latency in slots: most repairs land in
// the failing slot (latency 0) or shortly after.
var latencyBounds = []float64{0, 1, 2, 4, 8, 16, 32}

// NewTracker builds an empty tracker.
func NewTracker() *Tracker {
	h, err := metrics.NewHistogram(latencyBounds...)
	if err != nil {
		panic("slo: bad latency bounds: " + err.Error())
	}
	return &Tracker{open: make(map[int]*Entry), finalized: make(map[int]*Entry), latency: h}
}

// Register opens an account for an admitted request. Re-registering an
// ID resets its account (IDs are unique per daemon run).
func (t *Tracker) Register(id int, required, provisioned float64, windowSlots int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open[id] = &Entry{ID: id, Required: required, Provisioned: provisioned, WindowSlots: windowSlots}
}

// ObserveSlot scores one slot of an open account.
func (t *Tracker) ObserveSlot(id int, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.open[id]
	if !ok {
		return
	}
	e.ObservedSlots++
	if up {
		e.UpSlots++
	} else {
		e.DownSlots++
		t.stats.downtime++
	}
}

// AddRepair records a successful re-placement and its episode latency.
func (t *Tracker) AddRepair(id, latencySlots int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.open[id]
	if !ok {
		return
	}
	e.Repairs++
	e.RepairLatencySlots += latencySlots
	t.stats.repairs++
	t.latency.Observe(float64(latencySlots))
}

// MarkDegraded flags an open account (repair budget exhausted).
func (t *Tracker) MarkDegraded(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.open[id]; ok {
		e.Degraded = true
	}
}

// Finalize closes an account when its window expires and returns the
// final entry. ok is false for unknown IDs. A closed account that missed
// its SLO without being degraded by the repair controller is degraded
// here, so every finalized entry either met its requirement or is
// explicitly marked degraded.
func (t *Tracker) Finalize(id int) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.open[id]
	if !ok {
		return Entry{}, false
	}
	delete(t.open, id)
	e.Finalized = true
	if !e.Met() {
		e.Degraded = true
	}
	t.finalized[id] = e
	if e.Met() {
		t.stats.met++
	} else {
		t.stats.missed++
	}
	if e.Degraded {
		t.stats.degraded++
	}
	t.stats.sumProvisioned += e.Provisioned
	t.stats.sumObserved += e.Observed()
	return *e, true
}

// Get returns a request's account, open or finalized.
func (t *Tracker) Get(id int) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.open[id]; ok {
		return *e, true
	}
	if e, ok := t.finalized[id]; ok {
		return *e, true
	}
	return Entry{}, false
}

// Finalized returns all closed accounts (order unspecified).
func (t *Tracker) Finalized() []Entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Entry, 0, len(t.finalized))
	for _, e := range t.finalized {
		out = append(out, *e)
	}
	return out
}

// RepairLatency returns a snapshot of the repair-latency histogram
// (slots per episode).
func (t *Tracker) RepairLatency() *metrics.Histogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.latency.Clone()
}

// Stats snapshots the tracker.
func (t *Tracker) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Stats{
		Tracked:       len(t.open),
		Finalized:     len(t.finalized),
		Met:           t.stats.met,
		Missed:        t.stats.missed,
		Degraded:      t.stats.degraded,
		DowntimeSlots: t.stats.downtime,
		Repairs:       t.stats.repairs,
	}
	if s.Finalized > 0 {
		s.MeanProvisioned = t.stats.sumProvisioned / float64(s.Finalized)
		s.MeanObserved = t.stats.sumObserved / float64(s.Finalized)
	}
	return s
}
