package slo

import (
	"sync"

	"revnf/internal/core"
)

// RateEstimator learns per-cloudlet availability r(c_j) online from
// observed slot states, as a Beta posterior per cloudlet: up slots
// increment alpha, down slots increment beta, and the estimate is the
// posterior mean alpha/(alpha+beta). With a Beta(1,1) (uniform) prior
// this is Laplace's rule of succession; NewCatalogEstimator instead
// centers the prior on the catalog rates so early estimates degrade
// gracefully toward what the operator declared.
//
// The estimator implements core.ReliabilitySource, so the repair
// controller's health checks (and rebuilt schedulers, via
// core.Network.WithReliabilities) can run on learned rates instead of
// catalog values. It has its own mutex: the engine observes under its
// lock while the metrics and HTTP paths read concurrently.
type RateEstimator struct {
	mu    sync.Mutex
	alpha []float64 // guarded by mu
	beta  []float64 // guarded by mu
}

// NewRateEstimator builds an estimator for n cloudlets with uniform
// Beta(1,1) priors.
func NewRateEstimator(n int) *RateEstimator {
	if n < 0 {
		n = 0
	}
	e := &RateEstimator{alpha: make([]float64, n), beta: make([]float64, n)}
	for j := range e.alpha {
		e.alpha[j], e.beta[j] = 1, 1
	}
	return e
}

// NewCatalogEstimator builds an estimator whose priors are centered on
// the network's catalog rates with the given strength (pseudo-slot
// count, clamped below at 1): cloudlet j starts at
// Beta(r_j·strength, (1-r_j)·strength), so the prior mean is exactly the
// catalog rate and `strength` observed slots weigh as much as the prior.
func NewCatalogEstimator(network *core.Network, strength float64) *RateEstimator {
	if strength < 1 {
		strength = 1
	}
	e := &RateEstimator{
		alpha: make([]float64, len(network.Cloudlets)),
		beta:  make([]float64, len(network.Cloudlets)),
	}
	for j, cl := range network.Cloudlets {
		e.alpha[j] = cl.Reliability * strength
		e.beta[j] = (1 - cl.Reliability) * strength
	}
	return e
}

// Observe records one slot's state for cloudlet j.
func (e *RateEstimator) Observe(j int, up bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j < 0 || j >= len(e.alpha) {
		return
	}
	if up {
		e.alpha[j]++
	} else {
		e.beta[j]++
	}
}

// CloudletReliability implements core.ReliabilitySource: the posterior
// mean for cloudlet j, or 0 out of range.
func (e *RateEstimator) CloudletReliability(j int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j < 0 || j >= len(e.alpha) {
		return 0
	}
	return e.alpha[j] / (e.alpha[j] + e.beta[j])
}

// Cloudlets returns the number of tracked cloudlets.
func (e *RateEstimator) Cloudlets() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.alpha)
}

// Observations returns how many slots have been observed for cloudlet j
// (excluding prior pseudo-counts is not possible once folded in, so this
// counts alpha+beta; use it for relative maturity only).
func (e *RateEstimator) Observations(j int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j < 0 || j >= len(e.alpha) {
		return 0
	}
	return e.alpha[j] + e.beta[j]
}

var _ core.ReliabilitySource = (*RateEstimator)(nil)
