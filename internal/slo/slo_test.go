package slo

import (
	"math"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func TestEntryObservedAndMet(t *testing.T) {
	e := Entry{Required: 0.9}
	if e.Observed() != 1 || !e.Met() {
		t.Fatalf("unobserved entry = (%v, %v), want (1, met)", e.Observed(), e.Met())
	}
	e = Entry{Required: 0.9, ObservedSlots: 10, UpSlots: 9, DownSlots: 1}
	if e.Observed() != 0.9 || !e.Met() {
		t.Fatalf("exact-boundary entry = (%v, %v), want (0.9, met)", e.Observed(), e.Met())
	}
	e.UpSlots, e.DownSlots = 8, 2
	if e.Met() {
		t.Fatal("0.8 delivered must miss 0.9")
	}
}

func TestTrackerLifecycle(t *testing.T) {
	tr := NewTracker()
	tr.Register(1, 0.9, 0.95, 4)
	tr.ObserveSlot(1, true)
	tr.ObserveSlot(1, false)
	tr.AddRepair(1, 1)
	tr.ObserveSlot(1, true)
	tr.ObserveSlot(1, true)

	e, ok := tr.Get(1)
	if !ok || e.ObservedSlots != 4 || e.UpSlots != 3 || e.DownSlots != 1 || e.Repairs != 1 || e.RepairLatencySlots != 1 {
		t.Fatalf("open entry = %+v, %v", e, ok)
	}
	if e.Finalized {
		t.Fatal("entry finalized early")
	}

	fin, ok := tr.Finalize(1)
	if !ok || !fin.Finalized {
		t.Fatalf("finalize = %+v, %v", fin, ok)
	}
	// 3/4 < 0.9: the miss must be explicitly degraded at finalize.
	if fin.Met() || !fin.Degraded {
		t.Fatalf("missed entry = %+v, want degraded", fin)
	}
	// Still readable after finalize.
	if got, ok := tr.Get(1); !ok || !got.Finalized {
		t.Fatalf("Get after finalize = %+v, %v", got, ok)
	}
	if _, ok := tr.Finalize(1); ok {
		t.Fatal("double finalize must report unknown")
	}
	if _, ok := tr.Finalize(99); ok {
		t.Fatal("unknown finalize must report unknown")
	}

	st := tr.Stats()
	if st.Tracked != 0 || st.Finalized != 1 || st.Met != 0 || st.Missed != 1 || st.Degraded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DowntimeSlots != 1 || st.Repairs != 1 {
		t.Fatalf("stats = %+v, want 1 downtime slot, 1 repair", st)
	}
	if st.MeanProvisioned != 0.95 || st.MeanObserved != 0.75 {
		t.Fatalf("means = %v/%v, want 0.95/0.75", st.MeanProvisioned, st.MeanObserved)
	}
	if h := tr.RepairLatency(); h.Count() != 1 || h.Sum() != 1 {
		t.Fatalf("latency histogram = count %d sum %v", h.Count(), h.Sum())
	}
	if len(tr.Finalized()) != 1 {
		t.Fatalf("Finalized() len = %d", len(tr.Finalized()))
	}
}

func TestTrackerMetEntryStaysUndegraded(t *testing.T) {
	tr := NewTracker()
	tr.Register(2, 0.9, 0.95, 2)
	tr.ObserveSlot(2, true)
	tr.ObserveSlot(2, true)
	fin, _ := tr.Finalize(2)
	if !fin.Met() || fin.Degraded {
		t.Fatalf("clean entry = %+v", fin)
	}
	st := tr.Stats()
	if st.Met != 1 || st.Missed != 0 || st.Degraded != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Observations for unknown IDs are ignored.
	tr.ObserveSlot(2, false)
	tr.AddRepair(2, 3)
	tr.MarkDegraded(2)
	if got, _ := tr.Get(2); got.DownSlots != 0 || got.Repairs != 0 || got.Degraded {
		t.Fatalf("finalized entry mutated: %+v", got)
	}
}

func TestEstimatorPosteriorMean(t *testing.T) {
	e := NewRateEstimator(2)
	// Beta(1,1) prior: mean 1/2.
	if got := e.CloudletReliability(0); got != 0.5 {
		t.Fatalf("prior mean = %v, want 0.5", got)
	}
	// 3 up, 1 down: Beta(4,2) → 2/3.
	for i := 0; i < 3; i++ {
		e.Observe(0, true)
	}
	e.Observe(0, false)
	if got, want := e.CloudletReliability(0), 4.0/6.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("posterior mean = %v, want %v", got, want)
	}
	// Cloudlet 1 untouched; out-of-range safe.
	if e.CloudletReliability(1) != 0.5 || e.CloudletReliability(2) != 0 || e.CloudletReliability(-1) != 0 {
		t.Fatal("estimator index handling broken")
	}
	e.Observe(5, true) // no-op
	if e.Cloudlets() != 2 || e.Observations(0) != 6 {
		t.Fatalf("cloudlets/observations = %d/%v", e.Cloudlets(), e.Observations(0))
	}
}

func TestCatalogEstimatorPrior(t *testing.T) {
	n := &core.Network{
		Catalog:   []core.VNF{{ID: 0, Name: "fw", Demand: 1, Reliability: 0.8}},
		Cloudlets: []core.Cloudlet{{ID: 0, Node: -1, Capacity: 4, Reliability: 0.97}},
	}
	e := NewCatalogEstimator(n, 4)
	if got := e.CloudletReliability(0); math.Abs(got-0.97) > 1e-12 {
		t.Fatalf("prior mean = %v, want catalog 0.97", got)
	}
	// One down slot against strength 4: (0.97·4)/(4+1).
	e.Observe(0, false)
	if got, want := e.CloudletReliability(0), 0.97*4/5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("posterior = %v, want %v", got, want)
	}
}

// TestEstimatorConverges feeds Bernoulli slot outcomes at a true rate far
// from the catalog prior and checks the posterior mean closes in.
func TestEstimatorConverges(t *testing.T) {
	n := &core.Network{
		Catalog:   []core.VNF{{ID: 0, Name: "fw", Demand: 1, Reliability: 0.8}},
		Cloudlets: []core.Cloudlet{{ID: 0, Node: -1, Capacity: 4, Reliability: 0.99}},
	}
	e := NewCatalogEstimator(n, 4)
	rng := rand.New(rand.NewSource(17))
	const trueRate = 0.7
	for i := 0; i < 5000; i++ {
		e.Observe(0, rng.Float64() < trueRate)
	}
	if got := e.CloudletReliability(0); math.Abs(got-trueRate) > 0.03 {
		t.Fatalf("estimate %v did not converge to %v", got, trueRate)
	}
	var src core.ReliabilitySource = e
	if src.CloudletReliability(0) == 0.99 {
		t.Fatal("estimator stuck at prior")
	}
}
