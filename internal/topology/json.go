package topology

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON interchange for custom topologies: users who model their own access
// network export/import graphs in this format and feed them to the
// simulators in place of the embedded Zoo-style entries.

type graphDTO struct {
	Name  string    `json:"name"`
	Nodes int       `json:"nodes"`
	Edges []edgeDTO `json:"edges"`
}

type edgeDTO struct {
	U       int     `json:"u"`
	V       int     `json:"v"`
	Latency float64 `json:"latency"`
}

// Save writes the graph as indented JSON.
func (g *Graph) Save(w io.Writer) error {
	dto := graphDTO{Name: g.Name(), Nodes: g.Nodes(), Edges: make([]edgeDTO, 0, g.EdgeCount())}
	for _, e := range g.Edges() {
		dto.Edges = append(dto.Edges, edgeDTO{U: e.U, V: e.V, Latency: e.Latency})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("topology: encode graph: %w", err)
	}
	return nil
}

// LoadJSON reads a graph previously written by Save (or hand-authored in
// the same format) and validates it: node count, edge endpoints, no self
// loops or duplicates. Connectivity is NOT required — callers that need
// it check Connected.
func LoadJSON(r io.Reader) (*Graph, error) {
	var dto graphDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("topology: decode graph: %w", err)
	}
	g, err := NewGraph(dto.Name, dto.Nodes)
	if err != nil {
		return nil, err
	}
	for _, e := range dto.Edges {
		if err := g.AddEdge(e.U, e.V, e.Latency); err != nil {
			return nil, err
		}
	}
	return g, nil
}
