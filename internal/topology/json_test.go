package topology

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := MustLoad(NSFNET)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadJSON(&buf)
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got.Name() != g.Name() || got.Nodes() != g.Nodes() || got.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip changed shape: %s %d/%d vs %s %d/%d",
			got.Name(), got.Nodes(), got.EdgeCount(), g.Name(), g.Nodes(), g.EdgeCount())
	}
	ge, he := g.Edges(), got.Edges()
	for i := range ge {
		if ge[i] != he[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ge[i], he[i])
		}
	}
}

func TestLoadJSONHandAuthored(t *testing.T) {
	input := `{"name":"campus","nodes":3,"edges":[{"u":0,"v":1,"latency":2},{"u":1,"v":2,"latency":3}]}`
	g, err := LoadJSON(strings.NewReader(input))
	if err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if g.Name() != "campus" || g.Nodes() != 3 || g.EdgeCount() != 2 {
		t.Errorf("graph shape: %s %d/%d", g.Name(), g.Nodes(), g.EdgeCount())
	}
	lat, err := g.PathLatency(0, 2)
	if err != nil || lat != 5 {
		t.Errorf("PathLatency = %v, %v", lat, err)
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []struct {
		name, input string
		wantErr     error
	}{
		{"truncated", `{"name":`, nil},
		{"zero nodes", `{"name":"x","nodes":0,"edges":[]}`, ErrBadNode},
		{"edge out of range", `{"name":"x","nodes":2,"edges":[{"u":0,"v":5,"latency":1}]}`, ErrBadNode},
		{"self loop", `{"name":"x","nodes":2,"edges":[{"u":1,"v":1,"latency":1}]}`, ErrSelfLoop},
		{"duplicate", `{"name":"x","nodes":2,"edges":[{"u":0,"v":1,"latency":1},{"u":1,"v":0,"latency":2}]}`, ErrDuplicateEdge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadJSON(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("no error")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}
