package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// ErdosRenyi generates a connected G(n,p) random graph: each node pair is
// linked independently with probability p, then any disconnected components
// are stitched together with one extra link each so the result is always
// connected (the stitching adds at most n-1 edges and is the standard fix
// for simulation topologies).
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadNode, n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: probability %v out of [0,1]", p)
	}
	g, err := NewGraph(fmt.Sprintf("er-%d", n), n)
	if err != nil {
		return nil, err
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v, 1+float64(rng.Intn(19))); err != nil {
					return nil, err
				}
			}
		}
	}
	connect(g, rng)
	return g, nil
}

// BarabasiAlbert generates a connected scale-free graph by preferential
// attachment: nodes arrive one at a time and link to m existing nodes with
// probability proportional to their degree. It matches the hub-and-spoke
// shape of metropolitan access networks.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadNode, n)
	}
	if m < 1 || m >= n {
		return nil, fmt.Errorf("topology: attachment count %d out of [1,%d)", m, n)
	}
	g, err := NewGraph(fmt.Sprintf("ba-%d-%d", n, m), n)
	if err != nil {
		return nil, err
	}
	// Seed clique of m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v, 1+float64(rng.Intn(19))); err != nil {
				return nil, err
			}
		}
	}
	// targets holds one entry per edge endpoint: sampling uniformly from it
	// is sampling proportionally to degree.
	targets := make([]int, 0, 2*m*n)
	for _, e := range g.Edges() {
		targets = append(targets, e.U, e.V)
	}
	for v := m + 1; v < n; v++ {
		seen := make(map[int]bool, m)
		chosen := make([]int, 0, m)
		for len(chosen) < m {
			var candidate int
			if len(targets) == 0 {
				candidate = rng.Intn(v)
			} else {
				candidate = targets[rng.Intn(len(targets))]
			}
			if candidate != v && !seen[candidate] {
				seen[candidate] = true
				chosen = append(chosen, candidate)
			}
		}
		for _, u := range chosen {
			if err := g.AddEdge(u, v, 1+float64(rng.Intn(19))); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	return g, nil
}

// Waxman generates a connected Waxman random graph: nodes get uniform
// coordinates in the unit square and each pair links with probability
// alpha·exp(-dist/(beta·sqrt(2))). Link latency is proportional to
// Euclidean distance. Classic model for wide-area topologies.
func Waxman(n int, alpha, beta float64, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadNode, n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("topology: waxman parameters alpha=%v beta=%v out of (0,1]", alpha, beta)
	}
	g, err := NewGraph(fmt.Sprintf("waxman-%d", n), n)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	maxDist := math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
			if rng.Float64() < alpha*math.Exp(-d/(beta*maxDist)) {
				if err := g.AddEdge(u, v, 1+20*d); err != nil {
					return nil, err
				}
			}
		}
	}
	connect(g, rng)
	return g, nil
}

// connect stitches disconnected components together by linking a random
// node of each non-root component to a random already-reached node.
func connect(g *Graph, rng *rand.Rand) {
	n := g.Nodes()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := len(components)
		stack := []int{start}
		comp[start] = id
		var members []int
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, nb := range g.adj[u] {
				if comp[nb.node] == -1 {
					comp[nb.node] = id
					stack = append(stack, nb.node)
				}
			}
		}
		components = append(components, members)
	}
	reached := components[0]
	for _, members := range components[1:] {
		u := reached[rng.Intn(len(reached))]
		v := members[rng.Intn(len(members))]
		// Ignore the error: u and v are in different components, so the
		// edge cannot be a duplicate or self-loop.
		_ = g.AddEdge(u, v, 1+float64(rng.Intn(19)))
		reached = append(reached, members...)
	}
}
