package topology

import (
	"math/rand"
	"testing"
)

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := ErdosRenyi(30, 0.1, rng)
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if g.Nodes() != 30 {
		t.Errorf("Nodes = %d, want 30", g.Nodes())
	}
	if !g.Connected() {
		t.Error("ErdosRenyi graph disconnected after stitching")
	}
}

func TestErdosRenyiSparseStillConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := ErdosRenyi(50, 0, rng) // no random links at all
	if err != nil {
		t.Fatalf("ErdosRenyi: %v", err)
	}
	if !g.Connected() {
		t.Error("p=0 graph must still be stitched connected")
	}
	if g.EdgeCount() != 49 {
		t.Errorf("p=0 graph has %d edges, want 49 (spanning stitches)", g.EdgeCount())
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := ErdosRenyi(0, 0.5, rng); err == nil {
		t.Error("n=0 did not error")
	}
	if _, err := ErdosRenyi(5, 1.5, rng); err == nil {
		t.Error("p>1 did not error")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := BarabasiAlbert(40, 2, rng)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	if g.Nodes() != 40 {
		t.Errorf("Nodes = %d, want 40", g.Nodes())
	}
	if !g.Connected() {
		t.Error("BA graph disconnected")
	}
	// Seed clique (m+1 choose 2) + m links per remaining node.
	want := 3 + 2*(40-3)
	if g.EdgeCount() != want {
		t.Errorf("EdgeCount = %d, want %d", g.EdgeCount(), want)
	}
	// Scale-free shape: maximum degree should clearly exceed attachment m.
	maxDeg := 0
	for v := 0; v < g.Nodes(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 5 {
		t.Errorf("max degree %d suspiciously small for a BA graph", maxDeg)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := BarabasiAlbert(1, 1, rng); err == nil {
		t.Error("n=1 did not error")
	}
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 did not error")
	}
	if _, err := BarabasiAlbert(5, 5, rng); err == nil {
		t.Error("m=n did not error")
	}
}

func TestWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := Waxman(30, 0.8, 0.5, rng)
	if err != nil {
		t.Fatalf("Waxman: %v", err)
	}
	if g.Nodes() != 30 || !g.Connected() {
		t.Errorf("Waxman graph nodes=%d connected=%v", g.Nodes(), g.Connected())
	}
}

func TestWaxmanErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := Waxman(0, 0.5, 0.5, rng); err == nil {
		t.Error("n=0 did not error")
	}
	if _, err := Waxman(5, 0, 0.5, rng); err == nil {
		t.Error("alpha=0 did not error")
	}
	if _, err := Waxman(5, 0.5, 2, rng); err == nil {
		t.Error("beta>1 did not error")
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a, err := BarabasiAlbert(25, 2, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	b, err := BarabasiAlbert(25, 2, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs across identical seeds", i)
		}
	}
}
