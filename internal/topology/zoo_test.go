package topology

import (
	"errors"
	"math/rand"
	"testing"
)

func TestLoadEmbedded(t *testing.T) {
	wantSizes := map[string][2]int{
		Abilene: {11, 14},
		NSFNET:  {14, 21},
		GEANT:   {23, 37},
		AARNet:  {19, 24},
		ATTNA:   {25, 57},
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			g, err := Load(name)
			if err != nil {
				t.Fatalf("Load(%q): %v", name, err)
			}
			want := wantSizes[name]
			if g.Nodes() != want[0] || g.EdgeCount() != want[1] {
				t.Errorf("size = (%d,%d), want (%d,%d)", g.Nodes(), g.EdgeCount(), want[0], want[1])
			}
			if !g.Connected() {
				t.Error("embedded topology disconnected")
			}
			if g.Name() != name {
				t.Errorf("Name() = %q, want %q", g.Name(), name)
			}
		})
	}
}

func TestLoadDeterministic(t *testing.T) {
	a := MustLoad(GEANT)
	b := MustLoad(GEANT)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("Load(unknown) err = %v, want ErrUnknown", err)
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad(unknown) did not panic")
		}
	}()
	MustLoad("nope")
}

func TestPlaceCloudletsByDegree(t *testing.T) {
	g := MustLoad(NSFNET)
	sites, err := PlaceCloudletsByDegree(g, 5)
	if err != nil {
		t.Fatalf("PlaceCloudletsByDegree: %v", err)
	}
	if len(sites) != 5 {
		t.Fatalf("got %d sites, want 5", len(sites))
	}
	// Sites must be ordered by non-increasing degree.
	for i := 1; i < len(sites); i++ {
		if g.Degree(sites[i]) > g.Degree(sites[i-1]) {
			t.Errorf("sites not degree-ordered: %v", sites)
		}
	}
	if _, err := PlaceCloudletsByDegree(g, 0); !errors.Is(err, ErrBadNode) {
		t.Errorf("k=0 err = %v, want ErrBadNode", err)
	}
	if _, err := PlaceCloudletsByDegree(g, 99); !errors.Is(err, ErrBadNode) {
		t.Errorf("k too large err = %v, want ErrBadNode", err)
	}
}

func TestPlaceCloudletsRandom(t *testing.T) {
	g := MustLoad(Abilene)
	rng := rand.New(rand.NewSource(7))
	sites, err := PlaceCloudletsRandom(g, 4, rng)
	if err != nil {
		t.Fatalf("PlaceCloudletsRandom: %v", err)
	}
	seen := map[int]bool{}
	for _, s := range sites {
		if s < 0 || s >= g.Nodes() {
			t.Errorf("site %d out of range", s)
		}
		if seen[s] {
			t.Errorf("duplicate site %d", s)
		}
		seen[s] = true
	}
	if _, err := PlaceCloudletsRandom(g, 0, rng); !errors.Is(err, ErrBadNode) {
		t.Errorf("k=0 err = %v, want ErrBadNode", err)
	}
}

func TestPlaceCloudletsKCenter(t *testing.T) {
	g := pathGraph(t, 10)
	sites, err := PlaceCloudletsKCenter(g, 2)
	if err != nil {
		t.Fatalf("PlaceCloudletsKCenter: %v", err)
	}
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	// On a path the two centers must include both ends' neighborhoods:
	// they should be far apart (at least half the diameter).
	d, _ := g.Diameter()
	lat, err := g.PathLatency(sites[0], sites[1])
	if err != nil {
		t.Fatalf("PathLatency: %v", err)
	}
	if lat < d/2 {
		t.Errorf("k-center sites %v too close: %v < %v", sites, lat, d/2)
	}
	if _, err := PlaceCloudletsKCenter(g, 0); !errors.Is(err, ErrBadNode) {
		t.Errorf("k=0 err = %v, want ErrBadNode", err)
	}
}
