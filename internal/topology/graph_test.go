package topology

import (
	"errors"
	"math"
	"testing"
)

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := NewGraph("path", n)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1, 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestNewGraphErrors(t *testing.T) {
	if _, err := NewGraph("x", 0); !errors.Is(err, ErrBadNode) {
		t.Errorf("NewGraph(0) err = %v, want ErrBadNode", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g, err := NewGraph("x", 3)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if err := g.AddEdge(0, 3, 1); !errors.Is(err, ErrBadNode) {
		t.Errorf("out-of-range edge err = %v, want ErrBadNode", err)
	}
	if err := g.AddEdge(1, 1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop err = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0, 1); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge (reversed) err = %v, want ErrDuplicateEdge", err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := pathGraph(t, 4)
	if g.Name() != "path" || g.Nodes() != 4 || g.EdgeCount() != 3 {
		t.Fatalf("basics: %s %d %d", g.Name(), g.Nodes(), g.EdgeCount())
	}
	if !g.HasEdge(2, 1) || g.HasEdge(0, 3) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 || g.Degree(9) != 0 {
		t.Error("Degree wrong")
	}
	edges := g.Edges()
	edges[0].U = 99 // must not alias internal state
	if g.Edges()[0].U == 99 {
		t.Error("Edges() aliases internal slice")
	}
}

func TestAddEdgeClampsLatency(t *testing.T) {
	g, _ := NewGraph("x", 2)
	if err := g.AddEdge(0, 1, -5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if got := g.Edges()[0].Latency; got != 1 {
		t.Errorf("clamped latency = %v, want 1", got)
	}
}

func TestConnected(t *testing.T) {
	g := pathGraph(t, 5)
	if !g.Connected() {
		t.Error("path graph reported disconnected")
	}
	h, _ := NewGraph("two", 2)
	if h.Connected() {
		t.Error("edgeless 2-node graph reported connected")
	}
}

func TestShortestLatencies(t *testing.T) {
	g := pathGraph(t, 4) // latencies all 2
	dist, err := g.ShortestLatencies(0)
	if err != nil {
		t.Fatalf("ShortestLatencies: %v", err)
	}
	want := []float64{0, 2, 4, 6}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], w)
		}
	}
	if _, err := g.ShortestLatencies(-1); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad source err = %v, want ErrBadNode", err)
	}
}

func TestShortestLatenciesPrefersLighterPath(t *testing.T) {
	g, _ := NewGraph("tri", 3)
	_ = g.AddEdge(0, 1, 10)
	_ = g.AddEdge(0, 2, 1)
	_ = g.AddEdge(2, 1, 2)
	got, err := g.PathLatency(0, 1)
	if err != nil {
		t.Fatalf("PathLatency: %v", err)
	}
	if got != 3 {
		t.Errorf("PathLatency(0,1) = %v, want 3 (via node 2)", got)
	}
}

func TestPathLatencyErrors(t *testing.T) {
	g, _ := NewGraph("disc", 3)
	_ = g.AddEdge(0, 1, 1)
	if _, err := g.PathLatency(0, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("no path err = %v, want ErrNoPath", err)
	}
	if _, err := g.PathLatency(0, 9); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad target err = %v, want ErrBadNode", err)
	}
	if _, err := g.PathLatency(-2, 1); !errors.Is(err, ErrBadNode) {
		t.Errorf("bad source err = %v, want ErrBadNode", err)
	}
}

func TestDiameter(t *testing.T) {
	g := pathGraph(t, 4)
	d, err := g.Diameter()
	if err != nil {
		t.Fatalf("Diameter: %v", err)
	}
	if d != 6 {
		t.Errorf("Diameter = %v, want 6", d)
	}
	h, _ := NewGraph("disc", 2)
	if _, err := h.Diameter(); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected Diameter err = %v, want ErrDisconnected", err)
	}
}

func TestNodesByDegree(t *testing.T) {
	g, _ := NewGraph("star", 4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(1, 2, 1)
	_ = g.AddEdge(1, 3, 1)
	order := g.NodesByDegree()
	if order[0] != 1 {
		t.Errorf("NodesByDegree()[0] = %d, want hub 1", order[0])
	}
	// Ties (0,2,3 all degree 1) broken by ascending ID.
	if order[1] != 0 || order[2] != 2 || order[3] != 3 {
		t.Errorf("NodesByDegree() = %v, want [1 0 2 3]", order)
	}
}

func TestDistHeapOrdering(t *testing.T) {
	h := &distHeap{}
	for _, d := range []float64{5, 1, 4, 2, 3} {
		h.push(distItem{node: int(d), dist: d})
	}
	prev := math.Inf(-1)
	for h.Len() > 0 {
		it := h.pop()
		if it.dist < prev {
			t.Fatalf("heap pop out of order: %v after %v", it.dist, prev)
		}
		prev = it.dist
	}
}
