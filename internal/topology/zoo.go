package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// The embedded topologies below stand in for the Internet Topology Zoo
// dataset the paper evaluates on [18]. Abilene and NSFNET are encoded from
// their well-known published layouts; the remaining entries are
// deterministic synthetic encodings whose node and edge counts match the
// corresponding Zoo graphs (the experiments only depend on the size and
// connectivity of the access network, not on exact link identities). Link
// latencies are deterministic per topology.

// Names of the embedded topologies, in the order returned by Names.
const (
	Abilene = "abilene"
	NSFNET  = "nsfnet"
	GEANT   = "geant"
	AARNet  = "aarnet"
	ATTNA   = "att-na"
)

// Names returns the embedded topology names in a stable order.
func Names() []string {
	return []string{Abilene, NSFNET, GEANT, AARNet, ATTNA}
}

// Load returns an embedded topology by name.
func Load(name string) (*Graph, error) {
	switch name {
	case Abilene:
		return buildFromEdges(Abilene, 11, abileneEdges())
	case NSFNET:
		return buildFromEdges(NSFNET, 14, nsfnetEdges())
	case GEANT:
		return buildSynthetic(GEANT, 23, 37, 101)
	case AARNet:
		return buildSynthetic(AARNet, 19, 24, 102)
	case ATTNA:
		return buildSynthetic(ATTNA, 25, 57, 103)
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
}

// MustLoad is Load for embedded names known to exist; it panics on error
// and is intended for tests and examples.
func MustLoad(name string) *Graph {
	g, err := Load(name)
	if err != nil {
		panic(err)
	}
	return g
}

type rawEdge struct {
	u, v    int
	latency float64
}

// abileneEdges encodes the Internet2 Abilene backbone (11 PoPs, 14 links).
// Node order: Seattle, Sunnyvale, LosAngeles, Denver, KansasCity, Houston,
// Chicago, Indianapolis, Atlanta, WashingtonDC, NewYork.
func abileneEdges() []rawEdge {
	return []rawEdge{
		{0, 1, 9}, {0, 3, 13}, {1, 2, 5}, {1, 3, 12}, {2, 5, 16},
		{3, 4, 6}, {4, 5, 8}, {4, 7, 6}, {5, 8, 10}, {6, 7, 3},
		{6, 10, 9}, {7, 8, 6}, {8, 9, 7}, {9, 10, 3},
	}
}

// nsfnetEdges encodes the 14-node, 21-link NSFNET T1 backbone.
func nsfnetEdges() []rawEdge {
	return []rawEdge{
		{0, 1, 9}, {0, 2, 9}, {0, 3, 7}, {1, 2, 4}, {1, 7, 20},
		{2, 5, 15}, {3, 4, 5}, {3, 10, 18}, {4, 5, 9}, {4, 6, 7},
		{5, 9, 8}, {5, 13, 16}, {6, 7, 6}, {6, 9, 10}, {7, 8, 7},
		{8, 11, 4}, {8, 13, 3}, {9, 12, 8}, {10, 11, 7}, {10, 12, 9},
		{11, 13, 4},
	}
}

func buildFromEdges(name string, n int, edges []rawEdge) (*Graph, error) {
	g, err := NewGraph(name, n)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		if err := g.AddEdge(e.u, e.v, e.latency); err != nil {
			return nil, fmt.Errorf("topology %q: %w", name, err)
		}
	}
	if !g.Connected() {
		return nil, fmt.Errorf("topology %q: %w", name, ErrDisconnected)
	}
	return g, nil
}

// buildSynthetic produces a deterministic connected graph with exactly n
// nodes and m edges: a random spanning tree plus random chords, seeded so
// repeated loads are identical.
func buildSynthetic(name string, n, m int, seed int64) (*Graph, error) {
	if m < n-1 {
		return nil, fmt.Errorf("topology %q: %d edges cannot connect %d nodes", name, m, n)
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		return nil, fmt.Errorf("topology %q: %d edges exceed simple-graph maximum %d", name, m, maxEdges)
	}
	rng := rand.New(rand.NewSource(seed))
	g, err := NewGraph(name, n)
	if err != nil {
		return nil, err
	}
	// Random spanning tree: attach each node to a random earlier node.
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		if err := g.AddEdge(u, v, 1+float64(rng.Intn(19))); err != nil {
			return nil, err
		}
	}
	for g.EdgeCount() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, 1+float64(rng.Intn(19))); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// PlaceCloudletsByDegree returns the k best-connected nodes as cloudlet
// sites: cloudlets co-locate with the busiest access points.
func PlaceCloudletsByDegree(g *Graph, k int) ([]int, error) {
	if k < 1 || k > g.Nodes() {
		return nil, fmt.Errorf("%w: k=%d with %d nodes", ErrBadNode, k, g.Nodes())
	}
	return g.NodesByDegree()[:k], nil
}

// PlaceCloudletsRandom returns k distinct random nodes as cloudlet sites.
func PlaceCloudletsRandom(g *Graph, k int, rng *rand.Rand) ([]int, error) {
	if k < 1 || k > g.Nodes() {
		return nil, fmt.Errorf("%w: k=%d with %d nodes", ErrBadNode, k, g.Nodes())
	}
	perm := rng.Perm(g.Nodes())
	sites := append([]int(nil), perm[:k]...)
	sort.Ints(sites)
	return sites, nil
}

// PlaceCloudletsKCenter greedily picks k sites that are far apart
// (farthest-point heuristic for the k-center problem), minimizing the worst
// access latency from any AP to its nearest cloudlet.
func PlaceCloudletsKCenter(g *Graph, k int) ([]int, error) {
	if k < 1 || k > g.Nodes() {
		return nil, fmt.Errorf("%w: k=%d with %d nodes", ErrBadNode, k, g.Nodes())
	}
	// Start from the highest-degree node for determinism.
	first := g.NodesByDegree()[0]
	sites := []int{first}
	minDist, err := g.ShortestLatencies(first)
	if err != nil {
		return nil, err
	}
	for len(sites) < k {
		// Pick the node farthest from all current sites.
		far, farDist := -1, -1.0
		for v := 0; v < g.Nodes(); v++ {
			if minDist[v] > farDist {
				far, farDist = v, minDist[v]
			}
		}
		sites = append(sites, far)
		dist, err := g.ShortestLatencies(far)
		if err != nil {
			return nil, err
		}
		for v := range minDist {
			if dist[v] < minDist[v] {
				minDist[v] = dist[v]
			}
		}
	}
	sort.Ints(sites)
	return sites, nil
}
