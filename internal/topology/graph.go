// Package topology models the MEC access network G = (V, E): access-point
// nodes connected by links, with cloudlets co-located at a subset of nodes.
// It provides embedded real-world topologies in the style of the Internet
// Topology Zoo (the paper's topology source [18]), random graph generators,
// and the path/selection algorithms the experiments need.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Errors returned by graph construction and queries.
var (
	ErrBadNode       = errors.New("topology: node out of range")
	ErrSelfLoop      = errors.New("topology: self loop")
	ErrDuplicateEdge = errors.New("topology: duplicate edge")
	ErrDisconnected  = errors.New("topology: graph is disconnected")
	ErrNoPath        = errors.New("topology: no path between nodes")
	ErrUnknown       = errors.New("topology: unknown topology name")
)

// Edge is an undirected link between two access points with a positive
// latency used as its routing weight.
type Edge struct {
	// U and V are the endpoint node IDs, with U < V canonically.
	U, V int
	// Latency is the link's propagation latency in milliseconds.
	Latency float64
}

// Graph is an undirected simple graph of access-point nodes. Construct with
// NewGraph and AddEdge; node IDs are 0-based.
type Graph struct {
	name  string
	n     int
	edges []Edge
	adj   [][]neighbor
	set   map[[2]int]bool
}

type neighbor struct {
	node    int
	latency float64
}

// NewGraph creates an empty graph with n nodes.
func NewGraph(name string, n int) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("%w: %d nodes", ErrBadNode, n)
	}
	return &Graph{
		name: name,
		n:    n,
		adj:  make([][]neighbor, n),
		set:  make(map[[2]int]bool),
	}, nil
}

// Name returns the topology's label.
func (g *Graph) Name() string { return g.name }

// Nodes returns the number of nodes |V|.
func (g *Graph) Nodes() int { return g.n }

// EdgeCount returns the number of links |E|.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// AddEdge inserts an undirected link with the given latency. Latencies that
// are not positive are clamped to 1.
func (g *Graph) AddEdge(u, v int, latency float64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: edge (%d,%d) with %d nodes", ErrBadNode, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: node %d", ErrSelfLoop, u)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int{u, v}
	if g.set[key] {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	if latency <= 0 {
		latency = 1
	}
	g.set[key] = true
	g.edges = append(g.edges, Edge{U: u, V: v, Latency: latency})
	g.adj[u] = append(g.adj[u], neighbor{node: v, latency: latency})
	g.adj[v] = append(g.adj[v], neighbor{node: u, latency: latency})
	return nil
}

// HasEdge reports whether nodes u and v are directly linked.
func (g *Graph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return g.set[[2]int{u, v}]
}

// Degree returns the number of links at node u, or 0 for invalid nodes.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// Connected reports whether every node is reachable from node 0.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[u] {
			if !seen[nb.node] {
				seen[nb.node] = true
				count++
				stack = append(stack, nb.node)
			}
		}
	}
	return count == g.n
}

// ShortestLatencies runs Dijkstra from src and returns the latency to every
// node (math.Inf(1) for unreachable nodes).
func (g *Graph) ShortestLatencies(src int) ([]float64, error) {
	if src < 0 || src >= g.n {
		return nil, fmt.Errorf("%w: source %d", ErrBadNode, src)
	}
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	done := make([]bool, g.n)
	h := &distHeap{items: []distItem{{node: src, dist: 0}}}
	for h.Len() > 0 {
		it := h.pop()
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, nb := range g.adj[it.node] {
			if alt := it.dist + nb.latency; alt < dist[nb.node] {
				dist[nb.node] = alt
				h.push(distItem{node: nb.node, dist: alt})
			}
		}
	}
	return dist, nil
}

// PathLatency returns the shortest-path latency between u and v.
func (g *Graph) PathLatency(u, v int) (float64, error) {
	dist, err := g.ShortestLatencies(u)
	if err != nil {
		return 0, err
	}
	if v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: target %d", ErrBadNode, v)
	}
	if math.IsInf(dist[v], 1) {
		return 0, fmt.Errorf("%w: %d to %d", ErrNoPath, u, v)
	}
	return dist[v], nil
}

// Diameter returns the largest shortest-path latency between any node pair.
// It returns an error when the graph is disconnected.
func (g *Graph) Diameter() (float64, error) {
	worst := 0.0
	for u := 0; u < g.n; u++ {
		dist, err := g.ShortestLatencies(u)
		if err != nil {
			return 0, err
		}
		for _, d := range dist {
			if math.IsInf(d, 1) {
				return 0, ErrDisconnected
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// NodesByDegree returns node IDs sorted by decreasing degree, ties broken
// by ascending ID. It is the default cloudlet-placement order: cloudlets go
// at the best-connected access points.
func (g *Graph) NodesByDegree() []int {
	ids := make([]int, g.n)
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		da, db := len(g.adj[ids[a]]), len(g.adj[ids[b]])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	return ids
}

// distHeap is a minimal binary min-heap for Dijkstra, avoiding
// container/heap interface allocation overhead in hot loops.
type distItem struct {
	node int
	dist float64
}

type distHeap struct {
	items []distItem
}

func (h *distHeap) Len() int { return len(h.items) }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.items[l].dist < h.items[smallest].dist {
			smallest = l
		}
		if r < len(h.items) && h.items[r].dist < h.items[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
