package onsite

import (
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

// request returns a simple in-window request for the λ-aging tests.
func agingRequest(id, arrival, duration int) core.Request {
	return core.Request{
		ID: id, VNF: 0, Reliability: 0.97, Payment: 50,
		Arrival: arrival, Duration: duration,
	}
}

var _ core.WindowAdvancer = (*Scheduler)(nil)

// newRollingLedger builds a rolling ledger advanced to base.
func newRollingLedger(t *testing.T, n *core.Network, window, base int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.NewRolling(caps, window)
	if err != nil {
		t.Fatalf("timeslot.NewRolling: %v", err)
	}
	if err := l.Advance(base); err != nil {
		t.Fatalf("Advance(%d): %v", base, err)
	}
	return l
}

// TestAdvanceWindowAgesLambda checks that retiring a slot re-initializes
// its dual price while in-window prices are untouched — the λ-aging half
// of the rolling-horizon equivalence argument.
func TestAdvanceWindowAgesLambda(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 6, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newRollingLedger(t, n, 6, 1)
	req := agingRequest(1, 1, 4)
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("request rejected")
	}
	j := p.Assignments[0].Cloudlet
	if s.Lambda(j, 1) <= 0 || s.Lambda(j, 4) <= 0 {
		t.Fatalf("λ not raised over admitted window: λ1=%v λ4=%v", s.Lambda(j, 1), s.Lambda(j, 4))
	}
	l3, l4 := s.Lambda(j, 3), s.Lambda(j, 4)

	s.AdvanceWindow(3)
	if err := view.Advance(3); err != nil {
		t.Fatalf("view.Advance: %v", err)
	}
	if s.WindowBase() != 3 {
		t.Fatalf("WindowBase = %d, want 3", s.WindowBase())
	}
	// Retired slots read as the out-of-range sentinel.
	if s.Lambda(j, 1) != 0 || s.Lambda(j, 2) != 0 {
		t.Fatalf("retired λ = %v,%v, want 0,0", s.Lambda(j, 1), s.Lambda(j, 2))
	}
	// In-window prices are bit-identical to before the advance.
	if s.Lambda(j, 3) != l3 || s.Lambda(j, 4) != l4 {
		t.Fatalf("in-window λ changed across advance: %v,%v vs %v,%v",
			s.Lambda(j, 3), s.Lambda(j, 4), l3, l4)
	}
	// Entering slots 7 and 8 start at the fresh initial price, not at slot
	// 1/2's accumulated price.
	if s.Lambda(j, 7) != 0 || s.Lambda(j, 8) != 0 {
		t.Fatalf("entering λ = %v,%v, want fresh 0,0", s.Lambda(j, 7), s.Lambda(j, 8))
	}

	// Requests behind the base are rejected; requests in the moved window
	// are admitted and price against the recycled (fresh) slots.
	if _, ok := s.Propose(agingRequest(2, 2, 2), view); ok {
		t.Fatal("request behind window base admitted")
	}
	if _, ok := s.Propose(agingRequest(3, 7, 2), view); !ok {
		t.Fatal("request in advanced window rejected")
	}
	// Backward / no-op advances leave the base alone.
	s.AdvanceWindow(2)
	if s.WindowBase() != 3 {
		t.Fatalf("backward AdvanceWindow moved base to %d", s.WindowBase())
	}
}

// TestAdvanceWindowBeyondHorizon retires the whole ring at once.
func TestAdvanceWindowBeyondHorizon(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 4, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 4)
	if _, ok := s.Decide(agingRequest(1, 1, 4), view); !ok {
		t.Fatal("request rejected")
	}
	s.AdvanceWindow(100)
	for j := 0; j < 2; j++ {
		for slot := 100; slot <= 103; slot++ {
			if got := s.Lambda(j, slot); got != 0 {
				t.Fatalf("λ(%d,%d) = %v after full-ring advance, want 0", j, slot, got)
			}
		}
	}
	if s.WindowBase() != 100 {
		t.Fatalf("WindowBase = %d, want 100", s.WindowBase())
	}
}

// TestRollingFixedDecisionEquivalence runs the same stream through a fixed
// scheduler over [1, T] and a rolling scheduler that advanced to base b,
// with the stream shifted by b-1 slots: decisions and dual prices must be
// bit-identical — an advanced window is a fresh horizon under translation.
func TestRollingFixedDecisionEquivalence(t *testing.T) {
	const T = 8
	const shift = 5 // rolling window becomes [6, 13]
	n := testNetwork()
	fixed, err := NewScheduler(n, T, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	rolling, err := NewScheduler(n, T, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	rolling.AdvanceWindow(1 + shift)
	fixedView := newLedger(t, n, T)
	rollingView := newRollingLedger(t, n, T, 1+shift)

	reqs := []core.Request{
		agingRequest(1, 1, 3), agingRequest(2, 2, 4), agingRequest(3, 1, 8),
		agingRequest(4, 4, 2), agingRequest(5, 6, 3), agingRequest(6, 3, 5),
	}
	for _, r := range reqs {
		pF, okF := fixed.Decide(r, fixedView)
		rs := r
		rs.Arrival += shift
		pR, okR := rolling.Decide(rs, rollingView)
		if okF != okR {
			t.Fatalf("req %d: fixed admit %v, rolling admit %v", r.ID, okF, okR)
		}
		if okF {
			if pF.Assignments[0] != pR.Assignments[0] {
				t.Fatalf("req %d: placements diverged %+v vs %+v", r.ID, pF.Assignments, pR.Assignments)
			}
			// Mirror the admission in the views so later residual checks agree.
			units := pF.Assignments[0].Instances * n.Catalog[r.VNF].Demand
			if err := fixedView.Reserve(pF.Assignments[0].Cloudlet, r.Arrival, r.Duration, units); err != nil {
				t.Fatalf("fixed reserve: %v", err)
			}
			if err := rollingView.Reserve(pR.Assignments[0].Cloudlet, rs.Arrival, rs.Duration, units); err != nil {
				t.Fatalf("rolling reserve: %v", err)
			}
		}
	}
	for j := 0; j < 2; j++ {
		for slot := 1; slot <= T; slot++ {
			if lf, lr := fixed.Lambda(j, slot), rolling.Lambda(j, slot+shift); lf != lr {
				t.Fatalf("λ(%d,%d) fixed %v, rolling shifted %v — not bit-identical", j, slot, lf, lr)
			}
		}
	}
}
