package onsite

import (
	"errors"
	"testing"

	"revnf/internal/core"
)

func TestAnalyze(t *testing.T) {
	n := testNetwork()
	trace := []core.Request{
		{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5},
		{ID: 1, VNF: 1, Reliability: 0.95, Arrival: 2, Duration: 4, Payment: 9},
	}
	a, err := Analyze(n, trace)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if a.AMax < a.AMin || a.AMin <= 0 {
		t.Errorf("a_max %v, a_min %v inconsistent", a.AMax, a.AMin)
	}
	if a.CompetitiveRatio != 1+a.AMax {
		t.Errorf("CompetitiveRatio = %v, want %v", a.CompetitiveRatio, 1+a.AMax)
	}
	if a.ViolationBound <= 0 || a.ViolationRatio <= 0 {
		t.Errorf("violation bound %v ratio %v not positive", a.ViolationBound, a.ViolationRatio)
	}
	// Manual a_max: request 1 uses VNF 1 (demand 2, rf 0.9) with R=0.95.
	// Worst feasible cloudlet has rc=0.99: N = ceil(ln(1-0.95/0.99)/ln(0.1)).
	nInst, err := core.OnsiteInstances(0.9, 0.99, 0.95)
	if err != nil {
		t.Fatalf("OnsiteInstances: %v", err)
	}
	want := float64(nInst * 2)
	if a.AMax != want {
		t.Errorf("AMax = %v, want %v", a.AMax, want)
	}
}

func TestAnalyzeInfeasible(t *testing.T) {
	n := testNetwork()
	trace := []core.Request{
		{ID: 0, VNF: 0, Reliability: 0.99999, Arrival: 1, Duration: 1, Payment: 1},
	}
	if _, err := Analyze(n, trace); !errors.Is(err, core.ErrInfeasible) {
		t.Errorf("Analyze err = %v, want ErrInfeasible", err)
	}
}

func TestAnalyzeInvalidNetwork(t *testing.T) {
	bad := testNetwork()
	bad.Catalog = nil
	if _, err := Analyze(bad, nil); err == nil {
		t.Error("invalid network did not error")
	}
}
