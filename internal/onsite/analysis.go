package onsite

import (
	"fmt"
	"math"

	"revnf/internal/core"
)

// Analysis holds the theoretical quantities of Theorem 1 and Lemma 8 for a
// concrete instance: the competitive ratio 1+a_max and the capacity
// violation bound ξ.
type Analysis struct {
	// AMax and AMin are the extreme per-request footprints
	// a_ij = N_ij·c(f_i) over all feasible (request, cloudlet) pairs.
	AMax, AMin float64
	// CompetitiveRatio is 1 + a_max (Theorem 1).
	CompetitiveRatio float64
	// ViolationBound is ξ (Lemma 8): the worst-case per-slot usage of any
	// cloudlet, in computing units.
	ViolationBound float64
	// ViolationRatio is ξ divided by the smallest capacity: the
	// multiplicative overcommitment bound.
	ViolationRatio float64
}

// Analyze computes the theoretical guarantees of Algorithm 1 for an
// instance. It returns an error when no request can be feasibly served by
// any cloudlet (the quantities are undefined then).
func Analyze(network *core.Network, trace []core.Request) (*Analysis, error) {
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("onsite: %w", err)
	}
	aMax, aMin := 0.0, math.Inf(1)
	payMax, payMin := 0.0, math.Inf(1)
	dMax, dMin := 0, math.MaxInt
	for _, req := range trace {
		vnf := network.Catalog[req.VNF]
		feasible := false
		for _, cl := range network.Cloudlets {
			n, err := core.OnsiteInstances(vnf.Reliability, cl.Reliability, req.Reliability)
			if err != nil {
				continue
			}
			feasible = true
			a := float64(n * vnf.Demand)
			if a > aMax {
				aMax = a
			}
			if a < aMin {
				aMin = a
			}
		}
		if !feasible {
			continue
		}
		if req.Payment > payMax {
			payMax = req.Payment
		}
		if req.Payment < payMin {
			payMin = req.Payment
		}
		if req.Duration > dMax {
			dMax = req.Duration
		}
		if req.Duration < dMin {
			dMin = req.Duration
		}
	}
	if aMax == 0 {
		return nil, fmt.Errorf("onsite: %w: no feasible request/cloudlet pair", core.ErrInfeasible)
	}
	capMax, capMin := 0.0, math.Inf(1)
	for _, cl := range network.Cloudlets {
		c := float64(cl.Capacity)
		if c > capMax {
			capMax = c
		}
		if c < capMin {
			capMin = c
		}
	}
	// ξ from Lemma 8:
	// ξ = a_max / (cap_min·log2(1 + a_min/cap_max)) ·
	//     log2(pay_max·d_max/pay_min·(1/a_min + a_max/(a_min·cap_min)
	//          + a_max/(d_min·cap_min)) + 1)
	// The lemma expresses the per-slot load bound; we report it in
	// computing units (without the 1/cap_min factor) and as a ratio.
	inner := payMax * float64(dMax) / payMin *
		(1/aMin + aMax/(aMin*capMin) + aMax/(float64(dMin)*capMin))
	xiUnits := aMax / math.Log2(1+aMin/capMax) * math.Log2(inner+1)
	return &Analysis{
		AMax:             aMax,
		AMin:             aMin,
		CompetitiveRatio: 1 + aMax,
		ViolationBound:   xiUnits,
		ViolationRatio:   xiUnits / capMin,
	}, nil
}
