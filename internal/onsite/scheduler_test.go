package onsite

import (
	"errors"
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

func testNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 10, Reliability: 0.999},
		},
	}
}

func newLedger(t *testing.T, n *core.Network, horizon int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.New(caps, horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	return l
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler(nil, 5); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("nil network err = %v", err)
	}
	bad := testNetwork()
	bad.Cloudlets[0].Capacity = 0
	if _, err := NewScheduler(bad, 5); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("invalid network err = %v", err)
	}
	if _, err := NewScheduler(testNetwork(), 0); !errors.Is(err, ErrBadHorizon) {
		t.Errorf("bad horizon err = %v", err)
	}
	if _, err := NewScheduler(testNetwork(), 5, WithScale(0.5)); !errors.Is(err, ErrBadScale) {
		t.Errorf("bad scale err = %v", err)
	}
}

func TestSchedulerIdentity(t *testing.T) {
	raw, err := NewScheduler(testNetwork(), 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if raw.Name() != "pd-onsite-raw" || raw.Scheme() != core.OnSite {
		t.Errorf("raw identity = %q/%v", raw.Name(), raw.Scheme())
	}
	enf, err := NewScheduler(testNetwork(), 5, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if enf.Name() != "pd-onsite" {
		t.Errorf("enforced name = %q", enf.Name())
	}
	named, err := NewScheduler(testNetwork(), 5, WithName("custom"))
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if named.Name() != "custom" {
		t.Errorf("custom name = %q", named.Name())
	}
}

func TestDecideAdmitsFirstRequest(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 10)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 10)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 3, Payment: 5}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("first request rejected despite zero duals")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	// Instance count must equal the closed-form minimum for the chosen
	// cloudlet.
	a := p.Assignments[0]
	wantN, err := core.OnsiteInstances(n.Catalog[0].Reliability, n.Cloudlets[a.Cloudlet].Reliability, req.Reliability)
	if err != nil {
		t.Fatalf("OnsiteInstances: %v", err)
	}
	if a.Instances != wantN {
		t.Errorf("instances = %d, want %d", a.Instances, wantN)
	}
	// Duals on the chosen cloudlet's slots must now be positive.
	for slot := 1; slot <= 3; slot++ {
		if s.Lambda(a.Cloudlet, slot) <= 0 {
			t.Errorf("Lambda(%d,%d) = %v, want > 0", a.Cloudlet, slot, s.Lambda(a.Cloudlet, slot))
		}
	}
	// Slots outside the window stay at zero.
	if s.Lambda(a.Cloudlet, 4) != 0 {
		t.Errorf("Lambda(%d,4) = %v, want 0", a.Cloudlet, s.Lambda(a.Cloudlet, 4))
	}
}

func TestDecideDualUpdateFormula(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 4)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 4)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 2, Duration: 2, Payment: 6}
	p, ok := s.Decide(req, view)
	if !ok {
		t.Fatal("request rejected")
	}
	j := p.Assignments[0].Cloudlet
	nInst := p.Assignments[0].Instances
	units := float64(nInst * n.Catalog[0].Demand)
	capj := float64(n.Cloudlets[j].Capacity)
	// λ was 0, so after Eq. (34): λ = 0·(1+units/cap) + units·pay/(d·cap).
	want := units * req.Payment / (2 * capj)
	for slot := 2; slot <= 3; slot++ {
		if got := s.Lambda(j, slot); !core.FloatEqTol(got, want, 1e-12) {
			t.Errorf("Lambda(%d,%d) = %v, want %v", j, slot, got, want)
		}
	}
}

func TestDecideRejectsWhenPriceTooHigh(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	// Saturate duals with many high-paying admissions on the same window.
	admitted := 0
	for i := 0; i < 200; i++ {
		req := core.Request{ID: i, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 5, Payment: 10}
		if _, ok := s.Decide(req, view); ok {
			admitted++
		}
	}
	if admitted == 0 || admitted == 200 {
		t.Fatalf("admitted = %d; dual prices never priced anything out", admitted)
	}
	// A low-payment request must now be rejected.
	req := core.Request{ID: 999, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 5, Payment: 0.001}
	if _, ok := s.Decide(req, view); ok {
		t.Error("cheap request admitted despite saturated duals")
	}
}

func TestDecideInfeasibleRequirement(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	// Requirement above every cloudlet reliability (max 0.999).
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9995, Arrival: 1, Duration: 1, Payment: 100}
	if _, ok := s.Decide(req, view); ok {
		t.Error("request admitted despite unattainable requirement")
	}
}

func TestDecideOutOfHorizon(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 5)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 5)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 4, Duration: 3, Payment: 5}
	if _, ok := s.Decide(req, view); ok {
		t.Error("request past horizon admitted")
	}
	req = core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 0, Duration: 2, Payment: 5}
	if _, ok := s.Decide(req, view); ok {
		t.Error("request with arrival 0 admitted")
	}
}

func TestDecideEnforcedRespectsCapacity(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 3, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 3)
	// Each admission of VNF 1 (demand 2, rf 0.9, R 0.9) needs N instances;
	// with rc=0.99: N=2 → 4 units. Capacity 10 per cloudlet → 2 per
	// cloudlet fit plus remainder.
	admitted := 0
	for i := 0; i < 20; i++ {
		req := core.Request{ID: i, VNF: 1, Reliability: 0.9, Arrival: 1, Duration: 3, Payment: 100}
		p, ok := s.Decide(req, view)
		if !ok {
			continue
		}
		a := p.Assignments[0]
		units := a.Instances * n.Catalog[1].Demand
		if err := view.Reserve(a.Cloudlet, 1, 3, units); err != nil {
			t.Fatalf("enforced scheduler overbooked: %v", err)
		}
		admitted++
	}
	if admitted == 0 {
		t.Fatal("no admissions at all")
	}
	if len(view.Violations()) != 0 {
		t.Errorf("violations under enforcement: %v", view.Violations())
	}
}

func TestDecideEnforcedRejectsWhenFull(t *testing.T) {
	n := testNetwork()
	s, err := NewScheduler(n, 2, WithCapacityEnforcement())
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	view := newLedger(t, n, 2)
	// Fill both cloudlets completely.
	for j := 0; j < 2; j++ {
		if err := view.Reserve(j, 1, 2, 10); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 100}
	if _, ok := s.Decide(req, view); ok {
		t.Error("request admitted into full network")
	}
}

func TestWithScaleReducesAdmissions(t *testing.T) {
	n := testNetwork()
	countAdmissions := func(scale float64) int {
		var opts []Option
		if scale > 1 {
			opts = append(opts, WithScale(scale))
		}
		s, err := NewScheduler(n, 5, opts...)
		if err != nil {
			t.Fatalf("NewScheduler: %v", err)
		}
		view := newLedger(t, n, 5)
		admitted := 0
		for i := 0; i < 100; i++ {
			req := core.Request{ID: i, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 5, Payment: 3}
			if _, ok := s.Decide(req, view); ok {
				admitted++
			}
		}
		return admitted
	}
	base := countAdmissions(1)
	scaled := countAdmissions(4)
	if scaled > base {
		t.Errorf("scale 4 admitted %d > unscaled %d", scaled, base)
	}
	if base == 0 {
		t.Error("unscaled variant admitted nothing")
	}
}

func TestLambdaAccessorBounds(t *testing.T) {
	s, err := NewScheduler(testNetwork(), 3)
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	if s.Lambda(-1, 1) != 0 || s.Lambda(0, 0) != 0 || s.Lambda(0, 4) != 0 || s.Lambda(9, 1) != 0 {
		t.Error("out-of-range Lambda not zero")
	}
}
