// Package onsite implements Algorithm 1 of the paper: the online
// primal-dual scheduler for the VNF service reliability problem under the
// on-site scheme, in which all primary and backup instances of a request
// are hosted by a single cloudlet.
//
// The scheduler maintains one dual price λ_{tj} per (slot, cloudlet) pair.
// A request is admitted when its payment exceeds the cheapest cloudlet's
// dual cost Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj}; admission multiplies the touched
// prices by (1 + N·c/cap) and adds N·c·pay/(d·cap) (Eq. 34), so heavily
// used slots become expensive and low-value requests are priced out.
//
// Two variants are provided. The raw variant is the theory-faithful
// Algorithm 1: it never inspects residual capacity, achieves the
// (1+a_max)-competitive ratio of Theorem 1, and may overcommit cloudlets
// within the bound ξ of Lemma 8. The enforced variant is the one the paper
// actually evaluates (Section VI-A adopts the scaling approach of [14] so
// "no actual capacity constraint violation occurs"): it restricts the
// argmin to cloudlets with enough residual capacity and optionally scales
// demands in the dual prices.
package onsite

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"revnf/internal/core"
	"revnf/internal/trace"
)

// Errors returned by the constructor.
var (
	ErrBadNetwork = errors.New("onsite: invalid network")
	ErrBadHorizon = errors.New("onsite: invalid horizon")
	ErrBadScale   = errors.New("onsite: scale factor below 1")
)

// Scheduler is the Algorithm 1 implementation. It implements both the
// serialized Decide contract and the two-phase propose/commit contract of
// core.TwoPhaseScheduler: Propose reads the dual prices under the read
// side of a reader/writer lock and is safe to run concurrently; Commit
// applies the λ update of Eq. (34) under the write side, so the dual
// trajectory is sequentially consistent in Commit order — the per-request
// update order the competitive analysis of Theorem 1 assumes.
type Scheduler struct {
	network *core.Network
	horizon int
	// rel caches the per-(VNF, cloudlet) instance-count math.
	rel *core.ReliabilityTable
	// mu guards lambda, base, and lstart: Propose reads, Commit and
	// AdvanceWindow write. Holding the read lock across the whole argmin
	// means one proposal always sees one consistent window position.
	mu sync.RWMutex
	// lambda[j] is a ring of dual prices: λ_{tj} lives at ring index
	// lstart + (t - base) mod horizon. With base pinned at 1 (every fixed
	// -horizon caller) the index is exactly t-1, the historical layout.
	lambda [][]float64 // guarded by mu
	// base is the first slot of the live window; lstart its ring index.
	// AdvanceWindow moves them forward, re-initializing retired prices.
	base     int // guarded by mu
	lstart   int // guarded by mu
	enforce  bool
	additive bool
	scale    float64
	name     string
	// rec receives decision traces from Propose; trace.Nop by default, so
	// the hot path pays one interface call when tracing is off. Recording
	// is observability, not state mutation (see the TwoPhaseScheduler
	// contract's carve-out).
	rec trace.Recorder
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithCapacityEnforcement makes the scheduler skip cloudlets without
// enough residual capacity, so no violation ever occurs. This is the
// variant evaluated in the paper's experiments.
func WithCapacityEnforcement() Option {
	return func(s *Scheduler) {
		s.enforce = true
		s.name = "pd-onsite"
	}
}

// WithScale multiplies instance demands by scale (≥ 1) inside the dual
// prices and the admission test, implementing the demand-scaling idea of
// [14]: larger scales make the dual threshold more conservative. The
// actual reservation still uses the true demand.
func WithScale(scale float64) Option {
	return func(s *Scheduler) { s.scale = scale }
}

// WithName overrides the reported algorithm name.
func WithName(name string) Option {
	return func(s *Scheduler) { s.name = name }
}

// WithRecorder injects the decision-trace sink Propose emits into. A nil
// recorder keeps the no-op default. Tracing never changes decisions: the
// recorder only observes the candidate evaluation Propose performs anyway.
func WithRecorder(r trace.Recorder) Option {
	return func(s *Scheduler) {
		if r != nil {
			s.rec = r
		}
	}
}

// WithAdditiveDuals replaces the multiplicative λ update of Eq. (34) with a
// purely additive one (λ += N·c·pay/(d·cap)). It is an ablation knob: the
// exponential growth of the multiplicative rule is what yields the
// competitive ratio, and the additive variant shows how much that matters.
func WithAdditiveDuals() Option {
	return func(s *Scheduler) {
		s.additive = true
		s.name = s.name + "-additive"
	}
}

// NewScheduler creates an Algorithm 1 scheduler. Without options it is the
// raw, theory-faithful variant with bounded capacity violation.
func NewScheduler(network *core.Network, horizon int, opts ...Option) (*Scheduler, error) {
	if network == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadNetwork)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	rel, err := core.NewReliabilityTable(network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	s := &Scheduler{
		network: network,
		horizon: horizon,
		rel:     rel,
		lambda:  make([][]float64, len(network.Cloudlets)),
		scale:   1,
		name:    "pd-onsite-raw",
		rec:     trace.Nop,
		base:    1,
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.scale < 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadScale, s.scale)
	}
	return s, nil
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// Scheme implements core.Scheduler.
func (s *Scheduler) Scheme() core.Scheme { return core.OnSite }

// Lambda returns the current dual price λ_{tj}, or 0 for a slot outside
// the live window [base, base+horizon-1]; it is exported for tests and the
// experiment harness's dual-trajectory diagnostics.
func (s *Scheduler) Lambda(cloudlet, slot int) float64 {
	if cloudlet < 0 || cloudlet >= len(s.lambda) {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if slot < s.base || slot > s.base+s.horizon-1 {
		return 0
	}
	return s.lambda[cloudlet][s.lidx(slot)]
}

// WindowBase returns the first slot of the live dual-price window (always
// 1 until AdvanceWindow is called).
func (s *Scheduler) WindowBase() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.base
}

// lidx maps an in-window absolute slot onto its λ ring index. Caller holds
// mu (either side) and has range-checked slot.
func (s *Scheduler) lidx(slot int) int {
	i := s.lstart + (slot - s.base)
	if i >= s.horizon {
		i -= s.horizon
	}
	return i
}

// AdvanceWindow implements core.WindowAdvancer: it moves the dual-price
// window forward so it starts at base, re-initializing λ for each retired
// slot to zero — the entering slot at the far edge starts at the same
// initial dual price a fresh horizon would give it, rather than inheriting
// the retired slot's accumulated price. Prices for slots still inside the
// window are untouched, which is what keeps rolling-mode decisions
// bit-identical to fixed-horizon decisions for in-window request streams
// (DESIGN.md §10). Moving backward or not at all is a no-op.
func (s *Scheduler) AdvanceWindow(base int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base <= s.base {
		return
	}
	retire := base - s.base
	n := retire
	if n > s.horizon {
		n = s.horizon
	}
	for j := range s.lambda {
		i := s.lstart
		for k := 0; k < n; k++ {
			s.lambda[j][i] = 0
			if i++; i == s.horizon {
				i = 0
			}
		}
	}
	s.lstart = (s.lstart + retire%s.horizon) % s.horizon
	s.base = base
}

// Decide implements core.Scheduler: Propose immediately followed by
// Commit, the serialized form of lines 3–15 of Algorithm 1.
func (s *Scheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	p, ok := s.Propose(req, view)
	if !ok {
		return core.Placement{}, false
	}
	s.Commit(req, p)
	return p, true
}

// Propose implements core.TwoPhaseScheduler: the argmin over cloudlets and
// the payment test of Algorithm 1, reading the dual prices under the read
// lock and leaving all scheduler state untouched. When the recorder
// samples the request, Propose additionally assembles a decision trace —
// extra reads only (the dual cost of capacity-skipped cloudlets, residual
// windows); the admit/reject decision is bit-identical with tracing on or
// off.
func (s *Scheduler) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := s.rec.Sample(req.ID)
	vnf := s.network.Catalog[req.VNF]
	bestCloudlet, bestInstances := -1, 0
	bestPrice := math.Inf(1)
	var cands []trace.Candidate
	if tracing {
		cands = make([]trace.Candidate, 0, len(s.network.Cloudlets))
	}
	s.mu.RLock()
	// The window check lives inside the same read-side critical section as
	// the argmin so one proposal sees one consistent base even while
	// AdvanceWindow races it. With base pinned at 1 (fixed horizon) this is
	// the historical [1, horizon] check.
	if req.Arrival < s.base || req.End() > s.base+s.horizon-1 {
		s.mu.RUnlock()
		if tracing {
			s.recordHorizon(req)
		}
		return core.Placement{}, false
	}
	for j := range s.network.Cloudlets {
		n, ok := s.rel.OnsiteInstancesOK(req.VNF, j, req.Reliability)
		if !ok {
			// r(c_j) ≤ R_i: this cloudlet cannot serve the request.
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Skip: trace.SkipReliability})
			}
			continue
		}
		units := n * vnf.Demand
		residual := 0
		if s.enforce || tracing {
			residual = view.ResidualWindow(j, req.Arrival, req.Duration)
		}
		if s.enforce && residual < units {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
					DualCost: s.priceLocked(j, req, units), Residual: residual,
					Skip: trace.SkipCapacity})
			}
			continue
		}
		price := s.priceLocked(j, req, units)
		if tracing {
			cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
				DualCost: price, Residual: residual})
		}
		if price < bestPrice {
			bestPrice, bestCloudlet, bestInstances = price, j, n
		}
	}
	s.mu.RUnlock()
	admit := bestCloudlet >= 0 && req.Payment-bestPrice > 0
	if tracing {
		s.recordPropose(req, cands, bestCloudlet, bestInstances, bestPrice, admit)
	}
	if !admit {
		return core.Placement{}, false
	}
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: bestCloudlet, Instances: bestInstances}},
	}, true
}

// priceLocked computes the dual cost Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj} for
// cloudlet j (with demand scaling), exactly as the pre-trace inline loop
// did. Caller holds the read side of mu.
func (s *Scheduler) priceLocked(j int, req core.Request, units int) float64 {
	price := 0.0
	scaled := float64(units) * s.scale
	i := s.lidx(req.Arrival)
	for t := req.Arrival; t <= req.End(); t++ {
		price += scaled * s.lambda[j][i]
		if i++; i == s.horizon {
			i = 0
		}
	}
	return price
}

// recordHorizon emits the trace for a request rejected before the argmin:
// its window does not fit the scheduler's horizon.
func (s *Scheduler) recordHorizon(req core.Request) {
	dt := trace.NewDecision(req, s.name, core.OnSite.String())
	dt.Attempts = []trace.ProposeTrace{{
		Scheduler: s.name, Scheme: core.OnSite.String(),
		BestCloudlet: -1, Payment: req.Payment, Reason: trace.ReasonHorizon,
	}}
	s.rec.Record(dt)
}

// recordPropose emits the trace for one completed argmin evaluation.
func (s *Scheduler) recordPropose(req core.Request, cands []trace.Candidate,
	best, instances int, bestPrice float64, admit bool) {
	pt := trace.ProposeTrace{
		Scheduler:    s.name,
		Scheme:       core.OnSite.String(),
		Candidates:   cands,
		BestCloudlet: best,
		Payment:      req.Payment,
		Admit:        admit,
	}
	if best >= 0 {
		pt.BestCost = bestPrice
		for i := range cands {
			if cands[i].Cloudlet == best && cands[i].Skip == "" {
				cands[i].Chosen = admit
			}
		}
		if !admit {
			pt.Reason = trace.ReasonPricedOut
		}
	} else {
		pt.Reason = trace.ReasonNoFeasibleCloudlet
	}
	dt := trace.NewDecision(req, s.name, core.OnSite.String())
	dt.Attempts = []trace.ProposeTrace{pt}
	if admit {
		dt.Assignments = []core.Assignment{{Cloudlet: best, Instances: instances}}
	}
	s.rec.Record(dt)
}

// Commit implements core.TwoPhaseScheduler: it applies the Eq. (34) dual
// update for the admitted proposal under the write lock.
func (s *Scheduler) Commit(req core.Request, p core.Placement) {
	if len(p.Assignments) != 1 {
		return
	}
	s.updateDuals(req, p.Assignments[0].Cloudlet, p.Assignments[0].Instances,
		s.network.Catalog[req.VNF].Demand)
}

// Abort implements core.TwoPhaseScheduler. Propose acquires nothing, so
// aborting a proposal is a no-op.
func (s *Scheduler) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler: proposals only read
// λ under the read lock and may run concurrently.
func (s *Scheduler) ConcurrentPropose() bool { return true }

// updateDuals applies Eq. (34) to the selected cloudlet's slots.
func (s *Scheduler) updateDuals(req core.Request, cloudlet, instances, demand int) {
	capj := float64(s.network.Cloudlets[cloudlet].Capacity)
	units := float64(instances*demand) * s.scale
	growth := 1 + units/capj
	if s.additive {
		growth = 1
	}
	additive := units * req.Payment / (float64(req.Duration) * capj)
	s.mu.Lock()
	// Clamp to the live window: in fixed mode the proposal already proved
	// [Arrival, End] ⊆ [1, horizon] so the clamp never bites; in rolling
	// mode it guards a commit racing an AdvanceWindow past its arrival.
	lo, hi := req.Arrival, req.End()
	if lo < s.base {
		lo = s.base
	}
	if max := s.base + s.horizon - 1; hi > max {
		hi = max
	}
	if lo <= hi {
		i := s.lidx(lo)
		for t := lo; t <= hi; t++ {
			s.lambda[cloudlet][i] = s.lambda[cloudlet][i]*growth + additive
			if i++; i == s.horizon {
				i = 0
			}
		}
	}
	s.mu.Unlock()
}
