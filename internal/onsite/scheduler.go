// Package onsite implements Algorithm 1 of the paper: the online
// primal-dual scheduler for the VNF service reliability problem under the
// on-site scheme, in which all primary and backup instances of a request
// are hosted by a single cloudlet.
//
// The scheduler maintains one dual price λ_{tj} per (slot, cloudlet) pair.
// A request is admitted when its payment exceeds the cheapest cloudlet's
// dual cost Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj}; admission multiplies the touched
// prices by (1 + N·c/cap) and adds N·c·pay/(d·cap) (Eq. 34), so heavily
// used slots become expensive and low-value requests are priced out.
//
// Two variants are provided. The raw variant is the theory-faithful
// Algorithm 1: it never inspects residual capacity, achieves the
// (1+a_max)-competitive ratio of Theorem 1, and may overcommit cloudlets
// within the bound ξ of Lemma 8. The enforced variant is the one the paper
// actually evaluates (Section VI-A adopts the scaling approach of [14] so
// "no actual capacity constraint violation occurs"): it restricts the
// argmin to cloudlets with enough residual capacity and optionally scales
// demands in the dual prices.
package onsite

import (
	"errors"
	"fmt"
	"math"

	"revnf/internal/core"
)

// Errors returned by the constructor.
var (
	ErrBadNetwork = errors.New("onsite: invalid network")
	ErrBadHorizon = errors.New("onsite: invalid horizon")
	ErrBadScale   = errors.New("onsite: scale factor below 1")
)

// Scheduler is the Algorithm 1 implementation. It is not safe for
// concurrent use; the simulation engine drives it sequentially.
type Scheduler struct {
	network *core.Network
	horizon int
	// lambda[j][t-1] is the dual price λ_{tj}.
	lambda   [][]float64
	enforce  bool
	additive bool
	scale    float64
	name     string
}

// Option configures the scheduler.
type Option func(*Scheduler)

// WithCapacityEnforcement makes the scheduler skip cloudlets without
// enough residual capacity, so no violation ever occurs. This is the
// variant evaluated in the paper's experiments.
func WithCapacityEnforcement() Option {
	return func(s *Scheduler) {
		s.enforce = true
		s.name = "pd-onsite"
	}
}

// WithScale multiplies instance demands by scale (≥ 1) inside the dual
// prices and the admission test, implementing the demand-scaling idea of
// [14]: larger scales make the dual threshold more conservative. The
// actual reservation still uses the true demand.
func WithScale(scale float64) Option {
	return func(s *Scheduler) { s.scale = scale }
}

// WithName overrides the reported algorithm name.
func WithName(name string) Option {
	return func(s *Scheduler) { s.name = name }
}

// WithAdditiveDuals replaces the multiplicative λ update of Eq. (34) with a
// purely additive one (λ += N·c·pay/(d·cap)). It is an ablation knob: the
// exponential growth of the multiplicative rule is what yields the
// competitive ratio, and the additive variant shows how much that matters.
func WithAdditiveDuals() Option {
	return func(s *Scheduler) {
		s.additive = true
		s.name = s.name + "-additive"
	}
}

// NewScheduler creates an Algorithm 1 scheduler. Without options it is the
// raw, theory-faithful variant with bounded capacity violation.
func NewScheduler(network *core.Network, horizon int, opts ...Option) (*Scheduler, error) {
	if network == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadNetwork)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("%w: %d", ErrBadHorizon, horizon)
	}
	s := &Scheduler{
		network: network,
		horizon: horizon,
		lambda:  make([][]float64, len(network.Cloudlets)),
		scale:   1,
		name:    "pd-onsite-raw",
	}
	for j := range s.lambda {
		s.lambda[j] = make([]float64, horizon)
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.scale < 1 {
		return nil, fmt.Errorf("%w: %v", ErrBadScale, s.scale)
	}
	return s, nil
}

// Name implements core.Scheduler.
func (s *Scheduler) Name() string { return s.name }

// Scheme implements core.Scheduler.
func (s *Scheduler) Scheme() core.Scheme { return core.OnSite }

// Lambda returns the current dual price λ_{tj}; it is exported for tests
// and the experiment harness's dual-trajectory diagnostics.
func (s *Scheduler) Lambda(cloudlet, slot int) float64 {
	if cloudlet < 0 || cloudlet >= len(s.lambda) || slot < 1 || slot > s.horizon {
		return 0
	}
	return s.lambda[cloudlet][slot-1]
}

// Decide implements core.Scheduler: lines 3–15 of Algorithm 1.
func (s *Scheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	if req.Arrival < 1 || req.End() > s.horizon {
		return core.Placement{}, false
	}
	vnf := s.network.Catalog[req.VNF]
	bestCloudlet, bestInstances := -1, 0
	bestPrice := math.Inf(1)
	for j, cl := range s.network.Cloudlets {
		n, err := core.OnsiteInstances(vnf.Reliability, cl.Reliability, req.Reliability)
		if err != nil {
			continue // r(c_j) ≤ R_i: this cloudlet cannot serve the request
		}
		units := n * vnf.Demand
		if s.enforce && view.ResidualWindow(j, req.Arrival, req.Duration) < units {
			continue
		}
		price := 0.0
		scaled := float64(units) * s.scale
		for t := req.Arrival; t <= req.End(); t++ {
			price += scaled * s.lambda[j][t-1]
		}
		if price < bestPrice {
			bestPrice, bestCloudlet, bestInstances = price, j, n
		}
	}
	if bestCloudlet < 0 || req.Payment-bestPrice <= 0 {
		return core.Placement{}, false
	}
	s.updateDuals(req, bestCloudlet, bestInstances, vnf.Demand)
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: bestCloudlet, Instances: bestInstances}},
	}, true
}

// updateDuals applies Eq. (34) to the selected cloudlet's slots.
func (s *Scheduler) updateDuals(req core.Request, cloudlet, instances, demand int) {
	capj := float64(s.network.Cloudlets[cloudlet].Capacity)
	units := float64(instances*demand) * s.scale
	growth := 1 + units/capj
	if s.additive {
		growth = 1
	}
	additive := units * req.Payment / (float64(req.Duration) * capj)
	for t := req.Arrival; t <= req.End(); t++ {
		s.lambda[cloudlet][t-1] = s.lambda[cloudlet][t-1]*growth + additive
	}
}
