package repair

import (
	"math"
	"testing"

	"revnf/internal/core"
)

func repairNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{{ID: 0, Name: "fw", Demand: 2, Reliability: 0.8}},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: -1, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: -1, Capacity: 10, Reliability: 0.95},
		},
	}
}

func TestMeetsMatchesCoreFormulas(t *testing.T) {
	n := repairNetwork()
	req := core.Request{ID: 1, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2}

	// One cloudlet, k instances: the on-site formula.
	alive := []core.Assignment{{Cloudlet: 0, Instances: 2}}
	got, ok := Meets(n, req, alive, nil)
	want := core.OnsiteReliability(0.8, 0.99, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("onsite footprint availability = %v, want %v", got, want)
	}
	if !ok {
		t.Error("0.9504 footprint must meet 0.9")
	}

	// One instance per cloudlet: the off-site formula.
	alive = []core.Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1}}
	got, _ = Meets(n, req, alive, nil)
	want = core.OffsiteReliability(0.8, []float64{0.99, 0.95})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("offsite footprint availability = %v, want %v", got, want)
	}

	// Degraded footprint below target.
	alive = []core.Assignment{{Cloudlet: 1, Instances: 1}}
	got, ok = Meets(n, req, alive, nil)
	if want = 0.95 * 0.8; math.Abs(got-want) > 1e-12 {
		t.Errorf("single-instance availability = %v, want %v", got, want)
	}
	if ok {
		t.Error("0.76 footprint must not meet 0.9")
	}

	// Empty footprint never meets.
	if avail, ok := Meets(n, req, nil, nil); avail != 0 || ok {
		t.Errorf("empty footprint = (%v, %v), want (0, false)", avail, ok)
	}

	// A learned source replaces catalog rates.
	alive = []core.Assignment{{Cloudlet: 0, Instances: 2}}
	got, ok = Meets(n, req, alive, fixedSource{0: 0.5})
	if want = core.OnsiteReliability(0.8, 0.5, 2); math.Abs(got-want) > 1e-12 || ok {
		t.Errorf("learned-rate availability = (%v, %v), want (%v, false)", got, ok, want)
	}
}

type fixedSource map[int]float64

func (s fixedSource) CloudletReliability(j int) float64 { return s[j] }

func TestEpisodeLifecycle(t *testing.T) {
	c := New(0)
	if c.MaxAttempts() != DefaultMaxAttempts {
		t.Fatalf("MaxAttempts = %d, want default %d", c.MaxAttempts(), DefaultMaxAttempts)
	}

	// Healthy observations are free.
	if act, opened := c.Observe(1, 0, true); act != ActionNone || opened {
		t.Fatalf("healthy observe = (%v, %v)", act, opened)
	}
	if c.State(1) != StateHealthy {
		t.Fatalf("state = %v", c.State(1))
	}

	// Failure opens exactly one episode.
	if act, opened := c.Observe(1, 3, false); act != ActionRepair || !opened {
		t.Fatalf("first failing observe = (%v, %v), want (repair, opened)", act, opened)
	}
	if act, opened := c.Observe(1, 4, false); act != ActionRepair || opened {
		t.Fatalf("second failing observe = (%v, %v), want (repair, !opened)", act, opened)
	}
	if c.State(1) != StateFailed {
		t.Fatalf("state = %v, want failed", c.State(1))
	}

	// Success closes the episode with the latency since it opened.
	if lat := c.RepairSucceeded(1, 5); lat != 2 {
		t.Fatalf("latency = %d, want 2", lat)
	}
	if c.State(1) != StateHealthy {
		t.Fatalf("state after repair = %v", c.State(1))
	}
	st := c.Stats()
	if st.Episodes != 1 || st.Repairs != 1 || st.FailedAttempts != 0 || st.Degraded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSelfRecoveryClosesWithoutRepair(t *testing.T) {
	c := New(3)
	c.Observe(7, 2, false)
	// The cloudlet came back: meets again, no repair recorded.
	if act, opened := c.Observe(7, 3, true); act != ActionNone || opened {
		t.Fatalf("recovery observe = (%v, %v)", act, opened)
	}
	if c.State(7) != StateHealthy {
		t.Fatalf("state = %v", c.State(7))
	}
	st := c.Stats()
	if st.Episodes != 1 || st.Repairs != 0 {
		t.Fatalf("stats = %+v, want one episode, zero repairs", st)
	}
	// A later failure opens a fresh episode with a fresh budget.
	if _, opened := c.Observe(7, 5, false); !opened {
		t.Fatal("second episode did not open")
	}
	if st := c.Stats(); st.Episodes != 2 {
		t.Fatalf("episodes = %d, want 2", st.Episodes)
	}
}

func TestDegradedAfterBudgetExhausted(t *testing.T) {
	c := New(2)
	c.Observe(4, 1, false)
	if s := c.RepairFailed(4, 1); s != StateFailed {
		t.Fatalf("after 1 failed attempt: %v, want failed", s)
	}
	if s := c.RepairFailed(4, 2); s != StateDegraded {
		t.Fatalf("after 2 failed attempts: %v, want degraded", s)
	}
	// Degraded is sticky: no more repair requests, even when still failing
	// or when the footprint recovers.
	if act, opened := c.Observe(4, 3, false); act != ActionNone || opened {
		t.Fatalf("degraded observe = (%v, %v)", act, opened)
	}
	if act, _ := c.Observe(4, 4, true); act != ActionNone {
		t.Fatalf("degraded observe (meets) = %v", act)
	}
	if c.State(4) != StateDegraded {
		t.Fatalf("state = %v", c.State(4))
	}
	st := c.Stats()
	if st.FailedAttempts != 2 || st.Degraded != 1 || st.Tracked != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Forget drops the placement entirely.
	c.Forget(4)
	if c.State(4) != StateHealthy {
		t.Fatal("forgotten placement should read healthy")
	}
	if st := c.Stats(); st.Tracked != 0 {
		t.Fatalf("tracked = %d, want 0", st.Tracked)
	}
}

func TestStrayTransitionsAreNoOps(t *testing.T) {
	c := New(3)
	// Success/failure without an open episode must not corrupt counters.
	if lat := c.RepairSucceeded(9, 4); lat != 0 {
		t.Fatalf("stray success latency = %d", lat)
	}
	if s := c.RepairFailed(9, 4); s != StateHealthy {
		t.Fatalf("stray failure state = %v", s)
	}
	if st := c.Stats(); st.Repairs != 0 || st.FailedAttempts != 0 {
		t.Fatalf("stats = %+v, want zeros", st)
	}
}

func TestMeetsPlacementSharedFootprints(t *testing.T) {
	n := repairNetwork()
	rf := n.Catalog[0].Reliability
	req := core.Request{ID: 2, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2}
	p := core.Placement{
		Request:     2,
		Scheme:      core.Shared,
		Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}},
		Backup:      &core.SharedBackup{Group: 1, Cloudlet: 1, PoolSize: 2},
	}
	floor := rf * 0.95 // peers at the least reliable cloudlet

	// Both primary and pooled backup alive: the full shared formula.
	alive := []core.Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1}}
	got, ok := MeetsPlacement(n, req, p, alive, nil)
	want := core.SharedReliabilityK(rf, 0.99, 0.95, floor, 2)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("both alive: availability = %v, want %v", got, want)
	}
	if !ok {
		t.Errorf("both alive: availability %v must meet %v", got, req.Reliability)
	}

	// Backup cloudlet down: only the dedicated primary path remains.
	alive = []core.Assignment{{Cloudlet: 0, Instances: 1}}
	got, ok = MeetsPlacement(n, req, p, alive, nil)
	if want = rf * 0.99; math.Abs(got-want) > 1e-12 {
		t.Errorf("primary only: availability = %v, want %v", got, want)
	}
	if ok {
		t.Errorf("primary only: availability %v must miss %v", got, req.Reliability)
	}

	// Primary down: the pooled backup path with rcA = 0.
	alive = []core.Assignment{{Cloudlet: 1, Instances: 1}}
	got, _ = MeetsPlacement(n, req, p, alive, nil)
	if want = core.SharedReliabilityK(rf, 0, 0.95, floor, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("backup only: availability = %v, want %v", got, want)
	}

	// Neither member of the placement survives.
	if got, ok = MeetsPlacement(n, req, p, nil, nil); got != 0 || ok {
		t.Errorf("neither alive: got (%v, %v), want (0, false)", got, ok)
	}
}

func TestMeetsPlacementDelegatesForDedicated(t *testing.T) {
	n := repairNetwork()
	req := core.Request{ID: 3, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2}
	alive := []core.Assignment{{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1}}
	p := core.Placement{
		Request:     3,
		Scheme:      core.OffSite,
		Assignments: alive,
	}
	got, gotOK := MeetsPlacement(n, req, p, alive, nil)
	want, wantOK := Meets(n, req, alive, nil)
	if got != want || gotOK != wantOK {
		t.Errorf("dedicated placement: got (%v, %v), want Meets result (%v, %v)", got, gotOK, want, wantOK)
	}
}
