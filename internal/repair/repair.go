// Package repair tracks the redundancy health of admitted placements
// under injected failures and decides when the serve engine should
// re-place one. It is a pure state machine: the engine feeds it one
// health observation per placement per slot (does the surviving
// footprint still meet the reliability target?) and executes the repairs
// it requests through the normal propose/reserve/commit pipeline — the
// controller itself never touches the ledger or the scheduler.
//
// Per placement the controller runs episodes. An episode opens when a
// healthy placement stops meeting its target, stays open while repairs
// are attempted, and closes when a repair succeeds or the footprint
// recovers on its own (a cloudlet came back). Repair attempts are
// bounded per episode: when the budget is exhausted the placement goes
// Degraded — a sticky terminal state the engine reports but no longer
// repairs, representing repair capacity exhausted.
package repair

import (
	"math"
	"sync"

	"revnf/internal/core"
)

// State is a placement's repair state.
type State string

const (
	// StateHealthy: the surviving footprint meets the reliability target.
	StateHealthy State = "healthy"
	// StateFailed: an episode is open — the footprint is below target and
	// repair is being attempted.
	StateFailed State = "failed"
	// StateDegraded: the episode's repair budget is exhausted; terminal.
	StateDegraded State = "degraded"
)

// Action is what the controller asks the engine to do for a placement.
type Action int

const (
	// ActionNone: nothing to do this slot.
	ActionNone Action = iota
	// ActionRepair: re-place the request through the admission pipeline.
	ActionRepair
)

// DefaultMaxAttempts bounds repair attempts per episode when the
// configured budget is not positive.
const DefaultMaxAttempts = 3

// Stats is a snapshot of the controller's counters.
type Stats struct {
	// Tracked is the number of placements currently tracked.
	Tracked int
	// Episodes counts failure episodes opened.
	Episodes uint64
	// Repairs counts episodes closed by a successful repair.
	Repairs uint64
	// FailedAttempts counts repair attempts that could not be placed.
	FailedAttempts uint64
	// Degraded counts placements that exhausted their repair budget.
	Degraded uint64
}

// Controller is the per-placement repair state machine. It keeps its own
// mutex: the engine drives it under the engine lock, but stats are read
// from the metrics and HTTP paths concurrently.
type Controller struct {
	mu          sync.Mutex
	maxAttempts int              // immutable after New
	placements  map[int]*tracked // guarded by mu
	stats       Stats            // guarded by mu
}

// tracked is one placement's episode state.
type tracked struct {
	state    State
	failedAt int // slot the open episode started
	attempts int // repair attempts spent in the open episode
}

// New builds a controller allowing maxAttempts repair attempts per
// episode (DefaultMaxAttempts when not positive).
func New(maxAttempts int) *Controller {
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	return &Controller{maxAttempts: maxAttempts, placements: make(map[int]*tracked)}
}

// MaxAttempts returns the per-episode repair budget.
func (c *Controller) MaxAttempts() int { return c.maxAttempts }

// Observe feeds one slot's health verdict for a placement and returns
// the action to take. opened is true exactly when this observation
// opened a new failure episode — the engine uses it to emit one failure
// trace event per episode rather than one per slot. A placement that
// recovers on its own (meets again with an episode open and no repair
// recorded) closes the episode without counting a repair. Degraded
// placements always return ActionNone.
func (c *Controller) Observe(id, slot int, meets bool) (Action, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.placements[id]
	if !ok {
		p = &tracked{state: StateHealthy}
		c.placements[id] = p
	}
	switch p.state {
	case StateDegraded:
		return ActionNone, false
	case StateHealthy:
		if meets {
			return ActionNone, false
		}
		p.state = StateFailed
		p.failedAt = slot
		p.attempts = 0
		c.stats.Episodes++
		return ActionRepair, true
	default: // StateFailed
		if meets {
			// Self-recovery: a cloudlet or instance came back before a
			// repair landed.
			p.state = StateHealthy
			return ActionNone, false
		}
		return ActionRepair, false
	}
}

// RepairSucceeded closes the open episode after the engine re-placed the
// request, returning the repair latency in slots (how long the episode
// was open). Zero when the repair landed in the slot that opened it.
func (c *Controller) RepairSucceeded(id, slot int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.placements[id]
	if !ok || p.state != StateFailed {
		return 0
	}
	p.state = StateHealthy
	c.stats.Repairs++
	return slot - p.failedAt
}

// RepairFailed records a repair attempt that could not be placed and
// returns the resulting state: StateFailed while budget remains,
// StateDegraded once the episode's attempts are exhausted.
func (c *Controller) RepairFailed(id, slot int) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.placements[id]
	if !ok || p.state != StateFailed {
		return StateHealthy
	}
	p.attempts++
	c.stats.FailedAttempts++
	if p.attempts >= c.maxAttempts {
		p.state = StateDegraded
		c.stats.Degraded++
	}
	return p.state
}

// State returns a placement's current state (StateHealthy when never
// observed).
func (c *Controller) State(id int) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.placements[id]; ok {
		return p.state
	}
	return StateHealthy
}

// Forget drops a placement whose window expired.
func (c *Controller) Forget(id int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.placements, id)
}

// Stats snapshots the controller's counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Tracked = len(c.placements)
	return s
}

// meetsTolerance absorbs float rounding when comparing the surviving
// availability against the requirement, mirroring the admission math.
const meetsTolerance = 1e-12

// Meets evaluates a surviving footprint against a request's reliability
// target: the availability of the alive instances is
//
//	1 − Π_j (1 − r(c_j)·(1−(1−rf)^k_j))
//
// over the cloudlets j still holding k_j live instances, which
// specializes to core.OnsiteReliability for one cloudlet and to
// core.OffsiteReliability for one instance per cloudlet. Rates r(c_j)
// come from src, so health checks can run on learned rates instead of
// the catalog. An empty footprint never meets.
func Meets(n *core.Network, req core.Request, alive []core.Assignment, src core.ReliabilitySource) (float64, bool) {
	if src == nil {
		src = core.CatalogReliability{Network: n}
	}
	rf := n.Catalog[req.VNF].Reliability
	fail := 1.0
	for _, a := range alive {
		if a.Instances <= 0 {
			continue
		}
		rc := src.CloudletReliability(a.Cloudlet)
		fail *= 1 - rc*(1-math.Pow(1-rf, float64(a.Instances)))
	}
	avail := 1 - fail
	return avail, len(alive) > 0 && avail+meetsTolerance >= req.Reliability
}

// MeetsPlacement is the scheme-aware form of Meets: dedicated placements
// delegate to Meets over their alive assignments, while shared placements
// are scored with the pooled-backup occupancy model. For a shared
// placement the alive set may contain the primary assignment and/or the
// pooled backup instance (the engine watches both); the availability is
//
//   - both alive:    core.SharedReliabilityK at the pool's capacity, with
//     peers contending at the floor over src's rates,
//   - primary only:  the bare active path rf·r(c_a),
//   - backup only:   the pooled backup path alone (a zero-reliability
//     primary in the same closed form),
//   - neither:       0, never meeting.
func MeetsPlacement(n *core.Network, req core.Request, p core.Placement, alive []core.Assignment, src core.ReliabilitySource) (float64, bool) {
	if p.Scheme != core.Shared || p.Backup == nil || len(p.Assignments) != 1 {
		return Meets(n, req, alive, src)
	}
	if src == nil {
		src = core.CatalogReliability{Network: n}
	}
	rf := n.Catalog[req.VNF].Reliability
	primary, backup := false, false
	for _, a := range alive {
		if a.Instances <= 0 {
			continue
		}
		if a.Cloudlet == p.Assignments[0].Cloudlet {
			primary = true
		}
		if a.Cloudlet == p.Backup.Cloudlet {
			backup = true
		}
	}
	if !primary && !backup {
		return 0, false
	}
	rcA := 0.0
	if primary {
		rcA = src.CloudletReliability(p.Assignments[0].Cloudlet)
	}
	avail := rf * rcA
	if backup {
		// The contention floor over src's current rates: peers are assumed
		// at the least reliable cloudlet, keeping the bound sound for any
		// group membership (mirrors core.SharedContentionFloor).
		rcMin := math.Inf(1)
		for j := range n.Cloudlets {
			if rc := src.CloudletReliability(j); rc < rcMin {
				rcMin = rc
			}
		}
		avail = core.SharedReliabilityK(rf, rcA, src.CloudletReliability(p.Backup.Cloudlet), rf*rcMin, p.Backup.PoolSize)
	}
	return avail, avail+meetsTolerance >= req.Reliability
}
