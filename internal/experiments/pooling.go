package experiments

import (
	"fmt"
	"strconv"

	"revnf/internal/baseline"
	"revnf/internal/metrics"
	"revnf/internal/pool"
	"revnf/internal/simulate"
)

// AblationPooling compares shared backup pooling ([12]-style, greedy
// admission) against the dedicated-backup greedy baseline across request
// loads: revenue, admissions, and the backup unit-slots pooling saves.
func (s Setup) AblationPooling(requestCounts []int) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Ablation — shared backup pooling vs dedicated backups (seeds=%d)",
			len(s.Seeds)),
		Header: []string{
			"requests", "pooled revenue", "dedicated revenue",
			"pooled admitted", "dedicated admitted", "backup units saved",
		},
	}
	for _, count := range requestCounts {
		var pooledRev, dedRev, pooledAdm, dedAdm, saved []float64
		for _, seed := range s.Seeds {
			inst, err := s.Instance(count, s.H, s.K, seed)
			if err != nil {
				return nil, err
			}
			pooled, err := pool.Run(inst)
			if err != nil {
				return nil, fmt.Errorf("experiments: pooling: %w", err)
			}
			g, err := baseline.NewGreedyOnsite(inst.Network)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			dedicated, err := simulate.Run(inst, g)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			pooledRev = append(pooledRev, pooled.Revenue)
			dedRev = append(dedRev, dedicated.Revenue)
			pooledAdm = append(pooledAdm, float64(pooled.Admitted))
			dedAdm = append(dedAdm, float64(dedicated.Admitted))
			saved = append(saved, float64(pooled.DedicatedBackupUnits-pooled.BackupUnits))
		}
		table.AddRow(
			strconv.Itoa(count),
			metrics.FormatMeanCI(metrics.Summarize(pooledRev)),
			metrics.FormatMeanCI(metrics.Summarize(dedRev)),
			metrics.FormatFloat(metrics.Summarize(pooledAdm).Mean),
			metrics.FormatFloat(metrics.Summarize(dedAdm).Mean),
			metrics.FormatFloat(metrics.Summarize(saved).Mean),
		)
	}
	return table, nil
}
