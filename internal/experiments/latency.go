package experiments

import (
	"fmt"
	"strconv"

	"revnf/internal/metrics"
	"revnf/internal/offsite"
	"revnf/internal/qos"
	"revnf/internal/simulate"
	"revnf/internal/topology"
)

// AblationLatencyPenalty sweeps the latency-penalty weight of the
// latency-aware Algorithm 2 variant, reporting revenue against the
// recovery-latency and sync-traffic costs the paper attributes to
// off-site redundancy: the revenue/latency trade-off curve.
func (s Setup) AblationLatencyPenalty(weights []float64) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g, err := topology.Load(s.Topology)
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Ablation — Algorithm 2 latency penalty (requests=%d, seeds=%d, topology=%s)",
			s.Requests, len(s.Seeds), s.Topology),
		Header: []string{"weight", "revenue", "mean recovery latency", "max recovery latency", "sync traffic"},
	}
	for _, w := range weights {
		var revenue, meanLat, maxLat, traffic []float64
		for _, seed := range s.Seeds {
			inst, err := s.Instance(s.Requests, s.H, s.K, seed)
			if err != nil {
				return nil, err
			}
			var opts []offsite.Option
			if w > 0 {
				opts = append(opts, offsite.WithLatencyPenalty(g, w))
			}
			sched, err := offsite.NewScheduler(inst.Network, inst.Horizon, opts...)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			res, err := simulate.Run(inst, sched)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			rep, err := qos.Assess(inst.Network, g, inst.Trace, res.AdmittedPlacements())
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			revenue = append(revenue, res.Revenue)
			meanLat = append(meanLat, rep.MeanRecoveryLatency)
			maxLat = append(maxLat, rep.MaxRecoveryLatency)
			traffic = append(traffic, rep.TotalSyncTraffic)
		}
		table.AddRow(
			formatFloat2(w),
			metrics.FormatMeanCI(metrics.Summarize(revenue)),
			strconv.FormatFloat(metrics.Summarize(meanLat).Mean, 'f', 2, 64),
			strconv.FormatFloat(metrics.Summarize(maxLat).Mean, 'f', 2, 64),
			metrics.FormatFloat(metrics.Summarize(traffic).Mean),
		)
	}
	return table, nil
}
