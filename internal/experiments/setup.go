// Package experiments regenerates the paper's evaluation (Section VI):
// Figure 1(a)/(b) — revenue versus number of requests under the on-site and
// off-site schemes — and Figure 2(a)/(b) — the impact of the payment-rate
// variation H and the cloudlet-reliability variation K. It also provides
// the ablation sweeps called out in DESIGN.md. Each driver returns both a
// renderable table and structured series for programmatic use.
package experiments

import (
	"errors"
	"fmt"
	"sync"

	"revnf/internal/baseline"
	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/mip"
	"revnf/internal/offline"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/simulate"
	"revnf/internal/topology"
	"revnf/internal/workload"
)

// Errors returned by the drivers.
var (
	ErrBadSetup = errors.New("experiments: invalid setup")
)

// OptimalMode selects how the offline comparator column is computed.
type OptimalMode int

// Comparator modes.
const (
	// OptimalNone omits the offline column.
	OptimalNone OptimalMode = iota + 1
	// OptimalLPBound uses the LP-relaxation upper bound: cheap and always
	// an overestimate of the true offline optimum.
	OptimalLPBound
	// OptimalBB uses branch and bound with the setup's node budget: a
	// feasible offline schedule (a lower estimate when the budget stops
	// the search early).
	OptimalBB
)

// Setup is the shared experiment configuration. The defaults mirror the
// paper's environment (Section VI-A) at a scale the from-scratch simplex
// comparator can handle; the cmd/experiments flags expose every knob.
type Setup struct {
	// Topology is the embedded access-network name.
	Topology string
	// Cloudlets is the fleet size; cloudlets sit at the best-connected APs.
	Cloudlets int
	// CapMin and CapMax bound per-cloudlet capacity in computing units.
	CapMin, CapMax int
	// RCMax is the maximum cloudlet reliability rc_max.
	RCMax float64
	// K is the cloudlet reliability variation rc_max/rc_min.
	K float64
	// Horizon is the number of time slots T.
	Horizon int
	// Requests is the trace length for the fixed-load figures (2a, 2b).
	Requests int
	// MinDur and MaxDur bound request durations.
	MinDur, MaxDur int
	// ReqMin and ReqMax bound reliability requirements. Keep ReqMax below
	// RCMax/K to preserve the paper's on-site feasibility assumption.
	ReqMin, ReqMax float64
	// PRMax is the maximum payment rate pr_max.
	PRMax float64
	// H is the payment-rate variation pr_max/pr_min.
	H float64
	// Seeds are the per-point replication seeds; results are averaged.
	Seeds []int64
	// Optimal selects the offline comparator column.
	Optimal OptimalMode
	// OptNodes is the branch-and-bound node budget for OptimalBB.
	OptNodes int
}

// DefaultSetup returns the laptop-scale mirror of the paper's environment:
// NSFNET topology, 10 VNF types with reliabilities in [0.9, 0.9999] and
// demands 1–3 (the [15] catalog), randomly capacitated cloudlets, uniform
// payment rates.
func DefaultSetup() Setup {
	// Capacities are sized so that the 100→800 request sweep moves the
	// network from abundance into heavy contention — the regime of the
	// paper's Figure 1, where the primal-dual algorithms' selectivity
	// overtakes greedy admission. H defaults to 10 (the top of the paper's
	// Figure 2(a) sweep) so payment rates are heterogeneous enough for
	// selectivity to matter.
	return Setup{
		Topology:  topology.NSFNET,
		Cloudlets: 8,
		CapMin:    5,
		CapMax:    10,
		RCMax:     0.999,
		K:         1.05,
		Horizon:   60,
		Requests:  400,
		MinDur:    1,
		MaxDur:    10,
		ReqMin:    0.90,
		ReqMax:    0.95,
		PRMax:     10,
		H:         10,
		Seeds:     []int64{1, 2, 3},
		Optimal:   OptimalLPBound,
		OptNodes:  200,
	}
}

// Validate checks the setup. The remaining numeric ranges are validated by
// the workload constructors when instances are materialized.
func (s Setup) Validate() error {
	if len(s.Seeds) == 0 {
		return fmt.Errorf("%w: no seeds", ErrBadSetup)
	}
	switch s.Optimal {
	case OptimalNone, OptimalLPBound, OptimalBB:
	default:
		return fmt.Errorf("%w: optimal mode %d", ErrBadSetup, int(s.Optimal))
	}
	return nil
}

// checkOnsiteFeasibility enforces the paper's on-site assumption
// r(c_j) > R_i for all pairs: the generated rc_min must exceed the largest
// possible requirement. Off-site sweeps do not need it because reliability
// accumulates across cloudlets.
func (s Setup) checkOnsiteFeasibility(k float64) error {
	if s.ReqMax >= s.RCMax/k {
		return fmt.Errorf("%w: ReqMax %v ≥ rc_min %v breaks the on-site feasibility assumption",
			ErrBadSetup, s.ReqMax, s.RCMax/k)
	}
	return nil
}

// Instance materializes one reproducible instance with the given request
// count and H/K overrides.
func (s Setup) Instance(requests int, h, k float64, seed int64) (*workload.Instance, error) {
	cfg := workload.InstanceConfig{
		TopologyName: s.Topology,
		Cloudlets: workload.CloudletConfig{
			Count:          s.Cloudlets,
			MinCapacity:    s.CapMin,
			MaxCapacity:    s.CapMax,
			MaxReliability: s.RCMax,
			K:              k,
		},
		Trace: workload.TraceConfig{
			Requests:       requests,
			Horizon:        s.Horizon,
			MinDuration:    s.MinDur,
			MaxDuration:    s.MaxDur,
			MinRequirement: s.ReqMin,
			MaxRequirement: s.ReqMax,
			MaxPaymentRate: s.PRMax,
			H:              h,
		},
	}
	return workload.NewInstance(cfg, seed)
}

// schedulerFactory builds a fresh scheduler per instance (dual state must
// not leak across runs).
type schedulerFactory struct {
	name  string
	build func(inst *workload.Instance) (core.Scheduler, error)
}

func onsiteFactories() []schedulerFactory {
	return []schedulerFactory{
		{
			name: "pd-onsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
			},
		},
		{
			name: "greedy-onsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return baseline.NewGreedyOnsite(inst.Network)
			},
		},
	}
}

func offsiteFactories() []schedulerFactory {
	return []schedulerFactory{
		{
			name: "pd-offsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return offsite.NewScheduler(inst.Network, inst.Horizon)
			},
		},
		{
			name: "greedy-offsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return baseline.NewGreedyOffsite(inst.Network)
			},
		},
	}
}

// runPoint simulates every factory on every seed at one sweep point and
// returns per-algorithm revenue summaries plus the offline column. Seeds
// run concurrently: each seed's instance, schedulers and comparator are
// independent, and the expensive part (the offline LP) parallelizes
// perfectly.
func (s Setup) runPoint(requests int, h, k float64, factories []schedulerFactory, scheme core.Scheme) (map[string]metrics.Summary, error) {
	type seedResult struct {
		revenues map[string]float64
		err      error
	}
	results := make([]seedResult, len(s.Seeds))
	var wg sync.WaitGroup
	for idx, seed := range s.Seeds {
		wg.Add(1)
		go func(idx int, seed int64) {
			defer wg.Done()
			revenues := make(map[string]float64, len(factories)+1)
			inst, err := s.Instance(requests, h, k, seed)
			if err != nil {
				results[idx] = seedResult{err: err}
				return
			}
			for _, f := range factories {
				sched, err := f.build(inst)
				if err != nil {
					results[idx] = seedResult{err: fmt.Errorf("experiments: build %s: %w", f.name, err)}
					return
				}
				res, err := simulate.Run(inst, sched)
				if err != nil {
					results[idx] = seedResult{err: fmt.Errorf("experiments: run %s: %w", f.name, err)}
					return
				}
				revenues[f.name] = res.Revenue
			}
			if s.Optimal != OptimalNone {
				opt, err := s.offlineRevenue(inst, scheme)
				if err != nil {
					results[idx] = seedResult{err: err}
					return
				}
				revenues[s.optimalLabel()] = opt
			}
			results[idx] = seedResult{revenues: revenues}
		}(idx, seed)
	}
	wg.Wait()
	perAlgorithm := make(map[string][]float64, len(factories)+1)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for name, revenue := range r.revenues {
			perAlgorithm[name] = append(perAlgorithm[name], revenue)
		}
	}
	out := make(map[string]metrics.Summary, len(perAlgorithm))
	for name, xs := range perAlgorithm {
		out[name] = metrics.Summarize(xs)
	}
	return out, nil
}

func (s Setup) optimalLabel() string {
	if s.Optimal == OptimalBB {
		return "optimal(bb)"
	}
	return "optimal(lp-bound)"
}

func (s Setup) offlineRevenue(inst *workload.Instance, scheme core.Scheme) (float64, error) {
	switch s.Optimal {
	case OptimalLPBound:
		if scheme == core.OnSite {
			return offline.LPBoundOnsite(inst)
		}
		return offline.LPBoundOffsite(inst)
	case OptimalBB:
		cfg := mip.Config{MaxNodes: s.OptNodes}
		if scheme == core.OnSite {
			sol, err := offline.SolveOnsite(inst, cfg)
			if err != nil {
				return 0, err
			}
			return sol.Revenue, nil
		}
		sol, err := offline.SolveOffsite(inst, cfg)
		if err != nil {
			return 0, err
		}
		return sol.Revenue, nil
	default:
		return 0, nil
	}
}

// algorithmOrder fixes column order: factories first, then the offline
// comparator.
func (s Setup) algorithmOrder(factories []schedulerFactory) []string {
	names := make([]string, 0, len(factories)+1)
	for _, f := range factories {
		names = append(names, f.name)
	}
	if s.Optimal != OptimalNone {
		names = append(names, s.optimalLabel())
	}
	return names
}
