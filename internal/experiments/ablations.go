package experiments

import (
	"fmt"
	"strconv"

	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/mip"
	"revnf/internal/offline"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

// AblationScale sweeps the demand-scaling factor of Algorithm 1 (the [14]
// idea the paper adopts to avoid violations): for each scale it reports the
// raw variant's revenue and worst capacity overcommitment, and the
// enforced variant's revenue. Larger scales price capacity more
// conservatively — fewer violations, less revenue.
func (s Setup) AblationScale(scales []float64) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Ablation — Algorithm 1 demand scaling (requests=%d, seeds=%d)",
			s.Requests, len(s.Seeds)),
		Header: []string{"scale", "raw revenue", "raw max-violation", "enforced revenue"},
	}
	for _, scale := range scales {
		var rawRev, rawViol, enfRev []float64
		for _, seed := range s.Seeds {
			inst, err := s.Instance(s.Requests, s.H, s.K, seed)
			if err != nil {
				return nil, err
			}
			raw, err := onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithScale(scale))
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			rawRes, err := simulate.Run(inst, raw, simulate.AllowViolations())
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			rawRev = append(rawRev, rawRes.Revenue)
			rawViol = append(rawViol, rawRes.MaxViolationRatio)
			enf, err := onsite.NewScheduler(inst.Network, inst.Horizon,
				onsite.WithCapacityEnforcement(), onsite.WithScale(scale))
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			enfRes, err := simulate.Run(inst, enf)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			enfRev = append(enfRev, enfRes.Revenue)
		}
		table.AddRow(
			formatFloat2(scale),
			metrics.FormatMeanCI(metrics.Summarize(rawRev)),
			strconv.FormatFloat(metrics.Summarize(rawViol).Mean, 'f', 2, 64),
			metrics.FormatMeanCI(metrics.Summarize(enfRev)),
		)
	}
	return table, nil
}

// AblationDualUpdate compares the multiplicative λ update of Eq. (34) —
// the source of the competitive ratio — against a purely additive update,
// across request loads.
func (s Setup) AblationDualUpdate(requestCounts []int) (*FigureResult, error) {
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	factories := []schedulerFactory{
		{
			name: "pd-onsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
			},
		},
		{
			name: "pd-onsite-additive",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return onsite.NewScheduler(inst.Network, inst.Horizon,
					onsite.WithCapacityEnforcement(), onsite.WithAdditiveDuals(), onsite.WithName("pd-onsite-additive"))
			},
		},
	}
	xs := toFloats(requestCounts)
	return s.sweep("ablation-dual", "requests", xs, factories, core.OnSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(int(x), s.H, s.K, factories, core.OnSite)
	}, formatInt)
}

// AblationSortKey compares Algorithm 2's dual-price candidate ordering
// against reliability-first and residual-capacity-first orderings.
func (s Setup) AblationSortKey(requestCounts []int) (*FigureResult, error) {
	factories := []schedulerFactory{
		{
			name: "pd-offsite",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return offsite.NewScheduler(inst.Network, inst.Horizon)
			},
		},
		{
			name: "pd-offsite-relsort",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return offsite.NewScheduler(inst.Network, inst.Horizon, offsite.WithSortKey(offsite.SortByReliability))
			},
		},
		{
			name: "pd-offsite-residualsort",
			build: func(inst *workload.Instance) (core.Scheduler, error) {
				return offsite.NewScheduler(inst.Network, inst.Horizon, offsite.WithSortKey(offsite.SortByResidual))
			},
		},
	}
	xs := toFloats(requestCounts)
	return s.sweep("ablation-sort", "requests", xs, factories, core.OffSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(int(x), s.H, s.K, factories, core.OffSite)
	}, formatInt)
}

// AblationOptBudget fixes one instance and sweeps the branch-and-bound
// node budget, reporting incumbent, upper bound and gap: how much search
// the CPLEX substitute needs before the bracket closes.
func (s Setup) AblationOptBudget(budgets []int) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	inst, err := s.Instance(s.Requests, s.H, s.K, s.Seeds[0])
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Ablation — offline B&B node budget (on-site, requests=%d, seed=%d)",
			s.Requests, s.Seeds[0]),
		Header: []string{"nodes budget", "nodes used", "status", "incumbent", "upper bound", "gap"},
	}
	for _, budget := range budgets {
		sol, err := offline.SolveOnsite(inst, mip.Config{MaxNodes: budget})
		if err != nil {
			return nil, err
		}
		table.AddRow(
			strconv.Itoa(budget),
			strconv.Itoa(sol.Nodes),
			sol.Status.String(),
			metrics.FormatFloat(sol.Revenue),
			metrics.FormatFloat(sol.UpperBound),
			strconv.FormatFloat(sol.Gap(), 'f', 4, 64),
		)
	}
	return table, nil
}
