package experiments

import (
	"fmt"
	"strconv"

	"revnf/internal/core"
	"revnf/internal/metrics"
)

// Point is one x-position of a series with its replication statistics.
type Point struct {
	// X is the sweep value (request count, H, or K).
	X float64
	// Revenue summarizes the replications at this point.
	Revenue metrics.Summary
}

// Series is one algorithm's curve across the sweep.
type Series struct {
	// Name is the algorithm label.
	Name string
	// Points are the sweep positions in order.
	Points []Point
}

// FigureResult bundles a regenerated figure: structured series plus the
// rendered table.
type FigureResult struct {
	// ID is the paper figure identifier ("1a", "1b", "2a", "2b", or an
	// ablation name).
	ID string
	// XLabel names the sweep variable.
	XLabel string
	// Series holds one curve per algorithm, in column order.
	Series []Series
	// Table is the printable result.
	Table *metrics.Table
}

// sweep runs the factories over the given x positions, materializing
// instances through mkPoint, and assembles the figure.
func (s Setup) sweep(id, xlabel string, xs []float64, factories []schedulerFactory, scheme core.Scheme,
	runAt func(x float64) (map[string]metrics.Summary, error), formatX func(float64) string) (*FigureResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	names := s.algorithmOrder(factories)
	fig := &FigureResult{
		ID:     id,
		XLabel: xlabel,
		Series: make([]Series, len(names)),
		Table: &metrics.Table{
			Title:  fmt.Sprintf("Figure %s — revenue vs %s (seeds=%d)", id, xlabel, len(s.Seeds)),
			Header: append([]string{xlabel}, names...),
		},
	}
	for i, name := range names {
		fig.Series[i].Name = name
	}
	for _, x := range xs {
		summaries, err := runAt(x)
		if err != nil {
			return nil, err
		}
		row := make([]string, 0, len(names)+1)
		row = append(row, formatX(x))
		for i, name := range names {
			sum := summaries[name]
			fig.Series[i].Points = append(fig.Series[i].Points, Point{X: x, Revenue: sum})
			row = append(row, metrics.FormatMeanCI(sum))
		}
		fig.Table.Rows = append(fig.Table.Rows, row)
	}
	return fig, nil
}

func formatInt(x float64) string { return strconv.Itoa(int(x)) }

func formatFloat2(x float64) string { return strconv.FormatFloat(x, 'f', 2, 64) }

// Fig1a regenerates Figure 1(a): on-site revenue versus the number of
// requests, comparing Algorithm 1 (capacity-enforced, per Section VI-A)
// against the greedy baseline and the offline comparator.
func (s Setup) Fig1a(requestCounts []int) (*FigureResult, error) {
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	factories := onsiteFactories()
	xs := toFloats(requestCounts)
	return s.sweep("1a", "requests", xs, factories, core.OnSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(int(x), s.H, s.K, factories, core.OnSite)
	}, formatInt)
}

// Fig1b regenerates Figure 1(b): off-site revenue versus the number of
// requests, comparing Algorithm 2 against greedy and the offline
// comparator.
func (s Setup) Fig1b(requestCounts []int) (*FigureResult, error) {
	factories := offsiteFactories()
	xs := toFloats(requestCounts)
	return s.sweep("1b", "requests", xs, factories, core.OffSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(int(x), s.H, s.K, factories, core.OffSite)
	}, formatInt)
}

// Fig2a regenerates Figure 2(a): revenue versus the payment-rate variation
// H = pr_max/pr_min at fixed load (pr_max fixed, pr_min lowered).
func (s Setup) Fig2a(hs []float64) (*FigureResult, error) {
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	factories := onsiteFactories()
	return s.sweep("2a", "H", hs, factories, core.OnSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(s.Requests, x, s.K, factories, core.OnSite)
	}, formatFloat2)
}

// Fig2b regenerates Figure 2(b): revenue versus the cloudlet-reliability
// variation K = rc_max/rc_min (rc_max fixed, rc_min lowered). The paper
// discusses this sweep for the off-site scheme, where low-reliability
// cloudlets force wider replication.
func (s Setup) Fig2b(ks []float64) (*FigureResult, error) {
	factories := offsiteFactories()
	return s.sweep("2b", "K", ks, factories, core.OffSite, func(x float64) (map[string]metrics.Summary, error) {
		return s.runPoint(s.Requests, s.H, x, factories, core.OffSite)
	}, formatFloat2)
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
