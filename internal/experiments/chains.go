package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"revnf/internal/chain"
	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/mip"
	"revnf/internal/offline"
	"revnf/internal/topology"
	"revnf/internal/workload"
)

// ChainComparison sweeps chain-request load and compares the chain
// variants of the primal-dual and greedy schedulers under both schemes,
// with the offline chain bound as reference (the SFC extension's analogue
// of Figure 1).
func (s Setup) ChainComparison(requestCounts []int) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Extension — service function chains (seeds=%d)", len(s.Seeds)),
		Header: []string{
			"chains", "pd-chain-onsite", "greedy-chain-onsite",
			"pd-chain-offsite", "greedy-chain-offsite", "onsite bound",
		},
	}
	for _, count := range requestCounts {
		results := make(map[string][]float64, 5)
		for _, seed := range s.Seeds {
			inst, err := s.chainInstance(count, seed)
			if err != nil {
				return nil, err
			}
			builds := []func() (chain.Scheduler, error){
				func() (chain.Scheduler, error) { return chain.NewOnsiteScheduler(inst.Network, inst.Horizon) },
				func() (chain.Scheduler, error) { return chain.NewGreedyOnsite(inst.Network, inst.Horizon) },
				func() (chain.Scheduler, error) { return chain.NewOffsiteScheduler(inst.Network, inst.Horizon) },
				func() (chain.Scheduler, error) { return chain.NewGreedyOffsite(inst.Network, inst.Horizon) },
			}
			for _, build := range builds {
				sched, err := build()
				if err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				res, err := chain.Run(inst, sched)
				if err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				results[sched.Name()] = append(results[sched.Name()], res.Revenue)
			}
			switch s.Optimal {
			case OptimalLPBound:
				bound, err := offline.LPBoundChainOnsite(inst)
				if err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				results["bound"] = append(results["bound"], bound)
			case OptimalBB:
				sol, err := offline.SolveChainOnsite(inst, mip.Config{MaxNodes: s.OptNodes})
				if err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				results["bound"] = append(results["bound"], sol.Revenue)
			default:
				results["bound"] = append(results["bound"], 0)
			}
		}
		format := func(name string) string {
			return metrics.FormatMeanCI(metrics.Summarize(results[name]))
		}
		table.AddRow(
			strconv.Itoa(count),
			format("pd-chain-onsite"),
			format("greedy-chain-onsite"),
			format("pd-chain-offsite"),
			format("greedy-chain-offsite"),
			format("bound"),
		)
	}
	return table, nil
}

// chainInstance materializes a chain workload on the setup's network.
func (s Setup) chainInstance(requests int, seed int64) (*chain.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.Load(s.Topology)
	if err != nil {
		return nil, err
	}
	sites, err := topology.PlaceCloudletsByDegree(g, s.Cloudlets)
	if err != nil {
		return nil, err
	}
	cloudlets, err := workload.RandomCloudlets(workload.CloudletConfig{
		Count:          s.Cloudlets,
		MinCapacity:    s.CapMin,
		MaxCapacity:    s.CapMax,
		MaxReliability: s.RCMax,
		K:              s.K,
		Sites:          sites,
	}, rng)
	if err != nil {
		return nil, err
	}
	network := &core.Network{Catalog: workload.DefaultCatalog(), Cloudlets: cloudlets}
	trace, err := chain.GenerateTrace(chain.TraceConfig{
		Requests:       requests,
		Horizon:        s.Horizon,
		MinLength:      2,
		MaxLength:      4,
		MinDuration:    s.MinDur,
		MaxDuration:    s.MaxDur,
		MinRequirement: 0.85,
		MaxRequirement: 0.92,
		MaxPaymentRate: s.PRMax,
		H:              s.H,
	}, network.Catalog, rng)
	if err != nil {
		return nil, err
	}
	inst := &chain.Instance{
		Network: network,
		Horizon: s.Horizon,
		Trace:   trace,
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: chain instance: %w", err)
	}
	return inst, nil
}
