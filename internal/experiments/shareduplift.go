package experiments

import (
	"fmt"
	"sync"

	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/mip"
	"revnf/internal/offline"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/shared"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

// SharedUpliftSetup is the high-requirement variant of DefaultSetup where
// pooled backups earn their keep. Under the default workload most
// requests are satisfiable by a single off-site instance, so a dedicated
// off-site backup costs 1·demand while a pooled one costs (1+1/k)·demand
// — sharing can only lose. Lowering rc_max to 0.95 and raising the
// requirement band to [0.93, 0.955] forces the off-site scheme to
// provision two dedicated instances for most requests, while the shared
// scheme still covers them with one primary plus a 1/k share of a pooled
// backup; that is the regime the paper's shared scheme targets.
func SharedUpliftSetup() Setup {
	s := DefaultSetup()
	s.RCMax = 0.95
	s.ReqMin = 0.93
	s.ReqMax = 0.955
	// The offline comparator columns are owned by the figure sweeps; the
	// scheme comparison reports the online schedulers head to head, with
	// the shared LP bound added separately when requested.
	s.Optimal = OptimalNone
	return s
}

// SchemeRow is one redundancy scheme's result in a SchemeComparison run:
// admitted count and revenue summarized over the setup's seeds, plus the
// mean-revenue uplift relative to the dedicated off-site scheme (zero for
// the off-site row itself).
type SchemeRow struct {
	// Scheme is the canonical flag spelling (onsite, offsite, shared).
	Scheme string
	// Requests is the trace length; PoolSize the shared scheme's k (zero
	// on the dedicated rows).
	Requests int
	PoolSize int
	// Admitted and Revenue summarize the per-seed results.
	Admitted metrics.Summary
	Revenue  metrics.Summary
	// UpliftVsOffsite is Revenue.Mean/offsite.Revenue.Mean − 1.
	UpliftVsOffsite float64
}

// SchemeComparison runs the three primal-dual schedulers — on-site,
// off-site, and shared with the given pool size — on identical instances
// and reports per-scheme revenue, plus the shared scheme's uplift over
// dedicated off-site backups at equal capacity. Seeds run concurrently,
// mirroring the figure sweeps. When s.Optimal is not OptimalNone, a
// fourth row reports the shared offline comparator (LP bound or branch
// and bound) as an upper reference.
func (s Setup) SchemeComparison(requests, poolSize int) (*metrics.Table, []SchemeRow, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	if poolSize < 1 {
		poolSize = core.DefaultSharedPoolSize
	}
	schemes := []core.Scheme{core.OnSite, core.OffSite, core.Shared}
	type seedResult struct {
		admitted map[core.Scheme]float64
		revenue  map[core.Scheme]float64
		optimal  float64
		err      error
	}
	results := make([]seedResult, len(s.Seeds))
	var wg sync.WaitGroup
	for idx, seed := range s.Seeds {
		wg.Add(1)
		go func(idx int, seed int64) {
			defer wg.Done()
			r := seedResult{
				admitted: make(map[core.Scheme]float64, len(schemes)),
				revenue:  make(map[core.Scheme]float64, len(schemes)),
			}
			inst, err := s.Instance(requests, s.H, s.K, seed)
			if err != nil {
				results[idx] = seedResult{err: err}
				return
			}
			for _, scheme := range schemes {
				sched, err := schemeScheduler(scheme, inst, poolSize)
				if err != nil {
					results[idx] = seedResult{err: fmt.Errorf("experiments: build %s: %w", scheme, err)}
					return
				}
				res, err := simulate.Run(inst, sched)
				if err != nil {
					results[idx] = seedResult{err: fmt.Errorf("experiments: run %s: %w", scheme, err)}
					return
				}
				r.admitted[scheme] = float64(res.Admitted)
				r.revenue[scheme] = res.Revenue
			}
			if s.Optimal != OptimalNone {
				opt, err := s.offlineSharedRevenue(inst, poolSize)
				if err != nil {
					results[idx] = seedResult{err: err}
					return
				}
				r.optimal = opt
			}
			results[idx] = r
		}(idx, seed)
	}
	wg.Wait()

	admitted := make(map[core.Scheme][]float64, len(schemes))
	revenue := make(map[core.Scheme][]float64, len(schemes))
	var optimal []float64
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		for _, scheme := range schemes {
			admitted[scheme] = append(admitted[scheme], r.admitted[scheme])
			revenue[scheme] = append(revenue[scheme], r.revenue[scheme])
		}
		if s.Optimal != OptimalNone {
			optimal = append(optimal, r.optimal)
		}
	}

	offsiteMean := metrics.Summarize(revenue[core.OffSite]).Mean
	rows := make([]SchemeRow, 0, len(schemes)+1)
	for _, scheme := range schemes {
		row := SchemeRow{
			Scheme:   scheme.Flag(),
			Requests: requests,
			Admitted: metrics.Summarize(admitted[scheme]),
			Revenue:  metrics.Summarize(revenue[scheme]),
		}
		if scheme == core.Shared {
			row.PoolSize = poolSize
		}
		if offsiteMean > 0 {
			row.UpliftVsOffsite = row.Revenue.Mean/offsiteMean - 1
		}
		rows = append(rows, row)
	}

	table := &metrics.Table{
		Title: fmt.Sprintf("Scheme comparison — revenue at %d requests, shared k=%d (seeds=%d)",
			requests, poolSize, len(s.Seeds)),
		Header: []string{"scheme", "admitted", "revenue", "uplift vs offsite"},
	}
	for _, row := range rows {
		table.AddRow(row.Scheme,
			metrics.FormatMeanCI(row.Admitted),
			metrics.FormatMeanCI(row.Revenue),
			fmt.Sprintf("%+.1f%%", 100*row.UpliftVsOffsite))
	}
	if s.Optimal != OptimalNone {
		sum := metrics.Summarize(optimal)
		uplift := 0.0
		if offsiteMean > 0 {
			uplift = sum.Mean/offsiteMean - 1
		}
		table.AddRow(s.optimalLabel()+"-shared", "-", metrics.FormatMeanCI(sum),
			fmt.Sprintf("%+.1f%%", 100*uplift))
	}
	return table, rows, nil
}

// schemeScheduler builds the primal-dual scheduler for one scheme.
func schemeScheduler(scheme core.Scheme, inst *workload.Instance, poolSize int) (core.Scheduler, error) {
	switch scheme {
	case core.OnSite:
		return onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
	case core.OffSite:
		return offsite.NewScheduler(inst.Network, inst.Horizon)
	case core.Shared:
		return shared.NewScheduler(inst.Network, inst.Horizon, shared.WithPoolSize(poolSize))
	default:
		return nil, fmt.Errorf("%w: scheme %v", ErrBadSetup, scheme)
	}
}

// offlineSharedRevenue computes the shared offline comparator column.
func (s Setup) offlineSharedRevenue(inst *workload.Instance, poolSize int) (float64, error) {
	switch s.Optimal {
	case OptimalLPBound:
		return offline.LPBoundShared(inst, poolSize)
	case OptimalBB:
		sol, err := offline.SolveShared(inst, poolSize, mip.Config{MaxNodes: s.OptNodes})
		if err != nil {
			return 0, err
		}
		return sol.Revenue, nil
	default:
		return 0, nil
	}
}
