package experiments

import (
	"strings"
	"testing"

	"revnf/internal/core"
)

// upliftSetup is SharedUpliftSetup shrunk to test size: the same
// high-requirement reliability band, on a short trace.
func upliftSetup() Setup {
	s := smallSetup()
	s.RCMax = 0.95
	s.ReqMin = 0.93
	s.ReqMax = 0.955
	s.Optimal = OptimalNone
	return s
}

func TestSchemeComparisonUplift(t *testing.T) {
	s := upliftSetup()
	table, rows, err := s.SchemeComparison(s.Requests, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byScheme := make(map[string]SchemeRow, len(rows))
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	off, ok := byScheme["offsite"]
	if !ok {
		t.Fatal("no offsite row")
	}
	sh, ok := byScheme["shared"]
	if !ok {
		t.Fatal("no shared row")
	}
	// The headline claim: on the high-requirement regime, pooled backups
	// strictly out-earn dedicated off-site backups at equal capacity.
	if sh.Revenue.Mean <= off.Revenue.Mean {
		t.Errorf("shared revenue %.2f ≤ offsite revenue %.2f; pooling must win on this regime",
			sh.Revenue.Mean, off.Revenue.Mean)
	}
	if sh.UpliftVsOffsite <= 0 {
		t.Errorf("uplift = %v, want > 0", sh.UpliftVsOffsite)
	}
	if off.UpliftVsOffsite != 0 {
		t.Errorf("offsite uplift = %v, want 0 (its own baseline)", off.UpliftVsOffsite)
	}
	if sh.PoolSize != 4 || off.PoolSize != 0 {
		t.Errorf("pool sizes = shared %d / offsite %d, want 4 / 0", sh.PoolSize, off.PoolSize)
	}
	if !strings.Contains(table.Title, "k=4") {
		t.Errorf("table title %q does not name the pool size", table.Title)
	}
}

// TestSchemeComparisonOfflineRow checks the optional offline comparator
// row: with s.Optimal set, the LP bound on the shared MIP is reported and
// must dominate the online shared scheduler.
func TestSchemeComparisonOfflineRow(t *testing.T) {
	s := upliftSetup()
	s.Optimal = OptimalLPBound
	s.Seeds = []int64{1}
	table, rows, err := s.SchemeComparison(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 online rows (comparator is table-only)", len(rows))
	}
	found := false
	for _, r := range table.Rows {
		if strings.HasSuffix(r[0], "-shared") {
			found = true
		}
	}
	if !found {
		t.Errorf("no offline shared comparator row in table %v", table.Rows)
	}
}

// TestSharedPoolingBeatsDedicated quickchecks the capacity argument on
// every seed separately: at equal physical capacity, any real pooling
// (k > 1) must strictly out-earn k = 1, which provisions a dedicated
// backup per request and pays full price for it. Revenue is NOT monotone
// in k — the admission formula charges every member the sound contention
// floor of a full pool, so very large caps lower per-member availability
// and shrink feasibility again — but k = 1 is dominated throughout.
func TestSharedPoolingBeatsDedicated(t *testing.T) {
	s := upliftSetup()
	for _, seed := range []int64{1, 2, 3} {
		s.Seeds = []int64{seed}
		revenueAt := func(k int) float64 {
			_, rows, err := s.SchemeComparison(s.Requests, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				if r.Scheme == core.Shared.Flag() {
					return r.Revenue.Mean
				}
			}
			t.Fatalf("seed %d k=%d: no shared row", seed, k)
			return 0
		}
		dedicated := revenueAt(1)
		for _, k := range []int{2, 4} {
			if pooled := revenueAt(k); pooled <= dedicated {
				t.Errorf("seed %d: pooled revenue %.2f (k=%d) ≤ dedicated %.2f (k=1)",
					seed, pooled, k, dedicated)
			}
		}
	}
}
