package experiments

import (
	"fmt"
	"strconv"
	"time"

	"revnf/internal/baseline"
	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

// ViolationStudy runs the raw (theory-faithful) Algorithm 1 across request
// loads and compares its observed capacity overcommitment against the
// violation bound ξ of Lemma 8. The observed ratio must stay under the
// bound at every load — the empirical check of the paper's second
// theoretical claim (the first, the competitive ratio, is checked in the
// root test suite against the LP bound).
func (s Setup) ViolationStudy(requestCounts []int) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title: fmt.Sprintf("Theory check — raw Algorithm 1 capacity violations vs Lemma 8 (seeds=%d)",
			len(s.Seeds)),
		Header: []string{
			"requests", "observed max ratio", "bound 1+ξ/cap_min",
			"violated cells", "competitive ratio (1+a_max)",
		},
	}
	for _, count := range requestCounts {
		var observed, bound, cells, ratio []float64
		for _, seed := range s.Seeds {
			inst, err := s.Instance(count, s.H, s.K, seed)
			if err != nil {
				return nil, err
			}
			raw, err := onsite.NewScheduler(inst.Network, inst.Horizon)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			res, err := simulate.Run(inst, raw, simulate.AllowViolations())
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			analysis, err := onsite.Analyze(inst.Network, inst.Trace)
			if err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			observed = append(observed, res.MaxViolationRatio)
			bound = append(bound, 1+analysis.ViolationRatio)
			cells = append(cells, float64(len(res.Violations)))
			ratio = append(ratio, analysis.CompetitiveRatio)
		}
		table.AddRow(
			strconv.Itoa(count),
			strconv.FormatFloat(metrics.Summarize(observed).Max, 'f', 2, 64),
			strconv.FormatFloat(metrics.Summarize(bound).Mean, 'f', 2, 64),
			metrics.FormatFloat(metrics.Summarize(cells).Mean),
			strconv.FormatFloat(metrics.Summarize(ratio).Mean, 'f', 1, 64),
		)
	}
	return table, nil
}

// ThroughputTable measures online decision throughput (requests decided
// per second, including reservation bookkeeping) for every scheduler — the
// time-complexity companion the paper omits "due to space limitation".
func (s Setup) ThroughputTable(requestCounts []int) (*metrics.Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:  "Runtime — online decisions per second (single core)",
		Header: []string{"requests", "pd-onsite", "greedy-onsite", "pd-offsite", "greedy-offsite"},
	}
	builds := []func(inst *workload.Instance) (core.Scheduler, error){
		func(inst *workload.Instance) (core.Scheduler, error) {
			return onsite.NewScheduler(inst.Network, inst.Horizon, onsite.WithCapacityEnforcement())
		},
		func(inst *workload.Instance) (core.Scheduler, error) { return baseline.NewGreedyOnsite(inst.Network) },
		func(inst *workload.Instance) (core.Scheduler, error) {
			return offsite.NewScheduler(inst.Network, inst.Horizon)
		},
		func(inst *workload.Instance) (core.Scheduler, error) { return baseline.NewGreedyOffsite(inst.Network) },
	}
	for _, count := range requestCounts {
		row := []string{strconv.Itoa(count)}
		for _, build := range builds {
			var total time.Duration
			decisions := 0
			for _, seed := range s.Seeds {
				inst, err := s.Instance(count, s.H, s.K, seed)
				if err != nil {
					return nil, err
				}
				sched, err := build(inst)
				if err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				start := time.Now()
				if _, err := simulate.Run(inst, sched); err != nil {
					return nil, fmt.Errorf("experiments: %w", err)
				}
				total += time.Since(start)
				decisions += count
			}
			perSec := float64(decisions) / total.Seconds()
			row = append(row, strconv.FormatFloat(perSec, 'f', 0, 64))
		}
		table.AddRow(row...)
	}
	return table, nil
}
