package experiments

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"revnf/internal/topology"
)

// smallSetup keeps instances tiny so the simplex comparator stays fast in
// unit tests.
func smallSetup() Setup {
	return Setup{
		Topology:  topology.Abilene,
		Cloudlets: 4,
		CapMin:    20,
		CapMax:    30,
		RCMax:     0.999,
		K:         1.05,
		Horizon:   20,
		Requests:  60,
		MinDur:    1,
		MaxDur:    5,
		ReqMin:    0.90,
		ReqMax:    0.94,
		PRMax:     10,
		H:         4,
		Seeds:     []int64{1, 2},
		Optimal:   OptimalLPBound,
		OptNodes:  50,
	}
}

func checkFigure(t *testing.T, fig *FigureResult, wantSeries, wantPoints int) {
	t.Helper()
	if len(fig.Series) != wantSeries {
		t.Fatalf("series = %d, want %d", len(fig.Series), wantSeries)
	}
	for _, series := range fig.Series {
		if len(series.Points) != wantPoints {
			t.Fatalf("series %q has %d points, want %d", series.Name, len(series.Points), wantPoints)
		}
	}
	if len(fig.Table.Rows) != wantPoints {
		t.Fatalf("table rows = %d, want %d", len(fig.Table.Rows), wantPoints)
	}
	var sb strings.Builder
	if err := fig.Table.Render(&sb); err != nil {
		t.Fatalf("table render: %v", err)
	}
}

// seriesByName returns the named series or fails.
func seriesByName(t *testing.T, fig *FigureResult, name string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not found in %v", name, fig.Table.Header)
	return Series{}
}

func TestFig1a(t *testing.T) {
	s := smallSetup()
	fig, err := s.Fig1a([]int{30, 60})
	if err != nil {
		t.Fatalf("Fig1a: %v", err)
	}
	checkFigure(t, fig, 3, 2)
	pd := seriesByName(t, fig, "pd-onsite")
	greedy := seriesByName(t, fig, "greedy-onsite")
	bound := seriesByName(t, fig, "optimal(lp-bound)")
	for i := range pd.Points {
		if pd.Points[i].Revenue.Mean <= 0 {
			t.Errorf("pd-onsite revenue at point %d is %v", i, pd.Points[i].Revenue.Mean)
		}
		// The LP relaxation upper-bounds every feasible schedule, online
		// or offline.
		if bound.Points[i].Revenue.Mean+1e-6 < pd.Points[i].Revenue.Mean {
			t.Errorf("LP bound %v below pd-onsite %v", bound.Points[i].Revenue.Mean, pd.Points[i].Revenue.Mean)
		}
		if bound.Points[i].Revenue.Mean+1e-6 < greedy.Points[i].Revenue.Mean {
			t.Errorf("LP bound %v below greedy %v", bound.Points[i].Revenue.Mean, greedy.Points[i].Revenue.Mean)
		}
	}
}

func TestFig1b(t *testing.T) {
	s := smallSetup()
	fig, err := s.Fig1b([]int{30, 60})
	if err != nil {
		t.Fatalf("Fig1b: %v", err)
	}
	checkFigure(t, fig, 3, 2)
	pd := seriesByName(t, fig, "pd-offsite")
	bound := seriesByName(t, fig, "optimal(lp-bound)")
	for i := range pd.Points {
		if pd.Points[i].Revenue.Mean <= 0 {
			t.Errorf("pd-offsite revenue at point %d is %v", i, pd.Points[i].Revenue.Mean)
		}
		if bound.Points[i].Revenue.Mean+1e-6 < pd.Points[i].Revenue.Mean {
			t.Errorf("LP bound %v below pd-offsite %v", bound.Points[i].Revenue.Mean, pd.Points[i].Revenue.Mean)
		}
	}
}

func TestFig2a(t *testing.T) {
	s := smallSetup()
	s.Optimal = OptimalNone
	fig, err := s.Fig2a([]float64{1, 5})
	if err != nil {
		t.Fatalf("Fig2a: %v", err)
	}
	checkFigure(t, fig, 2, 2)
	// H=1 gives every request the maximum payment rate, so revenue must
	// weakly exceed the H=5 point where rates are diluted.
	pd := seriesByName(t, fig, "pd-onsite")
	if pd.Points[0].Revenue.Mean < pd.Points[1].Revenue.Mean {
		t.Errorf("revenue grew with H: H=1 %v < H=5 %v",
			pd.Points[0].Revenue.Mean, pd.Points[1].Revenue.Mean)
	}
}

func TestFig2b(t *testing.T) {
	s := smallSetup()
	s.Optimal = OptimalNone
	fig, err := s.Fig2b([]float64{1.0, 1.08})
	if err != nil {
		t.Fatalf("Fig2b: %v", err)
	}
	checkFigure(t, fig, 2, 2)
	for _, series := range fig.Series {
		for i, p := range series.Points {
			if p.Revenue.Mean <= 0 {
				t.Errorf("series %q point %d revenue %v", series.Name, i, p.Revenue.Mean)
			}
		}
	}
}

func TestFig1aWithBBOptimal(t *testing.T) {
	s := smallSetup()
	s.Requests = 15
	s.Seeds = []int64{1}
	s.Optimal = OptimalBB
	s.OptNodes = 60
	fig, err := s.Fig1a([]int{15})
	if err != nil {
		t.Fatalf("Fig1a: %v", err)
	}
	checkFigure(t, fig, 3, 1)
	pd := seriesByName(t, fig, "pd-onsite")
	opt := seriesByName(t, fig, "optimal(bb)")
	// A feasible offline incumbent from enough B&B nodes should not trail
	// the online algorithm on such a small instance.
	if opt.Points[0].Revenue.Mean+1e-6 < pd.Points[0].Revenue.Mean*0.5 {
		t.Errorf("B&B incumbent %v implausibly low vs online %v",
			opt.Points[0].Revenue.Mean, pd.Points[0].Revenue.Mean)
	}
}

func TestSetupValidation(t *testing.T) {
	s := smallSetup()
	s.Seeds = nil
	if _, err := s.Fig1a([]int{10}); !errors.Is(err, ErrBadSetup) {
		t.Errorf("no seeds err = %v", err)
	}
	s = smallSetup()
	s.Optimal = OptimalMode(99)
	if _, err := s.Fig1b([]int{10}); !errors.Is(err, ErrBadSetup) {
		t.Errorf("bad optimal mode err = %v", err)
	}
	s = smallSetup()
	s.ReqMax = 0.99 // above rc_min = 0.999/1.05
	if _, err := s.Fig1a([]int{10}); !errors.Is(err, ErrBadSetup) {
		t.Errorf("on-site feasibility err = %v", err)
	}
	if _, err := s.Fig2a([]float64{1}); !errors.Is(err, ErrBadSetup) {
		t.Errorf("Fig2a feasibility err = %v", err)
	}
	// Fig2b is off-site and must accept the same setup.
	s.Optimal = OptimalNone
	s.Requests = 20
	if _, err := s.Fig2b([]float64{1.05}); err != nil {
		t.Errorf("Fig2b rejected off-site-legal setup: %v", err)
	}
}

func TestDefaultSetupIsValid(t *testing.T) {
	s := DefaultSetup()
	if err := s.Validate(); err != nil {
		t.Fatalf("DefaultSetup invalid: %v", err)
	}
	if err := s.checkOnsiteFeasibility(s.K); err != nil {
		t.Fatalf("DefaultSetup on-site infeasible: %v", err)
	}
	// The default setup must materialize without error.
	if _, err := s.Instance(20, s.H, s.K, 1); err != nil {
		t.Fatalf("DefaultSetup instance: %v", err)
	}
}

func TestAblationScale(t *testing.T) {
	s := smallSetup()
	s.Requests = 40
	tbl, err := s.AblationScale([]float64{1, 2})
	if err != nil {
		t.Fatalf("AblationScale: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
}

func TestAblationDualUpdate(t *testing.T) {
	s := smallSetup()
	s.Optimal = OptimalNone
	fig, err := s.AblationDualUpdate([]int{30})
	if err != nil {
		t.Fatalf("AblationDualUpdate: %v", err)
	}
	checkFigure(t, fig, 2, 1)
}

func TestAblationSortKey(t *testing.T) {
	s := smallSetup()
	s.Optimal = OptimalNone
	fig, err := s.AblationSortKey([]int{30})
	if err != nil {
		t.Fatalf("AblationSortKey: %v", err)
	}
	checkFigure(t, fig, 3, 1)
}

func TestAblationOptBudget(t *testing.T) {
	s := smallSetup()
	s.Requests = 12
	tbl, err := s.AblationOptBudget([]int{1, 50})
	if err != nil {
		t.Fatalf("AblationOptBudget: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestAblationLatencyPenalty(t *testing.T) {
	s := smallSetup()
	s.Requests = 40
	tbl, err := s.AblationLatencyPenalty([]float64{0, 5})
	if err != nil {
		t.Fatalf("AblationLatencyPenalty: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
}

func TestAblationPooling(t *testing.T) {
	s := smallSetup()
	tbl, err := s.AblationPooling([]int{30, 60})
	if err != nil {
		t.Fatalf("AblationPooling: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
}

func TestChainComparison(t *testing.T) {
	s := smallSetup()
	s.Optimal = OptimalLPBound
	tbl, err := s.ChainComparison([]int{20, 40})
	if err != nil {
		t.Fatalf("ChainComparison: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	// The bound column must not trail the online columns.
	s.Optimal = OptimalBB
	s.OptNodes = 30
	if _, err := s.ChainComparison([]int{15}); err != nil {
		t.Fatalf("ChainComparison(BB): %v", err)
	}
}

func TestViolationStudy(t *testing.T) {
	s := smallSetup()
	tbl, err := s.ViolationStudy([]int{40, 80})
	if err != nil {
		t.Fatalf("ViolationStudy: %v", err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// Lemma 8 must hold: observed ratio ≤ bound on every row.
	for _, row := range tbl.Rows {
		observed, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("parse observed: %v", err)
		}
		bound, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("parse bound: %v", err)
		}
		if observed > bound {
			t.Errorf("requests %s: observed violation %v exceeds Lemma 8 bound %v", row[0], observed, bound)
		}
	}
}

func TestThroughputTable(t *testing.T) {
	s := smallSetup()
	tbl, err := s.ThroughputTable([]int{40})
	if err != nil {
		t.Fatalf("ThroughputTable: %v", err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != 5 {
		t.Fatalf("table shape wrong: %+v", tbl.Rows)
	}
	for c := 1; c < 5; c++ {
		v, err := strconv.ParseFloat(tbl.Rows[0][c], 64)
		if err != nil || v <= 0 {
			t.Errorf("column %d throughput %q invalid", c, tbl.Rows[0][c])
		}
	}
}
