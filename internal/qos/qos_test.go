package qos

import (
	"errors"
	"math"
	"testing"

	"revnf/internal/core"
	"revnf/internal/topology"
)

// lineNetwork builds a 4-node path topology (latency 2 per hop) with three
// cloudlets on nodes 0, 1 and 3.
func lineNetwork(t *testing.T) (*core.Network, *topology.Graph) {
	t.Helper()
	g, err := topology.NewGraph("line", 4)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(i, i+1, 2); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	n := &core.Network{
		Catalog: []core.VNF{{ID: 0, Name: "fw", Demand: 2, Reliability: 0.95}},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 10, Reliability: 0.98},
			{ID: 2, Node: 3, Capacity: 10, Reliability: 0.97},
		},
	}
	return n, g
}

func testTrace() []core.Request {
	return []core.Request{
		{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5},
		{ID: 1, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5},
	}
}

func TestAssessOffsite(t *testing.T) {
	n, g := lineNetwork(t)
	trace := testTrace()
	placements := []core.Placement{
		{
			Request: 0,
			Scheme:  core.OffSite,
			Assignments: []core.Assignment{
				{Cloudlet: 0, Instances: 1}, // primary at node 0
				{Cloudlet: 1, Instances: 1}, // backup at node 1 (latency 2)
				{Cloudlet: 2, Instances: 1}, // backup at node 3 (latency 6)
			},
		},
	}
	rep, err := Assess(n, g, trace, placements)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	pq := rep.PerPlacement[0]
	if pq.Primary != 0 {
		t.Errorf("Primary = %d, want 0", pq.Primary)
	}
	if pq.RecoveryLatency != 6 {
		t.Errorf("RecoveryLatency = %v, want 6", pq.RecoveryLatency)
	}
	// Sync traffic: demand 2 × (2 + 6) = 16.
	if math.Abs(pq.SyncTraffic-16) > 1e-12 {
		t.Errorf("SyncTraffic = %v, want 16", pq.SyncTraffic)
	}
	if rep.MaxRecoveryLatency != 6 || rep.MeanRecoveryLatency != 6 {
		t.Errorf("report latencies = %v/%v", rep.MeanRecoveryLatency, rep.MaxRecoveryLatency)
	}
	if rep.TotalSyncTraffic != 16 {
		t.Errorf("TotalSyncTraffic = %v", rep.TotalSyncTraffic)
	}
}

func TestAssessOnsiteIsFree(t *testing.T) {
	n, g := lineNetwork(t)
	trace := testTrace()
	placements := []core.Placement{
		{
			Request:     1,
			Scheme:      core.OnSite,
			Assignments: []core.Assignment{{Cloudlet: 1, Instances: 3}},
		},
	}
	rep, err := Assess(n, g, trace, placements)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	pq := rep.PerPlacement[0]
	if pq.RecoveryLatency != 0 || pq.SyncTraffic != 0 {
		t.Errorf("on-site placement has recovery %v traffic %v", pq.RecoveryLatency, pq.SyncTraffic)
	}
}

func TestAssessErrors(t *testing.T) {
	n, g := lineNetwork(t)
	trace := testTrace()
	if _, err := Assess(nil, g, trace, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil network err = %v", err)
	}
	if _, err := Assess(n, nil, trace, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil graph err = %v", err)
	}
	unknown := []core.Placement{{Request: 99, Assignments: []core.Assignment{{Cloudlet: 0, Instances: 1}}}}
	if _, err := Assess(n, g, trace, unknown); !errors.Is(err, ErrBadInput) {
		t.Errorf("unknown request err = %v", err)
	}
	empty := []core.Placement{{Request: 0}}
	if _, err := Assess(n, g, trace, empty); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty placement err = %v", err)
	}
	// Cloudlet without a node binding.
	n2, _ := lineNetwork(t)
	n2.Cloudlets[0].Node = -1
	bound := []core.Placement{{Request: 0, Scheme: core.OffSite, Assignments: []core.Assignment{
		{Cloudlet: 0, Instances: 1}, {Cloudlet: 1, Instances: 1},
	}}}
	if _, err := Assess(n2, g, trace, bound); !errors.Is(err, ErrUnplaced) {
		t.Errorf("unbound cloudlet err = %v", err)
	}
}

func TestAssessEmptyPlacements(t *testing.T) {
	n, g := lineNetwork(t)
	rep, err := Assess(n, g, testTrace(), nil)
	if err != nil {
		t.Fatalf("Assess: %v", err)
	}
	if len(rep.PerPlacement) != 0 || rep.MeanRecoveryLatency != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}
