// Package qos quantifies the network-level costs of off-site redundancy
// that the paper identifies but does not model (Section I: geographic
// redundancy means "the recovery time will be slightly longer, and will
// incur extra costs of network traffic between the cloudlets hosting
// primary and backup VNF instances"). Given the MEC topology, it scores
// every placement's recovery latency (shortest-path latency from the
// primary cloudlet to its farthest backup) and state-synchronization
// traffic (demand-weighted primary-to-backup path latencies), enabling the
// on-site/off-site trade-off study the paper motivates.
package qos

import (
	"errors"
	"fmt"

	"revnf/internal/core"
	"revnf/internal/topology"
)

// Errors returned by Assess.
var (
	ErrBadInput = errors.New("qos: invalid input")
	ErrUnplaced = errors.New("qos: cloudlet not bound to a topology node")
)

// PlacementQoS is the network cost of one placement. On-site placements
// have zero recovery latency and zero sync traffic: primary and backups
// share a cloudlet.
type PlacementQoS struct {
	// Request is the request ID.
	Request int
	// Primary is the cloudlet hosting the primary instance (the first
	// assignment; schedulers emit assignments in selection order, so the
	// first is the cheapest/preferred site).
	Primary int
	// RecoveryLatency is the worst-case failover latency: the largest
	// shortest-path latency from the primary to any backup cloudlet, in
	// the topology's latency units.
	RecoveryLatency float64
	// SyncTraffic is the state-synchronization cost proxy: the VNF's
	// demand times the summed primary-to-backup path latencies.
	SyncTraffic float64
}

// Report aggregates QoS over a set of placements.
type Report struct {
	// PerPlacement holds one entry per placement, in input order.
	PerPlacement []PlacementQoS
	// MeanRecoveryLatency and MaxRecoveryLatency summarize failover
	// latency across placements.
	MeanRecoveryLatency, MaxRecoveryLatency float64
	// TotalSyncTraffic sums the traffic proxy across placements.
	TotalSyncTraffic float64
}

// Assess scores every placement on the topology. Every cloudlet referenced
// by a placement must be bound to a topology node (Cloudlet.Node ≥ 0).
func Assess(network *core.Network, g *topology.Graph, trace []core.Request, placements []core.Placement) (*Report, error) {
	if network == nil || g == nil {
		return nil, fmt.Errorf("%w: nil network or graph", ErrBadInput)
	}
	if err := network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	// Pre-compute pairwise latencies between the nodes that actually host
	// cloudlets.
	latencyFrom := make(map[int][]float64)
	nodeOf := func(cloudlet int) (int, error) {
		if cloudlet < 0 || cloudlet >= len(network.Cloudlets) {
			return 0, fmt.Errorf("%w: cloudlet %d", ErrBadInput, cloudlet)
		}
		node := network.Cloudlets[cloudlet].Node
		if node < 0 || node >= g.Nodes() {
			return 0, fmt.Errorf("%w: cloudlet %d node %d", ErrUnplaced, cloudlet, node)
		}
		return node, nil
	}
	report := &Report{PerPlacement: make([]PlacementQoS, 0, len(placements))}
	for _, p := range placements {
		if p.Request < 0 || p.Request >= len(trace) {
			return nil, fmt.Errorf("%w: placement for unknown request %d", ErrBadInput, p.Request)
		}
		if len(p.Assignments) == 0 {
			return nil, fmt.Errorf("%w: empty placement for request %d", ErrBadInput, p.Request)
		}
		req := trace[p.Request]
		demand := float64(network.Catalog[req.VNF].Demand)
		primary := p.Assignments[0].Cloudlet
		primaryNode, err := nodeOf(primary)
		if err != nil {
			return nil, err
		}
		pq := PlacementQoS{Request: p.Request, Primary: primary}
		for _, a := range p.Assignments[1:] {
			backupNode, err := nodeOf(a.Cloudlet)
			if err != nil {
				return nil, err
			}
			dist, ok := latencyFrom[primaryNode]
			if !ok {
				dist, err = g.ShortestLatencies(primaryNode)
				if err != nil {
					return nil, fmt.Errorf("qos: %w", err)
				}
				latencyFrom[primaryNode] = dist
			}
			lat := dist[backupNode]
			if lat > pq.RecoveryLatency {
				pq.RecoveryLatency = lat
			}
			pq.SyncTraffic += demand * lat
		}
		report.PerPlacement = append(report.PerPlacement, pq)
		if pq.RecoveryLatency > report.MaxRecoveryLatency {
			report.MaxRecoveryLatency = pq.RecoveryLatency
		}
		report.MeanRecoveryLatency += pq.RecoveryLatency
		report.TotalSyncTraffic += pq.SyncTraffic
	}
	if n := len(report.PerPlacement); n > 0 {
		report.MeanRecoveryLatency /= float64(n)
	}
	return report, nil
}
