package offline

import (
	"sort"

	"revnf/internal/core"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// Warm starts seed branch and bound with a feasible greedy schedule so
// that even a tiny node budget returns a usable incumbent (the bare
// best-first dive can spend thousands of nodes before reaching an integral
// leaf on instances this size). Offline knowledge is used: requests are
// packed in payment-density order rather than arrival order.

// onsiteWarmStart builds a feasible point for the on-site model, taking
// the better of two packing heuristics: payment-density order with
// smallest-footprint placement, and payment-density order with
// most-reliable-first placement (the offline cousin of the greedy
// baseline). Branch and bound only improves from there, so even a
// one-node budget beats both.
func onsiteWarmStart(inst *workload.Instance, model *onsiteModel) ([]float64, error) {
	dense, err := onsiteGreedy(inst, model, true)
	if err != nil {
		return nil, err
	}
	reliable, err := onsiteGreedy(inst, model, false)
	if err != nil {
		return nil, err
	}
	dObj, err := model.prob.Objective(dense)
	if err != nil {
		return nil, err
	}
	rObj, err := model.prob.Objective(reliable)
	if err != nil {
		return nil, err
	}
	if rObj > dObj {
		return reliable, nil
	}
	return dense, nil
}

// onsiteGreedy packs requests in payment-density order. With
// smallestFootprint it places each in the cheapest-footprint feasible
// cloudlet; otherwise in the most reliable feasible one.
func onsiteGreedy(inst *workload.Instance, model *onsiteModel, smallestFootprint bool) ([]float64, error) {
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, err
	}
	// Index the model's variables by request.
	varsOf := make(map[int][]int, len(inst.Trace))
	for k, p := range model.vars {
		varsOf[p.request] = append(varsOf[p.request], k)
	}
	order := paymentDensityOrder(inst)
	x := make([]float64, model.prob.NumVars())
	for _, i := range order {
		req := inst.Trace[i]
		demand := inst.Network.Catalog[req.VNF].Demand
		bestVar, bestUnits := -1, 0
		bestReliability := 0.0
		for _, k := range varsOf[i] {
			p := model.vars[k]
			units := p.instances * demand
			if !ledger.CanReserve(p.cloudlet, req.Arrival, req.Duration, units) {
				continue
			}
			better := false
			if bestVar < 0 {
				better = true
			} else if smallestFootprint {
				better = units < bestUnits
			} else {
				better = inst.Network.Cloudlets[p.cloudlet].Reliability > bestReliability
			}
			if better {
				bestVar, bestUnits = k, units
				bestReliability = inst.Network.Cloudlets[p.cloudlet].Reliability
			}
		}
		if bestVar < 0 {
			continue
		}
		p := model.vars[bestVar]
		if err := ledger.Reserve(p.cloudlet, req.Arrival, req.Duration, bestUnits); err != nil {
			return nil, err
		}
		x[bestVar] = 1
	}
	// The ledger here is a local feasibility counter for the greedy pack;
	// it is discarded with the function, so its reservations are never
	// released. //lint:allow ledgerapi
	return x, nil
}

// offsiteWarmStart builds a feasible point for the off-site model:
// requests in payment-density order, cloudlets accumulated most reliable
// first (mirroring the greedy baseline) until the weight target is met.
func offsiteWarmStart(inst *workload.Instance, model *offsiteModel) ([]float64, error) {
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, err
	}
	byReliability := make([]int, len(inst.Network.Cloudlets))
	for j := range byReliability {
		byReliability[j] = j
	}
	sort.SliceStable(byReliability, func(a, b int) bool {
		ra := inst.Network.Cloudlets[byReliability[a]].Reliability
		rb := inst.Network.Cloudlets[byReliability[b]].Reliability
		if ra != rb {
			return ra > rb
		}
		return byReliability[a] < byReliability[b]
	})
	x := make([]float64, model.prob.NumVars())
	for _, i := range paymentDensityOrder(inst) {
		req := inst.Trace[i]
		vnf := inst.Network.Catalog[req.VNF]
		needWeight := core.RequirementWeight(req.Reliability)
		totalWeight := 0.0
		var chosen []int
		for _, j := range byReliability {
			if !ledger.CanReserve(j, req.Arrival, req.Duration, vnf.Demand) {
				continue
			}
			chosen = append(chosen, j)
			totalWeight += core.OffsiteWeight(vnf.Reliability, inst.Network.Cloudlets[j].Reliability)
			if core.WeightsSatisfy(totalWeight, needWeight) {
				break
			}
		}
		if !core.WeightsSatisfy(totalWeight, needWeight) {
			continue
		}
		for _, j := range chosen {
			if err := ledger.Reserve(j, req.Arrival, req.Duration, vnf.Demand); err != nil {
				return nil, err
			}
			x[model.yVar(i, j)] = 1
		}
		x[model.xVar(i)] = 1
	}
	// Same as onsiteGreedy: the ledger is a throwaway feasibility counter,
	// not the live admission ledger. //lint:allow ledgerapi
	return x, nil
}

// paymentDensityOrder returns request IDs sorted by payment per consumed
// unit-slot, descending — the offline packing heuristic.
func paymentDensityOrder(inst *workload.Instance) []int {
	order := make([]int, len(inst.Trace))
	for i := range order {
		order[i] = i
	}
	density := func(i int) float64 {
		req := inst.Trace[i]
		demand := inst.Network.Catalog[req.VNF].Demand
		return req.Payment / float64(demand*req.Duration)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := density(order[a]), density(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	return order
}
