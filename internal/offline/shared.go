package offline

import (
	"fmt"
	"sort"

	"revnf/internal/core"
	"revnf/internal/lp"
	"revnf/internal/mip"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// sharedTriple is one candidate shared placement: request i served by a
// primary instance on cloudlet a joining a backup pool on cloudlet b.
type sharedTriple struct {
	request, primary, backup int
}

// sharedModel maps the feasible (request, primary, backup) triples to ILP
// variables, mirroring the sparse on-site model.
type sharedModel struct {
	prob *lp.Problem
	vars []sharedTriple
}

// buildShared constructs the amortized shared-backup program. One 0/1
// variable Z_iab per reliability-feasible triple (feasibility checked at
// full pool capacity k, exactly the online admission predicate), with
//
//	Σ_ab Z_iab ≤ 1                                  (one placement per request)
//	Σ primary load + Σ backup load / k ≤ cap_j      (per cloudlet and slot)
//
// The backup column charges c(f)/k per member — a pool of g ≤ k
// concurrent members truly costs one instance (c(f) units), and the
// amortized charge g·c(f)/k never exceeds that, so every truly-feasible
// shared schedule is feasible here and the program's bound is a valid
// upper bound on the true shared optimum (column generation over pairs
// stays exhaustive for the same reason: dropping a feasible pair would
// forfeit that guarantee).
func buildShared(inst *workload.Instance, poolSize int) (*sharedModel, error) {
	if poolSize < 1 {
		return nil, fmt.Errorf("%w: pool size %d", ErrBadInstance, poolSize)
	}
	rel, err := core.NewReliabilityTable(inst.Network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	m := len(inst.Network.Cloudlets)
	var triples []sharedTriple
	for _, req := range inst.Trace {
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if rel.SharedFeasible(req.VNF, a, b, poolSize, req.Reliability) {
					triples = append(triples, sharedTriple{request: req.ID, primary: a, backup: b})
				}
			}
		}
	}
	if len(triples) == 0 {
		return nil, fmt.Errorf("%w: no feasible request/pair triple", ErrBadInstance)
	}
	prob, err := lp.NewProblem(lp.Maximize, len(triples))
	if err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	perRequest := make(map[int]map[int]float64, len(inst.Trace))
	capRows := make(map[[2]int]map[int]float64)
	for v, tr := range triples {
		req := inst.Trace[tr.request]
		if err := prob.SetObjectiveCoeff(v, req.Payment); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		row, ok := perRequest[tr.request]
		if !ok {
			row = map[int]float64{}
			perRequest[tr.request] = row
		}
		row[v] = 1
		units := float64(inst.Network.Catalog[req.VNF].Demand)
		for t := req.Arrival; t <= req.End(); t++ {
			for _, load := range []struct {
				cloudlet int
				units    float64
			}{{tr.primary, units}, {tr.backup, units / float64(poolSize)}} {
				key := [2]int{load.cloudlet, t}
				capRow, ok := capRows[key]
				if !ok {
					capRow = map[int]float64{}
					capRows[key] = capRow
				}
				capRow[v] += load.units
			}
		}
	}
	for _, req := range inst.Trace {
		if row, ok := perRequest[req.ID]; ok {
			if _, err := prob.AddConstraint(row, lp.LE, 1); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	for j := 0; j < m; j++ {
		for t := 1; t <= inst.Horizon; t++ {
			row, ok := capRows[[2]int{j, t}]
			if !ok {
				continue
			}
			if _, err := prob.AddConstraint(row, lp.LE, float64(inst.Network.Cloudlets[j].Capacity)); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	return &sharedModel{prob: prob, vars: triples}, nil
}

// sharedGrouper assigns admitted triples to concrete backup groups: per
// (backup, vnf) key — primaries mix freely, made sound by the contention
// floor — a member joins the first group whose per-slot concurrent
// membership stays below k, else opens a new group.
// The resulting placements carry group IDs and pass core Validate at
// PoolSize = k.
type sharedGrouper struct {
	poolSize int
	next     int
	byKey    map[[2]int][]int
	refs     map[int]map[int]int
}

func newSharedGrouper(poolSize int) *sharedGrouper {
	return &sharedGrouper{
		poolSize: poolSize,
		next:     1,
		byKey:    make(map[[2]int][]int),
		refs:     make(map[int]map[int]int),
	}
}

func (g *sharedGrouper) place(key [2]int, arrival, end int) int {
	for _, gid := range g.byKey[key] {
		ref := g.refs[gid]
		fits := true
		for t := arrival; t <= end && fits; t++ {
			if ref[t] >= g.poolSize {
				fits = false
			}
		}
		if fits {
			for t := arrival; t <= end; t++ {
				ref[t]++
			}
			return gid
		}
	}
	gid := g.next
	g.next++
	g.byKey[key] = append(g.byKey[key], gid)
	ref := make(map[int]int)
	for t := arrival; t <= end; t++ {
		ref[t]++
	}
	g.refs[gid] = ref
	return gid
}

// SolveShared computes the offline shared-backup schedule by branch and
// bound on the amortized program. Admitted requests are grouped into
// concrete backup pools of at most poolSize concurrent members, so the
// returned placements validate; the incumbent's revenue is exact for the
// amortized capacity accounting, and UpperBound dominates the true pooled
// optimum, keeping Gap() a conservative certificate.
func SolveShared(inst *workload.Instance, poolSize int, cfg mip.Config) (*Solution, error) {
	if err := checkInstance(inst); err != nil {
		return nil, err
	}
	model, err := buildShared(inst, poolSize)
	if err != nil {
		return nil, err
	}
	binaries := make([]int, len(model.vars))
	for k := range binaries {
		binaries[k] = k
	}
	if cfg.WarmStart == nil {
		warm, err := sharedWarmStart(inst, model, poolSize)
		if err != nil {
			return nil, fmt.Errorf("offline: shared warm start: %w", err)
		}
		cfg.WarmStart = warm
	}
	res, err := mip.Solve(model.prob, binaries, cfg)
	if err != nil {
		return nil, fmt.Errorf("offline: shared solve: %w", err)
	}
	sol := &Solution{
		Status:     res.Status,
		UpperBound: res.Bound,
		Admitted:   make([]bool, len(inst.Trace)),
		Nodes:      res.Nodes,
	}
	if res.Status == mip.Infeasible || res.Status == mip.NoIncumbent {
		return sol, nil
	}
	sol.Revenue = res.Objective
	// Group admitted triples in request order so the assignment is
	// deterministic.
	grouper := newSharedGrouper(poolSize)
	chosen := make(map[int]sharedTriple)
	for v, tr := range model.vars {
		if res.X[v] > 0.5 {
			chosen[tr.request] = tr
		}
	}
	ids := make([]int, 0, len(chosen))
	for id := range chosen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr := chosen[id]
		req := inst.Trace[id]
		sol.Admitted[id] = true
		gid := grouper.place([2]int{tr.backup, req.VNF}, req.Arrival, req.End())
		sol.Placements = append(sol.Placements, core.Placement{
			Request:     id,
			Scheme:      core.Shared,
			Assignments: []core.Assignment{{Cloudlet: tr.primary, Instances: 1}},
			Backup: &core.SharedBackup{
				Group:    gid,
				Cloudlet: tr.backup,
				PoolSize: poolSize,
			},
		})
	}
	return sol, nil
}

// LPBoundShared returns the LP-relaxation upper bound on offline
// shared-backup revenue at the given pool size.
func LPBoundShared(inst *workload.Instance, poolSize int) (float64, error) {
	if err := checkInstance(inst); err != nil {
		return 0, err
	}
	model, err := buildShared(inst, poolSize)
	if err != nil {
		return 0, err
	}
	sol, err := model.prob.Solve()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: relaxation status %v", ErrBadInstance, sol.Status)
	}
	return sol.Objective, nil
}

// sharedWarmStart builds a feasible point for the amortized model by
// running a true pooled greedy: requests in payment-density order, pairs
// scanned in index order, capacity tracked with a real refcounted pool —
// truly-feasible points are amortized-feasible, so the incumbent seeds
// branch and bound with honest revenue.
func sharedWarmStart(inst *workload.Instance, model *sharedModel, poolSize int) ([]float64, error) {
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, err
	}
	pool := timeslot.NewPool(ledger)
	// Per-request candidate triples, in variable order.
	byRequest := make(map[int][]int)
	for v, tr := range model.vars {
		byRequest[tr.request] = append(byRequest[tr.request], v)
	}
	grouper := newSharedGrouper(poolSize)
	keyGroups := make(map[[2]int][]int)
	x := make([]float64, model.prob.NumVars())
	for _, i := range paymentDensityOrder(inst) {
		req := inst.Trace[i]
		demand := inst.Network.Catalog[req.VNF].Demand
		for _, v := range byRequest[i] {
			tr := model.vars[v]
			if !ledger.CanReserve(tr.primary, req.Arrival, req.Duration, demand) {
				continue
			}
			gid, ok := reserveSharedJoin(pool, grouper, keyGroups, tr, req, demand, poolSize)
			if !ok {
				continue
			}
			if err := ledger.Reserve(tr.primary, req.Arrival, req.Duration, demand); err != nil {
				// The pooled side is already held; undo it to keep the
				// throwaway ledger consistent for later requests.
				if rerr := pool.Release(gid, req.Arrival, req.Duration); rerr != nil {
					return nil, rerr
				}
				continue
			}
			x[v] = 1
			break
		}
	}
	// The ledger and pool are throwaway feasibility counters, not the live
	// admission ledger; nothing to release. //lint:allow ledgerapi
	return x, nil
}

// reserveSharedJoin tries to join (or open) a backup group for the
// triple, holding pooled capacity on success. The group refcount check
// and the ledger reservation are both enforced by the pool.
func reserveSharedJoin(pool *timeslot.Pool, grouper *sharedGrouper, keyGroups map[[2]int][]int,
	tr sharedTriple, req core.Request, demand, poolSize int) (int, bool) {
	key := [2]int{tr.backup, req.VNF}
	for _, gid := range keyGroups[key] {
		fits := true
		for t := req.Arrival; t <= req.End() && fits; t++ {
			if pool.Refs(gid, t) >= poolSize {
				fits = false
			}
		}
		if !fits {
			continue
		}
		if err := pool.Acquire(gid, tr.backup, req.Arrival, req.Duration, demand); err == nil {
			return gid, true
		}
	}
	gid := grouper.next
	if err := pool.Acquire(gid, tr.backup, req.Arrival, req.Duration, demand); err != nil {
		return 0, false
	}
	grouper.next++
	keyGroups[key] = append(keyGroups[key], gid)
	return gid, true
}
