package offline

import (
	"fmt"

	"revnf/internal/lp"
	"revnf/internal/workload"
)

// LPBoundOffsiteDual computes the off-site LP bound by solving the DUAL of
// the relaxation. The dual's geometry differs enough from the primal's
// that instances degenerate for one are often easy for the other; both
// yield the same bound by strong duality.
func LPBoundOffsiteDual(inst *workload.Instance) (float64, error) {
	if err := checkInstance(inst); err != nil {
		return 0, err
	}
	model, err := buildOffsite(inst, false)
	if err != nil {
		return 0, err
	}
	dual, err := model.prob.Dualize()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	sol, err := dual.Solve()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: dual status %v", ErrBadInstance, sol.Status)
	}
	return sol.Objective, nil
}
