package offline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"revnf/internal/chain"
	"revnf/internal/core"
	"revnf/internal/mip"
	"revnf/internal/timeslot"
)

func tinyChainInstance(t *testing.T, seed int64, requests int) *chain.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	network := &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 6, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 5, Reliability: 0.98},
		},
	}
	const horizon = 4
	trace := make([]chain.Request, requests)
	for i := range trace {
		length := 1 + rng.Intn(2)
		vnfs := make([]int, length)
		for k := range vnfs {
			vnfs[k] = rng.Intn(2)
		}
		d := 1 + rng.Intn(2)
		trace[i] = chain.Request{
			ID:          i,
			VNFs:        vnfs,
			Reliability: 0.88 + 0.05*rng.Float64(),
			Arrival:     1 + rng.Intn(horizon-d+1),
			Duration:    d,
			Payment:     1 + rng.Float64()*9,
		}
	}
	inst := &chain.Instance{Network: network, Horizon: horizon, Trace: trace}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	return inst
}

// bruteForceChainOnsite enumerates (reject | cloudlet) per chain with the
// same greedy allocation the solver fixes.
func bruteForceChainOnsite(t *testing.T, inst *chain.Instance) float64 {
	t.Helper()
	n := len(inst.Trace)
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	type option struct{ cloudlet, units int }
	options := make([][]option, n)
	for i, req := range inst.Trace {
		for j, cl := range inst.Network.Cloudlets {
			alloc, err := chain.OnsiteAllocation(inst.Network.Catalog, req.VNFs, cl.Reliability, req.Reliability)
			if err != nil {
				continue
			}
			options[i] = append(options[i], option{cloudlet: j, units: alloc.Units(inst.Network.Catalog, req.VNFs)})
		}
	}
	best := 0.0
	var recurse func(i int, ledger *timeslot.Ledger, revenue float64)
	recurse = func(i int, ledger *timeslot.Ledger, revenue float64) {
		if i == n {
			if revenue > best {
				best = revenue
			}
			return
		}
		recurse(i+1, ledger, revenue)
		req := inst.Trace[i]
		for _, opt := range options[i] {
			if !ledger.CanReserve(opt.cloudlet, req.Arrival, req.Duration, opt.units) {
				continue
			}
			if err := ledger.Reserve(opt.cloudlet, req.Arrival, req.Duration, opt.units); err != nil {
				t.Fatalf("Reserve: %v", err)
			}
			recurse(i+1, ledger, revenue+req.Payment)
			if err := ledger.Release(opt.cloudlet, req.Arrival, req.Duration, opt.units); err != nil {
				t.Fatalf("Release: %v", err)
			}
		}
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	recurse(0, ledger, 0)
	return best
}

func TestSolveChainOnsiteMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst := tinyChainInstance(t, seed, 5)
		sol, err := SolveChainOnsite(inst, mip.Config{})
		if err != nil {
			t.Fatalf("seed %d: SolveChainOnsite: %v", seed, err)
		}
		if sol.Status != mip.Exact {
			t.Fatalf("seed %d: status %v", seed, sol.Status)
		}
		want := bruteForceChainOnsite(t, inst)
		if math.Abs(sol.Revenue-want) > 1e-6 {
			t.Errorf("seed %d: revenue %v, brute force %v", seed, sol.Revenue, want)
		}
	}
}

func TestSolveChainOnsitePlacementsValid(t *testing.T) {
	inst := tinyChainInstance(t, 9, 6)
	sol, err := SolveChainOnsite(inst, mip.Config{})
	if err != nil {
		t.Fatalf("SolveChainOnsite: %v", err)
	}
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	revenue := 0.0
	for _, p := range sol.Placements {
		req := inst.Trace[p.Request]
		if err := p.Validate(inst.Network, req); err != nil {
			t.Errorf("placement for chain %d invalid: %v", p.Request, err)
		}
		for cl, units := range p.UnitsPerCloudlet(inst.Network.Catalog) {
			if err := ledger.Reserve(cl, req.Arrival, req.Duration, units); err != nil {
				t.Errorf("chain %d overbooks: %v", p.Request, err)
			}
		}
		revenue += req.Payment
	}
	if math.Abs(revenue-sol.Revenue) > 1e-6 {
		t.Errorf("placement revenue %v != solution revenue %v", revenue, sol.Revenue)
	}
}

func TestLPBoundChainOnsiteDominates(t *testing.T) {
	inst := tinyChainInstance(t, 2, 5)
	bound, err := LPBoundChainOnsite(inst)
	if err != nil {
		t.Fatalf("LPBoundChainOnsite: %v", err)
	}
	sol, err := SolveChainOnsite(inst, mip.Config{})
	if err != nil {
		t.Fatalf("SolveChainOnsite: %v", err)
	}
	if bound < sol.Revenue-1e-6 {
		t.Errorf("LP bound %v below ILP optimum %v", bound, sol.Revenue)
	}
	// The online chain scheduler must also sit below the bound.
	sched, err := chain.NewOnsiteScheduler(inst.Network, inst.Horizon)
	if err != nil {
		t.Fatalf("NewOnsiteScheduler: %v", err)
	}
	res, err := chain.Run(inst, sched)
	if err != nil {
		t.Fatalf("chain.Run: %v", err)
	}
	if bound < res.Revenue-1e-6 {
		t.Errorf("LP bound %v below online revenue %v", bound, res.Revenue)
	}
}

func TestSolveChainOnsiteErrors(t *testing.T) {
	if _, err := SolveChainOnsite(nil, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil instance err = %v", err)
	}
	if _, err := LPBoundChainOnsite(nil); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil instance err = %v", err)
	}
	inst := tinyChainInstance(t, 1, 3)
	inst.Trace = nil
	if _, err := SolveChainOnsite(inst, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("empty trace err = %v", err)
	}
	inst = tinyChainInstance(t, 1, 3)
	for i := range inst.Trace {
		inst.Trace[i].Reliability = 0.995 // above both cloudlets
	}
	if _, err := SolveChainOnsite(inst, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("no feasible pair err = %v", err)
	}
}
