// Package offline computes the offline comparator curves of the paper's
// evaluation. The paper solves the on-site ILP (Eqs. 4–8) and the
// linearized off-site ILP (Eqs. 49–53) with CPLEX; this package builds the
// same programs over internal/lp and solves them with internal/mip's
// branch and bound — exact when the search finishes within its node
// budget, otherwise reporting the best incumbent together with the
// relaxation upper bound so experiments can bracket the true optimum. The
// pure LP relaxation bounds are also exposed for cheap upper-bound curves.
package offline

import (
	"errors"
	"fmt"

	"revnf/internal/core"
	"revnf/internal/lp"
	"revnf/internal/mip"
	"revnf/internal/workload"
)

// Errors returned by the solvers.
var (
	ErrBadInstance = errors.New("offline: invalid instance")
)

// Solution is an offline schedule with its optimality certificate.
type Solution struct {
	// Status is the branch-and-bound outcome.
	Status mip.Status
	// Revenue is the incumbent's objective: a feasible offline revenue.
	Revenue float64
	// UpperBound is the best relaxation bound; the true offline optimum
	// lies in [Revenue, UpperBound].
	UpperBound float64
	// Admitted flags each request in trace order.
	Admitted []bool
	// Placements holds one placement per admitted request.
	Placements []core.Placement
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Gap returns the relative optimality gap of the solution.
func (s *Solution) Gap() float64 {
	// The incumbent revenue is a sum of payments, so "empty incumbent" is
	// a tolerance check, not exact zero (revnfvet: floateq).
	if core.FloatEq(s.Revenue, 0) {
		if core.FloatEq(s.UpperBound, 0) {
			return 0
		}
		return 1
	}
	return (s.UpperBound - s.Revenue) / s.Revenue
}

// onsiteModel maps (request, cloudlet) pairs to ILP variables.
type onsiteModel struct {
	prob *lp.Problem
	// vars[k] identifies variable k; index maps pairs back to k.
	vars []onsitePair
}

type onsitePair struct {
	request, cloudlet, instances int
}

// buildOnsite constructs the LP relaxation of the on-site ILP (Eqs. 4–8)
// with X_i eliminated through X_i = Σ_j Y_ij.
func buildOnsite(inst *workload.Instance) (*onsiteModel, error) {
	var pairs []onsitePair
	for _, req := range inst.Trace {
		vnf := inst.Network.Catalog[req.VNF]
		for j, cl := range inst.Network.Cloudlets {
			n, err := core.OnsiteInstances(vnf.Reliability, cl.Reliability, req.Reliability)
			if err != nil {
				continue
			}
			pairs = append(pairs, onsitePair{request: req.ID, cloudlet: j, instances: n})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: no feasible request/cloudlet pair", ErrBadInstance)
	}
	prob, err := lp.NewProblem(lp.Maximize, len(pairs))
	if err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	// Objective and per-request selection constraints (5), (21).
	perRequest := make(map[int]map[int]float64, len(inst.Trace))
	for k, p := range pairs {
		if err := prob.SetObjectiveCoeff(k, inst.Trace[p.request].Payment); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		row, ok := perRequest[p.request]
		if !ok {
			row = map[int]float64{}
			perRequest[p.request] = row
		}
		row[k] = 1
	}
	for _, req := range inst.Trace {
		if row, ok := perRequest[req.ID]; ok {
			if _, err := prob.AddConstraint(row, lp.LE, 1); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	// Capacity constraints (4) per (cloudlet, slot) with active load.
	capRows := make(map[[2]int]map[int]float64)
	for k, p := range pairs {
		req := inst.Trace[p.request]
		units := float64(p.instances * inst.Network.Catalog[req.VNF].Demand)
		for t := req.Arrival; t <= req.End(); t++ {
			key := [2]int{p.cloudlet, t}
			row, ok := capRows[key]
			if !ok {
				row = map[int]float64{}
				capRows[key] = row
			}
			row[k] = units
		}
	}
	for j := range inst.Network.Cloudlets {
		for t := 1; t <= inst.Horizon; t++ {
			row, ok := capRows[[2]int{j, t}]
			if !ok {
				continue
			}
			if _, err := prob.AddConstraint(row, lp.LE, float64(inst.Network.Cloudlets[j].Capacity)); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	return &onsiteModel{prob: prob, vars: pairs}, nil
}

// SolveOnsite computes the offline on-site schedule by branch and bound.
func SolveOnsite(inst *workload.Instance, cfg mip.Config) (*Solution, error) {
	if err := checkInstance(inst); err != nil {
		return nil, err
	}
	model, err := buildOnsite(inst)
	if err != nil {
		return nil, err
	}
	binaries := make([]int, len(model.vars))
	for k := range binaries {
		binaries[k] = k
	}
	if cfg.WarmStart == nil {
		warm, err := onsiteWarmStart(inst, model)
		if err != nil {
			return nil, fmt.Errorf("offline: on-site warm start: %w", err)
		}
		cfg.WarmStart = warm
	}
	res, err := mip.Solve(model.prob, binaries, cfg)
	if err != nil {
		return nil, fmt.Errorf("offline: on-site solve: %w", err)
	}
	sol := &Solution{
		Status:     res.Status,
		UpperBound: res.Bound,
		Admitted:   make([]bool, len(inst.Trace)),
		Nodes:      res.Nodes,
	}
	if res.Status == mip.Infeasible || res.Status == mip.NoIncumbent {
		return sol, nil
	}
	sol.Revenue = res.Objective
	for k, p := range model.vars {
		if res.X[k] > 0.5 {
			sol.Admitted[p.request] = true
			sol.Placements = append(sol.Placements, core.Placement{
				Request:     p.request,
				Scheme:      core.OnSite,
				Assignments: []core.Assignment{{Cloudlet: p.cloudlet, Instances: p.instances}},
			})
		}
	}
	return sol, nil
}

// LPBoundOnsite returns the LP-relaxation upper bound on offline on-site
// revenue, the cheap stand-in for the optimal curve at large scales.
func LPBoundOnsite(inst *workload.Instance) (float64, error) {
	if err := checkInstance(inst); err != nil {
		return 0, err
	}
	model, err := buildOnsite(inst)
	if err != nil {
		return 0, err
	}
	sol, err := model.prob.Solve()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: relaxation status %v", ErrBadInstance, sol.Status)
	}
	return sol.Objective, nil
}

func checkInstance(inst *workload.Instance) error {
	if inst == nil {
		return fmt.Errorf("%w: nil", ErrBadInstance)
	}
	if err := inst.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if len(inst.Trace) == 0 {
		return fmt.Errorf("%w: empty trace", ErrBadInstance)
	}
	return nil
}
