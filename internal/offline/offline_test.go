package offline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"revnf/internal/core"
	"revnf/internal/mip"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

func tinyInstance(t *testing.T, seed int64, requests int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	network := &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 4, Reliability: 0.99},
			{ID: 1, Node: 1, Capacity: 3, Reliability: 0.98},
			{ID: 2, Node: 2, Capacity: 3, Reliability: 0.97},
		},
	}
	const horizon = 4
	trace := make([]core.Request, requests)
	for i := range trace {
		d := 1 + rng.Intn(2)
		a := 1 + rng.Intn(horizon-d+1)
		trace[i] = core.Request{
			ID:          i,
			VNF:         rng.Intn(2),
			Reliability: 0.9 + 0.05*rng.Float64(),
			Arrival:     a,
			Duration:    d,
			Payment:     1 + rng.Float64()*9,
		}
	}
	inst := &workload.Instance{Network: network, Horizon: horizon, Trace: trace}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	return inst
}

// bruteForceOnsite enumerates every (reject | cloudlet) choice per request
// and returns the best capacity-feasible revenue.
func bruteForceOnsite(t *testing.T, inst *workload.Instance) float64 {
	t.Helper()
	n := len(inst.Trace)
	m := len(inst.Network.Cloudlets)
	caps := make([]int, m)
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	type option struct {
		cloudlet, units int
	}
	options := make([][]option, n)
	for i, req := range inst.Trace {
		vnf := inst.Network.Catalog[req.VNF]
		for j, cl := range inst.Network.Cloudlets {
			k, err := core.OnsiteInstances(vnf.Reliability, cl.Reliability, req.Reliability)
			if err != nil {
				continue
			}
			options[i] = append(options[i], option{cloudlet: j, units: k * vnf.Demand})
		}
	}
	best := 0.0
	choice := make([]int, n) // -1 = reject, else option index
	var recurse func(i int, ledger *timeslot.Ledger, revenue float64)
	recurse = func(i int, ledger *timeslot.Ledger, revenue float64) {
		if i == n {
			if revenue > best {
				best = revenue
			}
			return
		}
		choice[i] = -1
		recurse(i+1, ledger, revenue)
		req := inst.Trace[i]
		for _, opt := range options[i] {
			if !ledger.CanReserve(opt.cloudlet, req.Arrival, req.Duration, opt.units) {
				continue
			}
			if err := ledger.Reserve(opt.cloudlet, req.Arrival, req.Duration, opt.units); err != nil {
				t.Fatalf("Reserve: %v", err)
			}
			recurse(i+1, ledger, revenue+req.Payment)
			if err := ledger.Release(opt.cloudlet, req.Arrival, req.Duration, opt.units); err != nil {
				t.Fatalf("Release: %v", err)
			}
		}
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	recurse(0, ledger, 0)
	return best
}

func TestSolveOnsiteMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := tinyInstance(t, seed, 5)
		sol, err := SolveOnsite(inst, mip.Config{})
		if err != nil {
			t.Fatalf("seed %d: SolveOnsite: %v", seed, err)
		}
		if sol.Status != mip.Exact {
			t.Fatalf("seed %d: status %v", seed, sol.Status)
		}
		want := bruteForceOnsite(t, inst)
		if math.Abs(sol.Revenue-want) > 1e-6 {
			t.Errorf("seed %d: revenue %v, brute force %v", seed, sol.Revenue, want)
		}
	}
}

func TestSolveOnsiteSolutionIsFeasible(t *testing.T) {
	inst := tinyInstance(t, 42, 8)
	sol, err := SolveOnsite(inst, mip.Config{})
	if err != nil {
		t.Fatalf("SolveOnsite: %v", err)
	}
	replayPlacements(t, inst, sol)
}

// replayPlacements reserves every placement in a fresh ledger and fails the
// test on any capacity or reliability violation.
func replayPlacements(t *testing.T, inst *workload.Instance, sol *Solution) {
	t.Helper()
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	revenue := 0.0
	for _, p := range sol.Placements {
		req := inst.Trace[p.Request]
		if !sol.Admitted[p.Request] {
			t.Errorf("placement for non-admitted request %d", p.Request)
		}
		if err := p.Validate(inst.Network, req); err != nil {
			t.Errorf("placement for request %d invalid: %v", p.Request, err)
		}
		demand := inst.Network.Catalog[req.VNF].Demand
		for _, a := range p.Assignments {
			if err := ledger.Reserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand)); err != nil {
				t.Errorf("placement for request %d overbooks: %v", p.Request, err)
			}
		}
		revenue += req.Payment
	}
	if math.Abs(revenue-sol.Revenue) > 1e-6 {
		t.Errorf("placement revenue %v != solution revenue %v", revenue, sol.Revenue)
	}
}

func TestLPBoundOnsiteDominatesILP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := tinyInstance(t, seed, 6)
		bound, err := LPBoundOnsite(inst)
		if err != nil {
			t.Fatalf("LPBoundOnsite: %v", err)
		}
		sol, err := SolveOnsite(inst, mip.Config{})
		if err != nil {
			t.Fatalf("SolveOnsite: %v", err)
		}
		if bound < sol.Revenue-1e-6 {
			t.Errorf("seed %d: LP bound %v below ILP optimum %v", seed, bound, sol.Revenue)
		}
	}
}

func TestSolveOnsiteErrors(t *testing.T) {
	if _, err := SolveOnsite(nil, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("nil instance err = %v", err)
	}
	inst := tinyInstance(t, 1, 3)
	inst.Trace = nil
	if _, err := SolveOnsite(inst, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("empty trace err = %v", err)
	}
	// All requirements unattainable.
	inst = tinyInstance(t, 1, 3)
	for i := range inst.Trace {
		inst.Trace[i].Reliability = 0.9999
	}
	if _, err := SolveOnsite(inst, mip.Config{}); !errors.Is(err, ErrBadInstance) {
		t.Errorf("no feasible pair err = %v", err)
	}
}

func TestSolutionGap(t *testing.T) {
	s := &Solution{Revenue: 10, UpperBound: 11}
	if math.Abs(s.Gap()-0.1) > 1e-12 {
		t.Errorf("Gap() = %v, want 0.1", s.Gap())
	}
	empty := &Solution{}
	if empty.Gap() != 0 {
		t.Errorf("empty Gap() = %v, want 0", empty.Gap())
	}
	noIncumbent := &Solution{UpperBound: 5}
	if noIncumbent.Gap() != 1 {
		t.Errorf("no-incumbent Gap() = %v, want 1", noIncumbent.Gap())
	}
}
