package offline

import (
	"fmt"

	"revnf/internal/chain"
	"revnf/internal/core"
	"revnf/internal/lp"
	"revnf/internal/mip"
)

// Chain offline comparator: the on-site chain problem has the same ILP
// shape as the single-VNF problem (Eqs. 4–8) once each (request, cloudlet)
// pair's footprint is fixed by the greedy redundancy allocation — one
// binary per feasible pair, per-request selection rows, per-(cloudlet,
// slot) capacity rows.

// chainPair is one feasible (chain request, cloudlet) placement with its
// allocation.
type chainPair struct {
	request, cloudlet int
	alloc             chain.Allocation
	units             int
}

type chainModel struct {
	prob *lp.Problem
	vars []chainPair
}

func buildChainOnsite(inst *chain.Instance) (*chainModel, error) {
	var pairs []chainPair
	for _, req := range inst.Trace {
		for j, cl := range inst.Network.Cloudlets {
			alloc, err := chain.OnsiteAllocation(inst.Network.Catalog, req.VNFs, cl.Reliability, req.Reliability)
			if err != nil {
				continue
			}
			pairs = append(pairs, chainPair{
				request:  req.ID,
				cloudlet: j,
				alloc:    alloc,
				units:    alloc.Units(inst.Network.Catalog, req.VNFs),
			})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("%w: no feasible chain/cloudlet pair", ErrBadInstance)
	}
	prob, err := lp.NewProblem(lp.Maximize, len(pairs))
	if err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	perRequest := make(map[int]map[int]float64, len(inst.Trace))
	for k, p := range pairs {
		if err := prob.SetObjectiveCoeff(k, inst.Trace[p.request].Payment); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		row, ok := perRequest[p.request]
		if !ok {
			row = map[int]float64{}
			perRequest[p.request] = row
		}
		row[k] = 1
	}
	for _, req := range inst.Trace {
		if row, ok := perRequest[req.ID]; ok {
			if _, err := prob.AddConstraint(row, lp.LE, 1); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	capRows := make(map[[2]int]map[int]float64)
	for k, p := range pairs {
		req := inst.Trace[p.request]
		for t := req.Arrival; t <= req.End(); t++ {
			key := [2]int{p.cloudlet, t}
			row, ok := capRows[key]
			if !ok {
				row = map[int]float64{}
				capRows[key] = row
			}
			row[k] = float64(p.units)
		}
	}
	for j := range inst.Network.Cloudlets {
		for t := 1; t <= inst.Horizon; t++ {
			if row, ok := capRows[[2]int{j, t}]; ok {
				if _, err := prob.AddConstraint(row, lp.LE, float64(inst.Network.Cloudlets[j].Capacity)); err != nil {
					return nil, fmt.Errorf("offline: %w", err)
				}
			}
		}
	}
	return &chainModel{prob: prob, vars: pairs}, nil
}

// ChainSolution is the offline chain schedule with optimality
// certificates, mirroring Solution for the single-VNF problems.
type ChainSolution struct {
	// Status, Revenue, UpperBound and Nodes mirror Solution.
	Status     mip.Status
	Revenue    float64
	UpperBound float64
	Nodes      int
	// Admitted flags each chain in trace order; Placements hold the
	// admitted chains' footprints.
	Admitted   []bool
	Placements []chain.Placement
}

// SolveChainOnsite computes the offline on-site chain schedule by branch
// and bound, with the fixed greedy allocation per (request, cloudlet)
// pair.
func SolveChainOnsite(inst *chain.Instance, cfg mip.Config) (*ChainSolution, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil", ErrBadInstance)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if len(inst.Trace) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadInstance)
	}
	model, err := buildChainOnsite(inst)
	if err != nil {
		return nil, err
	}
	binaries := make([]int, len(model.vars))
	for k := range binaries {
		binaries[k] = k
	}
	res, err := mip.Solve(model.prob, binaries, cfg)
	if err != nil {
		return nil, fmt.Errorf("offline: chain solve: %w", err)
	}
	sol := &ChainSolution{
		Status:     res.Status,
		UpperBound: res.Bound,
		Nodes:      res.Nodes,
		Admitted:   make([]bool, len(inst.Trace)),
	}
	if res.Status == mip.Infeasible || res.Status == mip.NoIncumbent {
		return sol, nil
	}
	sol.Revenue = res.Objective
	for k, p := range model.vars {
		if res.X[k] <= 0.5 {
			continue
		}
		sol.Admitted[p.request] = true
		req := inst.Trace[p.request]
		stages := make([]chain.StagePlacement, len(req.VNFs))
		for s, f := range req.VNFs {
			stages[s] = chain.StagePlacement{
				VNF:         f,
				Assignments: []core.Assignment{{Cloudlet: p.cloudlet, Instances: p.alloc[s]}},
			}
		}
		sol.Placements = append(sol.Placements, chain.Placement{
			Request: p.request,
			Scheme:  core.OnSite,
			Stages:  stages,
		})
	}
	return sol, nil
}

// LPBoundChainOnsite returns the LP-relaxation upper bound on offline
// on-site chain revenue.
func LPBoundChainOnsite(inst *chain.Instance) (float64, error) {
	if inst == nil {
		return 0, fmt.Errorf("%w: nil", ErrBadInstance)
	}
	if err := inst.Validate(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadInstance, err)
	}
	if len(inst.Trace) == 0 {
		return 0, fmt.Errorf("%w: empty trace", ErrBadInstance)
	}
	model, err := buildChainOnsite(inst)
	if err != nil {
		return 0, err
	}
	sol, err := model.prob.Solve()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: relaxation status %v", ErrBadInstance, sol.Status)
	}
	return sol.Objective, nil
}
