package offline

import (
	"math"
	"testing"

	"revnf/internal/core"
	"revnf/internal/mip"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// bruteForceOffsite enumerates, per request, every cloudlet subset that
// meets the reliability requirement (or rejection) and returns the best
// capacity-feasible revenue.
func bruteForceOffsite(t *testing.T, inst *workload.Instance) float64 {
	t.Helper()
	n := len(inst.Trace)
	m := len(inst.Network.Cloudlets)
	caps := make([]int, m)
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	// Enumerate admissible subsets per request.
	subsets := make([][]int, n) // bitmasks meeting reliability
	for i, req := range inst.Trace {
		rf := inst.Network.Catalog[req.VNF].Reliability
		for mask := 1; mask < 1<<m; mask++ {
			var rcs []float64
			for j := 0; j < m; j++ {
				if mask&(1<<j) != 0 {
					rcs = append(rcs, inst.Network.Cloudlets[j].Reliability)
				}
			}
			if core.OffsiteReliability(rf, rcs)+1e-12 >= req.Reliability {
				subsets[i] = append(subsets[i], mask)
			}
		}
	}
	best := 0.0
	var recurse func(i int, ledger *timeslot.Ledger, revenue float64)
	recurse = func(i int, ledger *timeslot.Ledger, revenue float64) {
		if i == n {
			if revenue > best {
				best = revenue
			}
			return
		}
		recurse(i+1, ledger, revenue) // reject
		req := inst.Trace[i]
		demand := inst.Network.Catalog[req.VNF].Demand
		for _, mask := range subsets[i] {
			ok := true
			for j := 0; j < m && ok; j++ {
				if mask&(1<<j) != 0 && !ledger.CanReserve(j, req.Arrival, req.Duration, demand) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			for j := 0; j < m; j++ {
				if mask&(1<<j) != 0 {
					if err := ledger.Reserve(j, req.Arrival, req.Duration, demand); err != nil {
						t.Fatalf("Reserve: %v", err)
					}
				}
			}
			recurse(i+1, ledger, revenue+req.Payment)
			for j := 0; j < m; j++ {
				if mask&(1<<j) != 0 {
					if err := ledger.Release(j, req.Arrival, req.Duration, demand); err != nil {
						t.Fatalf("Release: %v", err)
					}
				}
			}
		}
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	recurse(0, ledger, 0)
	return best
}

func TestSolveOffsiteMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := tinyInstance(t, seed, 4)
		sol, err := SolveOffsite(inst, mip.Config{})
		if err != nil {
			t.Fatalf("seed %d: SolveOffsite: %v", seed, err)
		}
		if sol.Status != mip.Exact {
			t.Fatalf("seed %d: status %v", seed, sol.Status)
		}
		want := bruteForceOffsite(t, inst)
		if math.Abs(sol.Revenue-want) > 1e-6 {
			t.Errorf("seed %d: revenue %v, brute force %v", seed, sol.Revenue, want)
		}
	}
}

func TestSolveOffsiteSolutionIsFeasible(t *testing.T) {
	inst := tinyInstance(t, 11, 6)
	sol, err := SolveOffsite(inst, mip.Config{})
	if err != nil {
		t.Fatalf("SolveOffsite: %v", err)
	}
	replayPlacements(t, inst, sol)
}

func TestLPBoundOffsiteDominatesILP(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		inst := tinyInstance(t, seed, 4)
		bound, err := LPBoundOffsite(inst)
		if err != nil {
			t.Fatalf("LPBoundOffsite: %v", err)
		}
		sol, err := SolveOffsite(inst, mip.Config{})
		if err != nil {
			t.Fatalf("SolveOffsite: %v", err)
		}
		if bound < sol.Revenue-1e-6 {
			t.Errorf("seed %d: LP bound %v below ILP optimum %v", seed, bound, sol.Revenue)
		}
	}
}

func TestSolveOffsiteBudget(t *testing.T) {
	inst := tinyInstance(t, 3, 6)
	sol, err := SolveOffsite(inst, mip.Config{MaxNodes: 2})
	if err != nil {
		t.Fatalf("SolveOffsite: %v", err)
	}
	if sol.Nodes > 2 {
		t.Errorf("Nodes = %d, want ≤ 2", sol.Nodes)
	}
	// Whatever the status, any reported incumbent must be feasible.
	if sol.Status == mip.BudgetExceeded || sol.Status == mip.Exact {
		replayPlacements(t, inst, sol)
	}
}
