package offline

import (
	"fmt"

	"revnf/internal/core"
	"revnf/internal/lp"
	"revnf/internal/mip"
	"revnf/internal/workload"
)

// offsiteModel maps the linearized off-site ILP's variables: X_i for each
// request followed by Y_ij for each (request, cloudlet) pair.
type offsiteModel struct {
	prob *lp.Problem
	n, m int
}

func (o *offsiteModel) xVar(i int) int    { return i }
func (o *offsiteModel) yVar(i, j int) int { return o.n + i*o.m + j }

// buildOffsite constructs the LP relaxation of the log-linearized off-site
// ILP (Eqs. 49–53). With w_ij = -ln(1 - r(f_i)·r(c_j)) > 0 and
// W_i = -ln(1 - R_i) > 0 the reliability constraints become
//
//	Σ_j w_ij·Y_ij ≥ W_i·X_i            (Eq. 50, sign-flipped)
//	Σ_j w_ij·Y_ij ≤ (Σ_j w_ij)·X_i     (Eq. 51 with the tight per-request L)
//
// so Y_ij is forced to zero whenever X_i = 0 and the weight target is met
// whenever X_i = 1.
//
// withBoxes adds the Y_ij ≤ 1 rows that branch and bound needs for valid
// 0/1 branching. The pure LP bound omits them: every ILP-feasible point
// stays feasible, so the (slightly weaker) objective is still a valid
// upper bound, and the dense tableau shrinks by n·m rows.
func buildOffsite(inst *workload.Instance, withBoxes bool) (*offsiteModel, error) {
	n, m := len(inst.Trace), len(inst.Network.Cloudlets)
	model := &offsiteModel{n: n, m: m}
	prob, err := lp.NewProblem(lp.Maximize, n+n*m)
	if err != nil {
		return nil, fmt.Errorf("offline: %w", err)
	}
	model.prob = prob
	for _, req := range inst.Trace {
		i := req.ID
		if err := prob.SetObjectiveCoeff(model.xVar(i), req.Payment); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		// X_i ≤ 1 and Y_ij ≤ 1 box constraints keep the relaxation
		// bounded and give branch and bound valid 0/1 ranges.
		if _, err := prob.AddConstraint(map[int]float64{model.xVar(i): 1}, lp.LE, 1); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		vnf := inst.Network.Catalog[req.VNF]
		lower := map[int]float64{model.xVar(i): -core.RequirementWeight(req.Reliability)}
		upper := map[int]float64{}
		totalWeight := 0.0
		for j, cl := range inst.Network.Cloudlets {
			w := core.OffsiteWeight(vnf.Reliability, cl.Reliability)
			lower[model.yVar(i, j)] = w
			upper[model.yVar(i, j)] = w
			totalWeight += w
			if withBoxes {
				if _, err := prob.AddConstraint(map[int]float64{model.yVar(i, j): 1}, lp.LE, 1); err != nil {
					return nil, fmt.Errorf("offline: %w", err)
				}
			}
		}
		upper[model.xVar(i)] = -totalWeight
		if _, err := prob.AddConstraint(lower, lp.GE, 0); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
		if _, err := prob.AddConstraint(upper, lp.LE, 0); err != nil {
			return nil, fmt.Errorf("offline: %w", err)
		}
	}
	// Capacity constraints (49) per (cloudlet, slot) with active load.
	capRows := make(map[[2]int]map[int]float64)
	for _, req := range inst.Trace {
		units := float64(inst.Network.Catalog[req.VNF].Demand)
		for j := 0; j < m; j++ {
			for t := req.Arrival; t <= req.End(); t++ {
				key := [2]int{j, t}
				row, ok := capRows[key]
				if !ok {
					row = map[int]float64{}
					capRows[key] = row
				}
				row[model.yVar(req.ID, j)] = units
			}
		}
	}
	for j := 0; j < m; j++ {
		for t := 1; t <= inst.Horizon; t++ {
			row, ok := capRows[[2]int{j, t}]
			if !ok {
				continue
			}
			if _, err := prob.AddConstraint(row, lp.LE, float64(inst.Network.Cloudlets[j].Capacity)); err != nil {
				return nil, fmt.Errorf("offline: %w", err)
			}
		}
	}
	return model, nil
}

// SolveOffsite computes the offline off-site schedule by branch and bound
// on the linearized ILP.
func SolveOffsite(inst *workload.Instance, cfg mip.Config) (*Solution, error) {
	if err := checkInstance(inst); err != nil {
		return nil, err
	}
	model, err := buildOffsite(inst, true)
	if err != nil {
		return nil, err
	}
	binaries := make([]int, model.n+model.n*model.m)
	for k := range binaries {
		binaries[k] = k
	}
	if cfg.WarmStart == nil {
		warm, err := offsiteWarmStart(inst, model)
		if err != nil {
			return nil, fmt.Errorf("offline: off-site warm start: %w", err)
		}
		cfg.WarmStart = warm
	}
	res, err := mip.Solve(model.prob, binaries, cfg)
	if err != nil {
		return nil, fmt.Errorf("offline: off-site solve: %w", err)
	}
	sol := &Solution{
		Status:     res.Status,
		UpperBound: res.Bound,
		Admitted:   make([]bool, len(inst.Trace)),
		Nodes:      res.Nodes,
	}
	if res.Status == mip.Infeasible || res.Status == mip.NoIncumbent {
		return sol, nil
	}
	sol.Revenue = res.Objective
	for _, req := range inst.Trace {
		i := req.ID
		if res.X[model.xVar(i)] <= 0.5 {
			continue
		}
		sol.Admitted[i] = true
		p := core.Placement{Request: i, Scheme: core.OffSite}
		for j := 0; j < model.m; j++ {
			if res.X[model.yVar(i, j)] > 0.5 {
				p.Assignments = append(p.Assignments, core.Assignment{Cloudlet: j, Instances: 1})
			}
		}
		sol.Placements = append(sol.Placements, p)
	}
	return sol, nil
}

// LPBoundOffsite returns the LP-relaxation upper bound on offline off-site
// revenue.
func LPBoundOffsite(inst *workload.Instance) (float64, error) {
	if err := checkInstance(inst); err != nil {
		return 0, err
	}
	model, err := buildOffsite(inst, false)
	if err != nil {
		return 0, err
	}
	sol, err := model.prob.Solve()
	if err != nil {
		return 0, fmt.Errorf("offline: %w", err)
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("%w: relaxation status %v", ErrBadInstance, sol.Status)
	}
	return sol.Objective, nil
}
