package trace

import "sync"

// Store is a bounded, race-safe decision-trace store: a ring buffer of
// the most recent traced decisions, keyed by request ID. It implements
// Recorder (Sample always true — put a Sampling wrapper in front to
// thin the stream) and merges multiple Record calls for one request into
// a single DecisionTrace: scheduler-layer Propose attempts append, and
// the engine-layer outcome record finalizes.
//
// Eviction is FIFO by first insertion: when a new request ID arrives at
// capacity, the oldest traced request is dropped. Re-recording an ID
// already in the store (a retry attempt, the outcome) does not refresh
// its eviction position — a decision's records arrive within one
// submission, so insertion order is decision order. The exception is the
// failure runtime's event-only annotations (failed/repaired/degraded),
// which arrive slots after the decision: they merge into resident traces
// but never create an entry, so a merge racing FIFO eviction cannot
// resurrect an already-evicted trace.
type Store struct {
	mu      sync.Mutex
	entries map[int]*DecisionTrace // guarded by mu
	// ring holds the resident request IDs in insertion order: the oldest
	// lives at index head, wrapping modulo the capacity. The slice header
	// is immutable after NewStore; mu guards the elements and cursor.
	ring  []int // guarded by mu
	head  int   // guarded by mu
	count int   // guarded by mu

	recorded uint64 // guarded by mu
	evicted  uint64 // guarded by mu
	dropped  uint64 // guarded by mu
}

// StoreStats is a consistent snapshot of the store's counters.
type StoreStats struct {
	// Recorded counts Record calls accepted since creation.
	Recorded uint64
	// Evicted counts traces dropped to make room.
	Evicted uint64
	// Dropped counts event-only records (runtime annotations with no
	// attempts and no request metadata) refused because their decision was
	// no longer resident — merging them would have resurrected an evicted
	// trace.
	Dropped uint64
	// Len and Capacity describe current occupancy.
	Len, Capacity int
}

// NewStore creates a store holding at most capacity traced decisions.
// Capacity must be at least 1.
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{
		entries: make(map[int]*DecisionTrace, capacity),
		ring:    make([]int, capacity),
	}
}

// Sample implements Recorder: the store itself traces everything.
func (s *Store) Sample(int) bool { return true }

// Record implements Recorder, merging by request ID: attempts append in
// arrival order (the store numbers them), outcome fields overwrite when
// set, and request metadata fills in whichever record carries it.
func (s *Store) Record(t *DecisionTrace) {
	if t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[t.Request]
	if !ok {
		if len(t.Attempts) == 0 && t.Duration == 0 {
			// Event-only record: no Propose attempts and no request
			// metadata, i.e. a runtime annotation (failed/repaired/
			// degraded) for a decision traced earlier. Such records may
			// arrive long after the decision — inserting one for an ID the
			// ring already evicted would resurrect the trace as an empty
			// shell and evict a live one, so they only merge into resident
			// entries and are dropped otherwise.
			s.dropped++
			return
		}
		if s.count == len(s.ring) {
			oldest := s.ring[s.head]
			delete(s.entries, oldest)
			s.evicted++
			s.count--
			s.head = (s.head + 1) % len(s.ring)
		}
		s.ring[(s.head+s.count)%len(s.ring)] = t.Request
		s.count++
		e = &DecisionTrace{Request: t.Request}
		s.entries[t.Request] = e
	}
	s.recorded++
	mergeInto(e, t)
}

// mergeInto folds one record into the resident trace.
func mergeInto(e, t *DecisionTrace) {
	if t.Scheduler != "" {
		e.Scheduler = t.Scheduler
	}
	if t.Scheme != "" {
		e.Scheme = t.Scheme
	}
	if t.VNF != 0 || t.Duration != 0 {
		e.VNF, e.Reliability, e.Arrival, e.Duration, e.Payment =
			t.VNF, t.Reliability, t.Arrival, t.Duration, t.Payment
	}
	if t.Slot != 0 {
		e.Slot = t.Slot
	}
	for _, a := range t.Attempts {
		a.Attempt = len(e.Attempts) + 1
		e.Attempts = append(e.Attempts, a)
	}
	if t.Outcome != "" {
		e.Outcome = t.Outcome
		e.Admitted = t.Admitted
		if len(t.Assignments) > 0 {
			e.Assignments = t.Assignments
		}
	} else if len(t.Attempts) > 0 && e.Outcome == "" {
		// Batch path: no engine finalization, the attempts speak.
		last := e.Attempts[len(e.Attempts)-1]
		e.Admitted = last.Admit
		if len(t.Assignments) > 0 {
			e.Assignments = t.Assignments
		}
	}
}

// Get returns a copy of the trace for a request ID. The copy's Attempts
// and Assignments slices are fresh, so callers may read them after
// concurrent Record calls; the Candidate slices inside attempts are
// shared but immutable once recorded.
func (s *Store) Get(id int) (DecisionTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return DecisionTrace{}, false
	}
	out := *e
	out.Attempts = append([]ProposeTrace(nil), e.Attempts...)
	out.Assignments = append(out.Assignments[:0:0], e.Assignments...)
	return out, true
}

// Len returns the number of resident traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Capacity returns the ring size.
//
//lint:allow guardedby // len of the ring header only: the slice is allocated once in NewStore and never reassigned, so the header is immutable and safe to read unlocked.
func (s *Store) Capacity() int { return len(s.ring) }

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Recorded: s.recorded, Evicted: s.evicted, Dropped: s.dropped, Len: s.count, Capacity: len(s.ring)}
}
