// Package trace makes the primal–dual admission decision inspectable. A
// scheduler's Propose is a black box from the outside — a rejected request
// yields only a boolean — while the paper's analysis (Algorithm 1/2, the
// competitive ratio of Theorem 1, the capacity-violation bound ξ of
// Lemma 8) is all about *why* a request was priced out: the per-cloudlet
// dual cost Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj} against the payment pay_i, the
// instance ladder N_ij, the off-site weight accumulation toward
// W = -ln(1-R).
//
// The package defines:
//
//   - DecisionTrace: the structured record of one request's decision — per
//     candidate cloudlet the instance count, dual cost, residual capacity
//     and skip reason; per Propose attempt the argmin cloudlet and the
//     payment test; and the final engine outcome;
//   - Recorder: the pluggable sink schedulers emit traces into. Recording
//     is observability, not scheduler-state mutation: the purepropose
//     invariant explicitly blesses Recorder calls from Propose;
//   - Nop, NewSampling, and the ring-buffer Store (ring.go): the no-op
//     default, a deterministic 1-in-N sampler, and a bounded race-safe
//     store the serve layer exposes over HTTP.
//
// Hot-path cost: schedulers call Recorder.Sample once per Propose and
// skip all trace assembly when it returns false, so a disabled recorder
// costs one interface call and one branch — no allocation.
//
// Reason codes: the Reason enum is the single vocabulary for "why was
// this request (not) admitted", shared by the scheduler layer (priced-out,
// no-feasible-cloudlet, insufficient-weight), the serve engine (stale,
// conflict, queue-full, ...), and the daemon's structured HTTP error
// envelope.
package trace

import "revnf/internal/core"

// Reason is one machine-readable decision or error code. The same
// vocabulary flows through DecisionTrace records, the serve engine's
// rejection counters, and the daemon's HTTP error envelope.
type Reason string

// Scheduler-level reasons, produced by Propose.
const (
	// ReasonAdmitted marks the successful outcome.
	ReasonAdmitted Reason = "admitted"
	// ReasonPricedOut marks requests whose payment did not cover the
	// cheapest dual cost (the primal-dual rejection of Algorithms 1–2) —
	// every candidate failed the payment test.
	ReasonPricedOut Reason = "priced-out"
	// ReasonNoFeasibleCloudlet marks requests no cloudlet can serve:
	// reliability-infeasible everywhere, or no residual capacity anywhere.
	ReasonNoFeasibleCloudlet Reason = "no-feasible-cloudlet"
	// ReasonInsufficientWeight marks off-site requests whose surviving
	// candidates could not accumulate the weight target W = -ln(1-R).
	ReasonInsufficientWeight Reason = "insufficient-weight"
)

// Candidate-level skip reasons, set on Candidate.Skip.
const (
	// SkipReliability: r(c_j) ≤ R_i, the cloudlet cannot serve the request
	// at any instance count (on-site), or contributes nothing (off-site).
	SkipReliability Reason = "reliability-infeasible"
	// SkipCapacity: the residual-capacity check over the request's window
	// failed for this cloudlet.
	SkipCapacity Reason = "capacity"
	// SkipPricedOut: the per-cloudlet payment filter of Algorithm 2 line 5
	// removed this candidate before the greedy accumulation.
	SkipPricedOut Reason = "priced-out"
)

// Engine-level reasons, produced by the serve layer around the scheduler.
// The serve package aliases these as its rejection-reason strings, so the
// /metrics label values, AdmissionResult.Reason, and the HTTP error
// envelope all speak the same enum.
const (
	// ReasonInvalid marks requests that fail model validation (also the
	// envelope code for malformed HTTP request bodies and path values).
	ReasonInvalid Reason = "invalid"
	// ReasonStale marks requests whose arrival slot has already passed.
	ReasonStale Reason = "stale"
	// ReasonHorizon marks windows extending beyond the served horizon.
	ReasonHorizon Reason = "horizon"
	// ReasonDeclined marks requests the scheduler rejected; the trace's
	// Propose attempts carry the finer-grained scheduler reason.
	ReasonDeclined Reason = "declined"
	// ReasonOverbooked marks scheduler placements the ledger refused in
	// serial mode (a scheduler violating its feasibility contract).
	ReasonOverbooked Reason = "overbooked"
	// ReasonConflict marks sharded-mode requests whose proposals lost the
	// capacity race to concurrent commits on every bounded retry.
	ReasonConflict Reason = "conflict"
	// ReasonQueueFull marks submissions dropped by backpressure.
	ReasonQueueFull Reason = "queue-full"
	// ReasonClosed marks submissions after shutdown began.
	ReasonClosed Reason = "closed"
	// ReasonCanceled marks submissions abandoned because the client's
	// context was canceled (disconnect or deadline) before a decision.
	ReasonCanceled Reason = "canceled"
	// ReasonSchemeUnavailable marks requests that pinned a redundancy
	// scheme the serving scheduler does not run (the optional "scheme"
	// field of the ingest payloads).
	ReasonSchemeUnavailable Reason = "scheme-unavailable"
	// ReasonNotFound is the envelope code for lookups of unknown IDs.
	ReasonNotFound Reason = "not-found"
	// ReasonInternal is the envelope code for server-side failures.
	ReasonInternal Reason = "internal"
)

// Runtime reasons, produced by the failure-aware runtime after admission.
// Unlike the reasons above they describe events in an admitted placement's
// life, so the records carrying them annotate an existing decision trace
// (Outcome overwrites, Admitted stays true) rather than finalizing a fresh
// one.
const (
	// ReasonFailed marks a placement whose surviving instances no longer
	// meet its reliability target after injected failures.
	ReasonFailed Reason = "failed"
	// ReasonRepaired marks a placement the repair controller re-placed
	// through the normal propose/reserve/commit pipeline.
	ReasonRepaired Reason = "repaired"
	// ReasonDegraded marks a placement explicitly downgraded: the repair
	// retry budget ran out, or the window ended with the observed
	// availability below the requirement.
	ReasonDegraded Reason = "degraded"
)

// Candidate records one cloudlet's evaluation inside a Propose attempt.
type Candidate struct {
	// Cloudlet is the cloudlet index j.
	Cloudlet int `json:"cloudlet"`
	// Instances is the instance count the cloudlet would host: the ladder
	// value N_ij under the on-site scheme, 1 under off-site. Zero when the
	// cloudlet is reliability-infeasible.
	Instances int `json:"instances,omitempty"`
	// Weight is the off-site log-domain weight w_j = -ln(1 - r(f)·r(c_j));
	// zero under the on-site scheme.
	Weight float64 `json:"weight,omitempty"`
	// DualCost is the cloudlet's dual price for this request:
	// Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj} under on-site, the normalized price
	// Σ_t λ_{tj}/w_j under off-site. Not filled for reliability-infeasible
	// candidates (there is no N_ij to price).
	DualCost float64 `json:"dual_cost"`
	// Residual is the minimum residual capacity over the request's window,
	// when the scheduler read it (capacity-enforcing variants).
	Residual int `json:"residual,omitempty"`
	// Skip is the reason the candidate was removed from consideration;
	// empty for candidates that survived to the argmin / accumulation.
	Skip Reason `json:"skip,omitempty"`
	// Chosen marks candidates in the returned placement.
	Chosen bool `json:"chosen,omitempty"`
}

// ProposeTrace records one Propose evaluation. Serial engines produce one
// per request; the sharded engine may retry after ledger conflicts, so a
// DecisionTrace can hold several attempts.
type ProposeTrace struct {
	// Attempt numbers the evaluation within its decision, from 1. The
	// Store assigns it on merge.
	Attempt int `json:"attempt"`
	// Scheduler and Scheme identify the algorithm that produced the
	// attempt.
	Scheduler string `json:"scheduler,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	// Candidates holds every cloudlet's evaluation, in cloudlet order.
	Candidates []Candidate `json:"candidates,omitempty"`
	// BestCloudlet is the argmin cloudlet of the admission test (-1 when
	// no candidate survived). Off-site: the first cloudlet of the greedy
	// accumulation.
	BestCloudlet int `json:"best_cloudlet"`
	// BestCost is the dual-price cost the admission test compared against
	// the payment: Σ_t V_i[t]·N_ij·c(f_i)·λ_{tj} of the argmin cloudlet
	// under on-site. Zero when BestCloudlet is -1 (+Inf is not
	// JSON-encodable; BestCloudlet disambiguates).
	BestCost float64 `json:"best_cost"`
	// NeedWeight and TotalWeight describe the off-site accumulation:
	// the target W = -ln(1-R) and the weight the chosen set reached.
	NeedWeight  float64 `json:"need_weight,omitempty"`
	TotalWeight float64 `json:"total_weight,omitempty"`
	// Payment is pay_i, the right-hand side of the admission test.
	Payment float64 `json:"payment"`
	// Admit is the attempt's verdict; Reason explains a false verdict.
	Admit  bool   `json:"admit"`
	Reason Reason `json:"reason,omitempty"`
}

// DecisionTrace is the complete record of one request's admission
// decision: request metadata, every Propose attempt, and the final
// outcome (filled by the serve engine; batch simulations leave it empty
// and FinalReason falls back to the last attempt).
type DecisionTrace struct {
	// Request is the request ID the trace belongs to.
	Request int `json:"request"`
	// Scheduler and Scheme identify the deciding algorithm.
	Scheduler string `json:"scheduler,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	// VNF, Reliability, Arrival, Duration, Payment mirror the request
	// ρ = (f, R, a, d, pay).
	VNF         int     `json:"vnf"`
	Reliability float64 `json:"reliability"`
	Arrival     int     `json:"arrival"`
	Duration    int     `json:"duration"`
	Payment     float64 `json:"payment"`
	// Slot is the engine slot at decision time (serve layer only).
	Slot int `json:"slot,omitempty"`
	// Attempts holds every Propose evaluation, in order.
	Attempts []ProposeTrace `json:"attempts,omitempty"`
	// Admitted and Outcome are the final verdict. Outcome is empty until
	// an engine finalizes the decision; use FinalReason for the effective
	// reason code.
	Admitted bool   `json:"admitted"`
	Outcome  Reason `json:"outcome,omitempty"`
	// Assignments is the admitted placement's footprint.
	Assignments []core.Assignment `json:"assignments,omitempty"`
}

// NewDecision starts a trace for one request under the given scheduler
// identity.
func NewDecision(req core.Request, scheduler, scheme string) *DecisionTrace {
	return &DecisionTrace{
		Request:     req.ID,
		Scheduler:   scheduler,
		Scheme:      scheme,
		VNF:         req.VNF,
		Reliability: req.Reliability,
		Arrival:     req.Arrival,
		Duration:    req.Duration,
		Payment:     req.Payment,
	}
}

// FinalReason returns the decision's effective reason code: the engine
// outcome when set, otherwise the last attempt's verdict (ReasonAdmitted
// for an admitting attempt). It is empty only for a trace with no
// attempts and no outcome.
func (t *DecisionTrace) FinalReason() Reason {
	if t.Outcome != "" {
		return t.Outcome
	}
	if n := len(t.Attempts); n > 0 {
		last := t.Attempts[n-1]
		if last.Admit {
			return ReasonAdmitted
		}
		return last.Reason
	}
	return ""
}

// Recorder is the pluggable sink decision traces flow into. Two calls
// make up the protocol:
//
//	if rec.Sample(req.ID) {          // once, at the top of Propose
//	    ... assemble the trace ...
//	    rec.Record(dt)               // once, before returning
//	}
//
// Sample gates all trace assembly: a disabled recorder returns false and
// the hot path pays one interface call. Implementations must be safe for
// concurrent use — the sharded serve engine runs any number of Propose
// calls (and hence Sample/Record pairs) concurrently.
//
// Recording is not scheduler-state mutation: the core.TwoPhaseScheduler
// contract and the purepropose analyzer both bless Recorder emission from
// Propose, because a trace never feeds back into any admission decision.
type Recorder interface {
	// Sample reports whether this request's decision should be traced.
	// It must be deterministic per request ID, so the scheduler layer and
	// the engine layer of one decision agree without coordination.
	Sample(requestID int) bool
	// Record ingests one trace. The recorder owns the pointed-to value
	// after the call; callers must not mutate it afterwards.
	Record(t *DecisionTrace)
}

// Nop is the default recorder: Sample is always false and Record drops.
var Nop Recorder = nopRecorder{}

type nopRecorder struct{}

func (nopRecorder) Sample(int) bool       { return false }
func (nopRecorder) Record(*DecisionTrace) {}

// Sampling records one in every N requests, deterministically by request
// ID (ID mod every == 0), and forwards the rest of the Recorder protocol
// to the inner recorder. Determinism matters twice over: the same request
// samples identically at the scheduler layer and the engine layer, and a
// seeded replay traces the same requests.
type Sampling struct {
	inner Recorder
	every int
}

// NewSampling wraps inner in a 1-in-every sampler. every ≤ 1 returns
// inner unchanged (sampling everything adds nothing).
func NewSampling(inner Recorder, every int) Recorder {
	if every <= 1 {
		return inner
	}
	return &Sampling{inner: inner, every: every}
}

// Sample implements Recorder.
func (s *Sampling) Sample(requestID int) bool {
	return requestID%s.every == 0 && s.inner.Sample(requestID)
}

// Record implements Recorder.
func (s *Sampling) Record(t *DecisionTrace) { s.inner.Record(t) }
