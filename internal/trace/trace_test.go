package trace

import (
	"sync"
	"testing"

	"revnf/internal/core"
)

func req(id int) core.Request {
	return core.Request{ID: id, VNF: 1, Reliability: 0.95, Arrival: 1, Duration: 2, Payment: 10}
}

func attemptRecord(id int, admit bool, reason Reason) *DecisionTrace {
	dt := NewDecision(req(id), "test-sched", "onsite")
	pt := ProposeTrace{Scheduler: "test-sched", Scheme: "onsite", Admit: admit}
	if !admit {
		pt.Reason = reason
	}
	dt.Attempts = []ProposeTrace{pt}
	return dt
}

func TestNopRecorder(t *testing.T) {
	if Nop.Sample(0) || Nop.Sample(7) {
		t.Fatal("Nop.Sample must always be false")
	}
	Nop.Record(nil) // must not panic
}

func TestSamplingDeterminism(t *testing.T) {
	s := NewSampling(NewStore(8), 10)
	for id := 0; id < 100; id++ {
		want := id%10 == 0
		if got := s.Sample(id); got != want {
			t.Fatalf("Sample(%d) = %v, want %v", id, got, want)
		}
		// Deterministic: same answer on every call.
		if got := s.Sample(id); got != (id%10 == 0) {
			t.Fatalf("Sample(%d) not deterministic", id)
		}
	}
}

func TestSamplingEveryOneReturnsInner(t *testing.T) {
	st := NewStore(4)
	if got := NewSampling(st, 1); got != Recorder(st) {
		t.Fatalf("NewSampling(st, 1) = %v, want the inner store", got)
	}
	if got := NewSampling(st, 0); got != Recorder(st) {
		t.Fatalf("NewSampling(st, 0) = %v, want the inner store", got)
	}
}

func TestStoreEvictionFIFO(t *testing.T) {
	s := NewStore(3)
	for id := 1; id <= 5; id++ {
		s.Record(attemptRecord(id, false, ReasonPricedOut))
	}
	// Capacity 3, five inserts: 1 and 2 evicted, 3..5 resident.
	for _, id := range []int{1, 2} {
		if _, ok := s.Get(id); ok {
			t.Fatalf("request %d should have been evicted", id)
		}
	}
	for _, id := range []int{3, 4, 5} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("request %d should be resident", id)
		}
	}
	st := s.Stats()
	if st.Evicted != 2 || st.Len != 3 || st.Recorded != 5 || st.Capacity != 3 {
		t.Fatalf("stats = %+v, want Evicted 2, Len 3, Recorded 5, Capacity 3", st)
	}
}

func TestStoreReRecordDoesNotRefreshEvictionOrder(t *testing.T) {
	s := NewStore(2)
	s.Record(attemptRecord(1, false, ReasonPricedOut))
	s.Record(attemptRecord(2, false, ReasonPricedOut))
	// Re-record 1 (a retry attempt): must not move it to the back.
	s.Record(attemptRecord(1, false, ReasonPricedOut))
	s.Record(attemptRecord(3, false, ReasonPricedOut))
	if _, ok := s.Get(1); ok {
		t.Fatal("request 1 should have been evicted as the oldest insertion")
	}
	if _, ok := s.Get(2); !ok {
		t.Fatal("request 2 should still be resident")
	}
	dt, _ := s.Get(3)
	if dt.Request != 3 {
		t.Fatalf("Get(3).Request = %d", dt.Request)
	}
}

// eventRecord is a runtime annotation: outcome only, no attempts, no
// request metadata — the shape the serve engine emits for failure/repair
// events slots after the decision.
func eventRecord(id int, outcome Reason) *DecisionTrace {
	return &DecisionTrace{Request: id, Outcome: outcome, Admitted: true}
}

func TestStoreEventMergeDoesNotResurrectEvicted(t *testing.T) {
	s := NewStore(2)
	s.Record(attemptRecord(1, true, ""))
	s.Record(attemptRecord(2, true, ""))
	s.Record(attemptRecord(3, true, "")) // evicts 1
	if _, ok := s.Get(1); ok {
		t.Fatal("request 1 should have been evicted")
	}
	// A late runtime annotation for the evicted decision must be dropped,
	// not inserted as a fresh (empty-shell) trace.
	s.Record(eventRecord(1, ReasonRepaired))
	if _, ok := s.Get(1); ok {
		t.Fatal("event-only record resurrected an evicted trace")
	}
	// ...and must not have evicted a live trace to make room.
	for _, id := range []int{2, 3} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("request %d evicted by a dropped event record", id)
		}
	}
	st := s.Stats()
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", st.Dropped)
	}
	if st.Recorded != 3 {
		t.Fatalf("Recorded = %d, want 3 (dropped events are not recorded)", st.Recorded)
	}
	// The same annotation for a resident decision merges normally.
	s.Record(eventRecord(3, ReasonDegraded))
	dt, ok := s.Get(3)
	if !ok || dt.Outcome != ReasonDegraded || !dt.Admitted {
		t.Fatalf("resident event merge: %+v, %v", dt, ok)
	}
}

// TestStoreEventMergeRacesEviction drives concurrent decision inserts
// (which evict FIFO) against event annotations for old IDs; under -race
// this is the data-race check for the drop path, and the final state must
// hold no empty-shell entries (every resident trace has attempts).
func TestStoreEventMergeRacesEviction(t *testing.T) {
	s := NewStore(16)
	const writers = 4
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				s.Record(attemptRecord(id, true, ""))
				if old := id - 64; old >= 0 {
					// Annotate a decision likely evicted by now.
					s.Record(eventRecord(old, ReasonFailed))
				}
			}
		}(w)
	}
	wg.Wait()
	for id := 0; id < writers*perWriter; id++ {
		dt, ok := s.Get(id)
		if !ok {
			continue
		}
		if len(dt.Attempts) == 0 {
			t.Fatalf("request %d resident as an empty shell: %+v", id, dt)
		}
	}
	if st := s.Stats(); st.Len != 16 {
		t.Fatalf("Len = %d, want full ring 16", st.Len)
	}
}

func TestStoreMergeAttemptsAndOutcome(t *testing.T) {
	s := NewStore(4)
	// Two scheduler attempts (a sharded retry), then the engine outcome.
	s.Record(attemptRecord(7, false, ReasonPricedOut))
	s.Record(attemptRecord(7, true, ""))
	fin := NewDecision(req(7), "test-sched", "onsite")
	fin.Slot = 3
	fin.Outcome = ReasonAdmitted
	fin.Admitted = true
	fin.Assignments = []core.Assignment{{Cloudlet: 2, Instances: 1}}
	s.Record(fin)

	dt, ok := s.Get(7)
	if !ok {
		t.Fatal("trace 7 missing")
	}
	if len(dt.Attempts) != 2 {
		t.Fatalf("attempts = %d, want 2", len(dt.Attempts))
	}
	if dt.Attempts[0].Attempt != 1 || dt.Attempts[1].Attempt != 2 {
		t.Fatalf("attempt numbering = %d,%d, want 1,2", dt.Attempts[0].Attempt, dt.Attempts[1].Attempt)
	}
	if !dt.Admitted || dt.Outcome != ReasonAdmitted || dt.Slot != 3 {
		t.Fatalf("outcome not finalized: %+v", dt)
	}
	if len(dt.Assignments) != 1 || dt.Assignments[0].Cloudlet != 2 {
		t.Fatalf("assignments = %+v", dt.Assignments)
	}
	if dt.FinalReason() != ReasonAdmitted {
		t.Fatalf("FinalReason = %q", dt.FinalReason())
	}
}

func TestStoreBatchPathAdmitFromLastAttempt(t *testing.T) {
	s := NewStore(4)
	s.Record(attemptRecord(9, true, ""))
	dt, _ := s.Get(9)
	if !dt.Admitted {
		t.Fatal("batch path should set Admitted from the attempt verdict")
	}
	if dt.Outcome != "" {
		t.Fatalf("batch path must leave Outcome empty, got %q", dt.Outcome)
	}
	if dt.FinalReason() != ReasonAdmitted {
		t.Fatalf("FinalReason = %q, want admitted", dt.FinalReason())
	}
}

func TestFinalReason(t *testing.T) {
	empty := &DecisionTrace{}
	if empty.FinalReason() != "" {
		t.Fatalf("empty trace FinalReason = %q", empty.FinalReason())
	}
	rejected := attemptRecord(1, false, ReasonInsufficientWeight)
	if rejected.FinalReason() != ReasonInsufficientWeight {
		t.Fatalf("FinalReason = %q, want insufficient-weight", rejected.FinalReason())
	}
	rejected.Outcome = ReasonDeclined
	if rejected.FinalReason() != ReasonDeclined {
		t.Fatalf("engine outcome must win: %q", rejected.FinalReason())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore(2)
	fin := NewDecision(req(4), "test-sched", "onsite")
	fin.Outcome = ReasonAdmitted
	fin.Admitted = true
	fin.Assignments = []core.Assignment{{Cloudlet: 1, Instances: 2}}
	s.Record(fin)
	a, _ := s.Get(4)
	a.Assignments[0].Cloudlet = 99
	b, _ := s.Get(4)
	if b.Assignments[0].Cloudlet != 1 {
		t.Fatal("Get must return an isolated copy of Assignments")
	}
}

// TestStoreConcurrentWriters hammers the store from many goroutines; run
// under -race this is the data-race check for the ring and the merge path.
func TestStoreConcurrentWriters(t *testing.T) {
	s := NewStore(64)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				s.Record(attemptRecord(id, i%2 == 0, ReasonPricedOut))
				if i%3 == 0 {
					_, _ = s.Get(id)
				}
				if i%17 == 0 {
					_ = s.Stats()
					_ = s.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Recorded != writers*perWriter {
		t.Fatalf("recorded = %d, want %d", st.Recorded, writers*perWriter)
	}
	if st.Len != 64 {
		t.Fatalf("len = %d, want full ring 64", st.Len)
	}
	if st.Evicted != writers*perWriter-64 {
		t.Fatalf("evicted = %d, want %d", st.Evicted, writers*perWriter-64)
	}
}
