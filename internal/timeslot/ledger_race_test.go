package timeslot

import (
	"math/rand"
	"sync"
	"testing"
)

// TestLedgerConcurrentReserveWindowNeverOversubscribes hammers one ledger
// with parallel ReserveWindow/Release cycles on overlapping windows and
// verifies that no (cloudlet, slot) cell ever exceeds cap_j. Run under
// -race this also proves the locking discipline.
func TestLedgerConcurrentReserveWindowNeverOversubscribes(t *testing.T) {
	const (
		cloudlets = 4
		capacity  = 20
		horizon   = 16
		workers   = 8
		rounds    = 400
	)
	caps := make([]int, cloudlets)
	for j := range caps {
		caps[j] = capacity
	}
	l, err := New(caps, horizon)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			type held struct{ cloudlet, start, duration, units int }
			var mine []held
			for i := 0; i < rounds; i++ {
				j := rng.Intn(cloudlets)
				start := 1 + rng.Intn(horizon)
				duration := 1 + rng.Intn(horizon-start+1)
				units := 1 + rng.Intn(5)
				ok, err := l.ReserveWindow(j, start, duration, units)
				if err != nil {
					t.Errorf("ReserveWindow: %v", err)
					return
				}
				if ok {
					mine = append(mine, held{j, start, duration, units})
				}
				// Release roughly half of what we hold as we go, so the
				// ledger keeps churning near capacity.
				if len(mine) > 0 && rng.Intn(2) == 0 {
					k := rng.Intn(len(mine))
					h := mine[k]
					if err := l.Release(h.cloudlet, h.start, h.duration, h.units); err != nil {
						t.Errorf("Release: %v", err)
						return
					}
					mine[k] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
				// Interleave reads to exercise the RLock paths.
				_ = l.ResidualWindow(j, start, duration)
				_ = l.Used(j, start)
			}
		}(int64(w + 1))
	}
	wg.Wait()
	for _, v := range l.Violations() {
		t.Errorf("oversubscribed cell: cloudlet %d slot %d used %d cap %d",
			v.Cloudlet, v.Slot, v.Used, v.Capacity)
	}
	if r := l.MaxViolationRatio(); r > 1 {
		t.Errorf("max violation ratio %v > 1 after concurrent reservations", r)
	}
}

// TestLedgerOutOfRangeSentinels pins the documented fail-safe sentinel
// behavior of the read accessors: out-of-range residual reads as "full"
// (0 free), out-of-range usage reads as "empty" (0 used), and the InRange
// helpers are the explicit way to tell the cases apart.
func TestLedgerOutOfRangeSentinels(t *testing.T) {
	l, err := New([]int{5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(0, 1, 4, 2); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ cloudlet, slot int }{
		{-1, 1}, {1, 1}, {0, 0}, {0, 5},
	}
	for _, c := range cases {
		if got := l.Residual(c.cloudlet, c.slot); got != 0 {
			t.Errorf("Residual(%d,%d) = %d, want sentinel 0", c.cloudlet, c.slot, got)
		}
		if got := l.Used(c.cloudlet, c.slot); got != 0 {
			t.Errorf("Used(%d,%d) = %d, want sentinel 0", c.cloudlet, c.slot, got)
		}
		if l.InRange(c.cloudlet, c.slot) {
			t.Errorf("InRange(%d,%d) = true, want false", c.cloudlet, c.slot)
		}
	}
	// Windows leaving the horizon read as full, so schedulers reject them.
	if got := l.ResidualWindow(0, 3, 3); got != 0 {
		t.Errorf("ResidualWindow beyond horizon = %d, want sentinel 0", got)
	}
	if l.WindowInRange(0, 3, 3) {
		t.Error("WindowInRange(0,3,3) = true, want false")
	}
	if !l.WindowInRange(0, 2, 3) {
		t.Error("WindowInRange(0,2,3) = false, want true")
	}
	// In-range reads are unaffected by the sentinel rules.
	if got := l.Residual(0, 2); got != 3 {
		t.Errorf("Residual(0,2) = %d, want 3", got)
	}
	if !l.InRange(0, 2) {
		t.Error("InRange(0,2) = false, want true")
	}
	// ReserveWindow reports refusal and argument errors distinctly.
	if ok, err := l.ReserveWindow(0, 1, 4, 4); err != nil || ok {
		t.Errorf("ReserveWindow over capacity = (%v, %v), want (false, nil)", ok, err)
	}
	if ok, err := l.ReserveWindow(0, 3, 3, 1); err == nil || ok {
		t.Errorf("ReserveWindow out of horizon = (%v, %v), want (false, ErrBadSlot)", ok, err)
	}
}
