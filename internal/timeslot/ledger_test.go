package timeslot

import (
	"errors"
	"math/rand"
	"testing"

	"revnf/internal/core"
)

func newTestLedger(t *testing.T) *Ledger {
	t.Helper()
	l, err := New([]int{10, 5}, 8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, 5); !errors.Is(err, ErrBadCloudlet) {
		t.Errorf("New(nil) err = %v, want ErrBadCloudlet", err)
	}
	if _, err := New([]int{5}, 0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("New(horizon 0) err = %v, want ErrBadSlot", err)
	}
	if _, err := New([]int{5, 0}, 3); !errors.Is(err, ErrBadUnits) {
		t.Errorf("New(zero capacity) err = %v, want ErrBadUnits", err)
	}
}

func TestAccessors(t *testing.T) {
	l := newTestLedger(t)
	if l.Horizon() != 8 || l.Cloudlets() != 2 {
		t.Fatalf("Horizon/Cloudlets = %d/%d, want 8/2", l.Horizon(), l.Cloudlets())
	}
	if l.Capacity(0) != 10 || l.Capacity(1) != 5 || l.Capacity(2) != 0 || l.Capacity(-1) != 0 {
		t.Error("Capacity accessor wrong")
	}
	if l.Used(0, 1) != 0 || l.Used(0, 0) != 0 || l.Used(0, 9) != 0 || l.Used(5, 1) != 0 {
		t.Error("Used accessor wrong on empty/out-of-range")
	}
	if l.Residual(0, 1) != 10 || l.Residual(9, 1) != 0 || l.Residual(0, 99) != 0 {
		t.Error("Residual accessor wrong")
	}
}

func TestReserveAndRelease(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Reserve(0, 2, 3, 4); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	for tt := 1; tt <= 8; tt++ {
		want := 0
		if tt >= 2 && tt <= 4 {
			want = 4
		}
		if got := l.Used(0, tt); got != want {
			t.Errorf("Used(0,%d) = %d, want %d", tt, got, want)
		}
	}
	if got := l.ResidualWindow(0, 1, 8); got != 6 {
		t.Errorf("ResidualWindow = %d, want 6", got)
	}
	if err := l.Release(0, 2, 3, 4); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := l.ResidualWindow(0, 1, 8); got != 10 {
		t.Errorf("after release ResidualWindow = %d, want 10", got)
	}
}

func TestReserveOverCapacity(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Reserve(1, 1, 4, 4); err != nil {
		t.Fatalf("first Reserve: %v", err)
	}
	err := l.Reserve(1, 3, 2, 2) // slot 3-4 already at 4/5, adding 2 exceeds
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("Reserve over capacity err = %v, want ErrOverCapacity", err)
	}
	// Failed reserve must not mutate state.
	if got := l.Used(1, 3); got != 4 {
		t.Errorf("Used(1,3) after failed reserve = %d, want 4", got)
	}
}

func TestCanReserve(t *testing.T) {
	l := newTestLedger(t)
	if !l.CanReserve(1, 1, 8, 5) {
		t.Error("CanReserve full capacity window = false, want true")
	}
	if l.CanReserve(1, 1, 8, 6) {
		t.Error("CanReserve over capacity = true, want false")
	}
	if l.CanReserve(1, 1, 8, 0) {
		t.Error("CanReserve zero units = true, want false")
	}
	if l.CanReserve(1, 6, 4, 1) {
		t.Error("CanReserve window past horizon = true, want false")
	}
}

func TestForceReserveAndViolations(t *testing.T) {
	l := newTestLedger(t)
	if err := l.ForceReserve(1, 2, 2, 8); err != nil {
		t.Fatalf("ForceReserve: %v", err)
	}
	vs := l.Violations()
	if len(vs) != 2 {
		t.Fatalf("Violations() = %v, want 2 cells", vs)
	}
	v := vs[0]
	if v.Cloudlet != 1 || v.Slot != 2 || v.Used != 8 || v.Capacity != 5 {
		t.Errorf("violation = %+v", v)
	}
	if v.Excess() != 3 {
		t.Errorf("Excess() = %d, want 3", v.Excess())
	}
	if !core.FloatEqTol(v.Ratio(), 1.6, 1e-12) {
		t.Errorf("Ratio() = %v, want 1.6", v.Ratio())
	}
	if got := l.MaxViolationRatio(); !core.FloatEqTol(got, 1.6, 1e-12) {
		t.Errorf("MaxViolationRatio() = %v, want 1.6", got)
	}
}

func TestReleaseUnderflow(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Reserve(0, 1, 2, 3); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Release(0, 1, 3, 3); !errors.Is(err, ErrUnderflow) {
		t.Fatalf("Release past reservation err = %v, want ErrUnderflow", err)
	}
	// Failed release must not mutate state.
	if got := l.Used(0, 1); got != 3 {
		t.Errorf("Used(0,1) after failed release = %d, want 3", got)
	}
}

func TestArgumentChecks(t *testing.T) {
	l := newTestLedger(t)
	tests := []struct {
		name                             string
		cloudlet, start, duration, units int
		wantErr                          error
	}{
		{"bad cloudlet", 7, 1, 1, 1, ErrBadCloudlet},
		{"negative cloudlet", -1, 1, 1, 1, ErrBadCloudlet},
		{"start zero", 0, 0, 1, 1, ErrBadSlot},
		{"duration zero", 0, 1, 0, 1, ErrBadSlot},
		{"past horizon", 0, 8, 2, 1, ErrBadSlot},
		{"zero units", 0, 1, 1, 0, ErrBadUnits},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := l.Reserve(tt.cloudlet, tt.start, tt.duration, tt.units); !errors.Is(err, tt.wantErr) {
				t.Errorf("Reserve err = %v, want %v", err, tt.wantErr)
			}
			if err := l.ForceReserve(tt.cloudlet, tt.start, tt.duration, tt.units); !errors.Is(err, tt.wantErr) {
				t.Errorf("ForceReserve err = %v, want %v", err, tt.wantErr)
			}
			if err := l.Release(tt.cloudlet, tt.start, tt.duration, tt.units); !errors.Is(err, tt.wantErr) {
				t.Errorf("Release err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestUtilizationAndPeak(t *testing.T) {
	l := newTestLedger(t)
	if got := l.Utilization(); got != 0 {
		t.Fatalf("empty Utilization = %v, want 0", got)
	}
	// Fill cloudlet 0 (cap 10) with 5 units for all 8 slots: ratio 0.5 on
	// half the cells → overall utilization 0.25.
	if err := l.Reserve(0, 1, 8, 5); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if got := l.Utilization(); !core.FloatEqTol(got, 0.25, 1e-12) {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	if got := l.PeakUsage(0); got != 5 {
		t.Errorf("PeakUsage(0) = %d, want 5", got)
	}
	if got := l.PeakUsage(1); got != 0 {
		t.Errorf("PeakUsage(1) = %d, want 0", got)
	}
	if got := l.PeakUsage(9); got != 0 {
		t.Errorf("PeakUsage(9) = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Reserve(0, 1, 2, 3); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	c := l.Clone()
	if err := c.Reserve(0, 1, 2, 3); err != nil {
		t.Fatalf("clone Reserve: %v", err)
	}
	if l.Used(0, 1) != 3 || c.Used(0, 1) != 6 {
		t.Errorf("clone not independent: orig %d clone %d", l.Used(0, 1), c.Used(0, 1))
	}
}

// Property: a random sequence of successful reserves and matching releases
// returns the ledger to empty, and usage never exceeds capacity when only
// Reserve (not ForceReserve) is used.
func TestLedgerInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		caps := []int{1 + rng.Intn(20), 1 + rng.Intn(20), 1 + rng.Intn(20)}
		horizon := 1 + rng.Intn(30)
		l, err := New(caps, horizon)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		type res struct{ c, s, d, u int }
		var held []res
		for op := 0; op < 100; op++ {
			c := rng.Intn(3)
			s := 1 + rng.Intn(horizon)
			d := 1 + rng.Intn(horizon-s+1)
			u := 1 + rng.Intn(caps[c])
			if l.CanReserve(c, s, d, u) {
				if err := l.Reserve(c, s, d, u); err != nil {
					t.Fatalf("Reserve after CanReserve: %v", err)
				}
				held = append(held, res{c, s, d, u})
			}
			// Invariant: no violations without ForceReserve.
			if len(l.Violations()) != 0 {
				t.Fatalf("violations without ForceReserve: %v", l.Violations())
			}
		}
		for _, r := range held {
			if err := l.Release(r.c, r.s, r.d, r.u); err != nil {
				t.Fatalf("Release: %v", err)
			}
		}
		for c := 0; c < 3; c++ {
			for s := 1; s <= horizon; s++ {
				if l.Used(c, s) != 0 {
					t.Fatalf("ledger not empty after releases: cloudlet %d slot %d used %d", c, s, l.Used(c, s))
				}
			}
		}
	}
}
