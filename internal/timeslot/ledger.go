// Package timeslot tracks per-cloudlet, per-slot computing resource usage
// over a finite horizon of discrete time slots. The Ledger is the
// authoritative record used by the simulation engine: feasible schedulers
// reserve through it and are refused when capacity would be exceeded, while
// the raw primal-dual algorithm (whose analysis permits bounded violations)
// force-reserves and has its overcommitment measured.
package timeslot

import (
	"errors"
	"fmt"
)

// Errors returned by the ledger.
var (
	ErrBadSlot      = errors.New("timeslot: slot out of horizon")
	ErrBadCloudlet  = errors.New("timeslot: unknown cloudlet")
	ErrBadUnits     = errors.New("timeslot: non-positive units")
	ErrOverCapacity = errors.New("timeslot: reservation exceeds capacity")
	ErrUnderflow    = errors.New("timeslot: release exceeds recorded usage")
)

// Ledger records the computing units in use in each cloudlet at each slot.
// Slots are 1-based, matching the paper's T = {1..T}. The zero value is not
// usable; construct with New.
type Ledger struct {
	horizon int
	caps    []int
	used    [][]int // used[cloudlet][slot-1]
}

// New creates a ledger for the given per-cloudlet capacities and horizon.
func New(capacities []int, horizon int) (*Ledger, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadSlot, horizon)
	}
	if len(capacities) == 0 {
		return nil, fmt.Errorf("%w: no capacities", ErrBadCloudlet)
	}
	caps := make([]int, len(capacities))
	used := make([][]int, len(capacities))
	for j, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("%w: cloudlet %d capacity %d", ErrBadUnits, j, c)
		}
		caps[j] = c
		used[j] = make([]int, horizon)
	}
	return &Ledger{horizon: horizon, caps: caps, used: used}, nil
}

// Horizon returns the number of slots T.
func (l *Ledger) Horizon() int { return l.horizon }

// Cloudlets returns the number of cloudlets tracked.
func (l *Ledger) Cloudlets() int { return len(l.caps) }

// Capacity returns cap_j for cloudlet j, or 0 for an unknown cloudlet.
func (l *Ledger) Capacity(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	return l.caps[cloudlet]
}

// Used returns the units in use in cloudlet j at slot t, or 0 when out of
// range.
func (l *Ledger) Used(cloudlet, slot int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) || slot < 1 || slot > l.horizon {
		return 0
	}
	return l.used[cloudlet][slot-1]
}

// Residual returns the free units of cloudlet j at slot t. It can be
// negative after forced reservations.
func (l *Ledger) Residual(cloudlet, slot int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) || slot < 1 || slot > l.horizon {
		return 0
	}
	return l.caps[cloudlet] - l.used[cloudlet][slot-1]
}

// ResidualWindow returns the minimum residual capacity of cloudlet j over
// slots [start, start+duration-1]. It returns 0 for invalid arguments.
func (l *Ledger) ResidualWindow(cloudlet, start, duration int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) || start < 1 || duration < 1 || start+duration-1 > l.horizon {
		return 0
	}
	minFree := l.caps[cloudlet] - l.used[cloudlet][start-1]
	for t := start + 1; t <= start+duration-1; t++ {
		if free := l.caps[cloudlet] - l.used[cloudlet][t-1]; free < minFree {
			minFree = free
		}
	}
	return minFree
}

// CanReserve reports whether units fit in cloudlet j over the window
// without exceeding capacity.
func (l *Ledger) CanReserve(cloudlet, start, duration, units int) bool {
	if units <= 0 {
		return false
	}
	return l.ResidualWindow(cloudlet, start, duration) >= units
}

// Reserve books units in cloudlet j over slots [start, start+duration-1].
// It fails with ErrOverCapacity (leaving the ledger unchanged) when any slot
// would exceed capacity.
func (l *Ledger) Reserve(cloudlet, start, duration, units int) error {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return err
	}
	if l.ResidualWindow(cloudlet, start, duration) < units {
		return fmt.Errorf("%w: cloudlet %d window [%d,%d] units %d free %d",
			ErrOverCapacity, cloudlet, start, start+duration-1, units,
			l.ResidualWindow(cloudlet, start, duration))
	}
	l.add(cloudlet, start, duration, units)
	return nil
}

// ForceReserve books units regardless of capacity. It is used for the raw
// primal-dual algorithm whose bounded capacity violations are part of the
// paper's analysis; the resulting overcommitment shows up in Violations.
func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return err
	}
	l.add(cloudlet, start, duration, units)
	return nil
}

// Release returns previously reserved units. It fails with ErrUnderflow
// (leaving the ledger unchanged) when more units would be released than are
// in use at any covered slot.
func (l *Ledger) Release(cloudlet, start, duration, units int) error {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return err
	}
	for t := start; t <= start+duration-1; t++ {
		if l.used[cloudlet][t-1] < units {
			return fmt.Errorf("%w: cloudlet %d slot %d used %d release %d",
				ErrUnderflow, cloudlet, t, l.used[cloudlet][t-1], units)
		}
	}
	l.add(cloudlet, start, duration, -units)
	return nil
}

func (l *Ledger) checkArgs(cloudlet, start, duration, units int) error {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return fmt.Errorf("%w: %d", ErrBadCloudlet, cloudlet)
	}
	if start < 1 || duration < 1 || start+duration-1 > l.horizon {
		return fmt.Errorf("%w: window [%d,%d] horizon %d", ErrBadSlot, start, start+duration-1, l.horizon)
	}
	if units <= 0 {
		return fmt.Errorf("%w: %d", ErrBadUnits, units)
	}
	return nil
}

func (l *Ledger) add(cloudlet, start, duration, units int) {
	for t := start; t <= start+duration-1; t++ {
		l.used[cloudlet][t-1] += units
	}
}

// Violation describes one overcommitted (cloudlet, slot) cell.
type Violation struct {
	// Cloudlet and Slot locate the overcommitted cell.
	Cloudlet, Slot int
	// Used and Capacity give the recorded usage and the limit.
	Used, Capacity int
}

// Excess returns Used - Capacity.
func (v Violation) Excess() int { return v.Used - v.Capacity }

// Ratio returns Used / Capacity, the multiplicative overcommitment.
func (v Violation) Ratio() float64 { return float64(v.Used) / float64(v.Capacity) }

// Violations returns every overcommitted cell in cloudlet-then-slot order.
func (l *Ledger) Violations() []Violation {
	var out []Violation
	for j := range l.caps {
		for t := 1; t <= l.horizon; t++ {
			if u := l.used[j][t-1]; u > l.caps[j] {
				out = append(out, Violation{Cloudlet: j, Slot: t, Used: u, Capacity: l.caps[j]})
			}
		}
	}
	return out
}

// MaxViolationRatio returns the largest Used/Capacity across all cells
// (1.0 or less means no violation; exactly 1.0 is returned for a full but
// unviolated ledger as well as for an empty one with ratio below 1).
func (l *Ledger) MaxViolationRatio() float64 {
	maxRatio := 0.0
	for j := range l.caps {
		for t := 0; t < l.horizon; t++ {
			if r := float64(l.used[j][t]) / float64(l.caps[j]); r > maxRatio {
				maxRatio = r
			}
		}
	}
	return maxRatio
}

// Utilization returns the mean of Used/Capacity over every (cloudlet, slot)
// cell. Overcommitted cells contribute ratios above 1.
func (l *Ledger) Utilization() float64 {
	if len(l.caps) == 0 || l.horizon == 0 {
		return 0
	}
	total := 0.0
	for j := range l.caps {
		for t := 0; t < l.horizon; t++ {
			total += float64(l.used[j][t]) / float64(l.caps[j])
		}
	}
	return total / float64(len(l.caps)*l.horizon)
}

// PeakUsage returns the maximum units in use in cloudlet j across all
// slots.
func (l *Ledger) PeakUsage(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	peak := 0
	for _, u := range l.used[cloudlet] {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// Clone returns an independent deep copy of the ledger, used by solvers
// that explore hypothetical schedules.
func (l *Ledger) Clone() *Ledger {
	caps := make([]int, len(l.caps))
	copy(caps, l.caps)
	used := make([][]int, len(l.used))
	for j := range l.used {
		used[j] = make([]int, len(l.used[j]))
		copy(used[j], l.used[j])
	}
	return &Ledger{horizon: l.horizon, caps: caps, used: used}
}
