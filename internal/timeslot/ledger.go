// Package timeslot tracks per-cloudlet, per-slot computing resource usage
// over a window of discrete time slots. The Ledger is the authoritative
// record used by the simulation engine and the admission daemon: feasible
// schedulers reserve through it and are refused when capacity would be
// exceeded, while the raw primal-dual algorithm (whose analysis permits
// bounded violations) force-reserves and has its overcommitment measured.
//
// # Horizon modes
//
// A ledger runs in one of two modes, chosen at construction:
//
//   - Fixed (New): the paper's finite horizon T = {1..T}. The live window
//     is [1, T] forever; Advance is refused. This is the mode every batch
//     simulator and offline solver uses, and its behavior is pinned
//     bit-for-bit by the golden tests.
//   - Rolling (NewRolling): a circular window of W slots anchored at a
//     monotonically advancing base. The live window is [base, base+W-1];
//     Advance(base') retires the slots in [base, base'-1], asserting each
//     retired row drained back to zero usage, and recycles their storage
//     for the slots entering the far edge of the window. This is the mode
//     a continuously operating daemon runs: the clock never falls off the
//     end of the horizon.
//
// All addressing is in absolute slot numbers in both modes; the ring
// arithmetic is internal. A fixed ledger is exactly a rolling ledger whose
// base never moves, so every method behaves identically across modes for
// in-window arguments.
//
// # Concurrency
//
// The Ledger is safe for concurrent use. Each cloudlet's usage row is
// guarded by its own reader/writer lock, so reads and reservations against
// different cloudlets never contend, and a reservation over a window
// [a, a+d-1] is checked and committed in one critical section: two
// concurrent ReserveWindow calls can never jointly oversubscribe cap_j.
// The window geometry (base and ring origin) is one packed atomic word.
// Row operations read it after taking their row lock; Advance — the only
// geometry writer — holds every row lock while it checks the retiring rows
// and publishes the new geometry. A held row lock therefore pins the
// geometry for the whole critical section (Advance cannot run while any
// row is held), so a reservation can never land on a row that is being
// recycled under it, and the hot path pays one uncontended atomic load
// instead of a read-modify-write on a process-global lock — operations
// against different cloudlets share no mutable cache line in either mode.
// Whole-ledger aggregates (Violations, Utilization, Clone, ...) lock one
// cloudlet at a time; each row is internally consistent but the aggregate
// is not a single point-in-time snapshot while writers are active — call
// them after reservations quiesce (as the batch engine does) when an exact
// global snapshot matters.
//
// # Out-of-range reads
//
// The read accessors (Used, Residual, ResidualWindow, Capacity, PeakUsage)
// return 0 for an unknown cloudlet, a slot outside the live window, or a
// window leaving it, rather than panicking or returning an error. The
// sentinel is deliberately fail-safe in both directions:
//
//   - Residual/ResidualWindow = 0 reads as "no free capacity", so every
//     capacity-checking caller (all feasible schedulers gate on
//     ResidualWindow ≥ demand) rejects placements against out-of-range
//     cells instead of admitting them;
//   - Used = 0 reads as "no usage", so metrics and read endpoints report
//     an idle cell once the clock passes the window.
//
// In rolling mode the sentinel boundary moves with the base: a retired
// slot reads as out of range the moment Advance recycles it, and a slot
// entering the window starts reading as live (and empty). Callers that
// must distinguish "empty/full" from "out of range" use
// InRange/WindowInRange explicitly; the mutating methods always report
// out-of-range arguments as errors (ErrBadCloudlet/ErrBadSlot).
package timeslot

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Errors returned by the ledger.
var (
	ErrBadSlot      = errors.New("timeslot: slot outside the live window")
	ErrBadCloudlet  = errors.New("timeslot: unknown cloudlet")
	ErrBadUnits     = errors.New("timeslot: non-positive units")
	ErrOverCapacity = errors.New("timeslot: reservation exceeds capacity")
	ErrUnderflow    = errors.New("timeslot: release exceeds recorded usage")
	// ErrFixedHorizon reports an Advance against a fixed-horizon ledger.
	ErrFixedHorizon = errors.New("timeslot: ledger has a fixed horizon")
	// ErrNotDrained reports an Advance that would recycle a slot still
	// holding reservations. The ledger is left unchanged; the caller must
	// release (or wait out) the straddling reservation before advancing.
	ErrNotDrained = errors.New("timeslot: recycled slot has not drained to zero")
)

// Ledger records the computing units in use in each cloudlet at each slot
// of the live window. Slots are 1-based absolute slot numbers, matching
// the paper's T = {1..T}; in rolling mode they keep counting upward
// forever. The zero value is not usable; construct with New or NewRolling.
// All methods are safe for concurrent use; see the package comment for the
// consistency model.
type Ledger struct {
	window int // number of live slots (T in fixed mode, W in rolling mode)
	caps   []int
	mus    []sync.RWMutex // mus[cloudlet] guards used[cloudlet]
	used   [][]int        // used[cloudlet][ring index]; guarded by mus[*]

	// rolling selects the circular-window mode. In fixed mode the geometry
	// is immutably (base 1, origin 0) and advMu is never taken.
	rolling bool
	// geom packs the window geometry into one word: the base slot in the
	// high 48 bits, the ring origin (the index base is stored at) in the
	// low 16. One load yields a consistent (base, origin) pair; see the
	// package comment for why a held row lock pins it.
	geom atomic.Uint64
	// advMu serializes Advance calls and whole-ledger snapshots (Clone,
	// Violations) against geometry changes. Row operations never take it.
	advMu sync.Mutex
}

// maxRollingWindow bounds a rolling window so the ring origin fits the 16
// geometry bits. 65536 slots is orders of magnitude beyond any served
// window; fixed ledgers (origin pinned at 0) have no such bound.
const maxRollingWindow = 1 << 16

// packGeom packs a (base, origin) pair into the geometry word.
func packGeom(base, origin int) uint64 {
	return uint64(base)<<16 | uint64(origin)
}

// geometry unpacks the current (base slot, ring origin) pair.
func (l *Ledger) geometry() (base, origin int) {
	g := l.geom.Load()
	return int(g >> 16), int(g & 0xffff)
}

// New creates a fixed-horizon ledger for the given per-cloudlet capacities
// and horizon T. Its live window is [1, T] forever; Advance is refused.
func New(capacities []int, horizon int) (*Ledger, error) {
	return build(capacities, horizon, false)
}

// NewRolling creates a rolling-window ledger of window slots anchored at
// base slot 1. Advance moves the window forward, recycling retired rows.
func NewRolling(capacities []int, window int) (*Ledger, error) {
	return build(capacities, window, true)
}

func build(capacities []int, window int, rolling bool) (*Ledger, error) {
	if window < 1 {
		return nil, fmt.Errorf("%w: window %d", ErrBadSlot, window)
	}
	if rolling && window > maxRollingWindow {
		return nil, fmt.Errorf("%w: rolling window %d exceeds %d", ErrBadSlot, window, maxRollingWindow)
	}
	if len(capacities) == 0 {
		return nil, fmt.Errorf("%w: no capacities", ErrBadCloudlet)
	}
	caps := make([]int, len(capacities))
	used := make([][]int, len(capacities))
	for j, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("%w: cloudlet %d capacity %d", ErrBadUnits, j, c)
		}
		caps[j] = c
		used[j] = make([]int, window)
	}
	l := &Ledger{
		window:  window,
		caps:    caps,
		mus:     make([]sync.RWMutex, len(caps)),
		used:    used,
		rolling: rolling,
	}
	l.geom.Store(packGeom(1, 0))
	return l, nil
}

// Horizon returns the number of live slots: T for a fixed ledger, the
// window length W for a rolling one. Alias of Window, kept for the many
// fixed-horizon callers.
func (l *Ledger) Horizon() int { return l.window }

// Window returns the number of live slots (T fixed, W rolling).
func (l *Ledger) Window() int { return l.window }

// Rolling reports whether the ledger runs a rolling window.
func (l *Ledger) Rolling() bool { return l.rolling }

// Base returns the first slot of the live window: always 1 for a fixed
// ledger, the current anchor for a rolling one. Lock-free.
func (l *Ledger) Base() int {
	base, _ := l.geometry()
	return base
}

// MaxSlot returns the last slot of the live window (Base + Window - 1).
func (l *Ledger) MaxSlot() int {
	return l.Base() + l.window - 1
}

// Cloudlets returns the number of cloudlets tracked.
func (l *Ledger) Cloudlets() int { return len(l.caps) }

// idxAt maps an absolute in-window slot onto its ring index under the
// given geometry. Callers must have range-checked slot against base.
func (l *Ledger) idxAt(slot, base, origin int) int {
	i := origin + (slot - base)
	if i >= l.window {
		i -= l.window
	}
	return i
}

// inRangeAt is the range check under an already-read geometry.
func (l *Ledger) inRangeAt(cloudlet, slot, base int) bool {
	return cloudlet >= 0 && cloudlet < len(l.caps) && slot >= base && slot <= base+l.window-1
}

// windowInRangeAt is the window range check under an already-read geometry.
func (l *Ledger) windowInRangeAt(cloudlet, start, duration, base int) bool {
	return cloudlet >= 0 && cloudlet < len(l.caps) &&
		start >= base && duration >= 1 && start+duration-1 <= base+l.window-1
}

// InRange reports whether (cloudlet, slot) addresses a live cell. In
// rolling mode the answer moves with the base: retired slots fall out of
// range, slots entering the window come into it. The answer is advisory
// under concurrency — a concurrent Advance may move the base right after.
func (l *Ledger) InRange(cloudlet, slot int) bool {
	base, _ := l.geometry()
	return l.inRangeAt(cloudlet, slot, base)
}

// WindowInRange reports whether the window [start, start+duration-1] of the
// cloudlet lies fully inside the live window.
func (l *Ledger) WindowInRange(cloudlet, start, duration int) bool {
	base, _ := l.geometry()
	return l.windowInRangeAt(cloudlet, start, duration, base)
}

// Capacity returns cap_j for cloudlet j, or 0 for an unknown cloudlet.
func (l *Ledger) Capacity(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	return l.caps[cloudlet]
}

// Used returns the units in use in cloudlet j at slot t, or the fail-safe
// sentinel 0 ("no usage") when out of range; use InRange to distinguish.
func (l *Ledger) Used(cloudlet, slot int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	base, origin := l.geometry()
	if !l.inRangeAt(cloudlet, slot, base) {
		return 0
	}
	return l.used[cloudlet][l.idxAt(slot, base, origin)]
}

// Residual returns the free units of cloudlet j at slot t. It can be
// negative after forced reservations. Out of range it returns the
// fail-safe sentinel 0 ("no free capacity"), so capacity-gated callers
// reject rather than admit; use InRange to distinguish.
func (l *Ledger) Residual(cloudlet, slot int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	base, origin := l.geometry()
	if !l.inRangeAt(cloudlet, slot, base) {
		return 0
	}
	return l.caps[cloudlet] - l.used[cloudlet][l.idxAt(slot, base, origin)]
}

// ResidualWindow returns the minimum residual capacity of cloudlet j over
// slots [start, start+duration-1]. For invalid arguments (unknown cloudlet
// or a window leaving the live window) it returns the fail-safe sentinel 0
// ("no free capacity"), which makes schedulers reject such windows; use
// WindowInRange to distinguish.
func (l *Ledger) ResidualWindow(cloudlet, start, duration int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	base, origin := l.geometry()
	if !l.windowInRangeAt(cloudlet, start, duration, base) {
		return 0
	}
	return l.residualWindowLocked(cloudlet, start, duration, base, origin)
}

// residualWindowLocked computes the window minimum with cloudlet's row
// lock held (which pins the given geometry; see the package comment).
func (l *Ledger) residualWindowLocked(cloudlet, start, duration, base, origin int) int {
	i := l.idxAt(start, base, origin)
	minFree := l.caps[cloudlet] - l.used[cloudlet][i]
	for t := 1; t < duration; t++ {
		if i++; i == l.window {
			i = 0
		}
		if free := l.caps[cloudlet] - l.used[cloudlet][i]; free < minFree {
			minFree = free
		}
	}
	return minFree
}

// CanReserve reports whether units fit in cloudlet j over the window
// without exceeding capacity. A true result is advisory under concurrency:
// another reservation may land first. Use ReserveWindow for an atomic
// check-and-commit.
func (l *Ledger) CanReserve(cloudlet, start, duration, units int) bool {
	if units <= 0 {
		return false
	}
	return l.ResidualWindow(cloudlet, start, duration) >= units
}

// ReserveWindow atomically checks and books units in cloudlet j over slots
// [start, start+duration-1]: the capacity test and the commit happen in one
// critical section, so concurrent callers can never jointly oversubscribe
// cap_j. It returns (true, nil) when the reservation was committed,
// (false, nil) when it was refused for lack of capacity — the arbitration
// signal concurrent admitters retry or reject on — and (false, err) for
// out-of-range arguments. In rolling mode a window that has been retired
// (or not yet entered) reports ErrBadSlot.
func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return false, fmt.Errorf("%w: %d", ErrBadCloudlet, cloudlet)
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	base, origin := l.geometry()
	if err := l.checkArgsAt(start, duration, units, base); err != nil {
		return false, err
	}
	if l.residualWindowLocked(cloudlet, start, duration, base, origin) < units {
		return false, nil
	}
	l.addLocked(cloudlet, start, duration, units, base, origin)
	return true, nil
}

// Reserve books units in cloudlet j over slots [start, start+duration-1].
// It fails with ErrOverCapacity (leaving the ledger unchanged) when any slot
// would exceed capacity. The check and the commit are atomic, as in
// ReserveWindow.
func (l *Ledger) Reserve(cloudlet, start, duration, units int) error {
	ok, err := l.ReserveWindow(cloudlet, start, duration, units)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: cloudlet %d window [%d,%d] units %d free %d",
			ErrOverCapacity, cloudlet, start, start+duration-1, units,
			l.ResidualWindow(cloudlet, start, duration))
	}
	return nil
}

// ForceReserve books units regardless of capacity. It is used for the raw
// primal-dual algorithm whose bounded capacity violations are part of the
// paper's analysis; the resulting overcommitment shows up in Violations.
func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return fmt.Errorf("%w: %d", ErrBadCloudlet, cloudlet)
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	base, origin := l.geometry()
	if err := l.checkArgsAt(start, duration, units, base); err != nil {
		return err
	}
	l.addLocked(cloudlet, start, duration, units, base, origin)
	return nil
}

// Release returns previously reserved units. It fails with ErrUnderflow
// (leaving the ledger unchanged) when more units would be released than are
// in use at any covered slot, and with ErrBadSlot when the window is not
// live — in rolling mode a release against a recycled slot is an
// addressing error, never an underflow against the row now occupying its
// ring position. The underflow check and the release are one critical
// section, pairing with ReserveWindow for concurrent use.
func (l *Ledger) Release(cloudlet, start, duration, units int) error {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return fmt.Errorf("%w: %d", ErrBadCloudlet, cloudlet)
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	base, origin := l.geometry()
	if err := l.checkArgsAt(start, duration, units, base); err != nil {
		return err
	}
	i := l.idxAt(start, base, origin)
	for t := start; t <= start+duration-1; t++ {
		if l.used[cloudlet][i] < units {
			return fmt.Errorf("%w: cloudlet %d slot %d used %d release %d",
				ErrUnderflow, cloudlet, t, l.used[cloudlet][i], units)
		}
		if i++; i == l.window {
			i = 0
		}
	}
	l.addLocked(cloudlet, start, duration, -units, base, origin)
	return nil
}

// Advance moves a rolling ledger's window forward so it starts at base.
// Every retired slot in [old base, base-1] must have drained back to zero
// usage in every cloudlet — a retired row still holding units means a
// reservation straddles the advancing base, and Advance refuses with
// ErrNotDrained, leaving the ledger unchanged, so the caller can retry
// after the straggler is released. Retired rows are recycled for the slots
// entering at [old base+W, base+W-1], which therefore start empty. Moving
// backward is an ErrBadSlot; advancing to the current base is a no-op; a
// fixed-horizon ledger refuses with ErrFixedHorizon.
func (l *Ledger) Advance(base int) error {
	if !l.rolling {
		return fmt.Errorf("%w: cannot advance to %d", ErrFixedHorizon, base)
	}
	l.advMu.Lock()
	defer l.advMu.Unlock()
	// Hold every row's write lock while checking and re-basing: no row
	// operation can run concurrently, so the geometry word flips while the
	// whole ledger is pinned (this is what lets row operations treat one
	// geometry read under their row lock as stable).
	for j := range l.mus {
		l.mus[j].Lock()
		defer l.mus[j].Unlock()
	}
	cur, origin := l.geometry()
	if base < cur {
		return fmt.Errorf("%w: advance to %d behind base %d", ErrBadSlot, base, cur)
	}
	retire := base - cur
	if retire == 0 {
		return nil
	}
	// Check every retired row drained before mutating anything: Advance is
	// all-or-nothing. Advancing by ≥ W retires the whole ring once.
	checked := retire
	if checked > l.window {
		checked = l.window
	}
	for k := 0; k < checked; k++ {
		i := origin + k
		if i >= l.window {
			i -= l.window
		}
		for j := range l.caps {
			if u := l.used[j][i]; u != 0 {
				return fmt.Errorf("%w: cloudlet %d slot %d still holds %d units",
					ErrNotDrained, j, cur+k, u)
			}
		}
	}
	// Retired rows are zero, so the slots entering the window reuse them
	// as-is: re-basing is pure geometry.
	l.geom.Store(packGeom(base, (origin+retire%l.window)%l.window))
	return nil
}

// checkArgsAt validates mutating-call arguments against an already-read
// geometry base; the caller holds the cloudlet's row lock, which pins it.
func (l *Ledger) checkArgsAt(start, duration, units, base int) error {
	if start < base || duration < 1 || start+duration-1 > base+l.window-1 {
		return fmt.Errorf("%w: window [%d,%d] live window [%d,%d]",
			ErrBadSlot, start, start+duration-1, base, base+l.window-1)
	}
	if units <= 0 {
		return fmt.Errorf("%w: %d", ErrBadUnits, units)
	}
	return nil
}

// addLocked mutates cloudlet's row; the caller holds its write lock (which
// pins the given geometry).
func (l *Ledger) addLocked(cloudlet, start, duration, units, base, origin int) {
	i := l.idxAt(start, base, origin)
	for t := 0; t < duration; t++ {
		l.used[cloudlet][i] += units
		if i++; i == l.window {
			i = 0
		}
	}
}

// Violation describes one overcommitted (cloudlet, slot) cell.
type Violation struct {
	// Cloudlet and Slot locate the overcommitted cell; Slot is absolute.
	Cloudlet, Slot int
	// Used and Capacity give the recorded usage and the limit.
	Used, Capacity int
}

// Excess returns Used - Capacity.
func (v Violation) Excess() int { return v.Used - v.Capacity }

// Ratio returns Used / Capacity, the multiplicative overcommitment.
func (v Violation) Ratio() float64 { return float64(v.Used) / float64(v.Capacity) }

// Violations returns every overcommitted live cell in cloudlet-then-slot
// order.
func (l *Ledger) Violations() []Violation {
	l.advMu.Lock() // hold the geometry still across rows
	defer l.advMu.Unlock()
	base, origin := l.geometry()
	var out []Violation
	for j := range l.caps {
		l.mus[j].RLock()
		i := origin
		for t := base; t <= base+l.window-1; t++ {
			if u := l.used[j][i]; u > l.caps[j] {
				out = append(out, Violation{Cloudlet: j, Slot: t, Used: u, Capacity: l.caps[j]})
			}
			if i++; i == l.window {
				i = 0
			}
		}
		l.mus[j].RUnlock()
	}
	return out
}

// MaxViolationRatio returns the largest Used/Capacity across all live
// cells (1.0 or less means no violation; exactly 1.0 is returned for a
// full but unviolated ledger as well as for an empty one with ratio below
// 1).
func (l *Ledger) MaxViolationRatio() float64 {
	maxRatio := 0.0
	for j := range l.caps {
		l.mus[j].RLock()
		for t := 0; t < l.window; t++ {
			if r := float64(l.used[j][t]) / float64(l.caps[j]); r > maxRatio {
				maxRatio = r
			}
		}
		l.mus[j].RUnlock()
	}
	return maxRatio
}

// Utilization returns the mean of Used/Capacity over every live
// (cloudlet, slot) cell. Overcommitted cells contribute ratios above 1.
func (l *Ledger) Utilization() float64 {
	if len(l.caps) == 0 || l.window == 0 {
		return 0
	}
	total := 0.0
	for j := range l.caps {
		l.mus[j].RLock()
		for t := 0; t < l.window; t++ {
			total += float64(l.used[j][t]) / float64(l.caps[j])
		}
		l.mus[j].RUnlock()
	}
	return total / float64(len(l.caps)*l.window)
}

// PeakUsage returns the maximum units in use in cloudlet j across the live
// window, or 0 for an unknown cloudlet.
func (l *Ledger) PeakUsage(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	peak := 0
	for _, u := range l.used[cloudlet] {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// Clone returns an independent deep copy of the ledger (same mode, same
// window position), used by solvers that explore hypothetical schedules.
// Rows are copied one cloudlet at a time; clone with writers quiesced when
// an exact global snapshot matters.
func (l *Ledger) Clone() *Ledger {
	l.advMu.Lock() // hold the geometry still across rows
	defer l.advMu.Unlock()
	caps := make([]int, len(l.caps))
	copy(caps, l.caps)
	used := make([][]int, len(l.used))
	for j := range l.used {
		l.mus[j].RLock()
		used[j] = make([]int, len(l.used[j]))
		copy(used[j], l.used[j])
		l.mus[j].RUnlock()
	}
	c := &Ledger{
		window:  l.window,
		caps:    caps,
		mus:     make([]sync.RWMutex, len(caps)),
		used:    used,
		rolling: l.rolling,
	}
	c.geom.Store(l.geom.Load())
	return c
}
