// Package timeslot tracks per-cloudlet, per-slot computing resource usage
// over a finite horizon of discrete time slots. The Ledger is the
// authoritative record used by the simulation engine and the admission
// daemon: feasible schedulers reserve through it and are refused when
// capacity would be exceeded, while the raw primal-dual algorithm (whose
// analysis permits bounded violations) force-reserves and has its
// overcommitment measured.
//
// # Concurrency
//
// The Ledger is safe for concurrent use. Each cloudlet's usage row is
// guarded by its own reader/writer lock, so reads and reservations against
// different cloudlets never contend, and a reservation over a window
// [a, a+d-1] is checked and committed in one critical section: two
// concurrent ReserveWindow calls can never jointly oversubscribe cap_j.
// Whole-ledger aggregates (Violations, Utilization, Clone, ...) lock one
// cloudlet at a time; each row is internally consistent but the aggregate
// is not a single point-in-time snapshot while writers are active — call
// them after reservations quiesce (as the batch engine does) when an exact
// global snapshot matters.
//
// # Out-of-range reads
//
// The read accessors (Used, Residual, ResidualWindow, Capacity, PeakUsage)
// return 0 for an unknown cloudlet, a slot outside [1, T], or a window
// leaving the horizon, rather than panicking or returning an error. The
// sentinel is deliberately fail-safe in both directions:
//
//   - Residual/ResidualWindow = 0 reads as "no free capacity", so every
//     capacity-checking caller (all feasible schedulers gate on
//     ResidualWindow ≥ demand) rejects placements against out-of-range
//     cells instead of admitting them;
//   - Used = 0 reads as "no usage", so metrics and read endpoints report
//     an idle cell once the clock passes the horizon.
//
// Callers that must distinguish "empty/full" from "out of range" use
// InRange/WindowInRange explicitly; the mutating methods always report
// out-of-range arguments as errors (ErrBadCloudlet/ErrBadSlot).
package timeslot

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by the ledger.
var (
	ErrBadSlot      = errors.New("timeslot: slot out of horizon")
	ErrBadCloudlet  = errors.New("timeslot: unknown cloudlet")
	ErrBadUnits     = errors.New("timeslot: non-positive units")
	ErrOverCapacity = errors.New("timeslot: reservation exceeds capacity")
	ErrUnderflow    = errors.New("timeslot: release exceeds recorded usage")
)

// Ledger records the computing units in use in each cloudlet at each slot.
// Slots are 1-based, matching the paper's T = {1..T}. The zero value is not
// usable; construct with New. All methods are safe for concurrent use; see
// the package comment for the consistency model.
type Ledger struct {
	horizon int
	caps    []int
	mus     []sync.RWMutex // mus[cloudlet] guards used[cloudlet]
	used    [][]int        // used[cloudlet][slot-1]
}

// New creates a ledger for the given per-cloudlet capacities and horizon.
func New(capacities []int, horizon int) (*Ledger, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadSlot, horizon)
	}
	if len(capacities) == 0 {
		return nil, fmt.Errorf("%w: no capacities", ErrBadCloudlet)
	}
	caps := make([]int, len(capacities))
	used := make([][]int, len(capacities))
	for j, c := range capacities {
		if c <= 0 {
			return nil, fmt.Errorf("%w: cloudlet %d capacity %d", ErrBadUnits, j, c)
		}
		caps[j] = c
		used[j] = make([]int, horizon)
	}
	return &Ledger{horizon: horizon, caps: caps, mus: make([]sync.RWMutex, len(caps)), used: used}, nil
}

// Horizon returns the number of slots T.
func (l *Ledger) Horizon() int { return l.horizon }

// Cloudlets returns the number of cloudlets tracked.
func (l *Ledger) Cloudlets() int { return len(l.caps) }

// InRange reports whether (cloudlet, slot) addresses a tracked cell.
func (l *Ledger) InRange(cloudlet, slot int) bool {
	return cloudlet >= 0 && cloudlet < len(l.caps) && slot >= 1 && slot <= l.horizon
}

// WindowInRange reports whether the window [start, start+duration-1] of the
// cloudlet lies fully inside the horizon.
func (l *Ledger) WindowInRange(cloudlet, start, duration int) bool {
	return cloudlet >= 0 && cloudlet < len(l.caps) &&
		start >= 1 && duration >= 1 && start+duration-1 <= l.horizon
}

// Capacity returns cap_j for cloudlet j, or 0 for an unknown cloudlet.
func (l *Ledger) Capacity(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	return l.caps[cloudlet]
}

// Used returns the units in use in cloudlet j at slot t, or the fail-safe
// sentinel 0 ("no usage") when out of range; use InRange to distinguish.
func (l *Ledger) Used(cloudlet, slot int) int {
	if !l.InRange(cloudlet, slot) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	return l.used[cloudlet][slot-1]
}

// Residual returns the free units of cloudlet j at slot t. It can be
// negative after forced reservations. Out of range it returns the
// fail-safe sentinel 0 ("no free capacity"), so capacity-gated callers
// reject rather than admit; use InRange to distinguish.
func (l *Ledger) Residual(cloudlet, slot int) int {
	if !l.InRange(cloudlet, slot) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	return l.caps[cloudlet] - l.used[cloudlet][slot-1]
}

// ResidualWindow returns the minimum residual capacity of cloudlet j over
// slots [start, start+duration-1]. For invalid arguments (unknown cloudlet
// or a window leaving the horizon) it returns the fail-safe sentinel 0
// ("no free capacity"), which makes schedulers reject such windows; use
// WindowInRange to distinguish.
func (l *Ledger) ResidualWindow(cloudlet, start, duration int) int {
	if !l.WindowInRange(cloudlet, start, duration) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	return l.residualWindowLocked(cloudlet, start, duration)
}

// residualWindowLocked computes the window minimum with cloudlet's lock
// held (in either mode).
func (l *Ledger) residualWindowLocked(cloudlet, start, duration int) int {
	minFree := l.caps[cloudlet] - l.used[cloudlet][start-1]
	for t := start + 1; t <= start+duration-1; t++ {
		if free := l.caps[cloudlet] - l.used[cloudlet][t-1]; free < minFree {
			minFree = free
		}
	}
	return minFree
}

// CanReserve reports whether units fit in cloudlet j over the window
// without exceeding capacity. A true result is advisory under concurrency:
// another reservation may land first. Use ReserveWindow for an atomic
// check-and-commit.
func (l *Ledger) CanReserve(cloudlet, start, duration, units int) bool {
	if units <= 0 {
		return false
	}
	return l.ResidualWindow(cloudlet, start, duration) >= units
}

// ReserveWindow atomically checks and books units in cloudlet j over slots
// [start, start+duration-1]: the capacity test and the commit happen in one
// critical section, so concurrent callers can never jointly oversubscribe
// cap_j. It returns (true, nil) when the reservation was committed,
// (false, nil) when it was refused for lack of capacity — the arbitration
// signal concurrent admitters retry or reject on — and (false, err) for
// out-of-range arguments.
func (l *Ledger) ReserveWindow(cloudlet, start, duration, units int) (bool, error) {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return false, err
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	if l.residualWindowLocked(cloudlet, start, duration) < units {
		return false, nil
	}
	l.addLocked(cloudlet, start, duration, units)
	return true, nil
}

// Reserve books units in cloudlet j over slots [start, start+duration-1].
// It fails with ErrOverCapacity (leaving the ledger unchanged) when any slot
// would exceed capacity. The check and the commit are atomic, as in
// ReserveWindow.
func (l *Ledger) Reserve(cloudlet, start, duration, units int) error {
	ok, err := l.ReserveWindow(cloudlet, start, duration, units)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: cloudlet %d window [%d,%d] units %d free %d",
			ErrOverCapacity, cloudlet, start, start+duration-1, units,
			l.ResidualWindow(cloudlet, start, duration))
	}
	return nil
}

// ForceReserve books units regardless of capacity. It is used for the raw
// primal-dual algorithm whose bounded capacity violations are part of the
// paper's analysis; the resulting overcommitment shows up in Violations.
func (l *Ledger) ForceReserve(cloudlet, start, duration, units int) error {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return err
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	l.addLocked(cloudlet, start, duration, units)
	return nil
}

// Release returns previously reserved units. It fails with ErrUnderflow
// (leaving the ledger unchanged) when more units would be released than are
// in use at any covered slot. The underflow check and the release are one
// critical section, pairing with ReserveWindow for concurrent use.
func (l *Ledger) Release(cloudlet, start, duration, units int) error {
	if err := l.checkArgs(cloudlet, start, duration, units); err != nil {
		return err
	}
	l.mus[cloudlet].Lock()
	defer l.mus[cloudlet].Unlock()
	for t := start; t <= start+duration-1; t++ {
		if l.used[cloudlet][t-1] < units {
			return fmt.Errorf("%w: cloudlet %d slot %d used %d release %d",
				ErrUnderflow, cloudlet, t, l.used[cloudlet][t-1], units)
		}
	}
	l.addLocked(cloudlet, start, duration, -units)
	return nil
}

func (l *Ledger) checkArgs(cloudlet, start, duration, units int) error {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return fmt.Errorf("%w: %d", ErrBadCloudlet, cloudlet)
	}
	if start < 1 || duration < 1 || start+duration-1 > l.horizon {
		return fmt.Errorf("%w: window [%d,%d] horizon %d", ErrBadSlot, start, start+duration-1, l.horizon)
	}
	if units <= 0 {
		return fmt.Errorf("%w: %d", ErrBadUnits, units)
	}
	return nil
}

// addLocked mutates cloudlet's row; the caller holds its write lock.
func (l *Ledger) addLocked(cloudlet, start, duration, units int) {
	for t := start; t <= start+duration-1; t++ {
		l.used[cloudlet][t-1] += units
	}
}

// Violation describes one overcommitted (cloudlet, slot) cell.
type Violation struct {
	// Cloudlet and Slot locate the overcommitted cell.
	Cloudlet, Slot int
	// Used and Capacity give the recorded usage and the limit.
	Used, Capacity int
}

// Excess returns Used - Capacity.
func (v Violation) Excess() int { return v.Used - v.Capacity }

// Ratio returns Used / Capacity, the multiplicative overcommitment.
func (v Violation) Ratio() float64 { return float64(v.Used) / float64(v.Capacity) }

// Violations returns every overcommitted cell in cloudlet-then-slot order.
func (l *Ledger) Violations() []Violation {
	var out []Violation
	for j := range l.caps {
		l.mus[j].RLock()
		for t := 1; t <= l.horizon; t++ {
			if u := l.used[j][t-1]; u > l.caps[j] {
				out = append(out, Violation{Cloudlet: j, Slot: t, Used: u, Capacity: l.caps[j]})
			}
		}
		l.mus[j].RUnlock()
	}
	return out
}

// MaxViolationRatio returns the largest Used/Capacity across all cells
// (1.0 or less means no violation; exactly 1.0 is returned for a full but
// unviolated ledger as well as for an empty one with ratio below 1).
func (l *Ledger) MaxViolationRatio() float64 {
	maxRatio := 0.0
	for j := range l.caps {
		l.mus[j].RLock()
		for t := 0; t < l.horizon; t++ {
			if r := float64(l.used[j][t]) / float64(l.caps[j]); r > maxRatio {
				maxRatio = r
			}
		}
		l.mus[j].RUnlock()
	}
	return maxRatio
}

// Utilization returns the mean of Used/Capacity over every (cloudlet, slot)
// cell. Overcommitted cells contribute ratios above 1.
func (l *Ledger) Utilization() float64 {
	if len(l.caps) == 0 || l.horizon == 0 {
		return 0
	}
	total := 0.0
	for j := range l.caps {
		l.mus[j].RLock()
		for t := 0; t < l.horizon; t++ {
			total += float64(l.used[j][t]) / float64(l.caps[j])
		}
		l.mus[j].RUnlock()
	}
	return total / float64(len(l.caps)*l.horizon)
}

// PeakUsage returns the maximum units in use in cloudlet j across all
// slots, or 0 for an unknown cloudlet.
func (l *Ledger) PeakUsage(cloudlet int) int {
	if cloudlet < 0 || cloudlet >= len(l.caps) {
		return 0
	}
	l.mus[cloudlet].RLock()
	defer l.mus[cloudlet].RUnlock()
	peak := 0
	for _, u := range l.used[cloudlet] {
		if u > peak {
			peak = u
		}
	}
	return peak
}

// Clone returns an independent deep copy of the ledger, used by solvers
// that explore hypothetical schedules. Rows are copied one cloudlet at a
// time; clone with writers quiesced when an exact global snapshot matters.
func (l *Ledger) Clone() *Ledger {
	caps := make([]int, len(l.caps))
	copy(caps, l.caps)
	used := make([][]int, len(l.used))
	for j := range l.used {
		l.mus[j].RLock()
		used[j] = make([]int, len(l.used[j]))
		copy(used[j], l.used[j])
		l.mus[j].RUnlock()
	}
	return &Ledger{horizon: l.horizon, caps: caps, mus: make([]sync.RWMutex, len(caps)), used: used}
}
