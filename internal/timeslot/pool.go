package timeslot

import (
	"errors"
	"fmt"
	"sync"
)

// Pool errors.
var (
	// ErrUnknownGroup reports a Release (or query) against a group the
	// pool is not holding capacity for.
	ErrUnknownGroup = errors.New("timeslot: unknown backup group")
	// ErrPoolMismatch reports an Acquire whose cloudlet or units disagree
	// with the group's recorded footprint.
	ErrPoolMismatch = errors.New("timeslot: acquire does not match group footprint")
	// ErrNotCovered reports a Release over slots the group holds no
	// member references for.
	ErrNotCovered = errors.New("timeslot: release of uncovered slot")
)

// Pool layers reference-counted group reservations over a Ledger for the
// shared-backup scheme: a backup group's row (units computing units on one
// cloudlet) is reserved in the ledger exactly once per slot regardless of
// how many members' windows cover that slot, and released only when the
// last covering member leaves. Per (group, slot) the pool keeps a refcount
// word; the ledger transition happens on the 0→1 edge of Acquire and the
// 1→0 edge of Release, so the conservation invariant is
//
//	ledger units held for group g at slot t = units(g) · [refcount(g,t) > 0]
//
// (tested against a model map in pool_test.go). A failed Acquire rolls its
// partial ledger reservations back and leaves the pool unchanged, so every
// member either holds its whole window or nothing — the same all-or-
// nothing contract ReserveWindow gives dedicated placements.
//
// The pool serializes itself with one mutex and calls into the ledger
// (which takes per-row locks) while holding it; nothing calls back into
// the pool from the ledger, so the order pool.mu → ledger row is acyclic.
// In rolling mode the engine releases expired members before advancing the
// ledger, so retired slots have always drained their pooled rows.
type Pool struct {
	led *Ledger

	mu     sync.Mutex
	groups map[int]*poolGroup // guarded by mu
}

// poolGroup is one backup group's footprint: the hosting cloudlet, the
// per-slot units of its single pooled instance, and the member refcount
// per covered slot.
type poolGroup struct {
	cloudlet int
	units    int
	ref      map[int]int // slot → covering members; protected by Pool.mu
}

// NewPool returns a pool over the ledger. The ledger must be non-nil; the
// pool holds no capacity until the first Acquire.
func NewPool(led *Ledger) *Pool {
	return &Pool{led: led, groups: make(map[int]*poolGroup)}
}

// Acquire joins one member (window [start, start+duration-1], per-slot
// units) to the group, creating the group on first use. Slots already
// covered by other members only gain a reference; uncovered slots are
// reserved in the ledger, and a refused reservation rolls back every slot
// this call reserved and returns the ledger's error (ErrOverCapacity,
// ErrBadSlot, ...) with the pool unchanged.
func (p *Pool) Acquire(group, cloudlet, start, duration, units int) error {
	if duration < 1 {
		return fmt.Errorf("%w: duration %d", ErrBadSlot, duration)
	}
	if units < 1 {
		return fmt.Errorf("%w: %d", ErrBadUnits, units)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[group]
	if !ok {
		g = &poolGroup{cloudlet: cloudlet, units: units, ref: make(map[int]int)}
	} else if g.cloudlet != cloudlet || g.units != units {
		return fmt.Errorf("%w: group %d is %d units on cloudlet %d, acquire wants %d on %d",
			ErrPoolMismatch, group, g.units, g.cloudlet, units, cloudlet)
	}
	// Reserve the uncovered slots one at a time so a mid-window refusal
	// can roll back exactly what this call took.
	reserved := make([]int, 0, duration)
	for t := start; t < start+duration; t++ {
		if g.ref[t] > 0 {
			continue
		}
		if err := p.led.Reserve(cloudlet, t, 1, units); err != nil {
			for _, rt := range reserved {
				if rerr := p.led.Release(cloudlet, rt, 1, units); rerr != nil {
					panic(fmt.Sprintf("timeslot: pool rollback failed: %v", rerr))
				}
			}
			return err
		}
		reserved = append(reserved, t)
	}
	for t := start; t < start+duration; t++ {
		g.ref[t]++
	}
	p.groups[group] = g
	return nil
}

// Release drops one member's references over [start, start+duration-1].
// Slots whose refcount reaches zero release their ledger reservation; the
// group itself is dropped when its last reference goes. Releasing a slot
// the group does not cover returns ErrNotCovered with the already-
// processed prefix undone, so a failed Release is also all-or-nothing.
func (p *Pool) Release(group, start, duration int) error {
	if duration < 1 {
		return fmt.Errorf("%w: duration %d", ErrBadSlot, duration)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[group]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownGroup, group)
	}
	for t := start; t < start+duration; t++ {
		if g.ref[t] < 1 {
			for rt := start; rt < t; rt++ {
				g.ref[rt]++
			}
			return fmt.Errorf("%w: group %d slot %d", ErrNotCovered, group, t)
		}
		g.ref[t]--
	}
	for t := start; t < start+duration; t++ {
		if g.ref[t] > 0 {
			continue
		}
		delete(g.ref, t)
		if err := p.led.Release(g.cloudlet, t, 1, g.units); err != nil {
			panic(fmt.Sprintf("timeslot: pool release desynced from ledger: %v", err))
		}
	}
	if len(g.ref) == 0 {
		delete(p.groups, group)
	}
	return nil
}

// Covered reports whether the group holds the slot for at least one
// member (and therefore holds ledger capacity there).
func (p *Pool) Covered(group, slot int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[group]
	return ok && g.ref[slot] > 0
}

// Refs returns the member refcount of the group at the slot (0 when the
// group or slot is unknown). Tests use it to audit conservation.
func (p *Pool) Refs(group, slot int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.groups[group]
	if !ok {
		return 0
	}
	return g.ref[slot]
}

// Groups returns the number of groups currently holding capacity.
func (p *Pool) Groups() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.groups)
}
