package timeslot

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestNewRollingBasics(t *testing.T) {
	l, err := NewRolling([]int{4, 6}, 8)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	if !l.Rolling() {
		t.Fatal("Rolling() = false")
	}
	if l.Base() != 1 || l.Window() != 8 || l.MaxSlot() != 8 || l.Horizon() != 8 {
		t.Fatalf("geometry = base %d window %d max %d horizon %d, want 1 8 8 8",
			l.Base(), l.Window(), l.MaxSlot(), l.Horizon())
	}
	fixed, err := New([]int{4}, 5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if fixed.Rolling() {
		t.Fatal("fixed ledger reports Rolling() = true")
	}
	if fixed.Base() != 1 || fixed.MaxSlot() != 5 {
		t.Fatalf("fixed geometry = base %d max %d, want 1 5", fixed.Base(), fixed.MaxSlot())
	}
	if err := fixed.Advance(2); !errors.Is(err, ErrFixedHorizon) {
		t.Fatalf("fixed Advance err = %v, want ErrFixedHorizon", err)
	}
}

func TestAdvanceRecyclesDrainedSlots(t *testing.T) {
	l, err := NewRolling([]int{3}, 4)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	// Fill slots 1..2, drain them, then advance past them.
	if err := l.Reserve(0, 1, 2, 3); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Release(0, 1, 2, 3); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := l.Advance(3); err != nil {
		t.Fatalf("Advance(3): %v", err)
	}
	if l.Base() != 3 || l.MaxSlot() != 6 {
		t.Fatalf("window = [%d,%d], want [3,6]", l.Base(), l.MaxSlot())
	}
	// Recycled rows serve the entering slots 5 and 6, and start empty.
	for s := 3; s <= 6; s++ {
		if got := l.Residual(0, s); got != 3 {
			t.Fatalf("Residual(0,%d) = %d, want 3 (recycled slot must start empty)", s, got)
		}
	}
	// Retired slots fall out of range: fail-safe sentinels.
	if l.InRange(0, 2) {
		t.Fatal("InRange(0,2) = true after advancing to base 3")
	}
	if got := l.Residual(0, 2); got != 0 {
		t.Fatalf("Residual(0,2) = %d, want 0 sentinel", got)
	}
	if got := l.Used(0, 2); got != 0 {
		t.Fatalf("Used(0,2) = %d, want 0 sentinel", got)
	}
	// Reserving across the new window, including slots that wrapped.
	if err := l.Reserve(0, 5, 2, 1); err != nil {
		t.Fatalf("Reserve in wrapped region: %v", err)
	}
	if got := l.Used(0, 5); got != 1 {
		t.Fatalf("Used(0,5) = %d, want 1", got)
	}
}

func TestAdvanceNoOpAndBackward(t *testing.T) {
	l, _ := NewRolling([]int{2}, 4)
	if err := l.Advance(1); err != nil {
		t.Fatalf("Advance to current base: %v, want no-op nil", err)
	}
	if err := l.Advance(3); err != nil {
		t.Fatalf("Advance(3): %v", err)
	}
	if err := l.Advance(2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("backward Advance err = %v, want ErrBadSlot", err)
	}
	if l.Base() != 3 {
		t.Fatalf("base = %d after refused backward advance, want 3", l.Base())
	}
}

// TestAdvanceStraddlingReservation is the satellite edge case: a
// reservation straddling the advancing base must refuse the advance with
// ErrNotDrained and leave the ledger bit-identical.
func TestAdvanceStraddlingReservation(t *testing.T) {
	l, err := NewRolling([]int{5, 5}, 6)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	// Cloudlet 1 holds units over [2,4]; advancing to base 3 would retire
	// slot 2 while it still holds 2 units.
	if err := l.Reserve(1, 2, 3, 2); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	before := l.Clone()
	err = l.Advance(3)
	if !errors.Is(err, ErrNotDrained) {
		t.Fatalf("Advance over straddler err = %v, want ErrNotDrained", err)
	}
	// All-or-nothing: geometry and every row unchanged.
	if l.Base() != before.Base() {
		t.Fatalf("base mutated to %d by refused Advance", l.Base())
	}
	for j := 0; j < l.Cloudlets(); j++ {
		for s := l.Base(); s <= l.MaxSlot(); s++ {
			if l.Used(j, s) != before.Used(j, s) {
				t.Fatalf("Used(%d,%d) = %d, want %d (refused Advance must not mutate)",
					j, s, l.Used(j, s), before.Used(j, s))
			}
		}
	}
	// Advancing up to (not past) the straddler is fine.
	if err := l.Advance(2); err != nil {
		t.Fatalf("Advance(2) with reservation starting at 2: %v", err)
	}
	// Release the straddler; the advance now succeeds.
	if err := l.Release(1, 2, 3, 2); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := l.Advance(5); err != nil {
		t.Fatalf("Advance after drain: %v", err)
	}
}

// TestReleaseRecycledSlot is the satellite edge case: releasing against a
// slot that Advance recycled must be an addressing error (ErrBadSlot),
// never an underflow against the row now occupying its ring position.
func TestReleaseRecycledSlot(t *testing.T) {
	l, err := NewRolling([]int{4}, 4)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	if err := l.Reserve(0, 1, 2, 3); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := l.Release(0, 1, 2, 3); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := l.Advance(3); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	// Put usage on slot 5, which reuses slot 1's ring row. A stale release
	// addressed to slot 1 must not touch it.
	if err := l.Reserve(0, 5, 1, 2); err != nil {
		t.Fatalf("Reserve(5): %v", err)
	}
	err = l.Release(0, 1, 2, 3)
	if !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Release against recycled slot err = %v, want ErrBadSlot", err)
	}
	if errors.Is(err, ErrUnderflow) {
		t.Fatalf("Release against recycled slot reported underflow: %v", err)
	}
	if got := l.Used(0, 5); got != 2 {
		t.Fatalf("Used(0,5) = %d after stale release, want 2 untouched", got)
	}
}

// TestAdvanceConservesReservedUnits is the quickcheck property: random
// reserve/release traffic interleaved with random advances never changes
// the total outstanding units except through Reserve/Release themselves,
// and the ledger's summed usage always equals the model's.
func TestAdvanceConservesReservedUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		window := 4 + rng.Intn(8)
		caps := make([]int, 1+rng.Intn(3))
		for j := range caps {
			caps[j] = 2 + rng.Intn(6)
		}
		l, err := NewRolling(caps, window)
		if err != nil {
			t.Fatalf("NewRolling: %v", err)
		}
		// model[j][slot] mirrors expected absolute-slot usage.
		model := make([]map[int]int, len(caps))
		for j := range model {
			model[j] = map[int]int{}
		}
		type res struct{ j, start, dur, units int }
		var live []res
		total := 0 // outstanding reserved unit-slots
		for op := 0; op < 200; op++ {
			switch k := rng.Intn(10); {
			case k < 5: // reserve
				j := rng.Intn(len(caps))
				dur := 1 + rng.Intn(window)
				start := l.Base() + rng.Intn(window-dur+1)
				units := 1 + rng.Intn(2)
				ok, err := l.ReserveWindow(j, start, dur, units)
				if err != nil {
					t.Fatalf("iter %d op %d ReserveWindow: %v", iter, op, err)
				}
				if ok {
					live = append(live, res{j, start, dur, units})
					for s := start; s < start+dur; s++ {
						model[j][s] += units
					}
					total += dur * units
				}
			case k < 8 && len(live) > 0: // release a random live reservation
				i := rng.Intn(len(live))
				r := live[i]
				if err := l.Release(r.j, r.start, r.dur, r.units); err != nil {
					t.Fatalf("iter %d op %d Release: %v", iter, op, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				for s := r.start; s < r.start+r.dur; s++ {
					model[r.j][s] -= r.units
				}
				total -= r.dur * r.units
			default: // advance to the oldest live start (or +1 if idle)
				target := l.Base() + 1 + rng.Intn(2)
				for _, r := range live {
					if r.start < target {
						target = r.start
					}
				}
				if target > l.Base() {
					if err := l.Advance(target); err != nil {
						t.Fatalf("iter %d op %d Advance(%d): %v", iter, op, target, err)
					}
				}
			}
			// Conservation: summed ledger usage over the live window equals
			// the outstanding total, cell by cell against the model.
			sum := 0
			for j := range caps {
				for s := l.Base(); s <= l.MaxSlot(); s++ {
					u := l.Used(j, s)
					sum += u
					if u != model[j][s] {
						t.Fatalf("iter %d op %d: Used(%d,%d) = %d, model %d",
							iter, op, j, s, u, model[j][s])
					}
				}
			}
			if sum != total {
				t.Fatalf("iter %d op %d: ledger sum %d, outstanding total %d", iter, op, sum, total)
			}
		}
	}
}

// TestFixedRollingOpEquivalence drives identical operation sequences
// (confined to the initial window, no advances) through a fixed and a
// rolling ledger and requires bit-identical results — a rolling ledger
// whose base never moves IS the fixed ledger.
func TestFixedRollingOpEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	caps := []int{3, 5, 4}
	const window = 10
	fixed, err := New(caps, window)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rolling, err := NewRolling(caps, window)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	for op := 0; op < 500; op++ {
		j := rng.Intn(len(caps))
		dur := 1 + rng.Intn(window)
		start := 1 + rng.Intn(window-dur+1)
		units := 1 + rng.Intn(3)
		switch rng.Intn(4) {
		case 0:
			okF, errF := fixed.ReserveWindow(j, start, dur, units)
			okR, errR := rolling.ReserveWindow(j, start, dur, units)
			if okF != okR || (errF == nil) != (errR == nil) {
				t.Fatalf("op %d ReserveWindow diverged: fixed (%v,%v) rolling (%v,%v)",
					op, okF, errF, okR, errR)
			}
		case 1:
			errF := fixed.ForceReserve(j, start, dur, units)
			errR := rolling.ForceReserve(j, start, dur, units)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("op %d ForceReserve diverged: %v vs %v", op, errF, errR)
			}
		case 2:
			errF := fixed.Release(j, start, dur, units)
			errR := rolling.Release(j, start, dur, units)
			if (errF == nil) != (errR == nil) {
				t.Fatalf("op %d Release diverged: %v vs %v", op, errF, errR)
			}
		case 3:
			if f, r := fixed.ResidualWindow(j, start, dur), rolling.ResidualWindow(j, start, dur); f != r {
				t.Fatalf("op %d ResidualWindow diverged: %d vs %d", op, f, r)
			}
		}
		for jj := range caps {
			for s := 1; s <= window; s++ {
				if f, r := fixed.Used(jj, s), rolling.Used(jj, s); f != r {
					t.Fatalf("op %d: Used(%d,%d) fixed %d rolling %d", op, jj, s, f, r)
				}
			}
		}
	}
	if f, r := fixed.Utilization(), rolling.Utilization(); f != r {
		t.Fatalf("Utilization diverged: %v vs %v", f, r)
	}
	if f, r := fixed.MaxViolationRatio(), rolling.MaxViolationRatio(); f != r {
		t.Fatalf("MaxViolationRatio diverged: %v vs %v", f, r)
	}
	vf, vr := fixed.Violations(), rolling.Violations()
	if len(vf) != len(vr) {
		t.Fatalf("Violations diverged: %d vs %d", len(vf), len(vr))
	}
	for i := range vf {
		if vf[i] != vr[i] {
			t.Fatalf("Violations[%d] diverged: %+v vs %+v", i, vf[i], vr[i])
		}
	}
}

// TestRollingCloneIndependent checks Clone copies geometry and rows.
func TestRollingCloneIndependent(t *testing.T) {
	l, _ := NewRolling([]int{3}, 4)
	if err := l.Reserve(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Advance(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Reserve(0, 4, 2, 2); err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	if !c.Rolling() || c.Base() != 3 || c.MaxSlot() != 6 {
		t.Fatalf("clone geometry = rolling %v [%d,%d], want true [3,6]", c.Rolling(), c.Base(), c.MaxSlot())
	}
	if got := c.Used(0, 4); got != 2 {
		t.Fatalf("clone Used(0,4) = %d, want 2", got)
	}
	if err := c.Reserve(0, 3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := l.Used(0, 3); got != 0 {
		t.Fatalf("mutating clone leaked into original: Used(0,3) = %d", got)
	}
}

// TestRollingConcurrentAdvance races reservations, releases, and advances
// under -race: reservations always target the live window re-read per
// attempt, and the advancer only moves past drained slots.
func TestRollingConcurrentAdvance(t *testing.T) {
	const window = 16
	l, err := NewRolling([]int{8, 8}, window)
	if err != nil {
		t.Fatalf("NewRolling: %v", err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				base := l.Base()
				j := rng.Intn(2)
				dur := 1 + rng.Intn(4)
				start := base + rng.Intn(window-dur+1)
				ok, err := l.ReserveWindow(j, start, dur, 1)
				if err != nil && !errors.Is(err, ErrBadSlot) {
					t.Errorf("ReserveWindow: %v", err)
					return
				}
				if ok {
					if err := l.Release(j, start, dur, 1); err != nil && !errors.Is(err, ErrBadSlot) {
						t.Errorf("Release: %v", err)
						return
					}
				}
			}
		}(int64(g + 1))
	}
	// Advancer: move the base forward whenever the front has drained.
	for advanced := 0; advanced < 3*window; {
		if err := l.Advance(l.Base() + 1); err == nil {
			advanced++
		} else if !errors.Is(err, ErrNotDrained) {
			t.Fatalf("Advance: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
