package timeslot

import (
	"testing"
	"testing/quick"
)

// Property (testing/quick): Reserve-then-Release is an identity on the
// ledger for any in-range arguments, and Reserve never succeeds beyond
// capacity.
func TestReserveReleaseIdentityQuick(t *testing.T) {
	const (
		horizon  = 12
		capacity = 10
	)
	f := func(cloudletSeed, startSeed, durSeed, unitSeed uint8) bool {
		l, err := New([]int{capacity, capacity}, horizon)
		if err != nil {
			return false
		}
		cloudlet := int(cloudletSeed) % 2
		start := 1 + int(startSeed)%horizon
		dur := 1 + int(durSeed)%(horizon-start+1)
		units := 1 + int(unitSeed)%capacity
		if err := l.Reserve(cloudlet, start, dur, units); err != nil {
			return false
		}
		if l.Used(cloudlet, start) != units {
			return false
		}
		if err := l.Release(cloudlet, start, dur, units); err != nil {
			return false
		}
		for tt := 1; tt <= horizon; tt++ {
			if l.Used(cloudlet, tt) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): CanReserve is consistent with Reserve — if
// CanReserve says yes, Reserve must succeed, and vice versa.
func TestCanReserveConsistencyQuick(t *testing.T) {
	f := func(capSeed, loadSeed, unitSeed uint8) bool {
		capacity := 1 + int(capSeed)%20
		l, err := New([]int{capacity}, 5)
		if err != nil {
			return false
		}
		load := int(loadSeed) % (capacity + 1)
		if load > 0 {
			if err := l.Reserve(0, 1, 5, load); err != nil {
				return false
			}
		}
		units := 1 + int(unitSeed)%(capacity+5)
		can := l.CanReserve(0, 2, 3, units)
		err = l.Reserve(0, 2, 3, units)
		return can == (err == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
