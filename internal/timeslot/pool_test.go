package timeslot

import (
	"errors"
	"math/rand"
	"testing"
)

// poolModel mirrors the pool's semantics with naive maps: per group a
// multiset of member windows, from which coverage (and thus the expected
// ledger usage) is recomputed from scratch after every operation.
type poolModel struct {
	units    int
	cloudlet int
	members  map[int][][2]int // group → member windows [start, end]
}

func (m *poolModel) refs(group, slot int) int {
	n := 0
	for _, w := range m.members[group] {
		if slot >= w[0] && slot <= w[1] {
			n++
		}
	}
	return n
}

func (m *poolModel) usedAt(slot int) int {
	used := 0
	for g := range m.members {
		if m.refs(g, slot) > 0 {
			used += m.units
		}
	}
	return used
}

// TestPoolRefcountConservation drives random acquire/release against the
// model: after every operation the ledger's used units on the pool
// cloudlet must equal units · (number of groups covering the slot), and
// refcounts must match the model exactly.
func TestPoolRefcountConservation(t *testing.T) {
	const (
		horizon  = 40
		capacity = 50
		units    = 2
		groups   = 5
	)
	led, err := New([]int{capacity}, horizon)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(led)
	model := &poolModel{units: units, cloudlet: 0, members: map[int][][2]int{}}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 400; op++ {
		group := 1 + rng.Intn(groups)
		start := 1 + rng.Intn(horizon-5)
		duration := 1 + rng.Intn(5)
		if rng.Intn(2) == 0 || len(model.members[group]) == 0 {
			err := pool.Acquire(group, 0, start, duration, units)
			if err != nil {
				t.Fatalf("op %d: acquire group %d [%d,+%d): %v", op, group, start, duration, err)
			}
			model.members[group] = append(model.members[group], [2]int{start, start + duration - 1})
		} else {
			// Release a random existing member's exact window.
			ws := model.members[group]
			i := rng.Intn(len(ws))
			w := ws[i]
			if err := pool.Release(group, w[0], w[1]-w[0]+1); err != nil {
				t.Fatalf("op %d: release group %d %v: %v", op, group, w, err)
			}
			model.members[group] = append(ws[:i], ws[i+1:]...)
			if len(model.members[group]) == 0 {
				delete(model.members, group)
			}
		}
		for slot := 1; slot <= horizon; slot++ {
			if got, want := led.Used(0, slot), model.usedAt(slot); got != want {
				t.Fatalf("op %d slot %d: ledger used %d, model %d", op, slot, got, want)
			}
			for g := 1; g <= groups; g++ {
				if got, want := pool.Refs(g, slot), model.refs(g, slot); got != want {
					t.Fatalf("op %d group %d slot %d: refs %d, model %d", op, g, slot, got, want)
				}
			}
		}
	}
	// Drain everything: the ledger must return to zero and the pool to no
	// groups.
	for g, ws := range model.members {
		for _, w := range ws {
			if err := pool.Release(g, w[0], w[1]-w[0]+1); err != nil {
				t.Fatalf("drain group %d %v: %v", g, w, err)
			}
		}
	}
	if pool.Groups() != 0 {
		t.Fatalf("pool still holds %d groups after drain", pool.Groups())
	}
	for slot := 1; slot <= horizon; slot++ {
		if led.Used(0, slot) != 0 {
			t.Fatalf("slot %d not drained: %d units", slot, led.Used(0, slot))
		}
	}
}

// TestPoolSharing pins the whole point: two members with overlapping
// windows cost the ledger one reservation on the overlap.
func TestPoolSharing(t *testing.T) {
	led, err := New([]int{10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(led)
	if err := pool.Acquire(1, 0, 1, 10, 3); err != nil {
		t.Fatal(err)
	}
	if err := pool.Acquire(1, 0, 5, 10, 3); err != nil {
		t.Fatal(err)
	}
	for slot := 1; slot <= 14; slot++ {
		if got := led.Used(0, slot); got != 3 {
			t.Fatalf("slot %d: used %d, want 3 (one pooled instance)", slot, got)
		}
	}
	if !pool.Covered(1, 5) || pool.Covered(1, 15) {
		t.Fatal("coverage bounds wrong")
	}
	// First member leaves: [1,4] drains, overlap stays.
	if err := pool.Release(1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if led.Used(0, 1) != 0 || led.Used(0, 10) != 3 || led.Used(0, 14) != 3 {
		t.Fatalf("partial release wrong: used(1)=%d used(10)=%d used(14)=%d",
			led.Used(0, 1), led.Used(0, 10), led.Used(0, 14))
	}
	if err := pool.Release(1, 5, 10); err != nil {
		t.Fatal(err)
	}
	if pool.Groups() != 0 || led.Used(0, 10) != 0 {
		t.Fatal("group not fully drained")
	}
}

// TestPoolAcquireRollback checks a refused mid-window reservation leaves
// both the ledger and the pool untouched.
func TestPoolAcquireRollback(t *testing.T) {
	led, err := New([]int{4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Fill slot 6 so a [4,8] acquire fails halfway.
	if err := led.Reserve(0, 6, 1, 3); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(led)
	err = pool.Acquire(7, 0, 4, 5, 2)
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("err = %v, want ErrOverCapacity", err)
	}
	for slot := 1; slot <= 10; slot++ {
		want := 0
		if slot == 6 {
			want = 3
		}
		if got := led.Used(0, slot); got != want {
			t.Fatalf("slot %d: used %d, want %d after rollback", slot, got, want)
		}
	}
	if pool.Groups() != 0 {
		t.Fatal("failed acquire left a group behind")
	}
}

// TestPoolErrors pins the error surface: group mismatches, unknown
// groups, uncovered releases (with prefix restore), and bad arguments.
func TestPoolErrors(t *testing.T) {
	led, err := New([]int{10, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool(led)
	if err := pool.Acquire(1, 0, 1, 5, 2); err != nil {
		t.Fatal(err)
	}
	if err := pool.Acquire(1, 1, 6, 2, 2); !errors.Is(err, ErrPoolMismatch) {
		t.Fatalf("cloudlet mismatch err = %v", err)
	}
	if err := pool.Acquire(1, 0, 6, 2, 3); !errors.Is(err, ErrPoolMismatch) {
		t.Fatalf("units mismatch err = %v", err)
	}
	if err := pool.Release(2, 1, 5); !errors.Is(err, ErrUnknownGroup) {
		t.Fatalf("unknown group err = %v", err)
	}
	// Release sliding past coverage: [3,7] covers only [3,5]; the failed
	// call must restore refs on [3,5].
	if err := pool.Release(1, 3, 5); !errors.Is(err, ErrNotCovered) {
		t.Fatalf("uncovered release err = %v", err)
	}
	if pool.Refs(1, 3) != 1 || pool.Refs(1, 5) != 1 {
		t.Fatal("failed release did not restore refcounts")
	}
	if err := pool.Release(1, 1, 5); err != nil {
		t.Fatalf("exact release after failed attempt: %v", err)
	}
	if err := pool.Acquire(1, 0, 1, 0, 2); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("zero duration err = %v", err)
	}
	if err := pool.Acquire(1, 0, 1, 2, 0); !errors.Is(err, ErrBadUnits) {
		t.Fatalf("zero units err = %v", err)
	}
	if err := pool.Release(1, 1, 0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("zero duration release err = %v", err)
	}
}
