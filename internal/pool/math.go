// Package pool implements shared backup pooling for the on-site scheme,
// the resource-saving mechanism of the paper's reference [12] (Fan, Jiang,
// Qiao: on-site pooling "improves the resource utilization and thus
// reduces resource consumption"). Instead of giving every request its own
// dedicated backup instances, requests of the same VNF type inside a
// cloudlet share a pool of B backups: a request survives when its primary
// instance is alive, or when enough live backups remain to cover every
// failed primary.
//
// The survival model for a tagged request among n pool members with
// per-instance reliability r and B shared backups is
//
//	P(survive) = r + (1-r)·P(L ≥ F + 1),
//
// where F ~ Binomial(n-1, 1-r) counts the other members' failed primaries
// and L ~ Binomial(B, r) the live backups — the tagged request claims a
// backup only when the pool can cover all failures including its own
// (fair, worst-case assignment). The cloudlet factor multiplies as in the
// paper: availability = r(c)·P(survive).
package pool

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by the pool math.
var (
	ErrBadInput   = errors.New("pool: invalid input")
	ErrInfeasible = errors.New("pool: requirement unattainable")
)

// maxPoolBackups bounds pool sizes; requirements in (0,1) converge long
// before this.
const maxPoolBackups = 256

// Survival returns the probability that a tagged member of a pool with n
// members, B shared backups and per-instance reliability r has a live
// instance (its own primary or a claimable backup), excluding the cloudlet
// factor.
func Survival(n, backups int, r float64) (float64, error) {
	if n < 1 || backups < 0 {
		return 0, fmt.Errorf("%w: n=%d backups=%d", ErrBadInput, n, backups)
	}
	if r <= 0 || r >= 1 {
		return 0, fmt.Errorf("%w: reliability %v", ErrBadInput, r)
	}
	// P(L ≥ F+1) with F ~ Bin(n-1, 1-r), L ~ Bin(B, r).
	failPMF := binomialPMF(n-1, 1-r)
	liveCDFAtLeast := binomialAtLeast(backups, r)
	cover := 0.0
	for f, pf := range failPMF {
		if f+1 <= backups {
			cover += pf * liveCDFAtLeast[f+1]
		}
	}
	return r + (1-r)*cover, nil
}

// MinBackups returns the smallest shared pool size B such that every
// member of an n-request pool in a cloudlet with reliability rc meets
// requirement req: rc·Survival(n, B, r) ≥ req. It generalizes the paper's
// dedicated-backup count N_ij (Eq. 3), which is the n=1 special case plus
// per-request duplication.
func MinBackups(n int, r, rc, req float64) (int, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadInput, n)
	}
	if rc <= 0 || rc >= 1 || req <= 0 || req >= 1 {
		return 0, fmt.Errorf("%w: rc=%v req=%v", ErrBadInput, rc, req)
	}
	if rc <= req {
		return 0, fmt.Errorf("%w: cloudlet reliability %v ≤ requirement %v", ErrInfeasible, rc, req)
	}
	target := req / rc
	for b := 0; b <= maxPoolBackups; b++ {
		s, err := Survival(n, b, r)
		if err != nil {
			return 0, err
		}
		if s+1e-12 >= target {
			return b, nil
		}
	}
	return 0, fmt.Errorf("%w: pool of %d members cannot reach %v", ErrInfeasible, n, req)
}

// binomialPMF returns the probability mass function of Binomial(n, p) as a
// slice indexed by the outcome.
func binomialPMF(n int, p float64) []float64 {
	pmf := make([]float64, n+1)
	if n == 0 {
		pmf[0] = 1
		return pmf
	}
	// Iterative computation avoids large binomial coefficients:
	// pmf[k] = C(n,k) p^k (1-p)^(n-k), pmf[k+1]/pmf[k] = (n-k)/(k+1)·p/(1-p).
	q := 1 - p
	pmf[0] = math.Pow(q, float64(n))
	if pmf[0] == 0 {
		// Underflow for large n·log(q); recompute in log space.
		for k := 0; k <= n; k++ {
			pmf[k] = math.Exp(logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(q))
		}
		return pmf
	}
	ratio := p / q
	for k := 0; k < n; k++ {
		pmf[k+1] = pmf[k] * ratio * float64(n-k) / float64(k+1)
	}
	return pmf
}

// binomialAtLeast returns tail[k] = P(X ≥ k) for X ~ Binomial(n, p),
// indexed 0..n+1 (tail[n+1] = 0).
func binomialAtLeast(n int, p float64) []float64 {
	pmf := binomialPMF(n, p)
	tail := make([]float64, n+2)
	for k := n; k >= 0; k-- {
		tail[k] = tail[k+1] + pmf[k]
	}
	return tail
}

func logChoose(n, k int) float64 {
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

func logFactorial(n int) float64 {
	total := 0.0
	for i := 2; i <= n; i++ {
		total += math.Log(float64(i))
	}
	return total
}
