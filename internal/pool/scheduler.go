package pool

import (
	"fmt"
	"sort"

	"revnf/internal/core"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// Admission records one pooled admission: the chosen cloudlet and the
// per-slot marginal backup units the request added.
type Admission struct {
	// Request is the request ID; Cloudlet the pool's host.
	Request, Cloudlet int
}

// Result summarizes a pooled-greedy simulation and its dedicated-backup
// comparison metrics.
type Result struct {
	// Revenue, Admitted, Rejected mirror the engine's result.
	Revenue            float64
	Admitted, Rejected int
	// Admissions lists the admitted requests and their cloudlets.
	Admissions []Admission
	// Utilization is the mean used/capacity over all cells.
	Utilization float64
	// BackupUnits is the total backup unit-slots reserved by the pools;
	// DedicatedBackupUnits is what per-request dedicated backups (Eq. 3)
	// would have reserved for the same admissions. The difference is the
	// pooling saving of [12].
	BackupUnits, DedicatedBackupUnits int
}

// AdmissionRate returns admitted / total decisions.
func (r *Result) AdmissionRate() float64 {
	total := r.Admitted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(total)
}

// poolState tracks one (cloudlet, VNF type) pool.
type poolState struct {
	// members holds admitted requests' windows and requirements.
	members []core.Request
	// backups[t-1] is the backup instance count reserved at slot t.
	backups []int
}

// Run simulates greedy pooled admission over the instance: requests are
// considered in arrival order and admitted into the most reliable cloudlet
// whose pool (per slot of the window) can absorb them — reserving one
// primary instance plus whatever marginal shared backups the pool's
// reliability math demands. Capacity accounting is per slot because the
// marginal backup need varies over the window.
func Run(inst *workload.Instance) (*Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrBadInput)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	order := cloudletsByReliability(inst.Network)
	pools := make(map[[2]int]*poolState)
	// minBackups memoizes MinBackups per (cloudlet, vnf, members, maxReq).
	type backupKey struct {
		cloudlet, vnf, n int
		maxReq           float64
	}
	backupCache := make(map[backupKey]int)
	minBackups := func(cloudlet, vnf, n int, maxReq float64) (int, error) {
		key := backupKey{cloudlet, vnf, n, maxReq}
		if b, ok := backupCache[key]; ok {
			return b, nil
		}
		b, err := MinBackups(n, inst.Network.Catalog[vnf].Reliability,
			inst.Network.Cloudlets[cloudlet].Reliability, maxReq)
		if err != nil {
			return 0, err
		}
		backupCache[key] = b
		return b, nil
	}

	result := &Result{}
	for _, req := range inst.Trace {
		demand := inst.Network.Catalog[req.VNF].Demand
		admittedAt := -1
		for _, j := range order {
			cl := inst.Network.Cloudlets[j]
			if cl.Reliability <= req.Reliability {
				break // reliability-sorted: all later cloudlets fail too
			}
			ps := pools[[2]int{j, req.VNF}]
			// Per-slot marginal footprint: one primary plus the backup
			// growth the pool needs with this member added.
			marginal := make([]int, req.Duration)
			feasible := true
			for t := req.Arrival; t <= req.End() && feasible; t++ {
				n, maxReq := poolLoadAt(ps, t, req)
				needed, err := minBackups(j, req.VNF, n, maxReq)
				if err != nil {
					feasible = false
					break
				}
				current := 0
				if ps != nil {
					current = ps.backups[t-1]
				}
				grow := needed - current
				if grow < 0 {
					grow = 0
				}
				units := (1 + grow) * demand
				marginal[t-req.Arrival] = units
				if ledger.Residual(j, t) < units {
					feasible = false
				}
			}
			if !feasible {
				continue
			}
			// Admit here: reserve slot by slot and update the pool.
			if ps == nil {
				ps = &poolState{backups: make([]int, inst.Horizon)}
				pools[[2]int{j, req.VNF}] = ps
			}
			for t := req.Arrival; t <= req.End(); t++ {
				units := marginal[t-req.Arrival]
				if err := ledger.Reserve(j, t, 1, units); err != nil {
					return nil, fmt.Errorf("pool: reserve request %d slot %d: %w", req.ID, t, err)
				}
				grow := units/demand - 1
				ps.backups[t-1] += grow
				result.BackupUnits += grow * demand
			}
			ps.members = append(ps.members, req)
			admittedAt = j
			break
		}
		if admittedAt < 0 {
			result.Rejected++
			continue
		}
		result.Admitted++
		result.Revenue += req.Payment
		result.Admissions = append(result.Admissions, Admission{Request: req.ID, Cloudlet: admittedAt})
		// Dedicated comparison: Eq. (3) backups for this request alone.
		n, err := core.OnsiteInstances(inst.Network.Catalog[req.VNF].Reliability,
			inst.Network.Cloudlets[admittedAt].Reliability, req.Reliability)
		if err == nil {
			result.DedicatedBackupUnits += (n - 1) * demand * req.Duration
		}
	}
	result.Utilization = ledger.Utilization()
	if err := verifyPools(inst, pools); err != nil {
		return nil, err
	}
	return result, nil
}

// poolLoadAt returns the member count (including the candidate) and the
// strictest requirement among members active at slot t.
func poolLoadAt(ps *poolState, t int, candidate core.Request) (int, float64) {
	n, maxReq := 1, candidate.Reliability
	if ps == nil {
		return n, maxReq
	}
	for _, m := range ps.members {
		if m.Covers(t) {
			n++
			if m.Reliability > maxReq {
				maxReq = m.Reliability
			}
		}
	}
	return n, maxReq
}

// verifyPools audits the final pool states: at every slot of every pool,
// the reserved backups must satisfy every active member's requirement.
func verifyPools(inst *workload.Instance, pools map[[2]int]*poolState) error {
	for key, ps := range pools {
		cloudlet, vnf := key[0], key[1]
		rf := inst.Network.Catalog[vnf].Reliability
		rc := inst.Network.Cloudlets[cloudlet].Reliability
		for t := 1; t <= inst.Horizon; t++ {
			n, maxReq := 0, 0.0
			for _, m := range ps.members {
				if m.Covers(t) {
					n++
					if m.Reliability > maxReq {
						maxReq = m.Reliability
					}
				}
			}
			if n == 0 {
				continue
			}
			s, err := Survival(n, ps.backups[t-1], rf)
			if err != nil {
				return fmt.Errorf("pool: audit cloudlet %d vnf %d slot %d: %w", cloudlet, vnf, t, err)
			}
			if rc*s+1e-9 < maxReq {
				return fmt.Errorf("%w: cloudlet %d vnf %d slot %d: availability %v < %v",
					ErrInfeasible, cloudlet, vnf, t, rc*s, maxReq)
			}
		}
	}
	return nil
}

func cloudletsByReliability(network *core.Network) []int {
	order := make([]int, len(network.Cloudlets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := network.Cloudlets[order[a]].Reliability
		rb := network.Cloudlets[order[b]].Reliability
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}
