package pool

import (
	"fmt"
	"sort"

	"revnf/internal/core"
	"revnf/internal/timeslot"
	"revnf/internal/workload"
)

// Admission records one pooled admission: the chosen cloudlet and the
// per-slot marginal backup units the request added.
type Admission struct {
	// Request is the request ID; Cloudlet the pool's host.
	Request, Cloudlet int
}

// Result summarizes a pooled-greedy simulation and its dedicated-backup
// comparison metrics.
type Result struct {
	// Revenue, Admitted, Rejected mirror the engine's result.
	Revenue            float64
	Admitted, Rejected int
	// Admissions lists the admitted requests and their cloudlets.
	Admissions []Admission
	// Utilization is the mean used/capacity over all cells.
	Utilization float64
	// BackupUnits is the total backup unit-slots reserved by the pools;
	// DedicatedBackupUnits is what per-request dedicated backups (Eq. 3)
	// would have reserved for the same admissions. The difference is the
	// pooling saving of [12].
	BackupUnits, DedicatedBackupUnits int
}

// AdmissionRate returns admitted / total decisions.
func (r *Result) AdmissionRate() float64 {
	total := r.Admitted + r.Rejected
	if total == 0 {
		return 0
	}
	return float64(r.Admitted) / float64(total)
}

// poolState tracks one (cloudlet, VNF type) pool.
type poolState struct {
	// members holds admitted requests' windows and requirements.
	members []core.Request
	// backups[t-1] is the backup instance count reserved at slot t.
	backups []int
}

// runner holds the mutable state of a pooled-greedy run. Like the other
// engines it is structured as propose/commit: proposal computes a
// candidate admission (cloudlet plus per-slot marginal footprint) without
// mutating anything, and commit reserves the footprint and updates the
// pool — pooled admission is inherently stateful (the marginal backup
// need depends on every earlier member), so the runner does not implement
// core.TwoPhaseScheduler, but the same protocol shape keeps the decision
// logic auditable and side-effect-free.
type runner struct {
	inst   *workload.Instance
	ledger *timeslot.Ledger
	order  []int
	pools  map[[2]int]*poolState
	// backupCache memoizes MinBackups per (cloudlet, vnf, members, maxReq).
	backupCache map[backupKey]int
	result      *Result
}

type backupKey struct {
	cloudlet, vnf, n int
	maxReq           float64
}

func (r *runner) minBackups(cloudlet, vnf, n int, maxReq float64) (int, error) {
	key := backupKey{cloudlet, vnf, n, maxReq}
	if b, ok := r.backupCache[key]; ok {
		return b, nil
	}
	b, err := MinBackups(n, r.inst.Network.Catalog[vnf].Reliability,
		r.inst.Network.Cloudlets[cloudlet].Reliability, maxReq)
	if err != nil {
		return 0, err
	}
	r.backupCache[key] = b
	return b, nil
}

// proposal is a candidate pooled admission: the chosen cloudlet and the
// per-slot marginal units (one primary plus backup growth) it would add.
type proposal struct {
	cloudlet int
	marginal []int
}

// propose finds the most reliable cloudlet whose pool can absorb the
// request, returning its marginal footprint. It mutates nothing (the
// memoization cache aside, which is value-semantics transparent).
func (r *runner) propose(req core.Request) (proposal, bool) {
	demand := r.inst.Network.Catalog[req.VNF].Demand
	for _, j := range r.order {
		cl := r.inst.Network.Cloudlets[j]
		if cl.Reliability <= req.Reliability {
			break // reliability-sorted: all later cloudlets fail too
		}
		ps := r.pools[[2]int{j, req.VNF}]
		// Per-slot marginal footprint: one primary plus the backup
		// growth the pool needs with this member added.
		marginal := make([]int, req.Duration)
		feasible := true
		for t := req.Arrival; t <= req.End() && feasible; t++ {
			n, maxReq := poolLoadAt(ps, t, req)
			needed, err := r.minBackups(j, req.VNF, n, maxReq)
			if err != nil {
				feasible = false
				break
			}
			current := 0
			if ps != nil {
				current = ps.backups[t-1]
			}
			grow := needed - current
			if grow < 0 {
				grow = 0
			}
			units := (1 + grow) * demand
			marginal[t-req.Arrival] = units
			if r.ledger.Residual(j, t) < units {
				feasible = false
			}
		}
		if feasible {
			return proposal{cloudlet: j, marginal: marginal}, true
		}
	}
	return proposal{}, false
}

// commit reserves the proposal's footprint slot by slot and adds the
// request to the pool.
func (r *runner) commit(req core.Request, p proposal) error {
	demand := r.inst.Network.Catalog[req.VNF].Demand
	ps := r.pools[[2]int{p.cloudlet, req.VNF}]
	if ps == nil {
		ps = &poolState{backups: make([]int, r.inst.Horizon)}
		r.pools[[2]int{p.cloudlet, req.VNF}] = ps
	}
	for t := req.Arrival; t <= req.End(); t++ {
		units := p.marginal[t-req.Arrival]
		if err := r.ledger.Reserve(p.cloudlet, t, 1, units); err != nil {
			return fmt.Errorf("pool: reserve request %d slot %d: %w", req.ID, t, err)
		}
		grow := units/demand - 1
		ps.backups[t-1] += grow
		r.result.BackupUnits += grow * demand
	}
	ps.members = append(ps.members, req)
	return nil
}

// Run simulates greedy pooled admission over the instance: requests are
// considered in arrival order and admitted into the most reliable cloudlet
// whose pool (per slot of the window) can absorb them — reserving one
// primary instance plus whatever marginal shared backups the pool's
// reliability math demands. Capacity accounting is per slot because the
// marginal backup need varies over the window.
func Run(inst *workload.Instance) (*Result, error) {
	if inst == nil {
		return nil, fmt.Errorf("%w: nil instance", ErrBadInput)
	}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	caps := make([]int, len(inst.Network.Cloudlets))
	for j, cl := range inst.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, inst.Horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	r := &runner{
		inst:        inst,
		ledger:      ledger,
		order:       cloudletsByReliability(inst.Network),
		pools:       make(map[[2]int]*poolState),
		backupCache: make(map[backupKey]int),
		result:      &Result{},
	}
	result := r.result
	for _, req := range inst.Trace {
		p, ok := r.propose(req)
		if !ok {
			result.Rejected++
			continue
		}
		if err := r.commit(req, p); err != nil {
			return nil, err
		}
		result.Admitted++
		result.Revenue += req.Payment
		result.Admissions = append(result.Admissions, Admission{Request: req.ID, Cloudlet: p.cloudlet})
		// Dedicated comparison: Eq. (3) backups for this request alone.
		demand := inst.Network.Catalog[req.VNF].Demand
		n, err := core.OnsiteInstances(inst.Network.Catalog[req.VNF].Reliability,
			inst.Network.Cloudlets[p.cloudlet].Reliability, req.Reliability)
		if err == nil {
			result.DedicatedBackupUnits += (n - 1) * demand * req.Duration
		}
	}
	result.Utilization = ledger.Utilization()
	if err := verifyPools(inst, r.pools); err != nil {
		return nil, err
	}
	return result, nil
}

// poolLoadAt returns the member count (including the candidate) and the
// strictest requirement among members active at slot t.
func poolLoadAt(ps *poolState, t int, candidate core.Request) (int, float64) {
	n, maxReq := 1, candidate.Reliability
	if ps == nil {
		return n, maxReq
	}
	for _, m := range ps.members {
		if m.Covers(t) {
			n++
			if m.Reliability > maxReq {
				maxReq = m.Reliability
			}
		}
	}
	return n, maxReq
}

// verifyPools audits the final pool states: at every slot of every pool,
// the reserved backups must satisfy every active member's requirement.
func verifyPools(inst *workload.Instance, pools map[[2]int]*poolState) error {
	for key, ps := range pools {
		cloudlet, vnf := key[0], key[1]
		rf := inst.Network.Catalog[vnf].Reliability
		rc := inst.Network.Cloudlets[cloudlet].Reliability
		for t := 1; t <= inst.Horizon; t++ {
			n, maxReq := 0, 0.0
			for _, m := range ps.members {
				if m.Covers(t) {
					n++
					if m.Reliability > maxReq {
						maxReq = m.Reliability
					}
				}
			}
			if n == 0 {
				continue
			}
			s, err := Survival(n, ps.backups[t-1], rf)
			if err != nil {
				return fmt.Errorf("pool: audit cloudlet %d vnf %d slot %d: %w", cloudlet, vnf, t, err)
			}
			if rc*s+1e-9 < maxReq {
				return fmt.Errorf("%w: cloudlet %d vnf %d slot %d: availability %v < %v",
					ErrInfeasible, cloudlet, vnf, t, rc*s, maxReq)
			}
		}
	}
	return nil
}

func cloudletsByReliability(network *core.Network) []int {
	order := make([]int, len(network.Cloudlets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := network.Cloudlets[order[a]].Reliability
		rb := network.Cloudlets[order[b]].Reliability
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}
