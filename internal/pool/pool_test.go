package pool

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"revnf/internal/baseline"
	"revnf/internal/core"
	"revnf/internal/simulate"
	"revnf/internal/workload"
)

func TestSurvivalBasics(t *testing.T) {
	// One member, zero backups: survival = r.
	s, err := Survival(1, 0, 0.9)
	if err != nil {
		t.Fatalf("Survival: %v", err)
	}
	if !core.FloatEqTol(s, 0.9, 1e-12) {
		t.Errorf("Survival(1,0) = %v, want 0.9", s)
	}
	// One member, B backups: survival = 1-(1-r)·P(all backups dead ... )
	// = r + (1-r)·P(L ≥ 1) = 1 - (1-r)·(1-r)^B.
	s, err = Survival(1, 2, 0.9)
	if err != nil {
		t.Fatalf("Survival: %v", err)
	}
	want := 1 - 0.1*math.Pow(0.1, 2)
	if !core.FloatEqTol(s, want, 1e-12) {
		t.Errorf("Survival(1,2) = %v, want %v", s, want)
	}
	// Monotone in backups.
	prev := 0.0
	for b := 0; b <= 6; b++ {
		s, err := Survival(4, b, 0.9)
		if err != nil {
			t.Fatalf("Survival: %v", err)
		}
		if s < prev {
			t.Errorf("Survival not monotone at B=%d: %v < %v", b, s, prev)
		}
		prev = s
	}
}

func TestSurvivalErrors(t *testing.T) {
	if _, err := Survival(0, 1, 0.9); !errors.Is(err, ErrBadInput) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := Survival(1, -1, 0.9); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative backups err = %v", err)
	}
	if _, err := Survival(1, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("r=1 err = %v", err)
	}
}

// Property: the closed-form survival matches Monte-Carlo simulation of the
// pool (fair coverage: a failed primary is served iff live backups cover
// all failures).
func TestSurvivalMatchesMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		n, b int
		r    float64
	}{
		{1, 0, 0.9}, {3, 1, 0.9}, {5, 2, 0.8}, {8, 3, 0.95}, {4, 0, 0.7},
	}
	for _, tc := range cases {
		want, err := Survival(tc.n, tc.b, tc.r)
		if err != nil {
			t.Fatalf("Survival: %v", err)
		}
		const trials = 300000
		survived := 0
		for i := 0; i < trials; i++ {
			ownUp := rng.Float64() < tc.r
			if ownUp {
				survived++
				continue
			}
			failsOthers := 0
			for k := 0; k < tc.n-1; k++ {
				if rng.Float64() >= tc.r {
					failsOthers++
				}
			}
			live := 0
			for k := 0; k < tc.b; k++ {
				if rng.Float64() < tc.r {
					live++
				}
			}
			if live >= failsOthers+1 {
				survived++
			}
		}
		got := float64(survived) / trials
		if math.Abs(got-want) > 0.004 {
			t.Errorf("n=%d b=%d r=%v: closed form %v vs MC %v", tc.n, tc.b, tc.r, want, got)
		}
	}
}

func TestMinBackups(t *testing.T) {
	// Single member degenerates to Eq. (3) minus the primary.
	b, err := MinBackups(1, 0.9, 0.99, 0.9)
	if err != nil {
		t.Fatalf("MinBackups: %v", err)
	}
	n, err := core.OnsiteInstances(0.9, 0.99, 0.9)
	if err != nil {
		t.Fatalf("OnsiteInstances: %v", err)
	}
	if b != n-1 {
		t.Errorf("MinBackups(1) = %d, want N-1 = %d", b, n-1)
	}
	// Pooling beats dedication: B backups shared by 6 members must not
	// exceed 6 dedicated backup sets.
	bPool, err := MinBackups(6, 0.9, 0.99, 0.9)
	if err != nil {
		t.Fatalf("MinBackups: %v", err)
	}
	if bPool > 6*(n-1) {
		t.Errorf("pooled backups %d exceed dedicated %d", bPool, 6*(n-1))
	}
	// Minimality.
	if bPool > 0 {
		s, err := Survival(6, bPool-1, 0.9)
		if err != nil {
			t.Fatalf("Survival: %v", err)
		}
		if 0.99*s >= 0.9+1e-9 {
			t.Errorf("MinBackups not minimal: B-1 already satisfies")
		}
	}
}

func TestMinBackupsErrors(t *testing.T) {
	if _, err := MinBackups(0, 0.9, 0.99, 0.9); !errors.Is(err, ErrBadInput) {
		t.Errorf("n=0 err = %v", err)
	}
	if _, err := MinBackups(1, 0.9, 0.9, 0.95); !errors.Is(err, ErrInfeasible) {
		t.Errorf("rc<req err = %v", err)
	}
	if _, err := MinBackups(1, 0.9, 1.0, 0.9); !errors.Is(err, ErrBadInput) {
		t.Errorf("rc=1 err = %v", err)
	}
}

func poolInstance(t *testing.T, requests int, seed int64) *workload.Instance {
	t.Helper()
	network := &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.9},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.95},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 20, Reliability: 0.999},
			{ID: 1, Node: 1, Capacity: 16, Reliability: 0.99},
			{ID: 2, Node: 2, Capacity: 12, Reliability: 0.985},
		},
	}
	cfg := workload.TraceConfig{
		Requests:       requests,
		Horizon:        20,
		MinDuration:    1,
		MaxDuration:    6,
		MinRequirement: 0.9,
		MaxRequirement: 0.97,
		MaxPaymentRate: 10,
		H:              5,
	}
	trace, err := workload.GenerateTrace(cfg, network.Catalog, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("GenerateTrace: %v", err)
	}
	inst := &workload.Instance{Network: network, Horizon: 20, Trace: trace}
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	return inst
}

func TestRunPooled(t *testing.T) {
	inst := poolInstance(t, 150, 1)
	res, err := Run(inst)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Admitted == 0 {
		t.Fatal("pooled greedy admitted nothing")
	}
	if res.Admitted+res.Rejected != len(inst.Trace) {
		t.Errorf("decisions %d+%d != %d", res.Admitted, res.Rejected, len(inst.Trace))
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("Utilization = %v", res.Utilization)
	}
	if len(res.Admissions) != res.Admitted {
		t.Errorf("Admissions = %d, want %d", len(res.Admissions), res.Admitted)
	}
	// Pooling must use no more backup unit-slots than dedicated backups
	// would for the same admissions.
	if res.BackupUnits > res.DedicatedBackupUnits {
		t.Errorf("pooled backups %d exceed dedicated %d", res.BackupUnits, res.DedicatedBackupUnits)
	}
	if rate := res.AdmissionRate(); rate <= 0 || rate > 1 {
		t.Errorf("AdmissionRate = %v", rate)
	}
}

// Pooling should admit at least as much as the dedicated greedy baseline
// under contention (it spends less capacity per request). We assert the
// weaker, always-true property on revenue parity within the same
// reliability class: pooled admissions never fall below dedicated
// admissions on these instances.
func TestRunPooledBeatsDedicatedGreedy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := poolInstance(t, 200, seed)
		pooled, err := Run(inst)
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		g, err := baseline.NewGreedyOnsite(inst.Network)
		if err != nil {
			t.Fatalf("NewGreedyOnsite: %v", err)
		}
		dedicated, err := simulate.Run(inst, g)
		if err != nil {
			t.Fatalf("seed %d: simulate.Run: %v", seed, err)
		}
		if pooled.Admitted < dedicated.Admitted {
			t.Errorf("seed %d: pooled admitted %d < dedicated %d",
				seed, pooled.Admitted, dedicated.Admitted)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil instance err = %v", err)
	}
	inst := poolInstance(t, 5, 1)
	inst.Horizon = 0
	if _, err := Run(inst); !errors.Is(err, ErrBadInput) {
		t.Errorf("invalid instance err = %v", err)
	}
}

func TestBinomialUnderflowPath(t *testing.T) {
	// A large backup pool with high instance reliability makes the live
	// count's pmf[0] = (1-r)^B underflow, forcing the log-space fallback.
	s, err := Survival(2, 300, 0.999)
	if err != nil {
		t.Fatalf("Survival: %v", err)
	}
	if s <= 0.999 || s > 1 {
		t.Errorf("Survival(2,300,0.999) = %v", s)
	}
}

func TestResultAdmissionRateEmpty(t *testing.T) {
	r := &Result{}
	if r.AdmissionRate() != 0 {
		t.Errorf("empty AdmissionRate = %v", r.AdmissionRate())
	}
}
