// Package baseline provides the comparison schedulers of the paper's
// evaluation, plus simple extra baselines used in ablations. The paper's
// greedy benchmark "always tries to admit all coming requests by
// preferring to place VNF instances in cloudlets with high reliabilities"
// (Section VI-A); it never reasons about opportunity cost, which is
// exactly what the primal-dual algorithms add.
//
// Every baseline implements core.TwoPhaseScheduler. Their Propose methods
// are pure functions of (request, capacity view) — no dual prices, no
// learned state — so Commit and Abort are no-ops and concurrent Propose is
// trivially safe. The one exception is RandomOnsite, whose RNG draw is
// guarded by a mutex: concurrent proposals stay race-free, though the
// chosen cloudlet then depends on goroutine interleaving (serial driving
// remains deterministic).
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"revnf/internal/core"
	"revnf/internal/trace"
)

// Errors returned by constructors.
var (
	ErrBadNetwork = errors.New("baseline: invalid network")
)

// options collects optional constructor configuration shared by every
// baseline scheduler.
type options struct {
	rec trace.Recorder
}

// Option configures a baseline scheduler.
type Option func(*options)

// WithRecorder injects the decision-trace sink Propose emits into. A nil
// recorder keeps the no-op default. Tracing never changes decisions.
func WithRecorder(r trace.Recorder) Option {
	return func(o *options) {
		if r != nil {
			o.rec = r
		}
	}
}

// applyOptions folds opts over the defaults.
func applyOptions(opts []Option) options {
	o := options{rec: trace.Nop}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// GreedyOnsite admits every request it can, choosing the most reliable
// cloudlet with sufficient residual capacity (on-site scheme).
type GreedyOnsite struct {
	network *core.Network
	rel     *core.ReliabilityTable
	// order is the cloudlet IDs sorted by reliability descending.
	order []int
	rec   trace.Recorder
}

// NewGreedyOnsite creates the paper's greedy on-site baseline.
func NewGreedyOnsite(network *core.Network, opts ...Option) (*GreedyOnsite, error) {
	rel, err := buildTable(network)
	if err != nil {
		return nil, err
	}
	o := applyOptions(opts)
	return &GreedyOnsite{network: network, rel: rel, order: byReliability(network), rec: o.rec}, nil
}

// Name implements core.Scheduler.
func (g *GreedyOnsite) Name() string { return "greedy-onsite" }

// Scheme implements core.Scheduler.
func (g *GreedyOnsite) Scheme() core.Scheme { return core.OnSite }

// Decide implements core.Scheduler.
func (g *GreedyOnsite) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	return g.Propose(req, view)
}

// Propose implements core.TwoPhaseScheduler; it is a pure function of the
// request and the view.
func (g *GreedyOnsite) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := g.rec.Sample(req.ID)
	var cands []trace.Candidate
	vnf := g.network.Catalog[req.VNF]
	for _, j := range g.order {
		n, ok := g.rel.OnsiteInstancesOK(req.VNF, j, req.Reliability)
		if !ok {
			// Cloudlets are reliability-sorted: all later ones fail too.
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Skip: trace.SkipReliability})
			}
			break
		}
		resid := view.ResidualWindow(j, req.Arrival, req.Duration)
		if resid < n*vnf.Demand {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
					Residual: resid, Skip: trace.SkipCapacity})
			}
			continue
		}
		if tracing {
			cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
				Residual: resid, Chosen: true})
			recordBaseline(g.rec, req, g.Name(), core.OnSite, cands, j,
				[]core.Assignment{{Cloudlet: j, Instances: n}}, trace.ReasonAdmitted)
		}
		return core.Placement{
			Request:     req.ID,
			Scheme:      core.OnSite,
			Assignments: []core.Assignment{{Cloudlet: j, Instances: n}},
		}, true
	}
	if tracing {
		recordBaseline(g.rec, req, g.Name(), core.OnSite, cands, -1, nil,
			trace.ReasonNoFeasibleCloudlet)
	}
	return core.Placement{}, false
}

// Commit implements core.TwoPhaseScheduler (no scheduler state).
func (g *GreedyOnsite) Commit(core.Request, core.Placement) {}

// Abort implements core.TwoPhaseScheduler (no scheduler state).
func (g *GreedyOnsite) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler.
func (g *GreedyOnsite) ConcurrentPropose() bool { return true }

// GreedyOffsite admits every request it can, accumulating the most
// reliable cloudlets with space until the reliability requirement is met
// (off-site scheme).
type GreedyOffsite struct {
	network *core.Network
	rel     *core.ReliabilityTable
	order   []int
	rec     trace.Recorder
}

// NewGreedyOffsite creates the paper's greedy off-site baseline.
func NewGreedyOffsite(network *core.Network, opts ...Option) (*GreedyOffsite, error) {
	rel, err := buildTable(network)
	if err != nil {
		return nil, err
	}
	o := applyOptions(opts)
	return &GreedyOffsite{network: network, rel: rel, order: byReliability(network), rec: o.rec}, nil
}

// Name implements core.Scheduler.
func (g *GreedyOffsite) Name() string { return "greedy-offsite" }

// Scheme implements core.Scheduler.
func (g *GreedyOffsite) Scheme() core.Scheme { return core.OffSite }

// Decide implements core.Scheduler.
func (g *GreedyOffsite) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	return g.Propose(req, view)
}

// Propose implements core.TwoPhaseScheduler; it is a pure function of the
// request and the view.
func (g *GreedyOffsite) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := g.rec.Sample(req.ID)
	var cands []trace.Candidate
	vnf := g.network.Catalog[req.VNF]
	needWeight := core.RequirementWeight(req.Reliability)
	totalWeight := 0.0
	var assignments []core.Assignment
	for _, j := range g.order {
		resid := view.ResidualWindow(j, req.Arrival, req.Duration)
		if resid < vnf.Demand {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j,
					Weight: g.rel.OffsiteWeight(req.VNF, j), Residual: resid,
					Skip: trace.SkipCapacity})
			}
			continue
		}
		assignments = append(assignments, core.Assignment{Cloudlet: j, Instances: 1})
		totalWeight += g.rel.OffsiteWeight(req.VNF, j)
		if tracing {
			cands = append(cands, trace.Candidate{Cloudlet: j, Instances: 1,
				Weight: g.rel.OffsiteWeight(req.VNF, j), Residual: resid, Chosen: true})
		}
		if core.WeightsSatisfy(totalWeight, needWeight) {
			if tracing {
				recordWeighted(g.rec, req, g.Name(), cands, assignments[0].Cloudlet,
					assignments, needWeight, totalWeight, trace.ReasonAdmitted)
			}
			return core.Placement{Request: req.ID, Scheme: core.OffSite, Assignments: assignments}, true
		}
	}
	if tracing {
		reason := trace.ReasonInsufficientWeight
		best := -1
		if len(assignments) == 0 {
			reason = trace.ReasonNoFeasibleCloudlet
		} else {
			best = assignments[0].Cloudlet
		}
		recordWeighted(g.rec, req, g.Name(), cands, best, nil, needWeight, totalWeight, reason)
	}
	return core.Placement{}, false
}

// Commit implements core.TwoPhaseScheduler (no scheduler state).
func (g *GreedyOffsite) Commit(core.Request, core.Placement) {}

// Abort implements core.TwoPhaseScheduler (no scheduler state).
func (g *GreedyOffsite) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler.
func (g *GreedyOffsite) ConcurrentPropose() bool { return true }

// FirstFitOnsite places each request in the lowest-ID feasible cloudlet.
// It ignores reliability ordering entirely and serves as an ablation
// baseline isolating the value of reliability awareness.
type FirstFitOnsite struct {
	network *core.Network
	rel     *core.ReliabilityTable
	rec     trace.Recorder
}

// NewFirstFitOnsite creates the first-fit baseline.
func NewFirstFitOnsite(network *core.Network, opts ...Option) (*FirstFitOnsite, error) {
	rel, err := buildTable(network)
	if err != nil {
		return nil, err
	}
	o := applyOptions(opts)
	return &FirstFitOnsite{network: network, rel: rel, rec: o.rec}, nil
}

// Name implements core.Scheduler.
func (f *FirstFitOnsite) Name() string { return "firstfit-onsite" }

// Scheme implements core.Scheduler.
func (f *FirstFitOnsite) Scheme() core.Scheme { return core.OnSite }

// Decide implements core.Scheduler.
func (f *FirstFitOnsite) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	return f.Propose(req, view)
}

// Propose implements core.TwoPhaseScheduler; it is a pure function of the
// request and the view.
func (f *FirstFitOnsite) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := f.rec.Sample(req.ID)
	var cands []trace.Candidate
	vnf := f.network.Catalog[req.VNF]
	for j := range f.network.Cloudlets {
		n, ok := f.rel.OnsiteInstancesOK(req.VNF, j, req.Reliability)
		if !ok {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Skip: trace.SkipReliability})
			}
			continue
		}
		resid := view.ResidualWindow(j, req.Arrival, req.Duration)
		if resid < n*vnf.Demand {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
					Residual: resid, Skip: trace.SkipCapacity})
			}
			continue
		}
		if tracing {
			cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
				Residual: resid, Chosen: true})
			recordBaseline(f.rec, req, f.Name(), core.OnSite, cands, j,
				[]core.Assignment{{Cloudlet: j, Instances: n}}, trace.ReasonAdmitted)
		}
		return core.Placement{
			Request:     req.ID,
			Scheme:      core.OnSite,
			Assignments: []core.Assignment{{Cloudlet: j, Instances: n}},
		}, true
	}
	if tracing {
		recordBaseline(f.rec, req, f.Name(), core.OnSite, cands, -1, nil,
			trace.ReasonNoFeasibleCloudlet)
	}
	return core.Placement{}, false
}

// Commit implements core.TwoPhaseScheduler (no scheduler state).
func (f *FirstFitOnsite) Commit(core.Request, core.Placement) {}

// Abort implements core.TwoPhaseScheduler (no scheduler state).
func (f *FirstFitOnsite) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler.
func (f *FirstFitOnsite) ConcurrentPropose() bool { return true }

// RandomOnsite places each request in a uniformly random feasible
// cloudlet. It lower-bounds what any sensible on-site policy should earn.
type RandomOnsite struct {
	network *core.Network
	rel     *core.ReliabilityTable
	// mu keeps a misused concurrent Propose race-free, but the scheduler
	// still reports ConcurrentPropose() == false: an interleaving-dependent
	// draw order would break the seeded reproducibility the injected RNG
	// exists to provide.
	mu  sync.Mutex
	rng *rand.Rand
	rec trace.Recorder
}

// NewRandomOnsite creates the random baseline with an injected RNG for
// reproducibility.
func NewRandomOnsite(network *core.Network, rng *rand.Rand, opts ...Option) (*RandomOnsite, error) {
	rel, err := buildTable(network)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: nil RNG", ErrBadNetwork)
	}
	o := applyOptions(opts)
	return &RandomOnsite{network: network, rel: rel, rng: rng, rec: o.rec}, nil
}

// Name implements core.Scheduler.
func (r *RandomOnsite) Name() string { return "random-onsite" }

// Scheme implements core.Scheduler.
func (r *RandomOnsite) Scheme() core.Scheme { return core.OnSite }

// Decide implements core.Scheduler.
func (r *RandomOnsite) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	return r.Propose(req, view)
}

// Propose implements core.TwoPhaseScheduler. The RNG draw happens under
// the scheduler's mutex; everything else is pure.
func (r *RandomOnsite) Propose(req core.Request, view core.CapacityView) (core.Placement, bool) {
	tracing := r.rec.Sample(req.ID)
	var cands []trace.Candidate
	vnf := r.network.Catalog[req.VNF]
	type option struct{ cloudlet, instances int }
	var choices []option
	for j := range r.network.Cloudlets {
		n, ok := r.rel.OnsiteInstancesOK(req.VNF, j, req.Reliability)
		if !ok {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Skip: trace.SkipReliability})
			}
			continue
		}
		resid := view.ResidualWindow(j, req.Arrival, req.Duration)
		if resid < n*vnf.Demand {
			if tracing {
				cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n,
					Residual: resid, Skip: trace.SkipCapacity})
			}
			continue
		}
		choices = append(choices, option{cloudlet: j, instances: n})
		if tracing {
			cands = append(cands, trace.Candidate{Cloudlet: j, Instances: n, Residual: resid})
		}
	}
	if len(choices) == 0 {
		if tracing {
			recordBaseline(r.rec, req, r.Name(), core.OnSite, cands, -1, nil,
				trace.ReasonNoFeasibleCloudlet)
		}
		return core.Placement{}, false
	}
	r.mu.Lock()
	pick := choices[r.rng.Intn(len(choices))]
	r.mu.Unlock()
	if tracing {
		for i := range cands {
			if cands[i].Cloudlet == pick.cloudlet {
				cands[i].Chosen = true
			}
		}
		recordBaseline(r.rec, req, r.Name(), core.OnSite, cands, pick.cloudlet,
			[]core.Assignment{{Cloudlet: pick.cloudlet, Instances: pick.instances}},
			trace.ReasonAdmitted)
	}
	return core.Placement{
		Request:     req.ID,
		Scheme:      core.OnSite,
		Assignments: []core.Assignment{{Cloudlet: pick.cloudlet, Instances: pick.instances}},
	}, true
}

// Commit implements core.TwoPhaseScheduler (no scheduler state).
func (r *RandomOnsite) Commit(core.Request, core.Placement) {}

// Abort implements core.TwoPhaseScheduler (no scheduler state).
func (r *RandomOnsite) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler. The draw order of
// the shared RNG is part of the observable behaviour (a seed must
// reproduce a trace), so proposals may not interleave.
func (r *RandomOnsite) ConcurrentPropose() bool { return false }

// RejectAll rejects everything; it anchors the revenue floor in sanity
// checks.
type RejectAll struct {
	scheme core.Scheme
}

// NewRejectAll creates the reject-everything baseline for the scheme.
func NewRejectAll(scheme core.Scheme) (*RejectAll, error) {
	if !scheme.Valid() {
		return nil, fmt.Errorf("%w: scheme %d", ErrBadNetwork, int(scheme))
	}
	return &RejectAll{scheme: scheme}, nil
}

// Name implements core.Scheduler.
func (r *RejectAll) Name() string { return "reject-all" }

// Scheme implements core.Scheduler.
func (r *RejectAll) Scheme() core.Scheme { return r.scheme }

// Decide implements core.Scheduler.
func (r *RejectAll) Decide(core.Request, core.CapacityView) (core.Placement, bool) {
	return core.Placement{}, false
}

// Propose implements core.TwoPhaseScheduler.
func (r *RejectAll) Propose(core.Request, core.CapacityView) (core.Placement, bool) {
	return core.Placement{}, false
}

// Commit implements core.TwoPhaseScheduler (no scheduler state).
func (r *RejectAll) Commit(core.Request, core.Placement) {}

// Abort implements core.TwoPhaseScheduler (no scheduler state).
func (r *RejectAll) Abort(core.Request, core.Placement) {}

// ConcurrentPropose implements core.TwoPhaseScheduler.
func (r *RejectAll) ConcurrentPropose() bool { return true }

// recordBaseline emits one single-attempt decision trace for a baseline
// scheduler. Baselines carry no dual prices, so BestCost stays zero; the
// reason ReasonAdmitted marks an admit (the attempt's Reason field is left
// empty then, matching the primal-dual schedulers).
func recordBaseline(rec trace.Recorder, req core.Request, name string,
	scheme core.Scheme, cands []trace.Candidate, best int,
	assignments []core.Assignment, reason trace.Reason) {
	admit := reason == trace.ReasonAdmitted
	pt := trace.ProposeTrace{
		Scheduler:    name,
		Scheme:       scheme.String(),
		Candidates:   cands,
		BestCloudlet: best,
		Payment:      req.Payment,
		Admit:        admit,
	}
	if !admit {
		pt.Reason = reason
	}
	dt := trace.NewDecision(req, name, scheme.String())
	dt.Attempts = []trace.ProposeTrace{pt}
	dt.Assignments = assignments
	rec.Record(dt)
}

// recordWeighted is recordBaseline for the off-site weight-accumulation
// baselines, carrying the weight target and the weight reached.
func recordWeighted(rec trace.Recorder, req core.Request, name string,
	cands []trace.Candidate, best int, assignments []core.Assignment,
	needWeight, totalWeight float64, reason trace.Reason) {
	admit := reason == trace.ReasonAdmitted
	pt := trace.ProposeTrace{
		Scheduler:    name,
		Scheme:       core.OffSite.String(),
		Candidates:   cands,
		BestCloudlet: best,
		NeedWeight:   needWeight,
		TotalWeight:  totalWeight,
		Payment:      req.Payment,
		Admit:        admit,
	}
	if !admit {
		pt.Reason = reason
	}
	dt := trace.NewDecision(req, name, core.OffSite.String())
	dt.Attempts = []trace.ProposeTrace{pt}
	dt.Assignments = assignments
	rec.Record(dt)
}

func validate(network *core.Network) error {
	if network == nil {
		return fmt.Errorf("%w: nil", ErrBadNetwork)
	}
	if err := network.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	return nil
}

// buildTable validates the network and precomputes its reliability table.
func buildTable(network *core.Network) (*core.ReliabilityTable, error) {
	if err := validate(network); err != nil {
		return nil, err
	}
	rel, err := core.NewReliabilityTable(network)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadNetwork, err)
	}
	return rel, nil
}

// byReliability returns cloudlet IDs ordered by reliability descending,
// ties by ascending ID.
func byReliability(network *core.Network) []int {
	order := make([]int, len(network.Cloudlets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := network.Cloudlets[order[a]].Reliability
		rb := network.Cloudlets[order[b]].Reliability
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	return order
}
