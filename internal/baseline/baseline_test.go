package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"revnf/internal/core"
	"revnf/internal/timeslot"
)

func testNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{
			{ID: 0, Name: "fw", Demand: 1, Reliability: 0.95},
			{ID: 1, Name: "ids", Demand: 2, Reliability: 0.9},
		},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: 0, Capacity: 10, Reliability: 0.97},
			{ID: 1, Node: 1, Capacity: 10, Reliability: 0.999},
			{ID: 2, Node: 2, Capacity: 10, Reliability: 0.95},
		},
	}
}

func newLedger(t *testing.T, n *core.Network, horizon int) *timeslot.Ledger {
	t.Helper()
	caps := make([]int, len(n.Cloudlets))
	for j, c := range n.Cloudlets {
		caps[j] = c.Capacity
	}
	l, err := timeslot.New(caps, horizon)
	if err != nil {
		t.Fatalf("timeslot.New: %v", err)
	}
	return l
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewGreedyOnsite(nil); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("NewGreedyOnsite(nil) err = %v", err)
	}
	if _, err := NewGreedyOffsite(nil); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("NewGreedyOffsite(nil) err = %v", err)
	}
	if _, err := NewFirstFitOnsite(nil); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("NewFirstFitOnsite(nil) err = %v", err)
	}
	if _, err := NewRandomOnsite(testNetwork(), nil); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("NewRandomOnsite(nil rng) err = %v", err)
	}
	if _, err := NewRejectAll(core.Scheme(9)); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("NewRejectAll(bad) err = %v", err)
	}
	bad := testNetwork()
	bad.Cloudlets = nil
	if _, err := NewGreedyOnsite(bad); !errors.Is(err, ErrBadNetwork) {
		t.Errorf("invalid network err = %v", err)
	}
}

func TestGreedyOnsitePrefersReliability(t *testing.T) {
	n := testNetwork()
	g, err := NewGreedyOnsite(n)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	if g.Name() != "greedy-onsite" || g.Scheme() != core.OnSite {
		t.Errorf("identity = %q/%v", g.Name(), g.Scheme())
	}
	view := newLedger(t, n, 5)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	p, ok := g.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if p.Assignments[0].Cloudlet != 1 {
		t.Errorf("chose cloudlet %d, want most reliable 1", p.Assignments[0].Cloudlet)
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
}

func TestGreedyOnsiteFallsBackWhenFull(t *testing.T) {
	n := testNetwork()
	g, err := NewGreedyOnsite(n)
	if err != nil {
		t.Fatalf("NewGreedyOnsite: %v", err)
	}
	view := newLedger(t, n, 5)
	if err := view.Reserve(1, 1, 5, 10); err != nil { // fill best cloudlet
		t.Fatalf("Reserve: %v", err)
	}
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	p, ok := g.Decide(req, view)
	if !ok {
		t.Fatal("rejected despite space elsewhere")
	}
	if p.Assignments[0].Cloudlet != 0 {
		t.Errorf("chose cloudlet %d, want next-most-reliable 0", p.Assignments[0].Cloudlet)
	}
}

func TestGreedyOnsiteRejects(t *testing.T) {
	n := testNetwork()
	g, _ := NewGreedyOnsite(n)
	view := newLedger(t, n, 5)
	// Unattainable requirement.
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9999, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := g.Decide(req, view); ok {
		t.Error("unattainable requirement admitted")
	}
	// Full network.
	for j := 0; j < 3; j++ {
		if err := view.Reserve(j, 1, 5, 10); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	req = core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := g.Decide(req, view); ok {
		t.Error("admitted into full network")
	}
}

func TestGreedyOffsite(t *testing.T) {
	n := testNetwork()
	g, err := NewGreedyOffsite(n)
	if err != nil {
		t.Fatalf("NewGreedyOffsite: %v", err)
	}
	if g.Name() != "greedy-offsite" || g.Scheme() != core.OffSite {
		t.Errorf("identity = %q/%v", g.Name(), g.Scheme())
	}
	view := newLedger(t, n, 5)
	// Require two cloudlets: best single is 0.95·0.999 ≈ 0.949.
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.99, Arrival: 1, Duration: 2, Payment: 5}
	p, ok := g.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if err := p.Validate(n, req); err != nil {
		t.Fatalf("placement invalid: %v", err)
	}
	// Must start from the most reliable cloudlet (ID 1).
	if p.Assignments[0].Cloudlet != 1 {
		t.Errorf("first assignment in cloudlet %d, want 1", p.Assignments[0].Cloudlet)
	}
}

func TestGreedyOffsiteRejectsUnattainable(t *testing.T) {
	n := testNetwork()
	g, _ := NewGreedyOffsite(n)
	view := newLedger(t, n, 5)
	all := core.OffsiteReliability(0.95, []float64{0.97, 0.999, 0.95})
	req := core.Request{ID: 0, VNF: 0, Reliability: all + (1-all)/2, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := g.Decide(req, view); ok {
		t.Error("unattainable requirement admitted")
	}
}

func TestFirstFitOnsite(t *testing.T) {
	n := testNetwork()
	f, err := NewFirstFitOnsite(n)
	if err != nil {
		t.Fatalf("NewFirstFitOnsite: %v", err)
	}
	if f.Name() != "firstfit-onsite" || f.Scheme() != core.OnSite {
		t.Errorf("identity = %q/%v", f.Name(), f.Scheme())
	}
	view := newLedger(t, n, 5)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 2, Payment: 5}
	p, ok := f.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if p.Assignments[0].Cloudlet != 0 {
		t.Errorf("chose cloudlet %d, want lowest-ID 0", p.Assignments[0].Cloudlet)
	}
	// Requirement above cloudlet 0's reliability (0.97) but below
	// cloudlet 1's: first-fit must skip to cloudlet 1.
	req = core.Request{ID: 1, VNF: 0, Reliability: 0.98, Arrival: 1, Duration: 2, Payment: 5}
	p, ok = f.Decide(req, view)
	if !ok {
		t.Fatal("rejected")
	}
	if p.Assignments[0].Cloudlet != 1 {
		t.Errorf("chose cloudlet %d, want 1", p.Assignments[0].Cloudlet)
	}
}

func TestRandomOnsite(t *testing.T) {
	n := testNetwork()
	r, err := NewRandomOnsite(n, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("NewRandomOnsite: %v", err)
	}
	if r.Name() != "random-onsite" || r.Scheme() != core.OnSite {
		t.Errorf("identity = %q/%v", r.Name(), r.Scheme())
	}
	view := newLedger(t, n, 5)
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		req := core.Request{ID: i, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
		p, ok := r.Decide(req, view)
		if !ok {
			continue
		}
		if err := p.Validate(n, req); err != nil {
			t.Fatalf("placement invalid: %v", err)
		}
		seen[p.Assignments[0].Cloudlet] = true
	}
	if len(seen) < 2 {
		t.Errorf("random placement only ever used cloudlets %v", seen)
	}
	// Rejects when nothing is feasible.
	full := newLedger(t, n, 1)
	for j := 0; j < 3; j++ {
		if err := full.Reserve(j, 1, 1, 10); err != nil {
			t.Fatalf("Reserve: %v", err)
		}
	}
	req := core.Request{ID: 99, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := r.Decide(req, full); ok {
		t.Error("admitted into full network")
	}
}

func TestRejectAll(t *testing.T) {
	r, err := NewRejectAll(core.OnSite)
	if err != nil {
		t.Fatalf("NewRejectAll: %v", err)
	}
	if r.Name() != "reject-all" || r.Scheme() != core.OnSite {
		t.Errorf("identity = %q/%v", r.Name(), r.Scheme())
	}
	view := newLedger(t, testNetwork(), 5)
	req := core.Request{ID: 0, VNF: 0, Reliability: 0.9, Arrival: 1, Duration: 1, Payment: 5}
	if _, ok := r.Decide(req, view); ok {
		t.Error("RejectAll admitted a request")
	}
}
