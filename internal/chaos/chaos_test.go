package chaos

import (
	"math"
	"reflect"
	"testing"

	"revnf/internal/core"
)

func chaosNetwork() *core.Network {
	return &core.Network{
		Catalog: []core.VNF{{ID: 0, Name: "fw", Demand: 2, Reliability: 0.8}},
		Cloudlets: []core.Cloudlet{
			{ID: 0, Node: -1, Capacity: 10, Reliability: 0.99},
			{ID: 1, Node: -1, Capacity: 10, Reliability: 0.95},
		},
	}
}

func chaosConfig(seed int64) Config {
	return Config{Network: chaosNetwork(), CloudletMTTR: 3, InstanceMTTR: 2, Seed: seed}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil network", Config{CloudletMTTR: 2, InstanceMTTR: 2}},
		{"bad mttr", Config{Network: chaosNetwork(), CloudletMTTR: 0.5, InstanceMTTR: 2}},
		{"rate count", Config{Network: chaosNetwork(), CloudletMTTR: 2, InstanceMTTR: 2, CloudletRates: []float64{0.9}}},
		{"rate range", Config{Network: chaosNetwork(), CloudletMTTR: 2, InstanceMTTR: 2, CloudletRates: []float64{0.9, 1.0}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	if _, err := New(chaosConfig(1)); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestTrueRateFollowsOverrides(t *testing.T) {
	cfg := chaosConfig(1)
	cfg.CloudletRates = []float64{0.9, 0.85}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.TrueRate(0); got != 0.9 {
		t.Errorf("TrueRate(0) = %v, want override 0.9", got)
	}
	if got := in.TrueRate(1); got != 0.85 {
		t.Errorf("TrueRate(1) = %v, want override 0.85", got)
	}
	if got := in.TrueRate(2); got != 0 {
		t.Errorf("TrueRate(2) = %v, want 0 out of range", got)
	}
	// Saturated chain: TrueRate reports the realized rate, not the target.
	sat := chaosConfig(1)
	sat.CloudletMTTR = 4
	sat.CloudletRates = []float64{0.1, 0.1}
	in, err = New(sat)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := in.TrueRate(0), 1.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("saturated TrueRate = %v, want %v", got, want)
	}
}

// TestStepDeterministicBySeed replays the same watch sequence through two
// injectors with the same seed and demands identical reports, while a
// different seed must diverge.
func TestStepDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []StepReport {
		in, err := New(chaosConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		in.Watch(10, 0, 0, 49, []core.Assignment{{Cloudlet: 0, Instances: 2}})
		var out []StepReport
		for slot := 0; slot < 50; slot++ {
			if slot == 10 {
				in.Watch(11, 0, 10, 39, []core.Assignment{{Cloudlet: 1, Instances: 3}})
			}
			if slot == 30 {
				in.Unwatch(11)
			}
			out = append(out, in.Step(slot))
		}
		return out
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced diverging reports")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestCloudletTimelineIndependentOfChurn pins the stream split: the
// cloudlet timeline is a function of the seed alone, whatever placements
// come and go.
func TestCloudletTimelineIndependentOfChurn(t *testing.T) {
	const slots = 200
	quiet, err := New(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	busy, err := New(chaosConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < slots; slot++ {
		if slot%5 == 0 {
			busy.Watch(slot, 0, slot, slot+3, []core.Assignment{{Cloudlet: slot % 2, Instances: 2}})
		}
		if slot%7 == 0 {
			busy.Unwatch(slot - 7)
		}
		q, b := quiet.Step(slot), busy.Step(slot)
		if !reflect.DeepEqual(q.CloudletUp, b.CloudletUp) {
			t.Fatalf("slot %d: cloudlet timeline diverged under churn: %v vs %v", slot, q.CloudletUp, b.CloudletUp)
		}
	}
}

func TestStepWindowAndFootprint(t *testing.T) {
	in, err := New(chaosConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	in.Watch(5, 0, 2, 4, []core.Assignment{{Cloudlet: 1, Instances: 1}, {Cloudlet: 0, Instances: 2}})
	for slot := 0; slot < 8; slot++ {
		rep := in.Step(slot)
		inWindow := slot >= 2 && slot <= 4
		if got := len(rep.Placements) == 1; got != inWindow {
			t.Fatalf("slot %d: reported=%v, want in-window=%v", slot, len(rep.Placements) == 1, inWindow)
		}
		if !inWindow {
			continue
		}
		ph := rep.Placements[0]
		if ph.ID != 5 || ph.TotalInstances != 3 {
			t.Fatalf("slot %d: health = %+v", slot, ph)
		}
		sum := 0
		for i, a := range ph.Alive {
			sum += a.Instances
			if i > 0 && ph.Alive[i-1].Cloudlet >= a.Cloudlet {
				t.Fatalf("Alive not ascending by cloudlet: %+v", ph.Alive)
			}
		}
		if sum != ph.AliveInstances {
			t.Fatalf("Alive sums to %d, AliveInstances %d", sum, ph.AliveInstances)
		}
		if ph.Up != (ph.AliveInstances > 0) {
			t.Fatalf("Up inconsistent with AliveInstances: %+v", ph)
		}
	}
}

// TestRewatchStartsUp: after a repair, the replacement instances begin in
// the up state, so with its cloudlet up the placement is alive in the
// repairing slot.
func TestRewatchStartsUp(t *testing.T) {
	cfg := chaosConfig(9)
	// Near-perfect cloudlets and instances so the only question is the
	// pinned initial state.
	cfg.CloudletRates = []float64{0.9999, 0.9999}
	cfg.Network.Catalog[0].Reliability = 0.9999
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in.Watch(1, 0, 0, 99, []core.Assignment{{Cloudlet: 0, Instances: 1}})
	in.Rewatch(1, []core.Assignment{{Cloudlet: 1, Instances: 2}})
	rep := in.Step(0)
	if len(rep.Placements) != 1 {
		t.Fatal("placement missing from report")
	}
	ph := rep.Placements[0]
	if !ph.Up || ph.AliveInstances != 2 || ph.TotalInstances != 2 {
		t.Fatalf("rewatched placement not fully up: %+v", ph)
	}
	if len(ph.Alive) != 1 || ph.Alive[0].Cloudlet != 1 {
		t.Fatalf("footprint did not move to cloudlet 1: %+v", ph.Alive)
	}
	// Rewatch of an unknown ID is a no-op.
	in.Rewatch(99, []core.Assignment{{Cloudlet: 0, Instances: 1}})
}

// TestEmpiricalCloudletRate checks the injected cloudlet timeline realizes
// its stationary rate.
func TestEmpiricalCloudletRate(t *testing.T) {
	cfg := chaosConfig(11)
	cfg.CloudletRates = []float64{0.95, 0.9}
	in, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 30000
	up := make([]int, in.Cloudlets())
	for slot := 0; slot < slots; slot++ {
		rep := in.Step(slot)
		for j, u := range rep.CloudletUp {
			if u {
				up[j]++
			}
		}
	}
	for j := range up {
		got := float64(up[j]) / slots
		want := in.TrueRate(j)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("cloudlet %d empirical rate %v, want %v ± 0.01", j, got, want)
		}
	}
}
