// Package chaos injects deterministic, seeded failures into a running
// admission engine, using the same two-state Markov failure-timeline
// model the batch simulator replays (internal/simulate): cloudlets crash
// and recover with a configured MTTR, and every placed VNF instance
// fails and recovers independently on top of its cloudlet.
//
// The injector is clocked by the serve engine's slot clock: the engine
// calls Step once per Tick, so injection works identically in real-time
// mode (the wall-clock slot ticker) and in the manual-clock mode the
// hermetic soak tests use. Determinism comes from two dedicated seeded
// RNG streams: cloudlet chains draw from one stream in cloudlet order,
// instance chains from another in (placement ID, instance) order, so the
// cloudlet failure timeline is a pure function of the seed regardless of
// which placements happen to be admitted.
//
// The injector holds no locks: every method is called under the serve
// engine's mutex (Watch/Rewatch/Unwatch from admission bookkeeping, Step
// from Tick), which serializes all access.
package chaos

import (
	"fmt"
	"math/rand"

	"revnf/internal/core"
	"revnf/internal/simulate"
)

// Config assembles an Injector.
type Config struct {
	// Network supplies the cloudlet fleet and the VNF catalog whose
	// reliabilities parameterize the failure chains.
	Network *core.Network
	// CloudletMTTR and InstanceMTTR are mean repair times in slots (≥ 1),
	// as in simulate.TimelineConfig.
	CloudletMTTR, InstanceMTTR float64
	// CloudletRates optionally overrides the catalog r(c_j) with the
	// injector's true availability rates — the daemon then provisions
	// against catalog values while failures follow these, which is the
	// scenario the online estimator exists for. Nil uses catalog values;
	// otherwise the length must match the cloudlet count and every rate
	// must lie in (0,1).
	CloudletRates []float64
	// Seed derives the injector's two RNG streams.
	Seed int64
}

// Injector drives the failure model against a live set of placements.
type Injector struct {
	network  *core.Network
	cfg      Config
	cloudlet []*simulate.Markov
	rates    []float64 // the true cloudlet rates the chains run on
	instRng  *rand.Rand
	watched  map[int]*watched
	order    []int // watched IDs, ascending; nil when stale
}

// watched is one admitted placement's live instance set.
type watched struct {
	id, vnf      int
	arrival, end int
	instances    []instance
}

type instance struct {
	cloudlet int
	chain    *simulate.Markov
}

// New validates the config and builds the injector with every cloudlet
// chain initialized from its stationary distribution.
func New(cfg Config) (*Injector, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("chaos: nil network")
	}
	if err := cfg.Network.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %v", err)
	}
	if err := (simulate.TimelineConfig{CloudletMTTR: cfg.CloudletMTTR, InstanceMTTR: cfg.InstanceMTTR}).Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %v", err)
	}
	rates := make([]float64, len(cfg.Network.Cloudlets))
	for j, cl := range cfg.Network.Cloudlets {
		rates[j] = cl.Reliability
	}
	if cfg.CloudletRates != nil {
		if len(cfg.CloudletRates) != len(rates) {
			return nil, fmt.Errorf("chaos: %d rate overrides for %d cloudlets", len(cfg.CloudletRates), len(rates))
		}
		for j, r := range cfg.CloudletRates {
			if r <= 0 || r >= 1 {
				return nil, fmt.Errorf("chaos: cloudlet %d rate %v outside (0,1)", j, r)
			}
			rates[j] = r
		}
	}
	// Two independent streams: cloudlet chains must consume the same draw
	// sequence whatever placements exist, so the cloudlet timeline (and
	// with it the estimator's convergence target) is fixed by the seed.
	cloudletRng := rand.New(rand.NewSource(cfg.Seed))
	in := &Injector{
		network:  cfg.Network,
		cfg:      cfg,
		cloudlet: make([]*simulate.Markov, len(rates)),
		rates:    rates,
		instRng:  rand.New(rand.NewSource(cfg.Seed + 1)),
		watched:  make(map[int]*watched),
	}
	for j, r := range rates {
		in.cloudlet[j] = simulate.NewMarkov(r, cfg.CloudletMTTR, cloudletRng)
	}
	return in, nil
}

// Cloudlets returns the number of cloudlet chains.
func (in *Injector) Cloudlets() int { return len(in.cloudlet) }

// TrueRate returns the stationary availability cloudlet j's chain
// actually realizes — the convergence target for an online estimator.
func (in *Injector) TrueRate(j int) float64 {
	if j < 0 || j >= len(in.cloudlet) {
		return 0
	}
	return in.cloudlet[j].StationaryRate()
}

// Watch registers an admitted placement: one failure chain per instance,
// each drawn from its stationary distribution, observed over the window
// [arrival, end]. Re-watching an ID replaces its instance set.
func (in *Injector) Watch(id, vnf, arrival, end int, assignments []core.Assignment) {
	w := &watched{id: id, vnf: vnf, arrival: arrival, end: end}
	w.instances = in.buildInstances(vnf, assignments, false)
	if _, ok := in.watched[id]; !ok {
		in.order = nil
	}
	in.watched[id] = w
}

// Rewatch replaces a watched placement's instance set after a repair:
// the new instances start up (a freshly placed instance is operational),
// so a successful repair restores service within the repairing slot.
func (in *Injector) Rewatch(id int, assignments []core.Assignment) {
	w, ok := in.watched[id]
	if !ok {
		return
	}
	w.instances = in.buildInstances(w.vnf, assignments, true)
}

func (in *Injector) buildInstances(vnf int, assignments []core.Assignment, up bool) []instance {
	rf := in.network.Catalog[vnf].Reliability
	var out []instance
	for _, a := range assignments {
		for k := 0; k < a.Instances; k++ {
			var chain *simulate.Markov
			if up {
				chain = simulate.NewMarkovIn(rf, in.cfg.InstanceMTTR, true, in.instRng)
			} else {
				chain = simulate.NewMarkov(rf, in.cfg.InstanceMTTR, in.instRng)
			}
			out = append(out, instance{cloudlet: a.Cloudlet, chain: chain})
		}
	}
	return out
}

// Unwatch drops a placement (its window expired).
func (in *Injector) Unwatch(id int) {
	if _, ok := in.watched[id]; ok {
		delete(in.watched, id)
		in.order = nil
	}
}

// PlacementHealth is one watched placement's failure picture for a slot.
type PlacementHealth struct {
	// ID is the placement (request) ID.
	ID int
	// Up reports whether at least one instance is live this slot (its
	// own chain up and its cloudlet up) — the delivered-service notion of
	// SimulateTimeline.
	Up bool
	// AliveInstances and TotalInstances count live instances against the
	// placed footprint.
	AliveInstances, TotalInstances int
	// Alive is the surviving footprint: per-cloudlet live instance
	// counts, ascending by cloudlet, omitting cloudlets with none. The
	// repair controller evaluates this against the reliability target.
	Alive []core.Assignment
}

// StepReport is one slot's injected state.
type StepReport struct {
	// Slot echoes the stepped slot.
	Slot int
	// CloudletUp holds each cloudlet's state this slot, by cloudlet ID.
	CloudletUp []bool
	// Placements reports every watched placement whose window covers the
	// slot, ascending by ID.
	Placements []PlacementHealth
}

// Step advances every chain by one slot and reports the resulting state.
// Cloudlet chains advance unconditionally (their timeline is global);
// instance chains advance only while their placement's window covers the
// slot, so out-of-window placements keep their state frozen.
func (in *Injector) Step(slot int) StepReport {
	rep := StepReport{Slot: slot, CloudletUp: make([]bool, len(in.cloudlet))}
	for j, m := range in.cloudlet {
		rep.CloudletUp[j] = m.Step()
	}
	if in.order == nil {
		in.order = make([]int, 0, len(in.watched))
		for id := range in.watched {
			in.order = append(in.order, id)
		}
		sortInts(in.order)
	}
	for _, id := range in.order {
		w := in.watched[id]
		if slot < w.arrival || slot > w.end {
			continue
		}
		ph := PlacementHealth{ID: id, TotalInstances: len(w.instances)}
		aliveBy := map[int]int{}
		for _, inst := range w.instances {
			instUp := inst.chain.Step()
			if instUp && rep.CloudletUp[inst.cloudlet] {
				ph.AliveInstances++
				aliveBy[inst.cloudlet]++
			}
		}
		ph.Up = ph.AliveInstances > 0
		if len(aliveBy) > 0 {
			cls := make([]int, 0, len(aliveBy))
			for c := range aliveBy {
				cls = append(cls, c)
			}
			sortInts(cls)
			for _, c := range cls {
				ph.Alive = append(ph.Alive, core.Assignment{Cloudlet: c, Instances: aliveBy[c]})
			}
		}
		rep.Placements = append(rep.Placements, ph)
	}
	return rep
}

// sortInts is insertion sort: the slices here are small (cloudlets per
// placement, watched IDs already mostly ordered by admission).
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
