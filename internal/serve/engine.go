package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/simulate"
	"revnf/internal/timeslot"
)

// AdmissionRequest is one service request submitted to the daemon. It is
// the paper's ρ = (f, R, a, d, pay) without an ID — the engine assigns
// IDs.
type AdmissionRequest struct {
	// VNF is the requested catalog type.
	VNF int `json:"vnf"`
	// Reliability is the requirement R in (0,1).
	Reliability float64 `json:"reliability"`
	// Arrival is the first execution slot; 0 means "now" (the engine's
	// current slot).
	Arrival int `json:"arrival,omitempty"`
	// Duration is the number of slots d ≥ 1.
	Duration int `json:"duration"`
	// Payment is the revenue collected on admission.
	Payment float64 `json:"payment"`
}

// AdmissionResult is the engine's decision for one submission.
type AdmissionResult struct {
	// ID is the engine-assigned request (and placement) ID.
	ID int `json:"id"`
	// Admitted reports the outcome.
	Admitted bool `json:"admitted"`
	// Reason explains a rejection; empty when admitted.
	Reason string `json:"reason,omitempty"`
	// Slot is the slot at which the decision was made.
	Slot int `json:"slot"`
	// Placement is the resource footprint when admitted.
	Placement core.Placement `json:"-"`
}

// PlacementState describes where a placement is in its lifecycle.
type PlacementState string

// Placement lifecycle states.
const (
	// StateScheduled means the window has not started yet.
	StateScheduled PlacementState = "scheduled"
	// StateActive means the current slot is inside the window.
	StateActive PlacementState = "active"
	// StateExpired means the window ended and the capacity was released.
	StateExpired PlacementState = "expired"
)

// PlacementRecord is the engine's book entry for one admitted request.
type PlacementRecord struct {
	// ID is the engine-assigned request ID.
	ID int
	// Request is the admitted request (with the engine's ID).
	Request core.Request
	// Placement is the admitted footprint.
	Placement core.Placement
	// DecidedSlot is the slot at which admission happened.
	DecidedSlot int
	// State is the lifecycle state as of the last read.
	State PlacementState
}

// TickReport summarizes one slot advance.
type TickReport struct {
	// Slot is the slot the clock advanced to.
	Slot int
	// Expired counts placements whose capacity was released by this tick.
	Expired int
}

// Stats is a consistent snapshot of the engine's counters.
type Stats struct {
	// Slot is the current slot; Horizon the served horizon T.
	Slot, Horizon int
	// QueueDepth and QueueCapacity describe the ingest queue.
	QueueDepth, QueueCapacity int
	// Admitted and Expired count decisions and released placements.
	Admitted, Expired uint64
	// Rejections counts rejected submissions by reason.
	Rejections map[string]uint64
	// Revenue is the summed payment of admitted requests (objective (6)).
	Revenue float64
	// ActivePlacements counts admitted, not-yet-expired placements.
	ActivePlacements int
	// CloudletUsed and CloudletCapacity give per-cloudlet units in use at
	// the current slot (zero usage once the slot passes the horizon).
	CloudletUsed, CloudletCapacity []int
	// Latency is a snapshot of the admission latency histogram (seconds,
	// submission to decision).
	Latency *metrics.Histogram
}

// RejectedTotal sums rejections across reasons.
func (s Stats) RejectedTotal() uint64 {
	total := uint64(0)
	for _, n := range s.Rejections {
		total += n
	}
	return total
}

type job struct {
	req      AdmissionRequest
	enqueued time.Time
	done     chan AdmissionResult
}

// Engine is the thread-safe admission core of the daemon. All scheduler
// and ledger access is serialized: submissions flow through a bounded
// queue into a single decision goroutine, and the slot clock and read
// endpoints share one mutex with it.
type Engine struct {
	cfg     Config
	network *core.Network
	horizon int
	now     func() time.Time

	mu         sync.Mutex
	sched      core.Scheduler
	ledger     *timeslot.Ledger
	slot       int
	nextID     int
	placements map[int]*PlacementRecord
	expiry     *simulate.WindowIndex
	admitted   uint64
	expired    uint64
	rejections map[string]uint64
	revenue    float64
	latency    *metrics.Histogram

	queue chan *job
	quit  chan struct{}
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool
}

// New validates the config, builds the engine, and starts its decision
// worker (and, when SlotDuration > 0, its real-time slot clock) at slot 1.
func New(cfg Config) (*Engine, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("%w: nil scheduler", ErrBadConfig)
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadConfig)
	}
	if err := cfg.Network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, cfg.Horizon)
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("%w: queue size %d", ErrBadConfig, cfg.QueueSize)
	}
	queueSize := cfg.QueueSize
	if queueSize == 0 {
		queueSize = DefaultQueueSize
	}
	caps := make([]int, len(cfg.Network.Cloudlets))
	for j, cl := range cfg.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	ledger, err := timeslot.New(caps, cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	// Buckets from 10µs to ~10s cover in-process decisions through loaded
	// network round-trips.
	latency, err := metrics.NewHistogram(metrics.ExponentialBounds(10e-6, 4, 11)...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	nowFn := cfg.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	e := &Engine{
		cfg:        cfg,
		network:    cfg.Network,
		horizon:    cfg.Horizon,
		now:        nowFn,
		sched:      cfg.Scheduler,
		ledger:     ledger,
		slot:       1,
		nextID:     1, // 1-based like slots; id 0 never exists
		placements: make(map[int]*PlacementRecord),
		expiry:     simulate.NewWindowIndex(),
		rejections: make(map[string]uint64),
		latency:    latency,
		queue:      make(chan *job, queueSize),
		quit:       make(chan struct{}),
	}
	e.wg.Add(1)
	go e.worker()
	if cfg.SlotDuration > 0 {
		e.wg.Add(1)
		go e.runClock(cfg.SlotDuration)
	}
	return e, nil
}

// Submit enqueues one admission request and waits for the decision. It
// fails fast with ErrQueueFull when the bounded queue is at capacity and
// with ErrClosed after Shutdown began; ctx cancellation abandons the wait
// (the decision still happens and is recorded).
func (e *Engine) Submit(ctx context.Context, req AdmissionRequest) (AdmissionResult, error) {
	j := &job{req: req, enqueued: e.now(), done: make(chan AdmissionResult, 1)}
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		e.countRejection(ReasonClosed)
		return AdmissionResult{}, ErrClosed
	}
	select {
	case e.queue <- j:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.countRejection(ReasonQueueFull)
		return AdmissionResult{}, ErrQueueFull
	}
	select {
	case res := <-j.done:
		return res, nil
	case <-ctx.Done():
		return AdmissionResult{}, ctx.Err()
	}
}

// worker is the single decision goroutine; it drains the queue until
// Shutdown closes it.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		j.done <- e.decide(j.req, j.enqueued)
	}
}

// decide makes one admission decision under the engine lock.
func (e *Engine) decide(ar AdmissionRequest, enqueued time.Time) AdmissionResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		e.latency.Observe(e.now().Sub(enqueued).Seconds())
	}()

	id := e.nextID
	e.nextID++
	arrival := ar.Arrival
	if arrival == 0 {
		arrival = e.slot
	}
	req := core.Request{
		ID:          id,
		VNF:         ar.VNF,
		Reliability: ar.Reliability,
		Arrival:     arrival,
		Duration:    ar.Duration,
		Payment:     ar.Payment,
	}
	reject := func(reason string) AdmissionResult {
		e.rejections[reason]++
		return AdmissionResult{ID: id, Reason: reason, Slot: e.slot}
	}
	if arrival < e.slot {
		return reject(ReasonStale)
	}
	if req.End() > e.horizon {
		return reject(ReasonHorizon)
	}
	if err := e.network.ValidateRequest(req, e.horizon); err != nil {
		return reject(ReasonInvalid)
	}
	placement, ok := e.sched.Decide(req, e.ledger)
	if !ok {
		return reject(ReasonDeclined)
	}
	if err := placement.Validate(e.network, req); err != nil {
		return reject(ReasonInvalid)
	}
	demand := e.network.Catalog[req.VNF].Demand
	reserved := make([]core.Assignment, 0, len(placement.Assignments))
	for _, a := range placement.Assignments {
		var err error
		if e.cfg.AllowViolations {
			err = e.ledger.ForceReserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand))
		} else {
			err = e.ledger.Reserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand))
		}
		if err != nil {
			// The scheduler placed more than the ledger holds: roll the
			// partial reservation back and refuse. (Its dual state has
			// already moved; that only makes it more conservative.)
			for _, r := range reserved {
				_ = e.ledger.Release(r.Cloudlet, req.Arrival, req.Duration, r.Units(demand))
			}
			return reject(ReasonOverbooked)
		}
		reserved = append(reserved, a)
	}
	e.placements[id] = &PlacementRecord{
		ID:          id,
		Request:     req,
		Placement:   placement,
		DecidedSlot: e.slot,
		State:       StateScheduled,
	}
	e.expiry.Add(id, req.End())
	e.admitted++
	e.revenue += req.Payment
	return AdmissionResult{ID: id, Admitted: true, Slot: e.slot, Placement: placement}
}

func (e *Engine) countRejection(reason string) {
	e.mu.Lock()
	e.rejections[reason]++
	e.mu.Unlock()
}

// Tick advances the slot clock by one and releases every placement whose
// window ended — a request arriving at a with duration d holds its
// capacity through slot a+d-1 and is released the moment the clock
// reaches a+d. Tests drive this directly; the real-time clock calls it
// once per SlotDuration.
func (e *Engine) Tick() TickReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slot++
	expired := e.expiry.ExpireBefore(e.slot)
	demandOf := func(req core.Request) int { return e.network.Catalog[req.VNF].Demand }
	for _, id := range expired {
		rec := e.placements[id]
		for _, a := range rec.Placement.Assignments {
			// Release can only fail on arguments the engine itself
			// reserved; a failure here would be an engine bug.
			if err := e.ledger.Release(a.Cloudlet, rec.Request.Arrival, rec.Request.Duration, a.Units(demandOf(rec.Request))); err != nil {
				panic(fmt.Sprintf("serve: release placement %d: %v", id, err))
			}
		}
		rec.State = StateExpired
		e.expired++
	}
	return TickReport{Slot: e.slot, Expired: len(expired)}
}

// runClock maps wall time onto slots.
func (e *Engine) runClock(d time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(d)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Tick()
		case <-e.quit:
			return
		}
	}
}

// Slot returns the current slot.
func (e *Engine) Slot() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.slot
}

// Horizon returns the served horizon T.
func (e *Engine) Horizon() int { return e.horizon }

// Network returns the served network (read-only by convention).
func (e *Engine) Network() *core.Network { return e.network }

// Placement returns the record for an admitted request ID. The returned
// copy's State reflects the current slot.
func (e *Engine) Placement(id int) (PlacementRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.placements[id]
	if !ok {
		return PlacementRecord{}, false
	}
	out := *rec
	if out.State != StateExpired {
		if e.slot < out.Request.Arrival {
			out.State = StateScheduled
		} else {
			out.State = StateActive
		}
	}
	return out, true
}

// CloudletStatus is one cloudlet's residual capacity over the remaining
// horizon.
type CloudletStatus struct {
	// ID, Node, Capacity and Reliability mirror the core.Cloudlet.
	ID          int     `json:"id"`
	Node        int     `json:"node"`
	Capacity    int     `json:"capacity"`
	Reliability float64 `json:"reliability"`
	// FromSlot is the slot Residual[0] describes (the current slot).
	FromSlot int `json:"from_slot"`
	// Residual holds the free units per slot from FromSlot through the
	// horizon; empty once the clock has passed the horizon. Entries can
	// be negative when violations are allowed.
	Residual []int `json:"residual"`
}

// Cloudlets reports residual capacity per slot for every cloudlet, from
// the current slot through the horizon.
func (e *Engine) Cloudlets() []CloudletStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]CloudletStatus, len(e.network.Cloudlets))
	for j, cl := range e.network.Cloudlets {
		st := CloudletStatus{
			ID: cl.ID, Node: cl.Node, Capacity: cl.Capacity, Reliability: cl.Reliability,
			FromSlot: e.slot,
		}
		for t := e.slot; t <= e.horizon; t++ {
			st.Residual = append(st.Residual, e.ledger.Residual(j, t))
		}
		out[j] = st
	}
	return out
}

// Stats snapshots every counter under one lock acquisition.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Slot:             e.slot,
		Horizon:          e.horizon,
		QueueDepth:       len(e.queue),
		QueueCapacity:    cap(e.queue),
		Admitted:         e.admitted,
		Expired:          e.expired,
		Rejections:       make(map[string]uint64, len(e.rejections)),
		Revenue:          e.revenue,
		ActivePlacements: e.expiry.Len(),
		CloudletUsed:     make([]int, len(e.network.Cloudlets)),
		CloudletCapacity: make([]int, len(e.network.Cloudlets)),
		Latency:          e.latency.Clone(),
	}
	for reason, n := range e.rejections {
		s.Rejections[reason] = n
	}
	for j, cl := range e.network.Cloudlets {
		s.CloudletCapacity[j] = cl.Capacity
		if e.slot <= e.horizon {
			s.CloudletUsed[j] = e.ledger.Used(j, e.slot)
		}
	}
	return s
}

// Shutdown stops intake, drains every queued admission (each waiting
// caller receives its decision), stops the clock, and waits for the
// workers to exit or the context to expire. It is idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return nil
	}
	e.closed = true
	close(e.quit)
	// No Submit can be sending now: senders hold closeMu.RLock and check
	// closed first, so closing the queue is safe.
	close(e.queue)
	e.closeMu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Closed reports whether Shutdown has begun.
func (e *Engine) Closed() bool {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	return e.closed
}
