package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"revnf/internal/core"
	"revnf/internal/metrics"
	"revnf/internal/simulate"
	"revnf/internal/timeslot"
	"revnf/internal/trace"
)

// AdmissionRequest is one service request submitted to the daemon. It is
// the paper's ρ = (f, R, a, d, pay) without an ID — the engine assigns
// IDs.
type AdmissionRequest struct {
	// VNF is the requested catalog type.
	VNF int `json:"vnf"`
	// Reliability is the requirement R in (0,1).
	Reliability float64 `json:"reliability"`
	// Arrival is the first execution slot; 0 means "now" (the engine's
	// current slot).
	Arrival int `json:"arrival,omitempty"`
	// Duration is the number of slots d ≥ 1.
	Duration int `json:"duration"`
	// Payment is the revenue collected on admission.
	Payment float64 `json:"payment"`
	// Scheme optionally pins the redundancy scheme the request demands
	// (either spelling, resolved by core.ParseScheme). Empty accepts
	// whatever scheme the daemon runs; a non-empty value naming a different
	// scheme is rejected with ReasonSchemeUnavailable.
	Scheme string `json:"scheme,omitempty"`
}

// AdmissionResult is the engine's decision for one submission.
type AdmissionResult struct {
	// ID is the engine-assigned request (and placement) ID.
	ID int `json:"id"`
	// Admitted reports the outcome.
	Admitted bool `json:"admitted"`
	// Reason explains a rejection; empty when admitted.
	Reason string `json:"reason,omitempty"`
	// Slot is the slot at which the decision was made.
	Slot int `json:"slot"`
	// Placement is the resource footprint when admitted.
	Placement core.Placement `json:"-"`
}

// PlacementState describes where a placement is in its lifecycle.
type PlacementState string

// Placement lifecycle states.
const (
	// StateScheduled means the window has not started yet.
	StateScheduled PlacementState = "scheduled"
	// StateActive means the current slot is inside the window.
	StateActive PlacementState = "active"
	// StateExpired means the window ended and the capacity was released.
	StateExpired PlacementState = "expired"
	// StateDegraded means the failure runtime exhausted the placement's
	// repair budget: the surviving instances no longer meet the
	// reliability target and re-placement kept failing. The capacity still
	// held is released normally at expiry.
	StateDegraded PlacementState = "degraded"
)

// PlacementRecord is the engine's book entry for one admitted request.
type PlacementRecord struct {
	// ID is the engine-assigned request ID.
	ID int
	// Request is the admitted request (with the engine's ID).
	Request core.Request
	// Placement is the admitted footprint.
	Placement core.Placement
	// DecidedSlot is the slot at which admission happened.
	DecidedSlot int
	// State is the lifecycle state as of the last read.
	State PlacementState
	// ReservedFrom is the first slot of the live ledger reservation: the
	// request's arrival at admission, moved forward when the failure
	// runtime re-places the request mid-window (the repair reserves
	// [repair slot, end] and releases the old footprint).
	ReservedFrom int
	// released records that the ledger reservation has been returned, so
	// expiry can never release a footprint twice (degraded placements
	// keep their state mark at expiry but release exactly once like every
	// other placement).
	released bool
}

// TickReport summarizes one slot advance.
type TickReport struct {
	// Slot is the slot the clock advanced to.
	Slot int
	// Expired counts placements whose capacity was released by this tick.
	Expired int
}

// Stats is a consistent snapshot of the engine's counters.
type Stats struct {
	// Slot is the current slot; Horizon the served horizon (the fixed T,
	// or the rolling window width W).
	Slot, Horizon int
	// WindowBase is the first live slot of the ledger window (1 in fixed
	// mode); Rolling reports the horizon mode.
	WindowBase int
	Rolling    bool
	// Workers is the decision concurrency: 1 in serial mode, the shard
	// count in sharded mode.
	Workers int
	// QueueDepth and QueueCapacity describe the ingest queue. In sharded
	// mode QueueDepth counts submissions accepted into the engine but not
	// yet decided (waiting for a worker token or deciding right now).
	QueueDepth, QueueCapacity int
	// InFlight counts decisions executing at snapshot time (sharded mode;
	// 0 or 1 in serial mode is not tracked and reported as 0).
	InFlight int
	// Admitted and Expired count decisions and released placements.
	Admitted, Expired uint64
	// AdmittedByScheme splits Admitted by placement scheme (display
	// names); schemes with no admissions are absent.
	AdmittedByScheme map[string]uint64
	// Rejections counts rejected submissions by reason.
	Rejections map[string]uint64
	// ConflictRetries counts ledger reservation refusals under concurrent
	// commit races (each triggers a re-propose, not necessarily a
	// rejection).
	ConflictRetries uint64
	// Revenue is the summed payment of admitted requests (objective (6)).
	Revenue float64
	// ActivePlacements counts admitted, not-yet-expired placements.
	ActivePlacements int
	// CloudletUsed and CloudletCapacity give per-cloudlet units in use at
	// the current slot (zero usage once the slot passes the horizon).
	CloudletUsed, CloudletCapacity []int
	// Latency is a snapshot of the admission latency histogram (seconds,
	// submission to decision). Serial mode observes every decision;
	// sharded mode samples one decision in latencySampleRate, so Count is
	// a fraction of the decisions made but the quantiles estimate the
	// same distribution.
	Latency *metrics.Histogram
}

// RejectedTotal sums rejections across reasons.
func (s Stats) RejectedTotal() uint64 {
	total := uint64(0)
	for _, n := range s.Rejections {
		total += n
	}
	return total
}

type job struct {
	req AdmissionRequest
	// ctx is the submitter's context: the worker skips jobs whose caller
	// has already gone away instead of deciding into the void.
	ctx      context.Context
	enqueued time.Time
	done     chan AdmissionResult
}

// Engine is the thread-safe admission core of the daemon. It runs in one
// of two modes, selected at New time:
//
// Serial mode (Workers ≤ 1, or a scheduler without concurrent two-phase
// support): submissions flow through a bounded queue into a single
// decision goroutine, and all scheduler and ledger access is serialized
// under one mutex — the original architecture, preserved bit-for-bit.
//
// Sharded mode (Workers > 1 and a core.TwoPhaseScheduler whose
// ConcurrentPropose reports true): submissions execute their own decision
// inline, bounded by a token semaphore of Workers slots. Each decision is
// Propose (concurrent, lock-free against other proposals) followed by an
// atomic ledger reservation of the whole footprint; the concurrent ledger
// arbitrates capacity races, and a refusal (another commit consumed the
// capacity first) triggers a bounded re-propose before rejecting with
// ReasonConflict. Commit runs only after the ledger accepted the
// footprint, so scheduler state never moves for a request that did not
// get its capacity. Placement and revenue bookkeeping stays under the
// engine mutex (admissions are rare once capacity binds); rejection
// counters are atomics and latency lands in per-shard histograms, so the
// rejection path never touches the engine mutex.
type Engine struct {
	cfg     Config
	network *core.Network
	horizon int
	workers int
	now     func() time.Time

	// rolling selects the rolling-horizon mode (Config.Rolling): the
	// ledger is a circular window of horizon slots whose base Tick
	// advances with the clock, pinned by the oldest live reservation.
	rolling bool
	// advancer is the scheduler's window-aging hook (non-nil when the
	// scheduler implements core.WindowAdvancer); called after every
	// successful ledger advance so dual prices retire with their slots.
	advancer core.WindowAdvancer

	// twoPhase is non-nil exactly in sharded mode.
	twoPhase core.TwoPhaseScheduler

	// rec receives engine-level decision records (pre-scheduler rejections
	// and final outcomes); trace.Nop unless Config provides a sink. traces
	// is the store behind the /v1/decisions/{id}/trace endpoint (nil when
	// tracing is off).
	rec    trace.Recorder
	traces *trace.Store

	// runtime is the failure-aware subsystem (chaos injection, repair,
	// SLO accounting, rate estimation); nil unless Config.Chaos is set.
	runtime *failureRuntime

	// ingest tracks the wire layer: per-protocol request/connection
	// counters and the streaming batch-size distribution.
	ingest *ingestStats

	mu     sync.Mutex
	sched  core.Scheduler
	ledger *timeslot.Ledger
	// pool is the refcounted shared-backup layer over the ledger: group
	// footprints are reserved when the first member joins and released when
	// the last member expires. It carries its own lock; the engine only
	// calls it from paths that already own the relevant footprint.
	pool       *timeslot.Pool
	slot       int                      // guarded by mu
	placements map[int]*PlacementRecord // guarded by mu
	expiry     *simulate.WindowIndex    // guarded by mu
	admitted   uint64                   // guarded by mu
	expired    uint64                   // guarded by mu
	// admittedByScheme splits the admitted counter by placement scheme.
	admittedByScheme map[core.Scheme]uint64 // guarded by mu
	revenue          float64                // guarded by mu
	latency          *metrics.Histogram     // guarded by mu

	// rejections maps every defined reason to its counter. The key set is
	// fixed at New, so concurrent reads of the map are safe and every
	// increment is a lock-free atomic — rejections are the sharded hot
	// path and must not funnel through the engine mutex.
	rejections map[string]*atomic.Uint64

	// shards holds one latency histogram per worker token in sharded mode
	// (nil in serial mode). The holder of token i owns shards[i]; the
	// per-shard mutex only arbitrates against Stats snapshots.
	shards []*shardHist

	// slotNow mirrors slot for lock-free reads on the sharded path.
	slotNow atomic.Int64
	// baseNow mirrors the ledger's window base for lock-free reads
	// (sharded horizon checks, metrics); pinned at 1 in fixed mode.
	baseNow atomic.Int64
	// lastID is the atomic ID allocator (IDs start at 1).
	lastID atomic.Int64
	// waiting counts submissions accepted but not yet decided (sharded).
	waiting atomic.Int64
	// conflicts counts ledger reservation refusals (sharded).
	conflicts atomic.Uint64

	// queue and the queue worker exist only in serial mode; sem only in
	// sharded mode. sem is preloaded with the shard indices 0..workers-1:
	// a decision acquires a token by receiving and returns it by sending,
	// so len(sem) counts idle tokens.
	queue    chan *job
	queueCap int
	sem      chan int
	quit     chan struct{}
	wg       sync.WaitGroup
	// inflight counts sharded decisions so Shutdown can drain them. An
	// atomic (rather than a WaitGroup behind closeMu) keeps the sharded
	// submit path free of the read-write mutex.
	inflight atomic.Int64

	// closeMu exists for the serial queue: senders hold the read lock
	// across the closed-check-and-send so Shutdown's close(queue) cannot
	// race a send. The sharded path never touches it — it coordinates
	// with Shutdown through closedFlag and inflight alone.
	closeMu    sync.RWMutex
	closedFlag atomic.Bool
}

// shardHist is one worker token's latency histogram. Only the goroutine
// holding the token observes into it, so the mutex is uncontended except
// against Stats snapshots.
type shardHist struct {
	mu sync.Mutex
	h  *metrics.Histogram // guarded by mu
}

// New validates the config, builds the engine, and starts its decision
// worker (serial mode) and, when SlotDuration > 0, its real-time slot
// clock at slot 1. Workers > 1 requests sharded mode; it degrades to
// serial mode when the scheduler does not support concurrent proposals.
func New(cfg Config) (*Engine, error) {
	if cfg.Scheduler == nil {
		return nil, fmt.Errorf("%w: nil scheduler", ErrBadConfig)
	}
	if cfg.Network == nil {
		return nil, fmt.Errorf("%w: nil network", ErrBadConfig)
	}
	if err := cfg.Network.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Horizon < 1 {
		return nil, fmt.Errorf("%w: horizon %d", ErrBadConfig, cfg.Horizon)
	}
	if cfg.QueueSize < 0 {
		return nil, fmt.Errorf("%w: queue size %d", ErrBadConfig, cfg.QueueSize)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("%w: workers %d", ErrBadConfig, cfg.Workers)
	}
	queueSize := cfg.QueueSize
	if queueSize == 0 {
		queueSize = DefaultQueueSize
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	var twoPhase core.TwoPhaseScheduler
	if workers > 1 {
		if tp, ok := cfg.Scheduler.(core.TwoPhaseScheduler); ok && tp.ConcurrentPropose() {
			twoPhase = tp
		} else {
			// Graceful degradation: the scheduler cannot run proposals
			// concurrently, so sharding would not be safe.
			workers = 1
		}
	}
	caps := make([]int, len(cfg.Network.Cloudlets))
	for j, cl := range cfg.Network.Cloudlets {
		caps[j] = cl.Capacity
	}
	var ledger *timeslot.Ledger
	var err error
	if cfg.Rolling {
		ledger, err = timeslot.NewRolling(caps, cfg.Horizon)
	} else {
		ledger, err = timeslot.New(caps, cfg.Horizon)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	// Buckets from 10µs to ~10s cover in-process decisions through loaded
	// network round-trips.
	latencyBounds := metrics.ExponentialBounds(10e-6, 4, 11)
	latency, err := metrics.NewHistogram(latencyBounds...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	rejections := make(map[string]*atomic.Uint64, 10)
	for _, reason := range []string{ReasonInvalid, ReasonStale, ReasonHorizon, ReasonDeclined,
		ReasonOverbooked, ReasonConflict, ReasonQueueFull, ReasonClosed, ReasonCanceled,
		ReasonSchemeUnavailable} {
		rejections[reason] = new(atomic.Uint64)
	}
	nowFn := cfg.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	rec := cfg.Recorder
	if rec == nil {
		if cfg.Traces != nil {
			rec = cfg.Traces
		} else {
			rec = trace.Nop
		}
	}
	var runtime *failureRuntime
	if cfg.Chaos != nil {
		runtime, err = newFailureRuntime(cfg)
		if err != nil {
			return nil, err
		}
	}
	ingest, err := newIngestStats()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	var advancer core.WindowAdvancer
	if cfg.Rolling {
		// The dual prices follow the window when the scheduler supports it;
		// stateless schedulers (baselines) have nothing to age.
		advancer, _ = cfg.Scheduler.(core.WindowAdvancer)
	}
	e := &Engine{
		cfg:        cfg,
		network:    cfg.Network,
		horizon:    cfg.Horizon,
		workers:    workers,
		now:        nowFn,
		rolling:    cfg.Rolling,
		advancer:   advancer,
		sched:      cfg.Scheduler,
		twoPhase:   twoPhase,
		rec:        rec,
		traces:     cfg.Traces,
		runtime:    runtime,
		ingest:     ingest,
		ledger:     ledger,
		pool:       timeslot.NewPool(ledger),
		slot:       1,
		placements: make(map[int]*PlacementRecord),
		expiry:     simulate.NewWindowIndex(),

		admittedByScheme: make(map[core.Scheme]uint64),

		rejections: rejections,
		latency:    latency,
		queueCap:   queueSize,
		quit:       make(chan struct{}),
	}
	e.slotNow.Store(1)
	e.baseNow.Store(1)
	if twoPhase != nil {
		e.sem = make(chan int, workers)
		e.shards = make([]*shardHist, workers)
		for i := 0; i < workers; i++ {
			h, err := metrics.NewHistogram(latencyBounds...)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
			e.shards[i] = &shardHist{h: h}
			e.sem <- i
		}
	} else {
		e.queue = make(chan *job, queueSize)
		e.wg.Add(1)
		go e.worker()
	}
	if cfg.SlotDuration > 0 {
		e.wg.Add(1)
		go e.runClock(cfg.SlotDuration)
	}
	return e, nil
}

// Workers returns the decision concurrency the engine settled on (1 in
// serial mode; the configured shard count in sharded mode).
func (e *Engine) Workers() int { return e.workers }

// Submit enqueues one admission request and waits for the decision. It
// fails fast with ErrQueueFull when the engine is at capacity and with
// ErrClosed after Shutdown began; ctx cancellation abandons the wait and
// the decision. In serial mode the worker skips jobs whose submitter's
// context already ended (counted as ReasonCanceled); in sharded mode
// cancellation while waiting for a worker token or between retry attempts
// abandons the decision entirely.
func (e *Engine) Submit(ctx context.Context, req AdmissionRequest) (AdmissionResult, error) {
	if e.sem != nil {
		return e.submitSharded(ctx, req)
	}
	j := &job{req: req, ctx: ctx, enqueued: e.now(), done: make(chan AdmissionResult, 1)}
	e.closeMu.RLock()
	if e.closedFlag.Load() {
		e.closeMu.RUnlock()
		e.countRejection(ReasonClosed)
		return AdmissionResult{}, ErrClosed
	}
	select {
	case e.queue <- j:
		e.closeMu.RUnlock()
	default:
		e.closeMu.RUnlock()
		e.countRejection(ReasonQueueFull)
		return AdmissionResult{}, ErrQueueFull
	}
	select {
	case res := <-j.done:
		return res, nil
	case <-ctx.Done():
		return AdmissionResult{}, ctx.Err()
	}
}

// submitSharded runs the decision inline on the caller's goroutine,
// bounded by the worker-token semaphore. The waiting counter imposes the
// same backpressure bound as the serial queue: at most queueCap
// submissions may be waiting for a token beyond the workers deciding.
func (e *Engine) submitSharded(ctx context.Context, req AdmissionRequest) (AdmissionResult, error) {
	if int(e.waiting.Add(1)) > e.queueCap+e.workers {
		e.waiting.Add(-1)
		e.countRejection(ReasonQueueFull)
		return AdmissionResult{}, ErrQueueFull
	}
	defer e.waiting.Add(-1)
	// Registering in inflight before checking closedFlag closes the race
	// with Shutdown: either this decision's increment is visible to the
	// drain loop (which then waits it out), or closedFlag's store is
	// visible here and the submission bails.
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	if e.closedFlag.Load() {
		e.countRejection(ReasonClosed)
		return AdmissionResult{}, ErrClosed
	}
	// Latency is sampled (1 in latencySampleRate) in sharded mode: two
	// clock reads per decision were the largest single cost on the hot
	// path, and a sampled histogram estimates the same quantiles. The ID
	// allocation doubles as the sampling counter.
	id := int(e.lastID.Add(1))
	var enqueued time.Time
	sampled := id&(latencySampleRate-1) == 0
	if sampled {
		enqueued = e.now()
	}
	// Fast path first: a non-blocking receive skips the generic select
	// machinery whenever a token is free, which is the common case (a
	// token is held only for the duration of one inline decision).
	var shard int
	select {
	case shard = <-e.sem:
	default:
		select {
		case shard = <-e.sem:
		case <-ctx.Done():
			return AdmissionResult{}, ctx.Err()
		}
	}
	res, err := e.decideSharded(ctx, req, id, enqueued, sampled, shard)
	e.sem <- shard
	return res, err
}

// latencySampleRate is the sharded-mode latency sampling interval; it
// must be a power of two. Serial mode observes every decision.
const latencySampleRate = 8

// worker is the single decision goroutine of serial mode; it drains the
// queue until Shutdown closes it.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		if j.ctx != nil && j.ctx.Err() != nil {
			// The submitter already abandoned the wait; deciding would
			// mutate scheduler state for a caller that will never see the
			// answer.
			e.countRejection(ReasonCanceled)
			continue
		}
		j.done <- e.decide(j.req, j.enqueued)
	}
}

// checkScheme gates a submission's optional scheme pin: parse failures
// reject as invalid, a pin naming a scheme other than the scheduler's
// rejects as scheme-unavailable.
func (e *Engine) checkScheme(ar AdmissionRequest) (string, bool) {
	if ar.Scheme == "" {
		return "", true
	}
	s, err := core.ParseScheme(ar.Scheme)
	if err != nil {
		return ReasonInvalid, false
	}
	if s != e.sched.Scheme() {
		return ReasonSchemeUnavailable, false
	}
	return "", true
}

// buildRequest materializes the core.Request under the given ID,
// defaulting the arrival to the given slot.
func (e *Engine) buildRequest(ar AdmissionRequest, id, slot int) core.Request {
	arrival := ar.Arrival
	if arrival == 0 {
		arrival = slot
	}
	return core.Request{
		ID:          id,
		VNF:         ar.VNF,
		Reliability: ar.Reliability,
		Arrival:     arrival,
		Duration:    ar.Duration,
		Payment:     ar.Payment,
	}
}

// decide makes one admission decision under the engine lock (serial mode).
func (e *Engine) decide(ar AdmissionRequest, enqueued time.Time) AdmissionResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer func() {
		e.latency.Observe(e.now().Sub(enqueued).Seconds())
	}()
	return e.decideLocked(ar)
}

// decideLocked is the serial decision body; the caller holds e.mu and owns
// latency observation (per decision from Submit, per batch from
// SubmitBatch).
func (e *Engine) decideLocked(ar AdmissionRequest) AdmissionResult {
	req := e.buildRequest(ar, int(e.lastID.Add(1)), e.slot)
	id := req.ID
	reject := func(reason string) AdmissionResult {
		e.rejections[reason].Add(1)
		e.recordOutcome(req, e.slot, trace.Reason(reason), core.Placement{})
		return AdmissionResult{ID: id, Reason: reason, Slot: e.slot}
	}
	if req.Arrival < e.slot {
		return reject(ReasonStale)
	}
	if reason, ok := e.checkScheme(ar); !ok {
		return reject(reason)
	}
	maxSlot := e.maxSlotLocked()
	if req.End() > maxSlot {
		return reject(ReasonHorizon)
	}
	if err := e.network.ValidateRequest(req, maxSlot); err != nil {
		return reject(ReasonInvalid)
	}
	placement, ok := e.sched.Decide(req, e.ledger)
	if !ok {
		return reject(ReasonDeclined)
	}
	if err := placement.Validate(e.network, req); err != nil {
		return reject(ReasonInvalid)
	}
	demand := e.network.Catalog[req.VNF].Demand
	reserved := make([]core.Assignment, 0, len(placement.Assignments))
	for _, a := range placement.Assignments {
		var err error
		if e.cfg.AllowViolations {
			err = e.ledger.ForceReserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand))
		} else {
			err = e.ledger.Reserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand))
		}
		if err != nil {
			// The scheduler placed more than the ledger holds: roll the
			// partial reservation back and refuse. (Its dual state has
			// already moved; that only makes it more conservative.)
			for _, r := range reserved {
				_ = e.ledger.Release(r.Cloudlet, req.Arrival, req.Duration, r.Units(demand))
			}
			return reject(ReasonOverbooked)
		}
		reserved = append(reserved, a)
	}
	if b := placement.Backup; b != nil {
		// Shared scheme: join the pooled backup. The pool reserves the
		// group's ledger row only for slots no other member covers yet.
		if err := e.pool.Acquire(b.Group, b.Cloudlet, req.Arrival, req.Duration, demand); err != nil {
			for _, r := range reserved {
				_ = e.ledger.Release(r.Cloudlet, req.Arrival, req.Duration, r.Units(demand))
			}
			return reject(ReasonOverbooked)
		}
	}
	e.recordAdmissionLocked(req, placement, e.slot)
	e.recordOutcome(req, e.slot, trace.ReasonAdmitted, placement)
	return AdmissionResult{ID: id, Admitted: true, Slot: e.slot, Placement: placement}
}

// recordOutcome emits the engine-level finalization record for one decided
// request: the outcome reason, the decision slot, and (for admissions) the
// placement footprint. Merged by the trace store with the scheduler's own
// Propose attempts for the same request ID.
func (e *Engine) recordOutcome(req core.Request, slot int, outcome trace.Reason, p core.Placement) {
	if !e.rec.Sample(req.ID) {
		return
	}
	dt := trace.NewDecision(req, e.sched.Name(), e.sched.Scheme().String())
	dt.Slot = slot
	dt.Outcome = outcome
	if outcome == trace.ReasonAdmitted {
		dt.Admitted = true
		dt.Assignments = p.Assignments
	}
	e.rec.Record(dt)
}

// decideSharded makes one admission decision without holding the engine
// lock across the scheduler or the ledger (sharded mode). The protocol:
//
//  1. Propose concurrently (the scheduler only reads its prices);
//  2. reserve the whole footprint in the concurrent ledger, which
//     arbitrates races between decisions atomically per cloudlet;
//  3. on refusal, abort the proposal and re-propose (bounded retries) —
//     prices and capacity have moved under a competing commit;
//  4. on success, Commit the scheduler state, then record the books
//     under the engine mutex.
//
// The caller's context is honored between retry attempts: a canceled
// submitter stops the loop before the next Propose (counted as
// ReasonCanceled) rather than committing work nobody waits for.
func (e *Engine) decideSharded(ctx context.Context, ar AdmissionRequest, id int, enqueued time.Time, sampled bool, shard int) (AdmissionResult, error) {
	slot := int(e.slotNow.Load())
	req := e.buildRequest(ar, id, slot)
	reject := func(reason string) AdmissionResult {
		e.rejections[reason].Add(1)
		e.recordOutcome(req, slot, trace.Reason(reason), core.Placement{})
		if sampled {
			e.observeShard(shard, enqueued)
		}
		return AdmissionResult{ID: id, Reason: reason, Slot: slot}
	}
	if req.Arrival < slot {
		return reject(ReasonStale), nil
	}
	if reason, ok := e.checkScheme(ar); !ok {
		return reject(reason), nil
	}
	// In rolling mode the admissible window follows the base mirror; the
	// ledger re-checks atomically at reservation time, so a stale read
	// here can only cause a rejection or a conflict retry, never an
	// out-of-window reservation.
	maxSlot := e.horizon
	if e.rolling {
		maxSlot = int(e.baseNow.Load()) + e.horizon - 1
	}
	if req.End() > maxSlot {
		return reject(ReasonHorizon), nil
	}
	if err := e.network.ValidateRequest(req, maxSlot); err != nil {
		return reject(ReasonInvalid), nil
	}
	demand := e.network.Catalog[req.VNF].Demand
	// maxAttempts bounds the re-propose loop: the first attempt plus two
	// retries after ledger refusals. Livelock is impossible (each refusal
	// means some other decision committed) but unbounded retry under
	// shrinking capacity is wasted work — after two losses the request is
	// rejected as conflicted.
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 && ctx.Err() != nil {
			e.countRejection(ReasonCanceled)
			e.recordOutcome(req, slot, trace.ReasonCanceled, core.Placement{})
			return AdmissionResult{}, ctx.Err()
		}
		placement, ok := e.twoPhase.Propose(req, e.ledger)
		if !ok {
			return reject(ReasonDeclined), nil
		}
		if err := placement.Validate(e.network, req); err != nil {
			e.twoPhase.Abort(req, placement)
			return reject(ReasonInvalid), nil
		}
		if e.reserveAll(req, placement, demand) {
			e.twoPhase.Commit(req, placement)
			e.mu.Lock()
			e.recordAdmissionLocked(req, placement, slot)
			e.mu.Unlock()
			e.recordOutcome(req, slot, trace.ReasonAdmitted, placement)
			if sampled {
				e.observeShard(shard, enqueued)
			}
			return AdmissionResult{ID: id, Admitted: true, Slot: slot, Placement: placement}, nil
		}
		// The ledger refused: a concurrent commit consumed the capacity
		// the proposal saw. Abort and re-propose against the new state.
		e.conflicts.Add(1)
		e.twoPhase.Abort(req, placement)
	}
	return reject(ReasonConflict), nil
}

// reserveAll reserves the placement's whole footprint — the assignments
// plus any pooled shared backup — rolling back on the first refusal. Each
// per-cloudlet reservation is atomic in the ledger; the rollback makes
// the multi-cloudlet footprint all-or-nothing.
func (e *Engine) reserveAll(req core.Request, placement core.Placement, demand int) bool {
	reserved := placement.Assignments[:0:0]
	for _, a := range placement.Assignments {
		if e.cfg.AllowViolations {
			if err := e.ledger.ForceReserve(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand)); err != nil {
				return false
			}
		} else {
			ok, err := e.ledger.ReserveWindow(a.Cloudlet, req.Arrival, req.Duration, a.Units(demand))
			if err != nil || !ok {
				for _, r := range reserved {
					_ = e.ledger.Release(r.Cloudlet, req.Arrival, req.Duration, r.Units(demand))
				}
				return false
			}
		}
		reserved = append(reserved, a)
	}
	if b := placement.Backup; b != nil {
		if err := e.pool.Acquire(b.Group, b.Cloudlet, req.Arrival, req.Duration, demand); err != nil {
			for _, r := range reserved {
				_ = e.ledger.Release(r.Cloudlet, req.Arrival, req.Duration, r.Units(demand))
			}
			return false
		}
	}
	return true
}

// recordAdmissionLocked books one admitted placement. Caller holds e.mu.
func (e *Engine) recordAdmissionLocked(req core.Request, placement core.Placement, slot int) {
	e.placements[req.ID] = &PlacementRecord{
		ID:           req.ID,
		Request:      req,
		Placement:    placement,
		DecidedSlot:  slot,
		State:        StateScheduled,
		ReservedFrom: req.Arrival,
	}
	e.expiry.Add(req.ID, req.Arrival, req.End())
	e.admitted++
	e.admittedByScheme[placement.Scheme]++
	e.revenue += req.Payment
	if e.runtime != nil {
		e.watchAdmissionLocked(req, placement)
	}
}

func (e *Engine) countRejection(reason string) {
	e.rejections[reason].Add(1)
}

// observeShard records one decision latency into the caller's shard
// histogram. The caller holds worker token `shard`, so the only possible
// contention on the shard mutex is a concurrent Stats snapshot.
func (e *Engine) observeShard(shard int, enqueued time.Time) {
	sh := e.shards[shard]
	v := e.now().Sub(enqueued).Seconds()
	sh.mu.Lock()
	sh.h.Observe(v)
	sh.mu.Unlock()
}

// Tick advances the slot clock by one and releases every placement whose
// window ended — a request arriving at a with duration d holds its
// capacity through slot a+d-1 and is released the moment the clock
// reaches a+d. Tests drive this directly; the real-time clock calls it
// once per SlotDuration.
func (e *Engine) Tick() TickReport {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slot++
	e.slotNow.Store(int64(e.slot))
	expired := e.expiry.ExpireBefore(e.slot)
	demandOf := func(req core.Request) int { return e.network.Catalog[req.VNF].Demand }
	for _, id := range expired {
		rec := e.placements[id]
		if !rec.released {
			// The live reservation runs [ReservedFrom, end]: the full window
			// at admission, the remaining window after a mid-window repair.
			duration := rec.Request.End() - rec.ReservedFrom + 1
			for _, a := range rec.Placement.Assignments {
				// Release can only fail on arguments the engine itself
				// reserved; a failure here would be an engine bug.
				if err := e.ledger.Release(a.Cloudlet, rec.ReservedFrom, duration, a.Units(demandOf(rec.Request))); err != nil {
					panic(fmt.Sprintf("serve: release placement %d: %v", id, err))
				}
			}
			if b := rec.Placement.Backup; b != nil {
				// Leave the backup group: the pool releases the group's
				// ledger row on slots this was the last member covering.
				if err := e.pool.Release(b.Group, rec.ReservedFrom, duration); err != nil {
					panic(fmt.Sprintf("serve: release pooled backup of placement %d: %v", id, err))
				}
			}
			rec.released = true
		}
		// Degraded placements keep their mark past expiry — the state
		// records that the SLO was not met, which outliving the window must
		// not erase.
		if rec.State != StateDegraded {
			rec.State = StateExpired
		}
		e.expired++
		if e.runtime != nil {
			e.finalizeExpiredLocked(id)
		}
	}
	if e.rolling {
		e.advanceWindowLocked()
	}
	if e.runtime != nil {
		e.runtimeTickLocked()
	}
	return TickReport{Slot: e.slot, Expired: len(expired)}
}

// advanceWindowLocked moves the rolling window's base to the clock,
// pinned by the oldest live reservation so every outstanding footprint
// stays addressable until it releases. The ledger advances first and the
// scheduler's dual window follows only on success, keeping the two bases
// in lockstep. ErrNotDrained is tolerated: a sharded decision can commit
// a reservation for the pre-tick slot after the expiry scan above, in
// which case the advance simply waits for the next tick. Caller holds
// e.mu.
func (e *Engine) advanceWindowLocked() {
	newBase := e.slot
	if oldest, ok := e.expiry.OldestStart(); ok && oldest < newBase {
		newBase = oldest
	}
	if newBase <= int(e.baseNow.Load()) {
		return
	}
	if err := e.ledger.Advance(newBase); err != nil {
		if errors.Is(err, timeslot.ErrNotDrained) {
			return
		}
		panic(fmt.Sprintf("serve: advance window to %d: %v", newBase, err))
	}
	e.baseNow.Store(int64(newBase))
	if e.advancer != nil {
		e.advancer.AdvanceWindow(newBase)
	}
}

// maxSlotLocked returns the last admissible slot: the horizon T in fixed
// mode, the far edge of the rolling window otherwise. Caller holds e.mu.
func (e *Engine) maxSlotLocked() int {
	if e.rolling {
		return int(e.baseNow.Load()) + e.horizon - 1
	}
	return e.horizon
}

// runClock maps wall time onto slots.
func (e *Engine) runClock(d time.Duration) {
	defer e.wg.Done()
	ticker := time.NewTicker(d)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			e.Tick()
		case <-e.quit:
			return
		}
	}
}

// Slot returns the current slot.
func (e *Engine) Slot() int {
	return int(e.slotNow.Load())
}

// Horizon returns the served horizon: the fixed T, or the rolling window
// width W.
func (e *Engine) Horizon() int { return e.horizon }

// Rolling reports whether the engine serves a rolling horizon.
func (e *Engine) Rolling() bool { return e.rolling }

// WindowBase returns the first live slot of the ledger window; always 1
// in fixed mode.
func (e *Engine) WindowBase() int { return int(e.baseNow.Load()) }

// Traces returns the engine's decision-trace store; nil when tracing is
// disabled.
func (e *Engine) Traces() *trace.Store { return e.traces }

// Network returns the served network (read-only by convention).
func (e *Engine) Network() *core.Network { return e.network }

// Placement returns the record for an admitted request ID. The returned
// copy's State reflects the current slot.
func (e *Engine) Placement(id int) (PlacementRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.placements[id]
	if !ok {
		return PlacementRecord{}, false
	}
	out := *rec
	if out.State != StateExpired && out.State != StateDegraded {
		if e.slot < out.Request.Arrival {
			out.State = StateScheduled
		} else {
			out.State = StateActive
		}
	}
	return out, true
}

// CloudletStatus is one cloudlet's residual capacity over the remaining
// horizon.
type CloudletStatus struct {
	// ID, Node, Capacity and Reliability mirror the core.Cloudlet.
	ID          int     `json:"id"`
	Node        int     `json:"node"`
	Capacity    int     `json:"capacity"`
	Reliability float64 `json:"reliability"`
	// FromSlot is the absolute slot Residual[0] describes (the current
	// slot); FromOffset is the same position relative to WindowBase.
	FromSlot   int `json:"from_slot"`
	FromOffset int `json:"from_offset"`
	// WindowBase is the first live slot of the ledger window (always 1 in
	// fixed mode); absolute slot s maps to window offset s - WindowBase.
	WindowBase int `json:"window_base"`
	// Residual holds the free units per slot from FromSlot through the end
	// of the live window; empty once the clock has passed a fixed horizon.
	// Entries can be negative when violations are allowed.
	Residual []int `json:"residual"`
}

// Cloudlets reports residual capacity per slot for every cloudlet, from
// the current slot through the horizon.
func (e *Engine) Cloudlets() []CloudletStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	base := int(e.baseNow.Load())
	maxSlot := e.maxSlotLocked()
	out := make([]CloudletStatus, len(e.network.Cloudlets))
	for j, cl := range e.network.Cloudlets {
		st := CloudletStatus{
			ID: cl.ID, Node: cl.Node, Capacity: cl.Capacity, Reliability: cl.Reliability,
			FromSlot: e.slot, FromOffset: e.slot - base, WindowBase: base,
		}
		for t := e.slot; t <= maxSlot; t++ {
			st.Residual = append(st.Residual, e.ledger.Residual(j, t))
		}
		out[j] = st
	}
	return out
}

// Stats snapshots every counter under one lock acquisition.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Slot:             e.slot,
		Horizon:          e.horizon,
		WindowBase:       int(e.baseNow.Load()),
		Rolling:          e.rolling,
		Workers:          e.workers,
		QueueCapacity:    e.queueCap,
		Admitted:         e.admitted,
		Expired:          e.expired,
		AdmittedByScheme: make(map[string]uint64, len(e.admittedByScheme)),
		Rejections:       make(map[string]uint64, len(e.rejections)),
		ConflictRetries:  e.conflicts.Load(),
		Revenue:          e.revenue,
		ActivePlacements: e.expiry.Len(),
		CloudletUsed:     make([]int, len(e.network.Cloudlets)),
		CloudletCapacity: make([]int, len(e.network.Cloudlets)),
		Latency:          e.latency.Clone(),
	}
	if e.sem != nil {
		s.QueueDepth = int(e.waiting.Load())
		// The semaphore is preloaded with tokens; a missing token is a
		// decision in flight.
		s.InFlight = e.workers - len(e.sem)
		for _, sh := range e.shards {
			sh.mu.Lock()
			// Merge cannot fail: every shard histogram shares the serial
			// histogram's bounds.
			_ = s.Latency.Merge(sh.h)
			sh.mu.Unlock()
		}
	} else {
		s.QueueDepth = len(e.queue)
	}
	for scheme, n := range e.admittedByScheme {
		s.AdmittedByScheme[scheme.String()] = n
	}
	for reason, n := range e.rejections {
		s.Rejections[reason] = n.Load()
	}
	maxSlot := e.maxSlotLocked()
	for j, cl := range e.network.Cloudlets {
		s.CloudletCapacity[j] = cl.Capacity
		if e.slot <= maxSlot {
			s.CloudletUsed[j] = e.ledger.Used(j, e.slot)
		}
	}
	return s
}

// Shutdown stops intake, drains every in-flight admission (each waiting
// caller receives its decision), stops the clock, and waits for the
// workers to exit or the context to expire. It is idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.closeMu.Lock()
	if !e.closedFlag.CompareAndSwap(false, true) {
		e.closeMu.Unlock()
		return nil
	}
	close(e.quit)
	if e.queue != nil {
		// No Submit can be sending now: senders hold closeMu.RLock and
		// check closedFlag first, so closing the queue is safe.
		close(e.queue)
	}
	e.closeMu.Unlock()

	done := make(chan struct{})
	go func() {
		// Sharded decisions registered in inflight before they observed
		// closedFlag; poll until the last one finished. Shutdown is cold,
		// so a short sleep loop beats putting a WaitGroup (and the mutex
		// it would need against the closed check) on the hot path.
		for e.inflight.Load() != 0 {
			time.Sleep(200 * time.Microsecond)
		}
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Closed reports whether Shutdown has begun.
func (e *Engine) Closed() bool {
	return e.closedFlag.Load()
}
