package serve

import (
	"sync"
	"sync/atomic"

	"revnf/internal/metrics"
)

// ingestStats tracks the ingest layer per protocol: request counters for
// the HTTP JSON endpoint and both streaming protocols, stream connection
// and terminal-error counters, and the distribution of SubmitBatch batch
// sizes (the knob the adaptive batcher turns under load). All counters
// are lock-free atomics; only the batch-size histogram takes a mutex,
// once per batch.
type ingestStats struct {
	jsonReqs   atomic.Uint64
	ndjsonReqs atomic.Uint64
	frameReqs  atomic.Uint64

	ndjsonConns  atomic.Uint64
	frameConns   atomic.Uint64
	streamErrors atomic.Uint64

	batchMu sync.Mutex
	batches *metrics.Histogram // guarded by batchMu
}

func newIngestStats() (*ingestStats, error) {
	// Bounds 1, 2, 4, ..., 512 bracket the batch cap (streamBatchSize).
	h, err := metrics.NewHistogram(metrics.ExponentialBounds(1, 2, 10)...)
	if err != nil {
		return nil, err
	}
	return &ingestStats{batches: h}, nil
}

func (s *ingestStats) observeBatch(n int) {
	s.batchMu.Lock()
	s.batches.Observe(float64(n))
	s.batchMu.Unlock()
}

// ingestFamilies renders the ingest-layer metric families.
func (e *Engine) ingestFamilies() []metrics.PromMetric {
	st := e.ingest
	reqs := metrics.PromMetric{
		Name: "revnfd_ingest_requests_total",
		Help: "Admission requests decoded, by ingress protocol.",
		Type: "counter",
	}
	for _, p := range []struct {
		proto string
		n     uint64
	}{
		{"json", st.jsonReqs.Load()},
		{"ndjson", st.ndjsonReqs.Load()},
		{"frame", st.frameReqs.Load()},
	} {
		reqs.Samples = append(reqs.Samples, metrics.PromSample{
			Labels: []metrics.LabelPair{{Name: "protocol", Value: p.proto}},
			Value:  float64(p.n),
		})
	}
	conns := metrics.PromMetric{
		Name: "revnfd_stream_connections_total",
		Help: "Streaming connections accepted, by protocol.",
		Type: "counter",
	}
	for _, p := range []struct {
		proto string
		n     uint64
	}{
		{"ndjson", st.ndjsonConns.Load()},
		{"frame", st.frameConns.Load()},
	} {
		conns.Samples = append(conns.Samples, metrics.PromSample{
			Labels: []metrics.LabelPair{{Name: "protocol", Value: p.proto}},
			Value:  float64(p.n),
		})
	}
	st.batchMu.Lock()
	batchHist := st.batches.Clone()
	st.batchMu.Unlock()
	return []metrics.PromMetric{
		reqs,
		conns,
		metrics.Counter("revnfd_stream_errors_total",
			"Streaming connections terminated by a protocol or engine error.",
			float64(st.streamErrors.Load())),
		batchHist.Metric("revnfd_ingest_batch_size",
			"Requests per engine batch on the streaming ingest path."),
	}
}
