package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"revnf/internal/core"
	"revnf/internal/offsite"
	"revnf/internal/onsite"
	"revnf/internal/trace"
)

func newTestServer(t *testing.T, horizon int, opts ...func(*Config)) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, horizon, opts...)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

func postRequest(t *testing.T, url string, body string) (*http.Response, decisionDTO) {
	t.Helper()
	resp, err := http.Post(url+"/v1/requests", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/requests: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var dec decisionDTO
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
			t.Fatalf("decode decision: %v", err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp, dec
}

func TestHTTPAdmitRejectRoundTrip(t *testing.T) {
	_, srv := newTestServer(t, 20)
	resp, dec := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":3,"payment":12.5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !dec.Admitted || dec.Placement == nil {
		t.Fatalf("decision = %+v, want admitted with placement", dec)
	}
	if dec.Placement.Scheme != "on-site" || len(dec.Placement.Assignments) != 1 {
		t.Errorf("placement = %+v", dec.Placement)
	}
	if dec.Placement.Availability < 0.9 {
		t.Errorf("availability %v below requirement", dec.Placement.Availability)
	}
	// Infeasible requirement: HTTP 200, admitted=false, reason=declined.
	resp, dec = postRequest(t, srv.URL, `{"vnf":0,"reliability":0.995,"duration":3,"payment":12.5}`)
	if resp.StatusCode != http.StatusOK || dec.Admitted || dec.Reason != ReasonDeclined {
		t.Errorf("status %d decision %+v, want 200/declined", resp.StatusCode, dec)
	}
}

func TestHTTPBadRequestBody(t *testing.T) {
	_, srv := newTestServer(t, 20)
	for _, body := range []string{`{not json`, `{"vnf":0,"bogus_field":1}`} {
		resp, _ := postRequest(t, srv.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPPlacementLookup(t *testing.T) {
	_, srv := newTestServer(t, 20)
	_, dec := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":4,"payment":7}`)
	if !dec.Admitted {
		t.Fatalf("not admitted: %+v", dec)
	}
	resp, err := http.Get(fmt.Sprintf("%s/v1/placements/%d", srv.URL, dec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var rec placementRecordDTO
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != dec.ID || rec.State != string(StateActive) || rec.Duration != 4 {
		t.Errorf("record = %+v", rec)
	}
	for _, path := range []string{"/v1/placements/9999", "/v1/placements/abc"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		want := http.StatusNotFound
		if strings.HasSuffix(path, "abc") {
			want = http.StatusBadRequest
		}
		if resp.StatusCode != want {
			t.Errorf("GET %s: status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestHTTPCloudlets(t *testing.T) {
	e, srv := newTestServer(t, 10)
	_, dec := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":2,"payment":7}`)
	if !dec.Admitted {
		t.Fatalf("not admitted: %+v", dec)
	}
	e.Tick() // slot 2
	resp, err := http.Get(srv.URL + "/v1/cloudlets")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var out struct {
		Slot      int              `json:"slot"`
		Horizon   int              `json:"horizon"`
		Cloudlets []CloudletStatus `json:"cloudlets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Slot != 2 || out.Horizon != 10 || len(out.Cloudlets) != 2 {
		t.Fatalf("out = %+v", out)
	}
	j := dec.Placement.Assignments[0].Cloudlet
	cl := out.Cloudlets[j]
	if cl.FromSlot != 2 || len(cl.Residual) != 9 {
		t.Fatalf("cloudlet %d status = %+v", j, cl)
	}
	if cl.Residual[0] != cl.Capacity-4 { // slot 2 still inside the window
		t.Errorf("slot-2 residual = %d, want %d", cl.Residual[0], cl.Capacity-4)
	}
	if cl.Residual[1] != cl.Capacity { // slot 3 is past the window
		t.Errorf("slot-3 residual = %d, want %d", cl.Residual[1], cl.Capacity)
	}
}

func TestHTTPHealthz(t *testing.T) {
	e, srv := newTestServer(t, 10)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPMetricsScrape(t *testing.T) {
	_, srv := newTestServer(t, 20)
	postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":3,"payment":12.5}`)
	postRequest(t, srv.URL, `{"vnf":0,"reliability":0.995,"duration":3,"payment":1}`)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"revnfd_admissions_total 1\n",
		`revnfd_rejections_total{reason="declined"} 1` + "\n",
		"revnfd_revenue_total 12.5\n",
		"revnfd_current_slot 1\n",
		`revnfd_cloudlet_utilization{cloudlet="0"}`,
		"revnfd_admission_latency_seconds_count 2\n",
		"revnfd_queue_capacity 256\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// The exposition must parse line by line: every non-comment line is
	// "name{labels} value" with a float value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable sample line %q", line)
		}
	}
}

// TestHTTPBackpressure503 floods a 1-slot queue and requires at least one
// 503 with Retry-After while every accepted request still gets decided.
func TestHTTPBackpressure503(t *testing.T) {
	_, srv := newTestServer(t, 20, func(c *Config) { c.QueueSize = 1 })
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/requests", "application/json",
				bytes.NewReader([]byte(`{"vnf":0,"reliability":0.9,"duration":1,"payment":2}`)))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			_, _ = io.Copy(io.Discard, resp.Body)
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				t.Error("503 without Retry-After")
			}
		}()
	}
	wg.Wait()
	if codes[http.StatusOK] == 0 {
		t.Errorf("no request decided: %v", codes)
	}
	if codes[http.StatusOK]+codes[http.StatusServiceUnavailable] != 64 {
		t.Errorf("unexpected status mix: %v", codes)
	}
}

// TestHTTPShutdownDrainsInFlight starts slow-moving submissions, begins
// shutdown, and verifies queued requests get decisions while later ones
// get 503.
func TestHTTPShutdownDrainsInFlight(t *testing.T) {
	e, srv := newTestServer(t, 20, func(c *Config) { c.QueueSize = 128 })
	const n = 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/v1/requests", "application/json",
				bytes.NewReader([]byte(`{"vnf":0,"reliability":0.9,"duration":1,"payment":2}`)))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			_, _ = io.Copy(io.Discard, resp.Body)
			mu.Lock()
			codes[resp.StatusCode]++
			mu.Unlock()
		}()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if codes[http.StatusOK]+codes[http.StatusServiceUnavailable] != n {
		t.Errorf("status mix %v does not account for %d requests", codes, n)
	}
	s := e.Stats()
	if got := int(s.Admitted + s.RejectedTotal()); got+codes[http.StatusServiceUnavailable] < n {
		t.Errorf("decisions %d + 503s %d < %d", got, codes[http.StatusServiceUnavailable], n)
	}
}

func TestHTTPMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t, 10)
	resp, err := http.Get(srv.URL + "/v1/requests")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/requests = %d, want 405", resp.StatusCode)
	}
}

// getError performs a request and decodes the v1 error envelope.
func getError(t *testing.T, method, url string, body io.Reader) (int, errorDTO) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("%s %s: error content type = %q, want JSON envelope", method, url, ct)
	}
	var env errorDTO
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("%s %s: decode error envelope: %v", method, url, err)
	}
	return resp.StatusCode, env
}

// TestHTTPErrorEnvelope pins the unified {"code","reason","detail"} error
// shape across endpoints: reason codes come from the trace.Reason enum and
// code always repeats the HTTP status.
func TestHTTPErrorEnvelope(t *testing.T) {
	_, srv := newTestServer(t, 20)
	cases := []struct {
		method, path string
		body         string
		status       int
		reason       string
	}{
		{"POST", "/v1/requests", `{not json`, http.StatusBadRequest, ReasonInvalid},
		{"GET", "/v1/placements/abc", "", http.StatusBadRequest, ReasonInvalid},
		{"GET", "/v1/placements/9999", "", http.StatusNotFound, string(trace.ReasonNotFound)},
		{"GET", "/v1/decisions/abc/trace", "", http.StatusBadRequest, ReasonInvalid},
		// Tracing is off for this server: the endpoint 404s with detail.
		{"GET", "/v1/decisions/0/trace", "", http.StatusNotFound, string(trace.ReasonNotFound)},
	}
	for _, tc := range cases {
		var body io.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		}
		status, env := getError(t, tc.method, srv.URL+tc.path, body)
		if status != tc.status || env.Code != tc.status || env.Reason != tc.reason {
			t.Errorf("%s %s: status %d envelope %+v, want %d/%s",
				tc.method, tc.path, status, env, tc.status, tc.reason)
		}
		if env.Detail == "" {
			t.Errorf("%s %s: envelope missing detail", tc.method, tc.path)
		}
	}
}

// TestHTTPDecisionTrace wires a trace store into the engine, submits one
// admitted and one declined request, and reads both decisions back through
// GET /v1/decisions/{id}/trace: the scheduler attempt and the engine
// outcome must be merged into one trace, and the trace counters must show
// up on /metrics.
func TestHTTPDecisionTrace(t *testing.T) {
	store := trace.NewStore(16)
	n := testNetwork()
	sched, err := onsite.NewScheduler(n, 20,
		onsite.WithCapacityEnforcement(), onsite.WithRecorder(store))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 20, Traces: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)

	_, admitted := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":3,"payment":12.5}`)
	if !admitted.Admitted {
		t.Fatalf("decision = %+v, want admitted", admitted)
	}
	_, declined := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.995,"duration":3,"payment":12.5}`)
	if declined.Admitted || declined.Reason != ReasonDeclined {
		t.Fatalf("decision = %+v, want declined", declined)
	}

	var dt trace.DecisionTrace
	resp, err := http.Get(fmt.Sprintf("%s/v1/decisions/%d/trace", srv.URL, admitted.ID))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d, want 200", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dt); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if dt.Request != admitted.ID || !dt.Admitted || dt.Outcome != trace.ReasonAdmitted {
		t.Errorf("trace = %+v, want admitted outcome for %d", dt, admitted.ID)
	}
	if len(dt.Attempts) != 1 || !dt.Attempts[0].Admit || dt.Attempts[0].Attempt != 1 {
		t.Errorf("attempts = %+v, want one admitting attempt", dt.Attempts)
	}
	if len(dt.Assignments) == 0 {
		t.Errorf("admitted trace has no assignments: %+v", dt)
	}

	resp, err = http.Get(fmt.Sprintf("%s/v1/decisions/%d/trace", srv.URL, declined.ID))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dt); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if dt.Admitted || dt.Outcome != trace.ReasonDeclined {
		t.Errorf("declined trace = %+v, want declined outcome", dt)
	}
	if dt.FinalReason() != trace.ReasonDeclined {
		t.Errorf("FinalReason = %q, want declined", dt.FinalReason())
	}
	if len(dt.Attempts) != 1 || dt.Attempts[0].Admit || dt.Attempts[0].Reason == "" {
		t.Errorf("declined attempt = %+v, want scheduler-level reason", dt.Attempts)
	}

	// Unknown ID: envelope 404 with the not-sampled detail.
	status, env := getError(t, "GET", srv.URL+"/v1/decisions/424242/trace", nil)
	if status != http.StatusNotFound || env.Reason != string(trace.ReasonNotFound) {
		t.Errorf("unknown trace: %d %+v", status, env)
	}

	// Trace counters and the λ gauge ride the same scrape.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{
		"revnfd_trace_recorded_total",
		"revnfd_trace_store_capacity 16\n",
		`revnfd_dual_price{cloudlet="0",window="current"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHandlerWithOffsiteScheduler exercises the serve layer against
// Algorithm 2 to confirm scheme-agnosticism. With r(f)=0.8 the single
// best cloudlet gives 0.99·0.8 = 0.792 < 0.9, so the off-site placement
// must span both cloudlets.
func TestHandlerWithOffsiteScheduler(t *testing.T) {
	n := testNetwork()
	sched, err := offsite.NewScheduler(n, 20)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Network: n, Scheduler: sched, Horizon: 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	_, dec := postRequest(t, srv.URL, `{"vnf":0,"reliability":0.9,"duration":2,"payment":9}`)
	if !dec.Admitted || dec.Placement == nil {
		t.Fatalf("off-site decision = %+v, want admitted", dec)
	}
	if dec.Placement.Scheme != "off-site" || len(dec.Placement.Assignments) != 2 {
		t.Errorf("off-site placement = %+v, want both cloudlets", dec.Placement)
	}
}

// TestHTTPTransportErrorEnvelopes pins the v1 error envelope on the three
// transport-level rejection paths of POST /v1/requests: engine shutdown,
// client cancellation, and a full ingest queue. The streaming ingest maps
// the same reasons onto its terminal error records, so this shape is
// load-bearing for both ingress paths.
func TestHTTPTransportErrorEnvelopes(t *testing.T) {
	t.Run("closed", func(t *testing.T) {
		e, srv := newTestServer(t, 20)
		shutdownEngine(t, e)
		status, env := getError(t, "POST", srv.URL+"/v1/requests",
			strings.NewReader(`{"vnf":0,"reliability":0.9,"duration":1,"payment":2}`))
		if status != http.StatusServiceUnavailable || env.Code != 503 || env.Reason != ReasonClosed {
			t.Fatalf("status %d envelope %+v, want 503/closed", status, env)
		}
		if env.Detail == "" {
			t.Error("envelope missing detail")
		}
	})

	t.Run("canceled", func(t *testing.T) {
		// A canceled client context never produces a readable response over
		// a real socket, so exercise the handler directly.
		e := newTestEngine(t, 20)
		h := NewHandler(e)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest("POST", "/v1/requests",
			strings.NewReader(`{"vnf":0,"reliability":0.9,"duration":1,"payment":2}`)).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", rec.Code)
		}
		var env errorDTO
		if err := json.NewDecoder(rec.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Code != 503 || env.Reason != ReasonCanceled || env.Detail == "" {
			t.Fatalf("envelope = %+v, want 503/canceled with detail", env)
		}
	})

	t.Run("queue full", func(t *testing.T) {
		// A gated scheduler pins the serial worker inside its first
		// decision; with a one-slot queue, the third request then finds the
		// queue deterministically full.
		n := testNetwork()
		inner, err := onsite.NewScheduler(n, 20, onsite.WithCapacityEnforcement())
		if err != nil {
			t.Fatal(err)
		}
		gate := &gatedScheduler{Scheduler: inner,
			entered: make(chan struct{}, 4), release: make(chan struct{})}
		e, err := New(Config{Network: n, Scheduler: gate, Horizon: 20, QueueSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewHandler(e))
		t.Cleanup(srv.Close)

		body := `{"vnf":0,"reliability":0.9,"duration":1,"payment":2}`
		var wg sync.WaitGroup
		postOK := func() {
			defer wg.Done()
			resp, dec := postRequest(t, srv.URL, body)
			if resp.StatusCode != http.StatusOK || !dec.Admitted {
				t.Errorf("gated request: status %d decision %+v", resp.StatusCode, dec)
			}
		}
		// Strictly sequence the setup: request A is inside Decide before
		// request B is sent, and B is queued before the probe fires.
		wg.Add(1)
		go postOK()
		<-gate.entered
		wg.Add(1)
		go postOK()
		waitForQueueDepth(t, e, 1)

		status, env := getError(t, "POST", srv.URL+"/v1/requests", strings.NewReader(body))
		if status != http.StatusServiceUnavailable || env.Code != 503 ||
			env.Reason != ReasonQueueFull || env.Detail == "" {
			t.Fatalf("status %d envelope %+v, want 503/queue-full with detail", status, env)
		}

		close(gate.release)
		<-gate.entered
		wg.Wait()
		shutdownEngine(t, e)
		if got := e.Stats().Rejections[ReasonQueueFull]; got != 1 {
			t.Errorf("queue-full rejections = %d, want 1", got)
		}
	})
}

// gatedScheduler blocks every Decide until release is closed, signaling
// each entry on entered; it makes queue-depth scenarios deterministic.
type gatedScheduler struct {
	core.Scheduler
	entered chan struct{}
	release chan struct{}
}

func (g *gatedScheduler) Decide(req core.Request, view core.CapacityView) (core.Placement, bool) {
	g.entered <- struct{}{}
	<-g.release
	return g.Scheduler.Decide(req, view)
}

// waitForQueueDepth polls the serial ingest channel until depth jobs are
// queued (or fails the test after a second). It reads the channel length
// directly: Stats() takes e.mu, which the gated worker is holding.
func waitForQueueDepth(t *testing.T, e *Engine, depth int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for len(e.queue) < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", depth, len(e.queue))
		}
		time.Sleep(time.Millisecond)
	}
}
