package serve

import (
	"context"
	"fmt"
)

// SubmitBatch decides len(reqs) admission requests in submission order,
// writing decision i into out[i]. It is the streaming ingest path's
// entry point: one call amortizes the engine's synchronization (the
// engine mutex in serial mode, a worker token in sharded mode) over the
// whole batch, and IDs are allocated in batch order, so a single
// connection's request stream produces the same decisions the same
// requests would produce submitted one at a time through Submit.
//
// Backpressure differs from Submit by design: a full engine rejects each
// request individually with ReasonQueueFull in its AdmissionResult
// (ID 0, no error), so a streaming connection keeps its request/response
// pairing instead of tearing down. ErrClosed is returned once Shutdown
// has begun and ctx.Err() when the caller's context ends; on either
// error the contents of out are unspecified.
func (e *Engine) SubmitBatch(ctx context.Context, reqs []AdmissionRequest, out []AdmissionResult) error {
	if len(out) != len(reqs) {
		return fmt.Errorf("%w: batch out %d != reqs %d", ErrBadConfig, len(out), len(reqs))
	}
	if len(reqs) == 0 {
		return nil
	}
	if e.sem != nil {
		return e.submitBatchSharded(ctx, reqs, out)
	}
	return e.submitBatchSerial(ctx, reqs, out)
}

// submitBatchSerial decides the batch under one engine-mutex acquisition,
// bypassing the serial queue (the caller's bounded pending buffer is the
// backpressure; blocking on e.mu is the arbitration between connections).
// Registering in inflight makes Shutdown's drain loop wait the batch out.
func (e *Engine) submitBatchSerial(ctx context.Context, reqs []AdmissionRequest, out []AdmissionResult) error {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	if e.closedFlag.Load() {
		e.rejections[ReasonClosed].Add(uint64(len(reqs)))
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		e.rejections[ReasonCanceled].Add(uint64(len(reqs)))
		return err
	}
	enqueued := e.now()
	e.mu.Lock()
	for i := range reqs {
		out[i] = e.decideLocked(reqs[i])
	}
	// One latency observation per batch: the mutex hold time over the
	// whole batch, which is what a streamed submitter actually waits.
	e.latency.Observe(e.now().Sub(enqueued).Seconds())
	e.mu.Unlock()
	return nil
}

// submitBatchSharded decides the batch inline under one worker token. The
// batch counts as len(reqs) against the waiting bound so streaming and
// HTTP submitters share one backpressure budget; an over-budget batch is
// rejected per request (ReasonQueueFull results), not as an error.
func (e *Engine) submitBatchSharded(ctx context.Context, reqs []AdmissionRequest, out []AdmissionResult) error {
	n := int64(len(reqs))
	if int(e.waiting.Add(n)) > e.queueCap+e.workers {
		e.waiting.Add(-n)
		e.rejections[ReasonQueueFull].Add(uint64(n))
		slot := int(e.slotNow.Load())
		for i := range out {
			out[i] = AdmissionResult{Reason: ReasonQueueFull, Slot: slot}
		}
		return nil
	}
	defer e.waiting.Add(-n)
	// Same ordering as submitSharded: inflight registration precedes the
	// closedFlag check so Shutdown either sees the batch or the batch sees
	// the close.
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	if e.closedFlag.Load() {
		e.rejections[ReasonClosed].Add(uint64(n))
		return ErrClosed
	}
	enqueued := e.now()
	var shard int
	select {
	case shard = <-e.sem:
	default:
		select {
		case shard = <-e.sem:
		case <-ctx.Done():
			e.rejections[ReasonCanceled].Add(uint64(n))
			return ctx.Err()
		}
	}
	defer func() { e.sem <- shard }()
	for i := range reqs {
		id := int(e.lastID.Add(1))
		res, err := e.decideSharded(ctx, reqs[i], id, enqueued, false, shard)
		if err != nil {
			return err
		}
		out[i] = res
	}
	// One sampled latency observation per batch (cf. latencySampleRate on
	// the single-submit path): the token hold time over the whole batch.
	e.observeShard(shard, enqueued)
	return nil
}
